# Convenience targets; `make check` is the tier-1 gate (build + tests
# + the seconds-scale bench smoke).

.PHONY: all build test check faultcheck recovercheck tracecheck scalecheck \
  shardcheck netcheck meshcheck obscheck bench bench-smoke bench-json clean

all: build

build:
	dune build @all

test:
	dune runtest

check:
	dune build @all && dune runtest && $(MAKE) faultcheck \
	  && $(MAKE) recovercheck && $(MAKE) tracecheck && $(MAKE) scalecheck \
	  && $(MAKE) shardcheck && $(MAKE) netcheck && $(MAKE) meshcheck \
	  && $(MAKE) obscheck && $(MAKE) bench-smoke

# Fault-injection suite: the supervised-delivery unit tests plus the
# deterministic CLI demo pinned by test/cram/faults.t.
faultcheck:
	dune build test/test_fault.exe bin/genas_cli.exe @test/cram/faults
	./_build/default/test/test_fault.exe -q

# Durability suite: journal/snapshot unit tests plus the crash-recovery
# differential (crash at seeded points, recover, replay the remaining
# traffic, compare bit-for-bit against the no-crash run), and the CLI
# demo pinned by test/cram/journal.t.
recovercheck:
	dune build test/test_journal.exe test/test_recover.exe bin/genas_cli.exe \
	  @test/cram/journal
	./_build/default/test/test_journal.exe -q
	./_build/default/test/test_recover.exe -q

# Tracing suite: tracer/flight-recorder unit tests plus the CLI demo
# pinned by test/cram/trace.t (same-seed Chrome trace JSON compared
# byte-for-byte, flight-recorder dump on an injected crash).
tracecheck:
	dune build test/test_trace.exe bin/genas_cli.exe @test/cram/trace
	./_build/default/test/test_trace.exe -q

# Aggregation suite: the covering/lattice unit tests and the
# aggregated-vs-plain differentials (test_cover, the engine equivalence
# property in test_flat), then a 10^3/10^4 profile-count scaling smoke
# through the CLI, validated by the strict JSON checker. The plain
# rebuild-per-churn baseline is capped at 10^3 — each sampled baseline
# op pays a full replan, seconds apiece (docs/SCALING.md).
scalecheck:
	dune build test/test_cover.exe test/test_flat.exe bin/genas_cli.exe
	./_build/default/test/test_cover.exe -q
	./_build/default/test/test_flat.exe -q
	./_build/default/bin/genas_cli.exe bench --json --events 200 \
	  --scaling 1000,10000 --baseline-max 1000 \
	  | ./_build/default/bin/genas_cli.exe jsoncheck

# Pool/shard suite: the persistent work-stealing pool determinism,
# stealing, and teardown tests plus the shard-axis differentials
# (test_pool), run at a forced 2-domain width so the multi-domain
# paths are exercised even on 1-core hosts. Alcotest runs the full
# suite; QCheck properties are skipped under -q, so no -q here.
shardcheck:
	dune build test/test_pool.exe
	GENAS_TEST_DOMAINS=2 ./_build/default/test/test_pool.exe

# Networking suite: wire-codec bounds, socket round trips, covering
# propagation on the wire, fault-driven reconnect + WAL catch-up, the
# fork-based two-process exchange, and the networked ≡ Router
# differential (test_transport), plus the two-process CLI demo pinned
# by test/cram/netcheck.t (docs/NETWORKING.md).
netcheck:
	dune build test/test_transport.exe bin/genas_cli.exe @test/cram/netcheck
	./_build/default/test/test_transport.exe -q

# Mesh-robustness suite: heartbeat liveness (half-dead peers reaped
# both ends), request deadlines, bounded-backpressure slow-consumer
# shedding, auto-reconnect + replay exactly-once, multi-hop relay ≡
# flat-Router differentials, the seeded chaos plan over a 3-node
# chain, the kill/restart soak (thread/fd leak check), and the
# genas_net_* metrics surface (test_mesh), plus the three-process
# relay demo pinned by test/cram/meshcheck.t. Wrapped in a hard
# timeout: every socket test already carries its own in-test deadline,
# but a wedged kernel-level hang must fail CI, not park it.
meshcheck:
	dune build test/test_mesh.exe bin/genas_cli.exe @test/cram/meshcheck
	timeout 300 ./_build/default/test/test_mesh.exe -q

# Observability suite: metrics/tracer unit tests (atomic instruments
# hammered from two domains, dropped-span accounting, cross-process
# trace adoption and merge), plus the three-process end-to-end demo
# pinned by test/cram/obscheck.t — deterministic merged Chrome trace
# across runs, metrics scrape endpoint, and 'genas status' fan-out
# (docs/OBSERVABILITY.md).
obscheck:
	dune build test/test_obs.exe test/test_trace.exe test/test_mesh.exe \
	  bin/genas_cli.exe @test/cram/obscheck
	./_build/default/test/test_obs.exe -q
	./_build/default/test/test_trace.exe -q
	timeout 300 ./_build/default/test/test_mesh.exe test -q observability

bench:
	dune exec bench/main.exe -- all

# Seconds-scale subset: every matcher timed on a small event budget,
# output validated by the strict JSON checker. The binary is built
# once and piped to itself — two concurrent `dune exec`s would
# deadlock on the build lock.
bench-smoke:
	dune build bin/genas_cli.exe
	./_build/default/bin/genas_cli.exe bench --json --events 2000 \
	  | ./_build/default/bin/genas_cli.exe jsoncheck

# Full-budget run refreshing the committed perf-trajectory record,
# scaling curve included (the 10^6 point and the 10^4 baseline take
# minutes; see docs/SCALING.md).
bench-json:
	dune exec bin/genas_cli.exe -- bench --json --events 200000 \
	  --scaling 1000,2000,10000,100000,1000000 --out BENCH_PR10.json

clean:
	dune clean
