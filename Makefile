# Convenience targets; `make check` is the tier-1 gate (build + tests).

.PHONY: all build test check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

check:
	dune build @all && dune runtest

bench:
	dune exec bench/main.exe -- all

clean:
	dune clean
