# Convenience targets; `make check` is the tier-1 gate (build + tests
# + the seconds-scale bench smoke).

.PHONY: all build test check faultcheck recovercheck tracecheck bench \
  bench-smoke bench-json clean

all: build

build:
	dune build @all

test:
	dune runtest

check:
	dune build @all && dune runtest && $(MAKE) faultcheck \
	  && $(MAKE) recovercheck && $(MAKE) tracecheck && $(MAKE) bench-smoke

# Fault-injection suite: the supervised-delivery unit tests plus the
# deterministic CLI demo pinned by test/cram/faults.t.
faultcheck:
	dune build test/test_fault.exe bin/genas_cli.exe @test/cram/faults
	./_build/default/test/test_fault.exe -q

# Durability suite: journal/snapshot unit tests plus the crash-recovery
# differential (crash at seeded points, recover, replay the remaining
# traffic, compare bit-for-bit against the no-crash run), and the CLI
# demo pinned by test/cram/journal.t.
recovercheck:
	dune build test/test_journal.exe test/test_recover.exe bin/genas_cli.exe \
	  @test/cram/journal
	./_build/default/test/test_journal.exe -q
	./_build/default/test/test_recover.exe -q

# Tracing suite: tracer/flight-recorder unit tests plus the CLI demo
# pinned by test/cram/trace.t (same-seed Chrome trace JSON compared
# byte-for-byte, flight-recorder dump on an injected crash).
tracecheck:
	dune build test/test_trace.exe bin/genas_cli.exe @test/cram/trace
	./_build/default/test/test_trace.exe -q

bench:
	dune exec bench/main.exe -- all

# Seconds-scale subset: every matcher timed on a small event budget,
# output validated by the strict JSON checker. The binary is built
# once and piped to itself — two concurrent `dune exec`s would
# deadlock on the build lock.
bench-smoke:
	dune build bin/genas_cli.exe
	./_build/default/bin/genas_cli.exe bench --json --events 2000 \
	  | ./_build/default/bin/genas_cli.exe jsoncheck

# Full-budget run refreshing the committed perf-trajectory record.
bench-json:
	dune exec bin/genas_cli.exe -- bench --json --events 200000 \
	  --out BENCH_PR5.json

clean:
	dune clean
