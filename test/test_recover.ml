(* Crash-recovery differential suite (the `make recovercheck` payload).

   One scripted workload runs twice: once on a plain broker (the
   reference), once on a journaled broker that dies at a seeded crash
   point. The dead broker is recovered from its journal directory, the
   remaining script is replayed from the first non-durable operation,
   and the two final states must agree exactly: published /
   notification counters, matcher operation counts, the full supervisor
   export (including circuit states and jitter-stream position), the
   dead-letter queue entry by entry, and the matching decisions on a
   probe batch published after recovery.

   Handlers fail deterministically (on the event's value), never
   probabilistically: the recovered process re-binds the same handlers
   and must reproduce the same outcomes without sharing a fault
   stream. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Ops = Genas_filter.Ops
module Profile = Genas_profile.Profile
module Lang = Genas_profile.Lang
module Adaptive = Genas_core.Adaptive
module Broker = Genas_ens.Broker
module Journal = Genas_ens.Journal
module Fault = Genas_ens.Fault
module Supervise = Genas_ens.Supervise
module Deadletter = Genas_ens.Deadletter
module Composite = Genas_ens.Composite
module Notification = Genas_ens.Notification

let schema () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("k", Domain.enum [ "a"; "b" ]) ]

let profile_of s src = Result.get_ok (Lang.parse_profile s src)

(* Event [i] is a pure function of its index, so a resumed script
   regenerates exactly the traffic the dead process would have seen. *)
let ev s i =
  Event.create_exn
    ~time:(10.0 *. float_of_int i)
    s
    [
      ("x", Value.Int (((i * 7) + 3) mod 10));
      ("k", Value.Str (if i mod 3 = 0 then "a" else "b"));
    ]

(* "flaky" raises on x = 7, everyone else accepts. *)
let handler_for subscriber =
  if String.equal subscriber "flaky" then fun (n : Notification.t) ->
    match n.Notification.event.Event.values.(0) with
    | Value.Int 7 -> failwith "flaky: refusing x = 7"
    | _ -> ()
  else fun (_ : Notification.t) -> ()

type op =
  | Sub of string * string
  | SubC of string * (Schema.t -> Composite.expr)
  | Unsub of string
  | Pub of int
  | Batch of int list

(* Every script op journals exactly one operation, so the number of
   durably logged ops is the resume index. *)
let apply s b = function
  | Sub (who, src) ->
    ignore
      (Result.get_ok
         (Broker.subscribe_text b ~subscriber:who src (handler_for who)))
  | SubC (who, mk) ->
    ignore
      (Result.get_ok
         (Broker.subscribe_composite b ~subscriber:who (mk s) (handler_for who)))
  | Unsub who -> (
    match
      List.find_opt (fun (_, name) -> String.equal name who)
        (Broker.subscriptions b)
    with
    | Some (id, _) -> ignore (Broker.unsubscribe b id)
    | None -> Alcotest.fail ("no subscription to remove: " ^ who))
  | Pub i -> ignore (Broker.publish b (ev s i))
  | Batch is ->
    ignore (Broker.publish_batch b (Array.of_list (List.map (ev s) is)))

let run_script s b script ~from =
  let n = Array.length script in
  let rec go i =
    if i >= n then `Done
    else
      match apply s b script.(i) with
      | () -> go (i + 1)
      | exception Fault.Crashed _ -> `Crashed i
  in
  go from

(* Primitive-only script: crosses several snapshot boundaries. *)
let script_a =
  Array.of_list
    ([ Sub ("ops", "k = a"); Sub ("flaky", "x >= 5") ]
    @ List.init 15 (fun i -> Pub i)
    @ [ Sub ("late", "x <= 3") ]
    @ List.init 5 (fun i -> Pub (15 + i))
    @ [ Batch [ 20; 21; 22; 23 ]; Unsub "late" ]
    @ List.init 10 (fun i -> Pub (24 + i)))

(* Composite script: run with a huge snapshot cadence (pure journal
   replay), because composite detector state spanning a snapshot
   boundary is not captured — the documented durability caveat. *)
let script_b =
  Array.of_list
    ([
       Sub ("ops", "k = a");
       SubC
         ( "watch",
           fun s ->
             Composite.Seq
               ( Composite.Prim (profile_of s "x >= 8"),
                 Composite.Prim (profile_of s "k = b"),
                 15.0 ) );
       Sub ("flaky", "x >= 5");
     ]
    @ List.init 25 (fun i -> Pub i))

let retry () =
  Supervise.retry_policy ~max_attempts:2 ~jitter_seed:1 ~trip_after:3
    ~cooldown:4 ()

let adaptive = { Adaptive.warmup = 10; check_every = 8; drift_threshold = 0.2 }

let circuit_name = function
  | Supervise.Closed -> "closed"
  | Supervise.Open -> "open"
  | Supervise.Half_open -> "half-open"

let fingerprint s b =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "published=%d notifications=%d rebuilds=%d subs=%d\n"
    (Broker.published b) (Broker.notifications b) (Broker.rebuilds b)
    (Broker.subscription_count b);
  let o = Broker.ops b in
  Printf.bprintf buf "ops: ev=%d cmp=%d visits=%d matches=%d\n" o.Ops.events
    o.Ops.comparisons o.Ops.node_visits o.Ops.matches;
  let e = Supervise.export (Broker.supervisor b) in
  Printf.bprintf buf
    "sup: deliveries=%d delivered=%d failures=%d retries=%d dead=%d short=%d \
     trips=%d jitter=%d\n"
    e.Supervise.Export.deliveries e.Supervise.Export.delivered
    e.Supervise.Export.failures e.Supervise.Export.retries
    e.Supervise.Export.deadlettered e.Supervise.Export.short_circuited
    e.Supervise.Export.trips e.Supervise.Export.jitter_draws;
  List.iter
    (fun (who, state, count) ->
      Printf.bprintf buf "circuit %s: %s/%d\n" who (circuit_name state) count)
    e.Supervise.Export.circuits;
  let dlq = Broker.deadletter b in
  Printf.bprintf buf "dlq: total=%d dropped=%d\n" (Deadletter.total dlq)
    (Deadletter.dropped dlq);
  List.iter
    (fun (entry : Deadletter.entry) ->
      Printf.bprintf buf "  #%d %s after %d: %s on %s\n" entry.Deadletter.seq
        entry.Deadletter.notification.Notification.subscriber
        entry.Deadletter.attempts entry.Deadletter.error
        (Format.asprintf "%a" (Event.pp s) entry.Deadletter.notification.Notification.event))
    (Deadletter.entries dlq);
  Buffer.contents buf

(* Matching decisions after recovery: publish a fresh probe batch to
   both brokers and compare the per-event notification counts. *)
let probe s b = List.init 8 (fun i -> Broker.publish b (ev s (100 + i)))

let fresh_dir () =
  let path = Filename.temp_file "genas_recover" ".d" in
  Sys.remove path;
  path

let run_case ~script ~snapshot_every ~spec ~seed ~expect_crash () =
  let s = schema () in
  let reference = Broker.create ~retry:(retry ()) ~adaptive s in
  (match run_script s reference script ~from:0 with
  | `Done -> ()
  | `Crashed _ -> Alcotest.fail "reference run must not crash");
  let dir = fresh_dir () in
  let faults = Fault.plan ~seed spec in
  let b =
    Broker.create ~retry:(retry ()) ~adaptive ~faults
      ~journal:(Journal.config ~snapshot_every dir)
      s
  in
  let outcome = run_script s b script ~from:0 in
  (match outcome with `Done -> Broker.close b | `Crashed _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "crash fired as scheduled (seed %d)" seed)
    expect_crash (Fault.crashed faults);
  match
    Broker.recover ~retry:(retry ()) ~adaptive
      ~handlers:(fun ~subscriber -> handler_for subscriber)
      ~journal:(Journal.config ~snapshot_every dir)
      s
  with
  | Error e -> Alcotest.fail ("recover: " ^ e)
  | Ok recovered ->
    let resume_from =
      Journal.ops_logged (Option.get (Broker.wal recovered))
    in
    (match outcome with
    | `Crashed i ->
      Alcotest.(check bool) "durable prefix ends at or before the crash" true
        (resume_from <= i + 1)
    | `Done ->
      Alcotest.(check int) "clean shutdown lost nothing"
        (Array.length script) resume_from);
    (match run_script s recovered script ~from:resume_from with
    | `Done -> ()
    | `Crashed _ -> Alcotest.fail "resumed run must not crash");
    Alcotest.(check string) "final state identical to the no-crash run"
      (fingerprint s reference) (fingerprint s recovered);
    Alcotest.(check (list int)) "probe matching identical"
      (probe s reference) (probe s recovered);
    Broker.close recovered

let before_fsync p = { Fault.none with Fault.crash_before_fsync = p }

let after_journal p = { Fault.none with Fault.crash_after_journal = p }

let mid_snapshot p = { Fault.none with Fault.crash_mid_snapshot = p }

let cases =
  let a ~name ~spec ~seed ~expect_crash =
    Alcotest.test_case (Printf.sprintf "%s seed %d" name seed) `Quick
      (run_case ~script:script_a ~snapshot_every:8 ~spec ~seed ~expect_crash)
  and b ~name ~spec ~seed ~expect_crash =
    Alcotest.test_case (Printf.sprintf "composite %s seed %d" name seed) `Quick
      (run_case ~script:script_b ~snapshot_every:10_000 ~spec ~seed
         ~expect_crash)
  in
  [
    a ~name:"before-fsync" ~spec:(before_fsync 0.08) ~seed:3 ~expect_crash:true;
    a ~name:"before-fsync" ~spec:(before_fsync 0.08) ~seed:11 ~expect_crash:true;
    a ~name:"before-fsync" ~spec:(before_fsync 0.08) ~seed:29 ~expect_crash:true;
    a ~name:"after-journal" ~spec:(after_journal 0.08) ~seed:3 ~expect_crash:true;
    a ~name:"after-journal" ~spec:(after_journal 0.08) ~seed:11
      ~expect_crash:true;
    a ~name:"after-journal" ~spec:(after_journal 0.08) ~seed:29
      ~expect_crash:true;
    a ~name:"mid-snapshot" ~spec:(mid_snapshot 1.0) ~seed:3 ~expect_crash:true;
    a ~name:"mid-snapshot" ~spec:(mid_snapshot 0.5) ~seed:11 ~expect_crash:true;
    (* A plan whose crash never fires doubles as the clean-shutdown
       differential: recovery of a completed journal is also exact. *)
    a ~name:"clean shutdown" ~spec:(before_fsync 0.0) ~seed:3
      ~expect_crash:false;
    b ~name:"before-fsync" ~spec:(before_fsync 0.08) ~seed:3 ~expect_crash:true;
    b ~name:"before-fsync" ~spec:(before_fsync 0.08) ~seed:11
      ~expect_crash:true;
    b ~name:"after-journal" ~spec:(after_journal 0.08) ~seed:3
      ~expect_crash:true;
    b ~name:"after-journal" ~spec:(after_journal 0.08) ~seed:11
      ~expect_crash:true;
  ]

let () = Alcotest.run "recover" [ ("differential", cases) ]
