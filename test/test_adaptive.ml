(* The adaptive component: drift detection and re-optimization. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile_set = Genas_profile.Profile_set
module Prng = Genas_prng.Prng
module Engine = Genas_core.Engine
module Adaptive = Genas_core.Adaptive

let schema () = Schema.create_exn [ ("x", Domain.int_range ~lo:0 ~hi:99) ]

let make_adaptive ?(threshold = 0.4) () =
  let s = schema () in
  let pset = Profile_set.create s in
  List.iter
    (fun v ->
      ignore
        (Result.get_ok (Profile_set.add_spec pset [ ("x", Predicate.Eq (Value.Int v)) ])))
    [ 5; 20; 60; 90 ];
  let engine = Engine.create pset in
  ( s,
    Adaptive.create
      ~policy:{ Adaptive.warmup = 100; check_every = 50; drift_threshold = threshold }
      engine )

let feed s adaptive rng n ~lo ~hi =
  for _ = 1 to n do
    ignore
      (Adaptive.match_event adaptive
         (Event.create_exn s [ ("x", Value.Int (Prng.int_in rng ~lo ~hi)) ]))
  done

let make_with_policy ~warmup ~check_every ~threshold =
  let s = schema () in
  let pset = Profile_set.create s in
  List.iter
    (fun v ->
      ignore
        (Result.get_ok (Profile_set.add_spec pset [ ("x", Predicate.Eq (Value.Int v)) ])))
    [ 5; 20; 60; 90 ];
  let engine = Engine.create pset in
  ( s,
    Adaptive.create
      ~policy:{ Adaptive.warmup; check_every; drift_threshold = threshold }
      engine )

let test_first_check_at_warmup () =
  (* The first drift check fires at exactly [seen = warmup], even when
     warmup < check_every: the cadence counter must not delay the
     bootstrap by a full check interval. *)
  let s, adaptive = make_with_policy ~warmup:10 ~check_every:50 ~threshold:0.4 in
  let rng = Prng.create ~seed:11 in
  feed s adaptive rng 9 ~lo:0 ~hi:99;
  Alcotest.(check int) "no check before warmup" 0 (Adaptive.checks adaptive);
  feed s adaptive rng 1 ~lo:0 ~hi:99;
  Alcotest.(check int) "first check at warmup" 1 (Adaptive.checks adaptive);
  Alcotest.(check int) "bootstrap rebuild" 1 (Adaptive.rebuilds adaptive);
  (* Subsequent checks honor check_every, counted from the last one. *)
  feed s adaptive rng 49 ~lo:0 ~hi:99;
  Alcotest.(check int) "not due again yet" 1 (Adaptive.checks adaptive);
  feed s adaptive rng 1 ~lo:0 ~hi:99;
  Alcotest.(check int) "second check after check_every" 2
    (Adaptive.checks adaptive)

let test_last_drift_clamped () =
  (* The very first check sees infinite drift (no plan yet). The raw
     infinity must still beat any threshold — even one above the L1
     range bound of 2 — while the reported last_drift is clamped to
     2.0 so no inf can leak into reports or exporters. *)
  let s, adaptive = make_with_policy ~warmup:10 ~check_every:50 ~threshold:3.0 in
  let rng = Prng.create ~seed:12 in
  feed s adaptive rng 10 ~lo:0 ~hi:99;
  Alcotest.(check int) "bootstrap rebuild despite threshold > 2" 1
    (Adaptive.rebuilds adaptive);
  Alcotest.(check (float 0.0)) "last_drift clamped to 2.0" 2.0
    (Adaptive.last_drift adaptive);
  Alcotest.(check bool) "clamped value is finite" true
    (Float.is_finite (Adaptive.last_drift adaptive))

let test_policy_validation () =
  let s, _ = make_adaptive () in
  ignore s;
  let pset = Profile_set.create (schema ()) in
  let engine = Engine.create pset in
  Alcotest.check_raises "bad policy"
    (Invalid_argument "Adaptive.create: malformed policy") (fun () ->
      ignore
        (Adaptive.create
           ~policy:{ Adaptive.warmup = -1; check_every = 10; drift_threshold = 0.1 }
           engine))

let test_first_check_always_rebuilds () =
  (* Before any adaptive rebuild the tree was planned without data, so
     the first due check must re-plan (drift = infinity). *)
  let s, adaptive = make_adaptive () in
  let rng = Prng.create ~seed:1 in
  feed s adaptive rng 99 ~lo:0 ~hi:99;
  Alcotest.(check int) "not yet due" 0 (Adaptive.rebuilds adaptive);
  feed s adaptive rng 1 ~lo:0 ~hi:99;
  Alcotest.(check int) "rebuilt at warmup" 1 (Adaptive.rebuilds adaptive)

let test_stable_stream_no_further_rebuilds () =
  let s, adaptive = make_adaptive () in
  let rng = Prng.create ~seed:2 in
  (* Early rebuilds are legitimate while the histogram is noisy; once
     the sample is large the estimate stabilizes and rebuilds stop. *)
  feed s adaptive rng 4000 ~lo:0 ~hi:99;
  let settled = Adaptive.rebuilds adaptive in
  Alcotest.(check bool) "bootstrapped" true (settled >= 1);
  feed s adaptive rng 4000 ~lo:0 ~hi:99;
  Alcotest.(check bool) "no further rebuilds on a stable stream" true
    (Adaptive.rebuilds adaptive - settled <= 1);
  Alcotest.(check bool) "drift small" true (Adaptive.last_drift adaptive < 0.4)

let test_drift_triggers_rebuild () =
  let s, adaptive = make_adaptive () in
  let rng = Prng.create ~seed:3 in
  feed s adaptive rng 500 ~lo:0 ~hi:99;
  let before = Adaptive.rebuilds adaptive in
  (* Concentrate the stream on a narrow band: the histogram shifts. *)
  feed s adaptive rng 2000 ~lo:85 ~hi:95;
  Alcotest.(check bool) "rebuilt on drift" true (Adaptive.rebuilds adaptive > before)

let test_force_check () =
  let s, adaptive = make_adaptive () in
  let rng = Prng.create ~seed:4 in
  feed s adaptive rng 10 ~lo:0 ~hi:99;
  (* Never planned from data yet: force triggers the bootstrap. *)
  Alcotest.(check bool) "forced" true (Adaptive.force_check adaptive);
  Alcotest.(check int) "one rebuild" 1 (Adaptive.rebuilds adaptive);
  (* Immediately after planning, drift is ~0. *)
  Alcotest.(check bool) "not forced again" false (Adaptive.force_check adaptive)

let test_matching_correct_across_rebuilds () =
  let s, adaptive = make_adaptive ~threshold:0.05 () in
  let rng = Prng.create ~seed:5 in
  (* Alternate narrow bands to force many rebuilds; matching must stay
     exact throughout. *)
  for round = 0 to 5 do
    let lo = if round mod 2 = 0 then 0 else 80 in
    for _ = 1 to 300 do
      let x = Prng.int_in rng ~lo ~hi:(lo + 19) in
      let matched =
        Adaptive.match_event adaptive
          (Event.create_exn s [ ("x", Value.Int x) ])
      in
      let expected =
        List.filteri (fun _ v -> v = x) [ 5; 20; 60; 90 ] <> []
      in
      Alcotest.(check bool) "match correctness" expected (matched <> [])
    done
  done;
  Alcotest.(check bool) "rebuilt several times" true
    (Adaptive.rebuilds adaptive >= 2)

let () =
  Alcotest.run "adaptive"
    [
      ( "adaptive",
        [
          Alcotest.test_case "policy validation" `Quick test_policy_validation;
          Alcotest.test_case "first check at warmup" `Quick test_first_check_at_warmup;
          Alcotest.test_case "last_drift clamped" `Quick test_last_drift_clamped;
          Alcotest.test_case "bootstrap rebuild" `Quick test_first_check_always_rebuilds;
          Alcotest.test_case "stable stream" `Quick test_stable_stream_no_further_rebuilds;
          Alcotest.test_case "drift rebuild" `Quick test_drift_triggers_rebuild;
          Alcotest.test_case "force_check" `Quick test_force_check;
          Alcotest.test_case "correct across rebuilds" `Quick
            test_matching_correct_across_rebuilds;
        ] );
    ]
