(* Self-healing mesh: liveness reaping on both ends, request
   deadlines, bounded-queue backpressure, automatic reconnect with
   journal catch-up, multi-hop relay topologies differentially tested
   against the flat broker, and seeded chaos over a relay chain. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Codec = Genas_ens.Codec
module Journal = Genas_ens.Journal
module Fault = Genas_ens.Fault
module Broker = Genas_ens.Broker
module Notification = Genas_ens.Notification
module Transport = Genas_ens.Transport
module Broker_server = Genas_ens.Broker_server
module Broker_client = Genas_ens.Broker_client
module Relay = Genas_ens.Relay
module Chaos = Genas_ens.Chaos
module Supervise = Genas_ens.Supervise
module Metrics = Genas_obs.Metrics
module Trace = Genas_obs.Trace

let schema () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.int_range ~lo:0 ~hi:9) ]

let event ?(time = 0.0) s x y =
  Event.create_exn ~time s [ ("x", Value.Int x); ("y", Value.Int y) ]

let fresh_path prefix =
  let path = Filename.temp_file prefix ".sock" in
  Sys.remove path;
  path

let fresh_dir () =
  let path = Filename.temp_file "genas_mesh" ".d" in
  Sys.remove path;
  path

let addr () = Transport.Unix_sock (fresh_path "genas_mesh")

let or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let key (e : Event.t) =
  match (e.Event.values.(0), e.Event.values.(1)) with
  | Value.Int x, Value.Int y -> (x, y)
  | _ -> Alcotest.fail "unexpected value shape"

(* Every socket test gets a hard wall-clock bound: a deadlock or a
   lost wakeup kills the binary with a named diagnostic instead of
   hanging the whole suite. *)
let with_timeout secs name f =
  let old =
    Sys.signal Sys.sigalrm
      (Sys.Signal_handle
         (fun _ ->
           prerr_endline ("test timed out after alarm: " ^ name);
           exit 124))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    f

(* Poll [pred] until it holds or [timeout] elapses. *)
let settle ?(timeout = 5.0) name pred =
  let t0 = Transport.now_s () in
  let rec go () =
    if pred () then ()
    else if Transport.now_s () -. t0 > timeout then
      Alcotest.failf "settle timed out: %s" name
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let hb ~period_s ~misses = Some (Transport.heartbeat ~period_s ~misses ())

(* Small-backoff redial policy for fast self-healing in tests. *)
let quick_redial i =
  Supervise.retry_policy ~backoff_ns:2e7 ~multiplier:1.5 ~jitter:0.3
    ~jitter_seed:(100 + i) ()

(* A thread-safe (tag, key) recorder for per-subscriber delivery
   multisets — handlers fire on server/relay/client threads. *)
let recorder () =
  let mu = Mutex.create () in
  let l = ref [] in
  let record tag k =
    Mutex.lock mu;
    l := (tag, k) :: !l;
    Mutex.unlock mu
  in
  let get tag =
    Mutex.lock mu;
    let r =
      List.filter_map
        (fun (t, k) -> if String.equal t tag then Some k else None)
        !l
    in
    Mutex.unlock mu;
    List.sort compare r
  in
  (record, get)

(* A raw scripted peer: accept one connection, optionally answer the
   handshake, then run [after] on the connection. Used to simulate
   half-dead and mute endpoints the full server would never exhibit. *)
let raw_server ?(welcome = true) s a after =
  let lsock = Transport.listen a in
  let th =
    Thread.create
      (fun () ->
        try
          let c = Transport.accept lsock in
          (match Transport.recv c s with
          | Ok (Transport.Hello _) when welcome ->
            Transport.send c
              (Transport.Welcome
                 {
                   version = Transport.protocol_version;
                   fingerprint = Codec.schema_fingerprint s;
                   cursor = 0;
                   name = "raw";
                 })
          | _ -> ());
          after c;
          Transport.close_conn c
        with _ -> ())
      ()
  in
  (lsock, th)

(* Read (and discard) frames until the peer goes away: a peer that
   consumes but never speaks — alive at the TCP level, dead at the
   protocol level. *)
let mute_reader s c =
  let rec go () =
    match Transport.recv c s with Ok _ -> go () | Error _ -> ()
  in
  go ()

(* --- liveness --------------------------------------------------------- *)

let test_server_reaps_half_dead_peer () =
  with_timeout 20 "server reap" @@ fun () ->
  let s = schema () in
  let a = addr () in
  let b = Broker.create s in
  let srv =
    Broker_server.create ~heartbeat:(hb ~period_s:0.1 ~misses:2) ~tick_s:0.02
      ~broker:b a
  in
  Broker_server.start srv;
  Fun.protect
    ~finally:(fun () ->
      Broker_server.stop srv;
      Broker.close b)
    (fun () ->
      (* Handshake, then total silence: no Pong answers, no traffic. *)
      let c = Transport.dial a in
      Transport.send c
        (Transport.Hello
           {
             version = Transport.protocol_version;
             fingerprint = Codec.schema_fingerprint s;
             name = "ghost";
           });
      (match Transport.recv c s with
      | Ok (Transport.Welcome _) -> ()
      | _ -> Alcotest.fail "no welcome");
      settle ~timeout:5.0 "ghost connected" (fun () ->
          Broker_server.connections srv = 1);
      let t0 = Transport.now_s () in
      settle ~timeout:5.0 "ghost reaped" (fun () ->
          Broker_server.reaped srv >= 1 && Broker_server.connections srv = 0);
      let elapsed = Transport.now_s () -. t0 in
      Alcotest.(check bool)
        "reaped within a few heartbeat deadlines" true (elapsed < 2.0);
      Alcotest.(check int) "one reap" 1 (Broker_server.reaped srv);
      Transport.close_conn c)

let test_client_reaps_silent_server () =
  with_timeout 20 "client reap" @@ fun () ->
  let s = schema () in
  let a = addr () in
  (* The raw peer answers the handshake and then only reads: it will
     swallow the client's Pings without ever Ponging. *)
  let lsock, th = raw_server s a (mute_reader s) in
  Fun.protect
    ~finally:(fun () ->
      Unix.close lsock;
      Thread.join th)
    (fun () ->
      let c =
        or_fail
          (Broker_client.connect ~name:"watch"
             ~heartbeat:(hb ~period_s:0.1 ~misses:2) ~tick_s:0.02 s a)
      in
      Fun.protect
        ~finally:(fun () -> Broker_client.close c)
        (fun () ->
          Alcotest.(check bool) "connected" true (Broker_client.connected c);
          let t0 = Transport.now_s () in
          settle ~timeout:5.0 "silent link reaped" (fun () ->
              (not (Broker_client.connected c))
              && Broker_client.heartbeat_misses c = 1);
          let elapsed = Transport.now_s () -. t0 in
          Alcotest.(check bool)
            "reaped within a few heartbeat deadlines" true (elapsed < 2.0)))

(* --- request deadlines ------------------------------------------------ *)

let test_request_deadline () =
  with_timeout 20 "request deadline" @@ fun () ->
  let s = schema () in
  let a = addr () in
  (* Mute after the handshake: requests are read but never Acked. *)
  let lsock, th = raw_server s a (mute_reader s) in
  Fun.protect
    ~finally:(fun () ->
      Unix.close lsock;
      Thread.join th)
    (fun () ->
      let c =
        or_fail
          (Broker_client.connect ~name:"dead" ~deadline_s:0.4 ~heartbeat:None
             ~tick_s:0.02 s a)
      in
      Fun.protect
        ~finally:(fun () -> Broker_client.close c)
        (fun () ->
          let t0 = Transport.now_s () in
          (match Broker_client.publish c (event s 1 1) with
          | Error "timeout" -> ()
          | Error e -> Alcotest.failf "expected timeout, got %S" e
          | Ok _ -> Alcotest.fail "publish acked by a mute server");
          let elapsed = Transport.now_s () -. t0 in
          Alcotest.(check bool) "bounded wait" true (elapsed < 2.0);
          Alcotest.(check bool)
            "deadline expiry keeps the link" true
            (Broker_client.connected c)))

let test_handshake_deadline () =
  with_timeout 20 "handshake deadline" @@ fun () ->
  let s = schema () in
  let a = addr () in
  (* Accepts and reads the Hello, never answers it. *)
  let lsock, th = raw_server ~welcome:false s a (mute_reader s) in
  Fun.protect
    ~finally:(fun () ->
      Unix.close lsock;
      Thread.join th)
    (fun () ->
      let t0 = Transport.now_s () in
      (match Broker_client.connect ~name:"hs" ~deadline_s:0.3 s a with
      | Error "timeout" -> ()
      | Error e -> Alcotest.failf "expected timeout, got %S" e
      | Ok c ->
        Broker_client.close c;
        Alcotest.fail "handshake succeeded against a mute listener");
      let elapsed = Transport.now_s () -. t0 in
      Alcotest.(check bool) "bounded handshake wait" true (elapsed < 2.0))

(* --- backpressure ----------------------------------------------------- *)

let test_slow_consumer_disconnect () =
  with_timeout 60 "slow consumer" @@ fun () ->
  let s = schema () in
  let a = addr () in
  let dir = fresh_dir () in
  let b = Broker.create ~journal:(Journal.config ~snapshot_every:100_000 dir) s in
  (* Tiny queue bound + shrunken kernel send buffer make the trip
     deterministic without megabytes of traffic. Liveness off: the
     stall must be attributed to backpressure, not heartbeats. *)
  let srv =
    Broker_server.create ~max_queue:32 ~sndbuf:4096 ~heartbeat:None ~broker:b a
  in
  Broker_server.start srv;
  Fun.protect
    ~finally:(fun () ->
      Broker_server.stop srv;
      Broker.close b)
    (fun () ->
      let stalled =
        or_fail (Broker_client.connect ~name:"stalled" ~heartbeat:None s a)
      in
      let healthy =
        or_fail (Broker_client.connect ~name:"healthy" ~heartbeat:None s a)
      in
      Fun.protect
        ~finally:(fun () ->
          Broker_client.close stalled;
          Broker_client.close healthy)
        (fun () ->
          ignore (or_fail (Broker_client.subscribe stalled "x >= 0" (fun _ -> ())));
          ignore (or_fail (Broker_client.subscribe healthy "x >= 0" (fun _ -> ())));
          Broker_client.pause_rx stalled;
          let published = ref 0 in
          let i = ref 0 in
          while Broker_server.slow_disconnects srv = 0 && !i < 5000 do
            incr i;
            ignore
              (Broker_server.publish srv [| event s (!i mod 10) (!i / 10 mod 10) |]);
            incr published
          done;
          Alcotest.(check int)
            "bounded queue tripped exactly once" 1
            (Broker_server.slow_disconnects srv);
          Broker_client.resume_rx stalled;
          settle ~timeout:5.0 "stalled peer disconnected" (fun () ->
              not (Broker_client.connected stalled));
          (* The healthy peer was never penalized and sees everything. *)
          settle ~timeout:10.0 "healthy peer complete" (fun () ->
              ignore (Broker_client.drain healthy);
              Broker_client.applied_total healthy = !published);
          (* Journal-backed replay is the slow consumer's catch-up. *)
          or_fail (Broker_client.reconnect stalled);
          let _, complete = or_fail (Broker_client.replay stalled) in
          Alcotest.(check bool) "replay complete" true complete;
          settle ~timeout:10.0 "stalled peer caught up" (fun () ->
              ignore (Broker_client.drain stalled);
              Broker_client.applied_total stalled = !published)))

(* --- auto-reconnect --------------------------------------------------- *)

let test_auto_reconnect_replay () =
  with_timeout 60 "auto reconnect" @@ fun () ->
  let s = schema () in
  let a = addr () in
  let dir = fresh_dir () in
  let b = Broker.create ~journal:(Journal.config ~snapshot_every:100_000 dir) s in
  let make_srv () =
    let srv = Broker_server.create ~broker:b a in
    Broker_server.start srv;
    srv
  in
  let srv = ref (make_srv ()) in
  let record, get = recorder () in
  let c =
    or_fail
      (Broker_client.connect ~name:"c6" ~reconnect:(quick_redial 6)
         ~max_backoff_s:0.3 ~tick_s:0.01 ~auto_drain:true s a)
  in
  Fun.protect
    ~finally:(fun () ->
      Broker_client.close c;
      Broker_server.stop !srv;
      Broker.close b)
    (fun () ->
      ignore
        (or_fail
           (Broker_client.subscribe c ~subscriber:"c6" "x >= 0" (fun n ->
                record "c6" (key n.Notification.event))));
      for i = 0 to 4 do
        ignore (Broker_server.publish !srv [| event s i i |])
      done;
      settle ~timeout:5.0 "first half applied" (fun () ->
          Broker_client.applied_total c = 5);
      (* Kill the serving process (broker survives, as under
         [Broker.recover]); the client must notice unaided. *)
      Broker_server.stop !srv;
      settle ~timeout:5.0 "link loss detected" (fun () ->
          not (Broker_client.connected c));
      srv := make_srv ();
      settle ~timeout:5.0 "self-healed" (fun () ->
          Broker_client.connected c && Broker_client.reconnects c >= 1);
      for i = 5 to 9 do
        ignore (Broker_server.publish !srv [| event s i i |])
      done;
      settle ~timeout:5.0 "second half applied" (fun () ->
          Broker_client.applied_total c = 10);
      Alcotest.(check (list (pair int int)))
        "exactly once across the kill/restart"
        (List.init 10 (fun i -> (i, i)))
        (get "c6"))

(* --- multi-hop relays ------------------------------------------------- *)

(* Chain: leaf peers -> R2 -> R1 -> root. Deliveries must be
   bit-identical to the same subscriptions against one flat broker. *)
let test_relay_chain_matches_flat () =
  with_timeout 60 "relay chain" @@ fun () ->
  let s = schema () in
  let a0 = addr () and a1 = addr () and a2 = addr () in
  let rootb =
    Broker.create
      ~journal:(Journal.config ~snapshot_every:100_000 (fresh_dir ()))
      s
  in
  let root = Broker_server.create ~name:"root" ~broker:rootb a0 in
  Broker_server.start root;
  let r1 =
    or_fail
      (Relay.create
         ~journal:(Journal.config ~snapshot_every:100_000 (fresh_dir ()))
         ~reconnect:(quick_redial 1) ~tick_s:0.01 ~name:"R1" ~up:a0 ~listen:a1
         s)
  in
  let r2 =
    or_fail
      (Relay.create
         ~journal:(Journal.config ~snapshot_every:100_000 (fresh_dir ()))
         ~reconnect:(quick_redial 2) ~tick_s:0.01 ~name:"R2" ~up:a1 ~listen:a2
         s)
  in
  let record, get = recorder () in
  let leafsub = or_fail (Broker_client.connect ~name:"leafsub" ~auto_drain:true s a2) in
  let midsub = or_fail (Broker_client.connect ~name:"midsub" ~auto_drain:true s a1) in
  let leafpub = or_fail (Broker_client.connect ~name:"leafpub" s a2) in
  Fun.protect
    ~finally:(fun () ->
      Broker_client.close leafsub;
      Broker_client.close midsub;
      Broker_client.close leafpub;
      Relay.close r2;
      Relay.close r1;
      Broker_server.stop root;
      Broker.close rootb)
    (fun () ->
      ignore
        (or_fail
           (Broker_client.subscribe leafsub ~subscriber:"leafsub" "x >= 5"
              (fun n -> record "leafsub" (key n.Notification.event))));
      ignore
        (or_fail
           (Broker_client.subscribe leafsub ~subscriber:"leafsub" "y <= 3"
              (fun n -> record "leafsub" (key n.Notification.event))));
      ignore
        (or_fail
           (Broker_client.subscribe midsub ~subscriber:"midsub" "x <= 2"
              (fun n -> record "midsub" (key n.Notification.event))));
      let leaf_events = [ (6, 2); (1, 7); (9, 9); (2, 1); (5, 3) ] in
      let root_events = [ (7, 0); (0, 0) ] in
      List.iter
        (fun (x, y) ->
          ignore (or_fail (Broker_client.publish leafpub (event s x y))))
        leaf_events;
      List.iter
        (fun (x, y) -> ignore (Broker_server.publish root [| event s x y |]))
        root_events;
      (* Reference: the same subscriptions against one flat broker. *)
      let refb = Broker.create s in
      let ref_record, ref_get = recorder () in
      List.iter
        (fun (tag, body) ->
          ignore
            (or_fail
               (Broker.subscribe_text refb ~subscriber:tag body (fun n ->
                    ref_record tag (key n.Notification.event)))))
        [ ("leafsub", "x >= 5"); ("leafsub", "y <= 3"); ("midsub", "x <= 2") ];
      List.iter
        (fun (x, y) -> ignore (Broker.publish refb (event s x y)))
        (leaf_events @ root_events);
      Broker.close refb;
      settle ~timeout:10.0 "chain converged" (fun () ->
          List.length (get "leafsub") = List.length (ref_get "leafsub")
          && List.length (get "midsub") = List.length (ref_get "midsub"));
      Alcotest.(check (list (pair int int)))
        "leafsub bit-identical to flat" (ref_get "leafsub") (get "leafsub");
      Alcotest.(check (list (pair int int)))
        "midsub bit-identical to flat" (ref_get "midsub") (get "midsub"))

(* Tree: R1 and R2 both under root. An event published at a leaf of
   R1 reaches every subscriber exactly once and never echoes back to
   its publisher. *)
let test_relay_tree_no_echo () =
  with_timeout 60 "relay tree" @@ fun () ->
  let s = schema () in
  let a0 = addr () and a1 = addr () and a2 = addr () in
  let rootb = Broker.create s in
  let root = Broker_server.create ~name:"root" ~broker:rootb a0 in
  Broker_server.start root;
  let r1 =
    or_fail
      (Relay.create ~reconnect:(quick_redial 1) ~tick_s:0.01 ~name:"R1" ~up:a0
         ~listen:a1 s)
  in
  let r2 =
    or_fail
      (Relay.create ~reconnect:(quick_redial 2) ~tick_s:0.01 ~name:"R2" ~up:a0
         ~listen:a2 s)
  in
  let record, get = recorder () in
  let subA = or_fail (Broker_client.connect ~name:"subA" ~auto_drain:true s a1) in
  let subB = or_fail (Broker_client.connect ~name:"subB" ~auto_drain:true s a2) in
  let pubA = or_fail (Broker_client.connect ~name:"pubA" ~auto_drain:true s a1) in
  Fun.protect
    ~finally:(fun () ->
      Broker_client.close subA;
      Broker_client.close subB;
      Broker_client.close pubA;
      Relay.close r2;
      Relay.close r1;
      Broker_server.stop root;
      Broker.close rootb)
    (fun () ->
      List.iter
        (fun (tag, c) ->
          ignore
            (or_fail
               (Broker_client.subscribe c ~subscriber:tag "x >= 0" (fun n ->
                    record tag (key n.Notification.event)))))
        [ ("subA", subA); ("subB", subB); ("pubA", pubA) ];
      ignore (or_fail (Broker_client.publish pubA (event s 3 3)));
      settle ~timeout:10.0 "fanout converged" (fun () ->
          List.length (get "subA") = 1 && List.length (get "subB") = 1);
      (* pubA's own copy came from its local broker; the mesh must not
         hand it a second one. Let late echoes (if any) arrive. *)
      Thread.delay 0.3;
      Alcotest.(check int) "subA exactly once" 1 (List.length (get "subA"));
      Alcotest.(check int) "subB exactly once" 1 (List.length (get "subB"));
      Alcotest.(check int) "no echo to publisher" 1 (List.length (get "pubA"));
      (* And downward from the root, across both branches. *)
      ignore (Broker_server.publish root [| event s 4 4 |]);
      settle ~timeout:10.0 "root fanout converged" (fun () ->
          List.length (get "subA") = 2
          && List.length (get "subB") = 2
          && List.length (get "pubA") = 2))

(* --- chaos ------------------------------------------------------------ *)

let test_chaos_plan_determinism () =
  let spec = { Chaos.steps = 50; kill = 0.2; partition = 0.3; stall = 0.1 } in
  let p1 = Chaos.plan ~seed:7 ~clients:3 spec in
  let p2 = Chaos.plan ~seed:7 ~clients:3 spec in
  Alcotest.(check string)
    "same (seed, clients, spec) -> same plan" (Chaos.to_string p1)
    (Chaos.to_string p2);
  let calm, kill, partition, stall = Chaos.counts p1 in
  Alcotest.(check int) "counts partition the steps" 50
    (calm + kill + partition + stall);
  let p3 = Chaos.plan ~seed:8 ~clients:3 spec in
  Alcotest.(check bool)
    "different seed -> different plan" false
    (String.equal (Chaos.to_string p1) (Chaos.to_string p3));
  List.iter
    (fun (label, clients, spec) ->
      match Chaos.plan ~seed:1 ~clients spec with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "expected Invalid_argument: %s" label)
    [
      ("probability above 1", 2,
       { Chaos.steps = 5; kill = 1.5; partition = 0.0; stall = 0.0 });
      ("probabilities sum above 1", 2,
       { Chaos.steps = 5; kill = 0.6; partition = 0.6; stall = 0.0 });
      ("targeted faults with no clients", 0,
       { Chaos.steps = 5; kill = 0.0; partition = 0.5; stall = 0.0 });
      ("negative steps", 2,
       { Chaos.steps = -1; kill = 0.0; partition = 0.0; stall = 0.0 });
    ]

(* The tentpole differential: a 3-node relay chain under a seeded
   chaos plan (root kill/restarts, link partitions, receiver stalls)
   plus seeded link faults on the root's deliveries (drop / duplicate
   / delay). Self-healing only — no operator action in the loop — and
   the final delivery multisets must be bit-identical to one flat
   broker. Actions fire at step boundaries, after the previous step's
   settle: upstream forwarding is at-least-once, and a kill with an
   ack in flight would duplicate the batch (docs/NETWORKING.md). *)
let test_chaos_differential () =
  with_timeout 180 "chaos differential" @@ fun () ->
  let s = schema () in
  let a0 = addr () and a1 = addr () and a2 = addr () in
  let rootb =
    Broker.create
      ~journal:(Journal.config ~snapshot_every:100_000 (fresh_dir ()))
      s
  in
  let record, get = recorder () in
  ignore
    (or_fail
       (Broker.subscribe_text rootb ~subscriber:"rootsub" "x >= 0" (fun n ->
            record "rootsub" (key n.Notification.event))));
  let restarts = ref 0 in
  let make_root () =
    incr restarts;
    let faults =
      Fault.plan ~seed:(11 + !restarts)
        { Fault.none with link_drop = 0.25; link_duplicate = 0.1;
          link_delay = 0.1 }
    in
    let srv = Broker_server.create ~faults ~name:"root" ~broker:rootb a0 in
    Broker_server.start srv;
    srv
  in
  let root = ref (make_root ()) in
  let r1 =
    or_fail
      (Relay.create
         ~journal:(Journal.config ~snapshot_every:100_000 (fresh_dir ()))
         ~reconnect:(quick_redial 1) ~deadline_s:2.0 ~tick_s:0.01 ~name:"R1"
         ~up:a0 ~listen:a1 s)
  in
  let r2 =
    or_fail
      (Relay.create
         ~journal:(Journal.config ~snapshot_every:100_000 (fresh_dir ()))
         ~reconnect:(quick_redial 2) ~deadline_s:2.0 ~tick_s:0.01 ~name:"R2"
         ~up:a1 ~listen:a2 s)
  in
  let leafsub = or_fail (Broker_client.connect ~name:"leafsub" ~auto_drain:true s a2) in
  let midsub = or_fail (Broker_client.connect ~name:"midsub" ~auto_drain:true s a1) in
  let leafpub = or_fail (Broker_client.connect ~name:"leafpub" s a2) in
  Fun.protect
    ~finally:(fun () ->
      Broker_client.close leafsub;
      Broker_client.close midsub;
      Broker_client.close leafpub;
      Relay.close r2;
      Relay.close r1;
      Broker_server.stop !root;
      Broker.close rootb)
    (fun () ->
      ignore
        (or_fail
           (Broker_client.subscribe leafsub ~subscriber:"leafsub" "x >= 5"
              (fun n -> record "leafsub" (key n.Notification.event))));
      ignore
        (or_fail
           (Broker_client.subscribe midsub ~subscriber:"midsub" "x <= 4"
              (fun n -> record "midsub" (key n.Notification.event))));
      let links = [| Relay.client r1; Relay.client r2 |] in
      let healed name =
        settle ~timeout:30.0 name (fun () ->
            Broker_client.connected links.(0)
            && Broker_client.connected links.(1)
            && Broker_client.outbox_depth links.(0) = 0
            && Broker_client.outbox_depth links.(1) = 0)
      in
      let published = ref [] in
      let next = ref 0 in
      let gen () =
        let i = !next in
        incr next;
        let e = event s (i mod 10) (i / 10 mod 10) in
        published := e :: !published;
        e
      in
      let plan =
        Chaos.plan ~seed:5 ~clients:2
          { Chaos.steps = 12; kill = 0.25; partition = 0.25; stall = 0.15 }
      in
      Array.iter
        (fun action ->
          let resumer =
            match action with
            | Chaos.Calm -> None
            | Chaos.Kill_restart ->
              Broker_server.stop !root;
              root := make_root ();
              None
            | Chaos.Partition i ->
              Broker_client.drop_link links.(i);
              None
            | Chaos.Stall i ->
              (* Transient: the stall must end well inside the relay
                 deadline, or a timed-out (but applied) upstream
                 publish would be re-sent and double-applied. *)
              Broker_client.pause_rx links.(i);
              Some
                (Thread.create
                   (fun () ->
                     Thread.delay 0.15;
                     Broker_client.resume_rx links.(i))
                   ())
          in
          for _ = 1 to 3 do
            ignore (or_fail (Broker_client.publish leafpub (gen ())))
          done;
          ignore (Relay.publish r1 [| gen () |]);
          (match resumer with Some th -> Thread.join th | None -> ());
          healed "step healed")
        plan;
      (* One forced final kill/restart: the reconnect's replay is what
         recovers root->R1 live deliveries the fault plan dropped. *)
      Broker_server.stop !root;
      root := make_root ();
      healed "final heal";
      (* Reference: the same subscriptions against one flat broker. *)
      let refb = Broker.create s in
      let ref_record, ref_get = recorder () in
      List.iter
        (fun (tag, body) ->
          ignore
            (or_fail
               (Broker.subscribe_text refb ~subscriber:tag body (fun n ->
                    ref_record tag (key n.Notification.event)))))
        [ ("rootsub", "x >= 0"); ("leafsub", "x >= 5"); ("midsub", "x <= 4") ];
      List.iter (fun e -> ignore (Broker.publish refb e)) (List.rev !published);
      Broker.close refb;
      settle ~timeout:30.0 "chaos converged" (fun () ->
          List.length (get "rootsub") = List.length (ref_get "rootsub")
          && List.length (get "leafsub") = List.length (ref_get "leafsub")
          && List.length (get "midsub") = List.length (ref_get "midsub"));
      List.iter
        (fun tag ->
          Alcotest.(check (list (pair int int)))
            (tag ^ " bit-identical to flat under chaos")
            (ref_get tag) (get tag))
        [ "rootsub"; "leafsub"; "midsub" ])

(* --- soak ------------------------------------------------------------- *)

let read_proc_threads () =
  let ic = open_in "/proc/self/status" in
  let rec go acc =
    match input_line ic with
    | line ->
      if String.length line > 8 && String.equal (String.sub line 0 8) "Threads:"
      then
        go
          (int_of_string
             (String.trim (String.sub line 8 (String.length line - 8))))
      else go acc
    | exception End_of_file -> acc
  in
  let n = go 0 in
  close_in ic;
  n

let read_proc_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_soak_kill_restart () =
  with_timeout 180 "soak" @@ fun () ->
  let s = schema () in
  let a = addr () in
  let dir = fresh_dir () in
  let b = Broker.create ~journal:(Journal.config ~snapshot_every:100_000 dir) s in
  let make_srv () =
    let srv = Broker_server.create ~broker:b a in
    Broker_server.start srv;
    srv
  in
  let srv = ref (make_srv ()) in
  let record, get = recorder () in
  let clients =
    Array.init 3 (fun i ->
        let name = Printf.sprintf "soak%d" i in
        let c =
          or_fail
            (Broker_client.connect ~name ~reconnect:(quick_redial (20 + i))
               ~max_backoff_s:0.2 ~tick_s:0.01 ~auto_drain:true s a)
        in
        ignore
          (or_fail
             (Broker_client.subscribe c ~subscriber:name "x >= 0" (fun n ->
                  record name (key n.Notification.event))));
        c)
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter Broker_client.close clients;
      Broker_server.stop !srv;
      Broker.close b)
    (fun () ->
      let published = ref [] in
      let total = ref 0 in
      let warm_threads = ref 0 and warm_fds = ref 0 in
      let cycles = 10 in
      for cycle = 1 to cycles do
        (* Kill the serving process; every client must notice and
           self-heal against the restarted one. *)
        Broker_server.stop !srv;
        srv := make_srv ();
        settle ~timeout:10.0 "all clients healed" (fun () ->
            Array.for_all Broker_client.connected clients);
        for i = 1 to 3 do
          let v = (!total + i) mod 10 in
          let e = event s v ((!total + i) / 10 mod 10) in
          published := key e :: !published;
          ignore (Broker_server.publish !srv [| e |])
        done;
        total := !total + 3;
        let want = !total in
        settle ~timeout:10.0 "cycle applied exactly once" (fun () ->
            Array.for_all
              (fun c -> Broker_client.applied_total c = want)
              clients);
        if cycle = 2 then begin
          warm_threads := read_proc_threads ();
          warm_fds := read_proc_fds ()
        end
      done;
      (* Threads and descriptors must not accumulate across cycles. *)
      let end_threads = read_proc_threads () and end_fds = read_proc_fds () in
      Alcotest.(check bool)
        (Printf.sprintf "no thread leak (%d warm, %d after)" !warm_threads
           end_threads)
        true
        (end_threads <= !warm_threads + 2);
      Alcotest.(check bool)
        (Printf.sprintf "no fd leak (%d warm, %d after)" !warm_fds end_fds)
        true
        (end_fds <= !warm_fds + 2);
      let expect = List.sort compare !published in
      Array.iteri
        (fun i c ->
          Alcotest.(check bool)
            (Printf.sprintf "soak%d reconnected every cycle" i)
            true
            (Broker_client.reconnects c >= cycles);
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "soak%d delivered exactly once" i)
            expect
            (get (Printf.sprintf "soak%d" i)))
        clients)

(* --- metrics ---------------------------------------------------------- *)

let test_mesh_metrics () =
  with_timeout 60 "metrics" @@ fun () ->
  let reg = Metrics.create () in
  let s = schema () in
  let a = addr () in
  let dir = fresh_dir () in
  let b = Broker.create ~journal:(Journal.config ~snapshot_every:100_000 dir) s in
  let make_srv () =
    let srv = Broker_server.create ~metrics:reg ~name:"srv" ~broker:b a in
    Broker_server.start srv;
    srv
  in
  let srv = ref (make_srv ()) in
  let c =
    or_fail
      (Broker_client.connect ~name:"mc" ~metrics:reg
         ~reconnect:(quick_redial 9) ~max_backoff_s:0.2 ~tick_s:0.01
         ~auto_drain:true s a)
  in
  (* Re-registering an identity returns the existing instrument — the
     sanctioned way for a test to look one up. *)
  let cl = [ ("node", "mc"); ("role", "client") ] in
  let sl = [ ("node", "srv"); ("role", "server") ] in
  let g_state = Metrics.gauge reg ~labels:cl "genas_net_peer_state" in
  let c_rec = Metrics.counter reg ~labels:cl "genas_net_reconnects_total" in
  let g_conns = Metrics.gauge reg ~labels:sl "genas_net_peer_state" in
  let h_queue = Metrics.histogram reg ~labels:sl "genas_net_outbound_queue_depth" in
  Fun.protect
    ~finally:(fun () ->
      Broker_client.close c;
      Broker_server.stop !srv;
      Broker.close b)
    (fun () ->
      ignore (or_fail (Broker_client.subscribe c ~subscriber:"mc" "x >= 0" (fun _ -> ())));
      Alcotest.(check (float 0.0)) "link up" 1.0 (Metrics.Gauge.value g_state);
      settle ~timeout:5.0 "server counts the peer" (fun () ->
          Metrics.Gauge.value g_conns = 1.0);
      ignore (Broker_server.publish !srv [| event s 1 1 |]);
      settle ~timeout:5.0 "queue depth observed" (fun () ->
          Metrics.Histogram.count h_queue > 0);
      Broker_server.stop !srv;
      settle ~timeout:5.0 "link down visible" (fun () ->
          Metrics.Gauge.value g_state = 0.0);
      srv := make_srv ();
      settle ~timeout:5.0 "reconnect counted" (fun () ->
          Metrics.Counter.value c_rec >= 1
          && Metrics.Gauge.value g_state = 1.0);
      (* Heartbeat misses need a peer that is mute, not gone. *)
      let a2 = addr () in
      let lsock, th = raw_server s a2 (mute_reader s) in
      Fun.protect
        ~finally:(fun () ->
          Unix.close lsock;
          Thread.join th)
        (fun () ->
          let c2 =
            or_fail
              (Broker_client.connect ~name:"mh" ~metrics:reg
                 ~heartbeat:(hb ~period_s:0.1 ~misses:2) ~tick_s:0.02 s a2)
          in
          Fun.protect
            ~finally:(fun () -> Broker_client.close c2)
            (fun () ->
              let c_miss =
                Metrics.counter reg
                  ~labels:[ ("node", "mh"); ("role", "client") ]
                  "genas_net_heartbeat_misses_total"
              in
              settle ~timeout:5.0 "heartbeat miss counted" (fun () ->
                  Metrics.Counter.value c_miss >= 1))))

(* --- observability ---------------------------------------------------- *)

let count_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.equal (String.sub hay i nl) needle then go (i + nl) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* The tentpole acceptance: a publish at the leaf of a chain and its
   delivery at the root share one trace id, each hop's trace records
   its remote parent, and [merge_dumps] stitches the three flight
   recorders into one Chrome trace with cross-process flow arrows. *)
let test_trace_propagation_chain () =
  with_timeout 60 "trace chain" @@ fun () ->
  let s = schema () in
  let a0 = addr () and a1 = addr () in
  let tr_root = Trace.create ~seed:1 () in
  let tr_mid = Trace.create ~seed:2 () in
  let tr_leaf = Trace.create ~seed:3 () in
  let rootb = Broker.create s in
  let delivered_tid = ref None in
  ignore
    (or_fail
       (Broker.subscribe_text rootb ~subscriber:"rootsub" "x >= 0" (fun _ ->
            (* Fires inside the root's net.rx_publish span: the trace
               active right now is the one the leaf started. *)
            delivered_tid := Trace.current_trace_id tr_root)));
  let root =
    Broker_server.create ~name:"root" ~tracer:tr_root ~broker:rootb a0
  in
  Broker_server.start root;
  let r1 =
    or_fail
      (Relay.create ~tracer:tr_mid ~reconnect:(quick_redial 1) ~tick_s:0.01
         ~name:"R1" ~up:a0 ~listen:a1 s)
  in
  let leaf = or_fail (Broker_client.connect ~name:"leaf" ~tracer:tr_leaf s a1) in
  Fun.protect
    ~finally:(fun () ->
      Broker_client.close leaf;
      Relay.close r1;
      Broker_server.stop root;
      Broker.close rootb)
    (fun () ->
      ignore (or_fail (Broker_client.publish leaf (event s 3 4)));
      settle ~timeout:10.0 "root traced the publish" (fun () ->
          Trace.completed tr_root >= 1);
      let find tr name =
        match
          List.find_opt
            (fun t -> String.equal t.Trace.root_name name)
            (Trace.traces tr)
        with
        | Some t -> t
        | None -> Alcotest.failf "no %s trace" name
      in
      let leaf_t = find tr_leaf "net.publish" in
      let mid_t = find tr_mid "net.rx_publish" in
      let root_t = find tr_root "net.rx_publish" in
      Alcotest.(check int)
        "leaf and mid share the trace id" leaf_t.Trace.trace_id
        mid_t.Trace.trace_id;
      Alcotest.(check int)
        "leaf and root share the trace id" leaf_t.Trace.trace_id
        root_t.Trace.trace_id;
      Alcotest.(check (option int))
        "delivery at the root ran under the leaf's trace id"
        (Some leaf_t.Trace.trace_id) !delivered_tid;
      (match mid_t.Trace.remote with
      | Some ("leaf", p) -> Alcotest.(check bool) "mid parent span" true (p >= 0)
      | other ->
        Alcotest.failf "mid remote link: %s"
          (match other with
          | None -> "none"
          | Some (n, p) -> Printf.sprintf "(%s, %d)" n p));
      (match root_t.Trace.remote with
      | Some ("R1", _) -> ()
      | _ -> Alcotest.fail "root remote link should name R1");
      (* Stitch: one pid per node, two net.ctx flow arrows
         (leaf -> R1, R1 -> root). *)
      let merged =
        Trace.merge_dumps
          [
            Trace.export tr_leaf ~node:"leaf";
            Trace.export tr_mid ~node:"R1";
            Trace.export tr_root ~node:"root";
          ]
      in
      Alcotest.(check int)
        "two cross-process flow arrows" 2
        (count_substring merged "\"ph\": \"s\"");
      Alcotest.(check bool)
        "arrows are net.ctx flows" true
        (count_substring merged "net.ctx" >= 2))

(* Status_req fans out across the chain: asking the relay returns its
   own row first, then the root's, each with live peer tables. *)
let test_status_fanout () =
  with_timeout 60 "status fanout" @@ fun () ->
  let s = schema () in
  let a0 = addr () and a1 = addr () in
  let rootb = Broker.create s in
  let root = Broker_server.create ~name:"root" ~broker:rootb a0 in
  Broker_server.start root;
  let r1 =
    or_fail
      (Relay.create ~reconnect:(quick_redial 1) ~tick_s:0.01 ~name:"R1" ~up:a0
         ~listen:a1 s)
  in
  let c = or_fail (Broker_client.connect ~name:"probe" s a1) in
  Fun.protect
    ~finally:(fun () ->
      Broker_client.close c;
      Relay.close r1;
      Broker_server.stop root;
      Broker.close rootb)
    (fun () ->
      Alcotest.(check string)
        "upstream name from Welcome" "R1" (Broker_client.upstream c);
      let nodes = or_fail (Broker_client.status_request c) in
      Alcotest.(check (list string))
        "chain in hop order" [ "R1"; "root" ]
        (List.map (fun n -> n.Transport.ns_node) nodes);
      Alcotest.(check (list string))
        "roles" [ "relay"; "server" ]
        (List.map (fun n -> n.Transport.ns_role) nodes);
      let r1_row = List.nth nodes 0 and root_row = List.nth nodes 1 in
      Alcotest.(check bool)
        "relay sees the probe as a peer" true
        (List.exists
           (fun p -> String.equal p.Transport.ps_name "probe")
           r1_row.Transport.ns_peers);
      Alcotest.(check bool)
        "root sees the relay as a peer" true
        (List.exists
           (fun p -> String.equal p.Transport.ps_name "R1")
           root_row.Transport.ns_peers);
      Alcotest.(check bool)
        "uptimes are sane" true
        (List.for_all (fun n -> n.Transport.ns_uptime_s >= 0.0) nodes))

let () =
  Alcotest.run "mesh"
    [
      ( "liveness",
        [
          Alcotest.test_case "server reaps half-dead peer" `Quick
            test_server_reaps_half_dead_peer;
          Alcotest.test_case "client reaps silent server" `Quick
            test_client_reaps_silent_server;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "request deadline" `Quick test_request_deadline;
          Alcotest.test_case "handshake deadline" `Quick
            test_handshake_deadline;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "slow consumer disconnect" `Quick
            test_slow_consumer_disconnect;
        ] );
      ( "reconnect",
        [
          Alcotest.test_case "auto-reconnect with replay" `Quick
            test_auto_reconnect_replay;
        ] );
      ( "relays",
        [
          Alcotest.test_case "chain matches flat broker" `Quick
            test_relay_chain_matches_flat;
          Alcotest.test_case "tree no-echo" `Quick test_relay_tree_no_echo;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "plan determinism" `Quick
            test_chaos_plan_determinism;
          Alcotest.test_case "chain differential under chaos" `Quick
            test_chaos_differential;
        ] );
      ( "soak",
        [
          Alcotest.test_case "kill/restart cycles" `Quick
            test_soak_kill_restart;
        ] );
      ( "metrics",
        [ Alcotest.test_case "mesh metrics" `Quick test_mesh_metrics ];
      );
      ( "observability",
        [
          Alcotest.test_case "trace propagation across a chain" `Quick
            test_trace_propagation_chain;
          Alcotest.test_case "status fanout across a chain" `Quick
            test_status_fanout;
        ] );
    ]
