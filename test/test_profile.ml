(* Profiles: predicate denotations, conjunctive matching, registry
   semantics, and the covering relation. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Axis = Genas_model.Axis
module Iset = Genas_interval.Iset
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Covering = Genas_profile.Covering
module Gen = Genas_testlib.Gen

(* ------------------------- predicates ----------------------------- *)

let int10 = Domain.int_range ~lo:0 ~hi:10

let test_denote_shapes () =
  let denote t =
    match Predicate.denote int10 t with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let mem t x = Iset.mem (denote t) (float_of_int x) in
  Alcotest.(check bool) "eq in" true (mem (Predicate.Eq (Value.Int 5)) 5);
  Alcotest.(check bool) "eq out" false (mem (Predicate.Eq (Value.Int 5)) 6);
  Alcotest.(check bool) "neq" true (mem (Predicate.Neq (Value.Int 5)) 6);
  Alcotest.(check bool) "neq self" false (mem (Predicate.Neq (Value.Int 5)) 5);
  Alcotest.(check bool) "lt" true (mem (Predicate.Lt (Value.Int 5)) 4);
  Alcotest.(check bool) "lt boundary" false (mem (Predicate.Lt (Value.Int 5)) 5);
  Alcotest.(check bool) "ge boundary" true (mem (Predicate.Ge (Value.Int 5)) 5);
  Alcotest.(check bool) "one_of" true
    (mem (Predicate.One_of [ Value.Int 1; Value.Int 9 ]) 9);
  Alcotest.(check bool) "between open" false
    (mem
       (Predicate.Between
          { lo = Value.Int 2; lo_closed = false; hi = Value.Int 4; hi_closed = true })
       2)

let test_denote_errors () =
  let err t =
    match Predicate.denote int10 t with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected denote error"
  in
  err (Predicate.Eq (Value.Str "x"));  (* kind mismatch *)
  err (Predicate.Eq (Value.Int 99));  (* out of domain *)
  err
    (Predicate.Between
       { lo = Value.Int 4; lo_closed = true; hi = Value.Int 2; hi_closed = true });
  err (Predicate.One_of [])

let test_denote_enum_order () =
  let dom = Domain.enum [ "low"; "mid"; "high" ] in
  match Predicate.denote dom (Predicate.Le (Value.Str "mid")) with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check bool) "low" true (Iset.mem s 0.0);
    Alcotest.(check bool) "mid" true (Iset.mem s 1.0);
    Alcotest.(check bool) "high" false (Iset.mem s 2.0)

let test_custom_operator () =
  (* A runtime-defined operator (§4.2): "near 5" = within ±1. *)
  let near5 =
    Predicate.Custom
      {
        name = "near5";
        iset =
          Iset.of_interval
            (Genas_interval.Interval.make_exn ~lo:4.0 ~hi:6.0 ());
      }
  in
  Alcotest.(check bool) "holds inside" true
    (Predicate.holds int10 near5 (Value.Int 5));
  Alcotest.(check bool) "holds boundary" true
    (Predicate.holds int10 near5 (Value.Int 4));
  Alcotest.(check bool) "fails outside" false
    (Predicate.holds int10 near5 (Value.Int 8));
  (* Custom predicates participate in full profiles and trees. *)
  let s = Schema.create_exn [ ("x", int10) ] in
  let pset = Profile_set.create s in
  ignore (Profile_set.add pset (Profile.create_exn s [ ("x", near5) ]));
  let d = Genas_filter.Decomp.build pset in
  let tree = Genas_filter.Tree.build d (Genas_filter.Tree.default_config d) in
  Alcotest.(check (list int)) "tree match" [ 0 ]
    (Genas_filter.Tree.match_coords tree [| 5.0 |]);
  Alcotest.(check (list int)) "tree reject" []
    (Genas_filter.Tree.match_coords tree [| 9.0 |])

let prop_holds_agrees_with_denote =
  QCheck.Test.make ~name:"holds = denotation membership" ~count:500
    (QCheck.make
       QCheck.Gen.(
         Gen.domain >>= fun d ->
         Gen.test_for d >>= fun t ->
         Gen.value_in d >|= fun v -> (d, t, v)))
    (fun (d, t, v) ->
      match Predicate.denote d t with
      | Error _ -> QCheck.assume_fail ()
      | Ok s -> Predicate.holds d t v = Iset.mem s (Axis.coord_exn d v))

(* ------------------------- profiles ------------------------------- *)

let schema3 () =
  Schema.create_exn
    [
      ("t", Domain.int_range ~lo:0 ~hi:100);
      ("h", Domain.float_range ~lo:0.0 ~hi:1.0);
      ("k", Domain.enum [ "a"; "b" ]);
    ]

let test_profile_create () =
  let s = schema3 () in
  let p =
    Profile.create_exn s
      [ ("t", Predicate.Ge (Value.Int 50)); ("k", Predicate.Eq (Value.Str "a")) ]
  in
  Alcotest.(check (list int)) "constrained" [ 0; 2 ] (Profile.constrained p);
  Alcotest.(check bool) "dont care h" true (Profile.is_dont_care p 1);
  Alcotest.(check int) "arity used" 2 (Profile.arity_used p)

let test_profile_conjunction_same_attr () =
  let s = schema3 () in
  let p =
    Profile.create_exn s
      [ ("t", Predicate.Ge (Value.Int 20)); ("t", Predicate.Le (Value.Int 40)) ]
  in
  let event t =
    Event.create_exn s
      [ ("t", Value.Int t); ("h", Value.Float 0.5); ("k", Value.Str "a") ]
  in
  Alcotest.(check bool) "30 in" true (Profile.matches s p (event 30));
  Alcotest.(check bool) "10 out" false (Profile.matches s p (event 10));
  Alcotest.(check bool) "50 out" false (Profile.matches s p (event 50))

let test_profile_errors () =
  let s = schema3 () in
  let err specs =
    match Profile.create s specs with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected profile error"
  in
  err [ ("zz", Predicate.Eq (Value.Int 1)) ];
  err [ ("t", Predicate.Eq (Value.Str "x")) ];
  (* Contradictory conjunction is unsatisfiable. *)
  err [ ("t", Predicate.Lt (Value.Int 10)); ("t", Predicate.Gt (Value.Int 20)) ]

let test_empty_profile_matches_everything () =
  let s = schema3 () in
  let p = Profile.create_exn s [] in
  let e =
    Event.create_exn s
      [ ("t", Value.Int 7); ("h", Value.Float 0.1); ("k", Value.Str "b") ]
  in
  Alcotest.(check bool) "matches" true (Profile.matches s p e)

(* ------------------------- registry ------------------------------- *)

let test_profile_set () =
  let s = schema3 () in
  let pset = Profile_set.create s in
  let p1 = Profile.create_exn s [ ("t", Predicate.Ge (Value.Int 50)) ] in
  let id1 = Profile_set.add pset p1 in
  let id2 = Profile_set.add pset (Profile.create_exn s []) in
  Alcotest.(check int) "size" 2 (Profile_set.size pset);
  Alcotest.(check bool) "distinct ids" true (id1 <> id2);
  let rev = Profile_set.revision pset in
  Alcotest.(check bool) "remove" true (Profile_set.remove pset id1);
  Alcotest.(check bool) "remove twice" false (Profile_set.remove pset id1);
  Alcotest.(check bool) "revision bumped" true (Profile_set.revision pset > rev);
  Alcotest.(check (list int)) "ids" [ id2 ] (Profile_set.ids pset);
  (* Ids are never reused. *)
  let id3 = Profile_set.add pset p1 in
  Alcotest.(check bool) "fresh id" true (id3 > id2)

let test_denotations_per_attr () =
  let s = schema3 () in
  let pset = Profile_set.create s in
  let _ = Profile_set.add pset (Profile.create_exn s [ ("t", Predicate.Ge (Value.Int 50)) ]) in
  let _ = Profile_set.add pset (Profile.create_exn s [ ("h", Predicate.Le (Value.Float 0.5)) ]) in
  Alcotest.(check int) "t constrainers" 1 (List.length (Profile_set.denotations pset 0));
  Alcotest.(check int) "h constrainers" 1 (List.length (Profile_set.denotations pset 1));
  Alcotest.(check int) "k constrainers" 0 (List.length (Profile_set.denotations pset 2))

(* ------------------------- covering ------------------------------- *)

let test_covering_basic () =
  let s = schema3 () in
  let broad = Profile.create_exn s [ ("t", Predicate.Ge (Value.Int 20)) ] in
  let narrow =
    Profile.create_exn s
      [ ("t", Predicate.Ge (Value.Int 50)); ("k", Predicate.Eq (Value.Str "a")) ]
  in
  Alcotest.(check bool) "broad covers narrow" true (Covering.covers s broad narrow);
  Alcotest.(check bool) "narrow !covers broad" false (Covering.covers s narrow broad);
  Alcotest.(check bool) "reflexive" true (Covering.covers s broad broad);
  Alcotest.(check bool) "equivalent self" true (Covering.equivalent s narrow narrow)

let test_minimal_cover () =
  let s = schema3 () in
  let broad = Profile.create_exn s [ ("t", Predicate.Ge (Value.Int 20)) ] in
  let narrow = Profile.create_exn s [ ("t", Predicate.Ge (Value.Int 50)) ] in
  let other = Profile.create_exn s [ ("h", Predicate.Le (Value.Float 0.5)) ] in
  let kept = Covering.minimal_cover s [ (0, broad); (1, narrow); (2, other) ] in
  Alcotest.(check (list int)) "covered dropped" [ 0; 2 ] (List.map fst kept);
  (* Equivalent profiles: smallest id survives. *)
  let kept2 = Covering.minimal_cover s [ (5, narrow); (3, narrow) ] in
  Alcotest.(check (list int)) "tie by id" [ 3 ] (List.map fst kept2)

let prop_covering_implies_match_subset =
  QCheck.Test.make ~name:"covers a b => (b matches e => a matches e)" ~count:200
    (QCheck.make
       QCheck.Gen.(
         Gen.schema () >>= fun s ->
         Gen.profile s >>= fun a ->
         Gen.profile s >>= fun b ->
         Gen.events ~n:25 s >|= fun es -> (s, a, b, es)))
    (fun (s, a, b, es) ->
      if not (Covering.covers s a b) then QCheck.assume_fail ()
      else
        List.for_all
          (fun e -> (not (Profile.matches s b e)) || Profile.matches s a e)
          es)

let () =
  Alcotest.run "profile"
    [
      ( "predicate",
        [
          Alcotest.test_case "denotations" `Quick test_denote_shapes;
          Alcotest.test_case "errors" `Quick test_denote_errors;
          Alcotest.test_case "enum order" `Quick test_denote_enum_order;
          Alcotest.test_case "custom runtime operator" `Quick test_custom_operator;
          QCheck_alcotest.to_alcotest prop_holds_agrees_with_denote;
        ] );
      ( "profile",
        [
          Alcotest.test_case "create" `Quick test_profile_create;
          Alcotest.test_case "conjunction on one attribute" `Quick
            test_profile_conjunction_same_attr;
          Alcotest.test_case "errors" `Quick test_profile_errors;
          Alcotest.test_case "empty matches all" `Quick
            test_empty_profile_matches_everything;
        ] );
      ( "registry",
        [
          Alcotest.test_case "add/remove/revision" `Quick test_profile_set;
          Alcotest.test_case "denotations" `Quick test_denotations_per_attr;
        ] );
      ( "covering",
        [
          Alcotest.test_case "basic" `Quick test_covering_basic;
          Alcotest.test_case "minimal cover" `Quick test_minimal_cover;
          QCheck_alcotest.to_alcotest prop_covering_implies_match_subset;
        ] );
    ]
