(* Persistence round-trips. The profile files are text in the profile
   language, so the property at stake is semantic: a saved-then-loaded
   registry must match exactly the events the original matched, for
   profiles mixing open and closed interval bounds, set predicates, and
   don't-care attributes. *)

module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Store = Genas_ens.Store
module Gen = Genas_testlib.Gen

let with_temp_file f =
  let path = Filename.temp_file "genas_store" ".profiles" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* Profiles in id order — save writes them in this order, and load
   re-registers them in file order, so position is the correspondence. *)
let in_order pset =
  List.rev (Profile_set.fold pset ~init:[] ~f:(fun acc _ p -> p :: acc))

let match_vector schema profiles event =
  List.map (fun p -> Profile.matches schema p event) profiles

let scenario_gen =
  QCheck.Gen.(
    Gen.schema ~max_attrs:4 () >>= fun schema ->
    Gen.profile_set schema >>= fun pset ->
    Gen.events ~n:40 schema >|= fun events -> (schema, pset, events))

let prop_profiles_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"save/load profiles preserves matching semantics"
    (QCheck.make scenario_gen) (fun (schema, pset, events) ->
      with_temp_file (fun path ->
          match Store.save_profiles path schema pset with
          | Error e -> QCheck.Test.fail_reportf "save failed: %s" e
          | Ok () -> (
            match Store.load_profiles schema path with
            | Error e -> QCheck.Test.fail_reportf "load failed: %s" e
            | Ok loaded ->
              let original = in_order pset in
              let reloaded = in_order loaded in
              if List.length original <> List.length reloaded then
                QCheck.Test.fail_reportf "size changed: %d -> %d"
                  (List.length original) (List.length reloaded)
              else if
                not
                  (List.for_all
                     (fun ev ->
                       match_vector schema original ev
                       = match_vector schema reloaded ev)
                     events)
              then
                QCheck.Test.fail_reportf
                  "matching diverged after a save/load round-trip"
              else true)))

(* The event log round-trips too (sequence numbers are positional). *)
let prop_events_roundtrip =
  QCheck.Test.make ~count:100 ~name:"save/load events preserves values"
    (QCheck.make
       QCheck.Gen.(
         Gen.schema ~max_attrs:4 () >>= fun schema ->
         Gen.events ~n:25 schema >|= fun events -> (schema, events)))
    (fun (schema, events) ->
      with_temp_file (fun path ->
          match Store.save_events path schema events with
          | Error e -> QCheck.Test.fail_reportf "save failed: %s" e
          | Ok () -> (
            match Store.load_events schema path with
            | Error e -> QCheck.Test.fail_reportf "load failed: %s" e
            | Ok loaded ->
              List.length loaded = List.length events
              && List.for_all2 Event.equal loaded events)))

let () =
  Alcotest.run "store"
    [
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest prop_profiles_roundtrip;
          QCheck_alcotest.to_alcotest prop_events_roundtrip;
        ] );
    ]
