(* The tracing subsystem: span lifecycle over a fake clock, exception
   safety (error status, depth back to zero), deterministic seeded
   sampling, flight-recorder ring eviction, byte-identical Chrome
   export, and the crash dump hook. *)

module Trace = Genas_obs.Trace
module Clock = Genas_obs.Clock
module Metrics = Genas_obs.Metrics
module Json = Genas_obs.Json

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Each Clock.now_ns call advances 1µs: timings depend only on the
   call sequence. *)
let with_fake_clock f =
  let t = ref 0L in
  Clock.set_source (fun () ->
      t := Int64.add !t 1_000L;
      !t);
  Fun.protect ~finally:Clock.reset_source f

(* ------------------------------------------------------------------ *)
(* Span lifecycle *)

let test_lifecycle () =
  with_fake_clock @@ fun () ->
  let tr = Trace.create ~seed:1 () in
  Alcotest.(check bool) "idle" false (Trace.active tr);
  let n =
    Trace.with_trace tr ~name:"publish" (fun () ->
        Alcotest.(check bool) "active inside" true (Trace.active tr);
        Alcotest.(check int) "depth 1" 1 (Trace.depth tr);
        Trace.add_attr tr "k" "v";
        Trace.with_span tr ~name:"child" (fun () ->
            Alcotest.(check int) "depth 2" 2 (Trace.depth tr);
            7))
  in
  Alcotest.(check int) "result through" 7 n;
  Alcotest.(check bool) "idle again" false (Trace.active tr);
  Alcotest.(check int) "depth back to 0" 0 (Trace.depth tr);
  match Trace.traces tr with
  | [ t ] ->
    Alcotest.(check int) "two spans" 2 t.Trace.span_count;
    let spans = List.rev t.Trace.spans in
    let root = List.nth spans 0 and child = List.nth spans 1 in
    Alcotest.(check string) "root name" "publish" root.Trace.span_name;
    Alcotest.(check int) "root parentless" (-1) root.Trace.parent;
    Alcotest.(check int) "child parent" root.Trace.span_id child.Trace.parent;
    Alcotest.(check int) "child depth" 1 child.Trace.depth;
    Alcotest.(check (list (pair string string)))
      "root attr" [ ("k", "v") ] root.Trace.attrs;
    Alcotest.(check bool) "root closed" true
      (root.Trace.end_ns <> Int64.min_int);
    Alcotest.(check bool) "nested inside" true
      (child.Trace.start_ns >= root.Trace.start_ns
      && child.Trace.end_ns <= root.Trace.end_ns);
    (match root.Trace.status with
    | Trace.Ok -> ()
    | Trace.Error _ -> Alcotest.fail "root should be ok")
  | l -> Alcotest.failf "expected 1 trace, got %d" (List.length l)

(* Satellite: a handler raising mid-span must close the span with an
   error status and return the nesting depth to zero. *)
let test_exception_closes_spans () =
  with_fake_clock @@ fun () ->
  let tr = Trace.create ~seed:1 () in
  (try
     Trace.with_trace tr ~name:"publish" (fun () ->
         Trace.with_span tr ~name:"deliver" (fun () ->
             failwith "handler exploded"))
   with Failure _ -> ());
  Alcotest.(check int) "depth back to 0" 0 (Trace.depth tr);
  Alcotest.(check bool) "no trace left open" false (Trace.active tr);
  Alcotest.(check int) "trace still landed" 1 (Trace.completed tr);
  match Trace.traces tr with
  | [ t ] ->
    List.iter
      (fun (s : Trace.span) ->
        Alcotest.(check bool)
          (s.Trace.span_name ^ " closed")
          true
          (s.Trace.end_ns <> Int64.min_int);
        match s.Trace.status with
        | Trace.Error msg ->
          Alcotest.(check bool) "error names the exception" true
            (contains ~needle:"handler exploded" msg)
        | Trace.Ok -> Alcotest.failf "%s should be error" s.Trace.span_name)
      t.Trace.spans
  | _ -> Alcotest.fail "expected exactly one trace"

(* finish_span on the outer handle force-closes deeper strays with an
   error, so explicit (non-closure) spans cannot leak depth. *)
let test_unbalanced_finish () =
  with_fake_clock @@ fun () ->
  let tr = Trace.create ~seed:1 () in
  Trace.with_trace tr ~name:"root" (fun () ->
      let outer = Trace.start_span tr ~name:"outer" in
      let _inner = Trace.start_span tr ~name:"inner" in
      Alcotest.(check int) "depth 3" 3 (Trace.depth tr);
      Trace.finish_span tr outer;
      Alcotest.(check int) "inner force-closed too" 1 (Trace.depth tr));
  match Trace.traces tr with
  | [ t ] ->
    let inner =
      List.find (fun s -> s.Trace.span_name = "inner") t.Trace.spans
    in
    (match inner.Trace.status with
    | Trace.Error _ -> ()
    | Trace.Ok -> Alcotest.fail "stray inner span should carry an error")
  | _ -> Alcotest.fail "expected exactly one trace"

let test_bad_args () =
  Alcotest.check_raises "sample > 1"
    (Invalid_argument "Trace.create: sample must be in [0,1]") (fun () ->
      ignore (Trace.create ~sample:1.5 ~seed:1 ()));
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ~seed:1 ()));
  let tr = Trace.create ~seed:1 () in
  Trace.with_trace tr ~name:"root" (fun () ->
      Alcotest.check_raises "bad span name"
        (Invalid_argument "Trace: malformed span name \"a b\"")
        (fun () -> ignore (Trace.start_span tr ~name:"a b")))

(* ------------------------------------------------------------------ *)
(* Sampling and the ring *)

let sampled_pattern ~seed ~sample n =
  let tr = Trace.create ~capacity:1 ~sample ~seed () in
  List.init n (fun i ->
      let before = Trace.sampled tr in
      Trace.with_trace tr ~name:"t" (fun () -> ignore i);
      Trace.sampled tr > before)

let test_sampling_deterministic () =
  let a = sampled_pattern ~seed:42 ~sample:0.5 200 in
  let b = sampled_pattern ~seed:42 ~sample:0.5 200 in
  Alcotest.(check (list bool)) "same seed, same decisions" a b;
  let hits = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "roughly half sampled" true (hits > 60 && hits < 140);
  let c = sampled_pattern ~seed:43 ~sample:0.5 200 in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Alcotest.(check bool) "sample 0 never"
    true
    (List.for_all not (sampled_pattern ~seed:42 ~sample:0.0 50));
  Alcotest.(check bool) "sample 1 always"
    true
    (List.for_all Fun.id (sampled_pattern ~seed:42 ~sample:1.0 50))

let test_ring_eviction () =
  with_fake_clock @@ fun () ->
  let tr = Trace.create ~capacity:4 ~seed:1 () in
  for i = 0 to 6 do
    Trace.with_trace tr ~name:(Printf.sprintf "t%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "completed" 7 (Trace.completed tr);
  Alcotest.(check int) "evicted oldest" 3 (Trace.evicted tr);
  let names =
    List.map (fun t -> t.Trace.root_name) (Trace.traces tr)
  in
  Alcotest.(check (list string)) "last 4 held, oldest first"
    [ "t3"; "t4"; "t5"; "t6" ] names

(* Every span of an evicted trace counts as dropped — both on the
   tracer itself and, with a registry attached, as the
   genas_trace_dropped_spans_total counter. *)
let test_dropped_spans () =
  with_fake_clock @@ fun () ->
  let reg = Metrics.create () in
  let tr = Trace.create ~capacity:2 ~metrics:reg ~seed:1 () in
  Alcotest.(check int) "starts at zero" 0 (Trace.dropped_spans tr);
  (* Three traces of 1, 2 and 3 spans into a 2-slot ring: the first
     two evictions drop the 1-span and 2-span trees. *)
  for extra = 0 to 2 do
    Trace.with_trace tr ~name:(Printf.sprintf "t%d" extra) (fun () ->
        for j = 1 to extra do
          Trace.with_span tr ~name:(Printf.sprintf "c%d" j) (fun () -> ())
        done)
  done;
  Alcotest.(check int) "one eviction so far" 1 (Trace.evicted tr);
  Alcotest.(check int) "dropped the 1-span trace" 1 (Trace.dropped_spans tr);
  Trace.with_trace tr ~name:"t3" (fun () -> ());
  Alcotest.(check int) "dropped 1 + 2 spans" 3 (Trace.dropped_spans tr);
  let c = Metrics.counter reg "genas_trace_dropped_spans_total" in
  Alcotest.(check int) "counter mirrors the tracer" 3
    (Metrics.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Cross-process adoption, export, and merge *)

let test_remote_adoption () =
  with_fake_clock @@ fun () ->
  let tr = Trace.create ~seed:9 () in
  let n =
    Trace.with_remote_trace tr ~name:"net.rx_publish" ~origin:"leaf"
      (Some (4242, 7))
      (fun () ->
        Alcotest.(check (option int)) "adopted the wire trace id"
          (Some 4242) (Trace.current_trace_id tr);
        5)
  in
  Alcotest.(check int) "result through" 5 n;
  Trace.with_remote_trace tr ~name:"net.rx_publish" ~origin:"leaf" None
    (fun () -> ());
  match Trace.traces tr with
  | [ adopted; local ] ->
    Alcotest.(check int) "trace id reused" 4242 adopted.Trace.trace_id;
    Alcotest.(check (option (pair string int)))
      "remote link recorded"
      (Some ("leaf", 7))
      adopted.Trace.remote;
    Alcotest.(check (option (pair string int)))
      "ctx-less rx is locally rooted" None local.Trace.remote
  | l -> Alcotest.failf "expected 2 traces, got %d" (List.length l)

let test_export_merge () =
  with_fake_clock @@ fun () ->
  let leaf = Trace.create ~seed:1 () in
  let root = Trace.create ~seed:2 () in
  let ctx = ref None in
  Trace.with_trace leaf ~name:"net.publish" (fun () ->
      ctx := Trace.context leaf);
  Trace.with_remote_trace root ~name:"net.rx_publish" ~origin:"leaf" !ctx
    (fun () -> Trace.with_span root ~name:"broker.publish" (fun () -> ()));
  let merged =
    Trace.merge_dumps
      [ Trace.export leaf ~node:"leaf"; Trace.export root ~node:"hub" ]
  in
  (match Json.validate merged with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid merged JSON: %s" e);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (contains ~needle merged))
    [
      (* one Chrome pid per dump, in argument order *)
      "\"pid\": 1";
      "\"pid\": 2";
      "\"net.publish\"";
      "\"net.rx_publish\"";
      "\"broker.publish\"";
      (* the flow arrow from the leaf's publish span to the adopted
         root span *)
      "\"ph\": \"s\"";
      "\"ph\": \"f\"";
      "net.ctx";
    ];
  (* A dump that does not parse is rejected, not mangled. *)
  match Trace.merge_dumps [ "not a dump" ] with
  | _ -> Alcotest.fail "expected malformed dump to raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Chrome export and the crash dump *)

let run_workload () =
  with_fake_clock @@ fun () ->
  let tr = Trace.create ~capacity:8 ~seed:5 () in
  for i = 0 to 9 do
    try
      Trace.with_trace tr ~name:"publish" (fun () ->
          Trace.add_attr tr "event" (string_of_int i);
          Trace.with_span tr ~name:"match" (fun () -> ());
          Trace.attach_path tr
            {
              Trace.path_nodes = [| 0; 1 |];
              path_levels = [| 0; 1 |];
              path_edges = [| 0; -3 |];
              path_comparisons = [| 2; 0 |];
              path_matched = [| i |];
            };
          if i mod 3 = 0 then
            Trace.with_span tr ~name:"deliver" (fun () -> failwith "boom"))
    with Failure _ -> ()
  done;
  tr

let test_chrome_deterministic () =
  let a = Trace.to_chrome (run_workload ()) in
  let b = Trace.to_chrome (run_workload ()) in
  Alcotest.(check string) "byte-identical across runs" a b;
  (match Json.validate a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid chrome JSON: %s" e);
  Alcotest.(check bool) "has span events" true
    (contains ~needle:"\"ph\": \"X\"" a);
  Alcotest.(check bool) "has path instants" true
    (contains ~needle:"matcher.path" a);
  Alcotest.(check bool) "normalized to the earliest start" true
    (contains ~needle:"\"ts\": 0" a)

let test_crash_dump () =
  let hook = ref [] in
  with_fake_clock @@ fun () ->
  let tr = Trace.create ~capacity:4 ~seed:5 ~on_dump:(fun s -> hook := s :: !hook) () in
  Trace.with_trace tr ~name:"publish" (fun () ->
      Trace.add_attr tr "k" "v");
  let text = Trace.record_crash tr ~reason:"injected crash" in
  Alcotest.(check bool) "reason in header" true
    (contains ~needle:"injected crash" text);
  Alcotest.(check bool) "trace listed" true (contains ~needle:"publish" text);
  Alcotest.(check (option string)) "remembered" (Some text)
    (Trace.last_dump tr);
  Alcotest.(check (list string)) "hook invoked" [ text ] !hook

let test_span_metrics () =
  with_fake_clock @@ fun () ->
  let reg = Metrics.create () in
  let tr = Trace.create ~metrics:reg ~seed:1 () in
  (try
     Trace.with_trace tr ~name:"publish" (fun () ->
         Trace.with_span tr ~name:"deliver" (fun () -> failwith "x"))
   with Failure _ -> ());
  let json = Metrics.to_json reg in
  Alcotest.(check bool) "traces counter" true
    (contains ~needle:"genas_trace_traces_total" json);
  Alcotest.(check bool) "span duration histogram" true
    (contains ~needle:"genas_trace_span_duration_ns" json);
  Alcotest.(check bool) "error counter" true
    (contains ~needle:"genas_trace_span_errors_total" json)

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "exception closes spans" `Quick
            test_exception_closes_spans;
          Alcotest.test_case "unbalanced finish" `Quick test_unbalanced_finish;
          Alcotest.test_case "bad arguments" `Quick test_bad_args;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "sampling determinism" `Quick
            test_sampling_deterministic;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "dropped spans" `Quick test_dropped_spans;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "remote adoption" `Quick test_remote_adoption;
          Alcotest.test_case "export + merge" `Quick test_export_merge;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome determinism" `Quick
            test_chrome_deterministic;
          Alcotest.test_case "crash dump" `Quick test_crash_dump;
          Alcotest.test_case "span metrics" `Quick test_span_metrics;
        ] );
    ]
