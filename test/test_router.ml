(* The routed broker network: topology validation, end-to-end delivery
   equivalence with a single broker, and covering-based pruning. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Router = Genas_ens.Router
module Broker = Genas_ens.Broker
module Notification = Genas_ens.Notification
module Gen = Genas_testlib.Gen
module Prng = Genas_prng.Prng

let schema () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.int_range ~lo:0 ~hi:9) ]

let event s x y = Event.create_exn s [ ("x", Value.Int x); ("y", Value.Int y) ]

let test_topology_validation () =
  let s = schema () in
  let bad edges nodes =
    match Router.create s ~nodes ~edges with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected topology error"
  in
  bad [] 2;  (* disconnected *)
  bad [ (0, 1); (1, 2); (2, 0) ] 3;  (* cycle: wrong edge count *)
  bad [ (0, 0) ] 2;  (* self loop *)
  bad [ (0, 5) ] 2;  (* out of range *)
  bad [ (0, 1); (0, 1) ] 3;  (* n-1 edges but disconnected node 2 *)
  match Router.create s ~nodes:3 ~edges:[ (0, 1); (1, 2) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_local_delivery () =
  let s = schema () in
  let net = Router.line s ~nodes:3 in
  let got = ref [] in
  ignore
    (Router.subscribe net ~at:2 ~subscriber:"edge"
       ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 5)) ])
       (fun n -> got := n.Notification.broker :: !got));
  (* Publish at the far end: must traverse and deliver at broker 2. *)
  Alcotest.(check int) "delivered" 1 (Router.publish net ~at:0 (event s 7 0));
  Alcotest.(check (list (option int))) "delivering broker" [ Some 2 ] !got;
  Alcotest.(check int) "miss" 0 (Router.publish net ~at:0 (event s 2 0))

let test_event_messages_stop_early () =
  let s = schema () in
  let net = Router.line s ~nodes:5 in
  ignore
    (Router.subscribe net ~at:1 ~subscriber:"near"
       ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 5)) ])
       (fun _ -> ()));
  let before = Router.event_messages net in
  ignore (Router.publish net ~at:0 (event s 7 0));
  (* Event needs exactly one hop (0 -> 1); brokers 2..4 never see it. *)
  Alcotest.(check int) "one hop" 1 (Router.event_messages net - before);
  let before = Router.event_messages net in
  ignore (Router.publish net ~at:0 (event s 2 0));
  Alcotest.(check int) "no hop for unmatched" 0 (Router.event_messages net - before)

let test_covering_prunes_subscriptions () =
  let s = schema () in
  let net = Router.line s ~nodes:4 in
  let broad = Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 2)) ] in
  let narrow = Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 6)) ] in
  ignore (Router.subscribe net ~at:0 ~subscriber:"broad" ~profile:broad (fun _ -> ()));
  let after_broad = Router.sub_messages net in
  Alcotest.(check int) "broad floods" 3 after_broad;
  (* The narrow subscription at the same broker is covered: no new
     propagation at all. *)
  ignore (Router.subscribe net ~at:0 ~subscriber:"narrow" ~profile:narrow (fun _ -> ()));
  Alcotest.(check int) "narrow pruned" after_broad (Router.sub_messages net);
  (* Both still get notified. *)
  Alcotest.(check int) "both notified" 2 (Router.publish net ~at:3 (event s 7 0))

let test_star_topology () =
  let s = schema () in
  let net = Router.star s ~leaves:3 in
  let hits = ref 0 in
  (* Subscribe at a leaf; publish at another leaf: two hops via hub. *)
  ignore
    (Router.subscribe net ~at:1 ~subscriber:"leafy"
       ~profile:(Profile.create_exn s [ ("y", Predicate.Le (Value.Int 4)) ])
       (fun _ -> incr hits));
  let before = Router.event_messages net in
  Alcotest.(check int) "delivered" 1 (Router.publish net ~at:3 (event s 0 2));
  Alcotest.(check int) "two hops" 2 (Router.event_messages net - before);
  Alcotest.(check int) "handler" 1 !hits

let test_unsubscribe_retracts () =
  let s = schema () in
  let net = Router.line s ~nodes:3 in
  let hits = ref 0 in
  let h =
    Router.subscribe net ~at:2 ~subscriber:"edge"
      ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 5)) ])
      (fun _ -> incr hits)
  in
  Alcotest.(check int) "delivered before" 1 (Router.publish net ~at:0 (event s 7 0));
  Alcotest.(check bool) "retracted" true (Router.unsubscribe net h);
  Alcotest.(check bool) "idempotent" false (Router.unsubscribe net h);
  let before = Router.event_messages net in
  Alcotest.(check int) "nothing delivered" 0 (Router.publish net ~at:0 (event s 7 0));
  Alcotest.(check int) "no forwarding either" 0 (Router.event_messages net - before);
  Alcotest.(check bool) "unsub messages charged" true (Router.unsub_messages net > 0);
  Alcotest.(check int) "handler not rerun" 1 !hits

let test_unsubscribe_revives_covered () =
  (* A covered subscription that was never forwarded must take over
     when its coverer is retracted. *)
  let s = schema () in
  let net = Router.line s ~nodes:3 in
  let broad_hits = ref 0 and narrow_hits = ref 0 in
  let broad =
    Router.subscribe net ~at:2 ~subscriber:"broad"
      ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 2)) ])
      (fun _ -> incr broad_hits)
  in
  ignore
    (Router.subscribe net ~at:2 ~subscriber:"narrow"
       ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 6)) ])
       (fun _ -> incr narrow_hits));
  Alcotest.(check bool) "retract coverer" true (Router.unsubscribe net broad);
  (* The narrow subscription must still be reachable from broker 0. *)
  Alcotest.(check int) "narrow still delivered" 1
    (Router.publish net ~at:0 (event s 7 0));
  Alcotest.(check int) "narrow handler" 1 !narrow_hits;
  Alcotest.(check int) "broad handler silent" 0 !broad_hits;
  Alcotest.(check int) "below narrow threshold" 0
    (Router.publish net ~at:0 (event s 3 0))

let test_unsubscribe_preserves_stats () =
  (* Retraction replays the surviving subscriptions through fresh
     profile sets, but each node's learned engine statistics (the
     observed per-attribute histograms driving tree reordering) must
     survive the replay. *)
  let s = schema () in
  let net = Router.line s ~nodes:3 in
  let keep =
    Router.subscribe net ~at:2 ~subscriber:"keep"
      ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 1)) ])
      (fun _ -> ())
  in
  ignore keep;
  let victim =
    Router.subscribe net ~at:2 ~subscriber:"victim"
      ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 8)) ])
      (fun _ -> ())
  in
  for i = 0 to 19 do
    ignore (Router.publish net ~at:0 (event s (i mod 10) (i mod 7)))
  done;
  let seen_before =
    Array.init 3 (fun n -> Genas_core.Stats.events_seen (Router.broker_stats net n))
  in
  Alcotest.(check bool) "node 0 saw traffic" true (seen_before.(0) > 0);
  Alcotest.(check bool) "retracted" true (Router.unsubscribe net victim);
  Array.iteri
    (fun n before ->
      Alcotest.(check int)
        (Printf.sprintf "node %d history kept" n)
        before
        (Genas_core.Stats.events_seen (Router.broker_stats net n)))
    seen_before;
  (* The next publish must accumulate on top, not restart from zero
     (a lazy stale-refresh after the replay would wipe it again). *)
  ignore (Router.publish net ~at:0 (event s 5 0));
  Alcotest.(check bool) "history still grows" true
    (Genas_core.Stats.events_seen (Router.broker_stats net 0) > seen_before.(0))

let test_unsub_messages_exact () =
  (* Line 0-1-2 with one subscription at node 2: interest is forwarded
     at nodes 0 and 1 (2 is local), so exactly 2 retraction messages. *)
  let s = schema () in
  let net = Router.line s ~nodes:3 in
  let h =
    Router.subscribe net ~at:2 ~subscriber:"edge"
      ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 5)) ])
      (fun _ -> ())
  in
  Alcotest.(check int) "flooded to both" 2 (Router.sub_messages net);
  Alcotest.(check bool) "retracted" true (Router.unsubscribe net h);
  Alcotest.(check int) "exactly two retractions" 2 (Router.unsub_messages net);
  (* A stale retraction charges nothing further. *)
  Alcotest.(check bool) "stale" false (Router.unsubscribe net h);
  Alcotest.(check int) "no extra charge" 2 (Router.unsub_messages net)

(* Regression: retracting a subscription must charge no unsubscribe
   messages when the interest forwarded on every link is still covered
   by a surviving subscription — the neighbors' routing obligations do
   not change, so nothing crosses the wire. The old accounting
   (global forwarded-entry count before − after) over-charged both
   when a broader survivor made a redundant entry disappear and when
   an equivalent profile remained live (full-axis predicates defeated
   the old covering test, so equivalents were double-forwarded and
   their retraction looked like a real shrink). *)
let test_unsub_covered_by_survivor_is_free () =
  let s = schema () in
  (* Broader survivor: narrow forwarded first, broad after (both on
     the wire); retracting narrow frees no links. *)
  let net = Router.line s ~nodes:3 in
  let narrow = Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 7)) ] in
  let broad = Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 3)) ] in
  let h = Router.subscribe net ~at:2 ~subscriber:"n" ~profile:narrow (fun _ -> ()) in
  ignore (Router.subscribe net ~at:2 ~subscriber:"b" ~profile:broad (fun _ -> ()));
  Alcotest.(check int) "both flooded" 4 (Router.sub_messages net);
  Alcotest.(check bool) "retracted" true (Router.unsubscribe net h);
  Alcotest.(check int) "covered by broad survivor: free" 0
    (Router.unsub_messages net);
  Alcotest.(check int) "broad still delivers" 1
    (Router.publish net ~at:0 (event s 5 0));
  (* Equivalent survivor, via full-axis denotations: [x >= 0] and
     [y >= 0] both match everything, so the second is never forwarded
     and retracting the first must be free — the survivor covers it. *)
  let net2 = Router.line s ~nodes:3 in
  let full_x = Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 0)) ] in
  let full_y = Profile.create_exn s [ ("y", Predicate.Ge (Value.Int 0)) ] in
  let hx = Router.subscribe net2 ~at:2 ~subscriber:"fx" ~profile:full_x (fun _ -> ()) in
  ignore (Router.subscribe net2 ~at:2 ~subscriber:"fy" ~profile:full_y (fun _ -> ()));
  Alcotest.(check int) "equivalent not re-forwarded" 2
    (Router.sub_messages net2);
  Alcotest.(check bool) "retracted" true (Router.unsubscribe net2 hx);
  Alcotest.(check int) "equivalent survivor: free" 0
    (Router.unsub_messages net2);
  Alcotest.(check int) "survivor still delivers" 1
    (Router.publish net2 ~at:0 (event s 1 1))

let test_routed_raising_handler () =
  let s = schema () in
  let net = Router.line s ~nodes:3 in
  let ok_hits = ref 0 in
  ignore
    (Router.subscribe net ~at:2 ~subscriber:"bad"
       ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 5)) ])
       (fun _ -> failwith "remote handler crashed"));
  ignore
    (Router.subscribe net ~at:2 ~subscriber:"good"
       ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 5)) ])
       (fun _ -> incr ok_hits));
  Alcotest.(check int) "only the good one counts" 1
    (Router.publish net ~at:0 (event s 7 0));
  Alcotest.(check int) "good handler ran" 1 !ok_hits;
  let sup = Router.supervisor net in
  Alcotest.(check int) "failure recorded" 1
    (Genas_ens.Supervise.failures sup);
  Alcotest.(check int) "dead-lettered" 1
    (Genas_ens.Deadletter.length (Router.deadletter net))

(* Equivalence: a routed network delivers exactly the notifications a
   single broker with all subscriptions would. *)
let prop_delivery_equivalence =
  QCheck.Test.make ~name:"network = single broker (delivery multiset)" ~count:30
    (QCheck.make
       QCheck.Gen.(
         Gen.schema ~max_attrs:3 () >>= fun s ->
         list_size (int_range 1 8) (Gen.profile s) >>= fun profiles ->
         Gen.events ~n:20 s >>= fun events ->
         int_bound 1000 >|= fun salt -> (s, profiles, events, salt)))
    (fun (s, profiles, events, salt) ->
      let nodes = 4 in
      let net =
        Router.create_exn s ~nodes ~edges:[ (0, 1); (1, 2); (1, 3) ]
      in
      let single = Broker.create s in
      let net_count = Hashtbl.create 16 and single_count = Hashtbl.create 16 in
      let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
      List.iteri
        (fun i p ->
          let name = Printf.sprintf "s%d" i in
          ignore
            (Router.subscribe net
               ~at:((i + salt) mod nodes)
               ~subscriber:name ~profile:p
               (fun n ->
                 bump net_count (n.Notification.subscriber, n.Notification.event)));
          ignore
            (Broker.subscribe single ~subscriber:name ~profile:p (fun n ->
                 bump single_count (n.Notification.subscriber, n.Notification.event))))
        profiles;
      List.iteri
        (fun i e ->
          ignore (Router.publish net ~at:((i + salt) mod nodes) e);
          ignore (Broker.publish single e))
        events;
      Hashtbl.length net_count = Hashtbl.length single_count
      && Hashtbl.fold
           (fun k v acc -> acc && Hashtbl.find_opt single_count k = Some v)
           net_count true)

let prop_covering_never_floods_more =
  QCheck.Test.make ~name:"sub messages ≤ flooding bound" ~count:30
    (QCheck.make
       QCheck.Gen.(
         Gen.schema ~max_attrs:2 () >>= fun s ->
         list_size (int_range 1 10) (Gen.profile s) >|= fun ps -> (s, ps)))
    (fun (s, profiles) ->
      let nodes = 5 in
      let net = Router.line s ~nodes in
      List.iteri
        (fun i p ->
          ignore
            (Router.subscribe net ~at:(i mod nodes) ~subscriber:"x" ~profile:p
               (fun _ -> ())))
        profiles;
      (* Flooding sends each subscription over every link once per
         direction of propagation: at most (nodes-1) messages each. *)
      Router.sub_messages net <= List.length profiles * (nodes - 1))

let () =
  Alcotest.run "router"
    [
      ( "topology",
        [ Alcotest.test_case "validation" `Quick test_topology_validation ] );
      ( "routing",
        [
          Alcotest.test_case "delivery across hops" `Quick test_local_delivery;
          Alcotest.test_case "events stop early" `Quick test_event_messages_stop_early;
          Alcotest.test_case "covering prunes" `Quick test_covering_prunes_subscriptions;
          Alcotest.test_case "star topology" `Quick test_star_topology;
          Alcotest.test_case "unsubscribe retracts" `Quick test_unsubscribe_retracts;
          Alcotest.test_case "unsubscribe revives covered" `Quick
            test_unsubscribe_revives_covered;
          Alcotest.test_case "unsubscribe preserves stats" `Quick
            test_unsubscribe_preserves_stats;
          Alcotest.test_case "unsub messages exact" `Quick
            test_unsub_messages_exact;
          Alcotest.test_case "unsub covered by survivor is free" `Quick
            test_unsub_covered_by_survivor_is_free;
          Alcotest.test_case "routed raising handler" `Quick
            test_routed_raising_handler;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_delivery_equivalence; prop_covering_never_floods_more ] );
    ]
