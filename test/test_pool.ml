(* Determinism, stealing, and teardown suite for the persistent
   work-stealing domain pool and the profile-shard parallel axis.

   The pool contract is positional bit-identity: whatever the domain
   count, chunk boundaries, or steal interleaving, [Pool.match_batch]
   must return exactly what a sequential loop over one cursor returns,
   and the merged Ops counters must match a single-domain run bit for
   bit. GENAS_TEST_DOMAINS forces the pool width (the CI multi-domain
   leg sets it to 2). *)

module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Value = Genas_model.Value
module Domain_ = Genas_model.Domain
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Flat = Genas_filter.Flat
module Pool = Genas_filter.Pool
module Shard = Genas_filter.Shard
module Ops = Genas_filter.Ops
module Gen = Genas_testlib.Gen

let test_domains =
  match Sys.getenv_opt "GENAS_TEST_DOMAINS" with
  | Some s -> (try max 2 (int_of_string s) with _ -> 4)
  | None -> 4

(* One shared persistent pool per suite run: pools own live domains
   and the runtime caps them, so per-iteration creation is exactly the
   leak this suite exists to rule out. *)
let shared = lazy (Pool.create ~domains:test_domains ())

let flat_of pset =
  let decomp = Decomp.build pset in
  Flat.compile (Tree.build decomp (Tree.default_config decomp))

let ops_eq a b =
  a.Ops.comparisons = b.Ops.comparisons
  && a.Ops.node_visits = b.Ops.node_visits
  && a.Ops.events = b.Ops.events
  && a.Ops.matches = b.Ops.matches

let sequential flat events =
  let cur = Flat.cursor flat in
  let ops = Ops.create () in
  let r =
    Array.map (fun e -> Array.of_list (Flat.match_list ~ops flat cur e)) events
  in
  (r, ops)

(* Batch sizes crossing every partition edge case: empty, singleton,
   fewer events than domains, exact chunk multiples, and odd sizes
   straddling chunk boundaries. *)
let probe_sizes = [ 0; 1; 2; 3; 5; 7; 16; 31; 32; 33; 63; 64; 65; 100 ]

let prop_pool_equals_sequential =
  QCheck.Test.make
    ~name:"pool(dN) = sequential across batch sizes 0/1/odd-chunk" ~count:15
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:20 ()))
    (fun (_, pset, events) ->
      let flat = flat_of pset in
      let evs = Array.of_list events in
      QCheck.assume (Array.length evs > 0);
      let pool = Lazy.force shared in
      List.for_all
        (fun n ->
          let batch = Array.init n (fun i -> evs.(i mod Array.length evs)) in
          let expect, seq_ops = sequential flat batch in
          let got_ops = Ops.create () in
          let got = Pool.match_batch ~ops:got_ops pool flat batch in
          got = expect && ops_eq seq_ops got_ops)
        probe_sizes)

let prop_persistent_equals_spawn =
  QCheck.Test.make ~name:"persistent pool = legacy spawn pool" ~count:20
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:50 ()))
    (fun (_, pset, events) ->
      let flat = flat_of pset in
      let batch = Array.of_list events in
      let spawn = Pool.create ~domains:test_domains ~persistent:false () in
      let spawn_ops = Ops.create () and pers_ops = Ops.create () in
      let from_spawn = Pool.match_batch ~ops:spawn_ops spawn flat batch in
      let from_pers =
        Pool.match_batch ~ops:pers_ops (Lazy.force shared) flat batch
      in
      Pool.shutdown spawn;
      from_spawn = from_pers && ops_eq spawn_ops pers_ops)

(* Skewed per-event cost: profiles concentrated on a narrow region so
   events inside it walk (and match) far more than events outside, and
   the batch sorted so all the expensive events land in the trailing
   chunks — the shape that starves a static partition and exercises
   stealing. Results must still be positionally identical. *)
let between lo hi =
  Predicate.Between
    { lo = Value.Int lo; lo_closed = true; hi = Value.Int hi; hi_closed = true }

let skewed_scenario () =
  let schema = Schema.create_exn [ ("x", Domain_.int_range ~lo:0 ~hi:999) ] in
  let pset = Profile_set.create schema in
  for i = 0 to 199 do
    let lo = 900 + (i mod 50) and width = 2 + (i mod 7) in
    Profile_set.add pset
      (Profile.create_exn schema [ ("x", between lo (min 999 (lo + width))) ])
    |> ignore
  done;
  let events =
    Array.init 512 (fun i ->
        (* First 7/8 of the batch miss the hot region entirely; the
           last chunk carries all the expensive events. *)
        let x = if i < 448 then i mod 800 else 900 + (i mod 100) in
        Event.create_exn schema [ ("x", Value.Int x) ])
  in
  (flat_of pset, events)

let test_stealing_under_skew () =
  let flat, events = skewed_scenario () in
  let pool = Lazy.force shared in
  let expect, seq_ops = sequential flat events in
  let got_ops = Ops.create () in
  let got = Pool.match_batch ~ops:got_ops pool flat events in
  Alcotest.(check bool) "skewed batch matches sequential" true (got = expect);
  Alcotest.(check bool) "skewed batch ops identical" true
    (ops_eq seq_ops got_ops);
  Alcotest.(check bool) "steal counter readable" true
    (Pool.last_steals pool >= 0)

let test_shutdown_no_leak () =
  (* Shutdown joins the workers: repeated create/shutdown cycles far
     past the runtime's live-domain cap prove nothing leaks. *)
  let flat, events = skewed_scenario () in
  let small = Array.sub events 0 32 in
  let expect, _ = sequential flat small in
  let cleanups_before = Pool.registered_cleanups () in
  for _ = 1 to 150 do
    let p = Pool.create ~domains:3 () in
    (* Workers spawn lazily: none before the first batch, all of them
       after, zero once shutdown has joined them. *)
    assert (Pool.live_workers p = 0);
    let got = Pool.match_batch p flat small in
    assert (got = expect);
    assert (Pool.live_workers p = 2);
    assert (Pool.registered_cleanups () = cleanups_before + 1);
    Pool.shutdown p;
    assert (Pool.live_workers p = 0);
    assert (Pool.registered_cleanups () = cleanups_before)
  done;
  (* Shutdown deregisters the at_exit entry, so 150 cycles leave the
     registry exactly where it started — no closure accumulation. *)
  Alcotest.(check int) "cleanup registry drained" cleanups_before
    (Pool.registered_cleanups ());
  let p = Pool.create ~domains:3 () in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  Alcotest.(check int) "workers joined" 0 (Pool.live_workers p);
  (try
     ignore (Pool.match_batch p flat small);
     Alcotest.fail "match_batch accepted after shutdown"
   with Invalid_argument _ -> ());
  try
    ignore
      (Pool.match_shards p
         (Shard.build
            (Profile_set.create
               (Schema.create_exn [ ("x", Domain_.int_range ~lo:0 ~hi:9) ])))
         [||]);
    Alcotest.fail "match_shards accepted after shutdown"
  with Invalid_argument _ -> ()

let test_single_domain_pool () =
  let flat, events = skewed_scenario () in
  let p = Pool.create ~domains:1 () in
  Alcotest.(check int) "d1 spawns nothing" 0 (Pool.live_workers p);
  let expect, _ = sequential flat events in
  Alcotest.(check bool) "d1 matches sequential" true
    (Pool.match_batch p flat events = expect);
  Pool.shutdown p

(* ------------------------------------------------------------------ *)
(* Profile-partition shards. *)

let prop_shard_equals_flat =
  QCheck.Test.make
    ~name:"shards(k) = unsharded matches, events counted once" ~count:30
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:15 ~n_events:15 ()))
    (fun (_, pset, events) ->
      let flat = flat_of pset in
      let batch = Array.of_list events in
      let expect, _ = sequential flat batch in
      let pool = Lazy.force shared in
      List.for_all
        (fun k ->
          let sh = Shard.build ~shards:k pset in
          (* Single-domain axis: Shard.match_list per event. *)
          let cur = Shard.cursor sh in
          let list_ops = Ops.create () in
          let by_list =
            Array.map
              (fun e -> Array.of_list (Shard.match_list ~ops:list_ops sh cur e))
              batch
          in
          (* Pool axis: whole batch against every shard. *)
          let pool_ops = Ops.create () in
          let by_pool = Pool.match_shards ~ops:pool_ops pool sh batch in
          by_list = expect && by_pool = expect
          && list_ops.Ops.events = Array.length batch
          && pool_ops.Ops.events = Array.length batch
          && list_ops.Ops.comparisons = pool_ops.Ops.comparisons
          && list_ops.Ops.matches = pool_ops.Ops.matches)
        [ 1; 2; 3; 5 ])

let test_shard_edges () =
  let schema = Schema.create_exn [ ("x", Domain_.int_range ~lo:0 ~hi:9) ] in
  let empty = Profile_set.create schema in
  let sh = Shard.build ~shards:4 empty in
  Alcotest.(check int) "empty set clamps to one shard" 1 (Shard.count sh);
  let e = Event.create_exn schema [ ("x", Value.Int 3) ] in
  Alcotest.(check (list int)) "empty shard matches nothing" []
    (Shard.match_list sh (Shard.cursor sh) e);
  (try
     ignore (Shard.build ~shards:0 empty);
     Alcotest.fail "shards:0 accepted"
   with Invalid_argument _ -> ());
  let one = Profile_set.create schema in
  ignore
    (Profile_set.add one
       (Profile.create_exn schema
          [ ("x", between 2 5) ]));
  let sh1 = Shard.build ~shards:8 one in
  Alcotest.(check int) "shards clamp to population" 1 (Shard.count sh1);
  Alcotest.(check int) "revision captured" (Profile_set.revision one)
    (Shard.revision sh1);
  (* Foreign cursor rejected. *)
  let two = Profile_set.create schema in
  ignore
    (Profile_set.add two
       (Profile.create_exn schema
          [ ("x", between 0 9) ]));
  ignore
    (Profile_set.add two
       (Profile.create_exn schema
          [ ("x", between 1 4) ]));
  let sh2 = Shard.build ~shards:2 two in
  try
    ignore (Shard.match_list sh2 (Shard.cursor sh1) e);
    Alcotest.fail "foreign shard cursor accepted"
  with Invalid_argument _ -> ()

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "pool"
    [
      ( "determinism",
        [
          qt prop_pool_equals_sequential;
          qt prop_persistent_equals_spawn;
          qt prop_shard_equals_flat;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "stealing under skewed cost" `Quick
            test_stealing_under_skew;
          Alcotest.test_case "shutdown joins workers (no leak)" `Quick
            test_shutdown_no_leak;
          Alcotest.test_case "single-domain pool" `Quick
            test_single_domain_pool;
          Alcotest.test_case "shard edges" `Quick test_shard_edges;
        ] );
    ]
