The metrics subcommand runs a deterministic two-phase workload through
an instrumented broker and dumps the registry. The JSON snapshot must
validate (jsoncheck is the strict RFC 8259 parser from lib/obs):

  $ ../../bin/genas_cli.exe metrics --events 500 | ../../bin/genas_cli.exe jsoncheck
  ok

The snapshot names every acceptance-criteria metric: match-latency
percentiles, rebuild counts, and tree-size gauges.

  $ ../../bin/genas_cli.exe metrics --events 500 > snap.json
  $ grep -c '"genas_engine_match_duration_ns"' snap.json
  1
  $ grep -o '"p5[09]"' snap.json | sort | uniq -c | sed 's/^ *//'
  5 "p50"
  $ grep -c '"genas_adaptive_rebuilds_total"' snap.json
  1
  $ grep -c '"genas_engine_tree_nodes"' snap.json
  1
  $ grep -c '"genas_broker_published_total"' snap.json
  1

No "nan" (or bare inf) token may appear in either exporter's output:

  $ grep -ci 'nan' snap.json
  0
  [1]
  $ ../../bin/genas_cli.exe metrics --events 500 --format prom > snap.prom
  $ grep -ci 'nan' snap.prom
  0
  [1]

The Prometheus exposition carries HELP/TYPE headers and cumulative
buckets ending at +Inf:

  $ grep -c '^# TYPE genas_engine_match_duration_ns histogram' snap.prom
  1
  $ grep -c 'genas_engine_match_duration_ns_bucket{le="+Inf"}' snap.prom
  1

Determinism: the same seed produces the same counters (timings differ,
so compare a timing-free projection):

  $ ../../bin/genas_cli.exe metrics --events 500 > snap2.json
  $ grep '"value"' snap.json > a.txt
  $ grep '"value"' snap2.json > b.txt
  $ cmp a.txt b.txt

jsoncheck rejects malformed input with a nonzero exit:

  $ printf '{"unterminated": ' | ../../bin/genas_cli.exe jsoncheck
  jsoncheck: invalid JSON at byte 17: unexpected end of input
  [1]

Bad arguments are rejected:

  $ ../../bin/genas_cli.exe metrics --events 0 2>/dev/null
  [1]
  $ ../../bin/genas_cli.exe metrics --format xml 2>/dev/null
  [1]
