The faults subcommand drives a four-broker line through a seeded fault
plan. Its entire output is a pure function of the seed, so the snapshot
below doubles as the determinism contract (ISSUE 3: identical seed and
plan must replay a bit-identical delivery/retry/dead-letter trace).

  $ ../../bin/genas_cli.exe faults --seed 42 --events 300 --handler-fail 0.6 --drop 0.15 --dup 0.08 --delay 0.08 --pause 0.05
  topology 0-1-2-3, 300 events, seed 42
  delivered 243  event-messages 322
  link faults: 42 dropped, 23 duplicated, 22 delayed; 31 broker pauses
  supervision: 145 failed attempts, 119 retries, 26 dead-lettered, 0 short-circuited, 0 circuit trips
  dead-letter queue: 26 held (capacity 1024, 0 dropped)
    oldest: #1 flaky after 3 attempt(s): injected: flaky
  fault trace: 263 injected
    handler-raise flaky
    handler-raise flaky
    handler-raise flaky
    link-drop 0->1
    link-drop 1->2
  circuit(flaky) = closed

Replaying the identical invocation yields byte-identical output:

  $ ../../bin/genas_cli.exe faults --seed 42 --events 300 --handler-fail 0.6 --drop 0.15 --dup 0.08 --delay 0.08 --pause 0.05 > a.txt
  $ ../../bin/genas_cli.exe faults --seed 42 --events 300 --handler-fail 0.6 --drop 0.15 --dup 0.08 --delay 0.08 --pause 0.05 > b.txt
  $ cmp a.txt b.txt

A permanently failing subscriber with no retries exercises the circuit
breaker: after four consecutive terminal failures the circuit opens and
deliveries are short-circuited until the cooldown's half-open probe.

  $ ../../bin/genas_cli.exe faults --seed 9 --events 120 --handler-fail 1.0 --drop 0 --dup 0 --delay 0 --pause 0 --retries 1
  topology 0-1-2-3, 120 events, seed 9
  delivered 64  event-messages 131
  link faults: 0 dropped, 0 duplicated, 0 delayed; 0 broker pauses
  supervision: 11 failed attempts, 0 retries, 66 dead-lettered, 55 short-circuited, 8 circuit trips
  dead-letter queue: 66 held (capacity 1024, 0 dropped)
    oldest: #0 flaky after 1 attempt(s): injected: flaky
  fault trace: 11 injected
    handler-raise flaky
    handler-raise flaky
    handler-raise flaky
    handler-raise flaky
    handler-raise flaky
  circuit(flaky) = open

Bad arguments are rejected:

  $ ../../bin/genas_cli.exe faults --events 0 2>/dev/null
  [1]
  $ ../../bin/genas_cli.exe faults --drop 2.0 2>/dev/null
  [1]
