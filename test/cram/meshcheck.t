A three-node mesh of OS processes: a root broker, a relay that serves
downstream peers while peering upstream into the root, and scripted
clients on both tiers. Downstream subscriptions are mirrored upstream
(covering-minimized, refcounted), downstream publishes forward
upstream with their origin preserved, and deliveries fan out to every
tier exactly once — the chain delivers what one flat broker would.

  $ ../../bin/genas_cli.exe serve --addr unix:root.sock --dir rootwal --connections 2 --name root > root.out 2>&1 &
  $ for _ in $(seq 150); do [ -S root.sock ] && break; sleep 0.1; done
  $ ../../bin/genas_cli.exe relay --addr unix:relay.sock --up unix:root.sock --dir relaywal --connections 2 --name relay > relay.out 2>&1 &
  $ for _ in $(seq 150); do [ -S relay.sock ] && break; sleep 0.1; done

Subscribers first, parked on 'await' (scripted responses are flushed
per line, so polling their output files synchronizes the script): one
at the root, one at the relay.

  $ ../../bin/genas_cli.exe connect --addr unix:root.sock --name rootsub > rootsub.out 2>&1 <<'EOF' &
  > sub bob : severity >= 5
  > await 2
  > status
  > quit
  > EOF
  $ for _ in $(seq 150); do grep -q "sub bob" rootsub.out 2>/dev/null && break; sleep 0.1; done

  $ ../../bin/genas_cli.exe connect --addr unix:relay.sock --name leafsub > leafsub.out 2>&1 <<'EOF' &
  > sub dave : severity >= 5
  > await 2
  > quit
  > EOF
  $ for _ in $(seq 150); do grep -q "sub dave" leafsub.out 2>/dev/null && break; sleep 0.1; done

The publisher joins at the leaf tier. Its own subscription only
matches the second event (delivered locally, never echoed back); the
relay forwards both publishes upstream before acknowledging, so by
the time 'pub ok' prints the root has journaled the event.

  $ ../../bin/genas_cli.exe connect --addr unix:relay.sock --name leafpub <<'EOF'
  > sub carol : severity >= 8
  > pub topic = weather, severity = 7
  > pub topic = traffic, severity = 9
  > status
  > quit
  > EOF
  sub carol token=1 forwarded=1
  pub ok local=0
  deliver carol <- topic = "traffic", severity = 9
  pub ok local=1
  status connected=true applied=0 dropped=0 reconnects=0 heartbeat_misses=0 outbox=0
  bye applied=0 dropped=0

Both subscribers saw both events exactly once, in publish order — the
root subscriber through relay-forwarded upstream publishes, the leaf
subscriber through the relay's own broker.

  $ wait
  $ cat rootsub.out
  sub bob token=1 forwarded=1
  deliver bob <- topic = "weather", severity = 7
  deliver bob <- topic = "traffic", severity = 9
  await applied=2
  status connected=true applied=2 dropped=0 reconnects=0 heartbeat_misses=0 outbox=0
  bye applied=2 dropped=0
  $ cat leafsub.out
  sub dave token=1 forwarded=1
  deliver dave <- topic = "weather", severity = 7
  deliver dave <- topic = "traffic", severity = 9
  await applied=2
  bye applied=2 dropped=0

Both tiers ran journaled brokers: the root saw two connections (the
relay's upstream link and rootsub), the relay its two downstream
clients. Each WAL holds what a reconnecting client would replay.

  $ cat root.out
  serving unix:root.sock
  served 2 connection(s), cursor 6
  $ cat relay.out
  relay relay: serving unix:relay.sock, upstream unix:root.sock
  relay relay: served 2 connection(s), cursor 6
  $ ls rootwal
  journal.wal
  $ ls relaywal
  journal.wal
