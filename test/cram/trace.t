The trace subcommand runs a seeded workload with causal tracing on. A
deterministic fake clock (1µs per reading) makes every timestamp a pure
function of the call sequence, so the whole dump is byte-stable. Each
published event becomes one span tree — broker.publish at the root,
engine.match and per-subscriber deliver/deliver.attempt below — plus the
flat matcher's traversal path (nodes visited, edges taken, comparisons).

  $ ../../bin/genas_cli.exe trace --events 6 --seed 7
  traced workload: 6 events, seed 7, sample 1: 6 traces started, 6 sampled, 6 completed, 0 evicted
  flight recorder: 6/8 trace(s) held, 0 evicted, 6 started, 6 sampled
  trace 0 broker.publish: 4 span(s)
    [0] broker.publish +0ns 7000ns ok
      [1] engine.match +1000ns 1000ns ok (matched=1)
      [2] deliver +3000ns 3000ns ok (subscriber=ops)
        [3] deliver.attempt +4000ns 1000ns ok
    path: nodes 5>2>1, edges e0>rest>leaf, comparisons 1>1>0, matched {0}
  trace 1 broker.publish: 6 span(s)
    [0] broker.publish +0ns 11000ns ok
      [1] engine.match +1000ns 1000ns ok (matched=2)
      [2] deliver +3000ns 3000ns ok (subscriber=ops)
        [3] deliver.attempt +4000ns 1000ns ok
      [4] deliver +7000ns 3000ns ok (subscriber=flaky)
        [5] deliver.attempt +8000ns 1000ns ok
    path: nodes 5>2>0, edges e0>e0>leaf, comparisons 1>1>0, matched {0,1}
  trace 2 broker.publish: 4 span(s)
    [0] broker.publish +0ns 7000ns ok
      [1] engine.match +1000ns 1000ns ok (matched=1)
      [2] deliver +3000ns 3000ns ok (subscriber=flaky)
        [3] deliver.attempt +4000ns 1000ns ok
    path: nodes 5>4>3, edges rest>e0>leaf, comparisons 1>1>0, matched {1}
  trace 3 broker.publish: 4 span(s)
    [0] broker.publish +0ns 7000ns ok
      [1] engine.match +1000ns 1000ns ok (matched=1)
      [2] deliver +3000ns 3000ns error: Failure("refusing severity 9") (subscriber=flaky)
        [3] deliver.attempt +4000ns 1000ns error: Failure("refusing severity 9")
    path: nodes 5>4>3, edges rest>e0>leaf, comparisons 1>1>0, matched {1}
  trace 4 broker.publish: 4 span(s)
    [0] broker.publish +0ns 7000ns ok
      [1] engine.match +1000ns 1000ns ok (matched=1)
      [2] deliver +3000ns 3000ns ok (subscriber=flaky)
        [3] deliver.attempt +4000ns 1000ns ok
    path: nodes 5>4>3, edges rest>e0>leaf, comparisons 1>1>0, matched {1}
  trace 5 broker.publish: 2 span(s)
    [0] broker.publish +0ns 3000ns ok
      [1] engine.match +1000ns 1000ns ok (matched=0)
    path: nodes 5>4, edges rest>reject, comparisons 1>1, matched {}

Sampling is seeded and deterministic: at --sample 0.5 the same seed
always keeps the same traces.

  $ ../../bin/genas_cli.exe trace --events 12 --seed 7 --sample 0.5 | head -1
  traced workload: 12 events, seed 7, sample 0.5: 12 traces started, 9 sampled, 9 completed, 1 evicted

--chrome emits the same workload as Chrome trace-event JSON (load it at
chrome://tracing). Two runs with the same seed are byte-identical, and
the output passes the strict RFC 8259 parser. Every span is a complete
"X" event and each trace carries a matcher.path instant:

  $ ../../bin/genas_cli.exe trace --chrome --events 6 --seed 7 > a.json
  $ ../../bin/genas_cli.exe trace --chrome --events 6 --seed 7 > b.json
  $ cmp a.json b.json && echo byte-identical
  byte-identical
  $ ../../bin/genas_cli.exe jsoncheck < a.json
  ok
  $ grep -c '"ph": "X"' a.json
  24
  $ grep -c 'matcher.path' a.json
  6

An injected crash (here: mid-snapshot, via the fault plan) triggers an
automatic flight-recorder dump — the last 8 traces, newest workload
state first, with journal.append spans from the durable path:

  $ ../../bin/genas_cli.exe trace --events 40 --seed 7 --dir tdir --crash mid-snapshot --crash-prob 1.0 | head -12
  traced workload: 40 events, seed 7, sample 1: 14 traces started, 14 sampled, 14 completed, 6 evicted
  crashed: crash-mid-snapshot
  === flight recorder dump (crashed: crash-mid-snapshot) ===
  flight recorder: 8/8 trace(s) held, 6 evicted, 14 started, 14 sampled
  trace 6 broker.publish: 5 span(s)
    [0] broker.publish +0ns 9000ns ok
      [1] engine.match +1000ns 1000ns ok (matched=1)
      [2] deliver +3000ns 3000ns ok (subscriber=flaky)
        [3] deliver.attempt +4000ns 1000ns ok
      [4] journal.append +7000ns 1000ns ok
    path: nodes 5>4>3, edges rest>e0>leaf, comparisons 1>1>0, matched {1}
  trace 7 broker.publish: 7 span(s)
  $ ls tdir
  journal.wal
  snapshot.tmp

Bad arguments are rejected:

  $ ../../bin/genas_cli.exe trace --events 0
  genas: need a positive --events count
  [1]
  $ ../../bin/genas_cli.exe trace --crash before-fsync
  genas: --crash needs a journal directory (--dir)
  [1]
