The journal subcommand runs a seeded workload through a durable broker:
every operation is appended to a write-ahead log and a snapshot is taken
every --snapshot-every ops. The recover subcommand rebuilds the broker
from the directory; on a clean shutdown the counters are identical.

  $ ../../bin/genas_cli.exe journal --dir clean --events 60
  journaled workload: 60 events, seed 7, snapshot every 16
  published 60  notifications 51  dead-letters 4
  journal: 62 ops logged, 3 snapshots
  $ ls clean
  journal.wal
  snapshot.bin
  $ ../../bin/genas_cli.exe recover --dir clean
  recovered: 14 ops replayed, 0 corrupt tail(s) truncated
  subscriptions 2
  published 60  notifications 51  dead-letters 4
  journal: 62 ops logged, 0 snapshots

A crash before the fsync leaves a torn half-record at the journal tail.
Recovery detects it by checksum, physically truncates it, and reports
the loss of exactly the operation in flight (published 16 of the 17 the
dying process had accepted in memory):

  $ ../../bin/genas_cli.exe journal --dir torn --events 60 --crash before-fsync --crash-prob 0.05
  journaled workload: 60 events, seed 7, snapshot every 16
  crashed: crash-before-fsync
  published 17  notifications 13  dead-letters 2
  journal: 18 ops logged, 1 snapshots
  $ ../../bin/genas_cli.exe recover --dir torn
  recovered: 2 ops replayed, 1 corrupt tail(s) truncated
  subscriptions 2
  published 16  notifications 12  dead-letters 2
  journal: 18 ops logged, 0 snapshots

A crash after the journal fsync loses nothing — the record was durable
before the process died:

  $ ../../bin/genas_cli.exe journal --dir durable --events 60 --crash after-journal --crash-prob 0.05
  journaled workload: 60 events, seed 7, snapshot every 16
  crashed: crash-after-journal
  published 17  notifications 13  dead-letters 2
  journal: 19 ops logged, 1 snapshots
  $ ../../bin/genas_cli.exe recover --dir durable
  recovered: 3 ops replayed, 0 corrupt tail(s) truncated
  subscriptions 2
  published 17  notifications 13  dead-letters 2
  journal: 19 ops logged, 0 snapshots

A crash in the middle of writing a snapshot leaves only a half-written
temp file; the rename never happened, so the journal (still complete)
is the source of truth and recovery replays it in full:

  $ ../../bin/genas_cli.exe journal --dir midsnap --events 60 --crash mid-snapshot --crash-prob 1.0
  journaled workload: 60 events, seed 7, snapshot every 16
  crashed: crash-mid-snapshot
  published 14  notifications 11  dead-letters 2
  journal: 16 ops logged, 0 snapshots
  $ ls midsnap
  journal.wal
  snapshot.tmp
  $ ../../bin/genas_cli.exe recover --dir midsnap
  recovered: 16 ops replayed, 0 corrupt tail(s) truncated
  subscriptions 2
  published 14  notifications 11  dead-letters 2
  journal: 16 ops logged, 0 snapshots

Recovery is idempotent — recovering the recovered directory again
yields the same state:

  $ ../../bin/genas_cli.exe recover --dir clean > a.txt
  $ ../../bin/genas_cli.exe recover --dir clean > b.txt
  $ cmp a.txt b.txt
