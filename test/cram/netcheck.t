Two OS processes speak the checksummed Codec wire protocol over a
Unix-domain socket: serve runs a journaled broker for exactly one
connection; connect drives it from a script. The client's own publish
is delivered by its local broker and never echoed back by the server,
and a redundant replay out of the server's WAL is fully deduplicated
by the applied (cursor, idx) set — at-least-once on the wire,
exactly-once locally.

  $ ../../bin/genas_cli.exe serve --addr unix:net.sock --dir wal --connections 1 > server.out 2>&1 &
  $ for _ in $(seq 100); do [ -S net.sock ] && break; sleep 0.1; done

  $ ../../bin/genas_cli.exe connect --addr unix:net.sock --name demo <<'EOF'
  > sub alice : severity >= 5
  > pub topic = weather, severity = 7
  > pub topic = traffic, severity = 2
  > replay
  > quit
  > EOF
  sub alice token=1 forwarded=1
  deliver alice <- topic = "weather", severity = 7
  pub ok local=1
  pub ok local=0
  replay applied=0 complete=true
  bye applied=0 dropped=1

The server saw the connection out and exited on its own; the journal
directory holds the write-ahead log a reconnecting client would replay
from.

  $ wait
  $ cat server.out
  serving unix:net.sock
  served 1 connection(s), cursor 4
  $ ls wal
  journal.wal
