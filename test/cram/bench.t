The bench subcommand's --json mode emits the BENCH_*.json document.
It must pass the strict validator (the CLI also self-validates before
writing anything):

  $ ../../bin/genas_cli.exe bench --json --events 1000 --out bench.json
  $ ../../bin/genas_cli.exe jsoncheck < bench.json
  ok

Pin the document schema: header, workload and host blocks, derived
speedups.

  $ grep -c '"bench": "genas-perf"' bench.json
  1
  $ grep -c '"schema_version": 1' bench.json
  1
  $ grep -c '"profiles": 500' bench.json
  1
  $ grep -c '"recommended_domains"' bench.json
  1
  $ grep -c '"cpu_count"' bench.json
  1
  $ grep -c '"scaling_note"' bench.json
  1
  $ grep -c '"flat_vs_tree"' bench.json
  1
  $ grep -c '"flat_batch_vs_tree"' bench.json
  1
  $ grep -c '"packed_vs_batch"' bench.json
  1
  $ grep -c '"layout_vs_default"' bench.json
  1
  $ grep -c '"publish_traced_off_vs_untraced"' bench.json
  1
  $ grep -c '"publish_traced_vs_untraced"' bench.json
  1
  $ grep -c '"publish_net_traced_off_vs_untraced"' bench.json
  1
  $ grep -c '"pool_peak_vs_1_domain"' bench.json
  1
  $ grep -c '"pool_persistent_vs_spawn_d2"' bench.json
  1

Every matcher and strategy appears exactly once (pool rows beyond d1
and d2 depend on the host's core count, so only those two are pinned;
the grep filter also drops the pool-spawn regression row):

  $ grep -o '"name": "[^"]*"' bench.json | sed 's/"name": //' | grep -v 'pool'
  "naive"
  "counting"
  "tree/natural"
  "flat/natural"
  "tree/v1+a2"
  "flat/v1+a2"
  "tree/binary"
  "flat/binary"
  "flat-batch/v1+a2"
  "flat-packed/v1+a2"
  "flat-skew/v1+a2"
  "flat-skew-layout/v1+a2"
  "publish/untraced"
  "publish/traced-off"
  "publish/traced"
  "publish/net-untraced"
  "publish/net-traced-off"
  "shard/natural/s2"
  "shard/natural/s4"
  $ grep -c '"name": "pool/v1+a2/d1"' bench.json
  1
  $ grep -c '"name": "pool/v1+a2/d2"' bench.json
  1
  $ grep -c '"name": "pool-spawn/v1+a2/d2"' bench.json
  1

Each result row carries the per-matcher figures:

  $ n=$(grep -c '"name"' bench.json)
  $ test "$n" -eq "$(grep -c '"events_per_sec"' bench.json)" && echo aligned
  aligned
  $ test "$n" -eq "$(grep -c '"comparisons_per_event"' bench.json)" && echo aligned
  aligned

The comparison counts are deterministic (wall clock is not): the flat
matcher must report bit-identical comparisons/event to the pointer
tree it was compiled from.

  $ grep -A 6 '"name": "tree/v1+a2"' bench.json | grep '"comparisons_per_event"' > tree.cmp
  $ grep -A 6 '"name": "flat/v1+a2"' bench.json | grep '"comparisons_per_event"' > flat.cmp
  $ cmp tree.cmp flat.cmp

Attaching a tracer that never samples must not change publish-path
throughput beyond measurement noise (the band is generous — shared CI
hosts jitter — but a structural slowdown from merely carrying the
tracer would land far outside it):

  $ grep '"publish_traced_off_vs_untraced"' bench.json \
  >   | grep -o '[0-9.]*' \
  >   | awk '{ if ($1 >= 0.5 && $1 <= 2.0) print "within noise"; \
  >            else print "overhead out of band: " $1 }'
  within noise

The same holds on the networked publish path (one wire round trip per
event dwarfs the disabled tracer's mutex-and-counter cost; the
committed BENCH_PR10.json records the measured ratio at a full timing
budget):

  $ grep '"publish_net_traced_off_vs_untraced"' bench.json \
  >   | grep -o '[0-9.]*' \
  >   | awk '{ if ($1 >= 0.5 && $1 <= 2.0) print "within noise"; \
  >            else print "overhead out of band: " $1 }'
  within noise

Bad arguments are rejected:

  $ ../../bin/genas_cli.exe bench --events 0 2>/dev/null
  [1]
