Mesh-wide observability, end to end over OS processes.

Part 1 — cross-process trace propagation is deterministic. The same
scripted publish flows through a three-process chain (leaf client ->
relay -> root broker), every node tracing with a private logical span
clock (--trace-logical) and dumping its flight recorder at exit
(--trace-out). Run the whole chain twice and the merged Chrome traces
must be byte-identical.

Run A:

  $ mkdir runa runb
  $ ../../bin/genas_cli.exe serve --addr unix:runa/root.sock --connections 1 --name root --heartbeat 0 --trace-out runa/root.dump --trace-logical > runa/root.out 2>&1 &
  $ for _ in $(seq 150); do [ -S runa/root.sock ] && break; sleep 0.05; done
  $ ../../bin/genas_cli.exe relay --addr unix:runa/relay.sock --up unix:runa/root.sock --connections 1 --name R1 --heartbeat 0 --trace-out runa/relay.dump --trace-logical > runa/relay.out 2>&1 &
  $ for _ in $(seq 150); do [ -S runa/relay.sock ] && break; sleep 0.05; done
  $ ../../bin/genas_cli.exe connect --addr unix:runa/relay.sock --name leaf --heartbeat 0 --trace-out runa/leaf.dump --trace-logical <<'EOF'
  > sub leafsub : severity >= 0
  > pub topic = weather, severity = 5
  > quit
  > EOF
  sub leafsub token=1 forwarded=1
  deliver leafsub <- topic = "weather", severity = 5
  pub ok local=1
  bye applied=0 dropped=0
  $ wait

Run B, identical:

  $ ../../bin/genas_cli.exe serve --addr unix:runb/root.sock --connections 1 --name root --heartbeat 0 --trace-out runb/root.dump --trace-logical > runb/root.out 2>&1 &
  $ for _ in $(seq 150); do [ -S runb/root.sock ] && break; sleep 0.05; done
  $ ../../bin/genas_cli.exe relay --addr unix:runb/relay.sock --up unix:runb/root.sock --connections 1 --name R1 --heartbeat 0 --trace-out runb/relay.dump --trace-logical > runb/relay.out 2>&1 &
  $ for _ in $(seq 150); do [ -S runb/relay.sock ] && break; sleep 0.05; done
  $ ../../bin/genas_cli.exe connect --addr unix:runb/relay.sock --name leaf --heartbeat 0 --trace-out runb/leaf.dump --trace-logical <<'EOF'
  > sub leafsub : severity >= 0
  > pub topic = weather, severity = 5
  > quit
  > EOF
  sub leafsub token=1 forwarded=1
  deliver leafsub <- topic = "weather", severity = 5
  pub ok local=1
  bye applied=0 dropped=0
  $ wait

Stitch each run's three per-node dumps into one Chrome trace. The
document validates, and the merged runs are byte-for-byte identical:

  $ ../../bin/genas_cli.exe trace-merge runa/leaf.dump runa/relay.dump runa/root.dump --out runa/merged.json
  $ ../../bin/genas_cli.exe trace-merge runb/leaf.dump runb/relay.dump runb/root.dump --out runb/merged.json
  $ ../../bin/genas_cli.exe jsoncheck < runa/merged.json
  ok
  $ cmp runa/merged.json runb/merged.json && echo deterministic
  deterministic

The publish at the leaf and its application at the relay and the root
share one trace id — a single causal tree spanning all three
processes, one Chrome pid per node in merge order:

  $ grep -o '"trace_id": [0-9]*' runa/merged.json | sort -u
  "trace_id": 0
  $ grep -o '"pid": [0-9]*' runa/merged.json | sort -u
  "pid": 1
  "pid": 2
  "pid": 3
  $ grep -c '"name": "net.publish"' runa/merged.json
  1
  $ grep -c '"name": "net.rx_publish"' runa/merged.json
  2

Each hop is stitched to its upstream parent with a flow-event arrow
(one leaf->relay, one relay->root):

  $ grep -c '"ph": "s"' runa/merged.json
  2
  $ grep -c '"ph": "f"' runa/merged.json
  2

Part 2 — live mesh introspection. A fresh chain where the root also
serves a metrics scrape endpoint; the leaf parks on 'await' so the
mesh is quiescent but fully connected while we probe it.

  $ ../../bin/genas_cli.exe serve --addr unix:root.sock --connections 1 --name root --heartbeat 0 --metrics-addr unix:metrics.sock > root.out 2>&1 &
  $ for _ in $(seq 150); do [ -S root.sock ] && break; sleep 0.05; done
  $ ../../bin/genas_cli.exe relay --addr unix:relay.sock --up unix:root.sock --connections 3 --name R1 --heartbeat 0 > relay.out 2>&1 &
  $ for _ in $(seq 150); do [ -S relay.sock ] && break; sleep 0.05; done
  $ ../../bin/genas_cli.exe connect --addr unix:relay.sock --name leaf --heartbeat 0 > leaf.out 2>&1 <<'EOF' &
  > sub leafsub : severity >= 0
  > pub topic = weather, severity = 5
  > await 2
  > quit
  > EOF
  $ for _ in $(seq 150); do grep -q "pub ok" leaf.out 2>/dev/null && break; sleep 0.05; done

The scrape endpoint speaks enough HTTP for curl or a Prometheus
scraper: build info, uptime, and the per-hop wire histograms are all
exposed (values are live, so only names are pinned):

  $ ../../bin/genas_cli.exe http-get --addr unix:metrics.sock --path /metrics > metrics.txt
  $ head -1 metrics.txt
  200
  $ grep -c '^genas_build_info' metrics.txt
  1
  $ grep -c '# TYPE genas_uptime_seconds gauge' metrics.txt
  1
  $ grep -c '# TYPE genas_net_rx_apply_duration_ns histogram' metrics.txt
  1
  $ grep -c '# TYPE genas_net_queue_wait_ns histogram' metrics.txt
  1
  $ ../../bin/genas_cli.exe http-get --addr unix:metrics.sock --path /nope
  404
  not found

'genas status' against the relay fans the Status_req out across the
chain and renders one row per node, probe-side first. Uptime is wall
clock, so it is filtered out; everything else is pinned, including
each node's live peer table:

  $ ../../bin/genas_cli.exe status --addr unix:relay.sock > status.out
  $ awk '{ print $1, $2, $3, $4 }' status.out
  NODE ROLE CURSOR CONNS
  R1 relay -1 2
  root server -1 1
  $ grep -c 'leaf(up,q=0), status-probe(up,q=0)' status.out
  1
  $ grep -c 'R1(up,q=0)' status.out
  1

A second publisher releases the parked leaf and winds the mesh down:

  $ ../../bin/genas_cli.exe connect --addr unix:relay.sock --name kicker --heartbeat 0 <<'EOF'
  > pub topic = traffic, severity = 6
  > quit
  > EOF
  pub ok local=0
  bye applied=0 dropped=0
  $ wait
  $ cat leaf.out
  sub leafsub token=1 forwarded=1
  deliver leafsub <- topic = "weather", severity = 5
  pub ok local=1
  deliver leafsub <- topic = "traffic", severity = 6
  await applied=1
  bye applied=1 dropped=0
  $ cat root.out
  serving unix:root.sock
  served 1 connection(s), cursor 2
  $ cat relay.out
  relay R1: serving unix:relay.sock, upstream unix:root.sock
  relay R1: served 3 connection(s), cursor 2
