(* The subscription-aggregation layer: axis-aware covering, the
   covering lattice against the O(n²) oracle, recovery determinism of
   the covering-minimal set, and the aggregated engine's differential
   equivalence with a plain engine under churn and epoch swaps. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Covering = Genas_profile.Covering
module Lattice = Genas_profile.Lattice
module Engine = Genas_core.Engine
module Broker = Genas_ens.Broker
module Journal = Genas_ens.Journal
module Gen = Genas_testlib.Gen

let schema () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.int_range ~lo:0 ~hi:9) ]

let p s tests = Profile.create_exn s tests

(* ------------------ axis-aware covering (regression) -------------- *)

(* Regression: a predicate whose denotation spans the whole axis is
   semantically a don't-care. [covers] used to compare [Some denot]
   against [None] structurally and answer [false], so e.g. [x >= 0]
   (over x : 0..9) was not recognized as covering — or being covered
   by — a profile that leaves x unconstrained. *)
let test_covers_full_axis_is_dont_care () =
  let s = schema () in
  let full_x = p s [ ("x", Predicate.Ge (Value.Int 0)) ] in
  let full_y = p s [ ("y", Predicate.Le (Value.Int 9)) ] in
  let blank = p s [] in
  let narrow = p s [ ("x", Predicate.Ge (Value.Int 5)) ] in
  Alcotest.(check bool) "full-axis covers blank" true
    (Covering.covers s full_x blank);
  Alcotest.(check bool) "blank covers full-axis" true
    (Covering.covers s blank full_x);
  Alcotest.(check bool) "full-axis x ≡ full-axis y" true
    (Covering.equivalent s full_x full_y);
  Alcotest.(check bool) "full-axis covers narrow" true
    (Covering.covers s full_x narrow);
  Alcotest.(check bool) "narrow !covers full-axis" false
    (Covering.covers s narrow full_x);
  (* The minimal cover collapses all the everything-matchers onto the
     smallest id. *)
  let kept =
    Covering.minimal_cover s [ (4, full_x); (2, full_y); (7, blank) ]
  in
  Alcotest.(check (list int)) "one representative" [ 2 ] (List.map fst kept)

let prop_covers_agrees_with_match_sets =
  QCheck.Test.make
    ~name:"covers s a b <=> no event matches b without a (sampled)" ~count:150
    (QCheck.make
       QCheck.Gen.(
         Gen.schema ~max_attrs:2 () >>= fun s ->
         Gen.profile s >>= fun a ->
         Gen.profile s >>= fun b ->
         Gen.events ~n:40 s >|= fun es -> (s, a, b, es)))
    (fun (s, a, b, es) ->
      (* Soundness direction only: sampled events cannot refute
         non-covering, but a cover claim must never be contradicted. *)
      (not (Covering.covers s a b))
      || List.for_all
           (fun e -> (not (Profile.matches s b e)) || Profile.matches s a e)
           es)

(* --------------------- lattice vs oracle -------------------------- *)

let oracle_ids s entries =
  List.map fst
    (Covering.minimal_cover s
       (List.sort (fun (i, _) (j, _) -> Int.compare i j) entries))

let lattice_of s entries =
  let lat = Lattice.create s in
  List.iter (fun (id, pr) -> ignore (Lattice.add lat ~id pr)) entries;
  lat

let lattice_invariants s lat entries =
  let live = List.length entries in
  Lattice.size lat = live
  && Lattice.absorbed lat = live - Lattice.root_count lat
  && List.map fst (Lattice.minimal_cover lat) = oracle_ids s entries
  && List.map fst (Lattice.entries lat)
     = List.sort Int.compare (List.map fst entries)
  && List.for_all
       (fun (id, _) ->
         Lattice.mem lat id
         &&
         match Lattice.find lat id with
         | None -> false
         | Some canon -> (
           match List.assoc_opt id entries with
           | None -> false
           | Some pr -> Covering.equivalent s canon pr))
       entries

let prop_lattice_roots_equal_oracle =
  QCheck.Test.make
    ~name:"lattice roots = minimal_cover oracle, any insertion order"
    ~count:80
    (QCheck.make
       QCheck.Gen.(
         Gen.schema ~max_attrs:2 () >>= fun s ->
         list_size (int_range 1 12) (Gen.profile s) >>= fun ps ->
         shuffle_l (List.mapi (fun i pr -> (i, pr)) ps) >|= fun shuffled ->
         (s, shuffled)))
    (fun (s, entries) -> lattice_invariants s (lattice_of s entries) entries)

let prop_lattice_churn =
  QCheck.Test.make
    ~name:"lattice invariants hold across add/remove interleavings"
    ~count:60
    (QCheck.make
       QCheck.Gen.(
         Gen.schema ~max_attrs:2 () >>= fun s ->
         list_size (int_range 8 30)
           (frequency
              [
                (3, Gen.profile s >|= fun pr -> `Add pr);
                (2, int_bound 1000 >|= fun i -> `Remove i);
              ])
         >|= fun ops -> (s, ops)))
    (fun (s, ops) ->
      let lat = Lattice.create s in
      let live = ref [] in
      let next = ref 0 in
      List.for_all
        (fun op ->
          (match op with
          | `Add pr ->
            let id = !next in
            incr next;
            ignore (Lattice.add lat ~id pr);
            live := (id, pr) :: !live
          | `Remove i -> (
            match !live with
            | [] -> ()
            | l ->
              let id, _ = List.nth l (i mod List.length l) in
              (match Lattice.remove lat id with
              | None -> Alcotest.fail "live id not found in lattice"
              | Some _ -> ());
              live := List.remove_assoc id l));
          lattice_invariants s lat !live)
        ops)

let test_lattice_descendants () =
  let s = schema () in
  let broad = p s [ ("x", Predicate.Ge (Value.Int 2)) ] in
  let mid = p s [ ("x", Predicate.Ge (Value.Int 5)) ] in
  let narrow = p s [ ("x", Predicate.Ge (Value.Int 8)) ] in
  let lat = Lattice.create s in
  ignore (Lattice.add lat ~id:0 broad);
  ignore (Lattice.add lat ~id:1 mid);
  ignore (Lattice.add lat ~id:2 narrow);
  ignore (Lattice.add lat ~id:3 mid);
  (* equivalence duplicate *)
  Alcotest.(check int) "one root" 1 (Lattice.root_count lat);
  Alcotest.(check int) "absorbed" 3 (Lattice.absorbed lat);
  Alcotest.(check int) "broad absorbs all" 3 (Lattice.descendant_count lat 0);
  Alcotest.(check int) "mid absorbs narrow" 1 (Lattice.descendant_count lat 1);
  Alcotest.(check int) "narrow absorbs none" 0 (Lattice.descendant_count lat 2);
  Alcotest.(check (option int)) "covered_by finds the root" (Some 0)
    (Lattice.covered_by lat narrow);
  (* Removing the root promotes mid; narrow stays absorbed under it. *)
  (match Lattice.remove lat 0 with
  | Some (Lattice.Dissolved { root = true; promoted = [ [ 1; 3 ] ] }) -> ()
  | _ -> Alcotest.fail "expected the mid class to be promoted");
  Alcotest.(check (list int)) "new root" [ 1 ]
    (List.map fst (Lattice.minimal_cover lat))

let test_lattice_cover_tests_sublinear () =
  (* On a covering-heavy population — the workload aggregation exists
     for — insertion cost is (roots probed + one chain descent), not a
     scan of all live entries. 16 broad range roots each absorb a
     stream of point profiles; the oracle's pairwise rescan would cost
     ~n²/2 tests, the lattice must stay an order of magnitude below. *)
  let s = Schema.create_exn [ ("x", Domain.int_range ~lo:0 ~hi:999) ] in
  let lat = Lattice.create s in
  let roots = 16 and n = 400 in
  let width = 1000 / roots in
  for r = 0 to roots - 1 do
    ignore
      (Lattice.add lat ~id:r
         (p s
            [
              ( "x",
                Predicate.Between
                  {
                    lo = Value.Int (r * width);
                    lo_closed = true;
                    hi = Value.Int (((r + 1) * width) - 1);
                    hi_closed = true;
                  } );
            ]))
  done;
  for i = roots to n - 1 do
    ignore
      (Lattice.add lat ~id:i (p s [ ("x", Predicate.Eq (Value.Int (i mod 1000))) ]))
  done;
  Alcotest.(check int) "broad roots absorb the points" roots
    (Lattice.root_count lat);
  let tests = Lattice.cover_tests lat in
  Alcotest.(check bool)
    (Printf.sprintf "cover tests sublinear (%d for n=%d)" tests n)
    true
    (tests < n * n / 8)

(* ---------------- recovery determinism (regression) --------------- *)

let mc_ids engine =
  match Engine.lattice engine with
  | None -> Alcotest.fail "engine is not aggregated"
  | Some lat -> List.map fst (Lattice.minimal_cover lat)

let fresh_dir () =
  let path = Filename.temp_file "genas_cover" ".d" in
  Sys.remove path;
  path

(* Regression: the covering-minimal set must be bit-identical between
   a live broker and its recovered twin. Live insertion order is
   subscription order with removals interleaved; recovery rebuilds
   from a snapshot (ascending ids) and/or replays the journal — the
   [eliminates] id tie-break and the lattice's order-independent roots
   must make all three agree. *)
let recovery_case ~snapshot_every () =
  let s = schema () in
  let dir = fresh_dir () in
  let b =
    Broker.create ~aggregate:true
      ~journal:(Journal.config ~snapshot_every dir)
      s
  in
  let sub tests =
    Broker.subscribe b ~subscriber:"t" ~profile:(p s tests) (fun _ -> ())
  in
  (* Narrow first, broad later: the broad subscriptions demote earlier
     roots; equivalents collapse; a removal promotes a covered class. *)
  let h_narrow = sub [ ("x", Predicate.Ge (Value.Int 8)) ] in
  let _ = sub [ ("x", Predicate.Ge (Value.Int 5)) ] in
  let _ = sub [ ("y", Predicate.Le (Value.Int 3)) ] in
  let h_broad = sub [ ("x", Predicate.Ge (Value.Int 2)) ] in
  let _ = sub [ ("x", Predicate.Ge (Value.Int 5)) ] in
  (* equivalent of id 1 *)
  let _ = sub [ ("x", Predicate.Ge (Value.Int 0)) ] in
  (* full-axis: equivalent to a blank profile *)
  ignore (Broker.unsubscribe b h_narrow);
  ignore (Broker.unsubscribe b h_broad);
  let live = mc_ids (Broker.engine b) in
  let oracle =
    let pset = Engine.profiles (Broker.engine b) in
    let entries =
      Profile_set.fold pset ~init:[] ~f:(fun acc id pr -> (id, pr) :: acc)
      |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
    in
    List.map fst (Covering.minimal_cover s entries)
  in
  Alcotest.(check (list int)) "live lattice = oracle" oracle live;
  Broker.close b;
  match
    Broker.recover ~aggregate:true
      ~journal:(Journal.config ~snapshot_every dir)
      s
  with
  | Error e -> Alcotest.fail ("recover: " ^ e)
  | Ok r ->
    Alcotest.(check (list int))
      "recovered minimal cover bit-identical" live
      (mc_ids (Broker.engine r));
    Broker.close r

let test_recovery_minimal_cover_journal () = recovery_case ~snapshot_every:100 ()
let test_recovery_minimal_cover_snapshot () = recovery_case ~snapshot_every:2 ()

(* ------------- aggregated ≡ plain engine differential ------------- *)

let ids_equal a b = List.equal Int.equal a b

(* Scripted churn applied to a plain and an aggregated engine in
   lockstep: every match decision must agree exactly, whatever the
   interleaving of subscribes, unsubscribes, forced epoch swaps, and
   the automatic swaps a tiny [delta_cap] triggers mid-stream. *)
let prop_agg_equals_plain_under_churn =
  QCheck.Test.make
    ~name:"aggregated engine ≡ plain engine under churn + epoch swaps"
    ~count:40
    (QCheck.make
       QCheck.Gen.(
         Gen.schema ~max_attrs:3 () >>= fun s ->
         list_size (int_range 0 10) (Gen.profile s) >>= fun initial ->
         list_size (int_range 10 50)
           (frequency
              [
                (3, Gen.profile s >|= fun pr -> `Add pr);
                (2, int_bound 1000 >|= fun i -> `Remove i);
                (5, Gen.event s >|= fun e -> `Match e);
                (1, return `Swap);
              ])
         >>= fun ops ->
         Gen.events ~n:15 s >|= fun batch -> (s, initial, ops, batch)))
    (fun (s, initial, ops, batch) ->
      let mk aggregate =
        let pset = Profile_set.create s in
        List.iter (fun pr -> ignore (Profile_set.add pset pr)) initial;
        Engine.create ~aggregate ~delta_cap:3 pset
      in
      let plain = mk false and agg = mk true in
      let live = ref (Profile_set.ids (Engine.profiles plain)) in
      let step op =
        match op with
        | `Add pr ->
          let i1 = Engine.add_profile plain pr in
          let i2 = Engine.add_profile agg pr in
          if i1 <> i2 then Alcotest.fail "id drift between engines";
          live := !live @ [ i1 ];
          true
        | `Remove i -> (
          match !live with
          | [] -> true
          | l ->
            let id = List.nth l (i mod List.length l) in
            live := List.filter (fun x -> x <> id) l;
            Engine.remove_profile plain id = Engine.remove_profile agg id)
        | `Match e ->
          ids_equal (Engine.match_event plain e) (Engine.match_event agg e)
        | `Swap ->
          Engine.swap_now agg;
          true
      in
      List.for_all step ops
      &&
      (* Batch path too, with a swap left pending. *)
      let ba = Engine.match_batch plain (Array.of_list batch) in
      let bb = Engine.match_batch agg (Array.of_list batch) in
      Array.for_all2 (fun x y -> ids_equal (Array.to_list x) (Array.to_list y))
        ba bb)

let test_agg_gauges_and_epochs () =
  let s = schema () in
  let pset = Profile_set.create s in
  let engine = Engine.create ~aggregate:true ~delta_cap:2 pset in
  Alcotest.(check bool) "aggregated" true (Engine.aggregated engine);
  Alcotest.(check int) "epoch 0" 0 (Engine.epoch engine);
  let broad = Engine.add_profile engine (p s [ ("x", Predicate.Ge (Value.Int 2)) ]) in
  let _n1 = Engine.add_profile engine (p s [ ("x", Predicate.Ge (Value.Int 5)) ]) in
  let _n2 = Engine.add_profile engine (p s [ ("x", Predicate.Ge (Value.Int 8)) ]) in
  (* The two covered adds touched only the lattice. *)
  Alcotest.(check int) "absorbed" 2 (Engine.absorbed_profiles engine);
  Alcotest.(check int) "roots" 1 (Engine.lattice_roots engine);
  let ev x = Event.create_exn s [ ("x", Value.Int x); ("y", Value.Int 0) ] in
  Alcotest.(check (list int)) "absorbed still matched" [ 0; 1; 2 ]
    (Engine.match_event engine (ev 9));
  Alcotest.(check (list int)) "partial expansion" [ 0; 1 ]
    (Engine.match_event engine (ev 6));
  (* Structural churn beyond delta_cap forces a swap on the churn op. *)
  let e0 = Engine.epoch engine in
  ignore (Engine.remove_profile engine broad);
  ignore (Engine.add_profile engine (p s [ ("y", Predicate.Le (Value.Int 4)) ]));
  ignore (Engine.add_profile engine (p s [ ("y", Predicate.Ge (Value.Int 6)) ]));
  ignore (Engine.add_profile engine (p s [ ("x", Predicate.Le (Value.Int 1)) ]));
  Alcotest.(check bool) "epoch advanced" true (Engine.epoch engine > e0);
  Alcotest.(check (list int)) "post-swap matching exact" [ 1; 2; 3 ]
    (Engine.match_event engine (ev 9));
  Engine.swap_now engine;
  Alcotest.(check int) "nothing pending after swap" 0
    (Engine.pending_rebuild engine)

let () =
  Alcotest.run "cover"
    [
      ( "covering",
        [
          Alcotest.test_case "full-axis denotation is don't-care" `Quick
            test_covers_full_axis_is_dont_care;
          QCheck_alcotest.to_alcotest prop_covers_agrees_with_match_sets;
        ] );
      ( "lattice",
        [
          QCheck_alcotest.to_alcotest prop_lattice_roots_equal_oracle;
          QCheck_alcotest.to_alcotest prop_lattice_churn;
          Alcotest.test_case "descendants and promotion" `Quick
            test_lattice_descendants;
          Alcotest.test_case "cover tests sublinear" `Quick
            test_lattice_cover_tests_sublinear;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "minimal cover deterministic (journal replay)"
            `Quick test_recovery_minimal_cover_journal;
          Alcotest.test_case "minimal cover deterministic (snapshot rebuild)"
            `Quick test_recovery_minimal_cover_snapshot;
        ] );
      ( "engine",
        [
          QCheck_alcotest.to_alcotest prop_agg_equals_plain_under_churn;
          Alcotest.test_case "gauges and epoch swaps" `Quick
            test_agg_gauges_and_epochs;
        ] );
    ]
