(* Edge cases and guard rails across the API surface. *)

module Prng = Genas_prng.Prng
module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Iset = Genas_interval.Iset
module Dist = Genas_dist.Dist
module Shape = Genas_dist.Shape
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Notification = Genas_ens.Notification
module Workload = Genas_expt.Workload
module Simulate = Genas_expt.Simulate
module Gen = Genas_testlib.Gen

let test_axis_guards () =
  Alcotest.check_raises "non-integer discrete bounds"
    (Invalid_argument "Axis.make: discrete axis needs integer bounds")
    (fun () -> ignore (Axis.make ~discrete:true ~lo:0.5 ~hi:2.0));
  Alcotest.check_raises "inverted"
    (Invalid_argument "Axis.make: hi < lo") (fun () ->
      ignore (Axis.make ~discrete:false ~lo:1.0 ~hi:0.0));
  (* Degenerate single-point axis is legal. *)
  let a = Axis.make ~discrete:true ~lo:3.0 ~hi:3.0 in
  Alcotest.(check (float 1e-9)) "singleton size" 1.0 (Axis.size a)

let test_single_point_domain_end_to_end () =
  (* A domain with one value still decomposes, matches, and evaluates. *)
  let schema = Schema.create_exn [ ("x", Domain.int_range ~lo:7 ~hi:7) ] in
  let pset = Profile_set.create schema in
  ignore
    (Profile_set.add pset
       (Profile.create_exn schema [ ("x", Predicate.Eq (Value.Int 7)) ]));
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  Alcotest.(check (list int)) "matches" [ 0 ] (Tree.match_coords tree [| 7.0 |]);
  let probs = Dist.cell_probs (Dist.uniform d.Decomp.axes.(0)) d.Decomp.overlays.(0) in
  Alcotest.(check int) "single cell" 1 (Array.length probs);
  Alcotest.(check (float 1e-9)) "all mass" 1.0 probs.(0)

let test_schema_attribute_out_of_range () =
  let s = Schema.create_exn [ ("x", Domain.bool_dom) ] in
  Alcotest.check_raises "negative"
    (Invalid_argument "Schema.attribute: index -1 out of range") (fun () ->
      ignore (Schema.attribute s (-1)));
  Alcotest.check_raises "too large"
    (Invalid_argument "Schema.attribute: index 1 out of range") (fun () ->
      ignore (Schema.attribute s 1))

let test_event_of_values_arity () =
  let s = Schema.create_exn [ ("x", Domain.bool_dom); ("y", Domain.bool_dom) ] in
  match Event.of_values s [| Value.Bool true |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity mismatch accepted"

let test_boundary_values_match () =
  (* Domain boundaries participate in predicates and events. *)
  let s = Schema.create_exn [ ("x", Domain.float_range ~lo:(-1.0) ~hi:1.0) ] in
  let p = Profile.create_exn s [ ("x", Predicate.Le (Value.Float (-1.0))) ] in
  let e = Event.create_exn s [ ("x", Value.Float (-1.0)) ] in
  Alcotest.(check bool) "lower boundary" true (Profile.matches s p e);
  let q = Profile.create_exn s [ ("x", Predicate.Ge (Value.Float 1.0)) ] in
  let e2 = Event.create_exn s [ ("x", Value.Float 1.0) ] in
  Alcotest.(check bool) "upper boundary" true (Profile.matches s q e2)

let test_neq_on_boundary () =
  let s = Schema.create_exn [ ("x", Domain.int_range ~lo:0 ~hi:3) ] in
  let p = Profile.create_exn s [ ("x", Predicate.Neq (Value.Int 0)) ] in
  let pset = Profile_set.create s in
  ignore (Profile_set.add pset p);
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  Alcotest.(check (list int)) "0 excluded" [] (Tree.match_coords tree [| 0.0 |]);
  Alcotest.(check (list int)) "1 included" [ 0 ] (Tree.match_coords tree [| 1.0 |]);
  Alcotest.(check (list int)) "3 included" [ 0 ] (Tree.match_coords tree [| 3.0 |])

let test_notification_pp () =
  let s = Schema.create_exn [ ("x", Domain.bool_dom) ] in
  let e = Event.create_exn s [ ("x", Value.Bool true) ] in
  let n =
    Notification.make ~broker:2 ~event:e
      ~origin:(Notification.Primitive 5) ~subscriber:"ada" ()
  in
  let out = Format.asprintf "%a" (Notification.pp s) n in
  Alcotest.(check bool) "mentions subscriber" true
    (String.length out > 0
    && Option.is_some
         (String.index_opt out 'a'));
  Alcotest.(check bool) "mentions broker" true
    (let rec contains i =
       i + 8 <= String.length out
       && (String.sub out i 8 = "broker 2" || contains (i + 1))
     in
     contains 0)

let test_simulate_precision_monotone () =
  (* A stricter precision target needs at least as many events. *)
  let schema = Workload.normalized_schema ~attrs:1 ~points:50 () in
  let axis = Axis.of_domain (Schema.attribute schema 0).Schema.domain in
  let rng = Prng.create ~seed:5 in
  let pset =
    Workload.gen_profiles rng schema
      {
        Workload.p = 20;
        dontcare = [| 0.0 |];
        value_dists = [| Shape.gauss () axis |];
        range_width = None;
      }
  in
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  let run precision =
    (Simulate.run ~precision (Prng.create ~seed:6) tree [| Dist.uniform axis |])
      .Simulate.events
  in
  Alcotest.(check bool) "monotone" true (run 0.01 >= run 0.10)

let test_workload_dists_of_names_errors () =
  let schema = Workload.normalized_schema ~attrs:2 ~points:10 () in
  Alcotest.check_raises "arity"
    (Invalid_argument "Workload.dists_of_names: arity mismatch") (fun () ->
      ignore (Workload.dists_of_names schema [ "equal" ]));
  Alcotest.check_raises "unknown name"
    (Invalid_argument "Catalog.find_exn: unknown distribution \"zzz\"")
    (fun () -> ignore (Workload.dists_of_names schema [ "equal"; "zzz" ]))

let prop_normalize_discrete_membership =
  QCheck.Test.make ~name:"normalize_discrete preserves integer membership"
    ~count:300
    (QCheck.make (Gen.iset ~lo:(-10.0) ~hi:10.0))
    (fun s ->
      let n = Iset.normalize_discrete s in
      List.for_all
        (fun i ->
          let x = float_of_int i in
          Iset.mem s x = Iset.mem n x)
        (List.init 21 (fun i -> i - 10)))

let prop_interval_hull_contains =
  QCheck.Test.make ~name:"hull contains both operands" ~count:300
    (QCheck.make
       QCheck.Gen.(
         Gen.interval ~lo:0.0 ~hi:10.0 >>= fun a ->
         Gen.interval ~lo:0.0 ~hi:10.0 >|= fun b -> (a, b)))
    (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.subset a h && Interval.subset b h)

let () =
  Alcotest.run "edges"
    [
      ( "guards",
        [
          Alcotest.test_case "axis" `Quick test_axis_guards;
          Alcotest.test_case "schema index" `Quick test_schema_attribute_out_of_range;
          Alcotest.test_case "event arity" `Quick test_event_of_values_arity;
          Alcotest.test_case "workload names" `Quick test_workload_dists_of_names_errors;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "single-point domain" `Quick
            test_single_point_domain_end_to_end;
          Alcotest.test_case "domain boundaries" `Quick test_boundary_values_match;
          Alcotest.test_case "neq at boundary" `Quick test_neq_on_boundary;
          Alcotest.test_case "notification pp" `Quick test_notification_pp;
          Alcotest.test_case "simulation precision" `Quick
            test_simulate_precision_monotone;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_normalize_discrete_membership; prop_interval_hull_contains ] );
    ]
