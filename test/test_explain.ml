(* Match tracing: the explanation must reproduce the matcher's result
   and its operation count exactly. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Ops = Genas_filter.Ops
module Explain = Genas_core.Explain
module Gen = Genas_testlib.Gen

let test_trace_structure () =
  let s =
    Schema.create_exn
      [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.int_range ~lo:0 ~hi:9) ]
  in
  let pset = Profile_set.create s in
  ignore
    (Profile_set.add pset
       (Profile.create_exn s
          [ ("x", Predicate.Ge (Value.Int 5)); ("y", Predicate.Le (Value.Int 3)) ]));
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  (* A matching event: two levels, both edges. *)
  let t = Explain.trace tree (Event.create_exn s [ ("x", Value.Int 7); ("y", Value.Int 2) ]) in
  Alcotest.(check int) "two steps" 2 (List.length t.Explain.steps);
  Alcotest.(check (list int)) "matched" [ 0 ] t.Explain.matched;
  List.iter
    (fun (st : Explain.step) ->
      match st.Explain.outcome with
      | `Edge -> ()
      | `Rest | `Reject -> Alcotest.fail "expected edge steps")
    t.Explain.steps;
  (* Rejected at the first level. *)
  let r = Explain.trace tree (Event.create_exn s [ ("x", Value.Int 1); ("y", Value.Int 2) ]) in
  Alcotest.(check int) "one step" 1 (List.length r.Explain.steps);
  Alcotest.(check (list int)) "no match" [] r.Explain.matched;
  (match (List.hd r.Explain.steps).Explain.outcome with
  | `Reject -> ()
  | `Edge | `Rest -> Alcotest.fail "expected rejection");
  (* The rendering mentions the attribute and the verdict. *)
  let out = Format.asprintf "%a" Explain.pp t in
  Alcotest.(check bool) "pp nonempty" true (String.length out > 20)

let prop_trace_agrees_with_matcher =
  QCheck.Test.make ~name:"trace = match_event (result and cost)" ~count:60
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:20 ()))
    (fun (_, pset, events) ->
      let d = Decomp.build pset in
      let tree = Tree.build d (Tree.default_config d) in
      List.for_all
        (fun e ->
          let ops = Ops.create () in
          let matched = Tree.match_event ~ops tree e in
          let t = Explain.trace tree e in
          t.Explain.matched = matched
          && t.Explain.total_comparisons = ops.Ops.comparisons
          && t.Explain.total_comparisons
             = List.fold_left
                 (fun acc (s : Explain.step) -> acc + s.Explain.comparisons)
                 0 t.Explain.steps)
        events)

(* ------------------------------------------------------------------ *)
(* Hotness advisory: observed survival rates vs the planner's
   attribute order. *)

module Flat = Genas_filter.Flat
module Stats = Genas_core.Stats
module Selectivity = Genas_core.Selectivity
module Reorder = Genas_core.Reorder
module Engine = Genas_core.Engine
module Prng = Genas_prng.Prng

(* Two attributes with sharply different selectivity: [hot] rejects
   ~90% of uniform events, [mild] almost none. A tree that tests
   [mild] first wastes the first level — the advisory must flag it;
   testing [hot] first must come back clean. *)
let advisory_scenario ~first =
  let s =
    Schema.create_exn
      [
        ("mild", Domain.int_range ~lo:0 ~hi:99);
        ("hot", Domain.int_range ~lo:0 ~hi:99);
      ]
  in
  let pset = Profile_set.create s in
  for _ = 1 to 4 do
    ignore
      (Profile_set.add pset
         (Profile.create_exn s
            [
              ("mild", Predicate.Ge (Value.Int 1));
              ("hot", Predicate.Ge (Value.Int 90));
            ]))
  done;
  let order =
    match first with
    | `Hot_first -> [| 1; 0 |]
    | `Mild_first -> [| 0; 1 |]
  in
  let spec =
    {
      Reorder.attr_choice = Reorder.Attr_explicit order;
      value_choice = `Measure Selectivity.V_natural_asc;
    }
  in
  let engine = Engine.create ~spec pset in
  Engine.set_profiling engine true;
  let rng = Prng.create ~seed:11 in
  for i = 0 to 999 do
    ignore i;
    ignore
      (Engine.match_event engine
         (Event.create_exn s
            [
              ("mild", Value.Int (Prng.int rng ~bound:100));
              ("hot", Value.Int (Prng.int rng ~bound:100));
            ]))
  done;
  match Engine.advisory engine with
  | Some a -> a
  | None -> Alcotest.fail "profiling engine must produce an advisory"

let test_advisory_flags_misorder () =
  let bad = advisory_scenario ~first:`Mild_first in
  Alcotest.(check bool) "mis-ordered tree flagged" false bad.Explain.adv_ok;
  Alcotest.(check bool) "at least one inversion" true
    (List.length bad.Explain.adv_inversions >= 1);
  let l0 = List.hd bad.Explain.adv_lines in
  Alcotest.(check string) "level 0 names the tested attribute" "mild"
    l0.Explain.adv_attr_name;
  Alcotest.(check int) "every event reaches the root" 1000
    l0.Explain.adv_visits;
  (* The rendering names the inversion. *)
  let out = Format.asprintf "%a" Explain.pp_advisory bad in
  Alcotest.(check bool) "pp mentions inversion" true
    (let needle = "inversion" in
     let n = String.length needle and h = String.length out in
     let rec go i =
       i + n <= h && (String.sub out i n = needle || go (i + 1))
     in
     go 0)

let test_advisory_ok_when_ordered () =
  let good = advisory_scenario ~first:`Hot_first in
  Alcotest.(check bool) "well-ordered tree clean" true good.Explain.adv_ok;
  Alcotest.(check (list (pair int int))) "no inversions" []
    good.Explain.adv_inversions

let test_advisory_bad_args () =
  let s = Schema.create_exn [ ("x", Domain.int_range ~lo:0 ~hi:9) ] in
  let pset = Profile_set.create s in
  ignore
    (Profile_set.add pset
       (Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 5)) ]));
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  Alcotest.check_raises "short level_visits"
    (Invalid_argument "Explain.advisory: level_visits too short for the tree") (fun () ->
      ignore (Explain.advisory tree ~level_visits:[| 1 |] ~events:1));
  Alcotest.check_raises "bad tolerance"
    (Invalid_argument "Explain.advisory: tolerance must be non-negative")
    (fun () ->
      ignore
        (Explain.advisory ~tolerance:(-0.1) tree ~level_visits:[| 1; 1 |]
           ~events:1))

let () =
  Alcotest.run "explain"
    [
      ( "explain",
        [
          Alcotest.test_case "trace structure" `Quick test_trace_structure;
          QCheck_alcotest.to_alcotest prop_trace_agrees_with_matcher;
        ] );
      ( "advisory",
        [
          Alcotest.test_case "flags mis-ordered tree" `Quick
            test_advisory_flags_misorder;
          Alcotest.test_case "clean on well-ordered tree" `Quick
            test_advisory_ok_when_ordered;
          Alcotest.test_case "bad arguments" `Quick test_advisory_bad_args;
        ] );
    ]
