(* Differential fuzz suite for the compiled flat-array matcher: the
   flat form must return the exact match sets of the pointer tree, the
   naive oracle, and the counting matcher, with comparison/node-visit
   counters bit-identical to the tree — the paper's figures must not
   move when the engine executes the compiled form. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Flat = Genas_filter.Flat
module Pool = Genas_filter.Pool
module Naive = Genas_filter.Naive
module Counting = Genas_filter.Counting
module Ops = Genas_filter.Ops
module Stats = Genas_core.Stats
module Selectivity = Genas_core.Selectivity
module Reorder = Genas_core.Reorder
module Engine = Genas_core.Engine
module Gen = Genas_testlib.Gen

(* Every value-strategy family the reorderer can emit, so the flat
   scan's linear, binary, and hashed branches are all exercised. *)
let specs =
  [
    ("natural", { Reorder.attr_choice = Reorder.Attr_natural;
                  value_choice = `Measure Selectivity.V_natural_asc });
    ("v1+a2", { Reorder.attr_choice =
                  Reorder.Attr_measured (Selectivity.A2, `Descending);
                value_choice = `Measure Selectivity.V1 });
    ("binary", { Reorder.attr_choice = Reorder.Attr_natural;
                 value_choice = `Binary });
    ("hashed", { Reorder.attr_choice = Reorder.Attr_natural;
                 value_choice = `Hashed });
  ]

let trees_of pset =
  let stats = Stats.create (Decomp.build pset) in
  List.map (fun (name, spec) -> (name, Reorder.build stats spec)) specs

let ops_eq a b =
  a.Ops.comparisons = b.Ops.comparisons
  && a.Ops.node_visits = b.Ops.node_visits
  && a.Ops.events = b.Ops.events
  && a.Ops.matches = b.Ops.matches

let check_tree_vs_flat ~name tree events =
  let flat = Flat.compile tree in
  let cur = Flat.cursor flat in
  let tree_ops = Ops.create () and flat_ops = Ops.create () in
  List.for_all
    (fun e ->
      let expect = Tree.match_event ~ops:tree_ops tree e in
      let got = Flat.match_list ~ops:flat_ops flat cur e in
      if got <> expect then
        QCheck.Test.fail_reportf "%s: flat %s <> tree %s" name
          (String.concat "," (List.map string_of_int got))
          (String.concat "," (List.map string_of_int expect))
      else if not (ops_eq tree_ops flat_ops) then
        QCheck.Test.fail_reportf "%s: ops drift: tree %a, flat %a" name Ops.pp
          tree_ops Ops.pp flat_ops
      else true)
    events

let prop_flat_equals_tree =
  QCheck.Test.make ~name:"flat = tree (matches and ops), all strategies"
    ~count:60
    (QCheck.make (Gen.scenario ~max_attrs:4 ~max_p:15 ~n_events:30 ()))
    (fun (_, pset, events) ->
      List.for_all
        (fun (name, tree) -> check_tree_vs_flat ~name tree events)
        (trees_of pset))

let prop_flat_equals_baselines =
  QCheck.Test.make ~name:"flat = naive = counting match sets" ~count:60
    (QCheck.make (Gen.scenario ~max_attrs:4 ~max_p:15 ~n_events:30 ()))
    (fun (_, pset, events) ->
      let naive = Naive.build pset in
      let counting = Counting.build pset in
      let stats = Stats.create (Decomp.build pset) in
      let flat = Flat.compile (Reorder.build stats Reorder.default_spec) in
      let cur = Flat.cursor flat in
      List.for_all
        (fun e ->
          let oracle = Naive.match_event naive e in
          Flat.match_list flat cur e = oracle
          && Counting.match_event counting e = oracle)
        events)

(* The recording loop is a duplicate of the plain one; this pins the
   two in lockstep — same match sets, bit-identical [Ops] accounting —
   and checks the counters it adds: per-event the path's node visits
   sum to the recorder's deltas, level 0 sees every event, and the
   path's comparison total equals the per-event ops count. *)
let prop_recorded_equals_plain =
  QCheck.Test.make ~name:"recorded loop = plain loop (matches, ops, visits)"
    ~count:60
    (QCheck.make (Gen.scenario ~max_attrs:4 ~max_p:15 ~n_events:30 ()))
    (fun (_, pset, events) ->
      List.for_all
        (fun (_, tree) ->
          let flat = Flat.compile tree in
          let cur_a = Flat.cursor flat in
          let cur_b = Flat.cursor flat in
          let r = Flat.recorder flat in
          let ops_a = Ops.create () in
          let ops_b = Ops.create () in
          List.for_all
            (fun e ->
              let cmp_before = ops_b.Ops.comparisons in
              let na = Flat.match_into ~ops:ops_a flat cur_a e in
              let nb = Flat.match_into_recorded ~ops:ops_b flat cur_b r e in
              let path = Flat.last_path r in
              na = nb
              && Array.to_list (Flat.matches cur_a)
                 = Array.to_list (Flat.matches cur_b)
              && ops_eq ops_a ops_b
              && List.fold_left
                   (fun acc (s : Flat.path_step) ->
                     acc + s.Flat.step_comparisons)
                   0 path
                 = ops_b.Ops.comparisons - cmp_before)
            events
          &&
          let visits = Flat.node_visits r in
          let levels = Flat.level_visits r in
          Flat.recorded_events r = List.length events
          && levels.(0) = List.length events
          && Array.fold_left ( + ) 0 visits
             = Array.fold_left ( + ) 0 levels)
        (trees_of pset))

let test_recorder_reset_and_guards () =
  let s =
    Schema.create_exn
      [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.int_range ~lo:0 ~hi:9) ]
  in
  let pset = Profile_set.create s in
  ignore
    (Profile_set.add pset
       (Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 5)) ]));
  let stats = Stats.create (Decomp.build pset) in
  let flat = Flat.compile (Reorder.build stats Reorder.default_spec) in
  let cur = Flat.cursor flat in
  let r = Flat.recorder flat in
  let e = Event.create_exn s [ ("x", Value.Int 7); ("y", Value.Int 1) ] in
  ignore (Flat.match_into_recorded flat cur r e);
  Alcotest.(check int) "one event recorded" 1 (Flat.recorded_events r);
  Alcotest.(check bool) "path non-empty" true (Flat.last_path r <> []);
  Flat.reset_recorder r;
  Alcotest.(check int) "reset clears events" 0 (Flat.recorded_events r);
  Alcotest.(check (list int)) "reset clears path" []
    (List.map (fun (st : Flat.path_step) -> st.Flat.step_node)
       (Flat.last_path r));
  Alcotest.(check int) "reset clears visits" 0
    (Array.fold_left ( + ) 0 (Flat.node_visits r));
  (* A recorder built for another matcher is rejected. The foreign
     matcher uses a wider schema so its arity — and thus the recorder
     geometry — cannot coincide with [flat]'s. *)
  let s2 =
    Schema.create_exn
      [
        ("x", Domain.int_range ~lo:0 ~hi:9);
        ("y", Domain.int_range ~lo:0 ~hi:9);
        ("z", Domain.int_range ~lo:0 ~hi:9);
      ]
  in
  let pset2 = Profile_set.create s2 in
  ignore
    (Profile_set.add pset2
       (Profile.create_exn s2
          [ ("y", Predicate.Le (Value.Int 3)); ("z", Predicate.Ge (Value.Int 2)) ]));
  let stats2 = Stats.create (Decomp.build pset2) in
  let flat2 = Flat.compile (Reorder.build stats2 Reorder.default_spec) in
  let foreign = Flat.recorder flat2 in
  (try
     ignore (Flat.match_into_recorded flat cur foreign e);
     Alcotest.fail "foreign recorder accepted"
   with Invalid_argument _ -> ())

let prop_batch_equals_sequential =
  QCheck.Test.make ~name:"match_batch = per-event match_into" ~count:40
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:10 ~n_events:20 ()))
    (fun (_, pset, events) ->
      let stats = Stats.create (Decomp.build pset) in
      let flat = Flat.compile (Reorder.build stats Reorder.default_spec) in
      let events = Array.of_list events in
      let seq_cur = Flat.cursor flat in
      let seq =
        Array.map (fun e -> Array.of_list (Flat.match_list flat seq_cur e)) events
      in
      let got = Array.make (Array.length events) [||] in
      let batch_cur = Flat.cursor flat in
      Flat.match_batch flat batch_cur events ~f:(fun i ~ids ~len ->
          got.(i) <- Array.sub ids 0 len);
      got = seq)

(* Persistent pools own live domains, so tests share one instance per
   size instead of creating one per QCheck iteration (the runtime caps
   live domains); Pool's at_exit hook joins them at process end. *)
let shared_pool4 = lazy (Pool.create ~domains:4 ())
let shared_pool3 = lazy (Pool.create ~domains:3 ())

let prop_pool_equals_one_domain =
  QCheck.Test.make ~name:"pool d4 = pool d1 = sequential (matches and ops)"
    ~count:25
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:40 ()))
    (fun (_, pset, events) ->
      let stats = Stats.create (Decomp.build pset) in
      let flat = Flat.compile (Reorder.build stats Reorder.default_spec) in
      let events = Array.of_list events in
      let run pool =
        let ops = Ops.create () in
        let r = Pool.match_batch ~ops pool flat events in
        (r, ops)
      in
      let r1, ops1 = run (Pool.create ~domains:1 ()) in
      let r4, ops4 = run (Lazy.force shared_pool4) in
      r1 = r4 && ops_eq ops1 ops4)

let prop_engine_batch_equals_match_event =
  QCheck.Test.make ~name:"Engine.match_batch = Engine.match_event loop"
    ~count:25
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:10 ~n_events:20 ()))
    (fun (_, pset, events) ->
      let events = Array.of_list events in
      let seq =
        let engine = Engine.create pset in
        Array.map
          (fun e -> Array.of_list (Engine.match_event engine e))
          events
      in
      let batched =
        let engine = Engine.create pset in
        Engine.match_batch engine events
      in
      let pooled =
        let engine = Engine.create pset in
        Engine.match_batch ~pool:(Lazy.force shared_pool3) engine events
      in
      seq = batched && seq = pooled)

(* An aggregated engine compiles only the covering-minimal roots and
   expands absorbed profiles at match time; its decisions must be
   bit-identical to a plain engine over the same registry, on both the
   single-event and batch paths, before and after an epoch swap. *)
let prop_engine_aggregated_equals_plain =
  QCheck.Test.make ~name:"aggregated Engine = plain Engine"
    ~count:25
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:20 ()))
    (fun (_, pset, events) ->
      let events = Array.of_list events in
      let plain =
        let engine = Engine.create pset in
        Array.map
          (fun e -> Array.of_list (Engine.match_event engine e))
          events
      in
      let agg = Engine.create ~aggregate:true pset in
      let before_swap =
        Array.map (fun e -> Array.of_list (Engine.match_event agg e)) events
      in
      Engine.swap_now agg;
      let after_swap = Engine.match_batch agg events in
      plain = before_swap && plain = after_swap)

(* The hotness-guided relayout is a pure permutation of memory order:
   match sets, comparison counts, and node-visit counts must be
   bit-identical to the default layout, whatever visit counts drive
   it. Both the [relayout] entry point (visits keyed to the given
   form) and [compile ?layout] (visits keyed to the default compile)
   are pinned, plus the packed-batch path against per-event
   [match_into]. *)
let prop_relayout_equals_default =
  QCheck.Test.make ~name:"relayout / compile ?layout = default layout"
    ~count:40
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:25 ()))
    (fun (_, pset, events) ->
      let stats = Stats.create (Decomp.build pset) in
      let tree = Reorder.build stats Reorder.default_spec in
      let flat = Flat.compile tree in
      (* Record real visits over half the events, so the permutation is
         a plausible hot order rather than noise. *)
      let r = Flat.recorder flat in
      let rc = Flat.cursor flat in
      List.iteri
        (fun i e ->
          if i mod 2 = 0 then ignore (Flat.match_into_recorded flat rc r e))
        events;
      let visits = Flat.node_visits r in
      let variants =
        [
          Flat.relayout flat visits;
          Flat.compile ~layout:visits tree;
          (* Degenerate drivers: all-zero and all-equal visit counts
             must still be behaviour-preserving permutations. *)
          Flat.relayout flat (Array.make (Flat.node_count flat) 0);
          Flat.relayout flat (Array.make (Flat.node_count flat) 7);
        ]
      in
      List.for_all
        (fun hot ->
          let base_ops = Ops.create () and hot_ops = Ops.create () in
          let base_cur = Flat.cursor flat and hot_cur = Flat.cursor hot in
          Flat.node_count hot = Flat.node_count flat
          && Flat.edge_count hot = Flat.edge_count flat
          && Flat.posting_count hot = Flat.posting_count flat
          && List.for_all
               (fun e ->
                 Flat.match_list ~ops:base_ops flat base_cur e
                 = Flat.match_list ~ops:hot_ops hot hot_cur e)
               events
          && ops_eq base_ops hot_ops)
        variants)

let prop_packed_equals_match_into =
  QCheck.Test.make ~name:"packed batch = per-event match_into" ~count:40
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:25 ()))
    (fun (_, pset, events) ->
      let stats = Stats.create (Decomp.build pset) in
      let flat = Flat.compile (Reorder.build stats Reorder.default_spec) in
      let batch = Array.of_list events in
      let pk = Flat.pack_batch flat batch in
      let plain_ops = Ops.create () and packed_ops = Ops.create () in
      let plain_cur = Flat.cursor flat and packed_cur = Flat.cursor flat in
      Flat.packed_events pk = Array.length batch
      && Array.for_all Fun.id
           (Array.mapi
              (fun i e ->
                let n = Flat.match_into ~ops:plain_ops flat plain_cur e in
                let expect = Array.sub (Flat.matches plain_cur) 0 n in
                let m =
                  Flat.match_packed_into ~ops:packed_ops flat packed_cur pk i
                in
                Array.sub (Flat.matches packed_cur) 0 m = expect)
              batch)
      && ops_eq plain_ops packed_ops)

(* Engine.relayout_now: profiling-gated, behaviour-preserving, and the
   recorder restarts against the new layout. *)
let prop_engine_relayout_now =
  QCheck.Test.make ~name:"Engine.relayout_now preserves matching" ~count:25
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:20 ()))
    (fun (_, pset, events) ->
      let engine = Engine.create pset in
      let baseline =
        List.map (fun e -> Engine.match_event engine e) events
      in
      (* Without profiling there is nothing to relayout. *)
      let off = Engine.relayout_now engine = false in
      Engine.set_profiling engine true;
      (* Profiling on but nothing recorded yet: still a no-op. *)
      let unrecorded = Engine.relayout_now engine = false in
      List.iter (fun e -> ignore (Engine.match_event engine e)) events;
      let swapped =
        match events with [] -> true | _ -> Engine.relayout_now engine
      in
      let after = List.map (fun e -> Engine.match_event engine e) events in
      off && unrecorded && swapped && after = baseline)

(* ------------------------------------------------------------------ *)
(* Edge cases. *)

let schema () =
  Schema.create_exn
    [
      ("x", Domain.int_range ~lo:0 ~hi:9);
      ("s", Domain.enum [ "a"; "b"; "c" ]);
    ]

let pset_of schema specs =
  let pset = Profile_set.create schema in
  List.iter
    (fun tests ->
      ignore (Profile_set.add pset (Profile.create_exn schema tests)))
    specs;
  pset

let event s x sv =
  Event.create_exn s [ ("x", Value.Int x); ("s", Value.Str sv) ]

let flat_of pset =
  let stats = Stats.create (Decomp.build pset) in
  Flat.compile (Reorder.build stats Reorder.default_spec)

let test_empty_tree () =
  let s = schema () in
  let pset = Profile_set.create s in
  let flat = flat_of pset in
  let cur = Flat.cursor flat in
  Alcotest.(check (list int)) "no profiles, no matches" []
    (Flat.match_list flat cur (event s 3 "a"));
  Alcotest.(check int) "no flat nodes" 0 (Flat.node_count flat)

let test_all_dont_care () =
  let s = schema () in
  (* One unconstrained profile, one constrained, one unconstrained:
     don't-care ids must survive dedup and stay ascending. *)
  let pset =
    pset_of s [ []; [ ("x", Predicate.Eq (Value.Int 1)) ]; [] ]
  in
  let flat = flat_of pset in
  let cur = Flat.cursor flat in
  Alcotest.(check (list int)) "don't-cares always match" [ 0; 2 ]
    (Flat.match_list flat cur (event s 5 "a"));
  Alcotest.(check (list int)) "plus the constrained one" [ 0; 1; 2 ]
    (Flat.match_list flat cur (event s 1 "c"))

let test_out_of_domain_coords () =
  let s = schema () in
  let pset =
    pset_of s
      [
        [ ("x", Predicate.Ge (Value.Int 5)) ];
        [ ("s", Predicate.Eq (Value.Str "b")) ];
      ]
  in
  let stats = Stats.create (Decomp.build pset) in
  let tree = Reorder.build stats Reorder.default_spec in
  let flat = Flat.compile tree in
  let cur = Flat.cursor flat in
  List.iter
    (fun coords ->
      let tree_ops = Ops.create () and flat_ops = Ops.create () in
      let expect = Tree.match_coords ~ops:tree_ops tree coords in
      let n = Flat.match_coords_into ~ops:flat_ops flat cur coords in
      let got = Array.to_list (Array.sub (Flat.matches cur) 0 n) in
      Alcotest.(check (list int)) "coords agree" expect got;
      Alcotest.(check bool) "ops agree" true (ops_eq tree_ops flat_ops))
    [
      [| -1e9; 0.0 |];  (* far below the x axis *)
      [| 1e9; 1.0 |];  (* far above *)
      [| 0.5; 0.0 |];  (* fractional on a discrete axis *)
      [| 7.0; 99.0 |];  (* enum rank out of range *)
      [| 7.0; 1.0 |];  (* in domain, for contrast *)
    ]

let test_foreign_cursor_rejected () =
  let s = schema () in
  let flat_a = flat_of (pset_of s [ [ ("x", Predicate.Eq (Value.Int 1)) ] ]) in
  let flat_b =
    flat_of
      (pset_of s
         [
           [ ("x", Predicate.Eq (Value.Int 1)) ];
           [ ("x", Predicate.Eq (Value.Int 2)) ];
           [ ("s", Predicate.Eq (Value.Str "a")) ];
         ])
  in
  let cur_a = Flat.cursor flat_a in
  Alcotest.check_raises "foreign cursor"
    (Invalid_argument "Flat.match_into: cursor built for a different matcher")
    (fun () -> ignore (Flat.match_into flat_b cur_a (event s 1 "a")))

let test_sharing_preserved () =
  let s = schema () in
  let pset =
    pset_of s
      [
        [ ("x", Predicate.Le (Value.Int 4)) ];
        [ ("x", Predicate.Ge (Value.Int 5)) ];
        [ ("s", Predicate.Eq (Value.Str "b")) ];
      ]
  in
  let stats = Stats.create (Decomp.build pset) in
  let tree = Reorder.build stats Reorder.default_spec in
  let st = tree.Tree.stats in
  let flat = Flat.compile tree in
  Alcotest.(check int) "flat nodes = tree nodes + leaves"
    (st.Tree.nodes + st.Tree.leaves)
    (Flat.node_count flat)

let test_packed_guards () =
  let s = schema () in
  let flat_a = flat_of (pset_of s [ [ ("x", Predicate.Eq (Value.Int 1)) ] ]) in
  let flat_b = flat_of (pset_of s [ [ ("x", Predicate.Eq (Value.Int 2)) ] ]) in
  let batch = [| event s 1 "a"; event s 2 "b" |] in
  let pk = Flat.pack_batch flat_a batch in
  let cur_a = Flat.cursor flat_a in
  (try
     ignore (Flat.match_packed_into flat_b (Flat.cursor flat_b) pk 0);
     Alcotest.fail "foreign packed batch accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Flat.match_packed_into flat_a cur_a pk 2);
     Alcotest.fail "out-of-range packed index accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Flat.relayout flat_a [| 1 |]);
     (* length must be node_count *)
     if Flat.node_count flat_a <> 1 then
       Alcotest.fail "wrong-length layout accepted"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "packed batch length" 2 (Flat.packed_events pk)

let () =
  Alcotest.run "flat"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_flat_equals_tree;
          QCheck_alcotest.to_alcotest prop_flat_equals_baselines;
          QCheck_alcotest.to_alcotest prop_recorded_equals_plain;
          QCheck_alcotest.to_alcotest prop_batch_equals_sequential;
          QCheck_alcotest.to_alcotest prop_pool_equals_one_domain;
          QCheck_alcotest.to_alcotest prop_engine_batch_equals_match_event;
          QCheck_alcotest.to_alcotest prop_engine_aggregated_equals_plain;
          QCheck_alcotest.to_alcotest prop_relayout_equals_default;
          QCheck_alcotest.to_alcotest prop_packed_equals_match_into;
          QCheck_alcotest.to_alcotest prop_engine_relayout_now;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "all don't-care" `Quick test_all_dont_care;
          Alcotest.test_case "out-of-domain coords" `Quick
            test_out_of_domain_coords;
          Alcotest.test_case "foreign cursor" `Quick
            test_foreign_cursor_rejected;
          Alcotest.test_case "recorder reset and guards" `Quick
            test_recorder_reset_and_guards;
          Alcotest.test_case "sharing preserved" `Quick test_sharing_preserved;
          Alcotest.test_case "packed and relayout guards" `Quick
            test_packed_guards;
        ] );
    ]
