(* The networked broker stack: wire codec hardening, socket round
   trips, covering-gated forwarding, fault-driven reconnect + WAL
   catch-up, a fork-based two-process exchange, and the differential
   against the in-process Router. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Codec = Genas_ens.Codec
module Journal = Genas_ens.Journal
module Fault = Genas_ens.Fault
module Broker = Genas_ens.Broker
module Router = Genas_ens.Router
module Notification = Genas_ens.Notification
module Transport = Genas_ens.Transport
module Broker_server = Genas_ens.Broker_server
module Broker_client = Genas_ens.Broker_client

let schema () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.int_range ~lo:0 ~hi:9) ]

let event ?(time = 0.0) s x y =
  Event.create_exn ~time s [ ("x", Value.Int x); ("y", Value.Int y) ]

let fresh_path prefix =
  let path = Filename.temp_file prefix ".sock" in
  Sys.remove path;
  path

let fresh_dir () =
  let path = Filename.temp_file "genas_net" ".d" in
  Sys.remove path;
  path

let addr () = Transport.Unix_sock (fresh_path "genas_srv")

let or_fail = function Ok v -> v | Error e -> Alcotest.fail e

(* Values of an event, as a comparable key. *)
let key (e : Event.t) =
  match (e.Event.values.(0), e.Event.values.(1)) with
  | Value.Int x, Value.Int y -> (x, y)
  | _ -> Alcotest.fail "unexpected value shape"

let sorted_keys l = List.sort compare (List.map key l)

(* --- addresses ------------------------------------------------------ *)

let test_addr_parse () =
  (match Transport.addr_of_string "unix:/tmp/x.sock" with
  | Ok (Transport.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix addr");
  (match Transport.addr_of_string "tcp:127.0.0.1:7001" with
  | Ok (Transport.Tcp ("127.0.0.1", 7001)) -> ()
  | _ -> Alcotest.fail "tcp addr");
  List.iter
    (fun s ->
      match Transport.addr_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" s)
    [ "http:x"; "unix:"; "tcp:host"; "tcp:host:notaport"; "tcp::99"; "plain" ]

(* --- message codec -------------------------------------------------- *)

let test_message_roundtrip () =
  let s = schema () in
  let msgs =
    [
      Transport.Hello
        { version = 1; fingerprint = Codec.schema_fingerprint s; name = "a" };
      Transport.Welcome
        { version = 1; fingerprint = "fp"; cursor = 42; name = "hub" };
      Transport.Reject { reason = "no" };
      Transport.Subscribe { token = 7; subscriber = "alice"; body = "x >= 5" };
      Transport.Unsubscribe { token = 7 };
      Transport.Publish
        {
          token = 9;
          origin = "node-a";
          events = [| event s 3 4; event s 5 6 |];
          ctx = None;
        };
      Transport.Publish
        { token = 10; origin = "node-a"; events = [| event s 3 4 |];
          ctx = Some (77, 3) };
      Transport.Ack { token = 9; cursor = 17; count = 2 };
      Transport.Nack { token = 9; reason = "bad" };
      Transport.Deliver
        {
          cursor = 17;
          idx = 1;
          replay = true;
          origin = "node-a";
          event = event s 1 2;
          ctx = None;
        };
      Transport.Deliver
        {
          cursor = 18;
          idx = 0;
          replay = false;
          origin = "node-b";
          event = event s 2 2;
          ctx = Some (1234, 0);
        };
      Transport.Replay { since = 12; ctx = None };
      Transport.Replay { since = 12; ctx = Some (5, 1) };
      Transport.Replay_done { cursor = 20; complete = false };
      Transport.Bye;
      Transport.Ping { token = 3 };
      Transport.Pong { token = 3 };
      Transport.Status_req { token = 4 };
      Transport.Status
        {
          token = 4;
          nodes =
            [
              {
                Transport.ns_node = "leaf";
                ns_role = "client";
                ns_cursor = -1;
                ns_connections = 1;
                ns_uptime_s = 1.5;
                ns_peers =
                  [
                    {
                      Transport.ps_name = "mid";
                      ps_state = "up";
                      ps_queue = 3;
                      ps_last_rx_s = 0.25;
                    };
                  ];
                ns_counters = [ ("genas_events_total", 12) ];
              };
              {
                Transport.ns_node = "root";
                ns_role = "server";
                ns_cursor = 42;
                ns_connections = 2;
                ns_uptime_s = 9.0;
                ns_peers = [];
                ns_counters = [];
              };
            ];
        };
    ]
  in
  List.iter
    (fun m ->
      let m' = Transport.decode_message s (Transport.encode_message m) in
      Alcotest.(check string)
        ("roundtrip " ^ Transport.message_name m)
        (Transport.message_name m)
        (Transport.message_name m');
      if Transport.encode_message m <> Transport.encode_message m' then
        Alcotest.failf "unstable encoding for %s" (Transport.message_name m))
    msgs

(* --- frame-length hardening (satellite 1) --------------------------- *)

let with_frames_channel frames f =
  let path = Filename.temp_file "genas_frames" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      List.iter (output_string oc) frames;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic))

let test_read_frame_bounds () =
  let seed = 0x99 in
  (* Clean round trip through a channel. *)
  with_frames_channel
    [ Codec.frame ~seed "one"; Codec.frame ~seed "two" ]
    (fun ic ->
      (match Codec.read_frame ~seed ic with
      | Ok "one" -> ()
      | _ -> Alcotest.fail "first frame");
      (match Codec.read_frame ~seed ic with
      | Ok "two" -> ()
      | _ -> Alcotest.fail "second frame");
      match Codec.read_frame ~seed ic with
      | Error `Eof -> ()
      | _ -> Alcotest.fail "clean eof");
  (* A header whose length field demands a multi-GiB allocation must
     fail BEFORE the payload buffer is sized from it. *)
  let hostile plen =
    let b = Buffer.create 12 in
    Buffer.add_int32_le b plen;
    Buffer.add_int64_le b 0L;
    Buffer.contents b
  in
  with_frames_channel
    [ hostile 0x7fff_ff00l ]
    (fun ic ->
      match Codec.read_frame ~seed ic with
      | Error (`Corrupt msg) ->
        Alcotest.(check bool) "names the limit" true
          (String.length msg > 0)
      | _ -> Alcotest.fail "oversized length accepted");
  (* Negative length. *)
  with_frames_channel
    [ hostile (-5l) ]
    (fun ic ->
      match Codec.read_frame ~seed ic with
      | Error (`Corrupt _) -> ()
      | _ -> Alcotest.fail "negative length accepted");
  (* Torn payload. *)
  let whole = Codec.frame ~seed "payload" in
  with_frames_channel
    [ String.sub whole 0 (String.length whole - 3) ]
    (fun ic ->
      match Codec.read_frame ~seed ic with
      | Error (`Corrupt _) -> ()
      | _ -> Alcotest.fail "torn payload accepted");
  (* Checksum mismatch (wrong seed). *)
  with_frames_channel
    [ Codec.frame ~seed:(seed + 1) "payload" ]
    (fun ic ->
      match Codec.read_frame ~seed ic with
      | Error (`Corrupt _) -> ()
      | _ -> Alcotest.fail "checksum mismatch accepted");
  (* A configurable max-frame bound applies to well-formed frames too,
     and the same bound gates parse_frames. *)
  let big = Codec.frame ~seed (String.make 64 'x') in
  with_frames_channel [ big ]
    (fun ic ->
      match Codec.read_frame ~max_frame:16 ~seed ic with
      | Error (`Corrupt _) -> ()
      | _ -> Alcotest.fail "max_frame not enforced");
  let decoded, _, corrupt = Codec.parse_frames ~max_frame:16 ~seed big ~pos:0 in
  Alcotest.(check (list string)) "parse_frames bounded" [] decoded;
  Alcotest.(check bool) "parse_frames flags it" true corrupt

(* --- journal fsync ordering + cursor API (satellite 2) --------------- *)

let test_journal_events_since () =
  let s = schema () in
  let dir = fresh_dir () in
  let cfg = Journal.config ~snapshot_every:1000 dir in
  let b = Broker.create ~journal:cfg s in
  ignore
    (Broker.subscribe b ~subscriber:"sink"
       ~profile:(Result.get_ok (Genas_profile.Lang.parse_profile s "x >= 0"))
       (fun _ -> ()));
  for i = 0 to 4 do
    ignore (Broker.publish b (event s i i))
  done;
  let j = Option.get (Broker.wal b) in
  Alcotest.(check int) "base op" 0 (Journal.base_op j);
  (* since = -1: everything; the subscribe consumed op 0, publishes
     are ops 1..5. *)
  let batches, complete = Journal.events_since j ~since:(-1) in
  Alcotest.(check bool) "complete from the start" true complete;
  Alcotest.(check int) "all five publishes" 5 (List.length batches);
  Alcotest.(check (list (pair int int)))
    "events in op order"
    [ (0, 0); (1, 1); (2, 2); (3, 3); (4, 4) ]
    (List.concat_map (fun (_, evs) -> Array.to_list evs |> List.map key) batches);
  (* A mid-stream cursor filters strictly-after. *)
  let later, complete = Journal.events_since j ~since:3 in
  Alcotest.(check bool) "still complete" true complete;
  Alcotest.(check int) "ops 4..5 remain" 2 (List.length later);
  (* A snapshot restarts the WAL: the range before it is gone and the
     cursor API must say so rather than silently return a gap. *)
  Broker.snapshot_now b;
  Alcotest.(check int) "base op advanced" (Journal.ops_logged j) (Journal.base_op j);
  ignore (Broker.publish b (event s 9 9));
  let after, complete = Journal.events_since j ~since:2 in
  Alcotest.(check bool) "gap reported" false complete;
  Alcotest.(check int) "only the retained tail" 1 (List.length after);
  let _, complete = Journal.events_since j ~since:(Journal.base_op j - 1) in
  Alcotest.(check bool) "contiguous from base" true complete;
  Broker.close b

(* Crash-point regression for the flush-before-fsync ordering: a
   [Crash_before_fsync] mid-append leaves a torn record that recovery
   truncates, and the record never appears in the catch-up cursor;
   every record acknowledged before the crash does. *)
let test_journal_crash_regression () =
  let s = schema () in
  let dir = fresh_dir () in
  let cfg = Journal.config ~snapshot_every:1000 dir in
  let faults =
    Fault.plan ~seed:7 { Fault.none with crash_before_fsync = 1.0 }
  in
  let b = Broker.create ~journal:cfg s in
  ignore
    (Broker.subscribe b ~subscriber:"sink"
       ~profile:(Result.get_ok (Genas_profile.Lang.parse_profile s "x >= 0"))
       (fun _ -> ()));
  ignore (Broker.publish b (event s 1 1));
  ignore (Broker.publish b (event s 2 2));
  (* Crash the next append through the journal's own fault hook. *)
  let j = Option.get (Broker.wal b) in
  (try
     Journal.append j ~faults (Journal.Unsubscribe_prim { id = 999 });
     Alcotest.fail "crash point did not fire"
   with Fault.Crashed Fault.Crash_before_fsync -> ());
  Broker.close b;
  match Broker.recover ~journal:cfg s with
  | Error e -> Alcotest.fail e
  | Ok b2 ->
    let j2 = Option.get (Broker.wal b2) in
    let batches, complete = Journal.events_since j2 ~since:(-1) in
    Alcotest.(check bool) "complete" true complete;
    Alcotest.(check (list (pair int int)))
      "both durable publishes survive, the torn record is gone"
      [ (1, 1); (2, 2) ]
      (List.concat_map (fun (_, evs) -> Array.to_list evs |> List.map key) batches);
    Broker.close b2

(* --- in-process socket round trip ----------------------------------- *)

let with_server f =
  let s = schema () in
  let b = Broker.create s in
  let a = addr () in
  let srv = Broker_server.create ~broker:b a in
  Broker_server.start srv;
  Fun.protect
    ~finally:(fun () ->
      Broker_server.stop srv;
      Broker.close b)
    (fun () -> f s srv a)

let test_socket_roundtrip () =
  with_server (fun s srv a ->
      let alice = or_fail (Broker_client.connect ~name:"alice" s a) in
      let bob = or_fail (Broker_client.connect ~name:"bob" s a) in
      Fun.protect
        ~finally:(fun () ->
          Broker_client.close alice;
          Broker_client.close bob)
        (fun () ->
          let got = ref [] in
          let _tok =
            or_fail
              (Broker_client.subscribe alice "x >= 5" (fun n ->
                   got := n.Notification.event :: !got))
          in
          (* Bob publishes: one miss, one hit. *)
          Alcotest.(check int) "no local subs at bob" 0
            (or_fail (Broker_client.publish bob (event s 2 0)));
          ignore (or_fail (Broker_client.publish bob (event s 7 1)));
          let applied = Broker_client.await_deliveries alice 1 in
          Alcotest.(check int) "one delivery" 1 applied;
          Alcotest.(check (list (pair int int))) "the matching event"
            [ (7, 1) ] (sorted_keys !got);
          Alcotest.(check int) "server saw a live conn pair" 2
            (Broker_server.connections srv)))

(* The originating connection is never echoed its own publish: its
   local broker already delivered (exactly once). *)
let test_no_echo () =
  with_server (fun s _srv a ->
      let c = or_fail (Broker_client.connect ~name:"self" s a) in
      Fun.protect
        ~finally:(fun () -> Broker_client.close c)
        (fun () ->
          let count = ref 0 in
          ignore (or_fail (Broker_client.subscribe c "x >= 0" (fun _ -> incr count)));
          Alcotest.(check int) "local delivery" 1
            (or_fail (Broker_client.publish c (event s 3 3)));
          (* Any echo would arrive promptly; give it a moment. *)
          ignore (Broker_client.await_deliveries ~timeout:0.2 c 1);
          Alcotest.(check int) "exactly once" 1 !count))

(* Covering-based propagation on the wire: covered subscriptions send
   nothing; a broader profile retires the narrower forward. *)
let test_covering_on_the_wire () =
  with_server (fun s _srv a ->
      let c = or_fail (Broker_client.connect ~name:"cov" s a) in
      Fun.protect
        ~finally:(fun () -> Broker_client.close c)
        (fun () ->
          let hits = ref [] in
          let sub body tag =
            or_fail
              (Broker_client.subscribe c body (fun n ->
                   hits := (tag, key n.Notification.event) :: !hits))
          in
          let t_mid = sub "x >= 2" "mid" in
          Alcotest.(check int) "first root forwarded" 1
            (Broker_client.wire_subscribes c);
          let _t_narrow = sub "x >= 6" "narrow" in
          Alcotest.(check int) "covered: no wire traffic" 1
            (Broker_client.wire_subscribes c);
          Alcotest.(check (list int)) "only the root is forwarded"
            [ t_mid ] (Broker_client.forwarded_tokens c);
          let t_broad = sub "x >= 0" "broad" in
          Alcotest.(check int) "broader profile forwarded" 2
            (Broker_client.wire_subscribes c);
          Alcotest.(check int) "narrower forward retired" 1
            (Broker_client.wire_unsubscribes c);
          Alcotest.(check (list int)) "single covering root"
            [ t_broad ] (Broker_client.forwarded_tokens c);
          (* A remote publish matching only the broad profile still
             reaches exactly the right local subscriptions. *)
          let p = or_fail (Broker_client.connect ~name:"pub" s a) in
          Fun.protect
            ~finally:(fun () -> Broker_client.close p)
            (fun () ->
              ignore (or_fail (Broker_client.publish p (event s 1 0)));
              ignore (or_fail (Broker_client.publish p (event s 7 0)));
              ignore (Broker_client.await_deliveries c 2);
              let got = List.sort compare !hits in
              Alcotest.(check (list (pair string (pair int int))))
                "absorbed subscriptions still match locally"
                [ ("broad", (1, 0)); ("broad", (7, 0)); ("mid", (7, 0));
                  ("narrow", (7, 0)) ]
                got)))

(* A peer that sends garbage mid-session kills only its own
   connection; the server keeps serving others. *)
let test_torn_frame_on_socket () =
  with_server (fun s _srv a ->
      (* Raw connection that handshakes, then writes a torn frame. *)
      let evil = Transport.dial a in
      Transport.send evil
        (Transport.Hello
           {
             version = Transport.protocol_version;
             fingerprint = Codec.schema_fingerprint s;
             name = "evil";
           });
      (match Transport.recv evil s with
      | Ok (Transport.Welcome _) -> ()
      | _ -> Alcotest.fail "handshake failed");
      let whole =
        Codec.frame ~seed:Transport.default_seed
          (Transport.encode_message (Transport.Replay { since = 0; ctx = None }))
      in
      let torn = String.sub whole 0 (String.length whole - 2) in
      let fd = Transport.conn_fd evil in
      ignore (Unix.write_substring fd torn 0 (String.length torn));
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      (* Server answers Reject (or just closes) — never crashes. *)
      (match Transport.recv evil s with
      | Ok (Transport.Reject _) | Error _ -> ()
      | Ok m ->
        Alcotest.failf "unexpected %s" (Transport.message_name m));
      Transport.close_conn evil;
      (* A hostile length prefix on a fresh connection dies pre-hello. *)
      let hostile = Transport.dial a in
      let b = Buffer.create 12 in
      Buffer.add_int32_le b 0x7fff0000l;
      Buffer.add_int64_le b 0L;
      let hd = Buffer.contents b in
      ignore (Unix.write_substring (Transport.conn_fd hostile) hd 0 (String.length hd));
      Unix.shutdown (Transport.conn_fd hostile) Unix.SHUTDOWN_SEND;
      (match Transport.recv hostile s with
      | Ok (Transport.Reject _) | Error _ -> ()
      | Ok m -> Alcotest.failf "unexpected %s" (Transport.message_name m));
      Transport.close_conn hostile;
      (* The server still works. *)
      let c = or_fail (Broker_client.connect ~name:"good" s a) in
      Fun.protect
        ~finally:(fun () -> Broker_client.close c)
        (fun () ->
          ignore (or_fail (Broker_client.subscribe c "x >= 0" (fun _ -> ())));
          Alcotest.(check int) "server survives" 1
            (or_fail (Broker_client.publish c (event s 5 5)))))

(* A client under a version or schema mismatch is rejected cleanly. *)
let test_handshake_reject () =
  with_server (fun s _srv a ->
      let c = Transport.dial a in
      Transport.send c
        (Transport.Hello { version = 999; fingerprint = "x"; name = "old" });
      (match Transport.recv c s with
      | Ok (Transport.Reject _) -> ()
      | _ -> Alcotest.fail "version mismatch not rejected");
      Transport.close_conn c;
      let other =
        Schema.create_exn [ ("z", Domain.int_range ~lo:0 ~hi:1) ]
      in
      match Broker_client.connect other a with
      | Error _ -> ()
      | Ok c ->
        Broker_client.close c;
        Alcotest.fail "schema mismatch not rejected")

(* --- faults, reconnect, and WAL catch-up ----------------------------- *)

(* Run one scripted exchange and return the subscriber's delivered key
   list: subscribe at one client, publish [n] events at another,
   optionally under link faults, optionally with a mid-stream
   reconnect + replay. *)
let run_exchange ?faults ~reconnect n =
  let dir = fresh_dir () in
  let cfg = Journal.config ~snapshot_every:1000 dir in
  let s = schema () in
  let b = Broker.create ~journal:cfg s in
  let a = addr () in
  let srv = Broker_server.create ?faults ~broker:b a in
  Broker_server.start srv;
  Fun.protect
    ~finally:(fun () ->
      Broker_server.stop srv;
      Broker.close b)
    (fun () ->
      let sub = or_fail (Broker_client.connect ~name:"sub" s a) in
      let pub = or_fail (Broker_client.connect ~name:"pub" s a) in
      Fun.protect
        ~finally:(fun () ->
          Broker_client.close sub;
          Broker_client.close pub)
        (fun () ->
          let got = ref [] in
          ignore
            (or_fail
               (Broker_client.subscribe sub "x >= 1" (fun n ->
                    got := n.Notification.event :: !got)));
          for i = 1 to n do
            ignore (or_fail (Broker_client.publish pub (event s (1 + (i mod 9)) (i mod 10))))
          done;
          ignore (Broker_client.await_deliveries ~timeout:1.0 sub n);
          if reconnect then begin
            or_fail (Broker_client.reconnect sub);
            let _applied, complete = or_fail (Broker_client.replay sub) in
            Alcotest.(check bool) "replay complete" true complete
          end;
          ignore (Broker_client.await_deliveries ~timeout:0.2 sub 0);
          (sorted_keys !got, Broker_client.duplicates_dropped sub)))

let test_reconnect_catchup () =
  (* Reference: fault-free, no reconnect. *)
  let reference, _ = run_exchange ~reconnect:false 12 in
  Alcotest.(check int) "reference complete" 12 (List.length reference);
  (* Same exchange with every live delivery to the subscriber's link
     dropped: nothing arrives live, everything arrives via replay. *)
  let faults =
    Fault.plan ~seed:42 { Fault.none with link_drop = 1.0 }
  in
  let after_faults, _ = run_exchange ~faults ~reconnect:true 12 in
  Alcotest.(check (list (pair int int)))
    "delivered set bit-identical to the uninterrupted run" reference
    after_faults

let test_duplicate_dedup () =
  let faults =
    Fault.plan ~seed:43 { Fault.none with link_duplicate = 1.0 }
  in
  let reference, _ = run_exchange ~reconnect:false 10 in
  let dup, dropped = run_exchange ~faults ~reconnect:false 10 in
  Alcotest.(check (list (pair int int)))
    "duplicates never double-deliver" reference dup;
  Alcotest.(check bool) "dedup actually fired" true (dropped > 0)

let test_replay_idempotent () =
  (* Fault-free exchange followed by a redundant replay: the applied
     set must drop every redelivery. *)
  let got, dropped = run_exchange ~reconnect:true 8 in
  Alcotest.(check int) "exactly once" 8 (List.length got);
  Alcotest.(check bool) "overlap deduplicated" true (dropped >= 8)

(* --- two OS processes ------------------------------------------------ *)

let test_two_process_exchange () =
  let s = schema () in
  let a = addr () in
  let dir = fresh_dir () in
  match Unix.fork () with
  | 0 ->
    (* Child: the server broker process. Serves exactly one
       connection, then exits. Any exception is a nonzero exit. *)
    let code =
      try
        let cfg = Journal.config ~snapshot_every:1000 dir in
        let b = Broker.create ~journal:cfg s in
        let srv = Broker_server.create ~broker:b a in
        Broker_server.serve ~connections:1 srv;
        Broker.close b;
        0
      with _ -> 1
    in
    Unix._exit code
  | pid ->
    let cleanup () =
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    in
    Fun.protect ~finally:cleanup (fun () ->
        (* Parent: dial with retries while the child binds. *)
        let rec dial tries =
          match Broker_client.connect ~name:"peer" s a with
          | Ok c -> c
          | Error e ->
            if tries = 0 then Alcotest.failf "connect: %s" e
            else begin
              ignore (Unix.select [] [] [] 0.05);
              dial (tries - 1)
            end
          | exception Unix.Unix_error _ ->
            if tries = 0 then Alcotest.fail "server never came up"
            else begin
              ignore (Unix.select [] [] [] 0.05);
              dial (tries - 1)
            end
        in
        let c = dial 100 in
        let got = ref [] in
        ignore
          (or_fail
             (Broker_client.subscribe c "x >= 5" (fun n ->
                  got := n.Notification.event :: !got)));
        (* Publishing through a real socket to a real second process;
           the acknowledged cursor proves the server journaled it. *)
        ignore (or_fail (Broker_client.publish c (event s 8 1)));
        ignore (or_fail (Broker_client.publish c (event s 2 1)));
        Alcotest.(check int) "own events delivered locally once" 1
          (List.length !got);
        Broker_client.close c;
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _, Unix.WEXITED n -> Alcotest.failf "server exited with %d" n
        | _ -> Alcotest.fail "server killed")

(* --- differential: networked star ≡ in-process Router ---------------- *)

let test_router_differential () =
  let s = schema () in
  let profiles = [ "x >= 5"; "y >= 7"; "x >= 2" ] in
  let events = [ (1, 8); (5, 5); (7, 9); (2, 0); (9, 9); (0, 7); (3, 3) ] in
  (* In-process reference: a 3-node star, hub 0; subscriber node 1,
     publisher node 2. *)
  let net = Router.star s ~leaves:2 in
  let router_got = ref [] in
  List.iteri
    (fun i body ->
      ignore
        (Router.subscribe net ~at:1
           ~subscriber:(Printf.sprintf "s%d" i)
           ~profile:(Result.get_ok (Genas_profile.Lang.parse_profile s body))
           (fun n ->
             router_got :=
               (n.Notification.subscriber, key n.Notification.event)
               :: !router_got)))
    profiles;
  List.iter
    (fun (x, y) -> ignore (Router.publish net ~at:2 (event s x y)))
    events;
  (* Networked: server hub + subscriber client + publisher client. *)
  with_server (fun s _srv a ->
      let subc = or_fail (Broker_client.connect ~name:"node1" s a) in
      let pubc = or_fail (Broker_client.connect ~name:"node2" s a) in
      Fun.protect
        ~finally:(fun () ->
          Broker_client.close subc;
          Broker_client.close pubc)
        (fun () ->
          let net_got = ref [] in
          List.iteri
            (fun i body ->
              ignore
                (or_fail
                   (Broker_client.subscribe subc
                      ~subscriber:(Printf.sprintf "s%d" i) body (fun n ->
                        net_got :=
                          (n.Notification.subscriber, key n.Notification.event)
                          :: !net_got))))
            profiles;
          let expected_deliveries =
            List.length (List.filter (fun (x, y) -> x >= 2 || y >= 7) events)
          in
          List.iter
            (fun (x, y) -> ignore (or_fail (Broker_client.publish pubc (event s x y))))
            events;
          ignore
            (Broker_client.await_deliveries ~timeout:2.0 subc expected_deliveries);
          let norm l = List.sort compare l in
          Alcotest.(check (list (pair string (pair int int))))
            "networked delivery ≡ Router delivery"
            (norm !router_got) (norm !net_got)))

(* --- background epoch swaps (satellite 4) ---------------------------- *)

let test_async_swap_equivalence () =
  let module Engine = Genas_core.Engine in
  let module Profile_set = Genas_profile.Profile_set in
  let s = schema () in
  let parse body = Result.get_ok (Genas_profile.Lang.parse_profile s body) in
  let bodies =
    List.init 40 (fun i -> Printf.sprintf "x >= %d && y >= %d" (i mod 9) (i mod 7))
  in
  let run ~async =
    let eng = Engine.create ~aggregate:true ~delta_cap:4 (Profile_set.create s) in
    Engine.set_async_swaps eng async;
    let ids =
      List.map (fun body -> Engine.add_profile eng (parse body)) bodies
    in
    (* Churn: drop every third profile, matching between operations so
       pending swaps install at realistic points. *)
    List.iteri
      (fun i id ->
        if i mod 3 = 0 then ignore (Engine.remove_profile eng id);
        ignore (Engine.match_event eng (event s (i mod 10) ((i * 3) mod 10))))
      ids;
    Engine.await_swap eng;
    let results =
      List.map
        (fun (x, y) -> Engine.match_event eng (event s x y))
        [ (0, 0); (3, 3); (8, 6); (9, 9); (5, 2) ]
    in
    Engine.set_async_swaps eng false;
    results
  in
  let sync_r = run ~async:false and async_r = run ~async:true in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check (list int))
        (Printf.sprintf "match set %d identical" i)
        (List.sort Int.compare a) (List.sort Int.compare b))
    (List.combine sync_r async_r)

let () =
  Alcotest.run "transport"
    [
      ( "codec",
        [
          Alcotest.test_case "addresses" `Quick test_addr_parse;
          Alcotest.test_case "message roundtrip" `Quick test_message_roundtrip;
          Alcotest.test_case "frame bounds" `Quick test_read_frame_bounds;
        ] );
      ( "journal",
        [
          Alcotest.test_case "events_since cursor" `Quick test_journal_events_since;
          Alcotest.test_case "crash regression" `Quick test_journal_crash_regression;
        ] );
      ( "socket",
        [
          Alcotest.test_case "roundtrip" `Quick test_socket_roundtrip;
          Alcotest.test_case "no echo" `Quick test_no_echo;
          Alcotest.test_case "covering on the wire" `Quick test_covering_on_the_wire;
          Alcotest.test_case "torn frame on socket" `Quick test_torn_frame_on_socket;
          Alcotest.test_case "handshake reject" `Quick test_handshake_reject;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "reconnect catch-up" `Quick test_reconnect_catchup;
          Alcotest.test_case "duplicate dedup" `Quick test_duplicate_dedup;
          Alcotest.test_case "replay idempotent" `Quick test_replay_idempotent;
        ] );
      ( "processes",
        [ Alcotest.test_case "two-process exchange" `Quick test_two_process_exchange ] );
      ( "differential",
        [
          Alcotest.test_case "networked ≡ router" `Quick test_router_differential;
          Alcotest.test_case "async ≡ sync swaps" `Quick test_async_swap_equivalence;
        ] );
    ]
