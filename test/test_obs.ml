(* The observability layer: registry identity rules, counter/gauge
   semantics, histogram bucketing and percentile readout, both
   exporters' no-nan guarantee, and span timing over a fake clock. *)

module Metrics = Genas_obs.Metrics
module Clock = Genas_obs.Clock
module Span = Genas_obs.Span
module Json = Genas_obs.Json

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let lower = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Counters and gauges *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c_total" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.Counter.add: negative amount") (fun () ->
      Metrics.Counter.add c (-1))

let test_counter_saturates () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c_total" in
  Metrics.Counter.add c max_int;
  Metrics.Counter.incr c;
  Metrics.Counter.add c max_int;
  Alcotest.(check int) "saturates instead of wrapping" max_int
    (Metrics.Counter.value c)

let test_gauge () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "g" in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Metrics.Gauge.value g);
  Metrics.Gauge.set g 3.5;
  Alcotest.(check (float 0.0)) "set" 3.5 (Metrics.Gauge.value g);
  Metrics.Gauge.set g (-2.0);
  Alcotest.(check (float 0.0)) "can go down" (-2.0) (Metrics.Gauge.value g)

(* ------------------------------------------------------------------ *)
(* Registry identity *)

let test_registry_dedup () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "shared_total" in
  let b = Metrics.counter reg "shared_total" in
  Alcotest.(check bool) "same identity, same instrument" true (a == b);
  let l1 = Metrics.counter reg "labeled_total" ~labels:[ ("k", "v") ] in
  let l2 = Metrics.counter reg "labeled_total" ~labels:[ ("k", "w") ] in
  Metrics.Counter.incr l1;
  Alcotest.(check int) "distinct labels, distinct instruments" 0
    (Metrics.Counter.value l2)

let test_registry_kind_clash () =
  let reg = Metrics.create () in
  let _ = Metrics.counter reg "thing" in
  match Metrics.gauge reg "thing" with
  | _ -> Alcotest.fail "expected kind clash to raise"
  | exception Invalid_argument _ -> ()

let test_registry_bad_name () =
  let reg = Metrics.create () in
  match Metrics.counter reg "9bad-name" with
  | _ -> Alcotest.fail "expected malformed name to raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Histograms *)

let test_histogram_boundaries () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "h" ~buckets:[| 1.0; 2.0; 5.0 |] in
  Metrics.Histogram.observe h 1.0;
  (* on the bound: v <= bound *)
  Metrics.Histogram.observe h 1.5;
  Metrics.Histogram.observe h 7.0;
  (* above last bound: overflow *)
  let buckets = Metrics.Histogram.buckets h in
  Alcotest.(check (array (pair (float 0.0) int)))
    "per-bucket counts"
    [| (1.0, 1); (2.0, 1); (5.0, 0) |]
    buckets;
  Alcotest.(check int) "overflow" 1 (Metrics.Histogram.overflow h);
  Alcotest.(check int) "count" 3 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 9.5 (Metrics.Histogram.sum h)

let test_histogram_empty () =
  let reg = Metrics.create () in
  let _ = Metrics.histogram reg "empty_h" ~buckets:[| 1.0; 2.0 |] in
  let h = Metrics.histogram reg "empty_h" in
  Alcotest.(check int) "count" 0 (Metrics.Histogram.count h);
  Alcotest.(check bool) "percentile is nan" true
    (Float.is_nan (Metrics.Histogram.percentile h 0.5));
  let json = Metrics.to_json reg in
  Alcotest.(check bool) "p50 exports as null" true
    (contains ~needle:"\"p50\": null" json)

let test_histogram_percentile () =
  let reg = Metrics.create () in
  let h =
    Metrics.histogram reg "h"
      ~buckets:(Metrics.exponential_buckets ~start:10.0 ~factor:10.0 ~count:3)
  in
  for v = 1 to 100 do
    Metrics.Histogram.observe h (float_of_int v)
  done;
  let p50 = Metrics.Histogram.percentile h 0.5 in
  let p99 = Metrics.Histogram.percentile h 0.99 in
  Alcotest.(check bool) "p50 in the second decade" true (p50 > 10.0 && p50 <= 100.0);
  Alcotest.(check bool) "p99 above p50" true (p99 >= p50);
  Alcotest.(check bool) "clamped to observed max" true (p99 <= 100.0);
  Alcotest.check_raises "quantile out of range"
    (Invalid_argument "Metrics.Histogram.percentile: q outside [0,1]")
    (fun () -> ignore (Metrics.Histogram.percentile h 1.5))

let test_exponential_buckets () =
  Alcotest.(check (array (float 1e-9)))
    "start * factor^i"
    [| 2.0; 4.0; 8.0 |]
    (Metrics.exponential_buckets ~start:2.0 ~factor:2.0 ~count:3);
  (match Metrics.exponential_buckets ~start:0.0 ~factor:2.0 ~count:3 with
  | _ -> Alcotest.fail "expected start<=0 to raise"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Exporters *)

let populated_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "events_total" ~help:"events" in
  Metrics.Counter.add c 7;
  let g = Metrics.gauge reg "depth" ~labels:[ ("tree", "main") ] in
  Metrics.Gauge.set g 4.0;
  let h = Metrics.histogram reg "latency_ns" ~buckets:[| 10.0; 100.0 |] in
  Metrics.Histogram.observe h 5.0;
  Metrics.Histogram.observe h 50.0;
  Metrics.Histogram.observe h 500.0;
  reg

let test_json_valid () =
  let reg = populated_registry () in
  (match Json.validate (Metrics.to_json reg) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exporter emitted invalid JSON: %s" e);
  Alcotest.(check bool) "rejects garbage" true
    (Result.is_error (Json.validate "{\"a\": }"));
  Alcotest.(check bool) "rejects trailing junk" true
    (Result.is_error (Json.validate "{} x"))

let test_json_contents () =
  let json = Metrics.to_json (populated_registry ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains ~needle json))
    [
      "\"events_total\""; "\"value\": 7"; "\"tree\": \"main\"";
      "\"latency_ns\""; "\"p50\""; "\"p90\""; "\"p99\""; "\"overflow\": 1";
    ]

let test_prometheus_format () =
  let prom = Metrics.to_prometheus (populated_registry ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains ~needle prom))
    [
      "# TYPE events_total counter";
      "# HELP events_total events";
      "# TYPE latency_ns histogram";
      "latency_ns_bucket{le=\"+Inf\"} 3";
      "latency_ns_bucket{le=\"100\"} 2";
      (* cumulative *)
      "latency_ns_sum";
      "latency_ns_count 3";
      "depth{tree=\"main\"} 4";
    ]

(* Exposition-format regression: pathological label values must be
   escaped (backslash, quote, newline — in that order, so the
   backslash introduced by a later rule is never re-escaped), and
   HELP/TYPE must appear exactly once per family even when the family
   has several label sets or the first-registered member lacks help. *)
let test_prometheus_escaping () =
  let reg = Metrics.create () in
  let c =
    Metrics.counter reg "weird_total" ~labels:[ ("k", "a\\b\"c\nd") ]
  in
  Metrics.Counter.add c 3;
  let prom = Metrics.to_prometheus (reg : Metrics.t) in
  Alcotest.(check bool) "escaped label value" true
    (contains ~needle:"weird_total{k=\"a\\\\b\\\"c\\nd\"} 3" prom);
  Alcotest.(check bool) "no raw newline inside the value" false
    (contains ~needle:"a\\b\"c\nd" prom)

let count_occurrences ~needle haystack =
  let n = String.length needle in
  let rec go i acc =
    if i + n > String.length haystack then acc
    else if String.sub haystack i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_prometheus_family_once () =
  let reg = Metrics.create () in
  (* First member registered without help: the family help must still
     surface from a later member, and exactly once. *)
  let a = Metrics.counter reg "fam_total" ~labels:[ ("k", "a") ] in
  let b =
    Metrics.counter reg "fam_total" ~help:"a family" ~labels:[ ("k", "b") ]
  in
  (* An unrelated metric registered between the two members must not
     split the family's sample block. *)
  let other = Metrics.counter reg "other_total" ~help:"other" in
  Metrics.Counter.incr a;
  Metrics.Counter.add b 2;
  Metrics.Counter.incr other;
  let h = Metrics.histogram reg "lat_ns" ~labels:[ ("op", "x") ] in
  Metrics.Histogram.observe h 1.0;
  let h2 = Metrics.histogram reg "lat_ns" ~labels:[ ("op", "y") ] in
  Metrics.Histogram.observe h2 2.0;
  let prom = Metrics.to_prometheus reg in
  Alcotest.(check int) "TYPE once for fam_total" 1
    (count_occurrences ~needle:"# TYPE fam_total counter" prom);
  Alcotest.(check int) "HELP once for fam_total" 1
    (count_occurrences ~needle:"# HELP fam_total" prom);
  Alcotest.(check bool) "late help recovered" true
    (contains ~needle:"# HELP fam_total a family" prom);
  Alcotest.(check int) "TYPE once for the histogram family" 1
    (count_occurrences ~needle:"# TYPE lat_ns histogram" prom);
  (* Families are contiguous: between fam_total's header and its last
     sample no other family's samples appear. *)
  let lines = String.split_on_char '\n' prom in
  let rec family_blocks acc current = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | l :: rest ->
      if String.length l >= 6 && String.sub l 0 6 = "# TYPE" then
        family_blocks
          (if current = [] then acc else List.rev current :: acc)
          [ l ] rest
      else family_blocks acc (l :: current) rest
  in
  let blocks = family_blocks [] [] lines in
  let fam_blocks =
    List.filter
      (fun b -> List.exists (contains ~needle:"fam_total{") b)
      blocks
  in
  Alcotest.(check int) "fam_total samples in one block" 1
    (List.length fam_blocks)

let test_no_nan_token () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "bad" in
  Metrics.Gauge.set g Float.nan;
  let g2 = Metrics.gauge reg "worse" in
  Metrics.Gauge.set g2 Float.infinity;
  let _ = Metrics.histogram reg "empty_h" in
  (* The +Inf bucket label is standard Prometheus syntax; only inf
     *values* are forbidden. *)
  let strip_inf_label s =
    String.concat "" (String.split_on_char '\n' s |> List.map (fun l ->
        if contains ~needle:"le=\"+Inf\"" l then "" else l ^ "\n"))
  in
  List.iter
    (fun out ->
      Alcotest.(check bool) "no nan token" false (contains ~needle:"nan" (lower out));
      Alcotest.(check bool) "no inf token" false (contains ~needle:"inf" (lower out)))
    [ Metrics.to_json reg; strip_inf_label (Metrics.to_prometheus reg) ]

(* ------------------------------------------------------------------ *)
(* Parallel hammering: counters are CAS-loop atomics, gauges atomic
   cells, histograms mutex-protected — concurrent updates from two
   domains must not lose a single increment or observation. *)

let test_parallel_hammer () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "hammer_total" in
  let g = Metrics.gauge reg "hammer_last" in
  let h = Metrics.histogram reg "hammer_ns" ~buckets:[| 1.0; 2.0 |] in
  let per_domain = 50_000 in
  let work () =
    for i = 1 to per_domain do
      Metrics.Counter.incr c;
      Metrics.Gauge.set g (float_of_int i);
      Metrics.Histogram.observe h (float_of_int (i mod 3))
    done
  in
  let d1 = Domain.spawn work and d2 = Domain.spawn work in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no lost counter increments" (2 * per_domain)
    (Metrics.Counter.value c);
  Alcotest.(check int) "no lost observations" (2 * per_domain)
    (Metrics.Histogram.count h);
  let v = Metrics.Gauge.value g in
  Alcotest.(check bool) "gauge holds one of the written values" true
    (v >= 1.0 && v <= float_of_int per_domain)

(* ------------------------------------------------------------------ *)
(* Spans over a deterministic clock *)

let test_span_fake_clock () =
  let t = ref 1000L in
  Clock.set_source (fun () -> !t);
  Fun.protect ~finally:Clock.reset_source (fun () ->
      let reg = Metrics.create () in
      let h = Metrics.histogram reg "span_ns" ~buckets:[| 100.0; 1000.0 |] in
      let span = Span.start () in
      t := Int64.add !t 250L;
      Alcotest.(check (float 0.0)) "elapsed" 250.0 (Span.elapsed_ns span);
      Span.finish span h;
      Alcotest.(check int) "observed once" 1 (Metrics.Histogram.count h);
      Alcotest.(check (float 0.0)) "observed value" 250.0 (Metrics.Histogram.sum h);
      (* time: observes even on exception *)
      (try
         Span.time h (fun () ->
             t := Int64.add !t 50L;
             failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int) "exceptional path observed" 2
        (Metrics.Histogram.count h);
      Alcotest.(check (float 0.0)) "sum includes both" 300.0
        (Metrics.Histogram.sum h))

let test_clock_monotonic () =
  Clock.reset_source ();
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (Int64.compare b a >= 0)

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "saturation" `Quick test_counter_saturates;
        ] );
      ("gauge", [ Alcotest.test_case "set/value" `Quick test_gauge ]);
      ( "registry",
        [
          Alcotest.test_case "dedup" `Quick test_registry_dedup;
          Alcotest.test_case "kind clash" `Quick test_registry_kind_clash;
          Alcotest.test_case "bad name" `Quick test_registry_bad_name;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_histogram_boundaries;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentile;
          Alcotest.test_case "exponential buckets" `Quick test_exponential_buckets;
        ] );
      ( "export",
        [
          Alcotest.test_case "json validity" `Quick test_json_valid;
          Alcotest.test_case "json contents" `Quick test_json_contents;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
          Alcotest.test_case "prometheus escaping" `Quick
            test_prometheus_escaping;
          Alcotest.test_case "prometheus family once" `Quick
            test_prometheus_family_once;
          Alcotest.test_case "no nan token" `Quick test_no_nan_token;
        ] );
      ( "parallel",
        [ Alcotest.test_case "2-domain hammer" `Quick test_parallel_hammer ] );
      ( "span",
        [
          Alcotest.test_case "fake clock" `Quick test_span_fake_clock;
          Alcotest.test_case "monotonic default" `Quick test_clock_monotonic;
        ] );
    ]
