(* The write-ahead journal: framing and checksum detection, torn-tail
   truncation, snapshot cadence, and dead-letter replay through the
   supervised delivery path. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Predicate = Genas_profile.Predicate
module Broker = Genas_ens.Broker
module Journal = Genas_ens.Journal
module Codec = Genas_ens.Codec
module Deadletter = Genas_ens.Deadletter
module Supervise = Genas_ens.Supervise
module Notification = Genas_ens.Notification

let schema () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("k", Domain.enum [ "a"; "b" ]) ]

let event ?(time = 0.0) s x k =
  Event.create_exn ~time s [ ("x", Value.Int x); ("k", Value.Str k) ]

let fresh_dir () =
  let path = Filename.temp_file "genas_journal" ".d" in
  Sys.remove path;
  path

(* --- frames --------------------------------------------------------- *)

let test_frame_roundtrip () =
  let seed = 0x1234 in
  let payloads = [ "alpha"; ""; "a longer payload with \x00 bytes \xff" ] in
  let buf = String.concat "" (List.map (Codec.frame ~seed) payloads) in
  let decoded, valid_end, corrupt = Codec.parse_frames ~seed buf ~pos:0 in
  Alcotest.(check (list string)) "payloads" payloads decoded;
  Alcotest.(check int) "consumed everything" (String.length buf) valid_end;
  Alcotest.(check bool) "no corruption" false corrupt

let test_frame_torn_tail () =
  let seed = 0x1234 in
  let whole = Codec.frame ~seed "first" ^ Codec.frame ~seed "second" in
  (* Tear the last frame: any strict prefix of it must be rejected
     while the first frame still decodes. *)
  let first_len = String.length (Codec.frame ~seed "first") in
  for cut = first_len to String.length whole - 1 do
    let torn = String.sub whole 0 cut in
    let decoded, valid_end, corrupt = Codec.parse_frames ~seed torn ~pos:0 in
    let expect_corrupt = cut > first_len in
    Alcotest.(check (list string)) "only the first frame" [ "first" ] decoded;
    Alcotest.(check int) "valid end at the first frame" first_len valid_end;
    Alcotest.(check bool) "tail flagged iff bytes remain" expect_corrupt corrupt
  done

let test_frame_bitflip () =
  let seed = 0x1234 in
  let buf = Bytes.of_string (Codec.frame ~seed "payload") in
  (* Flip one payload bit: the checksum must catch it. *)
  let i = Codec.frame_header_len + 2 in
  Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 1));
  let decoded, valid_end, corrupt =
    Codec.parse_frames ~seed (Bytes.to_string buf) ~pos:0
  in
  Alcotest.(check (list string)) "nothing decodes" [] decoded;
  Alcotest.(check int) "no valid bytes" 0 valid_end;
  Alcotest.(check bool) "corruption flagged" true corrupt;
  (* The unflipped frame fails under a different checksum seed too. *)
  let decoded, _, corrupt =
    Codec.parse_frames ~seed:(seed + 1) (Codec.frame ~seed "payload") ~pos:0
  in
  Alcotest.(check (list string)) "wrong seed decodes nothing" [] decoded;
  Alcotest.(check bool) "wrong seed flags corruption" true corrupt

(* --- journal append / recover --------------------------------------- *)

let profile_of s src = Result.get_ok (Genas_profile.Lang.parse_profile s src)

let test_journal_roundtrip () =
  let s = schema () in
  let dir = fresh_dir () in
  let cfg = Journal.config dir in
  let j = Journal.create s cfg in
  Journal.append j
    (Journal.Subscribe { id = 0; subscriber = "alice"; profile = profile_of s "x >= 5" });
  Journal.append j (Journal.Unsubscribe_prim { id = 0 });
  Journal.close j;
  match Journal.recover s cfg with
  | Error e -> Alcotest.fail e
  | Ok (recovered, j2) ->
    Alcotest.(check int) "no snapshot yet" 0
      (match recovered.Journal.snapshot with None -> 0 | Some _ -> 1);
    Alcotest.(check int) "both ops replayable" 2
      (List.length recovered.Journal.tail);
    Alcotest.(check int) "nothing truncated" 0 recovered.Journal.truncated;
    (match recovered.Journal.tail with
    | [ Journal.Subscribe { id = 0; subscriber = "alice"; profile };
        Journal.Unsubscribe_prim { id = 0 } ] ->
      Alcotest.(check bool) "profile semantics survive" true
        (Profile.matches s profile (event s 7 "a")
        && not (Profile.matches s profile (event s 3 "a")))
    | _ -> Alcotest.fail "unexpected tail shape");
    Alcotest.(check int) "op indices continue" 2 (Journal.ops_logged j2);
    Journal.close j2

let test_journal_truncates_torn_tail () =
  let s = schema () in
  let dir = fresh_dir () in
  let cfg = Journal.config dir in
  let j = Journal.create s cfg in
  Journal.append j
    (Journal.Subscribe { id = 0; subscriber = "a"; profile = profile_of s "x >= 5" });
  Journal.append j
    (Journal.Subscribe { id = 1; subscriber = "b"; profile = profile_of s "k = a" });
  Journal.close j;
  (* Tear the last record by rewriting the file a few bytes short. *)
  let path = Filename.concat dir "journal.wal" in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  output_string oc (String.sub contents 0 (String.length contents - 3));
  close_out oc;
  (match Journal.recover s cfg with
  | Error e -> Alcotest.fail e
  | Ok (recovered, j2) ->
    Alcotest.(check int) "tail truncated" 1 recovered.Journal.truncated;
    Alcotest.(check int) "first record survives" 1
      (List.length recovered.Journal.tail);
    Journal.close j2);
  (* The truncation was physical: recovering again is clean. *)
  match Journal.recover s cfg with
  | Error e -> Alcotest.fail e
  | Ok (recovered, j2) ->
    Alcotest.(check int) "second recovery sees no corruption" 0
      recovered.Journal.truncated;
    Alcotest.(check int) "still one record" 1
      (List.length recovered.Journal.tail);
    Journal.close j2

let test_refuses_missing_dir () =
  match Journal.recover (schema ()) (Journal.config (fresh_dir ())) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recovering a nonexistent journal must fail"

(* --- snapshot cadence ----------------------------------------------- *)

let test_snapshot_cadence () =
  let s = schema () in
  let dir = fresh_dir () in
  let b = Broker.create ~journal:(Journal.config ~snapshot_every:4 dir) s in
  ignore (Broker.subscribe b ~subscriber:"a" ~profile:(profile_of s "x >= 5")
            (fun _ -> ()));
  for i = 0 to 6 do
    ignore (Broker.publish b (event ~time:(float_of_int i) s (i mod 10) "a"))
  done;
  let j = Option.get (Broker.wal b) in
  (* 8 ops (1 subscribe + 7 publishes) at one snapshot per 4. *)
  Alcotest.(check int) "ops logged" 8 (Journal.ops_logged j);
  Alcotest.(check int) "two snapshots" 2 (Journal.snapshots_written j);
  Alcotest.(check bool) "snapshot installed" true
    (Sys.file_exists (Filename.concat dir "snapshot.bin"));
  Broker.close b;
  (* Recovery starts from the snapshot and replays only the tail not
     covered by it. *)
  match Broker.recover ~journal:(Journal.config dir) s with
  | Error e -> Alcotest.fail e
  | Ok b2 ->
    let j2 = Option.get (Broker.wal b2) in
    Alcotest.(check int) "published restored" 7 (Broker.published b2);
    Alcotest.(check bool) "short tail" true (Journal.replayed_ops j2 < 8);
    Alcotest.(check int) "op counter continues" 8 (Journal.ops_logged j2);
    Broker.close b2

(* --- dead-letter replay (supervised path) --------------------------- *)

let test_deadletter_replay_exactly_once () =
  let s = schema () in
  let b = Broker.create s in
  let broken = ref true in
  let accepted = ref 0 in
  ignore
    (Broker.subscribe b ~subscriber:"flaky" ~profile:(profile_of s "x >= 5")
       (fun _ ->
         if !broken then failwith "down";
         incr accepted));
  Alcotest.(check int) "delivery fails" 0 (Broker.publish b (event s 7 "a"));
  Alcotest.(check int) "dead-lettered" 1
    (Deadletter.length (Broker.deadletter b));
  Alcotest.(check int) "nothing counted" 0 (Broker.notifications b);
  (* The subscriber recovers; the drained letter is redelivered through
     the supervised path and counted exactly once. *)
  broken := false;
  let redelivered, failed = Broker.replay_deadletters b in
  Alcotest.(check (pair int int)) "one redelivered" (1, 0)
    (redelivered, failed);
  Alcotest.(check int) "handler ran once" 1 !accepted;
  Alcotest.(check int) "notifications incremented exactly once" 1
    (Broker.notifications b);
  Alcotest.(check int) "queue drained" 0
    (Deadletter.length (Broker.deadletter b));
  (* A second pass has nothing to do. *)
  Alcotest.(check (pair int int)) "idempotent" (0, 0)
    (Broker.replay_deadletters b);
  Alcotest.(check int) "count unchanged" 1 (Broker.notifications b)

let test_deadletter_replay_refailure () =
  let s = schema () in
  let b = Broker.create s in
  ignore
    (Broker.subscribe b ~subscriber:"dead" ~profile:(profile_of s "x >= 5")
       (fun _ -> failwith "still down"));
  ignore (Broker.publish b (event s 9 "a"));
  Alcotest.(check int) "dead-lettered" 1
    (Deadletter.length (Broker.deadletter b));
  (* Redelivery fails again: the letter is dead-lettered anew by the
     supervisor, not lost, and not picked up twice in one pass. *)
  let redelivered, failed = Broker.replay_deadletters b in
  Alcotest.(check (pair int int)) "one failure" (0, 1) (redelivered, failed);
  Alcotest.(check int) "re-queued" 1 (Deadletter.length (Broker.deadletter b));
  Alcotest.(check int) "no notification" 0 (Broker.notifications b)

let () =
  Alcotest.run "journal"
    [
      ( "frames",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_frame_torn_tail;
          Alcotest.test_case "bit flip" `Quick test_frame_bitflip;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "truncates torn tail" `Quick
            test_journal_truncates_torn_tail;
          Alcotest.test_case "missing dir" `Quick test_refuses_missing_dir;
        ] );
      ( "snapshots",
        [ Alcotest.test_case "cadence" `Quick test_snapshot_cadence ] );
      ( "deadletter-replay",
        [
          Alcotest.test_case "exactly once" `Quick
            test_deadletter_replay_exactly_once;
          Alcotest.test_case "refailure" `Quick test_deadletter_replay_refailure;
        ] );
    ]
