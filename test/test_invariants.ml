(* Cross-module structural invariants, checked on randomly generated
   scenarios: tree layout discipline, decomposition/denotation
   consistency, covering algebra, and quench bounds. *)

module Value = Genas_model.Value
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Iset = Genas_interval.Iset
module Overlay = Genas_interval.Overlay
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Covering = Genas_profile.Covering
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Order = Genas_filter.Order
module Quench = Genas_ens.Quench
module Gen = Genas_testlib.Gen

let scenario_arb = QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:5 ())

(* Every node stores its edges in ascending lookup-position order, and
   the positions are exactly the table entries of the edge's cell. *)
let prop_edges_sorted =
  QCheck.Test.make ~name:"tree edges sorted by defined order" ~count:60
    scenario_arb
    (fun (s, pset, _) ->
      let d = Decomp.build pset in
      let n = Schema.arity s in
      let ok = ref true in
      List.iter
        (fun strat ->
          let tree =
            Tree.build d
              {
                Tree.attr_order = Array.init n Fun.id;
                strategies = Array.make n strat;
              }
          in
          let rec walk = function
            | Tree.Leaf _ -> ()
            | Tree.Node { attr; cells; edge_positions; children; rest; _ } ->
              let positions = tree.Tree.tables.(attr).Order.positions in
              Array.iteri
                (fun i c ->
                  if edge_positions.(i) <> positions.(c) then ok := false;
                  if i > 0 && edge_positions.(i) <= edge_positions.(i - 1) then
                    ok := false)
                cells;
              Array.iter walk children;
              Option.iter walk rest
          in
          Option.iter walk tree.Tree.root)
        [ Order.Linear Order.Natural_asc; Order.Linear Order.Natural_desc;
          Order.Binary ];
      !ok)

(* A leaf's profiles are exactly those whose denotations contain every
   coordinate of any event routed to that leaf — spot-checked through
   matching, which must equal the profile's own [matches]. *)
let prop_leaf_profiles_sound =
  QCheck.Test.make ~name:"tree matches = Profile.matches" ~count:60
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:10 ~n_events:25 ()))
    (fun (s, pset, events) ->
      let d = Decomp.build pset in
      let tree = Tree.build d (Tree.default_config d) in
      List.for_all
        (fun e ->
          let matched = Tree.match_event tree e in
          Profile_set.fold pset ~init:true ~f:(fun acc id p ->
              acc && List.mem id matched = Profile.matches s p e))
        events)

(* Union of the cells attributed to a profile = its denotation. *)
let prop_profile_cells_cover_denotation =
  QCheck.Test.make ~name:"cells_of_profile tile the denotation" ~count:60
    scenario_arb
    (fun (s, pset, _) ->
      let d = Decomp.build pset in
      let n = Schema.arity s in
      Profile_set.fold pset ~init:true ~f:(fun acc id p ->
          acc
          && List.for_all
               (fun attr ->
                 match
                   (Profile.denotation p attr, Decomp.cells_of_profile d ~attr ~id)
                 with
                 | None, None -> true
                 | Some iset, Some cells ->
                   let overlay = d.Decomp.overlays.(attr) in
                   let from_cells =
                     Iset.of_intervals
                       (Array.to_list
                          (Array.map
                             (fun c -> overlay.Overlay.cells.(c).Overlay.itv)
                             cells))
                   in
                   let axis = d.Decomp.axes.(attr) in
                   (* Compare membership over a coordinate grid. *)
                   let probes =
                     List.init 41 (fun i ->
                         axis.Axis.lo
                         +. (float_of_int i /. 40.0 *. (axis.Axis.hi -. axis.Axis.lo)))
                   in
                   List.for_all
                     (fun x ->
                       (* Uninhabited points of discrete axes are
                          outside both sets' normalized forms. *)
                       (axis.Axis.discrete && Float.rem x 1.0 <> 0.0)
                       || Iset.mem iset x = Iset.mem from_cells x)
                     probes
                 | None, Some _ | Some _, None -> false)
               (List.init n Fun.id))
          )

let prop_minimal_cover_idempotent =
  QCheck.Test.make ~name:"minimal_cover is idempotent" ~count:60
    (QCheck.make
       QCheck.Gen.(
         Gen.schema ~max_attrs:2 () >>= fun s ->
         list_size (int_range 1 8) (Gen.profile s) >|= fun ps ->
         (s, List.mapi (fun i p -> (i, p)) ps)))
    (fun (s, entries) ->
      let once = Covering.minimal_cover s entries in
      let twice = Covering.minimal_cover s once in
      List.map fst once = List.map fst twice)

let prop_minimal_cover_covers =
  QCheck.Test.make ~name:"minimal_cover preserves the match set" ~count:40
    (QCheck.make
       QCheck.Gen.(
         Gen.schema ~max_attrs:2 () >>= fun s ->
         list_size (int_range 1 8) (Gen.profile s) >>= fun ps ->
         Gen.events ~n:20 s >|= fun es ->
         (s, List.mapi (fun i p -> (i, p)) ps, es)))
    (fun (s, entries, events) ->
      let kept = Covering.minimal_cover s entries in
      List.for_all
        (fun e ->
          let matched_by l =
            List.exists (fun (_, p) -> Profile.matches s p e) l
          in
          matched_by entries = matched_by kept)
        events)

let prop_quench_coverage_bounds =
  QCheck.Test.make ~name:"quench coverage share in [0,1]" ~count:60
    scenario_arb
    (fun (s, pset, _) ->
      let q = Quench.build pset in
      List.for_all
        (fun attr ->
          let c = Quench.coverage_share q ~attr in
          c >= 0.0 && c <= 1.0 +. 1e-9)
        (List.init (Schema.arity s) Fun.id))

(* Adding a profile never decreases any event's match set; removing it
   restores the previous result. *)
let prop_registry_monotonicity =
  QCheck.Test.make ~name:"add/remove profile monotonicity" ~count:40
    (QCheck.make
       QCheck.Gen.(
         Gen.scenario ~max_attrs:3 ~max_p:6 ~n_events:15 () >>= fun (s, pset, es) ->
         Gen.profile s >|= fun extra -> (s, pset, es, extra)))
    (fun (_, pset, events, extra) ->
      let d0 = Decomp.build pset in
      let t0 = Tree.build d0 (Tree.default_config d0) in
      let before = List.map (Tree.match_event t0) events in
      let id = Profile_set.add pset extra in
      let d1 = Decomp.build pset in
      let t1 = Tree.build d1 (Tree.default_config d1) in
      let during = List.map (Tree.match_event t1) events in
      ignore (Profile_set.remove pset id);
      let d2 = Decomp.build pset in
      let t2 = Tree.build d2 (Tree.default_config d2) in
      let after = List.map (Tree.match_event t2) events in
      List.for_all2
        (fun b du -> List.for_all (fun x -> List.mem x du) b)
        before during
      && before = after)

let () =
  Alcotest.run "invariants"
    [
      ( "structure",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_edges_sorted; prop_leaf_profiles_sound;
            prop_profile_cells_cover_denotation;
          ] );
      ( "algebra",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_minimal_cover_idempotent; prop_minimal_cover_covers;
            prop_quench_coverage_bounds; prop_registry_monotonicity;
          ] );
    ]
