(* The experiment harness: workload generation, the 95%-precision
   simulation protocol, and figure-table structure. *)

module Prng = Genas_prng.Prng
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Dist = Genas_dist.Dist
module Shape = Genas_dist.Shape
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Workload = Genas_expt.Workload
module Simulate = Genas_expt.Simulate
module Figures = Genas_expt.Figures
module Report = Genas_expt.Report

let test_normalized_schema () =
  let s = Workload.normalized_schema ~attrs:3 ~points:50 () in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  let a = Schema.attribute s 1 in
  Alcotest.(check string) "name" "a1" a.Schema.name;
  Alcotest.(check (float 1e-9)) "domain size" 50.0 (Genas_model.Domain.size a.Schema.domain)

let test_gen_profiles_counts () =
  let s = Workload.normalized_schema ~attrs:2 ~points:20 () in
  let axes = Array.init 2 (fun i -> Axis.of_domain (Schema.attribute s i).Schema.domain) in
  let rng = Prng.create ~seed:42 in
  let pset =
    Workload.gen_profiles rng s
      {
        Workload.p = 37;
        dontcare = [| 0.5; 0.0 |];
        value_dists = Array.map Dist.uniform axes;
        range_width = None;
      }
  in
  Alcotest.(check int) "p profiles" 37 (Profile_set.size pset);
  (* Attribute 1 has zero don't-care probability: every profile
     constrains it. *)
  Profile_set.iter pset (fun _ p ->
      if Profile.is_dont_care p 1 then Alcotest.fail "a1 must be constrained")

let test_gen_profiles_respect_distribution () =
  let s = Workload.normalized_schema ~attrs:1 ~points:100 () in
  let axis = Axis.of_domain (Schema.attribute s 0).Schema.domain in
  let rng = Prng.create ~seed:43 in
  let pset =
    Workload.gen_profiles rng s
      {
        Workload.p = 200;
        dontcare = [| 0.0 |];
        value_dists = [| Shape.peak ~at:0.2 ~mass:1.0 ~width:0.1 axis |];
        range_width = None;
      }
  in
  (* All equality values must fall inside the peak window [15,25]. *)
  let d = Decomp.build pset in
  let overlay = d.Decomp.overlays.(0) in
  Array.iter
    (fun ci ->
      let itv = overlay.Genas_interval.Overlay.cells.(ci).Genas_interval.Overlay.itv in
      if itv.Genas_interval.Interval.lo < 14.0 || itv.Genas_interval.Interval.hi > 26.0
      then
        Alcotest.failf "referenced cell %s outside peak"
          (Format.asprintf "%a" Genas_interval.Interval.pp itv))
    (Genas_interval.Overlay.referenced overlay)

let test_gen_profiles_ranges () =
  let s = Workload.normalized_schema ~attrs:1 ~points:100 () in
  let axis = Axis.of_domain (Schema.attribute s 0).Schema.domain in
  let rng = Prng.create ~seed:44 in
  let pset =
    Workload.gen_profiles rng s
      {
        Workload.p = 20;
        dontcare = [| 0.0 |];
        value_dists = [| Dist.uniform axis |];
        range_width = Some 0.2;
      }
  in
  (* Range profiles reference more than a point each. *)
  Profile_set.iter pset (fun _ p ->
      match Profile.denotation p 0 with
      | None -> Alcotest.fail "constrained"
      | Some iset ->
        let m = Genas_interval.Iset.measure ~discrete:true iset in
        if m < 2.0 then Alcotest.failf "range too small: %.0f" m)

let test_gen_profiles_guards () =
  let s = Workload.normalized_schema ~attrs:1 ~points:10 () in
  let axis = Axis.of_domain (Schema.attribute s 0).Schema.domain in
  let rng = Prng.create ~seed:45 in
  Alcotest.check_raises "p = 0"
    (Invalid_argument "Workload.gen_profiles: p must be positive") (fun () ->
      ignore
        (Workload.gen_profiles rng s
           {
             Workload.p = 0;
             dontcare = [| 0.0 |];
             value_dists = [| Dist.uniform axis |];
             range_width = None;
           }))

let test_simulation_converges () =
  let s = Workload.normalized_schema ~attrs:1 ~points:50 () in
  let axis = Axis.of_domain (Schema.attribute s 0).Schema.domain in
  let rng = Prng.create ~seed:46 in
  let pset =
    Workload.gen_profiles rng s
      {
        Workload.p = 20;
        dontcare = [| 0.0 |];
        value_dists = [| Dist.uniform axis |];
        range_width = None;
      }
  in
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  let r = Simulate.run rng tree [| Dist.uniform axis |] in
  Alcotest.(check bool) "converged" true r.Simulate.converged;
  Alcotest.(check bool) "ci positive" true (r.Simulate.ci_halfwidth > 0.0);
  Alcotest.(check bool) "precision met" true
    (r.Simulate.ci_halfwidth /. r.Simulate.per_event <= 0.05);
  let fixed = Simulate.run_fixed rng tree [| Dist.uniform axis |] ~events:500 in
  Alcotest.(check int) "fixed count" 500 fixed.Simulate.events

let test_simulation_arity_guard () =
  let s = Workload.normalized_schema ~attrs:2 ~points:10 () in
  let rng = Prng.create ~seed:47 in
  let pset = Profile_set.create s in
  ignore
    (Result.get_ok
       (Profile_set.add_spec pset
          [ ("a0", Genas_profile.Predicate.Eq (Genas_model.Value.Int 1)) ]));
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  Alcotest.check_raises "arity"
    (Invalid_argument "Simulate: distribution arity mismatch") (fun () ->
      ignore (Simulate.run rng tree [| Dist.uniform d.Decomp.axes.(0) |]))

(* Figure tables: structural checks (cheap parameterizations). *)
let test_figure_structure () =
  let t = Figures.fig4a ~seed:5 ~p:10 () in
  Alcotest.(check int) "fig4a rows" 7 (List.length t.Report.rows);
  Alcotest.(check int) "fig4a cols" 4 (List.length t.Report.columns);
  List.iter
    (fun row -> Alcotest.(check int) "row width" 4 (List.length row))
    t.Report.rows;
  let f5 = Figures.fig5 ~seed:5 ~p:10 () in
  Alcotest.(check int) "fig5 has three panels" 3 (List.length f5);
  let f3 = Figures.fig3 () in
  Alcotest.(check int) "fig3 rows" 15 (List.length f3.Report.rows)

let test_more_figures_structure () =
  let t6 = Figures.fig6a ~seed:3 ~p:8 () in
  Alcotest.(check int) "fig6a rows (3 dists x 3 orders)" 9
    (List.length t6.Report.rows);
  let t8 = Figures.orderings8 ~seed:3 ~p:8 () in
  Alcotest.(check int) "orderings8 columns (label + 9)" 10
    (List.length t8.Report.columns);
  let tf = Figures.fragility ~seed:3 ~p:8 () in
  (* Stale V1 cost is non-decreasing in the drift share. *)
  let stale = List.map (fun row -> float_of_string (List.nth row 1)) tf.Report.rows in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "fragility monotone" true (non_decreasing stale);
  let out = Figures.outlook_strategies ~seed:3 ~p:8 () in
  (* The hashed column must be exactly 1.00 for single-attribute
     scenarios (one node, one charged comparison). *)
  List.iter
    (fun row ->
      match List.nth_opt row 4 with
      | Some v -> Alcotest.(check string) "hashed = 1.00" "1.00" v
      | None -> Alcotest.fail "row shape")
    out.Report.rows

let test_report_render () =
  let t =
    Report.table ~title:"t" ~columns:[ "a"; "bb" ] ~notes:[ "n" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let s = Format.asprintf "%a" Report.render t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0
    && Option.is_some (String.index_opt s 't'));
  Alcotest.(check bool) "note rendered" true
    (String.split_on_char '\n' s |> List.exists (fun l ->
         String.trim l = "note: n"))

let test_csv () =
  let t =
    Report.table ~title:"t" ~columns:[ "a"; "b" ]
      [ [ "1"; "x,y" ]; [ "2"; "say \"hi\"" ] ]
  in
  Alcotest.(check string) "escaping"
    "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n" (Report.to_csv t)

let test_bars () =
  let t = Report.bars ~title:"b" ~unit_label:"ops" [ ("x", 2.0); ("y", 4.0) ] in
  Alcotest.(check int) "rows" 2 (List.length t.Report.rows);
  (match t.Report.rows with
  | [ [ _; _; bx ]; [ _; _; by ] ] ->
    Alcotest.(check int) "proportional" (String.length by)
      (2 * String.length bx)
  | _ -> Alcotest.fail "row shape")

(* Zero-denominator averages: Ops.per_event / Ops.per_match are nan
   before any event or match; the formatting boundary must turn them
   into "n/a" so no "nan" token ever reaches a table or CSV. *)
let test_nan_formatting () =
  Alcotest.(check string) "nan" "n/a" (Report.f2 Float.nan);
  Alcotest.(check string) "+inf" "n/a" (Report.f2 Float.infinity);
  Alcotest.(check string) "-inf" "n/a" (Report.f2 Float.neg_infinity);
  Alcotest.(check string) "nan (f4)" "n/a" (Report.f4 Float.nan);
  Alcotest.(check string) "inf (f4)" "n/a" (Report.f4 Float.infinity);
  Alcotest.(check string) "finite unchanged" "3.33" (Report.f2 3.3333);
  Alcotest.(check string) "finite unchanged (f4)" "0.1250" (Report.f4 0.125)

let test_zero_event_ops () =
  let ops = Genas_filter.Ops.create () in
  Alcotest.(check bool) "per_event nan before any event" true
    (Float.is_nan (Genas_filter.Ops.per_event ops));
  Alcotest.(check bool) "per_match nan before any match" true
    (Float.is_nan (Genas_filter.Ops.per_match ops));
  Alcotest.(check string) "formats as n/a" "n/a"
    (Report.f2 (Genas_filter.Ops.per_event ops));
  (* Events but no matches: per_event defined, per_match still nan. *)
  ops.Genas_filter.Ops.events <- 4;
  ops.Genas_filter.Ops.comparisons <- 12;
  Alcotest.(check string) "per_event defined" "3.00"
    (Report.f2 (Genas_filter.Ops.per_event ops));
  Alcotest.(check string) "per_match still n/a" "n/a"
    (Report.f2 (Genas_filter.Ops.per_match ops))

let test_zero_match_cost () =
  (* A tree whose only profile can never match under a distribution
     concentrated elsewhere still yields a finite per_event, while
     per_match is nan — and both must format cleanly. *)
  let s = Schema.create_exn [ ("x", Genas_model.Domain.int_range ~lo:0 ~hi:9) ] in
  let pset = Profile_set.create s in
  ignore
    (Result.get_ok
       (Profile_set.add_spec pset
          [ ("x", Genas_profile.Predicate.Eq (Genas_model.Value.Int 9)) ]));
  let decomp = Decomp.build pset in
  let tree = Tree.build decomp (Tree.default_config decomp) in
  (* All probability mass on cells that miss the profile. *)
  let ncells =
    Array.length decomp.Decomp.overlays.(0).Genas_interval.Overlay.cells
  in
  let probs = Array.make ncells 0.0 in
  probs.(0) <- 1.0;
  let report = Genas_core.Cost.evaluate tree ~cell_probs:[| probs |] in
  Alcotest.(check bool) "per_match nan when nothing matches" true
    (Float.is_nan report.Genas_core.Cost.per_match);
  Alcotest.(check string) "formats as n/a" "n/a"
    (Report.f2 report.Genas_core.Cost.per_match);
  Alcotest.(check bool) "per_event finite" true
    (Float.is_finite report.Genas_core.Cost.per_event)

let test_rendered_table_no_nan () =
  let t =
    Report.table ~title:"undefined averages"
      ~columns:[ "metric"; "value" ]
      [ [ "defined"; Report.f2 1.5 ]; [ "undefined"; Report.f2 Float.nan ] ]
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Report.render ppf t;
  Format.pp_print_flush ppf ();
  let rendered = Buffer.contents buf in
  let lower = String.lowercase_ascii rendered in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no nan in table" false (contains "nan" lower);
  Alcotest.(check bool) "no nan in csv" false
    (contains "nan" (String.lowercase_ascii (Report.to_csv t)));
  Alcotest.(check bool) "n/a marker present" true (contains "n/a" lower)

let test_sparkline () =
  let sl = Report.sparkline [ 0.0; 0.5; 1.0 ] in
  Alcotest.(check bool) "nonempty" true (String.length sl > 0);
  Alcotest.(check string) "flat zero" "   " (Report.sparkline [ 0.0; 0.0; 0.0 ])

let () =
  Alcotest.run "expt"
    [
      ( "workload",
        [
          Alcotest.test_case "normalized schema" `Quick test_normalized_schema;
          Alcotest.test_case "profile counts" `Quick test_gen_profiles_counts;
          Alcotest.test_case "distribution respected" `Quick
            test_gen_profiles_respect_distribution;
          Alcotest.test_case "range profiles" `Quick test_gen_profiles_ranges;
          Alcotest.test_case "guards" `Quick test_gen_profiles_guards;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "95% precision protocol" `Quick test_simulation_converges;
          Alcotest.test_case "arity guard" `Quick test_simulation_arity_guard;
        ] );
      ( "figures",
        [
          Alcotest.test_case "table structure" `Quick test_figure_structure;
          Alcotest.test_case "fig6/orderings/outlook structure" `Quick
            test_more_figures_structure;
          Alcotest.test_case "report rendering" `Quick test_report_render;
          Alcotest.test_case "csv export" `Quick test_csv;
          Alcotest.test_case "bar charts" `Quick test_bars;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
        ] );
      ( "nan-guard",
        [
          Alcotest.test_case "formatting boundary" `Quick test_nan_formatting;
          Alcotest.test_case "zero-event ops" `Quick test_zero_event_ops;
          Alcotest.test_case "zero-match cost" `Quick test_zero_match_cost;
          Alcotest.test_case "rendered table" `Quick test_rendered_table_no_nan;
        ] );
    ]
