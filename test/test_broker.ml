(* The single-node broker: subscriptions, publication, composite
   subscriptions, and quench-cache invalidation. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Broker = Genas_ens.Broker
module Quench = Genas_ens.Quench
module Composite = Genas_ens.Composite
module Notification = Genas_ens.Notification

let schema () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("k", Domain.enum [ "a"; "b" ]) ]

let event ?(time = 0.0) s x k =
  Event.create_exn ~time s [ ("x", Value.Int x); ("k", Value.Str k) ]

let test_subscribe_publish () =
  let s = schema () in
  let b = Broker.create s in
  let log = ref [] in
  let _ =
    Result.get_ok
      (Broker.subscribe_text b ~subscriber:"alice" "x >= 5" (fun n ->
           log := n.Notification.subscriber :: !log))
  in
  let _ =
    Result.get_ok
      (Broker.subscribe_text b ~subscriber:"bob" "k = a" (fun n ->
           log := n.Notification.subscriber :: !log))
  in
  Alcotest.(check int) "two notifications" 2 (Broker.publish b (event s 7 "a"));
  Alcotest.(check int) "one" 1 (Broker.publish b (event s 2 "a"));
  Alcotest.(check int) "zero" 0 (Broker.publish b (event s 2 "b"));
  Alcotest.(check int) "published" 3 (Broker.published b);
  Alcotest.(check int) "notifications" 3 (Broker.notifications b);
  (* Primitive deliveries follow ascending profile id. *)
  Alcotest.(check (list string)) "delivery log"
    [ "alice"; "bob"; "bob" ] (List.rev !log)

let test_subscribe_text_error () =
  let b = Broker.create (schema ()) in
  match Broker.subscribe_text b ~subscriber:"x" "nope = 1" (fun _ -> ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_unsubscribe () =
  let s = schema () in
  let b = Broker.create s in
  let id =
    Result.get_ok (Broker.subscribe_text b ~subscriber:"a" "x >= 0" (fun _ -> ()))
  in
  Alcotest.(check int) "before" 1 (Broker.publish b (event s 1 "a"));
  Alcotest.(check bool) "removed" true (Broker.unsubscribe b id);
  Alcotest.(check bool) "idempotent" false (Broker.unsubscribe b id);
  Alcotest.(check int) "after" 0 (Broker.publish b (event s 1 "a"))

(* Double unsubscribe must be a pure no-op: the second call returns
   false and must not invalidate the quench cache again (the cached
   table stays physically the same, and an instrumented broker counts
   exactly one invalidation per actual removal). *)
let test_double_unsubscribe_primitive () =
  let s = schema () in
  let reg = Genas_obs.Metrics.create () in
  let b = Broker.create ~metrics:reg s in
  let invalidations () =
    Genas_obs.Metrics.Counter.value
      (Genas_obs.Metrics.counter reg "genas_broker_quench_invalidations_total")
  in
  let id =
    Result.get_ok (Broker.subscribe_text b ~subscriber:"a" "x >= 5" (fun _ -> ()))
  in
  Alcotest.(check bool) "first removal" true (Broker.unsubscribe b id);
  let after_first = invalidations () in
  let q1 = Broker.quench b in
  Alcotest.(check bool) "second is a no-op" false (Broker.unsubscribe b id);
  Alcotest.(check bool) "cache survives the no-op" true (q1 == Broker.quench b);
  Alcotest.(check int) "invalidated exactly once" after_first (invalidations ());
  Alcotest.(check int) "still publishable" 0 (Broker.publish b (event s 7 "a"))

let test_double_unsubscribe_composite () =
  let s = schema () in
  let b = Broker.create s in
  let hot = Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 8)) ] in
  let id =
    Result.get_ok
      (Broker.subscribe_composite b ~subscriber:"w"
         (Composite.Repeat (Composite.Prim hot, 2, 10.0))
         (fun _ -> ()))
  in
  Alcotest.(check bool) "first removal" true (Broker.unsubscribe b id);
  let q1 = Broker.quench b in
  Alcotest.(check bool) "second is a no-op" false (Broker.unsubscribe b id);
  Alcotest.(check bool) "cache survives the no-op" true (q1 == Broker.quench b);
  Alcotest.(check bool) "constituent gone" false
    (Quench.wanted_event q1 (event s 9 "a"))

let test_unsubscribe_stale_id () =
  let s = schema () in
  let b = Broker.create s in
  let stale =
    Result.get_ok (Broker.subscribe_text b ~subscriber:"a" "x = 1" (fun _ -> ()))
  in
  let _ =
    Result.get_ok (Broker.subscribe_text b ~subscriber:"b" "x = 2" (fun _ -> ()))
  in
  ignore (Broker.unsubscribe b stale);
  let q0 = Broker.quench b in
  Alcotest.(check bool) "stale id" false (Broker.unsubscribe b stale);
  Alcotest.(check bool) "cache untouched" true (q0 == Broker.quench b);
  Alcotest.(check bool) "remaining sub intact" true
    (Quench.wanted_event q0 (event s 2 "a"))

let test_notification_payload () =
  let s = schema () in
  let b = Broker.create s in
  let seen = ref None in
  let _ =
    Result.get_ok
      (Broker.subscribe_text b ~subscriber:"carol" "x = 3" (fun n -> seen := Some n))
  in
  ignore (Broker.publish b (event s 3 "b"));
  match !seen with
  | None -> Alcotest.fail "no notification"
  | Some n ->
    Alcotest.(check string) "subscriber" "carol" n.Notification.subscriber;
    Alcotest.(check bool) "event attached" true
      (Event.equal n.Notification.event (event s 3 "b"))

let test_composite_subscription () =
  let s = schema () in
  let b = Broker.create s in
  let fired = ref 0 in
  let hot = Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 8)) ] in
  let _ =
    Result.get_ok
      (Broker.subscribe_composite b ~subscriber:"watch"
         (Composite.Repeat (Composite.Prim hot, 2, 10.0))
         (fun _ -> incr fired))
  in
  ignore (Broker.publish b (event ~time:0.0 s 9 "a"));
  Alcotest.(check int) "one hot is not enough" 0 !fired;
  ignore (Broker.publish b (event ~time:5.0 s 8 "a"));
  Alcotest.(check int) "second within window fires" 1 !fired;
  ignore (Broker.publish b (event ~time:100.0 s 9 "a"));
  ignore (Broker.publish b (event ~time:150.0 s 9 "a"));
  Alcotest.(check int) "outside window silent" 1 !fired

let test_composite_invalid () =
  let s = schema () in
  let b = Broker.create s in
  let hot = Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 8)) ] in
  match
    Broker.subscribe_composite b ~subscriber:"w"
      (Composite.Repeat (Composite.Prim hot, 0, 10.0))
      (fun _ -> ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected validation error"

let test_quench_tracks_subscriptions () =
  let s = schema () in
  let b = Broker.create s in
  let q0 = Broker.quench b in
  Alcotest.(check bool) "nothing wanted" false (Quench.wanted_event q0 (event s 1 "a"));
  let id =
    Result.get_ok (Broker.subscribe_text b ~subscriber:"a" "x = 1" (fun _ -> ()))
  in
  let q1 = Broker.quench b in
  Alcotest.(check bool) "wanted now" true (Quench.wanted_event q1 (event s 1 "a"));
  Alcotest.(check bool) "other value unwanted" false
    (Quench.wanted_event q1 (event s 2 "a"));
  ignore (Broker.unsubscribe b id);
  let q2 = Broker.quench b in
  Alcotest.(check bool) "unwanted again" false (Quench.wanted_event q2 (event s 1 "a"))

let test_publish_quenched () =
  let s = schema () in
  let b = Broker.create s in
  let _ =
    Result.get_ok (Broker.subscribe_text b ~subscriber:"a" "x = 1" (fun _ -> ()))
  in
  (match Broker.publish_quenched b (event s 1 "a") with
  | Some 1 -> ()
  | Some n -> Alcotest.failf "expected 1 notification, got %d" n
  | None -> Alcotest.fail "wanted event suppressed");
  (match Broker.publish_quenched b (event s 2 "a") with
  | None -> ()
  | Some _ -> Alcotest.fail "unwanted event published");
  (* Suppressed events never reach the broker's counters. *)
  Alcotest.(check int) "only one event filtered" 1 (Broker.published b)

let test_quench_covers_composites () =
  let s = schema () in
  let b = Broker.create s in
  let hot = Profile.create_exn s [ ("x", Predicate.Eq (Value.Int 9)) ] in
  let _ =
    Result.get_ok
      (Broker.subscribe_composite b ~subscriber:"w"
         (Composite.Repeat (Composite.Prim hot, 3, 10.0))
         (fun _ -> ()))
  in
  let q = Broker.quench b in
  Alcotest.(check bool) "constituent wanted" true
    (Quench.wanted_event q (event s 9 "a"))

(* --- delivery supervision: a raising handler must not starve the
   other subscribers, and every counter pair must stay mutually
   consistent (regression for the publish/publish_batch divergence). *)

module Supervise = Genas_ens.Supervise
module Deadletter = Genas_ens.Deadletter
module Metrics = Genas_obs.Metrics

let counter_value reg ?labels name =
  Metrics.Counter.value (Metrics.counter reg ?labels name)

let test_raising_handler_single () =
  let s = schema () in
  let reg = Metrics.create () in
  let b = Broker.create ~metrics:reg s in
  let bob_log = ref 0 in
  (* alice has the lower profile id, so she is attempted first; her
     failure must not block bob. *)
  let _ =
    Result.get_ok
      (Broker.subscribe_text b ~subscriber:"alice" "x >= 5" (fun _ ->
           failwith "alice is broken"))
  in
  let _ =
    Result.get_ok
      (Broker.subscribe_text b ~subscriber:"bob" "k = a" (fun _ -> incr bob_log))
  in
  Alcotest.(check int) "only bob delivered" 1 (Broker.publish b (event s 7 "a"));
  Alcotest.(check int) "bob ran" 1 !bob_log;
  Alcotest.(check int) "published" 1 (Broker.published b);
  Alcotest.(check int) "notifications = accepted" 1 (Broker.notifications b);
  Alcotest.(check int) "metric: published" 1
    (counter_value reg "genas_broker_published_total");
  Alcotest.(check int) "metric: notifications" 1
    (counter_value reg "genas_broker_notifications_total");
  Alcotest.(check int) "metric: alice deliveries" 0
    (counter_value reg "genas_broker_deliveries_total"
       ~labels:[ ("subscriber", "alice") ]);
  Alcotest.(check int) "metric: bob deliveries" 1
    (counter_value reg "genas_broker_deliveries_total"
       ~labels:[ ("subscriber", "bob") ]);
  let sup = Broker.supervisor b in
  Alcotest.(check int) "one failed attempt" 1 (Supervise.failures sup);
  Alcotest.(check int) "dead-lettered" 1 (Supervise.deadlettered sup);
  match Deadletter.entries (Broker.deadletter b) with
  | [ e ] ->
    Alcotest.(check string) "dlq subscriber" "alice"
      e.Deadletter.notification.Notification.subscriber
  | l -> Alcotest.failf "expected 1 dead letter, got %d" (List.length l)

let test_raising_handler_batch () =
  let s = schema () in
  let b = Broker.create s in
  let bob_log = ref 0 in
  let _ =
    Result.get_ok
      (Broker.subscribe_text b ~subscriber:"alice" "x >= 5" (fun _ ->
           failwith "still broken"))
  in
  let _ =
    Result.get_ok
      (Broker.subscribe_text b ~subscriber:"bob" "k = a" (fun _ -> incr bob_log))
  in
  let batch = [| event s 7 "a"; event s 9 "b"; event s 1 "a" |] in
  (* alice matches events 0 and 1 (both fail); bob matches 0 and 2. *)
  Alcotest.(check int) "accepted total" 2 (Broker.publish_batch b batch);
  Alcotest.(check int) "bob ran twice" 2 !bob_log;
  Alcotest.(check int) "published" 3 (Broker.published b);
  Alcotest.(check int) "notifications" 2 (Broker.notifications b);
  Alcotest.(check int) "failures" 2 (Supervise.failures (Broker.supervisor b));
  Alcotest.(check int) "dead letters" 2 (Deadletter.length (Broker.deadletter b))

let test_raising_composite_handler () =
  let s = schema () in
  let b = Broker.create s in
  let prim_log = ref 0 in
  let hot = Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 8)) ] in
  let _ =
    Result.get_ok
      (Broker.subscribe_composite b ~subscriber:"watch"
         (Composite.Repeat (Composite.Prim hot, 2, 10.0))
         (fun _ -> failwith "watcher crashed"))
  in
  let _ =
    Result.get_ok
      (Broker.subscribe_text b ~subscriber:"plain" "x >= 0" (fun _ ->
           incr prim_log))
  in
  ignore (Broker.publish b (event ~time:0.0 s 9 "a"));
  ignore (Broker.publish b (event ~time:5.0 s 8 "a"));
  Alcotest.(check int) "primitive deliveries unaffected" 2 !prim_log;
  let sup = Broker.supervisor b in
  Alcotest.(check int) "composite failure supervised" 1 (Supervise.failures sup);
  Alcotest.(check int) "dead-lettered" 1 (Deadletter.length (Broker.deadletter b));
  (* The detector state advanced despite the raise: a fresh pair of hot
     events inside a window trips it again. *)
  ignore (Broker.publish b (event ~time:100.0 s 9 "a"));
  ignore (Broker.publish b (event ~time:105.0 s 9 "a"));
  Alcotest.(check int) "fires again later" 2 (Supervise.failures sup);
  (* Only accepted deliveries count as notifications. *)
  Alcotest.(check int) "notifications exclude failures" 4 (Broker.notifications b)

let () =
  Alcotest.run "broker"
    [
      ( "primitive",
        [
          Alcotest.test_case "subscribe/publish" `Quick test_subscribe_publish;
          Alcotest.test_case "parse errors" `Quick test_subscribe_text_error;
          Alcotest.test_case "unsubscribe" `Quick test_unsubscribe;
          Alcotest.test_case "double unsubscribe (primitive)" `Quick
            test_double_unsubscribe_primitive;
          Alcotest.test_case "double unsubscribe (composite)" `Quick
            test_double_unsubscribe_composite;
          Alcotest.test_case "unsubscribe stale id" `Quick
            test_unsubscribe_stale_id;
          Alcotest.test_case "notification payload" `Quick test_notification_payload;
        ] );
      ( "composite",
        [
          Alcotest.test_case "repeat subscription" `Quick test_composite_subscription;
          Alcotest.test_case "validation" `Quick test_composite_invalid;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "raising handler (publish)" `Quick
            test_raising_handler_single;
          Alcotest.test_case "raising handler (batch)" `Quick
            test_raising_handler_batch;
          Alcotest.test_case "raising composite handler" `Quick
            test_raising_composite_handler;
        ] );
      ( "quench",
        [
          Alcotest.test_case "tracks subscriptions" `Quick test_quench_tracks_subscriptions;
          Alcotest.test_case "publish_quenched" `Quick test_publish_quenched;
          Alcotest.test_case "covers composite constituents" `Quick
            test_quench_covers_composites;
        ] );
    ]
