(* Delivery supervision and deterministic fault injection: retry and
   backoff determinism, circuit-breaker lifecycle, dead-letter bounds,
   link faults on routed networks, and the differential guarantee that
   a zero-probability fault plan changes nothing. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Ops = Genas_filter.Ops
module Broker = Genas_ens.Broker
module Router = Genas_ens.Router
module Notification = Genas_ens.Notification
module Fault = Genas_ens.Fault
module Supervise = Genas_ens.Supervise
module Deadletter = Genas_ens.Deadletter
module Prng = Genas_prng.Prng

let schema () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("k", Domain.enum [ "a"; "b" ]) ]

let event ?(time = 0.0) s x k =
  Event.create_exn ~time s [ ("x", Value.Int x); ("k", Value.Str k) ]

let notification s =
  Notification.make ~event:(event s 1 "a")
    ~origin:(Notification.Primitive 0) ~subscriber:"n" ()

(* --- plan validation ------------------------------------------------ *)

let test_plan_validation () =
  let expect_invalid what spec =
    match Fault.plan ~seed:1 spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  expect_invalid "probability above one"
    { Fault.none with Fault.handler_failure = [ ("a", 1.5) ] };
  expect_invalid "negative probability"
    { Fault.none with Fault.link_drop = -0.1 };
  expect_invalid "link probabilities above one"
    { Fault.none with Fault.link_drop = 0.5; link_duplicate = 0.4;
      link_delay = 0.2 };
  (* The boundary case is legal. *)
  ignore
    (Fault.plan ~seed:1
       { Fault.none with Fault.link_drop = 0.5; link_duplicate = 0.5 })

let test_policy_validation () =
  let expect_invalid what policy =
    match Supervise.create ~policy ~prefix:"t" () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  expect_invalid "zero attempts" (Supervise.retry_policy ~max_attempts:0 ());
  expect_invalid "shrinking multiplier" (Supervise.retry_policy ~multiplier:0.5 ());
  expect_invalid "jitter above one" (Supervise.retry_policy ~jitter:1.5 ());
  expect_invalid "tripping without cooldown"
    (Supervise.retry_policy ~trip_after:2 ~cooldown:0 ())

(* --- retry and backoff --------------------------------------------- *)

let test_retry_then_succeed () =
  let s = schema () in
  let sup =
    Supervise.create ~policy:(Supervise.retry_policy ~max_attempts:3 ())
      ~prefix:"t" ()
  in
  let calls = ref 0 in
  let handler _ =
    incr calls;
    if !calls <= 2 then failwith "transient"
  in
  Alcotest.(check bool) "eventually delivered" true
    (Supervise.deliver sup ~subscriber:"flappy" ~handler (notification s));
  Alcotest.(check int) "three attempts made" 3 !calls;
  Alcotest.(check int) "two failed attempts" 2 (Supervise.failures sup);
  Alcotest.(check int) "two retries" 2 (Supervise.retries sup);
  Alcotest.(check int) "delivered" 1 (Supervise.delivered sup);
  Alcotest.(check int) "nothing dead-lettered" 0 (Supervise.deadlettered sup);
  match Supervise.trace sup with
  | [ r ] ->
    Alcotest.(check int) "attempts in record" 3 r.Supervise.attempts;
    Alcotest.(check int) "backoffs recorded" 2
      (List.length r.Supervise.backoffs_ns);
    (* Exponential base with jitter shrinking at most half: each
       backoff lies in (base/2, base]. *)
    List.iteri
      (fun i b ->
        let base = 1_000_000.0 *. (2.0 ** float_of_int i) in
        Alcotest.(check bool)
          (Printf.sprintf "backoff %d in range" i)
          true
          (b > (base /. 2.0) -. 1.0 && b <= base))
      r.Supervise.backoffs_ns
  | l -> Alcotest.failf "expected 1 trace record, got %d" (List.length l)

let test_backoff_determinism () =
  let s = schema () in
  let run () =
    let sup =
      Supervise.create
        ~policy:(Supervise.retry_policy ~max_attempts:4 ~jitter_seed:99 ())
        ~prefix:"t" ()
    in
    for _ = 1 to 5 do
      ignore
        (Supervise.deliver sup ~subscriber:"dead"
           ~handler:(fun _ -> failwith "always")
           (notification s))
    done;
    List.map (fun r -> r.Supervise.backoffs_ns) (Supervise.trace sup)
  in
  Alcotest.(check bool) "identical backoff schedule" true (run () = run ())

(* --- injected handler faults --------------------------------------- *)

let test_injected_handler_fault () =
  let s = schema () in
  let faults =
    Fault.plan ~seed:11
      { Fault.none with Fault.handler_failure = [ ("alice", 1.0) ] }
  in
  let b = Broker.create ~faults s in
  let alice_ran = ref false and bob_ran = ref 0 in
  let _ =
    Result.get_ok
      (Broker.subscribe_text b ~subscriber:"alice" "x >= 0" (fun _ ->
           alice_ran := true))
  in
  let _ =
    Result.get_ok
      (Broker.subscribe_text b ~subscriber:"bob" "x >= 0" (fun _ -> incr bob_ran))
  in
  for i = 0 to 4 do
    ignore (Broker.publish b (event s (i mod 10) "a"))
  done;
  Alcotest.(check bool) "alice's handler never even ran" false !alice_ran;
  Alcotest.(check int) "bob delivered every time" 5 !bob_ran;
  Alcotest.(check int) "alice dead-lettered every time" 5
    (Deadletter.length (Broker.deadletter b));
  Deadletter.iter (Broker.deadletter b) (fun e ->
      Alcotest.(check string) "injected error" "injected: alice"
        e.Deadletter.error);
  Alcotest.(check int) "notifications count bob only" 5 (Broker.notifications b)

let test_fault_trace_determinism () =
  let s = schema () in
  let spec =
    { Fault.none with Fault.handler_failure = [ ("alice", 0.4) ] }
  in
  let run () =
    let faults = Fault.plan ~seed:21 spec in
    let b =
      Broker.create ~faults
        ~retry:(Supervise.retry_policy ~max_attempts:2 ~jitter_seed:21 ())
        s
    in
    let _ =
      Result.get_ok
        (Broker.subscribe_text b ~subscriber:"alice" "x >= 0" (fun _ -> ()))
    in
    for i = 0 to 39 do
      ignore (Broker.publish b (event ~time:(float_of_int i) s (i mod 10) "a"))
    done;
    let sup = Broker.supervisor b in
    ( List.map (Format.asprintf "%a" Fault.pp_fault) (Fault.trace faults),
      List.map (Format.asprintf "%a" Supervise.pp_record) (Supervise.trace sup),
      List.map
        (fun e -> (e.Deadletter.seq, e.Deadletter.attempts, e.Deadletter.error))
        (Deadletter.entries (Broker.deadletter b)),
      (Supervise.failures sup, Supervise.retries sup, Supervise.deadlettered sup)
    )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical fault run" true (a = b);
  let faults, records, dlq, (failures, _, _) = a in
  Alcotest.(check bool) "some faults actually fired" true
    (List.length faults > 0 && failures > 0 && List.length records > 0);
  Alcotest.(check bool) "dead letters present" true (List.length dlq > 0)

(* --- circuit breaker ------------------------------------------------ *)

let test_circuit_breaker_lifecycle () =
  let s = schema () in
  let sup =
    Supervise.create
      ~policy:(Supervise.retry_policy ~max_attempts:1 ~trip_after:2 ~cooldown:2 ())
      ~prefix:"t" ()
  in
  let failing = ref true in
  let calls = ref 0 in
  let handler _ =
    incr calls;
    if !failing then failwith "down"
  in
  let deliver () =
    Supervise.deliver sup ~subscriber:"shaky" ~handler (notification s)
  in
  (* Two consecutive terminal failures trip the breaker. *)
  Alcotest.(check bool) "first failure" false (deliver ());
  Alcotest.(check Alcotest.bool) "still closed" true
    (Supervise.circuit sup "shaky" = Supervise.Closed);
  Alcotest.(check bool) "second failure" false (deliver ());
  Alcotest.(check bool) "tripped" true
    (Supervise.circuit sup "shaky" = Supervise.Open);
  Alcotest.(check int) "one trip" 1 (Supervise.trips sup);
  (* While open, deliveries are short-circuited without invoking the
     handler, and dead-lettered with zero attempts. *)
  let before = !calls in
  Alcotest.(check bool) "short-circuited" false (deliver ());
  Alcotest.(check int) "handler skipped" before !calls;
  Alcotest.(check int) "one short circuit" 1 (Supervise.short_circuited sup);
  (* The cooldown elapses: next delivery is a half-open probe, and a
     successful probe closes the circuit. *)
  failing := false;
  Alcotest.(check bool) "probe delivers" true (deliver ());
  Alcotest.(check bool) "closed again" true
    (Supervise.circuit sup "shaky" = Supervise.Closed);
  (* A failing probe re-trips instead. *)
  failing := true;
  Alcotest.(check bool) "fail once" false (deliver ());
  Alcotest.(check bool) "fail twice -> open" false (deliver ());
  Alcotest.(check int) "second trip" 2 (Supervise.trips sup);
  ignore (deliver ());  (* short-circuit consumes the cooldown *)
  Alcotest.(check bool) "failing probe" false (deliver ());
  Alcotest.(check bool) "reopened" true
    (Supervise.circuit sup "shaky" = Supervise.Open);
  Alcotest.(check int) "re-trip counted" 3 (Supervise.trips sup)

(* Half-open discipline: after the cooldown the supervisor risks
   exactly one probe attempt — the policy's retry budget does not apply
   to probes — and a failing probe re-opens the circuit immediately. *)
let test_half_open_single_probe () =
  let s = schema () in
  let sup =
    Supervise.create
      ~policy:(Supervise.retry_policy ~max_attempts:3 ~trip_after:2 ~cooldown:2 ())
      ~prefix:"t" ()
  in
  let calls = ref 0 in
  let handler _ =
    incr calls;
    failwith "down"
  in
  let deliver () =
    Supervise.deliver sup ~subscriber:"shaky" ~handler (notification s)
  in
  (* Two terminal failures (three attempts each) trip the breaker. *)
  ignore (deliver ());
  ignore (deliver ());
  Alcotest.(check bool) "tripped" true
    (Supervise.circuit sup "shaky" = Supervise.Open);
  Alcotest.(check int) "three attempts per terminal failure" 6 !calls;
  let retries_before = Supervise.retries sup in
  Alcotest.(check int) "two retries per terminal failure" 4 retries_before;
  (* A short-circuited delivery consumes the cooldown without touching
     the handler. *)
  ignore (deliver ());
  Alcotest.(check int) "short circuit skips the handler" 6 !calls;
  (* The next delivery is the half-open probe: exactly one attempt,
     even though the policy allows three, and no retries are burned. *)
  Alcotest.(check bool) "probe fails" false (deliver ());
  Alcotest.(check int) "exactly one probe attempt" 7 !calls;
  Alcotest.(check int) "no retry budget consumed" retries_before
    (Supervise.retries sup);
  Alcotest.(check bool) "probe failure re-opens" true
    (Supervise.circuit sup "shaky" = Supervise.Open);
  match List.rev (Deadletter.entries (Supervise.deadletter sup)) with
  | e :: _ ->
    Alcotest.(check int) "probe dead-lettered after one attempt" 1
      e.Deadletter.attempts
  | [] -> Alcotest.fail "expected the probe's dead letter"

(* --- dead-letter bounds --------------------------------------------- *)

let test_deadletter_bounds () =
  let s = schema () in
  let sup = Supervise.create ~deadletter_capacity:2 ~prefix:"t" () in
  for _ = 1 to 3 do
    ignore
      (Supervise.deliver sup ~subscriber:"gone"
         ~handler:(fun _ -> failwith "nope")
         (notification s))
  done;
  let dlq = Supervise.deadletter sup in
  Alcotest.(check int) "bounded length" 2 (Deadletter.length dlq);
  Alcotest.(check int) "one evicted" 1 (Deadletter.dropped dlq);
  Alcotest.(check int) "all pushes counted" 3 (Deadletter.total dlq);
  (* Eviction is oldest-first: the survivors are deliveries 1 and 2. *)
  Alcotest.(check (list int)) "oldest evicted" [ 1; 2 ]
    (List.map (fun e -> e.Deadletter.seq) (Deadletter.entries dlq));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Deadletter.create: negative capacity") (fun () ->
      ignore (Deadletter.create ~capacity:(-1) ()))

(* --- link faults on a routed network -------------------------------- *)

let line_with spec =
  let s = schema () in
  let faults = Fault.plan ~seed:3 spec in
  let net = Router.line s ~nodes:3 ~faults in
  let hits = ref 0 in
  ignore
    (Router.subscribe net ~at:2 ~subscriber:"edge"
       ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 5)) ])
       (fun _ -> incr hits));
  (s, net, hits)

let test_link_drop () =
  let s, net, hits = line_with { Fault.none with Fault.link_drop = 1.0 } in
  Alcotest.(check int) "nothing arrives" 0 (Router.publish net ~at:0 (event s 7 "a"));
  Alcotest.(check int) "handler silent" 0 !hits;
  Alcotest.(check int) "first hop dropped" 1 (Router.link_drops net);
  (* The dropped message still went out on the wire. *)
  Alcotest.(check int) "send counted" 1 (Router.event_messages net)

let test_link_duplicate () =
  let s, net, hits = line_with { Fault.none with Fault.link_duplicate = 1.0 } in
  (* Both hops duplicate: 2 copies reach node 1, each spawns 2 at
     node 2 -> 4 deliveries from 3 duplicated forwards. *)
  Alcotest.(check int) "amplified delivery" 4
    (Router.publish net ~at:0 (event s 7 "a"));
  Alcotest.(check int) "handler ran four times" 4 !hits;
  Alcotest.(check int) "three forwards duplicated" 3 (Router.link_duplicates net);
  Alcotest.(check int) "duplicates are wire messages" 6 (Router.event_messages net)

let test_link_delay () =
  let s, net, hits = line_with { Fault.none with Fault.link_delay = 1.0 } in
  (* Delays park the hop but it still drains within the publish. *)
  Alcotest.(check int) "delivered despite delays" 1
    (Router.publish net ~at:0 (event s 7 "a"));
  Alcotest.(check int) "handler ran" 1 !hits;
  Alcotest.(check int) "both hops delayed" 2 (Router.link_delays net)

let test_broker_pause () =
  let s, net, hits = line_with { Fault.none with Fault.broker_pause = 1.0 } in
  (* Every broker pauses each arrival once; the deferred retry then
     proceeds, so even pause probability 1.0 terminates. *)
  Alcotest.(check int) "delivered despite pauses" 1
    (Router.publish net ~at:0 (event s 7 "a"));
  Alcotest.(check int) "handler ran" 1 !hits;
  Alcotest.(check int) "three brokers paused" 3 (Router.broker_pauses net)

let test_routed_fault_determinism () =
  let s = schema () in
  let spec =
    {
      Fault.none with
      Fault.handler_failure = [ ("edge", 0.3) ];
      link_drop = 0.2;
      link_duplicate = 0.1;
      link_delay = 0.1;
      broker_pause = 0.1;
    }
  in
  let run () =
    let faults = Fault.plan ~seed:17 spec in
    let net =
      Router.line s ~nodes:4 ~faults
        ~retry:(Supervise.retry_policy ~max_attempts:2 ~jitter_seed:17 ())
    in
    let order = ref [] in
    ignore
      (Router.subscribe net ~at:3 ~subscriber:"edge"
         ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int 3)) ])
         (fun n -> order := Event.seq n.Notification.event :: !order));
    for i = 0 to 59 do
      ignore
        (Router.publish net ~at:(i mod 4)
           (event ~time:(float_of_int i) s (i mod 10) "a"))
    done;
    ( List.rev !order,
      Router.notifications net,
      Router.event_messages net,
      (Router.link_drops net, Router.link_duplicates net, Router.link_delays net,
       Router.broker_pauses net),
      List.map (Format.asprintf "%a" Fault.pp_fault) (Fault.trace faults),
      List.map
        (Format.asprintf "%a" Supervise.pp_record)
        (Supervise.trace (Router.supervisor net)) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical routed fault run" true (a = b);
  let _, _, _, (drops, dups, delays, pauses), faults, _ = a in
  Alcotest.(check bool) "all fault kinds exercised" true
    (drops > 0 && dups > 0 && delays > 0 && pauses > 0
    && List.length faults > 0)

(* --- differential: a zero-probability plan changes nothing ----------- *)

let test_zero_plan_differential_broker () =
  let s = schema () in
  let run faults =
    let b = match faults with None -> Broker.create s | Some f -> Broker.create ~faults:f s in
    let log = ref [] in
    let subscribe who text =
      ignore
        (Result.get_ok
           (Broker.subscribe_text b ~subscriber:who text (fun n ->
                log := (n.Notification.subscriber, Event.seq n.Notification.event) :: !log)))
    in
    subscribe "alice" "x >= 5";
    subscribe "bob" "k = a";
    subscribe "carol" "x <= 2 && k = b";
    for i = 0 to 49 do
      ignore
        (Broker.publish b
           (event ~time:(float_of_int i) s (i mod 10) (if i mod 3 = 0 then "a" else "b")))
    done;
    let ops = Broker.ops b in
    ( List.rev !log,
      Broker.published b,
      Broker.notifications b,
      (ops.Ops.comparisons, ops.Ops.node_visits, ops.Ops.events, ops.Ops.matches) )
  in
  let plain = run None in
  let zeroed = run (Some (Fault.plan ~seed:5 Fault.none)) in
  Alcotest.(check bool)
    "no-op plan: identical deliveries and comparison counters" true
    (plain = zeroed)

let test_zero_plan_differential_router () =
  let s = schema () in
  let run faults =
    let net =
      match faults with
      | None -> Router.line s ~nodes:4
      | Some f -> Router.line s ~nodes:4 ~faults:f
    in
    let log = ref [] in
    List.iter
      (fun (at, who, lo) ->
        ignore
          (Router.subscribe net ~at ~subscriber:who
             ~profile:(Profile.create_exn s [ ("x", Predicate.Ge (Value.Int lo)) ])
             (fun n ->
               log :=
                 (n.Notification.subscriber, n.Notification.broker,
                  Event.seq n.Notification.event)
                 :: !log)))
      [ (0, "a", 2); (2, "b", 5); (3, "c", 8) ];
    for i = 0 to 49 do
      ignore
        (Router.publish net ~at:(i mod 4)
           (event ~time:(float_of_int i) s (i mod 10) "a"))
    done;
    ( List.rev !log,
      Router.notifications net,
      Router.event_messages net,
      Router.sub_messages net )
  in
  let plain = run None in
  let zeroed = run (Some (Fault.plan ~seed:5 Fault.none)) in
  Alcotest.(check bool)
    "no-op plan: identical routed delivery order and message counts" true
    (plain = zeroed)

let () =
  Alcotest.run "fault"
    [
      ( "validation",
        [
          Alcotest.test_case "fault plan" `Quick test_plan_validation;
          Alcotest.test_case "retry policy" `Quick test_policy_validation;
        ] );
      ( "retry",
        [
          Alcotest.test_case "retry then succeed" `Quick test_retry_then_succeed;
          Alcotest.test_case "backoff determinism" `Quick test_backoff_determinism;
        ] );
      ( "injection",
        [
          Alcotest.test_case "injected handler fault" `Quick
            test_injected_handler_fault;
          Alcotest.test_case "fault trace determinism" `Quick
            test_fault_trace_determinism;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "lifecycle" `Quick test_circuit_breaker_lifecycle;
          Alcotest.test_case "half-open single probe" `Quick
            test_half_open_single_probe;
        ] );
      ( "deadletter",
        [ Alcotest.test_case "bounds" `Quick test_deadletter_bounds ] );
      ( "links",
        [
          Alcotest.test_case "drop" `Quick test_link_drop;
          Alcotest.test_case "duplicate" `Quick test_link_duplicate;
          Alcotest.test_case "delay" `Quick test_link_delay;
          Alcotest.test_case "broker pause" `Quick test_broker_pause;
          Alcotest.test_case "routed determinism" `Quick
            test_routed_fault_determinism;
        ] );
      ( "differential",
        [
          Alcotest.test_case "broker zero plan" `Quick
            test_zero_plan_differential_broker;
          Alcotest.test_case "router zero plan" `Quick
            test_zero_plan_differential_router;
        ] );
    ]
