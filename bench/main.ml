(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (printed as plain-text tables; see EXPERIMENTS.md
   for the paper-vs-measured record) and runs Bechamel wall-clock
   benches of the matchers.

   Usage: main.exe [fig3|fig4a|fig4b|fig5|fig6a|fig6b|tv|ablation|
                    baselines|timing|all]... (default: all) *)

module Figures = Genas_expt.Figures
module Report = Genas_expt.Report
module Workload = Genas_expt.Workload
module Prng = Genas_prng.Prng
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Event = Genas_model.Event
module Dist = Genas_dist.Dist
module Shape = Genas_dist.Shape
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Flat = Genas_filter.Flat
module Pool = Genas_filter.Pool
module Naive = Genas_filter.Naive
module Counting = Genas_filter.Counting
module Stats = Genas_core.Stats
module Selectivity = Genas_core.Selectivity
module Reorder = Genas_core.Reorder
module Profile_set = Genas_profile.Profile_set
module Broker = Genas_ens.Broker
module Trace = Genas_obs.Trace

(* ------------------------------------------------------------------ *)
(* Bechamel timing suite: one Test.make per matcher / per table-sized
   workload.                                                           *)

let timing_workload () =
  let schema = Workload.normalized_schema ~attrs:3 ~points:100 () in
  let axes =
    Array.init 3 (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let rng = Prng.create ~seed:99 in
  let pset =
    Workload.gen_profiles rng schema
      {
        Workload.p = 500;
        dontcare = [| 0.3; 0.3; 0.3 |];
        value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
        range_width = None;
      }
  in
  let decomp = Decomp.build pset in
  let stats = Stats.create decomp in
  let dists = Array.map Dist.uniform axes in
  (* A fixed pool of pre-built events so the benches measure matching,
     not sampling. *)
  let events =
    Array.init 1024 (fun _ ->
        let coords = Workload.event_coords rng dists in
        Event.of_values_exn schema
          (Array.mapi
             (fun i c -> Axis.value (Schema.attribute schema i).Schema.domain c)
             coords))
  in
  (schema, pset, decomp, stats, events)

(* A broker over the timing workload's 500 profiles with null
   handlers: [sample = None] is the pre-tracing publish path,
   [Some 0.0] attaches a never-sampling tracer (the disabled-tracing
   cost), [Some 1.0] traces every publish into the flight recorder. *)
let publish_broker schema pset sample =
  let b =
    match sample with
    | None -> Broker.create schema
    | Some sample ->
      Broker.create ~tracer:(Trace.create ~sample ~seed:100 ()) schema
  in
  Profile_set.iter pset (fun id p ->
      ignore
        (Broker.subscribe b ~subscriber:(string_of_int id) ~profile:p
           (fun _ -> ())));
  b

let timing_tests () =
  let open Bechamel in
  let schema, pset, decomp, stats, events = timing_workload () in
  let idx = ref 0 in
  let next_event () =
    let e = events.(!idx) in
    idx := (!idx + 1) land 1023;
    e
  in
  let naive = Naive.build pset in
  let counting = Counting.build pset in
  let tree_nat = Tree.build decomp (Tree.default_config decomp) in
  let tree_v1 =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A2, `Descending);
        value_choice = `Measure Selectivity.V1 }
  in
  let tree_bin =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary }
  in
  (* Batches of 32 events per run: single matches sit in the noise
     floor of the clock. Reported ns/run is therefore per 32 events. *)
  let match_test name f =
    Test.make ~name
      (Staged.stage (fun () ->
           for _ = 1 to 32 do
             f (next_event ())
           done))
  in
  Test.make_grouped ~name:"genas"
    [
      (* Fig. 4/5 matchers (value strategies). *)
      match_test "match/naive" (fun e -> ignore (Naive.match_event naive e));
      match_test "match/counting" (fun e -> ignore (Counting.match_event counting e));
      match_test "match/tree-natural" (fun e -> ignore (Tree.match_event tree_nat e));
      match_test "match/tree-V1+A2" (fun e -> ignore (Tree.match_event tree_v1 e));
      match_test "match/tree-binary" (fun e -> ignore (Tree.match_event tree_bin e));
      (* Flat-vs-pointer: the same trees, compiled (one reusable cursor
         per test, as in the engine's steady state). *)
      (let flat = Flat.compile tree_nat in
       let cur = Flat.cursor flat in
       match_test "match/flat-natural" (fun e ->
           ignore (Flat.match_into flat cur e)));
      (let flat = Flat.compile tree_v1 in
       let cur = Flat.cursor flat in
       match_test "match/flat-V1+A2" (fun e ->
           ignore (Flat.match_into flat cur e)));
      (let flat = Flat.compile tree_bin in
       let cur = Flat.cursor flat in
       match_test "match/flat-binary" (fun e ->
           ignore (Flat.match_into flat cur e)));
      (* Packed batch: the event pool resolved once to the int image,
         matching touches int arrays only. One run = 32 packed events,
         like every match/* test. *)
      (let flat = Flat.compile tree_v1 in
       let cur = Flat.cursor flat in
       let packed = Flat.pack_batch flat events in
       let pidx = ref 0 in
       Test.make ~name:"match/flat-packed-V1+A2"
         (Staged.stage (fun () ->
              for _ = 1 to 32 do
                ignore (Flat.match_packed_into flat cur packed !pidx);
                pidx := (!pidx + 1) land 1023
              done)));
      (* Tracing overhead on the full publish path (matching +
         supervised delivery): untraced vs tracer-attached-but-never-
         sampling vs fully traced. *)
      (let b = publish_broker schema pset None in
       match_test "publish/untraced" (fun e -> ignore (Broker.publish b e)));
      (let b = publish_broker schema pset (Some 0.0) in
       match_test "publish/traced-off" (fun e -> ignore (Broker.publish b e)));
      (let b = publish_broker schema pset (Some 1.0) in
       match_test "publish/traced" (fun e -> ignore (Broker.publish b e)));
      (* TV1: construction cost. *)
      Test.make ~name:"build/tree-500p"
        (Staged.stage (fun () ->
             ignore (Tree.build decomp (Tree.default_config decomp))));
      Test.make ~name:"build/decomp-500p"
        (Staged.stage (fun () -> ignore (Decomp.build pset)));
    ]

let run_timing () =
  let open Bechamel in
  let tests = timing_tests () in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.0f" x
        | Some [] | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      rows := [ name; ns; r2 ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Report.table ~title:"Wall-clock (Bechamel, monotonic clock)"
    ~columns:[ "benchmark"; "ns/run"; "r²" ]
    ~notes:[ "500 profiles, 3 attributes, uniform events; match/* runs \
             cover 32 events each" ]
    rows


(* ------------------------------------------------------------------ *)
(* Multicore throughput: the compiled flat matcher and the packed
   event image are immutable, so the persistent pool's workers share
   them with zero coordination; work-stealing keeps every domain busy
   on skewed batches.                                                  *)

let run_parallel () =
  let _, _, decomp, stats, events = timing_workload () in
  let tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A2, `Descending);
        value_choice = `Measure Selectivity.V1 }
  in
  ignore decomp;
  let flat = Flat.compile tree in
  let batches = 200 in
  let measure pool =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batches do
      ignore (Pool.match_batch pool flat events)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    ( float_of_int (batches * Array.length events) /. dt,
      Pool.last_steals pool )
  in
  let cores = Domain.recommended_domain_count () in
  let candidates = List.sort_uniq Int.compare [ 1; min 2 cores; min 4 cores ] in
  let rates =
    List.map
      (fun d ->
        let p = Pool.create ~domains:d () in
        let rate, steals = measure p in
        Pool.shutdown p;
        (d, rate, steals))
      candidates
  in
  let base =
    match rates with (_, r, _) :: _ -> r | [] -> 1.0
  in
  let rows =
    List.map
      (fun (d, rate, steals) ->
        [
          string_of_int d;
          Printf.sprintf "%.2fM" (rate /. 1e6);
          Printf.sprintf "%.2fx" (rate /. base);
          string_of_int steals;
        ])
      rates
  in
  Report.table ~title:"Multicore throughput — persistent work-stealing pool"
    ~columns:[ "domains"; "events/s"; "speedup"; "last-batch steals" ]
    ~notes:
      [
        Printf.sprintf
          "500 profiles, 3 attributes, V1+A2 flat matcher; 200 batches of \
           1024 packed events; host reports %d available core(s)" cores;
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Perfbench: the flat-vs-pointer and 1-vs-N-domain throughput suite,
   as a table ("perf") or as the BENCH_*.json document ("json").      *)

let perf_events () =
  match Sys.getenv_opt "GENAS_BENCH_EVENTS" with
  | Some s -> (try int_of_string s with _ -> 50_000)
  | None -> 50_000

let run_perf () = Genas_expt.Perfbench.(table (run ~events:(perf_events ()) ()))

let run_perf_json () =
  print_string
    (Genas_obs.Json.to_string
       Genas_expt.Perfbench.(to_json (run ~events:(perf_events ()) ())));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Metrics snapshot: the timing workload replayed through an
   instrumented engine, so wall-clock tables and the observability
   layer's own percentiles can be compared side by side.              *)

let run_metrics_snapshot () =
  let _, pset, _, _, events = timing_workload () in
  let registry = Genas_obs.Metrics.create () in
  let engine = Genas_core.Engine.create ~metrics:registry pset in
  let n = Array.length events in
  for i = 0 to (8 * n) - 1 do
    ignore (Genas_core.Engine.match_event engine events.(i mod n))
  done;
  print_string (Genas_obs.Metrics.to_json registry)

let tables_of_target = function
  | "fig3" -> [ Figures.fig3 () ]
  | "fig4a" -> [ Figures.fig4a () ]
  | "fig4b" -> [ Figures.fig4b () ]
  | "fig5" -> Figures.fig5 ()
  | "fig6a" -> [ Figures.fig6a () ]
  | "fig6b" -> [ Figures.fig6b () ]
  | "tv" -> [ Figures.tv_scenarios () ]
  | "ablation" -> [ Figures.ablation_sharing () ]
  | "baselines" -> [ Figures.baseline_comparison () ]
  | "outlook" -> [ Figures.outlook_strategies () ]
  | "quench" -> [ Figures.ablation_quench () ]
  | "routing" -> [ Figures.ablation_routing () ]
  | "adaptive" -> [ Figures.ablation_adaptive () ]
  | "correlated" -> [ Figures.correlated () ]
  | "dontcare" -> [ Figures.dontcare_influence () ]
  | "queueing" -> [ Figures.queueing () ]
  | "orderings8" -> [ Figures.orderings8 () ]
  | "fragility" -> [ Figures.fragility () ]
  | "timing" -> [ run_timing () ]
  | "parallel" -> [ run_parallel () ]
  | "perf" -> [ run_perf () ]
  | other ->
    Printf.eprintf "unknown bench target %S\n" other;
    exit 2

let csv_name target i n =
  if n = 1 then target ^ ".csv" else Printf.sprintf "%s_%d.csv" target (i + 1)

let run_figure ?csv_dir target =
  if target = "metrics" then run_metrics_snapshot ()
  else if target = "json" then run_perf_json ()
  else begin
  let tables = tables_of_target target in
  let n = List.length tables in
  List.iteri
    (fun i table ->
      Report.print table;
      match csv_dir with
      | None -> ()
      | Some dir ->
        let path = Filename.concat dir (csv_name target i n) in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Report.to_csv table)))
    tables
  end

let all_targets =
  [ "fig3"; "fig4a"; "fig4b"; "fig5"; "fig6a"; "fig6b"; "tv"; "ablation";
    "baselines"; "outlook"; "quench"; "routing"; "adaptive"; "correlated"; "dontcare"; "queueing"; "orderings8"; "fragility"; "timing"; "parallel"; "perf"; "metrics" ]

let () =
  let rest =
    match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest
  in
  let csv_dir, rest =
    match rest with
    | "--csv" :: dir :: rest -> (Some dir, rest)
    | rest -> (None, rest)
  in
  let args = match rest with [] | "all" :: _ -> all_targets | rest -> rest in
  List.iter (run_figure ?csv_dir) args
