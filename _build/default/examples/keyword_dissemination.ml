(* Keyword-based selective dissemination — the SIFT scenario of the
   paper's references [14,15] (Yan & Garcia-Molina), which §2 cites as
   the inspiration for ranked/tree-based filtering: users subscribe to
   keyword conjunctions, documents are bags of words.

   The vocabulary becomes a wide boolean schema (one attribute per
   word). This is exactly the workload where the determinized profile
   tree is the WRONG structure — don't-care duplication across hundreds
   of levels blows the DFSA up (see DESIGN.md) — and where the counting
   algorithm (SIFT's own) shines. Having both matchers behind one
   profile model lets an application pick per workload.

   Run with: dune exec examples/keyword_dissemination.exe *)

module Prng = Genas_prng.Prng
module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Counting = Genas_filter.Counting
module Naive = Genas_filter.Naive
module Ops = Genas_filter.Ops

let vocab_size = 200

let subscriptions = 2000

let () =
  let schema =
    Schema.create_exn
      (List.init vocab_size (fun i -> (Printf.sprintf "word%03d" i, Domain.bool_dom)))
  in
  let rng = Prng.create ~seed:2002 in
  (* Zipf-ish word popularity: squaring a uniform draw skews towards
     low word indices — popular terms attract most subscriptions. *)
  let popular_word () =
    min (vocab_size - 1)
      (int_of_float (float_of_int vocab_size *. (Prng.float rng ~bound:1.0 ** 2.0)))
  in
  let pset = Profile_set.create schema in
  for _ = 1 to subscriptions do
    let k = 2 + Prng.int rng ~bound:3 in
    let words = ref [] in
    while List.length !words < k do
      let w = popular_word () in
      if not (List.mem w !words) then words := w :: !words
    done;
    ignore
      (Profile_set.add pset
         (Profile.create_exn schema
            (List.map
               (fun w ->
                 (Printf.sprintf "word%03d" w, Predicate.Eq (Value.Bool true)))
               !words)))
  done;

  Format.printf
    "SIFT-style dissemination: %d keyword subscriptions over a %d-word \
     vocabulary@."
    subscriptions vocab_size;

  let t0 = Sys.time () in
  let counting = Counting.build pset in
  Format.printf "counting matcher built in %.3fs@." (Sys.time () -. t0);
  let naive = Naive.build pset in

  let document () =
    let present = Array.make vocab_size false in
    for _ = 1 to 10 do
      present.(popular_word ()) <- true
    done;
    Event.of_values_exn schema (Array.map (fun b -> Value.Bool b) present)
  in

  let oc = Ops.create () and on = Ops.create () in
  let docs = 500 in
  let delivered = ref 0 in
  for _ = 1 to docs do
    let doc = document () in
    let matched = Counting.match_event ~ops:oc counting doc in
    delivered := !delivered + List.length matched;
    (* The naive matcher is the oracle; both must agree. *)
    if Naive.match_event ~ops:on naive doc <> matched then
      failwith "matchers disagree"
  done;

  Format.printf "%d documents, %d notifications@." docs !delivered;
  Format.printf "  counting: %8.1f ops/document@." (Ops.per_event oc);
  Format.printf "  naive:    %8.1f ops/document@." (Ops.per_event on);
  Format.printf
    "@.(The profile tree is deliberately absent here: determinizing %d \
     don't-care-heavy boolean attributes explodes the DFSA — see \
     DESIGN.md, 'choosing a matcher'.)@."
    vocab_size
