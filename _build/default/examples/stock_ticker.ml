(* Stock ticker — the paper's motivating scenario (§1): "users are
   mainly interested in a small range of values for certain shares; the
   event data display high concentrations at selected values."

   Demonstrates V3 (event x profile) reordering, per-profile
   notification latency (the Fig. 5(b) metric), and Elvin-style
   quenching at the publisher.

   Run with: dune exec examples/stock_ticker.exe *)

module Prng = Genas_prng.Prng
module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Lang = Genas_profile.Lang
module Broker = Genas_ens.Broker
module Quench = Genas_ens.Quench
module Selectivity = Genas_core.Selectivity
module Cost = Genas_core.Cost
module Engine = Genas_core.Engine
module Reorder = Genas_core.Reorder
module Decomp = Genas_filter.Decomp

let symbols = [ "ACME"; "GLOBEX"; "INITECH"; "UMBRELLA"; "WONKA"; "STARK" ]

let () =
  let schema =
    Schema.create_exn
      [
        ("symbol", Domain.enum symbols);
        ("price", Domain.float_range ~lo:0.0 ~hi:500.0);
        ("volume", Domain.int_range ~lo:0 ~hi:1_000_000);
      ]
  in
  let broker =
    Broker.create
      ~spec:
        { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A2, `Descending);
          value_choice = `Measure Selectivity.V3 }
      schema
  in
  let deliveries = Hashtbl.create 16 in
  let count n =
    let s = n.Genas_ens.Notification.subscriber in
    Hashtbl.replace deliveries s
      (1 + Option.value ~default:0 (Hashtbl.find_opt deliveries s))
  in
  (* Concentrated interest: most subscriptions watch ACME near its
     current price. *)
  let rng = Prng.create ~seed:31 in
  for i = 1 to 40 do
    let src =
      if i <= 30 then
        Printf.sprintf "symbol = ACME && price >= %.0f"
          (Prng.float_in rng ~lo:95.0 ~hi:110.0)
      else
        Printf.sprintf "symbol = %s && price >= %.0f"
          (List.nth symbols (1 + Prng.int rng ~bound:5))
          (Prng.float_in rng ~lo:50.0 ~hi:400.0)
    in
    match
      Broker.subscribe_text broker ~subscriber:(Printf.sprintf "trader%02d" i)
        src count
    with
    | Ok _ -> ()
    | Error e -> failwith e
  done;

  (* Tick stream: ACME trades dominate, prices cluster near 100. *)
  let gen_tick () =
    let sym = if Prng.bernoulli rng ~p:0.7 then "ACME" else Prng.choice rng (Array.of_list symbols) in
    let price =
      if sym = "ACME" then Float.max 0.0 (Prng.gaussian rng ~mu:100.0 ~sigma:8.0)
      else Prng.float_in rng ~lo:10.0 ~hi:450.0
    in
    Event.create_exn schema
      [
        ("symbol", Value.Str sym);
        ("price", Value.Float (Float.min 500.0 price));
        ("volume", Value.Int (Prng.int rng ~bound:1_000_000));
      ]
  in

  (* Publisher-side quenching: ticks no subscription could match are
     suppressed before they reach the broker. *)
  let suppressed = ref 0 and sent = ref 0 in
  for _ = 1 to 20_000 do
    match Broker.publish_quenched broker (gen_tick ()) with
    | Some _ -> incr sent
    | None -> incr suppressed
  done;

  Format.printf "Stock ticker: %d subscriptions, 20000 ticks@."
    (Broker.subscription_count broker);
  Format.printf "  quench suppressed %d ticks at the source (%.1f%%)@."
    !suppressed
    (100.0 *. float_of_int !suppressed /. 20_000.0);
  Format.printf "  broker filtered %d ticks with %.2f comparisons each@."
    !sent
    (Genas_filter.Ops.per_event (Broker.ops broker));
  Format.printf "  %d notifications delivered to %d distinct traders@.@."
    (Broker.notifications broker)
    (Hashtbl.length deliveries);

  (* Per-profile latency (Fig. 5(b)'s metric): the profile-aware V3
     ordering notifies the popular ACME profiles after fewer
     comparisons than the distribution-blind orders do. *)
  let engine = Broker.engine broker in
  let stats = Engine.stats engine in
  let cell_probs =
    Array.init (Decomp.arity (Genas_core.Stats.decomp stats)) (fun attr ->
        Genas_core.Stats.event_cell_probs stats ~attr)
  in
  let avg sel l =
    let l = List.filter (fun r -> Float.is_finite (sel r)) l in
    match l with
    | [] -> Float.nan
    | _ -> List.fold_left (fun a r -> a +. sel r) 0.0 l /. float_of_int (List.length l)
  in
  let crowd_latency value_choice =
    let tree =
      Reorder.build stats
        { Reorder.attr_choice = Reorder.Attr_natural; value_choice }
    in
    let reports = Cost.per_profile tree ~cell_probs in
    let acme, rest = List.partition (fun r -> r.Cost.id < 30) reports in
    ( avg (fun r -> r.Cost.ops_given_match) acme,
      avg (fun r -> r.Cost.ops_given_match) rest )
  in
  Format.printf
    "Expected comparisons before notification (profile-aware ordering \
     favors the crowd):@.";
  List.iter
    (fun (label, choice) ->
      let crowd, tail = crowd_latency choice in
      Format.printf "  %-18s ACME crowd %6.2f ops   long tail %6.2f ops@."
        label crowd tail)
    [
      ("natural order", `Measure Selectivity.V_natural_asc);
      ("binary search", `Binary);
      ("event*profile V3", `Measure Selectivity.V3);
    ]
