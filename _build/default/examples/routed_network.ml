(* Routed notification network — the Siena-style distributed service
   the paper cites as the deployment context for early rejection (§2).

   Five brokers in a line; subscriptions propagate with covering-based
   pruning; events are filtered hop by hop. The message counters show
   what covering saves over naive flooding.

   Run with: dune exec examples/routed_network.exe *)

module Prng = Genas_prng.Prng
module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Lang = Genas_profile.Lang
module Router = Genas_ens.Router

let () =
  let schema =
    Schema.create_exn
      [
        ("topic", Domain.enum [ "weather"; "traffic"; "energy" ]);
        ("severity", Domain.int_range ~lo:0 ~hi:10);
      ]
  in
  let net = Router.line schema ~nodes:5 in
  let received = Hashtbl.create 16 in
  let on_notify n =
    let key = n.Genas_ens.Notification.subscriber in
    Hashtbl.replace received key
      (1 + Option.value ~default:0 (Hashtbl.find_opt received key))
  in
  let subscribe at who src =
    match Lang.parse_profile ~name:who schema src with
    | Error e -> failwith e
    | Ok profile ->
      ignore (Router.subscribe net ~at ~subscriber:who ~profile on_notify)
  in

  (* Broker 4 hosts a broad subscription; brokers 0 and 2 host narrower
     ones that it covers — covering pruning should stop their
     propagation at the brokers the broad one already reached. *)
  subscribe 4 "ops-center" "topic = weather";
  subscribe 0 "commuter" "topic = weather && severity >= 7";
  subscribe 2 "farmer" "topic = weather && severity >= 5";
  subscribe 3 "grid-watch" "topic = energy && severity >= 8";

  Format.printf "Topology: 0 - 1 - 2 - 3 - 4 (line)@.";
  Format.printf "Subscription propagation messages: %d@."
    (Router.sub_messages net);
  Format.printf "  (naive flooding would need %d: every subscription to \
                 every other broker)@.@."
    (4 * 4);

  (* Publish a day of events at the edge brokers. *)
  let rng = Prng.create ~seed:5 in
  let topics = [| "weather"; "traffic"; "energy" |] in
  for _ = 1 to 1000 do
    let event =
      Event.create_exn schema
        [
          ("topic", Value.Str (Prng.choice rng topics));
          ("severity", Value.Int (Prng.int rng ~bound:11));
        ]
    in
    ignore (Router.publish net ~at:(Prng.int rng ~bound:5) event)
  done;

  Format.printf "After 1000 published events:@.";
  Format.printf "  inter-broker event messages: %d@." (Router.event_messages net);
  Format.printf "  notifications delivered:     %d@." (Router.notifications net);
  Hashtbl.iter
    (fun who n -> Format.printf "    %-10s %4d notifications@." who n)
    received;
  Format.printf "@.Per-broker interest tables (local + forwarded):@.";
  for b = 0 to 4 do
    Format.printf "  broker %d: %d interests, %.2f comparisons/event@." b
      (Router.interest_count net b)
      (Genas_filter.Ops.per_event (Router.broker_ops net b))
  done
