(* Facility management — the paper's GENAS prototype in action (§4.2,
   §5): everything is defined at runtime through the generic service
   facade, profiles are persisted to disk and reloaded, and the
   facility's alarm rules run as composite subscriptions.

   Run with: dune exec examples/facility_management.exe *)

module Prng = Genas_prng.Prng
module Value = Genas_model.Value
module Event = Genas_model.Event
module Lang = Genas_profile.Lang
module Profile_set = Genas_profile.Profile_set
module Service = Genas_ens.Service
module Broker = Genas_ens.Broker
module Store = Genas_ens.Store
module Composite = Genas_ens.Composite

let die = function Ok v -> v | Error e -> failwith e

let () =
  (* 1. Define the building's sensor schema at runtime — no compiled-in
     types, exactly the generic-service requirement of §4.2. *)
  let svc = Service.create () in
  die
    (Service.define_schema_text svc ~name:"building"
       [
         "room : enum{lobby, lab, server-room, office}";
         "sensor : enum{temp, power, door}";
         "reading : float[-10,120]";
       ]);
  die (Service.create_broker svc ~name:"facility" ~schema:"building" ());
  let schema = Option.get (Service.find_schema svc "building") in
  let broker = Option.get (Service.find_broker svc "facility") in

  (* 2. Operator console: primitive watch rules through the text API. *)
  let log fmt = Format.printf fmt in
  let watch who src =
    die (Service.subscribe svc ~broker:"facility" ~subscriber:who src
           (fun n ->
             log "  [%s] %s@." who
               (Lang.event_to_string schema n.Genas_ens.Notification.event)))
    |> ignore
  in
  watch "hvac-team" "sensor = temp && reading >= 30 && room = server-room";
  watch "security" "sensor = door && room in {lab, server-room}";
  watch "facilities" "sensor = power && reading <= 10";

  (* 3. Alarm rules as composite events. *)
  let prim src = Composite.Prim (die (Lang.parse_profile schema src)) in
  die
    (Broker.subscribe_composite broker ~subscriber:"OVERHEAT-ALARM"
       (Composite.Repeat
          (prim "sensor = temp && room = server-room && reading >= 35", 3, 120.0))
       (fun n ->
         log "  !! OVERHEAT-ALARM at t=%.0f@."
           (Event.time n.Genas_ens.Notification.event)))
  |> ignore;
  die
    (Broker.subscribe_composite broker ~subscriber:"INTRUSION"
       (Composite.Without
          ( prim "sensor = door && room = server-room",
            prim "sensor = door && room = lobby",
            300.0 ))
       (fun n ->
         log "  !! INTRUSION: server-room door with no lobby entry, t=%.0f@."
           (Event.time n.Genas_ens.Notification.event)))
  |> ignore;

  (* 4. Persist the primitive rule book and show it reloads. *)
  let dir = Filename.get_temp_dir_name () in
  let rules_path = Filename.concat dir "facility_rules.txt" in
  let pset = Profile_set.create schema in
  List.iter
    (fun src -> ignore (Profile_set.add pset (die (Lang.parse_profile schema src))))
    [
      "sensor = temp && reading >= 30 && room = server-room";
      "sensor = door && room in {lab, server-room}";
      "sensor = power && reading <= 10";
    ];
  die (Store.save_profiles rules_path schema pset);
  let reloaded = die (Store.load_profiles schema rules_path) in
  log "rule book saved to %s and reloaded: %d rules@.@." rules_path
    (Profile_set.size reloaded);

  (* 5. A day in the building. *)
  let publish t room sensor reading =
    let e =
      Event.create_exn ~time:t schema
        [
          ("room", Value.Str room); ("sensor", Value.Str sensor);
          ("reading", Value.Float reading);
        ]
    in
    ignore (Broker.publish broker e)
  in
  log "--- morning: normal operation ---@.";
  publish 0.0 "lobby" "door" 1.0;
  publish 10.0 "server-room" "door" 1.0;  (* lobby entry 10s before: fine *)
  publish 60.0 "server-room" "temp" 24.0;
  publish 120.0 "office" "temp" 22.0;

  log "--- afternoon: cooling fails ---@.";
  publish 400.0 "server-room" "temp" 36.0;
  publish 450.0 "server-room" "temp" 38.0;
  publish 500.0 "server-room" "temp" 41.0;  (* third hot reading: alarm *)

  log "--- night: side door opened without lobby entry ---@.";
  publish 9000.0 "server-room" "door" 1.0;

  log "@.%s@." (die (Service.report svc ~broker:"facility"))
