(* Composite events — the extension the paper announces in its outlook
   (§5): temporal combinations of primitive events.

   A facility-management broker raises: a heat alarm after three hot
   readings within a window, an HVAC-failure alarm when heat follows a
   power dip, and a "silent sensor" alarm when heat occurs with no
   recent heartbeat.

   Run with: dune exec examples/composite_alerts.exe *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Predicate = Genas_profile.Predicate
module Broker = Genas_ens.Broker
module Composite = Genas_ens.Composite

let () =
  let schema =
    Schema.create_exn
      [
        ("kind", Domain.enum [ "temp"; "power"; "heartbeat" ]);
        ("level", Domain.float_range ~lo:0.0 ~hi:100.0);
      ]
  in
  let broker = Broker.create schema in
  let prim kind test =
    Profile.create_exn schema ([ ("kind", Predicate.Eq (Value.Str kind)) ] @ test)
  in
  let hot = prim "temp" [ ("level", Predicate.Ge (Value.Float 80.0)) ] in
  let power_dip = prim "power" [ ("level", Predicate.Le (Value.Float 20.0)) ] in
  let heartbeat = prim "heartbeat" [] in

  let subscribe_composite name expr =
    match
      Broker.subscribe_composite broker ~subscriber:name expr (fun n ->
          Format.printf "  !! %-14s fired at t=%.0f@." name
            (Event.time n.Genas_ens.Notification.event))
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  subscribe_composite "heat-alarm"
    (Composite.Repeat (Composite.Prim hot, 3, 60.0));
  subscribe_composite "hvac-failure"
    (Composite.Seq (Composite.Prim power_dip, Composite.Prim hot, 120.0));
  subscribe_composite "silent-sensor"
    (Composite.Without (Composite.Prim hot, Composite.Prim heartbeat, 30.0));

  let publish t kind level =
    let e =
      Event.create_exn ~time:t schema
        [ ("kind", Value.Str kind); ("level", Value.Float level) ]
    in
    Format.printf "t=%3.0f  %-9s level=%.0f@." t kind level;
    ignore (Broker.publish broker e)
  in

  Format.printf "--- normal operation (heartbeats present) ---@.";
  publish 0.0 "heartbeat" 1.0;
  publish 10.0 "temp" 85.0;  (* hot, but heartbeat 10s ago -> no silent-sensor *)
  publish 20.0 "heartbeat" 1.0;
  publish 25.0 "temp" 84.0;
  publish 40.0 "temp" 90.0;  (* third hot reading within 60s -> heat-alarm *)

  Format.printf "@.--- power dip followed by heat ---@.";
  publish 100.0 "power" 10.0;
  publish 150.0 "temp" 88.0;  (* hot soon after the dip -> hvac-failure *)

  Format.printf "@.--- heartbeats stop ---@.";
  publish 300.0 "temp" 95.0;  (* no heartbeat for 280s -> silent-sensor *)

  Format.printf "@.%d notifications in total@." (Broker.notifications broker)
