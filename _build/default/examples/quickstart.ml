(* Quickstart: define a schema, subscribe with the profile language,
   publish events, observe notifications.

   Run with: dune exec examples/quickstart.exe *)

module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Lang = Genas_profile.Lang
module Broker = Genas_ens.Broker
module Notification = Genas_ens.Notification

let () =
  (* 1. A schema fixes the attributes all events and profiles use. *)
  let schema =
    Schema.create_exn
      [
        ("temperature", Domain.float_range ~lo:(-30.0) ~hi:50.0);
        ("humidity", Domain.float_range ~lo:0.0 ~hi:100.0);
        ("radiation", Domain.float_range ~lo:1.0 ~hi:100.0);
      ]
  in

  (* 2. A broker owns the subscriptions and the filter tree. *)
  let broker = Broker.create schema in

  let show prefix n =
    Format.printf "  %s <- %a@." prefix (Notification.pp schema) n
  in

  let subscribe who src =
    match Broker.subscribe_text broker ~subscriber:who src (show who) with
    | Ok _ -> Format.printf "subscribed %-7s %s@." who src
    | Error e -> Format.printf "rejected %s: %s@." who e
  in
  subscribe "alice" "temperature >= 35 && humidity >= 90";
  subscribe "bob" "temperature >= 30 && humidity >= 90";
  subscribe "carol" "temperature in [-30,-20] && radiation in [40,100]";
  subscribe "dave" "";  (* all events *)

  (* 3. Publish events; matching profiles get notified. *)
  let publish src =
    match Lang.parse_event schema src with
    | Error e -> Format.printf "bad event %S: %s@." src e
    | Ok event ->
      let n = Broker.publish broker event in
      Format.printf "published {%s} -> %d notification(s)@." src n
  in
  Format.printf "@.";
  publish "temperature = 30, humidity = 90, radiation = 2";
  publish "temperature = 40, humidity = 95, radiation = 10";
  publish "temperature = -25, humidity = 50, radiation = 80";
  publish "temperature = 10, humidity = 10, radiation = 5";

  (* 4. The broker counts the comparison operations the paper measures. *)
  let ops = Broker.ops broker in
  Format.printf "@.%d events filtered with %d comparisons (%.2f per event)@."
    ops.Genas_filter.Ops.events ops.Genas_filter.Ops.comparisons
    (Genas_filter.Ops.per_event ops)
