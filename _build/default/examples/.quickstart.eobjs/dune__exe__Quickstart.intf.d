examples/quickstart.mli:
