examples/quickstart.ml: Format Genas_ens Genas_filter Genas_model Genas_profile
