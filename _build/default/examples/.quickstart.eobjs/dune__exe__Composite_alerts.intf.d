examples/composite_alerts.mli:
