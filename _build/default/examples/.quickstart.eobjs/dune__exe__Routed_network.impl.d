examples/routed_network.ml: Format Genas_ens Genas_filter Genas_model Genas_prng Genas_profile Hashtbl Option
