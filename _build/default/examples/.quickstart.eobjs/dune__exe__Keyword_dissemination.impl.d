examples/keyword_dissemination.ml: Array Format Genas_filter Genas_model Genas_prng Genas_profile List Printf Sys
