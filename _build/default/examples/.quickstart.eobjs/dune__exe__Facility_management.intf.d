examples/facility_management.mli:
