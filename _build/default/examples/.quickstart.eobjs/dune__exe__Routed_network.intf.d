examples/routed_network.mli:
