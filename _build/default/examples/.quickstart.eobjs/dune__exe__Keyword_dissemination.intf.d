examples/keyword_dissemination.mli:
