examples/stock_ticker.ml: Array Float Format Genas_core Genas_ens Genas_filter Genas_model Genas_prng Genas_profile Hashtbl List Option Printf
