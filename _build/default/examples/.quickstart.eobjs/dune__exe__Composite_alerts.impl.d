examples/composite_alerts.ml: Format Genas_ens Genas_model Genas_profile
