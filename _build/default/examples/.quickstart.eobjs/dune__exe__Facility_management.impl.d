examples/facility_management.ml: Filename Format Genas_ens Genas_model Genas_prng Genas_profile List Option
