(* Environmental monitoring — the paper's running example (§3) plus its
   catastrophe-warning scenario (§1): sensors deliver equally
   distributed readings, but subscriptions concentrate on a small range
   of dangerous values, so the distribution-based tree beats both the
   natural and the binary-search tree.

   Run with: dune exec examples/environmental_monitoring.exe *)

module Prng = Genas_prng.Prng
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Dist = Genas_dist.Dist
module Shape = Genas_dist.Shape
module Profile_set = Genas_profile.Profile_set
module Lang = Genas_profile.Lang
module Decomp = Genas_filter.Decomp
module Stats = Genas_core.Stats
module Selectivity = Genas_core.Selectivity
module Cost = Genas_core.Cost
module Reorder = Genas_core.Reorder
module Engine = Genas_core.Engine
module Adaptive = Genas_core.Adaptive

let schema () =
  Schema.create_exn
    [
      ("temperature", Domain.float_range ~lo:(-30.0) ~hi:50.0);
      ("humidity", Domain.float_range ~lo:0.0 ~hi:100.0);
      ("radiation", Domain.float_range ~lo:1.0 ~hi:100.0);
    ]

(* Catastrophe-warning subscriptions: many users watch the extreme
   ranges of each attribute. *)
let catastrophe_profiles schema =
  let pset = Profile_set.create schema in
  let rng = Prng.create ~seed:2024 in
  for i = 1 to 60 do
    let kind = Prng.int rng ~bound:3 in
    let src =
      match kind with
      | 0 ->
        Printf.sprintf "temperature >= %.1f" (Prng.float_in rng ~lo:38.0 ~hi:46.0)
      | 1 ->
        Printf.sprintf "humidity >= %.1f && temperature >= %.1f"
          (Prng.float_in rng ~lo:90.0 ~hi:97.0)
          (Prng.float_in rng ~lo:30.0 ~hi:36.0)
      | _ ->
        Printf.sprintf "radiation >= %.1f" (Prng.float_in rng ~lo:80.0 ~hi:95.0)
    in
    match Lang.parse_profile ~name:(Printf.sprintf "watch%d" i) schema src with
    | Ok p -> ignore (Profile_set.add pset p)
    | Error e -> failwith e
  done;
  pset

let () =
  let schema = schema () in
  let pset = catastrophe_profiles schema in
  let decomp = Decomp.build pset in
  let stats = Stats.create decomp in

  (* Sensor readings are roughly uniform; a heat event spike would
     shift them. Assume uniform for planning. *)
  Array.iteri
    (fun attr ax -> Stats.assume_event_dist stats ~attr (Shape.equal_dist ax))
    decomp.Decomp.axes;

  Format.printf
    "Catastrophe warning service: %d profiles over %d attributes@.@."
    (Profile_set.size pset) (Decomp.arity decomp);

  let evaluate label spec =
    let tree = Reorder.build stats spec in
    let r = Cost.evaluate_with_stats tree stats in
    Format.printf "  %-34s %6.2f ops/event (match prob %.3f)@." label
      r.Cost.per_event r.Cost.match_prob
  in
  Format.printf "Expected filter effort per event (analytic, Eq. 2):@.";
  evaluate "natural order"
    { Reorder.attr_choice = Reorder.Attr_natural;
      value_choice = `Measure Selectivity.V_natural_asc };
  evaluate "binary search"
    { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary };
  evaluate "event order (V1)"
    { Reorder.attr_choice = Reorder.Attr_natural;
      value_choice = `Measure Selectivity.V1 };
  evaluate "V1 + attribute reordering (A2)"
    { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A2, `Descending);
      value_choice = `Measure Selectivity.V1 };
  evaluate "V1 + exhaustive order (A3)"
    { Reorder.attr_choice = Reorder.Attr_a3;
      value_choice = `Measure Selectivity.V1 };

  (* Adaptive run: feed a uniform stream, then shift to a heatwave
     distribution and watch the engine re-optimize. *)
  Format.printf "@.Adaptive engine under distribution drift:@.";
  let engine =
    Engine.create
      ~spec:
        { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A2, `Descending);
          value_choice = `Measure Selectivity.V1 }
      pset
  in
  let adaptive =
    Adaptive.create
      ~policy:{ Adaptive.warmup = 300; check_every = 100; drift_threshold = 0.3 }
      engine
  in
  let rng = Prng.create ~seed:7 in
  let feed label dists n =
    let before = Adaptive.rebuilds adaptive in
    for _ = 1 to n do
      let coords = Array.map (fun d -> Dist.sample rng d) dists in
      let values =
        Array.mapi
          (fun i c ->
            Axis.value (Schema.attribute schema i).Schema.domain c)
          coords
      in
      ignore
        (Adaptive.match_event adaptive
           (Genas_model.Event.of_values_exn schema values))
    done;
    Format.printf
      "  %-22s %4d events: %d rebuild(s), last drift %.3f@." label n
      (Adaptive.rebuilds adaptive - before)
      (Adaptive.last_drift adaptive)
  in
  let axes = decomp.Decomp.axes in
  feed "uniform readings" (Array.map Dist.uniform axes) 600;
  let heatwave =
    [|
      Shape.peak ~at:0.95 ~mass:0.8 ~width:0.1 axes.(0);
      Shape.gauss ~mu_frac:0.8 () axes.(1);
      Dist.uniform axes.(2);
    |]
  in
  feed "heatwave readings" heatwave 600;
  Format.printf "@.Filtered %d events in total; %.2f comparisons/event.@."
    (Genas_core.Engine.ops engine).Genas_filter.Ops.events
    (Genas_filter.Ops.per_event (Genas_core.Engine.ops engine))
