lib/prng/prng.mli:
