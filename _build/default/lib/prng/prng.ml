type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: one additive step, then a 64-bit finalizer (murmur-style
   xor-shift-multiply) that turns the weak counter sequence into a
   high-quality stream. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  (* Mixing with a distinct finalizer constant keeps the child stream
     decorrelated from the parent's continuation. *)
  let s = bits64 t in
  { state = mix (Int64.logxor s 0x5851F42D4C957F2DL) }

let bits53 t =
  (* Top 53 bits as a float in [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let float t ~bound = bits53 t *. bound

let float_in t ~lo ~hi = lo +. (bits53 t *. (hi -. lo))

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the smallest covering power of two keeps
     the draw exactly uniform. *)
  if bound land (bound - 1) = 0 then
    Int64.to_int (Int64.logand (bits64 t) (Int64.of_int (bound - 1)))
  else begin
    let rec draw () =
      let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
      let v = r mod bound in
      if r - v > max_int - bound + 1 then draw () else v
    in
    draw ()
  end

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t ~bound:(hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p =
  let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
  bits53 t < p

let gaussian t ~mu ~sigma =
  (* Box–Muller; we draw until u1 is nonzero so log is finite. *)
  let rec u () =
    let x = bits53 t in
    if x > 0.0 then x else u ()
  in
  let u1 = u () and u2 = bits53 t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  let rec u () =
    let x = bits53 t in
    if x > 0.0 then x else u ()
  in
  -.log (u ()) /. rate

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array";
  arr.(int t ~bound:(Array.length arr))

let weighted_index t w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Prng.weighted_index: empty weights";
  let total = Array.fold_left (fun acc x ->
      if x < 0.0 then invalid_arg "Prng.weighted_index: negative weight";
      acc +. x) 0.0 w
  in
  if total <= 0.0 then invalid_arg "Prng.weighted_index: all-zero weights";
  let target = float t ~bound:total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t ~k ~n =
  if k < 0 || n < 0 || k > n then
    invalid_arg "Prng.sample_without_replacement: need 0 <= k <= n";
  (* Partial Fisher–Yates over an index array: O(n) setup, O(k) draws. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t ~lo:i ~hi:(n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
