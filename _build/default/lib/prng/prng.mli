(** Deterministic pseudo-random number generation.

    All randomness in GENAS flows through this module so that every
    experiment, test, and workload is reproducible from an integer seed.
    The core generator is splitmix64 (Steele, Lea & Flood 2014): a tiny,
    fast, well-distributed 64-bit generator whose state is a single
    [int64], which makes splitting streams for independent substreams
    trivial and safe. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same
    future stream as [t]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. Use it
    to hand substreams to parallel workload generators. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform on [[0, bound-1]]. [bound] must be
    positive.

    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform on the inclusive range [[lo, hi]].

    @raise Invalid_argument if [hi < lo]. *)

val float : t -> bound:float -> float
(** [float t ~bound] is uniform on [[0, bound)]. *)

val float_in : t -> lo:float -> hi:float -> float
(** [float_in t ~lo ~hi] is uniform on [[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p] (clamped to
    [[0,1]]). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via the Box–Muller transform. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (inverse mean).

    @raise Invalid_argument if [rate <= 0]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array.

    @raise Invalid_argument on an empty array. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] draws index [i] with probability proportional
    to [w.(i)]. Weights must be non-negative and not all zero.

    @raise Invalid_argument on empty, negative, or all-zero weights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement t ~k ~n] draws [k] distinct indices
    from [[0, n-1]], in random order.

    @raise Invalid_argument if [k < 0], [n < 0], or [k > n]. *)
