module Event = Genas_model.Event
module Schema = Genas_model.Schema
module Profile = Genas_profile.Profile

type expr =
  | Prim of Profile.t
  | Seq of expr * expr * float
  | Both of expr * expr * float
  | Either of expr * expr
  | Without of expr * expr * float
  | Repeat of expr * int * float

type occurrence = {
  start_time : float;
  end_time : float;
  events : Event.t list;
}

type state =
  | Sprim of Profile.t
  | Sseq of { a : state; b : state; w : float; mutable pending : occurrence list }
  | Sboth of {
      a : state;
      b : state;
      w : float;
      mutable pa : occurrence list;
      mutable pb : occurrence list;
    }
  | Seither of state * state
  | Swithout of { a : state; b : state; w : float; mutable last_b : float }
  | Srepeat of { a : state; k : int; w : float; mutable buf : occurrence list }

type t = { schema : Schema.t; root : state; mutable last_time : float }

let rec validate = function
  | Prim _ -> Ok ()
  | Either (a, b) -> (
    match validate a with Ok () -> validate b | Error _ as e -> e)
  | Seq (a, b, w) | Both (a, b, w) | Without (a, b, w) ->
    if not (Float.is_finite w) || w <= 0.0 then
      Error "composite window must be positive and finite"
    else (match validate a with Ok () -> validate b | Error _ as e -> e)
  | Repeat (a, k, w) ->
    if k < 1 then Error "repeat count must be at least 1"
    else if not (Float.is_finite w) || w <= 0.0 then
      Error "composite window must be positive and finite"
    else validate a

let rec build = function
  | Prim p -> Sprim p
  | Seq (a, b, w) -> Sseq { a = build a; b = build b; w; pending = [] }
  | Both (a, b, w) -> Sboth { a = build a; b = build b; w; pa = []; pb = [] }
  | Either (a, b) -> Seither (build a, build b)
  | Without (a, b, w) ->
    Swithout { a = build a; b = build b; w; last_b = Float.neg_infinity }
  | Repeat (a, k, w) -> Srepeat { a = build a; k; w; buf = [] }

let compile schema expr =
  match validate expr with
  | Error e -> Error e
  | Ok () -> Ok { schema; root = build expr; last_time = Float.neg_infinity }

let compile_exn schema expr =
  match compile schema expr with
  | Ok t -> t
  | Error msg -> invalid_arg ("Composite.compile: " ^ msg)

let expire ~now ~w occs =
  List.filter (fun o -> now -. o.end_time <= w) occs

(* Pick the most recent pending occurrence satisfying [eligible];
   returns it plus the buffer without it. Buffers are newest-first. *)
let take_recent eligible occs =
  let rec go acc = function
    | [] -> None
    | o :: rest ->
      if eligible o then Some (o, List.rev_append acc rest)
      else go (o :: acc) rest
  in
  go [] occs

let join a b =
  {
    start_time = Float.min a.start_time b.start_time;
    end_time = Float.max a.end_time b.end_time;
    events =
      (if a.end_time <= b.start_time then a.events @ b.events
       else b.events @ a.events);
  }

let rec step schema st event now =
  match st with
  | Sprim p ->
    if Profile.matches schema p event then
      [ { start_time = now; end_time = now; events = [ event ] } ]
    else []
  | Seither (a, b) -> step schema a event now @ step schema b event now
  | Sseq r ->
    let occ_a = step schema r.a event now in
    let occ_b = step schema r.b event now in
    r.pending <- expire ~now ~w:r.w r.pending;
    let out = ref [] in
    List.iter
      (fun ob ->
        let eligible oa =
          oa.end_time < ob.start_time && ob.end_time -. oa.start_time <= r.w
        in
        match take_recent eligible r.pending with
        | Some (oa, rest) ->
          r.pending <- rest;
          out := join oa ob :: !out
        | None -> ())
      occ_b;
    (* New a-occurrences become pending only after pairing, so an [a]
       completed by this very event cannot precede a simultaneous [b]. *)
    r.pending <- occ_a @ r.pending;
    List.rev !out
  | Sboth r ->
    let occ_a = step schema r.a event now in
    let occ_b = step schema r.b event now in
    r.pa <- expire ~now ~w:r.w r.pa;
    r.pb <- expire ~now ~w:r.w r.pb;
    let out = ref [] in
    (* Pair the fresh completions of each side against the other side's
       pending buffer; simultaneous fresh completions pair with each
       other first. *)
    let unpaired_a = ref [] in
    List.iter
      (fun oa ->
        let eligible ob = Float.abs (oa.end_time -. ob.end_time) <= r.w in
        match take_recent eligible r.pb with
        | Some (ob, rest) ->
          r.pb <- rest;
          out := join oa ob :: !out
        | None -> unpaired_a := oa :: !unpaired_a)
      occ_a;
    let fresh_a = ref (List.rev !unpaired_a) in
    List.iter
      (fun ob ->
        let eligible oa = Float.abs (oa.end_time -. ob.end_time) <= r.w in
        match take_recent eligible !fresh_a with
        | Some (oa, rest) ->
          fresh_a := rest;
          out := join oa ob :: !out
        | None -> (
          match take_recent eligible r.pa with
          | Some (oa, rest) ->
            r.pa <- rest;
            out := join oa ob :: !out
          | None -> r.pb <- ob :: r.pb))
      occ_b;
    r.pa <- !fresh_a @ r.pa;
    List.rev !out
  | Swithout r ->
    (* Evaluate the inhibitor first: a [b] on the same event
       suppresses. *)
    let occ_b = step schema r.b event now in
    if occ_b <> [] then r.last_b <- now;
    let occ_a = step schema r.a event now in
    List.filter (fun oa -> oa.start_time -. r.last_b > r.w || r.last_b = Float.neg_infinity) occ_a
  | Srepeat r ->
    let occ_a = step schema r.a event now in
    r.buf <- expire ~now ~w:r.w r.buf;
    (* Buffer is newest-first; completions consume the oldest k. *)
    r.buf <- occ_a @ r.buf;
    let out = ref [] in
    let continue = ref true in
    while !continue do
      let n = List.length r.buf in
      if n >= r.k then begin
        let in_order = List.rev r.buf in
        let rec split i acc = function
          | rest when i = r.k -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | o :: rest -> split (i + 1) (o :: acc) rest
        in
        let used, remaining = split 0 [] in_order in
        let first = List.hd used and last = List.nth used (r.k - 1) in
        if last.end_time -. first.start_time <= r.w then begin
          out :=
            {
              start_time = first.start_time;
              end_time = last.end_time;
              events = List.concat_map (fun o -> o.events) used;
            }
            :: !out;
          r.buf <- List.rev remaining
        end
        else begin
          (* The oldest occurrence can never participate again. *)
          r.buf <- List.rev (List.tl in_order)
        end
      end
      else continue := false
    done;
    List.rev !out

let feed t event =
  let now = Event.time event in
  if now < t.last_time then
    invalid_arg "Composite.feed: events must arrive in time order";
  t.last_time <- now;
  step t.schema t.root event now

let rec reset_state = function
  | Sprim _ -> ()
  | Seither (a, b) ->
    reset_state a;
    reset_state b
  | Sseq r ->
    r.pending <- [];
    reset_state r.a;
    reset_state r.b
  | Sboth r ->
    r.pa <- [];
    r.pb <- [];
    reset_state r.a;
    reset_state r.b
  | Swithout r ->
    r.last_b <- Float.neg_infinity;
    reset_state r.a;
    reset_state r.b
  | Srepeat r ->
    r.buf <- [];
    reset_state r.a

let reset t =
  t.last_time <- Float.neg_infinity;
  reset_state t.root
