lib/ens/composite.mli: Genas_model Genas_profile
