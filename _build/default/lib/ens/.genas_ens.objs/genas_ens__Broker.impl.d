lib/ens/broker.ml: Composite Genas_core Genas_filter Genas_model Genas_profile Hashtbl List Notification Option Quench
