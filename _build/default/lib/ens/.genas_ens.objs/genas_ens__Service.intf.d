lib/ens/service.mli: Broker Genas_core Genas_model Notification
