lib/ens/quench.ml: Array Genas_interval Genas_model Genas_profile
