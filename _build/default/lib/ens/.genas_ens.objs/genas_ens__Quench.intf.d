lib/ens/quench.mli: Genas_interval Genas_model Genas_profile
