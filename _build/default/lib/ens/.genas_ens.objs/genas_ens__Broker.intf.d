lib/ens/broker.mli: Composite Genas_core Genas_filter Genas_model Genas_profile Notification Quench
