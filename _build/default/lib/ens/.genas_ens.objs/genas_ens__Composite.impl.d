lib/ens/composite.ml: Float Genas_model Genas_profile List
