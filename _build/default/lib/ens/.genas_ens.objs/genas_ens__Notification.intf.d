lib/ens/notification.mli: Format Genas_model Genas_profile
