lib/ens/router.ml: Array Fun Genas_core Genas_model Genas_profile Hashtbl Int List Notification Option
