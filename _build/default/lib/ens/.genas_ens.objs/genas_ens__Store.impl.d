lib/ens/store.ml: Array Format Genas_model Genas_profile In_channel List Out_channel Printf Result String
