lib/ens/store.mli: Genas_model Genas_profile
