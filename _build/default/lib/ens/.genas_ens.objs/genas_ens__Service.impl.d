lib/ens/service.ml: Broker Genas_filter Genas_model Genas_profile Hashtbl List Option Printf Result String
