lib/ens/router.mli: Genas_core Genas_filter Genas_model Genas_profile Notification
