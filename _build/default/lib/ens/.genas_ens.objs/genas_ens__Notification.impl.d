lib/ens/notification.ml: Format Genas_model Genas_profile
