module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Lang = Genas_profile.Lang
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set

let ( let* ) = Result.bind

let read_lines path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents ->
    Ok
      (String.split_on_char '\n' contents
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#'))
  | exception Sys_error e -> Error e

let write_lines path lines =
  match
    Out_channel.with_open_text path (fun oc ->
        List.iter
          (fun l ->
            Out_channel.output_string oc l;
            Out_channel.output_char oc '\n')
          lines)
  with
  | () -> Ok ()
  | exception Sys_error e -> Error e

let split_colon line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "missing ':' in line %S" line)
  | Some i ->
    Ok
      ( String.trim (String.sub line 0 i),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let fold_result f init lines =
  List.fold_left
    (fun acc line ->
      let* acc = acc in
      f acc line)
    (Ok init) lines

let load_schema path =
  let* lines = read_lines path in
  let* specs =
    fold_result
      (fun acc line ->
        let* name, dom_src = split_colon line in
        let* dom = Domain.of_string dom_src in
        Ok ((name, dom) :: acc))
      [] lines
  in
  Schema.create (List.rev specs)

let save_schema path schema =
  write_lines path
    (Array.to_list
       (Array.map
          (fun (a : Schema.attribute) ->
            Format.asprintf "%s : %a" a.Schema.name Domain.pp a.Schema.domain)
          (Schema.attributes schema)))

let load_profiles schema path =
  let* lines = read_lines path in
  let pset = Profile_set.create schema in
  let* () =
    fold_result
      (fun () line ->
        let* name, src = split_colon line in
        let* profile = Lang.parse_profile ~name schema src in
        ignore (Profile_set.add pset profile);
        Ok ())
      () lines
  in
  Ok pset

let save_profiles path schema pset =
  let lines =
    Profile_set.fold pset ~init:[] ~f:(fun acc id p ->
        let name =
          match p.Profile.name with
          | Some n -> n
          | None -> Printf.sprintf "p%d" id
        in
        Printf.sprintf "%s : %s" name (Lang.body_to_string schema p) :: acc)
  in
  write_lines path (List.rev lines)

let load_events schema path =
  let* lines = read_lines path in
  let* events =
    fold_result
      (fun acc line ->
        let* e = Lang.parse_event ~seq:(List.length acc) schema line in
        Ok (e :: acc))
      [] lines
  in
  Ok (List.rev events)

let save_events path schema events =
  write_lines path (List.map (Lang.event_to_string schema) events)
