(** Quenching (after Elvin, §2): "a quenching mechanism that discards
    unneeded information without consuming resources".

    A quench table summarizes, per attribute, the set of values that at
    least one live subscription accepts. A publisher consults it before
    constructing and sending an event: if some attribute value is
    accepted by no subscription, the event cannot match anything and
    need not be published at all. The test is necessary, not
    sufficient — an event passing the quench may still match nothing —
    but it is sound: no deliverable event is ever suppressed. *)

type t

val build : Genas_profile.Profile_set.t -> t

val revision : t -> int

val wanted_coord : t -> attr:int -> float -> bool
(** Is this coordinate of this attribute accepted by at least one
    subscription (directly or via don't-care)? *)

val wanted_event : t -> Genas_model.Event.t -> bool
(** Conjunction of [wanted_coord] over all attributes. [false] means
    the event provably matches no subscription. *)

val wanted_region : t -> attr:int -> Genas_interval.Iset.t -> bool
(** Would {e any} event with this attribute restricted to the region
    pass the per-attribute test? Lets a publisher quench a whole sensor
    range at once. *)

val suppressed : t -> int
(** Events rejected by [wanted_event] so far (its [false] results). *)

val coverage_share : t -> attr:int -> float
(** Measure fraction of the attribute's axis that is wanted — 1.0 as
    soon as one subscription doesn't care about the attribute. *)
