module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Lang = Genas_profile.Lang
module Engine = Genas_core.Engine
module Adaptive = Genas_core.Adaptive
module Ops = Genas_filter.Ops

type sub_id = Prim_sub of int | Comp_sub of int

type comp_sub = {
  subscriber : string;
  detector : Composite.t;
  prims : Profile.t list;  (** constituents, for the quench table *)
  handler : Notification.handler;
}

type t = {
  schema : Schema.t;
  pset : Profile_set.t;
  engine : Engine.t;
  adaptive : Adaptive.t option;
  handlers : (int, string * Notification.handler) Hashtbl.t;
      (** primitive subscriptions, by profile id *)
  composites : (int, comp_sub) Hashtbl.t;
  mutable next_comp : int;
  mutable quench : Quench.t option;  (** cache; [None] = stale *)
  mutable published : int;
  mutable notifications : int;
}

let create ?spec ?adaptive schema =
  let pset = Profile_set.create schema in
  let engine = Engine.create ?spec pset in
  let adaptive = Option.map (fun policy -> Adaptive.create ~policy engine) adaptive in
  {
    schema;
    pset;
    engine;
    adaptive;
    handlers = Hashtbl.create 64;
    composites = Hashtbl.create 8;
    next_comp = 0;
    quench = None;
    published = 0;
    notifications = 0;
  }

let schema t = t.schema

let invalidate_quench t = t.quench <- None

let subscribe t ~subscriber ~profile handler =
  let id = Profile_set.add t.pset profile in
  Hashtbl.replace t.handlers id (subscriber, handler);
  invalidate_quench t;
  Prim_sub id

let subscribe_text t ~subscriber src handler =
  match Lang.parse_profile ~name:subscriber t.schema src with
  | Error e -> Error e
  | Ok profile -> Ok (subscribe t ~subscriber ~profile handler)

let rec prims_of_expr = function
  | Composite.Prim p -> [ p ]
  | Composite.Seq (a, b, _) | Composite.Both (a, b, _)
  | Composite.Either (a, b) | Composite.Without (a, b, _) ->
    prims_of_expr a @ prims_of_expr b
  | Composite.Repeat (a, _, _) -> prims_of_expr a

let subscribe_composite t ~subscriber expr handler =
  match Composite.compile t.schema expr with
  | Error e -> Error e
  | Ok detector ->
    let id = t.next_comp in
    t.next_comp <- id + 1;
    Hashtbl.replace t.composites id
      { subscriber; detector; prims = prims_of_expr expr; handler };
    invalidate_quench t;
    Ok (Comp_sub id)

let unsubscribe t = function
  | Prim_sub id ->
    let present = Profile_set.remove t.pset id in
    if present then begin
      Hashtbl.remove t.handlers id;
      invalidate_quench t
    end;
    present
  | Comp_sub id ->
    let present = Hashtbl.mem t.composites id in
    if present then begin
      Hashtbl.remove t.composites id;
      invalidate_quench t
    end;
    present

let quench t =
  match t.quench with
  | Some q -> q
  | None ->
    (* Merge primitive subscriptions with the constituents of composite
       ones: quenching must not starve a composite detector. *)
    let merged = Profile_set.create t.schema in
    Profile_set.iter t.pset (fun _ p -> ignore (Profile_set.add merged p));
    Hashtbl.iter
      (fun _ c -> List.iter (fun p -> ignore (Profile_set.add merged p)) c.prims)
      t.composites;
    let q = Quench.build merged in
    t.quench <- Some q;
    q

let publish t event =
  t.published <- t.published + 1;
  let matched =
    match t.adaptive with
    | Some a -> Adaptive.match_event a event
    | None -> Engine.match_event t.engine event
  in
  let sent = ref 0 in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.handlers id with
      | None -> ()
      | Some (subscriber, handler) ->
        incr sent;
        handler (Notification.make ~event ~profile_id:id ~subscriber ()))
    matched;
  Hashtbl.iter
    (fun _ c ->
      List.iter
        (fun (_ : Composite.occurrence) ->
          incr sent;
          c.handler
            (Notification.make ~event ~profile_id:(-1)
               ~subscriber:c.subscriber ()))
        (Composite.feed c.detector event))
    t.composites;
  t.notifications <- t.notifications + !sent;
  !sent

let publish_quenched t event =
  if Quench.wanted_event (quench t) event then Some (publish t event)
  else None

let ops t = Engine.ops t.engine

let published t = t.published

let notifications t = t.notifications

let subscription_count t = Profile_set.size t.pset + Hashtbl.length t.composites

let engine t = t.engine

let rebuilds t =
  match t.adaptive with Some a -> Adaptive.rebuilds a | None -> 0
