(** File persistence for schemas, profile sets, and event logs.

    The formats are the line-oriented texts the CLI consumes, with
    [#]-comments and blank lines ignored:

    - schema files: one ["name : DOMAIN"] per line, [DOMAIN] as in
      {!Genas_model.Domain.of_string};
    - profile files: one ["name : PREDICATES"] per line, body in the
      profile language (empty body = match-everything);
    - event files: one event per line (["attr = v, …"]).

    Save/load round-trips preserve semantics (asserted by the test
    suite); profile ids are assigned afresh on load in file order. *)

val load_schema : string -> (Genas_model.Schema.t, string) result

val save_schema : string -> Genas_model.Schema.t -> (unit, string) result

val load_profiles :
  Genas_model.Schema.t -> string ->
  (Genas_profile.Profile_set.t, string) result
(** Loads into a fresh registry; profile names come from the file. *)

val save_profiles :
  string -> Genas_model.Schema.t -> Genas_profile.Profile_set.t ->
  (unit, string) result
(** Unnamed profiles are written as ["p<id>"]. *)

val load_events :
  Genas_model.Schema.t -> string ->
  (Genas_model.Event.t list, string) result
(** Events are numbered by file position (sequence numbers 0, 1, …). *)

val save_events :
  string -> Genas_model.Schema.t -> Genas_model.Event.t list ->
  (unit, string) result
