(** Composite events (the extension announced in the paper's outlook:
    "we will extend the filter to handle composite events", §5; §1
    defines them as "temporal combinations of events").

    A composite expression combines primitive profiles with temporal
    operators; a compiled detector consumes the (time-ordered) event
    stream incrementally and emits an occurrence whenever the
    expression completes. Constituent occurrences are *consumed* on
    use, pairing with the most recent eligible partner (the "recent"
    consumption policy of active-database composite-event literature),
    which keeps detection linear and avoids combinatorial re-pairing. *)

type expr =
  | Prim of Genas_profile.Profile.t
      (** one event matching the profile *)
  | Seq of expr * expr * float
      (** [Seq (a, b, w)]: [a] completes strictly before [b] starts,
          whole span at most [w] time units *)
  | Both of expr * expr * float
      (** both complete, in any order, within [w] of each other *)
  | Either of expr * expr
  | Without of expr * expr * float
      (** [a] completes with no [b] completion in the preceding [w] *)
  | Repeat of expr * int * float
      (** [k] completions of the sub-expression within [w] *)

type occurrence = {
  start_time : float;
  end_time : float;
  events : Genas_model.Event.t list;  (** constituents, oldest first *)
}

type t
(** A compiled, stateful detector. *)

val compile : Genas_model.Schema.t -> expr -> (t, string) result
(** Validates windows (positive and finite) and repeat counts
    ([k >= 1]). *)

val compile_exn : Genas_model.Schema.t -> expr -> t

val feed : t -> Genas_model.Event.t -> occurrence list
(** Process one event; returns the root occurrences completed by it.
    Event times must be non-decreasing.

    @raise Invalid_argument if fed an event older than its
    predecessor. *)

val reset : t -> unit
(** Drop all partial detections. *)
