module Event = Genas_model.Event
module Schema = Genas_model.Schema

type t = {
  event : Event.t;
  profile_id : Genas_profile.Profile_set.id;
  subscriber : string;
  broker : int option;
}

type handler = t -> unit

let make ?broker ~event ~profile_id ~subscriber () =
  { event; profile_id; subscriber; broker }

let pp schema ppf t =
  Format.fprintf ppf "@[<h>notify %s (profile %d%t): %a@]" t.subscriber
    t.profile_id
    (fun ppf ->
      match t.broker with
      | Some b -> Format.fprintf ppf ", broker %d" b
      | None -> ())
    (Event.pp schema) t.event
