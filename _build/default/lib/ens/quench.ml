module Axis = Genas_model.Axis
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Iset = Genas_interval.Iset
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set

type t = {
  schema : Schema.t;
  axes : Axis.t array;
  wanted : [ `All | `Region of Iset.t ] array;  (** per attribute *)
  revision : int;
  mutable suppressed : int;
}

let build pset =
  let schema = Profile_set.schema pset in
  let n = Schema.arity schema in
  let axes =
    Array.init n (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let wanted =
    Array.init n (fun attr ->
        let dont_care = ref false in
        let union =
          Profile_set.fold pset ~init:Iset.empty ~f:(fun acc _ p ->
              match Profile.denotation p attr with
              | None ->
                dont_care := true;
                acc
              | Some iset -> Iset.union acc iset)
        in
        if !dont_care then `All else `Region union)
  in
  { schema; axes; wanted; revision = Profile_set.revision pset; suppressed = 0 }

let revision t = t.revision

let wanted_coord t ~attr c =
  match t.wanted.(attr) with `All -> true | `Region r -> Iset.mem r c

let wanted_event t event =
  let n = Array.length t.axes in
  let rec check attr =
    if attr = n then true
    else
      let dom = (Schema.attribute t.schema attr).Schema.domain in
      match Axis.coord dom (Event.value event attr) with
      | None -> false
      | Some c -> wanted_coord t ~attr c && check (attr + 1)
  in
  let ok = check 0 in
  if not ok then t.suppressed <- t.suppressed + 1;
  ok

let wanted_region t ~attr region =
  match t.wanted.(attr) with
  | `All -> not (Iset.is_empty region)
  | `Region r -> not (Iset.is_empty (Iset.inter r region))

let suppressed t = t.suppressed

let coverage_share t ~attr =
  match t.wanted.(attr) with
  | `All -> 1.0
  | `Region r ->
    let axis = t.axes.(attr) in
    let total = Axis.size axis in
    if total <= 0.0 then 1.0
    else Iset.measure ~discrete:axis.Axis.discrete r /. total
