(** Notifications: the ENS output channel.

    An ENS "informs its users about new events that occurred on
    providers' sites" (§1); a notification carries the event, the
    matched profile, and the subscriber it is delivered to. *)

type t = {
  event : Genas_model.Event.t;
  profile_id : Genas_profile.Profile_set.id;
  subscriber : string;
  broker : int option;  (** delivering broker in a routed network *)
}

type handler = t -> unit

val make :
  ?broker:int ->
  event:Genas_model.Event.t ->
  profile_id:Genas_profile.Profile_set.id ->
  subscriber:string ->
  unit ->
  t

val pp : Genas_model.Schema.t -> Format.formatter -> t -> unit
