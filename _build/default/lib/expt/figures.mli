(** Reproduction of every figure and test scenario of the paper's
    evaluation (§4.3).

    Each function regenerates one artifact as a plain-text table; the
    benchmark executable prints them all and EXPERIMENTS.md records the
    paper-vs-measured comparison. Absolute operation counts depend on
    the synthesized stand-ins for the authors' unpublished
    distributions (see DESIGN.md §3); the comparisons the paper draws —
    which strategy wins for which distribution class, and by what
    rough factor — are the reproduction target. *)

val fig3 : unit -> Report.table
(** Fig. 3: the exemplary distributions, as sparklines over the
    normalized attribute domain. *)

val fig4a : ?seed:int -> ?p:int -> unit -> Report.table
(** Fig. 4(a): natural vs event-order (V1) vs binary search on selected
    Pe/Pp combinations; average operations per event, scenario TV4
    (analytic, Eq. 2). [p] defaults to 50 profiles. *)

val fig4b : ?seed:int -> ?p:int -> unit -> Report.table
(** Fig. 4(b): measures V1–V3 vs binary search on the second set of
    combinations. *)

val fig5 : ?seed:int -> ?p:int -> unit -> Report.table list
(** Fig. 5(a,b,c): per-event, per-profile, and per-event-and-profile
    operation averages for the peaked profile distributions. *)

val fig6a : ?seed:int -> ?p:int -> unit -> Report.table
(** Fig. 6(a), experiment TA1: attribute reordering with wide
    differences in attribute selectivities (peak widths 10–80 %). *)

val fig6b : ?seed:int -> ?p:int -> unit -> Report.table
(** Fig. 6(b), experiment TA2: small differences (peak widths
    45–65 %). *)

val tv_scenarios : ?seed:int -> unit -> Report.table
(** The TV1–TV4 protocol table: tree construction at 10,000 profiles,
    full-tree simulation to 95 % precision, the 4000-event
    single-attribute run, and its analytic counterpart. *)

val ablation_sharing : ?seed:int -> unit -> Report.table
(** Beyond the paper: subtree-sharing ablation — node/edge counts and
    build effort with hash-consing on and off. *)

val baseline_comparison : ?seed:int -> unit -> Report.table
(** Beyond the paper: naive vs counting vs tree matchers, simulated
    comparisons per event as the profile count grows. *)

val outlook_strategies : ?seed:int -> ?p:int -> unit -> Report.table
(** Beyond the paper (§5 outlook): hash-based search and per-attribute
    automatic strategy selection, against the paper's strategies, on
    the Fig. 4(a) combinations. *)

val ablation_quench : ?seed:int -> unit -> Report.table
(** Beyond the paper: Elvin-style quenching — suppression rate at the
    publisher as subscription concentration varies. *)

val ablation_routing : ?seed:int -> unit -> Report.table
(** Beyond the paper: covering-based subscription propagation vs the
    flooding bound on a broker line, as subscription overlap grows. *)

val ablation_adaptive : ?seed:int -> unit -> Report.table
(** Beyond the paper: filter cost before/after a distribution shift,
    with and without the adaptive component. *)

val correlated : ?seed:int -> unit -> Report.table
(** Beyond the paper's tests (but within its model, §3): correlated
    events via a two-regime mixture; shows the independence assumption
    mispredicting cost and match rate while the conditional evaluator
    ({!Genas_core.Cost.evaluate_joint}) agrees with simulation. *)

val dontcare_influence : ?seed:int -> unit -> Report.table
(** The paper's final outlook item: the influence of don't-care edges
    (determinization blow-up and scan cost) and of operator types
    (equality vs ranges) on tree size and filter performance. *)

val queueing : ?seed:int -> unit -> Report.table
(** §4.3's queueing argument: sojourn time (waiting + filtering) of
    notifications under a fixed arrival rate, per strategy — the
    "optimal working point" trade-off between per-event and
    per-profile optimization. *)

val orderings8 : ?seed:int -> ?p:int -> unit -> Report.table
(** §4.3's full protocol: all eight value orderings (natural, Pe, Pp,
    Pe·Pp — each ascending and descending) plus binary search. *)

val fragility : ?seed:int -> ?p:int -> unit -> Report.table
(** §4.3's stability caveat: a V1 tree planned for one event
    distribution, evaluated under increasing drift, against binary
    search (insensitive) and an adaptively re-planned V1 tree. *)
