(** Event-stream simulation with the paper's stopping rule.

    Scenarios TV1/TV2 run "event tests until 95 % precision for average
    #operations is reached": we sample events from the given
    distributions, filter them through the tree, and stop once the 95 %
    confidence interval of the per-event operation mean is within the
    requested relative precision (or a hard event cap is hit). *)

type result = {
  events : int;
  per_event : float;  (** mean comparisons per event *)
  per_match : float;  (** mean comparisons per (event, match) pair *)
  match_rate : float;  (** mean matched profiles per event *)
  ci_halfwidth : float;
      (** 95 % confidence half-width of [per_event] *)
  converged : bool;  (** precision reached before the cap *)
}

val run :
  ?min_events:int ->
  ?max_events:int ->
  ?precision:float ->
  Genas_prng.Prng.t ->
  Genas_filter.Tree.t ->
  Genas_dist.Dist.t array ->
  result
(** Defaults: [min_events] 200, [max_events] 200_000,
    [precision] 0.05 (the paper's 95 % precision).

    @raise Invalid_argument if the distribution array's arity differs
    from the tree's. *)

val run_fixed :
  Genas_prng.Prng.t -> Genas_filter.Tree.t -> Genas_dist.Dist.t array ->
  events:int -> result
(** Exactly [events] samples (scenario TV3's fixed 4000 events). *)

val run_joint :
  Genas_prng.Prng.t -> Genas_filter.Tree.t -> Genas_dist.Joint.t ->
  events:int -> result
(** Fixed-count simulation from a correlated (mixture-of-products)
    event distribution — validates {!Genas_core.Cost.evaluate_joint}. *)
