module Prng = Genas_prng.Prng
module Axis = Genas_model.Axis
module Schema = Genas_model.Schema
module Interval = Genas_interval.Interval
module Dist = Genas_dist.Dist
module Catalog = Genas_dist.Catalog
module Shape = Genas_dist.Shape
module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Ops = Genas_filter.Ops
module Naive = Genas_filter.Naive
module Counting = Genas_filter.Counting
module Stats = Genas_core.Stats
module Selectivity = Genas_core.Selectivity
module Cost = Genas_core.Cost
module Reorder = Genas_core.Reorder

(* ------------------------------------------------------------------ *)
(* Fig. 3: exemplary distributions.                                    *)

let fig3 () =
  let axis = Axis.make ~discrete:false ~lo:0.0 ~hi:100.0 in
  let bins = 25 in
  let shape name =
    let dist = (Catalog.find_exn name) axis in
    List.init bins (fun i ->
        let a = 100.0 *. float_of_int i /. float_of_int bins in
        let b = 100.0 *. float_of_int (i + 1) /. float_of_int bins in
        Dist.prob_interval dist
          (Interval.make_exn ~hi_closed:(i = bins - 1) ~lo:a ~hi:b ()))
  in
  let rows =
    List.map
      (fun name ->
        let probs = shape name in
        let peak = List.fold_left Float.max 0.0 probs in
        [ name; Report.sparkline probs; Printf.sprintf "%.3f" peak ])
      Catalog.figure3_names
  in
  Report.table ~title:"Fig. 3 — exemplary distributions (normalized domain)"
    ~columns:[ "dist"; "shape (25 bins)"; "peak bin mass" ]
    ~notes:
      [
        "The paper's 60 numeric definitions were never published; these are \
         the parametric stand-ins (DESIGN.md section 3).";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Shared machinery for the value-reordering figures.                  *)

(* One-attribute scenario: p equality profiles drawn from Pp on the
   normalized 100-point domain, events assumed to follow Pe. *)
let single_attr_stats ~seed ~p ~pe ~pp =
  let schema = Workload.normalized_schema ~attrs:1 ~points:100 () in
  let axis = Axis.of_domain (Schema.attribute schema 0).Schema.domain in
  let rng = Prng.create ~seed in
  let pset =
    Workload.gen_profiles rng schema
      {
        Workload.p;
        dontcare = [| 0.0 |];
        value_dists = [| (Catalog.find_exn pp) axis |];
        range_width = None;
      }
  in
  let stats = Stats.create (Decomp.build pset) in
  Stats.assume_event_dist stats ~attr:0 ((Catalog.find_exn pe) axis);
  stats

let eval_strategy stats value_choice =
  let tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice }
  in
  Cost.evaluate_with_stats tree stats

let strategies_fig4a =
  [
    ("natural order", `Measure Selectivity.V_natural_asc);
    ("event order (V1)", `Measure Selectivity.V1);
    ("binary search", `Binary);
  ]

let strategies_v123 =
  [
    ("profile order (V2)", `Measure Selectivity.V2);
    ("event*profile (V3)", `Measure Selectivity.V3);
    ("event order (V1)", `Measure Selectivity.V1);
    ("binary search", `Binary);
  ]

let value_reordering_table ~title ~seed ~p ~combos ~strategies ~note =
  let columns = "Pe / Pp" :: List.map fst strategies in
  let rows =
    List.map
      (fun (pe, pp) ->
        let stats = single_attr_stats ~seed ~p ~pe ~pp in
        let cells =
          List.map
            (fun (_, choice) ->
              Report.f2 (eval_strategy stats choice).Cost.per_event)
            strategies
        in
        Printf.sprintf "%s / %s" pe pp :: cells)
      combos
  in
  Report.table ~title ~columns ~notes:[ note ] rows

let fig4a ?(seed = 1001) ?(p = 50) () =
  value_reordering_table
    ~title:"Fig. 4(a) — value reordering: V1 vs natural vs binary (TV4)"
    ~seed ~p
    ~combos:
      [
        ("d37", "equal"); ("d5", "d41"); ("d3", "d39"); ("d39", "d18");
        ("d40", "d17"); ("d42", "d1"); ("d39", "d1");
      ]
    ~strategies:strategies_fig4a
    ~note:
      (Printf.sprintf
         "average #operations per event, analytic (Eq. 2); p = %d equality \
          profiles on the normalized domain" p)

let fig4b ?(seed = 1002) ?(p = 50) () =
  value_reordering_table
    ~title:"Fig. 4(b) — value reordering: measures V1-V3 vs binary (TV4)"
    ~seed ~p
    ~combos:
      [
        ("d14", "gauss"); ("d2", "gauss"); ("d4", "gauss"); ("d16", "d39");
        ("d9", "gauss"); ("d39", "gauss"); ("d4", "d37"); ("d17", "d34");
      ]
    ~strategies:strategies_v123
    ~note:"average #operations per event, analytic (Eq. 2)"

(* ------------------------------------------------------------------ *)
(* Fig. 5: per-event vs per-profile accounting.                        *)

let fig5_combos =
  [
    ("equal", "90%high"); ("equal", "95%high"); ("equal", "95%low");
    ("falling", "95%high"); ("95%high", "95%low"); ("95%low", "95%low");
  ]

let fig5 ?(seed = 1003) ?(p = 50) () =
  let evaluated =
    List.map
      (fun (pe, pp) ->
        let stats = single_attr_stats ~seed ~p ~pe ~pp in
        ( Printf.sprintf "%s / %s" pe pp,
          List.map
            (fun (name, choice) -> (name, eval_strategy stats choice))
            strategies_v123 ))
      fig5_combos
  in
  let mk ~title ~metric ~fmt =
    Report.table ~title
      ~columns:("Pe / Pp" :: List.map fst strategies_v123)
      ~notes:
        [
          Printf.sprintf "p = %d equality profiles; peaked profile \
                          distributions as in the paper's labels" p;
        ]
      (List.map
         (fun (label, results) ->
           label :: List.map (fun (_, r) -> fmt (metric r)) results)
         evaluated)
  in
  [
    mk ~title:"Fig. 5(a) — average #operations per event"
      ~metric:(fun r -> r.Cost.per_event)
      ~fmt:Report.f2;
    mk ~title:"Fig. 5(b) — average #operations per profile (per match pair)"
      ~metric:(fun r -> r.Cost.per_match)
      ~fmt:Report.f2;
    mk ~title:"Fig. 5(c) — average #operations per event and profile"
      ~metric:(fun r -> r.Cost.per_event /. float_of_int p)
      ~fmt:Report.f4;
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 6: attribute reordering (TA1 / TA2).                           *)

(* Five attributes whose profile values concentrate in centered peaks
   of differing widths: narrow peak = big zero-subdomain = high
   selectivity. All profiles constrain all attributes. *)
let ta_stats ~seed ~p ~widths ~event_dist_name =
  let attrs = List.length widths in
  let schema = Workload.normalized_schema ~attrs ~points:100 () in
  let axes =
    Array.init attrs (fun i ->
        Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let rng = Prng.create ~seed in
  let value_dists =
    Array.of_list
      (List.mapi
         (fun i w -> Shape.peak ~at:0.5 ~mass:1.0 ~width:w axes.(i))
         widths)
  in
  let pset =
    Workload.gen_profiles rng schema
      {
        Workload.p;
        dontcare = Array.make attrs 0.0;
        value_dists;
        range_width = None;
      }
  in
  let stats = Stats.create (Decomp.build pset) in
  let egen = Catalog.find_exn event_dist_name in
  Array.iteri (fun i ax -> Stats.assume_event_dist stats ~attr:i (egen ax)) axes;
  stats

let ta_table ~title ~seed ~p ~widths =
  let event_dists = [ ("equal", "equal"); ("gauss", "gauss"); ("relocated gauss", "gauss_low") ] in
  let orders =
    [
      ("natur.", Reorder.Attr_natural);
      ("asc.", Reorder.Attr_measured (Selectivity.A2, `Ascending));
      ("desc.", Reorder.Attr_measured (Selectivity.A2, `Descending));
    ]
  in
  let strategies =
    [ ("event desc order", `Measure Selectivity.V1); ("binary", `Binary) ]
  in
  let rows =
    List.concat_map
      (fun (elabel, ename) ->
        let stats = ta_stats ~seed ~p ~widths ~event_dist_name:ename in
        List.map
          (fun (olabel, attr_choice) ->
            let cells =
              List.map
                (fun (_, value_choice) ->
                  let tree =
                    Reorder.build stats { Reorder.attr_choice; value_choice }
                  in
                  Report.f2 (Cost.evaluate_with_stats tree stats).Cost.per_event)
                strategies
            in
            (elabel ^ " / " ^ olabel) :: cells)
          orders)
      event_dists
  in
  Report.table ~title
    ~columns:("events / tree order" :: List.map fst strategies)
    ~notes:
      [
        Printf.sprintf
          "5 attributes, profile peaks of widths %s; attribute order by \
           measure A2; p = %d"
          (String.concat "," (List.map (fun w -> Printf.sprintf "%.0f%%" (100. *. w)) widths))
          p;
      ]
    rows

let fig6a ?(seed = 1006) ?(p = 50) () =
  ta_table
    ~title:"Fig. 6(a) — TA1: attribute reordering, wide selectivity differences"
    ~seed ~p
    ~widths:[ 0.40; 0.10; 0.80; 0.25; 0.60 ]

let fig6b ?(seed = 1007) ?(p = 50) () =
  ta_table
    ~title:"Fig. 6(b) — TA2: attribute reordering, small selectivity differences"
    ~seed ~p
    ~widths:[ 0.55; 0.45; 0.65; 0.50; 0.60 ]

(* ------------------------------------------------------------------ *)
(* TV scenarios.                                                       *)

let tv_scenarios ?(seed = 1010) () =
  let rows = ref [] in
  let add row = rows := row :: !rows in
  (* TV1: tree creation with 10,000 profiles, then events to 95 %
     precision. *)
  let () =
    let schema = Workload.normalized_schema ~attrs:3 ~points:100 () in
    let axes =
      Array.init 3 (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
    in
    let rng = Prng.create ~seed in
    let pset =
      Workload.gen_profiles rng schema
        {
          Workload.p = 10_000;
          dontcare = [| 0.3; 0.3; 0.3 |];
          value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
          range_width = None;
        }
    in
    let t0 = Sys.time () in
    let decomp = Decomp.build pset in
    let tree = Tree.build decomp (Tree.default_config decomp) in
    let build_s = Sys.time () -. t0 in
    let dists = Array.map Dist.uniform axes in
    let sim = Simulate.run rng tree dists in
    add
      [
        "TV1"; "10,000 profiles, 3 attrs, build + events to 95% precision";
        Printf.sprintf "build %.2fs, %d nodes" build_s tree.Tree.stats.Tree.nodes;
        Printf.sprintf "%d events, %.2f ops/event" sim.Simulate.events
          sim.Simulate.per_event;
      ]
  in
  (* TV2: full tree, events to precision. *)
  let () =
    let schema = Workload.normalized_schema ~attrs:3 ~points:100 () in
    let axes =
      Array.init 3 (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
    in
    let rng = Prng.create ~seed:(seed + 1) in
    let pset =
      Workload.gen_profiles rng schema
        {
          Workload.p = 1000;
          dontcare = [| 0.3; 0.3; 0.3 |];
          value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
          range_width = None;
        }
    in
    let decomp = Decomp.build pset in
    let tree = Tree.build decomp (Tree.default_config decomp) in
    let sim = Simulate.run rng tree (Array.map Dist.uniform axes) in
    add
      [
        "TV2"; "1,000 profiles, 3 attrs, events to 95% precision";
        Printf.sprintf "%s" (if sim.Simulate.converged then "converged" else "cap hit");
        Printf.sprintf "%d events, %.2f ops/event" sim.Simulate.events
          sim.Simulate.per_event;
      ]
  in
  (* TV3 vs TV4: 4000 sampled events vs the exact expectation. *)
  let () =
    let stats = single_attr_stats ~seed:(seed + 2) ~p:50 ~pe:"d39" ~pp:"d18" in
    let tree =
      Reorder.build stats
        {
          Reorder.attr_choice = Reorder.Attr_natural;
          value_choice = `Measure Selectivity.V1;
        }
    in
    let rng = Prng.create ~seed:(seed + 3) in
    let dists = [| Stats.event_dist stats ~attr:0 |] in
    let sim = Simulate.run_fixed rng tree dists ~events:4000 in
    let analytic = Cost.evaluate_with_stats tree stats in
    add
      [
        "TV3"; "1 attr, 4000 sampled events (V1 order)"; "";
        Printf.sprintf "%.2f ops/event" sim.Simulate.per_event;
      ];
    add
      [
        "TV4"; "1 attr, exact expectation (Eq. 2)"; "";
        Printf.sprintf "%.2f ops/event" analytic.Cost.per_event;
      ]
  in
  Report.table ~title:"Test scenarios TV1-TV4 (section 4.3)"
    ~columns:[ "scenario"; "protocol"; "construction"; "result" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Beyond the paper: ablations and baselines.                          *)

let ablation_sharing ?(seed = 1020) () =
  let schema = Workload.normalized_schema ~attrs:4 ~points:100 () in
  let axes =
    Array.init 4 (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let rng = Prng.create ~seed in
  let pset =
    Workload.gen_profiles rng schema
      {
        Workload.p = 200;
        dontcare = [| 0.5; 0.5; 0.5; 0.5 |];
        value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
        range_width = None;
      }
  in
  let decomp = Decomp.build pset in
  let config = Tree.default_config decomp in
  let shared = Tree.build ~share:true decomp config in
  let unshared = Tree.build ~share:false decomp config in
  let row label (t : Tree.t) =
    let heap_words =
      match t.Tree.root with
      | Some root -> Obj.reachable_words (Obj.repr root)
      | None -> 0
    in
    [
      label;
      string_of_int t.Tree.stats.Tree.nodes;
      string_of_int t.Tree.stats.Tree.leaves;
      string_of_int t.Tree.stats.Tree.edges;
      string_of_int t.Tree.stats.Tree.build_visits;
      string_of_int heap_words;
    ]
  in
  Report.table ~title:"Ablation — hash-consed subtree sharing (200 profiles, 4 attrs)"
    ~columns:[ "variant"; "nodes"; "leaves"; "edges"; "build visits"; "heap words" ]
    ~notes:[ "identical matching behaviour; sharing collapses identical alive-sets" ]
    [ row "shared" shared; row "unshared" unshared ]

let baseline_comparison ?(seed = 1021) () =
  let schema = Workload.normalized_schema ~attrs:3 ~points:100 () in
  let axes =
    Array.init 3 (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let rows =
    List.map
      (fun p ->
        let rng = Prng.create ~seed:(seed + p) in
        let pset =
          Workload.gen_profiles rng schema
            {
              Workload.p;
              dontcare = [| 0.3; 0.3; 0.3 |];
              value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
              range_width = None;
            }
        in
        let decomp = Decomp.build pset in
        let tree = Tree.build decomp (Tree.default_config decomp) in
        let naive = Naive.build pset in
        let counting = Counting.build pset in
        let events = 2000 in
        let dists = Array.map Dist.uniform axes in
        let simulate_with matcher =
          let rng = Prng.create ~seed:(seed + p + 7) in
          let ops = Ops.create () in
          for _ = 1 to events do
            let coords = Workload.event_coords rng dists in
            let values =
              Array.mapi
                (fun i c ->
                  Genas_model.Axis.value (Schema.attribute schema i).Schema.domain c)
                coords
            in
            let event = Genas_model.Event.of_values_exn schema values in
            matcher ops event
          done;
          Ops.per_event ops
        in
        [
          string_of_int p;
          Report.f2 (simulate_with (fun ops e -> ignore (Naive.match_event ~ops naive e)));
          Report.f2 (simulate_with (fun ops e -> ignore (Counting.match_event ~ops counting e)));
          Report.f2 (simulate_with (fun ops e -> ignore (Tree.match_event ~ops tree e)));
        ])
      [ 10; 50; 200; 1000 ]
  in
  Report.table
    ~title:"Baselines — comparisons per event vs profile count (3 attrs, uniform events)"
    ~columns:[ "profiles"; "naive"; "counting"; "tree (natural)" ]
    rows

let outlook_strategies ?(seed = 1030) ?(p = 50) () =
  let strategies =
    [
      ("natural", `Measure Selectivity.V_natural_asc);
      ("event (V1)", `Measure Selectivity.V1);
      ("binary", `Binary);
      ("hashed", `Hashed);
      ("auto", `Auto);
    ]
  in
  value_reordering_table
    ~title:"Outlook — hash-based search and per-attribute auto strategy"
    ~seed ~p
    ~combos:
      [
        ("d37", "equal"); ("d5", "d41"); ("d3", "d39"); ("d39", "d18");
        ("d40", "d17"); ("d42", "d1"); ("d39", "d1");
      ]
    ~strategies
    ~note:
      "hashed charges one comparison per node (ignores hashing's constant \
       factor); auto picks per attribute among natural/V1/V2/V3/binary"

let ablation_quench ?(seed = 1031) () =
  let schema = Workload.normalized_schema ~attrs:2 ~points:100 () in
  let axes =
    Array.init 2 (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let rows =
    List.map
      (fun width ->
        let rng = Prng.create ~seed:(seed + int_of_float (width *. 100.0)) in
        let pset =
          Workload.gen_profiles rng schema
            {
              Workload.p = 40;
              dontcare = [| 0.0; 0.0 |];
              value_dists =
                Array.map (fun ax -> Shape.peak ~at:0.5 ~mass:1.0 ~width ax) axes;
              range_width = None;
            }
        in
        let quench = Genas_ens.Quench.build pset in
        let events = 5000 in
        let suppressed = ref 0 in
        for _ = 1 to events do
          let coords =
            Array.map (fun ax -> Dist.sample rng (Dist.uniform ax)) axes
          in
          let wanted =
            Array.for_all Fun.id
              (Array.mapi
                 (fun attr c -> Genas_ens.Quench.wanted_coord quench ~attr c)
                 coords)
          in
          if not wanted then incr suppressed
        done;
        [
          Printf.sprintf "%.0f%%" (width *. 100.0);
          Report.f2 (Genas_ens.Quench.coverage_share quench ~attr:0);
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int !suppressed /. float_of_int events);
        ])
      [ 0.05; 0.10; 0.20; 0.40; 0.80 ]
  in
  Report.table
    ~title:"Quenching — publisher-side suppression vs subscription concentration"
    ~columns:[ "profile peak width"; "wanted share (attr 0)"; "events suppressed" ]
    ~notes:[ "40 equality profiles on 2 attributes; uniform event stream" ]
    rows

let ablation_routing ?(seed = 1032) () =
  let schema = Workload.normalized_schema ~attrs:1 ~points:100 () in
  let rows =
    List.map
      (fun (label, gen_profile) ->
        let nodes = 6 in
        let net = Genas_ens.Router.line schema ~nodes in
        let rng = Prng.create ~seed in
        let p = 20 in
        for i = 0 to p - 1 do
          ignore
            (Genas_ens.Router.subscribe net ~at:(i mod nodes)
               ~subscriber:(Printf.sprintf "s%d" i)
               ~profile:(gen_profile rng i)
               (fun _ -> ()))
        done;
        [
          label;
          string_of_int (Genas_ens.Router.sub_messages net);
          string_of_int (p * (nodes - 1));
        ])
      [
        ( "disjoint (no covering)",
          fun _rng i ->
            Genas_profile.Profile.create_exn schema
              [ ("a0", Genas_profile.Predicate.Eq (Genas_model.Value.Int (i * 5))) ] );
        ( "nested ranges (heavy covering)",
          fun _rng i ->
            Genas_profile.Profile.create_exn schema
              [
                ( "a0",
                  Genas_profile.Predicate.Between
                    {
                      lo = Genas_model.Value.Int (40 - (i mod 5));
                      lo_closed = true;
                      hi = Genas_model.Value.Int (60 + (i mod 5));
                      hi_closed = true;
                    } );
              ] );
      ]
  in
  Report.table
    ~title:"Routing — covering-pruned subscription messages vs flooding bound"
    ~columns:[ "workload"; "messages (covering)"; "flooding bound" ]
    ~notes:[ "20 subscriptions spread over a 6-broker line" ]
    rows

let ablation_adaptive ?(seed = 1033) () =
  let schema = Workload.normalized_schema ~attrs:1 ~points:100 () in
  let axis = Axis.of_domain (Schema.attribute schema 0).Schema.domain in
  let make_pset () =
    let rng = Prng.create ~seed in
    Workload.gen_profiles rng schema
      {
        Workload.p = 50;
        dontcare = [| 0.0 |];
        value_dists = [| Shape.peak ~at:0.8 ~mass:1.0 ~width:0.2 axis |];
        range_width = None;
      }
  in
  let spec =
    { Reorder.attr_choice = Reorder.Attr_natural;
      value_choice = `Measure Selectivity.V1 }
  in
  let phase_dists =
    [ ("uniform", Dist.uniform axis);
      (* A narrow hot-spot inside the subscribed region: a few cells
         dominate, so distribution-aware reordering has leverage. *)
      ("hot-spot at 0.85", Shape.peak ~at:0.85 ~mass:0.9 ~width:0.04 axis) ]
  in
  let run ~adaptive =
    let engine = Genas_core.Engine.create ~spec (make_pset ()) in
    let wrapped =
      if adaptive then
        Some
          (Genas_core.Adaptive.create
             ~policy:{ Genas_core.Adaptive.warmup = 200; check_every = 100;
                       drift_threshold = 0.2 }
             engine)
      else None
    in
    let rng = Prng.create ~seed:(seed + 1) in
    List.map
      (fun (label, dist) ->
        (* Warm phase, then measure the last 1000 events of the phase. *)
        let window_ops = Genas_filter.Ops.create () in
        for i = 1 to 3000 do
          let c = Dist.sample rng dist in
          let event =
            Genas_model.Event.of_values_exn schema
              [| Axis.value (Schema.attribute schema 0).Schema.domain c |]
          in
          (match wrapped with
          | Some a -> ignore (Genas_core.Adaptive.match_event a event)
          | None -> ignore (Genas_core.Engine.match_event engine event));
          if i > 2000 then begin
            let ops = Genas_filter.Ops.create () in
            ignore
              (Genas_filter.Tree.match_event ~ops
                 (Genas_core.Engine.tree engine) event);
            Genas_filter.Ops.add ops ~into:window_ops
          end
        done;
        (label, Genas_filter.Ops.per_event window_ops))
      phase_dists
  in
  let static = run ~adaptive:false in
  let adaptive = run ~adaptive:true in
  let rows =
    List.map2
      (fun (label, s) (_, a) ->
        [ label; Report.f2 s; Report.f2 a ])
      static adaptive
  in
  Report.table
    ~title:"Adaptive engine — ops/event across a distribution shift"
    ~columns:[ "event phase"; "static (planned once)"; "adaptive (drift-driven)" ]
    ~notes:
      [
        "50 profiles concentrated at 0.8 of the domain; V1 ordering; window = \
         last 1000 events of each 3000-event phase";
      ]
    rows

(* Correlated events: two latent regimes couple the attributes. The
   independence assumption of the paper's tests (and of [Cost.evaluate])
   mispredicts both cost and match rate; the mixture-aware evaluator
   matches simulation. *)
let correlated ?(seed = 1040) () =
  let schema = Workload.normalized_schema ~attrs:2 ~points:100 () in
  let axes =
    Array.init 2 (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let peak at ax = Shape.peak ~at ~mass:0.95 ~width:0.1 ax in
  let joint =
    Genas_dist.Joint.mixture
      [
        (0.5, [| peak 0.1 axes.(0); peak 0.1 axes.(1) |]);
        (0.5, [| peak 0.9 axes.(0); peak 0.9 axes.(1) |]);
      ]
  in
  (* Profiles watch the anti-correlated quadrants: marginally plausible,
     jointly almost impossible. *)
  let rng = Prng.create ~seed in
  let pset = Profile_set.create schema in
  for i = 0 to 29 do
    let lo_side = i mod 2 = 0 in
    let v0 = if lo_side then Prng.int_in rng ~lo:5 ~hi:15 else Prng.int_in rng ~lo:85 ~hi:95 in
    let v1 = if lo_side then Prng.int_in rng ~lo:85 ~hi:95 else Prng.int_in rng ~lo:5 ~hi:15 in
    ignore
      (Profile_set.add pset
         (Genas_profile.Profile.create_exn schema
            [
              ("a0", Genas_profile.Predicate.Eq (Genas_model.Value.Int v0));
              ("a1", Genas_profile.Predicate.Eq (Genas_model.Value.Int v1));
            ]))
  done;
  let stats = Stats.create (Decomp.build pset) in
  Array.iteri
    (fun attr _ ->
      Stats.assume_event_dist stats ~attr (Genas_dist.Joint.marginal joint ~attr))
    axes;
  let rows =
    List.map
      (fun (label, value_choice) ->
        let tree =
          Reorder.build stats
            { Reorder.attr_choice = Reorder.Attr_natural; value_choice }
        in
        let indep = Cost.evaluate_with_stats tree stats in
        let jointly = Cost.evaluate_joint tree joint in
        let sim =
          Simulate.run_joint (Prng.create ~seed:(seed + 1)) tree joint
            ~events:40_000
        in
        [
          label;
          Report.f2 indep.Cost.per_event;
          Report.f2 jointly.Cost.per_event;
          Report.f2 sim.Simulate.per_event;
          Report.f4 indep.Cost.expected_matches;
          Report.f4 jointly.Cost.expected_matches;
          Report.f4 sim.Simulate.match_rate;
        ])
      [
        ("natural", `Measure Selectivity.V_natural_asc);
        ("event order (V1)", `Measure Selectivity.V1);
        ("binary", `Binary);
      ]
  in
  Report.table
    ~title:"Correlated events — independence assumption vs conditional evaluation"
    ~columns:
      [ "strategy"; "ops (indep)"; "ops (joint)"; "ops (simulated)";
        "matches (indep)"; "matches (joint)"; "matches (simulated)" ]
    ~notes:
      [
        "two anti-correlated regimes; 30 profiles on the cross quadrants; \
         the joint evaluator carries conditional cell probabilities (section 3's \
         E(Xj | Xj-1,...)) and agrees with simulation, the independent one \
         does not";
      ]
    rows

(* The paper's last outlook item: "we also investigate the influence of
   don't care-edges and different operators on the performance." *)
let dontcare_influence ?(seed = 1050) () =
  let attrs = 3 in
  let schema = Workload.normalized_schema ~attrs ~points:100 () in
  let axes =
    Array.init attrs (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let build ~dontcare ~range_width =
    let rng = Prng.create ~seed in
    let pset =
      Workload.gen_profiles rng schema
        {
          Workload.p = 50;
          dontcare = Array.make attrs dontcare;
          value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
          range_width;
        }
    in
    let stats = Stats.create (Decomp.build pset) in
    Array.iteri (fun i ax -> Stats.assume_event_dist stats ~attr:i (Dist.uniform ax)) axes;
    stats
  in
  let cost stats value_choice =
    let tree =
      Reorder.build stats { Reorder.attr_choice = Reorder.Attr_natural; value_choice }
    in
    let r = Cost.evaluate_with_stats tree stats in
    (r.Cost.per_event, tree.Tree.stats)
  in
  let rows =
    List.concat_map
      (fun (op_label, range_width) ->
        List.map
          (fun dontcare ->
            let stats = build ~dontcare ~range_width in
            let v1, tstats = cost stats (`Measure Selectivity.V1) in
            let bin, _ = cost stats `Binary in
            [
              op_label;
              Printf.sprintf "%.0f%%" (dontcare *. 100.0);
              Report.f2 v1;
              Report.f2 bin;
              string_of_int tstats.Tree.nodes;
              string_of_int tstats.Tree.edges;
            ])
          [ 0.0; 0.2; 0.4; 0.6 ])
      [ ("equality", None); ("ranges (15% wide)", Some 0.15) ]
  in
  Report.table
    ~title:"Outlook — influence of don't-care edges and operator types"
    ~columns:
      [ "operators"; "don't-care prob"; "ops/event (V1)"; "ops/event (binary)";
        "tree nodes"; "tree edges" ]
    ~notes:
      [
        "50 profiles, 3 attributes, uniform events; don't-cares deepen the \
         determinized tree (profiles duplicate under every edge) and raise \
         the per-event cost";
      ]
    rows

(* §4.3's queueing argument: "for filter components operating in their
   optimal working point (freq_events ≈ freq_filter) events do not
   queue. Thus, our algorithm improves performance for selected
   profiles since fast filtered events are not slowed down by other
   events." A single-server FIFO queue where service time = the
   event's comparison count; notification latency is the sojourn
   (waiting + filtering) of the event that triggers it. *)
let queueing ?(seed = 1060) () =
  let p = 50 in
  (* Events peak high, profiles peak low: the subscribed ("crowd")
     events are rare, so per-event and per-profile optima diverge
     (the Fig. 5 crossover). *)
  let stats = single_attr_stats ~seed ~p ~pe:"95%high" ~pp:"95%low" in
  let dist = Stats.event_dist stats ~attr:0 in
  (* Arrival rate fixed across strategies: 80 % utilization of the
     binary-search filter — near the paper's optimal working point for
     a reasonable implementation. *)
  let binary_tree =
    Reorder.build stats { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary }
  in
  let binary_mean = (Cost.evaluate_with_stats binary_tree stats).Cost.per_event in
  let mean_interarrival = binary_mean /. 0.8 in
  let events = 30_000 in
  let rows =
    List.map
      (fun (label, value_choice) ->
        let tree =
          Reorder.build stats { Reorder.attr_choice = Reorder.Attr_natural; value_choice }
        in
        let rng = Prng.create ~seed:(seed + 1) in
        let clock = ref 0.0 and finish = ref 0.0 in
        let busy = ref 0.0 in
        let n_all = ref 0 and s_all = ref 0.0 in
        let n_match = ref 0 and s_match = ref 0.0 in
        for _ = 1 to events do
          clock := !clock +. (mean_interarrival *. -.log (1.0 -. Prng.float rng ~bound:1.0));
          let ops = Ops.create () in
          let matched = Tree.match_coords ~ops tree [| Dist.sample rng dist |] in
          let service = float_of_int ops.Ops.comparisons in
          let start = Float.max !clock !finish in
          finish := start +. service;
          busy := !busy +. service;
          let sojourn = !finish -. !clock in
          incr n_all;
          s_all := !s_all +. sojourn;
          if matched <> [] then begin
            incr n_match;
            s_match := !s_match +. sojourn
          end
        done;
        let mean_ops = (Cost.evaluate_with_stats tree stats).Cost.per_event in
        [
          label;
          Report.f2 mean_ops;
          Report.f2 (!busy /. Float.max !finish !clock);
          Report.f2 (!s_all /. float_of_int !n_all);
          (if !n_match = 0 then "n/a" else Report.f2 (!s_match /. float_of_int !n_match));
        ])
      [
        ("profile order (V2)", `Measure Selectivity.V2);
        ("event order (V1)", `Measure Selectivity.V1);
        ("binary search", `Binary);
      ]
  in
  Report.table
    ~title:"Queueing — notification sojourn at fixed arrival rate (80% of binary capacity)"
    ~columns:
      [ "strategy"; "mean ops"; "utilization"; "sojourn (all events)";
        "sojourn (matching events)" ]
    ~notes:
      [
        "Pe = 95%high, Pp = 95%low, p = 50; service time = comparisons, \
         FIFO single server; a strategy whose mean ops exceeds the arrival \
         budget saturates and its per-profile advantage drowns in queueing \
         delay — the paper's 'optimal working point' caveat";
      ]
    rows

(* §4.3: "we tested all permutations of the 60 distributions with 8
   different orderings plus binary search" — the full ordering grid on
   representative combinations. *)
let orderings8 ?(seed = 1070) ?(p = 50) () =
  let orderings =
    [
      ("nat asc", `Measure Selectivity.V_natural_asc);
      ("nat desc", `Measure Selectivity.V_natural_desc);
      ("Pe desc", `Measure Selectivity.V1);
      ("Pe asc", `Measure Selectivity.V1_asc);
      ("Pp desc", `Measure Selectivity.V2);
      ("Pp asc", `Measure Selectivity.V2_asc);
      ("PePp desc", `Measure Selectivity.V3);
      ("PePp asc", `Measure Selectivity.V3_asc);
      ("binary", `Binary);
    ]
  in
  value_reordering_table
    ~title:"All 8 value orderings plus binary search (section 4.3's protocol)"
    ~seed ~p
    ~combos:[ ("d37", "equal"); ("d39", "d18"); ("equal", "95%high"); ("gauss", "gauss") ]
    ~strategies:orderings
    ~note:
      "ascending probability orders scan the least likely values first — \
       the worst case, bounding the reordering's spread"

(* §4.3: "the selectivity based on the event order is a fragile
   measure, not robust to changes in the distributions. Reordering
   based on this measure is therefore recommended for systems with
   stable distributions." Plan a V1 tree for one distribution, then
   evaluate it under increasingly perturbed event streams. *)
let fragility ?(seed = 1080) ?(p = 50) () =
  let stats = single_attr_stats ~seed ~p ~pe:"d37" ~pp:"equal" in
  let planned = Stats.event_dist stats ~attr:0 in
  let axis = Dist.axis planned in
  let v1_tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural;
        value_choice = `Measure Selectivity.V1 }
  in
  let binary_tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary }
  in
  let decomp = Stats.decomp stats in
  let rows =
    List.map
      (fun eps ->
        (* Actual events: (1-eps) of the planned distribution mixed
           with eps of its mirror image (peak relocated). *)
        let drifted =
          Dist.mix
            [
              (1.0 -. eps, planned);
              (eps, (Genas_dist.Catalog.find_exn "95%low") axis);
            ]
        in
        let cell_probs = [| Dist.cell_probs drifted decomp.Genas_filter.Decomp.overlays.(0) |] in
        let replanned =
          (* What the adaptive component would do: re-plan V1 for the
             drifted distribution. *)
          let stats' = single_attr_stats ~seed ~p ~pe:"d37" ~pp:"equal" in
          Stats.assume_event_dist stats' ~attr:0 drifted;
          Reorder.build stats'
            { Reorder.attr_choice = Reorder.Attr_natural;
              value_choice = `Measure Selectivity.V1 }
        in
        [
          Printf.sprintf "%.0f%%" (eps *. 100.0);
          Report.f2 (Cost.evaluate v1_tree ~cell_probs).Cost.per_event;
          Report.f2 (Cost.evaluate replanned ~cell_probs).Cost.per_event;
          Report.f2 (Cost.evaluate binary_tree ~cell_probs).Cost.per_event;
        ])
      [ 0.0; 0.2; 0.5; 0.8 ]
  in
  Report.table
    ~title:"Fragility of event-order selectivity under distribution drift"
    ~columns:
      [ "drift share"; "V1 (planned once)"; "V1 (re-planned)"; "binary" ]
    ~notes:
      [
        "events drift from d37 toward a 95%-low peak; the stale V1 order \
         degrades while binary search is insensitive and re-planning (the \
         adaptive component) recovers — section 4.3's stability caveat";
      ]
    rows
