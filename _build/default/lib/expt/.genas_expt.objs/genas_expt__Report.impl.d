lib/expt/report.ml: Array Float Format List Printf String
