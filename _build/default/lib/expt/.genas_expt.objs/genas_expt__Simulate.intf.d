lib/expt/simulate.mli: Genas_dist Genas_filter Genas_prng
