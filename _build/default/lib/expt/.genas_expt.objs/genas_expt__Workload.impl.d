lib/expt/workload.ml: Array Float Genas_dist Genas_model Genas_prng Genas_profile List Printf
