lib/expt/figures.mli: Report
