lib/expt/report.mli: Format
