lib/expt/figures.ml: Array Float Fun Genas_core Genas_dist Genas_ens Genas_filter Genas_interval Genas_model Genas_prng Genas_profile List Obj Printf Report Simulate String Sys Workload
