lib/expt/simulate.ml: Array Float Genas_dist Genas_filter Genas_prng List
