lib/expt/workload.mli: Genas_dist Genas_model Genas_prng Genas_profile
