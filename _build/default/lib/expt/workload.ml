module Prng = Genas_prng.Prng
module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Dist = Genas_dist.Dist
module Catalog = Genas_dist.Catalog
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set

type profile_gen = {
  p : int;
  dontcare : float array;
  value_dists : Dist.t array;
  range_width : float option;
}

let normalized_schema ?(attrs = 1) ?(points = 100) () =
  Schema.create_exn
    (List.init attrs (fun i ->
         (Printf.sprintf "a%d" i, Domain.int_range ~lo:0 ~hi:(points - 1))))

let value_of_coord dom c = Axis.value dom c

let gen_profiles rng schema gen =
  let n = Schema.arity schema in
  if gen.p <= 0 then invalid_arg "Workload.gen_profiles: p must be positive";
  if Array.length gen.dontcare <> n || Array.length gen.value_dists <> n then
    invalid_arg "Workload.gen_profiles: arity mismatch";
  let pset = Profile_set.create schema in
  let draw_tests () =
    List.concat
      (List.init n (fun attr ->
           if Prng.bernoulli rng ~p:gen.dontcare.(attr) then []
           else begin
             let a = Schema.attribute schema attr in
             let axis = Axis.of_domain a.Schema.domain in
             let c = Dist.sample rng gen.value_dists.(attr) in
             match gen.range_width with
             | None -> [ (a.Schema.name, Predicate.Eq (value_of_coord a.Schema.domain c)) ]
             | Some w ->
               let half = w *. (axis.Axis.hi -. axis.Axis.lo) /. 2.0 in
               let lo = Float.max axis.Axis.lo (c -. half) in
               let hi = Float.min axis.Axis.hi (c +. half) in
               [
                 ( a.Schema.name,
                   Predicate.Between
                     {
                       lo = value_of_coord a.Schema.domain lo;
                       lo_closed = true;
                       hi = value_of_coord a.Schema.domain hi;
                       hi_closed = true;
                     } );
               ]
           end))
  in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < gen.p do
    incr attempts;
    if !attempts > gen.p * 100 then
      invalid_arg
        "Workload.gen_profiles: cannot draw constraining profiles (all \
         don't-care probabilities too high?)";
    let tests = draw_tests () in
    if tests <> [] then begin
      match Profile.create ~name:(Printf.sprintf "w%d" !added) schema tests with
      | Ok p ->
        ignore (Profile_set.add pset p);
        incr added
      | Error _ -> ()
    end
  done;
  pset

let event_coords rng dists = Array.map (fun d -> Dist.sample rng d) dists

let dists_of_names schema names =
  let n = Schema.arity schema in
  if List.length names <> n then
    invalid_arg "Workload.dists_of_names: arity mismatch";
  Array.of_list
    (List.mapi
       (fun i name ->
         let axis = Axis.of_domain (Schema.attribute schema i).Schema.domain in
         (Catalog.find_exn name) axis)
       names)
