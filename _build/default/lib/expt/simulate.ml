module Prng = Genas_prng.Prng
module Dist = Genas_dist.Dist
module Tree = Genas_filter.Tree
module Decomp = Genas_filter.Decomp
module Ops = Genas_filter.Ops

type result = {
  events : int;
  per_event : float;
  per_match : float;
  match_rate : float;
  ci_halfwidth : float;
  converged : bool;
}

let z95 = 1.96

type acc = {
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable match_ops_sum : float;  (* Σ ops(e) · matches(e) *)
  mutable matches : int;
}

let step rng tree samplers acc =
  let ops = Ops.create () in
  let coords = Array.map (fun s -> s rng) samplers in
  let matched = Tree.match_coords ~ops tree coords in
  let c = float_of_int ops.Ops.comparisons in
  acc.n <- acc.n + 1;
  acc.sum <- acc.sum +. c;
  acc.sumsq <- acc.sumsq +. (c *. c);
  let m = List.length matched in
  acc.matches <- acc.matches + m;
  acc.match_ops_sum <- acc.match_ops_sum +. (c *. float_of_int m)

let halfwidth acc =
  if acc.n < 2 then Float.infinity
  else
    let n = float_of_int acc.n in
    let mean = acc.sum /. n in
    let var = Float.max 0.0 ((acc.sumsq /. n) -. (mean *. mean)) in
    z95 *. sqrt (var /. n)

let finish acc ~converged =
  let n = float_of_int acc.n in
  {
    events = acc.n;
    per_event = (if acc.n = 0 then Float.nan else acc.sum /. n);
    per_match =
      (if acc.matches = 0 then Float.nan
       else acc.match_ops_sum /. float_of_int acc.matches);
    match_rate = (if acc.n = 0 then Float.nan else float_of_int acc.matches /. n);
    ci_halfwidth = halfwidth acc;
    converged;
  }

let check_arity tree dists =
  if Array.length dists <> Decomp.arity tree.Tree.decomp then
    invalid_arg "Simulate: distribution arity mismatch"

let run ?(min_events = 200) ?(max_events = 200_000) ?(precision = 0.05) rng
    tree dists =
  check_arity tree dists;
  let samplers = Array.map Dist.sampler dists in
  let acc = { n = 0; sum = 0.0; sumsq = 0.0; match_ops_sum = 0.0; matches = 0 } in
  let converged = ref false in
  while (not !converged) && acc.n < max_events do
    step rng tree samplers acc;
    if acc.n >= min_events then begin
      let mean = acc.sum /. float_of_int acc.n in
      (* Relative precision on the mean; an all-zero-cost stream (empty
         tree) is converged by definition. *)
      let hw = halfwidth acc in
      if mean <= 0.0 then converged := hw = 0.0
      else converged := hw /. mean <= precision
    end
  done;
  finish acc ~converged:!converged

let run_fixed rng tree dists ~events =
  check_arity tree dists;
  let samplers = Array.map Dist.sampler dists in
  let acc = { n = 0; sum = 0.0; sumsq = 0.0; match_ops_sum = 0.0; matches = 0 } in
  for _ = 1 to events do
    step rng tree samplers acc
  done;
  finish acc ~converged:true

let run_joint rng tree joint ~events =
  if Genas_dist.Joint.arity joint <> Decomp.arity tree.Tree.decomp then
    invalid_arg "Simulate.run_joint: joint arity mismatch";
  let acc = { n = 0; sum = 0.0; sumsq = 0.0; match_ops_sum = 0.0; matches = 0 } in
  for _ = 1 to events do
    let ops = Ops.create () in
    let coords = Genas_dist.Joint.sample rng joint in
    let matched = Tree.match_coords ~ops tree coords in
    let c = float_of_int ops.Ops.comparisons in
    acc.n <- acc.n + 1;
    acc.sum <- acc.sum +. c;
    acc.sumsq <- acc.sumsq +. (c *. c);
    let m = List.length matched in
    acc.matches <- acc.matches + m;
    acc.match_ops_sum <- acc.match_ops_sum +. (c *. float_of_int m)
  done;
  finish acc ~converged:true
