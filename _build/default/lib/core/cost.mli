(** Analytic cost model (§3, Eq. 2 and the conditional-expectation sum).

    Computes the *exact* expected comparison counts of a profile tree
    under per-attribute event distributions, by dynamic programming
    over the tree's DAG (shared subtrees are evaluated once). The node
    search primitive evaluated is literally {!Genas_filter.Tree.scan} —
    the code the runtime matcher executes — so for independent
    attribute distributions the simulated per-event average converges
    to [per_event] by the law of large numbers (tests assert this).

    This realizes the paper's test scenario TV4: "all possible events,
    average #operations computed based on #operations and event
    distribution (according to Eq. 2)". *)

type report = {
  per_event : float;
      (** R: expected comparisons per event, including the R0 term for
          events rejected at some level *)
  per_level : float array;
      (** expected comparisons contributed by each tree level *)
  match_prob : float;  (** probability an event reaches a leaf *)
  expected_matches : float;  (** E(#matched profiles per event) *)
  ops_times_matches : float;  (** E(comparisons × #matched profiles) *)
  per_match : float;
      (** expected comparisons per (event, matched profile) pair:
          [ops_times_matches / expected_matches]; [nan] if nothing ever
          matches — the per-profile view of Fig. 5(b) *)
}

val evaluate : Genas_filter.Tree.t -> cell_probs:float array array -> report
(** [cell_probs.(attr)] = event probability of each global cell of that
    attribute (as produced by {!Stats.event_cell_probs}), assumed
    independent across attributes — the protocol the paper's tests use.

    @raise Invalid_argument on dimension mismatch. *)

val evaluate_with_stats : Genas_filter.Tree.t -> Stats.t -> report
(** [evaluate] with the cell probabilities read from the statistics
    objects. *)

val evaluate_joint : Genas_filter.Tree.t -> Genas_dist.Joint.t -> report
(** Exact expected cost under a *correlated* event distribution
    (mixture of products): the evaluator carries per-component reach
    weights down every tree path, so the conditional cell
    probabilities of §3 — P(x_j | x_{j-1}, …) — are respected exactly.
    Unlike {!evaluate} this cannot share subtree results (the weights
    differ per path), so it enumerates root-to-leaf paths; intended for
    experiment-sized trees. Paths of probability below 1e-14 are
    pruned. *)

type profile_report = {
  id : int;
  match_prob_p : float;  (** probability an event matches this profile *)
  ops_given_match : float;
      (** expected comparisons of an event, conditioned on it matching
          this profile; [nan] if [match_prob_p = 0] *)
}

val per_profile :
  Genas_filter.Tree.t -> cell_probs:float array array -> profile_report list
(** Per-profile notification cost, ascending id — quantifies the
    paper's claim that V2/V3 "support user groups with similar
    interest" at the price of average event latency. *)
