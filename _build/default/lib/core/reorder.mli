(** Tree reordering: turning selectivity measures into tree configs
    (§4.1 "the tree is reordered such that attributes with high
    selectivity are at the top level of the tree, and for each
    attribute the values with highest selectivity are tested first").

    Measure A3 is realized exactly as the paper describes its cost —
    exhaustive search over attribute permutations, O(n!·(2p−1)) — using
    the analytic evaluator as the objective, and is guarded to small
    arities. *)

type attr_choice =
  | Attr_natural  (** schema order (the non-reordered tree) *)
  | Attr_measured of Selectivity.attr_measure * [ `Descending | `Ascending ]
  | Attr_a3  (** exhaustive best permutation (measure A3) *)
  | Attr_explicit of int array

type value_choice =
  [ `Measure of Selectivity.value_measure
  | `Binary
  | `Hashed  (** hash-based location (§5 outlook) *)
  | `Auto
    (** per-attribute automatic strategy selection (§5: "event
        filtering algorithms should be adaptive in order to apply the
        optimal filtering strategy for each attribute"): starting from
        all-binary, one coordinate-descent pass picks, per attribute,
        whichever of natural / V1 / V2 / V3 / binary minimizes the
        analytic expected cost of the whole tree. [`Hashed] is excluded
        from the candidates — its O(1) comparison count would always
        win, hiding the constant-factor cost hashing carries in
        practice. *)
  ]

type spec = {
  attr_choice : attr_choice;
  value_choice : value_choice;
      (** applied uniformly to every attribute ([`Auto] resolves to a
          per-attribute mix) *)
}

val default_spec : spec
(** Natural attribute order, natural-ascending linear values — the
    baseline tree of Gough & Smith. *)

val config : Stats.t -> spec -> Genas_filter.Tree.config
(** Plan a tree configuration from the current statistics.

    @raise Invalid_argument for [Attr_a3] with more than 8 attributes,
    or a malformed [Attr_explicit]. *)

val build : ?share:bool -> Stats.t -> spec -> Genas_filter.Tree.t
(** [config] followed by {!Genas_filter.Tree.build} on the statistics'
    decomposition. *)

val a3_order : Stats.t -> value_choice:value_choice -> int array
(** The A3 permutation alone (argmin of analytic expected cost over all
    attribute orders, value strategy fixed). *)

val auto_strategies :
  Stats.t -> attr_order:int array -> Genas_filter.Order.strategy array
(** The [`Auto] resolution for a fixed attribute order, exposed for
    inspection and tests. *)
