lib/core/engine.mli: Cost Genas_filter Genas_model Genas_profile Reorder Stats
