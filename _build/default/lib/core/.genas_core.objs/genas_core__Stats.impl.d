lib/core/stats.ml: Array Float Genas_dist Genas_filter Genas_interval Genas_model Hashtbl List Option
