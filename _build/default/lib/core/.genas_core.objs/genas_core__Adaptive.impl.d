lib/core/adaptive.ml: Array Engine Float Genas_dist Genas_filter Stats
