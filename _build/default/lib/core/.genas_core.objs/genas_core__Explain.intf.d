lib/core/explain.mli: Format Genas_filter Genas_model Genas_profile
