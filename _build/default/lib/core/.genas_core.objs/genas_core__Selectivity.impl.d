lib/core/selectivity.ml: Array Float Fun Genas_filter Int Stats
