lib/core/selectivity.mli: Genas_filter Stats
