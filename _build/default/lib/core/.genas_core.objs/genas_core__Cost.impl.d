lib/core/cost.ml: Array Float Genas_dist Genas_filter Genas_interval Hashtbl List Option Stats
