lib/core/adaptive.mli: Engine Genas_model Genas_profile
