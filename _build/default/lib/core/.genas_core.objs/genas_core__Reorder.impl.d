lib/core/reorder.ml: Array Cost Fun Genas_filter List Selectivity Stats
