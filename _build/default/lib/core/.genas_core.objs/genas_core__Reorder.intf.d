lib/core/reorder.mli: Genas_filter Selectivity Stats
