lib/core/stats.mli: Genas_dist Genas_filter Genas_model
