lib/core/explain.ml: Array Float Format Genas_filter Genas_interval Genas_model Genas_profile Int List String
