lib/core/engine.ml: Cost Genas_filter Genas_profile Reorder Stats
