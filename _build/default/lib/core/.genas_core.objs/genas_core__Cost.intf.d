lib/core/cost.mli: Genas_dist Genas_filter Stats
