module Order = Genas_filter.Order
module Decomp = Genas_filter.Decomp

type value_measure =
  | V_natural_asc
  | V_natural_desc
  | V1
  | V2
  | V3
  | V1_asc
  | V2_asc
  | V3_asc

type attr_measure = A1 | A2

let value_keys stats ~attr = function
  | V_natural_asc | V_natural_desc -> None
  | V1 | V1_asc -> Some (Stats.event_cell_probs stats ~attr)
  | V2 | V2_asc -> Some (Stats.profile_cell_weights stats ~attr)
  | V3 | V3_asc ->
    let pe = Stats.event_cell_probs stats ~attr in
    let pp = Stats.profile_cell_weights stats ~attr in
    Some (Array.mapi (fun i e -> e *. pp.(i)) pe)

let value_order stats ~attr measure =
  match measure with
  | V_natural_asc -> Order.Natural_asc
  | V_natural_desc -> Order.Natural_desc
  | V1 | V2 | V3 -> (
    match value_keys stats ~attr measure with
    | Some keys -> Order.By_key_desc keys
    | None -> Order.Natural_asc)
  | V1_asc | V2_asc | V3_asc -> (
    match value_keys stats ~attr measure with
    | Some keys -> Order.By_key_asc keys
    | None -> Order.Natural_asc)

let strategy stats ~attr = function
  | `Binary -> Order.Binary
  | `Hashed -> Order.Hashed
  | `Measure m -> Order.Linear (value_order stats ~attr m)

let attribute_selectivity stats ~attr measure =
  let d0_share = Decomp.d0_share (Stats.decomp stats) ~attr in
  match measure with
  | A1 -> d0_share
  | A2 -> d0_share *. Stats.d0_event_prob stats ~attr

let attr_order stats measure direction =
  let n = Decomp.arity (Stats.decomp stats) in
  let sel = Array.init n (fun a -> attribute_selectivity stats ~attr:a measure) in
  let idx = Array.init n Fun.id in
  let cmp a b =
    match direction with
    | `Descending -> (
      match Float.compare sel.(b) sel.(a) with
      | 0 -> Int.compare a b
      | c -> c)
    | `Ascending -> (
      match Float.compare sel.(a) sel.(b) with
      | 0 -> Int.compare a b
      | c -> c)
  in
  Array.sort cmp idx;
  idx
