module Tree = Genas_filter.Tree
module Decomp = Genas_filter.Decomp

type attr_choice =
  | Attr_natural
  | Attr_measured of Selectivity.attr_measure * [ `Descending | `Ascending ]
  | Attr_a3
  | Attr_explicit of int array

type value_choice =
  [ `Measure of Selectivity.value_measure | `Binary | `Hashed | `Auto ]

type spec = { attr_choice : attr_choice; value_choice : value_choice }

let default_spec =
  {
    attr_choice = Attr_natural;
    value_choice = `Measure Selectivity.V_natural_asc;
  }

let cell_probs_of stats =
  let n = Decomp.arity (Stats.decomp stats) in
  Array.init n (fun attr -> Stats.event_cell_probs stats ~attr)

(* One coordinate-descent pass: start from all-binary and, attribute by
   attribute, keep the candidate strategy that minimizes the analytic
   expected cost of the full tree. Each step can only lower the cost,
   so the result is at least as good as all-binary. *)
let auto_strategies stats ~attr_order =
  let decomp = Stats.decomp stats in
  let n = Decomp.arity decomp in
  let cell_probs = cell_probs_of stats in
  let candidates attr =
    [
      Selectivity.strategy stats ~attr (`Measure Selectivity.V_natural_asc);
      Selectivity.strategy stats ~attr (`Measure Selectivity.V1);
      Selectivity.strategy stats ~attr (`Measure Selectivity.V2);
      Selectivity.strategy stats ~attr (`Measure Selectivity.V3);
      Genas_filter.Order.Binary;
    ]
  in
  let current = Array.make n Genas_filter.Order.Binary in
  let cost () =
    let tree = Tree.build decomp { Tree.attr_order; strategies = Array.copy current } in
    (Cost.evaluate tree ~cell_probs).Cost.per_event
  in
  for level = 0 to n - 1 do
    let attr = attr_order.(level) in
    let best = ref (current.(attr), cost ()) in
    List.iter
      (fun cand ->
        current.(attr) <- cand;
        let c = cost () in
        if c < snd !best then best := (cand, c))
      (candidates attr);
    current.(attr) <- fst !best
  done;
  current

let strategies stats value_choice ~attr_order =
  let n = Decomp.arity (Stats.decomp stats) in
  match value_choice with
  | `Auto -> auto_strategies stats ~attr_order
  | (`Measure _ | `Binary | `Hashed) as choice ->
    Array.init n (fun attr -> Selectivity.strategy stats ~attr choice)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map (fun rest -> x :: rest)
          (permutations (List.filter (fun y -> y <> x) l)))
      l

let a3_order stats ~value_choice =
  let decomp = Stats.decomp stats in
  let n = Decomp.arity decomp in
  if n > 8 then
    invalid_arg "Reorder.a3_order: A3 is O(n!) and guarded to n <= 8";
  (* [`Auto] is resolved once against the natural order; re-resolving
     inside every permutation would square the already-factorial
     search. *)
  let strategies = strategies stats value_choice ~attr_order:(Array.init n Fun.id) in
  let cell_probs = cell_probs_of stats in
  let best = ref None in
  List.iter
    (fun perm ->
      let attr_order = Array.of_list perm in
      let tree = Tree.build decomp { Tree.attr_order; strategies } in
      let cost = (Cost.evaluate tree ~cell_probs).Cost.per_event in
      match !best with
      | Some (c, _) when c <= cost -> ()
      | Some _ | None -> best := Some (cost, attr_order))
    (permutations (List.init n Fun.id));
  match !best with
  | Some (_, order) -> order
  | None -> Array.init n Fun.id

let config stats spec =
  let decomp = Stats.decomp stats in
  let n = Decomp.arity decomp in
  let attr_order =
    match spec.attr_choice with
    | Attr_natural -> Array.init n Fun.id
    | Attr_measured (measure, direction) ->
      Selectivity.attr_order stats measure direction
    | Attr_a3 -> a3_order stats ~value_choice:spec.value_choice
    | Attr_explicit order ->
      if Array.length order <> n then
        invalid_arg "Reorder.config: explicit order has wrong length";
      Array.copy order
  in
  { Tree.attr_order; strategies = strategies stats spec.value_choice ~attr_order }

let build ?share stats spec =
  Tree.build ?share (Stats.decomp stats) (config stats spec)
