(** Selectivity measures (§4.1).

    Value selectivity orders the cells inside each tree node; attribute
    selectivity orders the tree levels. The paper proposes three of
    each:

    - {b V1} — descending event probability Pe(x_i),
    - {b V2} — descending profile probability Pp(x_i),
    - {b V3} — descending Pe(x_i)·Pp(x_i);

    - {b A1} — s(a) = d0(a)/d(a),
    - {b A2} — s(a) = d0(a)·Pe(D0(a))/d(a),
    - {b A3} — the attribute permutation minimizing the tree-shaped
      expected cost (conditional-probability aware; O(n!·(2p−1)), so it
      lives in {!Reorder} where the cost evaluator is available).

    Attributes are placed top-down by *descending* selectivity; the
    paper also evaluates ascending order as the worst case (TA1/TA2),
    so the direction is a parameter. *)

type value_measure =
  | V_natural_asc  (** natural domain order (the non-reordered tree) *)
  | V_natural_desc
  | V1  (** descending event probability *)
  | V2  (** descending profile probability *)
  | V3  (** descending event·profile probability *)
  | V1_asc  (** ascending variants: §4.2 supports each order "either
                descending or ascending"; ascending probability is the
                worst case used for contrast in §4.3 *)
  | V2_asc
  | V3_asc

type attr_measure = A1 | A2

val value_keys : Stats.t -> attr:int -> value_measure -> float array option
(** Per-cell sort keys for the measure; [None] for the natural orders
    (which need no key). *)

val value_order : Stats.t -> attr:int -> value_measure -> Genas_filter.Order.value_order

val strategy :
  Stats.t -> attr:int -> [ `Measure of value_measure | `Binary | `Hashed ] ->
  Genas_filter.Order.strategy
(** Search strategy for one attribute: table-based linear scan in the
    measure's order, binary search over the natural order, or
    hash-based location (§5 outlook). *)

val attribute_selectivity : Stats.t -> attr:int -> attr_measure -> float
(** s_att(a) for A1/A2. *)

val attr_order :
  Stats.t -> attr_measure -> [ `Descending | `Ascending ] -> int array
(** Attribute permutation by the measure, ties broken by natural index
    ([`Descending] is the paper's recommendation; [`Ascending] its
    worst case). *)
