module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Ops = Genas_filter.Ops

type t = {
  pset : Profile_set.t;
  bins : int;
  mutable spec : Reorder.spec;
  mutable stats : Stats.t;
  mutable tree : Tree.t;
  ops : Ops.t;
}

let plan ~bins ~old_stats pset spec =
  let decomp = Decomp.build pset in
  let stats =
    match old_stats with
    | Some s when (Stats.decomp s).Decomp.revision = decomp.Decomp.revision ->
      s
    | Some _ | None -> Stats.create ~bins decomp
  in
  let tree = Reorder.build stats spec in
  (stats, tree)

let create ?(spec = Reorder.default_spec) ?(bins = 64) pset =
  let stats, tree = plan ~bins ~old_stats:None pset spec in
  { pset; bins; spec; stats; tree; ops = Ops.create () }

let spec t = t.spec

let profiles t = t.pset

let tree t = t.tree

let stats t = t.stats

let ops t = t.ops

let rebuild t =
  (* Keep the statistics when the profile set is unchanged (the normal
     re-optimization path); refresh the decomposition otherwise. *)
  let stats, tree = plan ~bins:t.bins ~old_stats:(Some t.stats) t.pset t.spec in
  t.stats <- stats;
  t.tree <- tree

let set_spec t spec =
  t.spec <- spec;
  rebuild t

let refresh_if_stale t =
  if Tree.revision t.tree <> Profile_set.revision t.pset then begin
    (* Profiles changed: rebuild decomposition and statistics. The
       observed history refers to stale cells, so it is restarted. *)
    let decomp = Decomp.build t.pset in
    t.stats <- Stats.create ~bins:t.bins decomp;
    t.tree <- Reorder.build t.stats t.spec
  end

let match_event t event =
  refresh_if_stale t;
  Stats.observe_event t.stats event;
  Tree.match_event ~ops:t.ops t.tree event

let report t = Cost.evaluate_with_stats t.tree t.stats
