(** Match tracing: why did this event (not) match, and what did it
    cost?

    Produces the exact root-to-leaf path the tree matcher takes for one
    event — per level: the attribute tested, the value's cell, the scan
    strategy and its comparison count, and the edge taken — ending in
    the matched profiles or the rejection point. The comparisons add up
    to precisely what {!Genas_filter.Ops} would record. *)

type step = {
  level : int;
  attr : int;  (** natural attribute index tested *)
  attr_name : string;
  cell_label : string;  (** the event value's subrange, e.g. "[30,35)" *)
  strategy : Genas_filter.Order.strategy;
  comparisons : int;
  edges_at_node : int;
  outcome : [ `Edge | `Rest | `Reject ];
      (** listed edge followed / rest-edge followed / rejected here *)
}

type t = {
  steps : step list;  (** root first *)
  matched : Genas_profile.Profile_set.id list;  (** ascending; [] = rejected *)
  total_comparisons : int;
}

val trace : Genas_filter.Tree.t -> Genas_model.Event.t -> t

val trace_coords : Genas_filter.Tree.t -> float array -> t
(** From raw axis coordinates in natural attribute order. *)

val pp : Format.formatter -> t -> unit
(** One line per step plus the verdict. *)
