module Tree = Genas_filter.Tree
module Decomp = Genas_filter.Decomp
module Order = Genas_filter.Order
module Overlay = Genas_interval.Overlay

module Ph = Hashtbl.Make (struct
  type t = Tree.node

  let equal = ( == )

  let hash = Hashtbl.hash
end)

type report = {
  per_event : float;
  per_level : float array;
  match_prob : float;
  expected_matches : float;
  ops_times_matches : float;
  per_match : float;
}

type profile_report = {
  id : int;
  match_prob_p : float;
  ops_given_match : float;
}

(* For one inner node, enumerate the outcome of every global cell of
   its attribute: (cell probability, comparisons, next node option). *)
let node_outcomes tree cell_probs = function
  | Tree.Leaf _ -> []
  | Tree.Node { attr; edge_positions; children; rest; _ } ->
    let positions = tree.Tree.tables.(attr).Order.positions in
    let probs = cell_probs.(attr) in
    let outcomes = ref [] in
    Array.iteri
      (fun g p_g ->
        if p_g > 0.0 then begin
          let cost, hit =
            Tree.scan
              tree.Tree.config.strategies.(attr)
              ~edge_positions ~target:positions.(g)
          in
          let next =
            match hit with Some i -> Some children.(i) | None -> rest
          in
          outcomes := (p_g, cost, next) :: !outcomes
        end)
      probs;
    !outcomes

let check_dims tree cell_probs =
  let decomp = tree.Tree.decomp in
  let n = Decomp.arity decomp in
  if Array.length cell_probs <> n then
    invalid_arg "Cost: cell_probs arity mismatch";
  Array.iteri
    (fun attr probs ->
      let ncells = Array.length decomp.Decomp.overlays.(attr).Overlay.cells in
      if Array.length probs <> ncells then
        invalid_arg "Cost: cell_probs cell-count mismatch")
    cell_probs

let evaluate tree ~cell_probs =
  check_dims tree cell_probs;
  let n = Decomp.arity tree.Tree.decomp in
  let empty =
    {
      per_event = 0.0;
      per_level = Array.make n 0.0;
      match_prob = 0.0;
      expected_matches = 0.0;
      ops_times_matches = 0.0;
      per_match = Float.nan;
    }
  in
  match tree.Tree.root with
  | None -> empty
  | Some root ->
    (* Backward DP: expected cost C, leaf-reach probability T, expected
       matches M, and the joint J = E[cost × matches] from each node. *)
    let memo : (float * float * float * float) Ph.t = Ph.create 256 in
    let rec dp node =
      match Ph.find_opt memo node with
      | Some r -> r
      | None ->
        let r =
          match node with
          | Tree.Leaf ids ->
            (0.0, 1.0, float_of_int (Array.length ids), 0.0)
          | Tree.Node _ ->
            List.fold_left
              (fun (c, t, m, j) (p_g, cost, next) ->
                let cn, tn, mn, jn =
                  match next with
                  | Some nd -> dp nd
                  | None -> (0.0, 0.0, 0.0, 0.0)
                in
                let cost = float_of_int cost in
                ( c +. (p_g *. (cost +. cn)),
                  t +. (p_g *. tn),
                  m +. (p_g *. mn),
                  j +. (p_g *. ((cost *. mn) +. jn)) ))
              (0.0, 0.0, 0.0, 0.0)
              (node_outcomes tree cell_probs node)
        in
        Ph.replace memo node r;
        r
    in
    let c, t, m, j = dp root in
    (* Forward pass for the per-level breakdown: accumulate reach
       probabilities level by level (every parent of a level-L node
       sits at level L−1, so one sweep suffices). *)
    let per_level = Array.make n 0.0 in
    let current = Ph.create 64 in
    Ph.replace current root 1.0;
    let current = ref current in
    for level = 0 to n - 1 do
      let next_level = Ph.create 64 in
      Ph.iter
        (fun node p_reach ->
          let local_cost = ref 0.0 in
          List.iter
            (fun (p_g, cost, next) ->
              local_cost := !local_cost +. (p_g *. float_of_int cost);
              match next with
              | None -> ()
              | Some nd ->
                Ph.replace next_level nd
                  ((p_reach *. p_g)
                  +. Option.value ~default:0.0 (Ph.find_opt next_level nd)))
            (node_outcomes tree cell_probs node);
          per_level.(level) <- per_level.(level) +. (p_reach *. !local_cost))
        !current;
      current := next_level
    done;
    {
      per_event = c;
      per_level;
      match_prob = t;
      expected_matches = m;
      ops_times_matches = j;
      per_match = (if m > 0.0 then j /. m else Float.nan);
    }

let evaluate_with_stats tree stats =
  let n = Decomp.arity tree.Tree.decomp in
  let cell_probs = Array.init n (fun attr -> Stats.event_cell_probs stats ~attr) in
  evaluate tree ~cell_probs

let evaluate_joint tree joint =
  let decomp = tree.Tree.decomp in
  let n = Decomp.arity decomp in
  if Genas_dist.Joint.arity joint <> n then
    invalid_arg "Cost.evaluate_joint: joint arity mismatch";
  let overlays = decomp.Decomp.overlays in
  let per_comp =
    Array.init n (fun attr ->
        Genas_dist.Joint.component_cell_probs joint ~overlays ~attr)
  in
  let ncomp = Genas_dist.Joint.components joint in
  let per_level = Array.make n 0.0 in
  (* All returned quantities are weighted by the path's reach mass:
     (expected cost, leaf-reach mass, expected matches, joint E[c·m]). *)
  let rec go node level (weights : float array) =
    let wsum = Array.fold_left ( +. ) 0.0 weights in
    if wsum < 1e-14 then (0.0, 0.0, 0.0, 0.0)
    else
      match node with
      | Tree.Leaf ids ->
        (0.0, wsum, wsum *. float_of_int (Array.length ids), 0.0)
      | Tree.Node { attr; edge_positions; children; rest; _ } ->
        let positions = tree.Tree.tables.(attr).Order.positions in
        let q = per_comp.(attr) in
        let ncells = Array.length overlays.(attr).Overlay.cells in
        let c_acc = ref 0.0 and t_acc = ref 0.0 in
        let m_acc = ref 0.0 and j_acc = ref 0.0 in
        for g = 0 to ncells - 1 do
          let w' = Array.init ncomp (fun k -> weights.(k) *. q.(k).(g)) in
          let p_g = Array.fold_left ( +. ) 0.0 w' in
          if p_g >= 1e-14 then begin
            let cost, hit =
              Tree.scan
                tree.Tree.config.strategies.(attr)
                ~edge_positions ~target:positions.(g)
            in
            let cost = float_of_int cost in
            per_level.(level) <- per_level.(level) +. (p_g *. cost);
            c_acc := !c_acc +. (p_g *. cost);
            let next = match hit with Some i -> Some children.(i) | None -> rest in
            match next with
            | None -> ()
            | Some nd ->
              let cn, tn, mn, jn = go nd (level + 1) w' in
              c_acc := !c_acc +. cn;
              t_acc := !t_acc +. tn;
              m_acc := !m_acc +. mn;
              j_acc := !j_acc +. ((cost *. mn) +. jn)
          end
        done;
        (!c_acc, !t_acc, !m_acc, !j_acc)
  in
  match tree.Tree.root with
  | None ->
    {
      per_event = 0.0;
      per_level;
      match_prob = 0.0;
      expected_matches = 0.0;
      ops_times_matches = 0.0;
      per_match = Float.nan;
    }
  | Some root ->
    let c, t, m, j = go root 0 (Genas_dist.Joint.initial_weights joint) in
    {
      per_event = c;
      per_level;
      match_prob = t;
      expected_matches = m;
      ops_times_matches = j;
      per_match = (if m > 0.0 then j /. m else Float.nan);
    }

let per_profile tree ~cell_probs =
  check_dims tree cell_probs;
  let ids = tree.Tree.decomp.Decomp.ids in
  let p = Array.length ids in
  let idx_of = Hashtbl.create p in
  Array.iteri (fun i id -> Hashtbl.replace idx_of id i) ids;
  match tree.Tree.root with
  | None -> []
  | Some root ->
    (* Vector DP: per profile, match probability and E[cost × matched]. *)
    let memo : (float array * float array) Ph.t = Ph.create 256 in
    let rec dp node =
      match Ph.find_opt memo node with
      | Some r -> r
      | None ->
        let r =
          match node with
          | Tree.Leaf leaf_ids ->
            let m = Array.make p 0.0 in
            Array.iter
              (fun id -> m.(Hashtbl.find idx_of id) <- 1.0)
              leaf_ids;
            (m, Array.make p 0.0)
          | Tree.Node _ ->
            let m = Array.make p 0.0 and j = Array.make p 0.0 in
            List.iter
              (fun (p_g, cost, next) ->
                match next with
                | None -> ()
                | Some nd ->
                  let mn, jn = dp nd in
                  let cost = float_of_int cost in
                  for i = 0 to p - 1 do
                    m.(i) <- m.(i) +. (p_g *. mn.(i));
                    j.(i) <- j.(i) +. (p_g *. ((cost *. mn.(i)) +. jn.(i)))
                  done)
              (node_outcomes tree cell_probs node);
            (m, j)
        in
        Ph.replace memo node r;
        r
    in
    let m, j = dp root in
    Array.to_list
      (Array.mapi
         (fun i id ->
           {
             id;
             match_prob_p = m.(i);
             ops_given_match =
               (if m.(i) > 0.0 then j.(i) /. m.(i) else Float.nan);
           })
         ids)
