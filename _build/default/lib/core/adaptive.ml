module Decomp = Genas_filter.Decomp
module Estimator = Genas_dist.Estimator
module Dist = Genas_dist.Dist

type policy = { warmup : int; check_every : int; drift_threshold : float }

let default_policy = { warmup = 500; check_every = 200; drift_threshold = 0.25 }

type t = {
  engine : Engine.t;
  policy : policy;
  mutable planned_for : Dist.t array option;
      (** per-attribute event distributions the current tree was
          planned for; [None] until the first adaptive rebuild *)
  mutable since_check : int;
  mutable seen : int;
  mutable rebuilds : int;
  mutable last_drift : float;
}

let create ?(policy = default_policy) engine =
  if policy.warmup < 0 || policy.check_every <= 0 then
    invalid_arg "Adaptive.create: malformed policy";
  {
    engine;
    policy;
    planned_for = None;
    since_check = 0;
    seen = 0;
    rebuilds = 0;
    last_drift = 0.0;
  }

let engine t = t.engine

let current_dists t =
  let stats = Engine.stats t.engine in
  let n = Decomp.arity (Stats.decomp stats) in
  Array.init n (fun attr -> Stats.event_dist stats ~attr)

let rebuild t =
  Engine.rebuild t.engine;
  t.planned_for <- Some (current_dists t);
  t.rebuilds <- t.rebuilds + 1

let drift t =
  match t.planned_for with
  | None -> Float.infinity  (* never planned from data: always stale *)
  | Some planned ->
    let now = current_dists t in
    let worst = ref 0.0 in
    Array.iteri
      (fun i d ->
        let dd = Estimator.l1_on_grid d now.(i) in
        if dd > !worst then worst := dd)
      planned;
    !worst

let force_check t =
  let d = drift t in
  t.last_drift <- (if Float.is_finite d then d else 2.0);
  if d > t.policy.drift_threshold then begin
    rebuild t;
    true
  end
  else false

let match_event t event =
  let result = Engine.match_event t.engine event in
  t.seen <- t.seen + 1;
  t.since_check <- t.since_check + 1;
  if t.seen >= t.policy.warmup && t.since_check >= t.policy.check_every then begin
    t.since_check <- 0;
    ignore (force_check t)
  end;
  result

let rebuilds t = t.rebuilds

let last_drift t = t.last_drift
