module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Overlay = Genas_interval.Overlay
module Tree = Genas_filter.Tree
module Order = Genas_filter.Order
module Decomp = Genas_filter.Decomp

type step = {
  level : int;
  attr : int;
  attr_name : string;
  cell_label : string;
  strategy : Order.strategy;
  comparisons : int;
  edges_at_node : int;
  outcome : [ `Edge | `Rest | `Reject ];
}

type t = {
  steps : step list;
  matched : Genas_profile.Profile_set.id list;
  total_comparisons : int;
}

let trace_coords tree coords =
  let decomp = tree.Tree.decomp in
  if Array.length coords <> Decomp.arity decomp then
    invalid_arg "Explain.trace_coords: wrong arity";
  let schema = decomp.Decomp.schema in
  let steps = ref [] and total = ref 0 in
  let matched = ref [] in
  let rec go level = function
    | Tree.Leaf ids -> matched := Array.to_list ids
    | Tree.Node { attr; edge_positions; children; rest; _ } ->
      let cell = Decomp.cell_of_coord decomp ~attr coords.(attr) in
      let target =
        match cell with
        | Some c -> tree.Tree.tables.(attr).Order.positions.(c)
        | None -> Float.infinity
      in
      let strategy = tree.Tree.config.Tree.strategies.(attr) in
      let cost, hit = Tree.scan strategy ~edge_positions ~target in
      total := !total + cost;
      let outcome, next =
        match hit with
        | Some i -> (`Edge, Some children.(i))
        | None -> (
          match rest with
          | Some r -> (`Rest, Some r)
          | None -> (`Reject, None))
      in
      let cell_label =
        match cell with
        | Some c ->
          Format.asprintf "%a" Interval.pp
            decomp.Decomp.overlays.(attr).Overlay.cells.(c).Overlay.itv
        | None -> "(outside axis)"
      in
      steps :=
        {
          level;
          attr;
          attr_name = (Schema.attribute schema attr).Schema.name;
          cell_label;
          strategy;
          comparisons = cost;
          edges_at_node = Array.length edge_positions;
          outcome;
        }
        :: !steps;
      (match next with Some nd -> go (level + 1) nd | None -> ())
  in
  (match tree.Tree.root with Some root -> go 0 root | None -> ());
  {
    steps = List.rev !steps;
    matched = List.sort_uniq Int.compare !matched;
    total_comparisons = !total;
  }

let trace tree event =
  let decomp = tree.Tree.decomp in
  let schema = decomp.Decomp.schema in
  let coords =
    Array.init (Decomp.arity decomp) (fun attr ->
        match
          Axis.coord (Schema.attribute schema attr).Schema.domain
            (Event.value event attr)
        with
        | Some c -> c
        | None -> Float.nan)
  in
  trace_coords tree coords

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "level %d: %-12s value in %-12s %a over %d edge(s): \
                          %d comparison(s) -> %s@,"
        s.level s.attr_name s.cell_label Order.pp_strategy s.strategy
        s.edges_at_node s.comparisons
        (match s.outcome with
        | `Edge -> "edge"
        | `Rest -> "rest (*)"
        | `Reject -> "reject"))
    t.steps;
  (match t.matched with
  | [] -> Format.fprintf ppf "no match"
  | ids ->
    Format.fprintf ppf "matched profiles: %s"
      (String.concat ", " (List.map string_of_int ids)));
  Format.fprintf ppf " (%d comparisons total)@]" t.total_comparisons
