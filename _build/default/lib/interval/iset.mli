(** Interval sets: finite unions of disjoint intervals on one axis.

    Predicates denote interval sets; overlaying the sets of all
    profiles yields the subrange decomposition of §3. The
    representation is a sorted list of disjoint, non-touching
    intervals (touching neighbours are merged on construction), so
    structural equality coincides with set equality per axis. *)

type t

val empty : t

val is_empty : t -> bool

val of_interval : Interval.t -> t

val of_intervals : Interval.t list -> t
(** Union of arbitrary (possibly overlapping, unsorted) intervals. *)

val full : Genas_model.Axis.t -> t
(** The whole axis. *)

val intervals : t -> Interval.t list
(** Sorted disjoint components. *)

val mem : t -> float -> bool

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val complement : Genas_model.Axis.t -> t -> t
(** Complement within the axis. On a discrete axis the result is
    normalized to integer-closed components. *)

val normalize_discrete : t -> t
(** Tighten every component to the integers it contains, dropping
    integer-free components and re-merging neighbours. *)

val measure : discrete:bool -> t -> float

val subset : t -> t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
