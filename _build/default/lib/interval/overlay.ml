module Axis = Genas_model.Axis

type cell = { itv : Interval.t; ids : int list }

type t = { axis : Axis.t; cells : cell array }

let sort_uniq_floats l =
  List.sort_uniq Float.compare l

(* Merge consecutive pieces with identical profile sets into maximal
   cells. Pieces arrive in axis order and consecutive pieces touch. *)
let merge_pieces pieces =
  let rec go acc = function
    | [] -> List.rev acc
    | [ p ] -> List.rev (p :: acc)
    | a :: b :: rest ->
      if a.ids = b.ids then go acc ({ itv = Interval.hull a.itv b.itv; ids = a.ids } :: rest)
      else go (a :: acc) (b :: rest)
  in
  go [] pieces

let build_continuous axis denotations =
  let clamp = Iset.inter (Iset.full axis) in
  let denotations = List.map (fun (id, s) -> (id, clamp s)) denotations in
  let cuts =
    List.concat_map
      (fun (_, s) ->
        List.concat_map
          (fun (i : Interval.t) -> [ i.Interval.lo; i.Interval.hi ])
          (Iset.intervals s))
      denotations
    @ [ axis.Axis.lo; axis.Axis.hi ]
  in
  let cuts = sort_uniq_floats cuts in
  let ids_of itv_mem =
    List.filter_map (fun (id, s) -> if itv_mem s then Some id else None)
      denotations
    |> List.sort_uniq Int.compare
  in
  let point_piece c =
    { itv = Interval.point c; ids = ids_of (fun s -> Iset.mem s c) }
  in
  let gap_piece a b =
    let covered s =
      List.exists
        (fun (i : Interval.t) -> i.Interval.lo <= a && i.Interval.hi >= b)
        (Iset.intervals s)
    in
    {
      itv = Interval.make_exn ~lo_closed:false ~hi_closed:false ~lo:a ~hi:b ();
      ids = ids_of covered;
    }
  in
  let rec pieces = function
    | [] -> []
    | [ c ] -> [ point_piece c ]
    | a :: (b :: _ as rest) -> point_piece a :: gap_piece a b :: pieces rest
  in
  merge_pieces (pieces cuts)

let build_discrete axis denotations =
  let clamp = Iset.inter (Iset.full axis) in
  let denotations =
    List.map
      (fun (id, s) -> (id, Iset.normalize_discrete (clamp s)))
      denotations
  in
  let cuts =
    List.concat_map
      (fun (_, s) ->
        List.concat_map
          (fun (i : Interval.t) -> [ i.Interval.lo; i.Interval.hi +. 1.0 ])
          (Iset.intervals s))
      denotations
    @ [ axis.Axis.lo; axis.Axis.hi +. 1.0 ]
  in
  let cuts = sort_uniq_floats cuts in
  let rec ranges = function
    | [] | [ _ ] -> []
    | a :: (b :: _ as rest) ->
      let itv = Interval.make_exn ~lo:a ~hi:(b -. 1.0) () in
      let covered s =
        List.exists
          (fun (i : Interval.t) ->
            i.Interval.lo <= a && i.Interval.hi >= b -. 1.0)
          (Iset.intervals s)
      in
      let ids =
        List.filter_map (fun (id, s) -> if covered s then Some id else None)
          denotations
        |> List.sort_uniq Int.compare
      in
      { itv; ids } :: ranges rest
  in
  merge_pieces (ranges cuts)

let build axis denotations =
  let cells =
    if axis.Axis.discrete then build_discrete axis denotations
    else build_continuous axis denotations
  in
  { axis; cells = Array.of_list cells }

let locate t x =
  let n = Array.length t.cells in
  if n = 0 then None
  else if x < t.axis.Axis.lo || x > t.axis.Axis.hi then None
  else if t.axis.Axis.discrete && Float.rem x 1.0 <> 0.0 then None
  else begin
    (* Cells are contiguous in axis order: binary-search the unique
       cell whose interval contains x. *)
    let lo = ref 0 and hi = ref (n - 1) and found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = t.cells.(mid).itv in
      if Interval.mem c x then found := Some mid
      else if x < c.Interval.lo || (x = c.Interval.lo && not c.Interval.lo_closed)
      then hi := mid - 1
      else lo := mid + 1
    done;
    !found
  end

let referenced t =
  let acc = ref [] in
  Array.iteri (fun i c -> if c.ids <> [] then acc := i :: !acc) t.cells;
  Array.of_list (List.rev !acc)

let zero_cells t =
  let acc = ref [] in
  Array.iteri (fun i c -> if c.ids = [] then acc := i :: !acc) t.cells;
  Array.of_list (List.rev !acc)

let cell_measure t i =
  Interval.measure ~discrete:t.axis.Axis.discrete t.cells.(i).itv

let d0_size t =
  Array.fold_left (fun acc i -> acc +. cell_measure t i) 0.0 (zero_cells t)

let pp ppf t =
  Format.fprintf ppf "@[<hv 2>overlay[";
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%a→{%a}" Interval.pp c.itv
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        c.ids)
    t.cells;
  Format.fprintf ppf "]@]"
