module Axis = Genas_model.Axis

type t = Interval.t list
(* Invariant: sorted by [Interval.compare_disjoint], pairwise disjoint,
   and no two neighbours touch (they would have been merged). *)

let empty = []

let is_empty t = t = []

let intervals t = t

(* Merge a sorted list of possibly overlapping/touching intervals.
   Continuous semantics: [1,2) and [2,3] touch and merge; [1,2) and
   (2,3] do not (the point 2 is missing). *)
let coalesce sorted =
  let rec go acc = function
    | [] -> List.rev acc
    | [ x ] -> List.rev (x :: acc)
    | a :: b :: rest ->
      let overlap = Interval.inter a b <> None in
      if overlap || Interval.touches ~discrete:false a b then
        go acc (Interval.hull a b :: rest)
      else go (a :: acc) (b :: rest)
  in
  go [] sorted

let of_intervals l = coalesce (List.sort Interval.compare_disjoint l)

let of_interval i = [ i ]

let full axis =
  [ Interval.make_exn ~lo:axis.Axis.lo ~hi:axis.Axis.hi () ]

let mem t x = List.exists (fun i -> Interval.mem i x) t

let union a b = of_intervals (a @ b)

let inter a b =
  (* Both lists are short in practice (profiles denote one or two
     components), so the quadratic product is fine and simple. *)
  let pieces =
    List.concat_map
      (fun ia ->
        List.filter_map (fun ib -> Interval.inter ia ib) b)
      a
  in
  of_intervals pieces

(* Subtract one interval from one interval: 0, 1, or 2 remnants. *)
let subtract_one (a : Interval.t) (b : Interval.t) : Interval.t list =
  match Interval.inter a b with
  | None -> [ a ]
  | Some _ ->
    let left =
      Interval.make ~lo_closed:a.Interval.lo_closed
        ~hi_closed:(not b.Interval.lo_closed) ~lo:a.Interval.lo
        ~hi:b.Interval.lo ()
    in
    let right =
      Interval.make ~lo_closed:(not b.Interval.hi_closed)
        ~hi_closed:a.Interval.hi_closed ~lo:b.Interval.hi ~hi:a.Interval.hi ()
    in
    List.filter_map Fun.id [ left; right ]

let diff a b =
  let remnants =
    List.concat_map
      (fun ia -> List.fold_left (fun pieces ib ->
           List.concat_map (fun p -> subtract_one p ib) pieces)
           [ ia ] b)
      a
  in
  of_intervals remnants

let complement axis t = diff (full axis) t

let normalize_discrete t =
  let components = List.filter_map Interval.normalize_discrete t in
  (* Re-merge: [1,3] and [4,7] are touching integer ranges. *)
  let rec go acc = function
    | [] -> List.rev acc
    | [ x ] -> List.rev (x :: acc)
    | a :: b :: rest ->
      if Interval.touches ~discrete:true a b || Interval.inter a b <> None
      then go acc (Interval.hull a b :: rest)
      else go (a :: acc) (b :: rest)
  in
  go [] components

let measure ~discrete t =
  let t = if discrete then normalize_discrete t else t in
  List.fold_left (fun acc i -> acc +. Interval.measure ~discrete i) 0.0 t

let subset a b = is_empty (diff a b)

let equal a b = List.length a = List.length b && List.for_all2 Interval.equal a b

let pp ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "{}"
  | l ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "∪")
      Interval.pp ppf l
