lib/interval/interval.ml: Bool Float Format
