lib/interval/iset.mli: Format Genas_model Interval
