lib/interval/overlay.mli: Format Genas_model Interval Iset
