lib/interval/overlay.ml: Array Float Format Genas_model Int Interval Iset List
