lib/interval/iset.ml: Format Fun Genas_model Interval List
