(** Non-empty intervals on an attribute axis, with open/closed bounds.

    Profile predicates denote intervals (equality is a point interval,
    [<=] a left ray, ranges are boxes); the subrange construction of §3
    overlays them. An interval is represented by its two bounds and
    their closedness; emptiness is excluded by the constructors. *)

type t = private {
  lo : float;
  lo_closed : bool;
  hi : float;
  hi_closed : bool;
}

val make : ?lo_closed:bool -> ?hi_closed:bool -> lo:float -> hi:float -> unit -> t option
(** [make ~lo ~hi ()] is the closed interval [[lo, hi]] by default;
    closedness of each side is adjustable. [None] if the resulting
    interval would be empty or a bound is NaN. *)

val make_exn : ?lo_closed:bool -> ?hi_closed:bool -> lo:float -> hi:float -> unit -> t

val point : float -> t
(** The singleton [[v, v]]. *)

val mem : t -> float -> bool

val is_point : t -> bool

val subset : t -> t -> bool
(** [subset a b] iff every point of [a] lies in [b]. *)

val inter : t -> t -> t option
(** Intersection, or [None] if disjoint. *)

val compare_disjoint : t -> t -> int
(** Order for disjoint intervals: negative if the first lies entirely
    below the second. Falls back to bound comparison when they
    overlap (only used to sort already-disjoint sets). *)

val measure : discrete:bool -> t -> float
(** Length (continuous) or inhabited integer count (discrete). *)

val normalize_discrete : t -> t option
(** Tighten to closed integer bounds: the smallest interval containing
    exactly the integers of [t]. [None] if [t] contains no integer. *)

val touches : discrete:bool -> t -> t -> bool
(** Do the intervals, assumed disjoint with the first below the second,
    form an interval when united (share a boundary point with
    complementary closedness, or consecutive integers)? *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Mathematical notation, e.g. ["[30,35)"], with points as ["{30}"]. *)
