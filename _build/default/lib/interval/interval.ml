type t = { lo : float; lo_closed : bool; hi : float; hi_closed : bool }

let make ?(lo_closed = true) ?(hi_closed = true) ~lo ~hi () =
  if Float.is_nan lo || Float.is_nan hi then None
  else if lo > hi then None
  else if lo = hi && not (lo_closed && hi_closed) then None
  else Some { lo; lo_closed; hi; hi_closed }

let make_exn ?lo_closed ?hi_closed ~lo ~hi () =
  match make ?lo_closed ?hi_closed ~lo ~hi () with
  | Some t -> t
  | None -> invalid_arg "Interval.make_exn: empty interval"

let point v = make_exn ~lo:v ~hi:v ()

let mem t x =
  (if t.lo_closed then x >= t.lo else x > t.lo)
  && if t.hi_closed then x <= t.hi else x < t.hi

let is_point t = t.lo = t.hi

(* Compare lower bounds as positions on the line: an open bound at v
   sits just above a closed bound at v. *)
let cmp_lo (v1, c1) (v2, c2) =
  match Float.compare v1 v2 with
  | 0 -> Bool.compare c2 c1
  | c -> c

(* For upper bounds, an open bound at v sits just below a closed one. *)
let cmp_hi (v1, c1) (v2, c2) =
  match Float.compare v1 v2 with
  | 0 -> Bool.compare c1 c2
  | c -> c

let subset a b =
  cmp_lo (a.lo, a.lo_closed) (b.lo, b.lo_closed) >= 0
  && cmp_hi (a.hi, a.hi_closed) (b.hi, b.hi_closed) <= 0

let inter a b =
  let lo, lo_closed =
    if cmp_lo (a.lo, a.lo_closed) (b.lo, b.lo_closed) >= 0 then
      (a.lo, a.lo_closed)
    else (b.lo, b.lo_closed)
  in
  let hi, hi_closed =
    if cmp_hi (a.hi, a.hi_closed) (b.hi, b.hi_closed) <= 0 then
      (a.hi, a.hi_closed)
    else (b.hi, b.hi_closed)
  in
  make ~lo_closed ~hi_closed ~lo ~hi ()

let compare_disjoint a b =
  match cmp_lo (a.lo, a.lo_closed) (b.lo, b.lo_closed) with
  | 0 -> cmp_hi (a.hi, a.hi_closed) (b.hi, b.hi_closed)
  | c -> c

let count_integers lo lo_closed hi hi_closed =
  let first =
    let c = Float.ceil lo in
    if c = lo && not lo_closed then c +. 1.0 else c
  in
  let last =
    let f = Float.floor hi in
    if f = hi && not hi_closed then f -. 1.0 else f
  in
  if first > last then 0.0 else last -. first +. 1.0

let measure ~discrete t =
  if discrete then count_integers t.lo t.lo_closed t.hi t.hi_closed
  else t.hi -. t.lo

let normalize_discrete t =
  let first =
    let c = Float.ceil t.lo in
    if c = t.lo && not t.lo_closed then c +. 1.0 else c
  in
  let last =
    let f = Float.floor t.hi in
    if f = t.hi && not t.hi_closed then f -. 1.0 else f
  in
  if first > last then None else make ~lo:first ~hi:last ()

let touches ~discrete a b =
  if discrete then
    (* Assumes discrete-normalized (integer, closed) bounds. *)
    b.lo -. a.hi = 1.0 || (a.hi = b.lo && (a.hi_closed || b.lo_closed))
  else a.hi = b.lo && (a.hi_closed || b.lo_closed)

let hull a b =
  let lo, lo_closed =
    if cmp_lo (a.lo, a.lo_closed) (b.lo, b.lo_closed) <= 0 then
      (a.lo, a.lo_closed)
    else (b.lo, b.lo_closed)
  in
  let hi, hi_closed =
    if cmp_hi (a.hi, a.hi_closed) (b.hi, b.hi_closed) >= 0 then
      (a.hi, a.hi_closed)
    else (b.hi, b.hi_closed)
  in
  make_exn ~lo_closed ~hi_closed ~lo ~hi ()

let equal a b =
  a.lo = b.lo && a.hi = b.hi && a.lo_closed = b.lo_closed
  && a.hi_closed = b.hi_closed

let pp_num ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%g" v

let pp ppf t =
  if is_point t then Format.fprintf ppf "{%a}" pp_num t.lo
  else
    Format.fprintf ppf "%c%a,%a%c"
      (if t.lo_closed then '[' else '(')
      pp_num t.lo pp_num t.hi
      (if t.hi_closed then ']' else ')')
