(** Subrange decomposition (§3).

    Overlaying the interval sets denoted by all profile predicates on
    one attribute partitions the attribute's axis into *cells*: maximal
    intervals on which the set of interested profiles is constant. At
    most (2p−1) cells are referenced by at least one of the p profiles;
    the remaining cells form the zero-subdomain D0. The profile tree's
    edges are labelled with referenced cells, and every event value
    falls into exactly one cell. *)

type cell = {
  itv : Interval.t;
  ids : int list;  (** profiles referencing the cell, sorted ascending *)
}

type t = private {
  axis : Genas_model.Axis.t;
  cells : cell array;  (** contiguous, in axis order, covering the axis *)
}

val build : Genas_model.Axis.t -> (int * Iset.t) list -> t
(** [build axis denotations] overlays the per-profile interval sets.
    Parts of a set outside the axis are ignored; on a discrete axis
    sets are normalized to inhabited integers first. *)

val locate : t -> float -> int option
(** Index of the cell containing a coordinate (binary search);
    [None] if the coordinate lies outside the axis (or, on a discrete
    axis, on an uninhabited point). *)

val referenced : t -> int array
(** Indices of cells with a non-empty profile list, in axis order. *)

val zero_cells : t -> int array
(** Indices of D0 cells (no referencing profile), in axis order. *)

val d0_size : t -> float
(** Total measure of the zero-subdomain — the [d_0] of measures A1/A2. *)

val cell_measure : t -> int -> float

val pp : Format.formatter -> t -> unit
