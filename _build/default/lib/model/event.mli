(** Primitive events.

    An event is "the occurrence of a state transition at a certain
    point in time", described as a collection of (attribute, value)
    pairs (§3). Events are *total*: every schema attribute carries a
    value (as produced by the sensor feeds and tickers the paper
    models). Each event also carries a sequence number and a logical
    timestamp so the ENS layer and composite-event detectors can order
    them. *)

type t = private {
  seq : int;  (** publisher-assigned sequence number *)
  time : float;  (** logical occurrence time *)
  values : Value.t array;  (** indexed by schema natural index *)
}

val create :
  ?seq:int -> ?time:float -> Schema.t -> (string * Value.t) list ->
  (t, string) result
(** [create schema bindings] validates that every schema attribute is
    bound exactly once with an in-domain value of the right kind. *)

val create_exn :
  ?seq:int -> ?time:float -> Schema.t -> (string * Value.t) list -> t
(** @raise Invalid_argument on validation failure. *)

val of_values : ?seq:int -> ?time:float -> Schema.t -> Value.t array -> (t, string) result
(** Positional constructor: [values.(i)] binds attribute [i]. *)

val of_values_exn : ?seq:int -> ?time:float -> Schema.t -> Value.t array -> t

val value : t -> int -> Value.t
(** Value of the attribute with the given natural index.

    @raise Invalid_argument if out of range. *)

val value_by_name : Schema.t -> t -> string -> Value.t option

val seq : t -> int

val time : t -> float

val to_alist : Schema.t -> t -> (string * Value.t) list

val equal : t -> t -> bool
(** Structural equality on values (ignores [seq] and [time]). *)

val pp : Schema.t -> Format.formatter -> t -> unit
