type t = { discrete : bool; lo : float; hi : float }

let make ~discrete ~lo ~hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Axis.make: bounds must be finite";
  if hi < lo then invalid_arg "Axis.make: hi < lo";
  if discrete && (Float.rem lo 1.0 <> 0.0 || Float.rem hi 1.0 <> 0.0) then
    invalid_arg "Axis.make: discrete axis needs integer bounds";
  { discrete; lo; hi }

let of_domain = function
  | Domain.Int_range { lo; hi } ->
    { discrete = true; lo = float_of_int lo; hi = float_of_int hi }
  | Domain.Float_range { lo; hi } -> { discrete = false; lo; hi }
  | Domain.Enum vs ->
    { discrete = true; lo = 0.0; hi = float_of_int (Array.length vs - 1) }
  | Domain.Bool_dom -> { discrete = true; lo = 0.0; hi = 1.0 }

let coord dom v =
  match (dom, v) with
  | Domain.Int_range { lo; hi }, Value.Int x when lo <= x && x <= hi ->
    Some (float_of_int x)
  | Domain.Float_range { lo; hi }, Value.Float x when lo <= x && x <= hi ->
    Some x
  | Domain.Float_range { lo; hi }, Value.Int x
    when lo <= float_of_int x && float_of_int x <= hi ->
    Some (float_of_int x)
  | (Domain.Enum _ | Domain.Bool_dom), _ -> (
    match Domain.rank dom v with
    | Some r -> Some (float_of_int r)
    | None -> None)
  | (Domain.Int_range _ | Domain.Float_range _), _ -> None

let coord_exn dom v =
  match coord dom v with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "Axis.coord_exn: %s not in domain" (Value.to_string v))

let value dom c =
  match dom with
  | Domain.Int_range { lo; hi } ->
    let x = int_of_float (Float.round c) in
    Value.Int (max lo (min hi x))
  | Domain.Float_range { lo; hi } -> Value.Float (Float.max lo (Float.min hi c))
  | Domain.Enum vs ->
    let r = int_of_float (Float.round c) in
    if r < 0 || r >= Array.length vs then
      invalid_arg (Printf.sprintf "Axis.value: rank %d out of range" r);
    Value.Str vs.(r)
  | Domain.Bool_dom -> Value.Bool (Float.round c >= 0.5)

let size t = if t.discrete then t.hi -. t.lo +. 1.0 else t.hi -. t.lo

let equal a b = a.discrete = b.discrete && a.lo = b.lo && a.hi = b.hi

let pp ppf t =
  Format.fprintf ppf "%s[%g,%g]"
    (if t.discrete then "discrete" else "continuous")
    t.lo t.hi
