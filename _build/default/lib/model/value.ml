type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind = Kint | Kfloat | Kstr | Kbool

let kind = function
  | Int _ -> Kint
  | Float _ -> Kfloat
  | Str _ -> Kstr
  | Bool _ -> Kbool

let kind_name = function
  | Kint -> "int"
  | Kfloat -> "float"
  | Kstr -> "string"
  | Kbool -> "bool"

let tag = function Int _ -> 0 | Float _ -> 1 | Str _ -> 2 | Bool _ -> 3

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Int _ | Float _ | Str _ | Bool _), _ -> Stdlib.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Float x -> Hashtbl.hash (1, x)
  | Str x -> Hashtbl.hash (2, x)
  | Bool x -> Hashtbl.hash (3, x)

let as_float = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | Str _ | Bool _ -> None

(* Shortest decimal form that parses back to the same float, with a
   decimal marker so the literal stays visibly a float. *)
let float_to_string x =
  let rec try_prec p =
    if p > 17 then Printf.sprintf "%.17g" x
    else
      let s = Printf.sprintf "%.*g" p x in
      if float_of_string s = x then s else try_prec (p + 1)
  in
  let s = try_prec 12 in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ "."

let to_string = function
  | Int x -> string_of_int x
  | Float x -> float_to_string x
  | Str x -> Printf.sprintf "%S" x
  | Bool x -> string_of_bool x

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_string k s =
  let s = String.trim s in
  match k with
  | Kint -> (
    match int_of_string_opt s with
    | Some x -> Ok (Int x)
    | None -> Error (Printf.sprintf "%S is not an int literal" s))
  | Kfloat -> (
    match float_of_string_opt s with
    | Some x -> Ok (Float x)
    | None -> Error (Printf.sprintf "%S is not a float literal" s))
  | Kbool -> (
    match bool_of_string_opt s with
    | Some x -> Ok (Bool x)
    | None -> Error (Printf.sprintf "%S is not a bool literal" s))
  | Kstr ->
    let n = String.length s in
    if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
      match Scanf.unescaped (String.sub s 1 (n - 2)) with
      | u -> Ok (Str u)
      | exception Scanf.Scan_failure _ ->
        Error (Printf.sprintf "%s contains a bad escape" s)
    else Ok (Str s)
