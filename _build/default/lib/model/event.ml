type t = { seq : int; time : float; values : Value.t array }

let validate schema values =
  let n = Schema.arity schema in
  if Array.length values <> n then
    Error
      (Printf.sprintf "event has %d values but schema has %d attributes"
         (Array.length values) n)
  else
    let rec check i =
      if i = n then Ok ()
      else
        let attr = Schema.attribute schema i in
        let v = values.(i) in
        if not (Domain.mem attr.Schema.domain v) then
          Error
            (Printf.sprintf "value %s is outside the domain of attribute %S"
               (Value.to_string v) attr.Schema.name)
        else check (i + 1)
    in
    check 0

let of_values ?(seq = 0) ?(time = 0.0) schema values =
  match validate schema values with
  | Ok () -> Ok { seq; time; values = Array.copy values }
  | Error e -> Error e

let of_values_exn ?seq ?time schema values =
  match of_values ?seq ?time schema values with
  | Ok t -> t
  | Error msg -> invalid_arg ("Event.of_values: " ^ msg)

let create ?(seq = 0) ?(time = 0.0) schema bindings =
  let n = Schema.arity schema in
  let slots = Array.make n None in
  let rec fill = function
    | [] -> Ok ()
    | (name, v) :: rest -> (
      match Schema.find schema name with
      | None -> Error (Printf.sprintf "unknown attribute %S" name)
      | Some attr ->
        if slots.(attr.Schema.index) <> None then
          Error (Printf.sprintf "attribute %S bound twice" name)
        else begin
          slots.(attr.Schema.index) <- Some v;
          fill rest
        end)
  in
  match fill bindings with
  | Error e -> Error e
  | Ok () ->
    let rec collect i acc =
      if i < 0 then Ok (Array.of_list acc)
      else
        match slots.(i) with
        | None ->
          Error
            (Printf.sprintf "attribute %S is unbound"
               (Schema.attribute schema i).Schema.name)
        | Some v -> collect (i - 1) (v :: acc)
    in
    (match collect (n - 1) [] with
    | Error e -> Error e
    | Ok values -> (
      match validate schema values with
      | Ok () -> Ok { seq; time; values }
      | Error e -> Error e))

let create_exn ?seq ?time schema bindings =
  match create ?seq ?time schema bindings with
  | Ok t -> t
  | Error msg -> invalid_arg ("Event.create: " ^ msg)

let value t i =
  if i < 0 || i >= Array.length t.values then
    invalid_arg (Printf.sprintf "Event.value: index %d out of range" i);
  t.values.(i)

let value_by_name schema t name =
  match Schema.find schema name with
  | None -> None
  | Some attr -> Some t.values.(attr.Schema.index)

let seq t = t.seq

let time t = t.time

let to_alist schema t =
  Array.to_list
    (Array.mapi
       (fun i v -> ((Schema.attribute schema i).Schema.name, v))
       t.values)

let equal a b =
  Array.length a.values = Array.length b.values
  && Array.for_all2 Value.equal a.values b.values

let pp schema ppf t =
  Format.fprintf ppf "@[<hv 2>event(";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%s=%a" (Schema.attribute schema i).Schema.name
        Value.pp v)
    t.values;
  Format.fprintf ppf ")@]"
