lib/model/domain.ml: Array Float Format Hashtbl List Printf String Value
