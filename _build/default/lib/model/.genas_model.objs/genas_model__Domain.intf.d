lib/model/domain.mli: Format Value
