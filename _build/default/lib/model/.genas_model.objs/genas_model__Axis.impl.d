lib/model/axis.ml: Array Domain Float Format Printf Value
