lib/model/event.mli: Format Schema Value
