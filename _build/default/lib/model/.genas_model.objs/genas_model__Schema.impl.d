lib/model/schema.ml: Array Domain Format Hashtbl List Printf String
