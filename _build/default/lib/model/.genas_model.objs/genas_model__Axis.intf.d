lib/model/axis.mli: Domain Format Value
