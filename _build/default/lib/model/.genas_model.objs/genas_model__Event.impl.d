lib/model/event.ml: Array Domain Format Printf Schema Value
