lib/model/value.ml: Bool Float Format Hashtbl Printf Scanf Stdlib String
