lib/model/schema.mli: Domain Format
