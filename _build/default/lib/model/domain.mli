(** Attribute domains.

    A domain [D_j] fixes the set of admissible values of one attribute
    (§3 of the paper). Domains carry a *size* [d_j]: the value count for
    discrete domains and the Lebesgue measure for continuous ranges.
    Attribute-selectivity measures A1/A2 are ratios of such sizes. *)

type t =
  | Int_range of { lo : int; hi : int }
      (** Integers in the inclusive range [[lo, hi]]. *)
  | Float_range of { lo : float; hi : float }
      (** Reals in the inclusive range [[lo, hi]]. *)
  | Enum of string array
      (** A finite, explicitly ordered set of symbolic values; the array
          order is the domain's natural order. *)
  | Bool_dom  (** [false < true]. *)

val int_range : lo:int -> hi:int -> t
(** @raise Invalid_argument if [hi < lo]. *)

val float_range : lo:float -> hi:float -> t
(** @raise Invalid_argument if [hi < lo] or a bound is not finite. *)

val enum : string list -> t
(** @raise Invalid_argument on duplicates or an empty list. *)

val bool_dom : t

val size : t -> float
(** [d_j]: element count for [Int_range]/[Enum]/[Bool_dom], measure
    [hi - lo] for [Float_range]. *)

val kind : t -> Value.kind
(** The value kind this domain admits. *)

val mem : t -> Value.t -> bool
(** Is the value admissible (right kind and within range / listed)? *)

val is_discrete : t -> bool

val values : t -> Value.t list option
(** All values of a discrete domain in natural order; [None] for
    continuous domains and for int ranges with more than [100_000]
    elements (guard against accidental materialization). *)

val rank : t -> Value.t -> int option
(** Position of a value in a discrete domain's natural order. *)

val bounds : t -> (float * float) option
(** Numeric bounds for [Int_range]/[Float_range]; [None] otherwise. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders in the concrete syntax accepted by [of_string]. *)

val of_string : string -> (t, string) result
(** Parse the concrete domain syntax used by schema files and the CLI:
    ["int[lo,hi]"], ["float[lo,hi]"], ["enum{a,b,c}"], ["bool"]. *)
