(** Attribute values.

    Events and profile predicates exchange values of four primitive
    kinds. Values are immutable and totally ordered within a kind;
    ordering across kinds is by kind tag (needed only so values can key
    maps — cross-kind comparisons never arise in well-typed schemas). *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind = Kint | Kfloat | Kstr | Kbool

val kind : t -> kind

val kind_name : kind -> string

val compare : t -> t -> int
(** Total order: same-kind values compare naturally, distinct kinds
    compare by tag. *)

val equal : t -> t -> bool

val hash : t -> int

val as_float : t -> float option
(** Numeric view: [Int] and [Float] values convert, others do not. *)

val to_string : t -> string
(** Render in the profile-language syntax ([Str] values are quoted;
    floats use the shortest decimal form that parses back exactly). *)

val float_to_string : float -> string
(** The float rendering used by [to_string], exposed for printers that
    must stay re-parseable (e.g. {!Domain.pp}). *)

val pp : Format.formatter -> t -> unit

val of_string : kind -> string -> (t, string) result
(** Parse a literal of the requested kind. [Str] accepts either a
    double-quoted literal or a bare token. *)
