type attribute = { name : string; index : int; domain : Domain.t }

type t = {
  attrs : attribute array;
  by_name : (string, attribute) Hashtbl.t;
}

let create specs =
  if specs = [] then Error "Schema.create: no attributes"
  else
    let by_name = Hashtbl.create (List.length specs) in
    let rec build i acc = function
      | [] -> Ok { attrs = Array.of_list (List.rev acc); by_name }
      | (name, domain) :: rest ->
        if Hashtbl.mem by_name name then
          Error (Printf.sprintf "Schema.create: duplicate attribute %S" name)
        else begin
          let attr = { name; index = i; domain } in
          Hashtbl.add by_name name attr;
          build (i + 1) (attr :: acc) rest
        end
    in
    build 0 [] specs

let create_exn specs =
  match create specs with Ok t -> t | Error msg -> invalid_arg msg

let arity t = Array.length t.attrs

let attributes t = Array.copy t.attrs

let attribute t i =
  if i < 0 || i >= Array.length t.attrs then
    invalid_arg (Printf.sprintf "Schema.attribute: index %d out of range" i);
  t.attrs.(i)

let find t name = Hashtbl.find_opt t.by_name name

let find_exn t name =
  match find t name with Some a -> a | None -> raise Not_found

let mem t name = Hashtbl.mem t.by_name name

let equal a b =
  arity a = arity b
  && Array.for_all2
       (fun x y -> String.equal x.name y.name && Domain.equal x.domain y.domain)
       a.attrs b.attrs

let pp ppf t =
  Format.fprintf ppf "@[<hv 2>schema{";
  Array.iteri
    (fun i a ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%s:%a" a.name Domain.pp a.domain)
    t.attrs;
  Format.fprintf ppf "}@]"
