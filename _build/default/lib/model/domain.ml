type t =
  | Int_range of { lo : int; hi : int }
  | Float_range of { lo : float; hi : float }
  | Enum of string array
  | Bool_dom

let int_range ~lo ~hi =
  if hi < lo then invalid_arg "Domain.int_range: hi < lo";
  Int_range { lo; hi }

let float_range ~lo ~hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Domain.float_range: bounds must be finite";
  if hi < lo then invalid_arg "Domain.float_range: hi < lo";
  Float_range { lo; hi }

let enum names =
  if names = [] then invalid_arg "Domain.enum: empty";
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n then
        invalid_arg (Printf.sprintf "Domain.enum: duplicate value %S" n);
      Hashtbl.add tbl n ())
    names;
  Enum (Array.of_list names)

let bool_dom = Bool_dom

let size = function
  | Int_range { lo; hi } -> float_of_int (hi - lo + 1)
  | Float_range { lo; hi } -> hi -. lo
  | Enum vs -> float_of_int (Array.length vs)
  | Bool_dom -> 2.0

let kind = function
  | Int_range _ -> Value.Kint
  | Float_range _ -> Value.Kfloat
  | Enum _ -> Value.Kstr
  | Bool_dom -> Value.Kbool

let mem t v =
  match (t, v) with
  | Int_range { lo; hi }, Value.Int x -> lo <= x && x <= hi
  | Float_range { lo; hi }, Value.Float x -> lo <= x && x <= hi
  | Float_range { lo; hi }, Value.Int x ->
    let x = float_of_int x in
    lo <= x && x <= hi
  | Enum vs, Value.Str s -> Array.exists (String.equal s) vs
  | Bool_dom, Value.Bool _ -> true
  | (Int_range _ | Float_range _ | Enum _ | Bool_dom), _ -> false

let is_discrete = function
  | Int_range _ | Enum _ | Bool_dom -> true
  | Float_range _ -> false

let materialize_limit = 100_000

let values = function
  | Int_range { lo; hi } ->
    if hi - lo + 1 > materialize_limit then None
    else Some (List.init (hi - lo + 1) (fun i -> Value.Int (lo + i)))
  | Enum vs -> Some (Array.to_list (Array.map (fun s -> Value.Str s) vs))
  | Bool_dom -> Some [ Value.Bool false; Value.Bool true ]
  | Float_range _ -> None

let rank t v =
  match (t, v) with
  | Int_range { lo; hi }, Value.Int x when lo <= x && x <= hi -> Some (x - lo)
  | Enum vs, Value.Str s ->
    let n = Array.length vs in
    let rec find i = if i = n then None else if String.equal vs.(i) s then Some i else find (i + 1) in
    find 0
  | Bool_dom, Value.Bool b -> Some (if b then 1 else 0)
  | (Int_range _ | Float_range _ | Enum _ | Bool_dom), _ -> None

let bounds = function
  | Int_range { lo; hi } -> Some (float_of_int lo, float_of_int hi)
  | Float_range { lo; hi } -> Some (lo, hi)
  | Enum _ | Bool_dom -> None

let equal a b =
  match (a, b) with
  | Int_range x, Int_range y -> x.lo = y.lo && x.hi = y.hi
  | Float_range x, Float_range y -> x.lo = y.lo && x.hi = y.hi
  | Enum x, Enum y -> Array.length x = Array.length y && Array.for_all2 String.equal x y
  | Bool_dom, Bool_dom -> true
  | (Int_range _ | Float_range _ | Enum _ | Bool_dom), _ -> false

let of_string s =
  let s = String.trim s in
  let fail () = Error (Printf.sprintf "cannot parse domain %S" s) in
  let bracketed prefix =
    let pl = String.length prefix and n = String.length s in
    if n > pl + 2 && String.sub s 0 pl = prefix && s.[pl] = '[' && s.[n - 1] = ']'
    then Some (String.sub s (pl + 1) (n - pl - 2))
    else None
  in
  if s = "bool" then Ok Bool_dom
  else
    match bracketed "int" with
    | Some body -> (
      match String.split_on_char ',' body with
      | [ lo; hi ] -> (
        match (int_of_string_opt (String.trim lo), int_of_string_opt (String.trim hi)) with
        | Some lo, Some hi when lo <= hi -> Ok (int_range ~lo ~hi)
        | _ -> fail ())
      | _ -> fail ())
    | None -> (
      match bracketed "float" with
      | Some body -> (
        match String.split_on_char ',' body with
        | [ lo; hi ] -> (
          match
            (float_of_string_opt (String.trim lo), float_of_string_opt (String.trim hi))
          with
          | Some lo, Some hi when lo <= hi && Float.is_finite lo && Float.is_finite hi
            ->
            Ok (float_range ~lo ~hi)
          | _ -> fail ())
        | _ -> fail ())
      | None ->
        let n = String.length s in
        if n > 6 && String.sub s 0 5 = "enum{" && s.[n - 1] = '}' then begin
          let body = String.sub s 5 (n - 6) in
          let names =
            List.filter (fun x -> x <> "")
              (List.map String.trim (String.split_on_char ',' body))
          in
          if names = [] then fail ()
          else
            match enum names with
            | d -> Ok d
            | exception Invalid_argument msg -> Error msg
        end
        else fail ())

let pp ppf = function
  | Int_range { lo; hi } -> Format.fprintf ppf "int[%d,%d]" lo hi
  | Float_range { lo; hi } ->
    Format.fprintf ppf "float[%s,%s]" (Value.float_to_string lo)
      (Value.float_to_string hi)
  | Enum vs ->
    Format.fprintf ppf "enum{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_string)
      (Array.to_list vs)
  | Bool_dom -> Format.pp_print_string ppf "bool"
