(** Schemas: the firm attribute set [A] of an application (§3).

    A schema fixes the names, order, and domains of the [n] attributes
    that events and profiles range over. The position of an attribute
    in the schema is its *natural index*; the distribution-based
    algorithm later reorders attributes relative to this index. *)

type attribute = private {
  name : string;
  index : int;  (** position in the schema, [0 .. arity-1] *)
  domain : Domain.t;
}

type t

val create : (string * Domain.t) list -> (t, string) result
(** Build a schema from named domains. Fails on empty lists and
    duplicate names. *)

val create_exn : (string * Domain.t) list -> t
(** @raise Invalid_argument on the same conditions. *)

val arity : t -> int
(** [n], the number of attributes. *)

val attributes : t -> attribute array
(** All attributes in natural order. The array is fresh. *)

val attribute : t -> int -> attribute
(** Attribute by natural index.

    @raise Invalid_argument if out of range. *)

val find : t -> string -> attribute option
(** Attribute by name. *)

val find_exn : t -> string -> attribute
(** @raise Not_found if absent. *)

val mem : t -> string -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
