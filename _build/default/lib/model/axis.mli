(** Numeric axes: a uniform coordinate view of every domain.

    The subrange decomposition of §3 and all distribution machinery
    work on a single numeric line per attribute. Continuous domains map
    to themselves; discrete domains (int ranges, enumerations, bool)
    map to integer coordinates — enumeration values map to their rank.
    This lets one interval/distribution implementation serve all four
    domain kinds. *)

type t = private {
  discrete : bool;
      (** If true, the only inhabited coordinates are the integers in
          [[lo, hi]]; sizes are counts. Otherwise the axis is the real
          interval [[lo, hi]] with Lebesgue measure. *)
  lo : float;
  hi : float;
}

val of_domain : Domain.t -> t

val make : discrete:bool -> lo:float -> hi:float -> t
(** Direct constructor for synthetic axes (used by the distribution
    catalog's normalized 0–100 axis).

    @raise Invalid_argument if [hi < lo], bounds are not finite, or a
    discrete axis has non-integer bounds. *)

val coord : Domain.t -> Value.t -> float option
(** Coordinate of a value on its domain's axis; [None] if the value
    does not belong to the domain. *)

val coord_exn : Domain.t -> Value.t -> float

val value : Domain.t -> float -> Value.t
(** Inverse of [coord]: the domain value at a coordinate. Continuous
    coordinates are clamped into the domain; discrete coordinates are
    rounded to the nearest inhabited point.

    @raise Invalid_argument if the domain is an enumeration and the
    rounded rank is out of range. *)

val size : t -> float
(** Point count (discrete) or length (continuous) — the [d_j] of §3. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
