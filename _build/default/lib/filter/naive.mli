(** Naive matcher: test every profile against every event.

    The "simple algorithms" class of §2. Each predicate evaluation
    costs one comparison; a profile is abandoned at its first failing
    predicate. Serves as the semantic oracle and as the baseline the
    tree algorithms are benchmarked against. *)

type t

val build : Genas_profile.Profile_set.t -> t
(** Snapshot the current profiles. *)

val revision : t -> int

val match_event :
  ?ops:Ops.t -> t -> Genas_model.Event.t -> Genas_profile.Profile_set.id list
(** Matched profile ids, ascending. *)
