module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Axis = Genas_model.Axis
module Iset = Genas_interval.Iset
module Interval = Genas_interval.Interval
module Overlay = Genas_interval.Overlay
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set

type t = {
  schema : Schema.t;
  axes : Axis.t array;
  overlays : Overlay.t array;
  profile_cells : (int, int array) Hashtbl.t array;
  ids : int array;
  revision : int;
}

let build pset =
  let schema = Profile_set.schema pset in
  let n = Schema.arity schema in
  let axes =
    Array.init n (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let overlays =
    Array.init n (fun i -> Overlay.build axes.(i) (Profile_set.denotations pset i))
  in
  let profile_cells =
    Array.init n (fun i ->
        let tbl = Hashtbl.create 64 in
        let cells = overlays.(i).Overlay.cells in
        Array.iteri
          (fun ci (c : Overlay.cell) ->
            List.iter
              (fun id ->
                let prev =
                  Option.value ~default:[] (Hashtbl.find_opt tbl id)
                in
                Hashtbl.replace tbl id (ci :: prev))
              c.Overlay.ids)
          cells;
        let out = Hashtbl.create (Hashtbl.length tbl) in
        Hashtbl.iter
          (fun id cis ->
            Hashtbl.replace out id
              (Array.of_list (List.sort Int.compare cis)))
          tbl;
        out)
  in
  {
    schema;
    axes;
    overlays;
    profile_cells;
    ids = Array.of_list (Profile_set.ids pset);
    revision = Profile_set.revision pset;
  }

let arity t = Array.length t.axes

let cell_of_coord t ~attr c = Overlay.locate t.overlays.(attr) c

let cell_of_event t ~attr event =
  let dom = (Schema.attribute t.schema attr).Schema.domain in
  match Axis.coord dom (Event.value event attr) with
  | None -> None
  | Some c -> cell_of_coord t ~attr c

let cells_of_profile t ~attr ~id = Hashtbl.find_opt t.profile_cells.(attr) id

let referenced_count t ~attr = Array.length (Overlay.referenced t.overlays.(attr))

let dont_care_count t ~attr =
  Array.length t.ids - Hashtbl.length t.profile_cells.(attr)

let d0_share t ~attr =
  if dont_care_count t ~attr > 0 then 0.0
  else
    let total = Axis.size t.axes.(attr) in
    if total <= 0.0 then 0.0 else Overlay.d0_size t.overlays.(attr) /. total
