(** Per-schema cell decomposition snapshot.

    For every attribute, the denotations of all registered profiles are
    overlaid into the global subrange cells of §3. All matchers are
    built against one decomposition snapshot; [revision] records the
    profile-set revision it was taken at so callers can detect
    staleness. *)

type t = private {
  schema : Genas_model.Schema.t;
  axes : Genas_model.Axis.t array;
  overlays : Genas_interval.Overlay.t array;  (** by attribute index *)
  profile_cells : (int, int array) Hashtbl.t array;
      (** per attribute: profile id → sorted global cell indices its
          denotation covers (absent = don't-care) *)
  ids : int array;  (** live profile ids at snapshot time, ascending *)
  revision : int;
}

val build : Genas_profile.Profile_set.t -> t

val arity : t -> int

val cell_of_coord : t -> attr:int -> float -> int option
(** Global cell containing a coordinate. *)

val cell_of_event : t -> attr:int -> Genas_model.Event.t -> int option
(** Global cell of an event's value on one attribute ([None] only for
    coordinates outside the axis, which validated events never
    produce). *)

val cells_of_profile : t -> attr:int -> id:int -> int array option
(** Global cells covered by a profile's predicate on [attr]; [None] if
    the profile doesn't constrain the attribute. *)

val referenced_count : t -> attr:int -> int
(** Number of referenced (non-D0) cells — the [m <= 2p-1] of §3. *)

val dont_care_count : t -> attr:int -> int
(** Number of live profiles that leave [attr] unconstrained. *)

val d0_share : t -> attr:int -> float
(** [d_0 / d_j]: zero-subdomain share of the domain size (measure A1's
    raw material). The zero-subdomain is the set of values on which an
    event can be rejected outright, so it is empty — and this returns
    0 — as soon as one live profile doesn't care about the attribute
    (those values still match that profile via the [*] edge; cf. the
    paper's Example 3, where s(a3) = 0 although no range predicate
    covers a3 < 35). *)
