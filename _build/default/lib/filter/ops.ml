type t = {
  mutable comparisons : int;
  mutable node_visits : int;
  mutable events : int;
  mutable matches : int;
}

let create () = { comparisons = 0; node_visits = 0; events = 0; matches = 0 }

let reset t =
  t.comparisons <- 0;
  t.node_visits <- 0;
  t.events <- 0;
  t.matches <- 0

let add t ~into =
  into.comparisons <- into.comparisons + t.comparisons;
  into.node_visits <- into.node_visits + t.node_visits;
  into.events <- into.events + t.events;
  into.matches <- into.matches + t.matches

let per_event t =
  if t.events = 0 then Float.nan
  else float_of_int t.comparisons /. float_of_int t.events

let per_match t =
  if t.matches = 0 then Float.nan
  else float_of_int t.comparisons /. float_of_int t.matches

let pp ppf t =
  Format.fprintf ppf
    "ops{comparisons=%d; node_visits=%d; events=%d; matches=%d}" t.comparisons
    t.node_visits t.events t.matches
