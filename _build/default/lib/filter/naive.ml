module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Axis = Genas_model.Axis
module Iset = Genas_interval.Iset
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set

type t = {
  schema : Schema.t;
  profiles : (int * Profile.t) array;  (** ascending id *)
  revision : int;
}

let build pset =
  let profiles =
    Profile_set.fold pset ~init:[] ~f:(fun acc id p -> (id, p) :: acc)
    |> List.rev |> Array.of_list
  in
  {
    schema = Profile_set.schema pset;
    profiles;
    revision = Profile_set.revision pset;
  }

let revision t = t.revision

let match_event ?ops t event =
  let n = Schema.arity t.schema in
  let count c = match ops with Some o -> o.Ops.comparisons <- o.Ops.comparisons + c | None -> () in
  let matched = ref [] in
  Array.iter
    (fun (id, p) ->
      let rec check i =
        if i = n then true
        else
          match Profile.denotation p i with
          | None -> check (i + 1)
          | Some iset -> (
            count 1;
            let dom = (Schema.attribute t.schema i).Schema.domain in
            match Axis.coord dom (Event.value event i) with
            | None -> false
            | Some c -> Iset.mem iset c && check (i + 1))
      in
      if check 0 then matched := id :: !matched)
    t.profiles;
  (match ops with
  | Some o ->
    o.Ops.events <- o.Ops.events + 1;
    o.Ops.matches <- o.Ops.matches + List.length !matched
  | None -> ());
  List.rev !matched
