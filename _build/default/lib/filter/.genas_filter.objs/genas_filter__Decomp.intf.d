lib/filter/decomp.mli: Genas_interval Genas_model Genas_profile Hashtbl
