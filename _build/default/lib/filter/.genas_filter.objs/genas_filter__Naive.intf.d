lib/filter/naive.mli: Genas_model Genas_profile Ops
