lib/filter/tree.ml: Array Decomp Float Format Fun Genas_interval Genas_model Hashtbl Int List Ops Option Order Seq String
