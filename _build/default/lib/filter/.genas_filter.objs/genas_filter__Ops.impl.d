lib/filter/ops.ml: Float Format
