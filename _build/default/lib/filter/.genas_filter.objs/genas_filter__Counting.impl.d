lib/filter/counting.ml: Array Decomp Genas_interval Genas_model Genas_profile Hashtbl Int List Ops Option
