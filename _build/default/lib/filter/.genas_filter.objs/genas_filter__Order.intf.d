lib/filter/order.mli: Format Genas_interval
