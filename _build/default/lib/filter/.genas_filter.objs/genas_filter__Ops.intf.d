lib/filter/ops.mli: Format
