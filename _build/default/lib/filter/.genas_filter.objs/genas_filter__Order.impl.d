lib/filter/order.ml: Array Float Format Genas_interval Int
