lib/filter/counting.mli: Genas_model Genas_profile Ops
