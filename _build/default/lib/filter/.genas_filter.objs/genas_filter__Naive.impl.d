lib/filter/naive.ml: Array Genas_interval Genas_model Genas_profile List Ops
