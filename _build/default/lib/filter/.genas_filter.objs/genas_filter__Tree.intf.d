lib/filter/tree.mli: Decomp Format Genas_model Genas_profile Ops Order
