lib/filter/decomp.ml: Array Genas_interval Genas_model Genas_profile Hashtbl Int List Option
