(** The profile tree (Gough & Smith's DFSA, §3), parameterized by
    attribute order and per-attribute search strategy.

    One tree level per attribute, in a configurable order; a node's
    out-edges are labelled with the global subrange cells referenced by
    the profiles alive at that node, stored in the defined value order;
    an optional rest-edge — drawn "( * )" in the paper's figures, or
    "*" when it is the only edge — carries the profiles that don't
    care about the attribute. Matching follows a single deterministic path. Identical
    subtrees are hash-consed (two nodes at the same level with the same
    alive profile set share their subtree), which keeps the
    determinized DFSA compact.

    The node representation is exposed read-only so the analytic cost
    model in [lib/core] can traverse the exact structure the matcher
    executes. Treat it as immutable. *)

type node =
  | Leaf of int array  (** matched profile ids, ascending *)
  | Node of {
      attr : int;  (** natural attribute index tested at this node *)
      cells : int array;  (** global cell per edge, in scan order *)
      edge_positions : float array;
          (** lookup-table position of each edge's cell, ascending —
              the node-local slice of the paper's position table *)
      children : node array;  (** child per edge *)
      rest : node option;
    }

type config = {
  attr_order : int array;
      (** [attr_order.(level)] = natural attribute index tested at
          that level; a permutation of [0 .. n-1] *)
  strategies : Order.strategy array;
      (** per *natural* attribute index *)
}

type stats = {
  nodes : int;  (** unique inner nodes *)
  leaves : int;  (** unique leaves *)
  edges : int;  (** edges over unique nodes (excluding rest) *)
  build_visits : int;
      (** construction calls, counting shared subtrees each time they
          are reached — [build_visits - nodes - leaves] quantifies the
          sharing the hash-consing wins *)
}

type t = private {
  decomp : Decomp.t;
  config : config;
  tables : Order.table array;  (** per natural attribute *)
  root : node option;  (** [None] when no profiles are registered *)
  stats : stats;
}

val default_config : Decomp.t -> config
(** Natural attribute order, [Linear Natural_asc] everywhere. *)

exception Construction_blowup of int
(** Raised by [build] when construction exceeds [max_visits]: the
    determinized DFSA is exploding (typical for wide schemas where most
    profiles don't-care most attributes — see DESIGN.md "choosing a
    matcher"; the counting matcher handles those workloads). *)

val build : ?share:bool -> ?max_visits:int -> Decomp.t -> config -> t
(** [share] (default true) enables subtree sharing; disable it only
    for the ablation benchmarks. [max_visits] (default unbounded)
    aborts runaway determinization with {!Construction_blowup}.

    @raise Invalid_argument if [config.attr_order] is not a permutation
    of the schema's attribute indices or [strategies] has the wrong
    length. *)

val match_event :
  ?ops:Ops.t -> t -> Genas_model.Event.t -> Genas_profile.Profile_set.id list
(** Matched profile ids, ascending. Counts one comparison per edge
    examined (linear: early-stopping scan in the defined order; binary:
    probes), as in §4.2. *)

val match_coords :
  ?ops:Ops.t -> t -> float array -> Genas_profile.Profile_set.id list
(** Same, from raw axis coordinates indexed by *natural* attribute
    index (the simulation path: sampled workloads bypass event
    construction). *)

val revision : t -> int

val scan :
  Order.strategy -> edge_positions:float array -> target:float ->
  int * int option
(** The node-level search primitive [match_event] executes:
    [(comparisons, matched edge index)]. Exposed so the analytic cost
    model evaluates exactly the code the matcher runs. *)

val pp : Format.formatter -> t -> unit
(** Render the tree in the style of the paper's Fig. 1/2: one line per
    edge, indented by level, with the attribute name, the cell's
    subrange label (["*"] for a rest-edge), and matched profile ids at
    the leaves. Shared subtrees are printed each time they are reached
    (the logical tree), so keep this to small trees. *)
