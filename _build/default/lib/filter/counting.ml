module Event = Genas_model.Event
module Overlay = Genas_interval.Overlay
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set

type t = {
  decomp : Decomp.t;
  cell_profiles : int array array array;
      (** [attr].[cell] → profile ids credited by that cell *)
  needed : (int, int) Hashtbl.t;  (** profile id → #constrained attrs *)
  all_dont_care : int array;  (** profiles with no constraint at all *)
  max_id : int;
}

let build pset =
  let decomp = Decomp.build pset in
  let n = Decomp.arity decomp in
  let cell_profiles =
    Array.init n (fun attr ->
        Array.map
          (fun (c : Overlay.cell) -> Array.of_list c.Overlay.ids)
          decomp.Decomp.overlays.(attr).Overlay.cells)
  in
  let needed = Hashtbl.create 64 in
  let all_dont_care = ref [] in
  let max_id = ref (-1) in
  Profile_set.iter pset (fun id p ->
      if id > !max_id then max_id := id;
      match Profile.arity_used p with
      | 0 -> all_dont_care := id :: !all_dont_care
      | k -> Hashtbl.replace needed id k);
  {
    decomp;
    cell_profiles;
    needed;
    all_dont_care = Array.of_list (List.rev !all_dont_care);
    max_id = !max_id;
  }

let revision t = t.decomp.Decomp.revision

let ceil_log2 m =
  if m <= 1 then if m = 1 then 1 else 0
  else
    let rec go acc v = if v >= m then acc else go (acc + 1) (v * 2) in
    go 0 1

let match_event ?ops t event =
  let n = Decomp.arity t.decomp in
  let credits = Hashtbl.create 32 in
  let comparisons = ref 0 in
  for attr = 0 to n - 1 do
    let ncells = Array.length t.cell_profiles.(attr) in
    comparisons := !comparisons + ceil_log2 ncells;
    match Decomp.cell_of_event t.decomp ~attr event with
    | None -> ()
    | Some cell ->
      Array.iter
        (fun id ->
          incr comparisons;
          Hashtbl.replace credits id
            (1 + Option.value ~default:0 (Hashtbl.find_opt credits id)))
        t.cell_profiles.(attr).(cell)
  done;
  let matched = ref (Array.to_list t.all_dont_care) in
  Hashtbl.iter
    (fun id got ->
      match Hashtbl.find_opt t.needed id with
      | Some need when got = need -> matched := id :: !matched
      | Some _ | None -> ())
    credits;
  let matched = List.sort Int.compare !matched in
  (match ops with
  | Some o ->
    o.Ops.comparisons <- o.Ops.comparisons + !comparisons;
    o.Ops.events <- o.Ops.events + 1;
    o.Ops.matches <- o.Ops.matches + List.length matched
  | None -> ());
  matched
