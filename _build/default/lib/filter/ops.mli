(** Operation counters.

    The paper measures filter performance "in comparison steps
    (# operations), since the structure is stored in main memory" (§3).
    Every matcher threads an optional counter; the analytic cost model
    in [lib/core] predicts exactly the values these counters report. *)

type t = {
  mutable comparisons : int;
      (** edges/predicates examined — the paper's #operations *)
  mutable node_visits : int;  (** tree nodes entered *)
  mutable events : int;  (** events filtered *)
  mutable matches : int;  (** (event, profile) match pairs produced *)
}

val create : unit -> t

val reset : t -> unit

val add : t -> into:t -> unit
(** Accumulate [t] into [into]. *)

val per_event : t -> float
(** Average comparisons per event ([nan] before any event). *)

val per_match : t -> float
(** Average comparisons per (event, matched profile) pair. *)

val pp : Format.formatter -> t -> unit
