lib/dist/shape.ml: Dist Float Genas_interval Genas_model List
