lib/dist/dist.ml: Array Float Format Genas_interval Genas_model Genas_prng Hashtbl List Option
