lib/dist/dist.mli: Format Genas_interval Genas_model Genas_prng
