lib/dist/catalog.mli: Shape
