lib/dist/estimator.ml: Array Dist Float Genas_interval Genas_model List Stdlib
