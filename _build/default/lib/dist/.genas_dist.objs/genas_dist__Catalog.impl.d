lib/dist/catalog.ml: List Printf Shape String
