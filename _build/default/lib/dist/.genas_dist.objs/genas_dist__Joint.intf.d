lib/dist/joint.mli: Dist Genas_interval Genas_model Genas_prng
