lib/dist/estimator.mli: Dist Genas_model
