lib/dist/joint.ml: Array Dist Genas_interval Genas_model Genas_prng List
