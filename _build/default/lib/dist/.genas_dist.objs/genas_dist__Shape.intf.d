lib/dist/shape.mli: Dist Genas_model
