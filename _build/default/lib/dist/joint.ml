module Axis = Genas_model.Axis
module Overlay = Genas_interval.Overlay
module Prng = Genas_prng.Prng

type component = { weight : float; dists : Dist.t array }

type t = { axes : Axis.t array; comps : component array }

let mixture weighted =
  match weighted with
  | [] -> invalid_arg "Joint.mixture: empty"
  | (_, first) :: _ ->
    if Array.length first = 0 then invalid_arg "Joint.mixture: zero arity";
    let axes = Array.map Dist.axis first in
    let total =
      List.fold_left
        (fun acc (w, dists) ->
          if w < 0.0 then invalid_arg "Joint.mixture: negative weight";
          if Array.length dists <> Array.length axes then
            invalid_arg "Joint.mixture: arity mismatch";
          Array.iteri
            (fun i d ->
              if not (Axis.equal (Dist.axis d) axes.(i)) then
                invalid_arg "Joint.mixture: axis mismatch")
            dists;
          acc +. w)
        0.0 weighted
    in
    if total <= 0.0 then invalid_arg "Joint.mixture: zero total weight";
    {
      axes;
      comps =
        Array.of_list
          (List.filter_map
             (fun (w, dists) ->
               if w = 0.0 then None
               else Some { weight = w /. total; dists })
             weighted);
    }

let independent dists = mixture [ (1.0, dists) ]

let arity t = Array.length t.axes

let axes t = Array.copy t.axes

let components t = Array.length t.comps

let initial_weights t = Array.map (fun c -> c.weight) t.comps

let sample rng t =
  let k = Prng.weighted_index rng (initial_weights t) in
  Array.map (fun d -> Dist.sample rng d) t.comps.(k).dists

let marginal t ~attr =
  Dist.mix
    (Array.to_list
       (Array.map (fun c -> (c.weight, c.dists.(attr))) t.comps))

let component_cell_probs t ~overlays ~attr =
  Array.map (fun c -> Dist.cell_probs c.dists.(attr) overlays.(attr)) t.comps

let cell_probs t ~overlays ~weights ~attr =
  if Array.length weights <> Array.length t.comps then
    invalid_arg "Joint.cell_probs: weight vector length mismatch";
  let per_comp = component_cell_probs t ~overlays ~attr in
  let ncells = Array.length overlays.(attr).Overlay.cells in
  Array.init ncells (fun cell ->
      let acc = ref 0.0 in
      Array.iteri (fun k w -> acc := !acc +. (w *. per_comp.(k).(cell))) weights;
      !acc)
