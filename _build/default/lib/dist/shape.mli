(** Parametric distribution shapes.

    The paper's evaluation uses 60 hand-defined event/profile
    distributions (sketched in Fig. 3 but never published numerically),
    plus equal and Gauss distributions, plus the "N % high/low" peaked
    family of Fig. 5. This module provides the parametric generators
    those classes are drawn from; {!Catalog} binds concrete names.

    All shape functions take the target axis last so they can be
    partially applied as catalog entries. Fractional positions are
    relative to the axis ([0.0] = low end, [1.0] = high end). *)

type gen = Genas_model.Axis.t -> Dist.t

val equal_dist : gen
(** Uniform over the axis. *)

val gauss : ?mu_frac:float -> ?sigma_frac:float -> unit -> gen
(** Gaussian density truncated to the axis. Defaults: centered
    ([mu_frac = 0.5]) with [sigma_frac = 1/6] of the axis width. *)

val relocated_gauss : [ `Low | `High ] -> gen
(** The paper's "relocated Gauss": center shifted to the low or high
    end ([mu_frac] 0.1 / 0.9), same default width. *)

val falling : gen
(** Linearly decreasing density (maximum at the low end). *)

val rising : gen

val peak : at:float -> mass:float -> width:float -> gen
(** A rectangular peak of the given mass and fractional width centered
    at fractional position [at], over a uniform background carrying the
    remaining mass. The Fig. 5 labels map as: "95 % high" =
    [peak ~at:0.9 ~mass:0.95 ~width:0.05], "90 % high" likewise with
    [mass:0.9], "95 % low" with [at:0.1].

    @raise Invalid_argument unless [0 <= mass <= 1] and [width > 0]. *)

val peaks : (float * float * float) list -> gen
(** Multi-modal: list of [(at, mass, width)]; remaining mass uniform.
    Total peak mass must not exceed 1. *)

val zipf : ?s:float -> unit -> gen
(** Zipf over a discrete axis: P(k-th point) proportional to
    1/(k+1)^s, [s] defaulting to 1. On continuous axes the analogous
    power-law density is used. *)

val exponential_like : ?rate_frac:float -> unit -> gen
(** Truncated exponential decay from the low end; [rate_frac] is the
    decay rate per axis width (default 5.0). *)

val steps : (float * float) list -> gen
(** Piecewise-constant by fractional widths: [(width_frac, mass)] list
    covering the axis (widths must sum to 1 up to 1e-6). *)
