(** Joint (correlated) event distributions.

    §3 of the paper defines the tree's cost through *conditional*
    expectations — "the distributions for the values of each of the n
    attributes of an event are not independent" — but its tests assume
    independence. This module supplies the correlated case as a
    mixture of product distributions (a latent "regime" per component:
    e.g. hot-dry vs cold-wet weather), which is closed under the
    conditioning the tree evaluator needs: conditioning on a prefix of
    attribute cells just reweights the components.

    Marginals of a mixture of products are mixtures; conditionals are
    mixtures with updated weights — both exact, no sampling. *)

type t

val independent : Dist.t array -> t
(** The single-component mixture: the paper's test protocol. *)

val mixture : (float * Dist.t array) list -> t
(** [mixture [(w_k, dists_k); …]]: with probability proportional to
    [w_k], the event is drawn from the product of [dists_k]. All
    components must have the same arity and axes.

    @raise Invalid_argument on empty lists, arity/axis mismatches, or
    non-positive total weight. *)

val arity : t -> int

val axes : t -> Genas_model.Axis.t array

val components : t -> int

val sample : Genas_prng.Prng.t -> t -> float array
(** Draw one event's coordinates (component choice, then attribute-wise
    independent draws). *)

val marginal : t -> attr:int -> Dist.t
(** Exact marginal of one attribute (a {!Dist.mix} of the component
    distributions). *)

val cell_probs :
  t -> overlays:Genas_interval.Overlay.t array -> weights:float array ->
  attr:int -> float array
(** Cell probabilities of [attr] under component [weights] (not
    necessarily normalized — the evaluator carries unnormalized reach
    weights). Index-aligned with the overlay's cells. *)

val component_cell_probs :
  t -> overlays:Genas_interval.Overlay.t array -> attr:int -> float array array
(** [result.(k).(cell)]: per-component quantization, precomputed once
    per evaluation. *)

val initial_weights : t -> float array
(** The (normalized) component weights. *)
