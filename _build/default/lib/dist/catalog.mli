(** Named distribution catalog.

    The paper's tests reference distributions by number ("defined 1" …
    "defined 42", Fig. 3) plus "equal", "Gauss", "relocated Gauss",
    "falling", and the peaked "N % high/low" family of Fig. 5. The
    numeric definitions were never published, so the [dN] names are
    bound to a deterministic parametric family (single peaks of varying
    position/mass/width, bimodal shapes, ramps, truncated
    exponentials — the classes Fig. 3 sketches). This substitution is
    recorded in DESIGN.md §3.

    Names are case-insensitive. *)

val find : string -> Shape.gen option
(** Look up a generator by name. Recognized names:
    ["equal"], ["gauss"], ["gauss_low"]/["relocated_gauss_low"],
    ["gauss_high"]/["relocated_gauss_high"], ["falling"], ["rising"],
    ["zipf"], ["exp"], ["d1"] … ["d42"], and peak specs of the form
    ["NN%high"] / ["NN%low"] (e.g. ["95%high"]). *)

val find_exn : string -> Shape.gen
(** @raise Invalid_argument on unknown names. *)

val names : string list
(** All fixed names (excludes the parametric ["NN%high/low"] forms),
    sorted. *)

val figure3_names : string list
(** The distributions displayed in Fig. 3, in the paper's label
    order. *)
