module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Iset = Genas_interval.Iset
module Overlay = Genas_interval.Overlay
module Prng = Genas_prng.Prng

type piece = { itv : Interval.t; mass : float }

type t = { axis : Axis.t; pieces : piece list; atoms : (float * float) list }

let axis t = t.axis

let total_mass pieces atoms =
  List.fold_left (fun a p -> a +. p.mass) 0.0 pieces
  +. List.fold_left (fun a (_, m) -> a +. m) 0.0 atoms

let normalize t =
  let z = total_mass t.pieces t.atoms in
  if z <= 0.0 then invalid_arg "Dist: total mass must be positive";
  {
    t with
    pieces = List.map (fun p -> { p with mass = p.mass /. z }) t.pieces;
    atoms = List.map (fun (c, m) -> (c, m /. z)) t.atoms;
  }

let uniform axis =
  normalize
    {
      axis;
      pieces =
        [ { itv = Interval.make_exn ~lo:axis.Axis.lo ~hi:axis.Axis.hi (); mass = 1.0 } ];
      atoms = [];
    }

let of_atoms axis weighted =
  if weighted = [] then invalid_arg "Dist.of_atoms: empty";
  List.iter
    (fun (c, w) ->
      if w < 0.0 then invalid_arg "Dist.of_atoms: negative weight";
      if c < axis.Axis.lo || c > axis.Axis.hi then
        invalid_arg "Dist.of_atoms: coordinate outside axis";
      if axis.Axis.discrete && Float.rem c 1.0 <> 0.0 then
        invalid_arg "Dist.of_atoms: non-integer coordinate on discrete axis")
    weighted;
  let atoms =
    List.filter (fun (_, w) -> w > 0.0) weighted
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
  in
  normalize { axis; pieces = []; atoms }

let of_pieces axis weighted =
  if weighted = [] then invalid_arg "Dist.of_pieces: empty";
  let pieces =
    List.filter_map
      (fun ((itv : Interval.t), w) ->
        if w < 0.0 then invalid_arg "Dist.of_pieces: negative weight";
        if itv.Interval.lo < axis.Axis.lo || itv.Interval.hi > axis.Axis.hi then
          invalid_arg "Dist.of_pieces: interval outside axis";
        if Interval.measure ~discrete:axis.Axis.discrete itv <= 0.0 then
          invalid_arg "Dist.of_pieces: piece of zero measure";
        if w = 0.0 then None else Some { itv; mass = w })
      weighted
    |> List.sort (fun a b -> Interval.compare_disjoint a.itv b.itv)
  in
  let rec disjoint = function
    | a :: (b :: _ as rest) ->
      (match Interval.inter a.itv b.itv with
      | Some _ -> invalid_arg "Dist.of_pieces: overlapping pieces"
      | None -> ());
      disjoint rest
    | [ _ ] | [] -> ()
  in
  disjoint pieces;
  normalize { axis; pieces; atoms = [] }

let of_blocks axis blocks =
  let n = List.length blocks in
  let pieces =
    List.mapi
      (fun i (lo, hi, w) ->
        let hi_closed = i = n - 1 && hi >= axis.Axis.hi in
        (Interval.make_exn ~hi_closed ~lo ~hi (), w))
      blocks
  in
  of_pieces axis pieces

let of_density ?(bins = 256) axis f =
  if axis.Axis.discrete && Axis.size axis <= float_of_int bins then begin
    let n = int_of_float (Axis.size axis) in
    let atoms =
      List.init n (fun i ->
          let c = axis.Axis.lo +. float_of_int i in
          (c, Float.max 0.0 (f c)))
    in
    of_atoms axis atoms
  end
  else begin
    let lo = axis.Axis.lo and hi = axis.Axis.hi in
    let width = (hi -. lo) /. float_of_int bins in
    let pieces =
      List.init bins (fun i ->
          let a = lo +. (float_of_int i *. width) in
          let b = if i = bins - 1 then hi else a +. width in
          let mid = (a +. b) /. 2.0 in
          let itv =
            Interval.make_exn ~hi_closed:(i = bins - 1) ~lo:a ~hi:b ()
          in
          (itv, Float.max 0.0 (f mid)))
    in
    (* Guard: an all-zero density (e.g. a Gauss far outside the axis)
       degenerates to uniform rather than failing normalization. *)
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pieces in
    if total <= 0.0 then uniform axis else of_pieces axis pieces
  end

let mix weighted =
  match weighted with
  | [] -> invalid_arg "Dist.mix: empty"
  | (_, first) :: _ ->
    let ax = first.axis in
    List.iter
      (fun (w, d) ->
        if w < 0.0 then invalid_arg "Dist.mix: negative weight";
        if not (Axis.equal d.axis ax) then
          invalid_arg "Dist.mix: mismatched axes")
      weighted;
    let pieces =
      List.concat_map
        (fun (w, d) ->
          List.map (fun p -> { p with mass = p.mass *. w }) d.pieces)
        weighted
    in
    let atoms =
      List.concat_map
        (fun (w, d) -> List.map (fun (c, m) -> (c, m *. w)) d.atoms)
        weighted
    in
    (* Atoms at equal coordinates merge; pieces may overlap across
       components, which is fine for probability queries but must be
       resolved for the disjointness invariant: split via interval-set
       refinement is overkill — instead keep components and rely on
       queries summing over pieces. Overlapping pieces from a mixture
       are legal here because every query (prob, sample) sums piece
       contributions independently. *)
    let atoms =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (c, m) ->
          Hashtbl.replace tbl c (m +. Option.value ~default:0.0 (Hashtbl.find_opt tbl c)))
        atoms;
      Hashtbl.fold (fun c m acc -> (c, m) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    in
    normalize { axis = ax; pieces; atoms }

let piece_fraction ~discrete (p : piece) (itv : Interval.t) =
  match Interval.inter p.itv itv with
  | None -> 0.0
  | Some overlap ->
    let whole = Interval.measure ~discrete p.itv in
    if whole <= 0.0 then 0.0
    else Interval.measure ~discrete overlap /. whole

let prob_interval t itv =
  let discrete = t.axis.Axis.discrete in
  let from_pieces =
    List.fold_left
      (fun acc p -> acc +. (p.mass *. piece_fraction ~discrete p itv))
      0.0 t.pieces
  in
  let from_atoms =
    List.fold_left
      (fun acc (c, m) -> if Interval.mem itv c then acc +. m else acc)
      0.0 t.atoms
  in
  from_pieces +. from_atoms

let prob_iset t iset =
  List.fold_left
    (fun acc itv -> acc +. prob_interval t itv)
    0.0 (Iset.intervals iset)

let cell_probs t overlay =
  Array.map (fun (c : Overlay.cell) -> prob_interval t c.Overlay.itv)
    overlay.Overlay.cells

let mean t =
  let discrete = t.axis.Axis.discrete in
  let piece_mean (p : piece) =
    if discrete then
      (* Uniform over the integers of the piece: mean of first/last. *)
      let lo = Float.ceil p.itv.Interval.lo and hi = Float.floor p.itv.Interval.hi in
      (lo +. hi) /. 2.0
    else (p.itv.Interval.lo +. p.itv.Interval.hi) /. 2.0
  in
  List.fold_left (fun acc p -> acc +. (p.mass *. piece_mean p)) 0.0 t.pieces
  +. List.fold_left (fun acc (c, m) -> acc +. (c *. m)) 0.0 t.atoms

let cdf t x =
  if x < t.axis.Axis.lo then 0.0
  else if x >= t.axis.Axis.hi then 1.0
  else
    prob_interval t (Interval.make_exn ~lo:t.axis.Axis.lo ~hi:x ())

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Dist.quantile: q not in [0,1]";
  let lo = ref t.axis.Axis.lo and hi = ref t.axis.Axis.hi in
  (* cdf is monotone; bisect to tolerance. *)
  while !hi -. !lo > 1e-9 *. Float.max 1.0 (Float.abs !hi) do
    let mid = ( !lo +. !hi ) /. 2.0 in
    if cdf t mid >= q then hi := mid else lo := mid
  done;
  if t.axis.Axis.discrete then Float.round !hi else !hi

let sample rng t =
  let n_pieces = List.length t.pieces and n_atoms = List.length t.atoms in
  let weights = Array.make (n_pieces + n_atoms) 0.0 in
  List.iteri (fun i p -> weights.(i) <- p.mass) t.pieces;
  List.iteri (fun i (_, m) -> weights.(n_pieces + i) <- m) t.atoms;
  let k = Prng.weighted_index rng weights in
  if k < n_pieces then begin
    let p = List.nth t.pieces k in
    if t.axis.Axis.discrete then
      let lo = int_of_float (Float.ceil p.itv.Interval.lo) in
      let hi = int_of_float (Float.floor p.itv.Interval.hi) in
      float_of_int (Prng.int_in rng ~lo ~hi)
    else Prng.float_in rng ~lo:p.itv.Interval.lo ~hi:p.itv.Interval.hi
  end
  else fst (List.nth t.atoms (k - n_pieces))

let sampler t =
  (* Precompile the tables; component choice bisects the cumulative
     weights with the same uniform draw weighted_index consumes, so the
     sampled stream is bit-identical to [sample]'s. *)
  let pieces = Array.of_list t.pieces in
  let atoms = Array.of_list t.atoms in
  let n_pieces = Array.length pieces and n_atoms = Array.length atoms in
  let n = n_pieces + n_atoms in
  let weight k =
    if k < n_pieces then pieces.(k).mass else snd atoms.(k - n_pieces)
  in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. weight k;
    cum.(k) <- !acc
  done;
  let total = !acc in
  let discrete = t.axis.Axis.discrete in
  fun rng ->
    let target = Prng.float rng ~bound:total in
    (* Smallest k with target < cum.(k); weighted_index's scan picks the
       same k (its last bucket soaks up rounding, as does ours). *)
    let k =
      if n = 1 then 0
      else begin
        let lo = ref 0 and hi = ref (n - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if target < cum.(mid) then hi := mid else lo := mid + 1
        done;
        !lo
      end
    in
    if k < n_pieces then begin
      let p = pieces.(k) in
      if discrete then
        let lo = int_of_float (Float.ceil p.itv.Interval.lo) in
        let hi = int_of_float (Float.floor p.itv.Interval.hi) in
        float_of_int (Prng.int_in rng ~lo ~hi)
      else Prng.float_in rng ~lo:p.itv.Interval.lo ~hi:p.itv.Interval.hi
    end
    else fst atoms.(k - n_pieces)

let is_normalized t = Float.abs (total_mass t.pieces t.atoms -. 1.0) < 1e-9

let pp ppf t =
  Format.fprintf ppf "@[<hv 2>dist on %a:" Axis.pp t.axis;
  List.iter
    (fun p -> Format.fprintf ppf "@ %a:%.4f" Interval.pp p.itv p.mass)
    t.pieces;
  List.iter (fun (c, m) -> Format.fprintf ppf "@ {%g}:%.4f" c m) t.atoms;
  Format.fprintf ppf "@]"
