module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval

type gen = Axis.t -> Dist.t

let equal_dist axis = Dist.uniform axis

let span (axis : Axis.t) = axis.Axis.hi -. axis.Axis.lo

let at_frac (axis : Axis.t) f = axis.Axis.lo +. (f *. span axis)

let gauss ?(mu_frac = 0.5) ?(sigma_frac = 1.0 /. 6.0) () axis =
  let mu = at_frac axis mu_frac in
  let sigma = Float.max 1e-9 (sigma_frac *. Float.max 1e-9 (span axis)) in
  Dist.of_density axis (fun x ->
      let z = (x -. mu) /. sigma in
      exp (-0.5 *. z *. z))

let relocated_gauss side axis =
  let mu_frac = match side with `Low -> 0.1 | `High -> 0.9 in
  gauss ~mu_frac () axis

let falling axis =
  let lo = axis.Axis.lo and s = Float.max 1e-9 (span axis) in
  Dist.of_density axis (fun x -> Float.max 0.0 (1.0 -. ((x -. lo) /. s)))

let rising axis =
  let lo = axis.Axis.lo and s = Float.max 1e-9 (span axis) in
  Dist.of_density axis (fun x -> Float.max 0.0 ((x -. lo) /. s))

let clamp_frac f = Float.max 0.0 (Float.min 1.0 f)

let peak_pieces axis ps =
  (* Build each peak as an interval clamped into the axis. *)
  List.map
    (fun (at, mass, width) ->
      if mass < 0.0 || mass > 1.0 then invalid_arg "Shape.peak: mass not in [0,1]";
      if width <= 0.0 then invalid_arg "Shape.peak: width must be positive";
      let c = at_frac axis (clamp_frac at) in
      let half = width *. span axis /. 2.0 in
      let lo = Float.max axis.Axis.lo (c -. half) in
      let hi = Float.min axis.Axis.hi (c +. half) in
      let lo, hi = if lo < hi then (lo, hi) else (lo, Float.min axis.Axis.hi (lo +. 1e-9)) in
      let itv = Interval.make_exn ~lo ~hi () in
      let itv =
        (* A peak narrower than one inhabited point of a discrete axis
           collapses to the nearest point. *)
        if axis.Axis.discrete && Interval.measure ~discrete:true itv = 0.0 then
          let point =
            Float.max axis.Axis.lo (Float.min axis.Axis.hi (Float.round c))
          in
          Interval.point point
        else itv
      in
      (itv, mass))
    ps

let peaks ps axis =
  let peak_mass = List.fold_left (fun a (_, m, _) -> a +. m) 0.0 ps in
  if peak_mass > 1.0 +. 1e-9 then
    invalid_arg "Shape.peaks: total peak mass exceeds 1";
  let background = Float.max 0.0 (1.0 -. peak_mass) in
  let components =
    List.map
      (fun (itv, mass) -> (mass, Dist.of_pieces axis [ (itv, 1.0) ]))
      (peak_pieces axis ps)
  in
  let components =
    if background > 1e-12 then (background, Dist.uniform axis) :: components
    else components
  in
  Dist.mix components

let peak ~at ~mass ~width axis = peaks [ (at, mass, width) ] axis

let zipf ?(s = 1.0) () (axis : Axis.t) =
  if axis.Axis.discrete && Axis.size axis <= 100_000.0 then
    let n = int_of_float (Axis.size axis) in
    Dist.of_atoms axis
      (List.init n (fun i ->
           (axis.Axis.lo +. float_of_int i, 1.0 /. ((float_of_int i +. 1.0) ** s))))
  else
    let lo = axis.Axis.lo and sp = Float.max 1e-9 (span axis) in
    Dist.of_density axis (fun x ->
        1.0 /. ((1.0 +. (99.0 *. (x -. lo) /. sp)) ** s))

let exponential_like ?(rate_frac = 5.0) () axis =
  let lo = axis.Axis.lo and sp = Float.max 1e-9 (span axis) in
  Dist.of_density axis (fun x -> exp (-.rate_frac *. (x -. lo) /. sp))

let steps widths axis =
  let total_width = List.fold_left (fun a (w, _) -> a +. w) 0.0 widths in
  if Float.abs (total_width -. 1.0) > 1e-6 then
    invalid_arg "Shape.steps: widths must sum to 1";
  let lo = axis.Axis.lo and sp = span axis in
  let _, blocks =
    List.fold_left
      (fun (pos, acc) (w, mass) ->
        let next = pos +. (w *. sp) in
        (next, (lo +. pos, lo +. next, mass) :: acc))
      (0.0, []) widths
  in
  Dist.of_blocks axis (List.rev blocks)
