(** Probability distributions over one attribute axis.

    §3 models each attribute of an event as a random variable whose
    distribution is "given as continuous density functions (for
    continuous values) or discrete probability values (for discrete
    values)". We represent both — and mixtures — as a normalized list
    of piecewise-uniform *pieces* plus point *atoms*. This form is
    closed under quantization onto subrange cells (the reformation of a
    continuous event distribution "as a distribution of, at the most,
    (2p−1) discrete values"), supports exact interval probabilities,
    and samples in O(#pieces). *)

type piece = private { itv : Genas_interval.Interval.t; mass : float }

type t = private {
  axis : Genas_model.Axis.t;
  pieces : piece list;  (** disjoint, in axis order; uniform within *)
  atoms : (float * float) list;  (** (coordinate, mass), sorted *)
}

val axis : t -> Genas_model.Axis.t

val uniform : Genas_model.Axis.t -> t
(** The paper's "equally distributed" data. *)

val of_atoms : Genas_model.Axis.t -> (float * float) list -> t
(** Pure discrete distribution from (coordinate, weight) pairs; weights
    are normalized.

    @raise Invalid_argument on empty/negative/all-zero weights, on
    coordinates outside the axis, or on non-integer coordinates for a
    discrete axis. *)

val of_pieces :
  Genas_model.Axis.t -> (Genas_interval.Interval.t * float) list -> t
(** Piecewise-uniform distribution from (interval, weight) pairs.
    Intervals must be pairwise disjoint, within the axis, and of
    positive measure; weights are normalized. *)

val of_blocks : Genas_model.Axis.t -> (float * float * float) list -> t
(** [(lo, hi, weight)] convenience over [of_pieces] with closed-left,
    open-right blocks (the last block is closed at the axis top). Used
    for the paper's block-style example distributions. *)

val of_density :
  ?bins:int -> Genas_model.Axis.t -> (float -> float) -> t
(** Discretize a density function into [bins] equal-width pieces
    (default 256) by midpoint evaluation, then normalize. On a
    discrete axis with at most [bins] points, evaluates every point
    exactly into atoms instead. *)

val mix : (float * t) list -> t
(** Weighted mixture of distributions on one common axis.

    @raise Invalid_argument on empty list, mismatched axes, or
    non-positive total weight. *)

val prob_interval : t -> Genas_interval.Interval.t -> float
(** Exact probability mass of an interval. *)

val prob_iset : t -> Genas_interval.Iset.t -> float

val cell_probs : t -> Genas_interval.Overlay.t -> float array
(** Quantization of §3: mass of each overlay cell, index-aligned with
    [Overlay.cells]. Sums to 1 up to rounding (the overlay covers the
    axis). *)

val mean : t -> float

val cdf : t -> float -> float
(** [cdf t x] = P(X <= x); 0 below the axis, 1 above it. *)

val quantile : t -> float -> float
(** [quantile t q] = smallest axis coordinate [x] with
    [cdf t x >= q] (up to a 1e-9 bisection tolerance).

    @raise Invalid_argument unless [0 <= q <= 1]. *)

val sample : Genas_prng.Prng.t -> t -> float
(** Draw a coordinate. On discrete axes the result is an inhabited
    integer coordinate. *)

val sampler : t -> Genas_prng.Prng.t -> float
(** [sampler t] precompiles the component tables once; the returned
    closure draws in O(log #components) instead of [sample]'s linear
    walk, consuming the same generator stream and producing the same
    values (the simulation harness uses it; tests assert the
    bit-equality). *)

val is_normalized : t -> bool
(** Total mass within 1e-9 of 1 (always true for constructed values;
    exposed for property tests). *)

val pp : Format.formatter -> t -> unit
