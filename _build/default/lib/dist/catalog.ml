(* The dN family: a deterministic parametric zoo covering the shape
   classes of Fig. 3. Indices are spread over the unit square by a
   low-discrepancy rule so that any selection of handles (the paper
   picks ~16 of its 60) exercises visibly different shapes. *)
let dn n =
  let frac k m = float_of_int (n * k mod m) /. float_of_int m in
  match n mod 6 with
  | 0 ->
    (* Ramps and exponential decays. *)
    if n mod 12 = 0 then Shape.exponential_like ~rate_frac:(3.0 +. frac 1 7) ()
    else if n mod 4 = 0 then Shape.falling
    else Shape.rising
  | 1 | 4 ->
    (* Narrow single peak, position sweeps with n. *)
    Shape.peak
      ~at:(0.05 +. (0.9 *. frac 7 19))
      ~mass:(0.6 +. (0.35 *. frac 5 11))
      ~width:(0.04 +. (0.08 *. frac 3 7))
  | 2 ->
    (* Wide single peak. *)
    Shape.peak
      ~at:(0.1 +. (0.8 *. frac 11 23))
      ~mass:(0.5 +. (0.3 *. frac 3 13))
      ~width:(0.2 +. (0.3 *. frac 2 5))
  | 3 ->
    (* Bimodal. *)
    let a = 0.05 +. (0.35 *. frac 5 17) in
    let b = 0.6 +. (0.35 *. frac 9 13) in
    Shape.peaks
      [ (a, 0.45, 0.08 +. (0.06 *. frac 1 3)); (b, 0.4, 0.05 +. (0.08 *. frac 2 7)) ]
  | 5 ->
    (* Off-center Gauss. *)
    Shape.gauss
      ~mu_frac:(0.15 +. (0.7 *. frac 13 29))
      ~sigma_frac:(0.05 +. (0.15 *. frac 4 9))
      ()
  | _ -> assert false

let fixed : (string * Shape.gen) list =
  [
    ("equal", Shape.equal_dist);
    ("uniform", Shape.equal_dist);
    ("gauss", Shape.gauss ());
    ("gauss_low", Shape.relocated_gauss `Low);
    ("relocated_gauss_low", Shape.relocated_gauss `Low);
    ("gauss_high", Shape.relocated_gauss `High);
    ("relocated_gauss_high", Shape.relocated_gauss `High);
    ("falling", Shape.falling);
    ("rising", Shape.rising);
    ("zipf", Shape.zipf ());
    ("exp", Shape.exponential_like ());
  ]
  @ List.init 42 (fun i -> (Printf.sprintf "d%d" (i + 1), dn (i + 1)))

(* "95%high" / "90%low" style peak specs. *)
let parse_peak_spec name =
  match String.index_opt name '%' with
  | None -> None
  | Some i ->
    let num = String.sub name 0 i in
    let side = String.sub name (i + 1) (String.length name - i - 1) in
    (match (int_of_string_opt num, side) with
    | Some pct, "high" when pct >= 1 && pct <= 100 ->
      Some (Shape.peak ~at:0.9 ~mass:(float_of_int pct /. 100.0) ~width:0.05)
    | Some pct, "low" when pct >= 1 && pct <= 100 ->
      Some (Shape.peak ~at:0.1 ~mass:(float_of_int pct /. 100.0) ~width:0.05)
    | _ -> None)

let find name =
  let name = String.lowercase_ascii (String.trim name) in
  match List.assoc_opt name fixed with
  | Some g -> Some g
  | None -> parse_peak_spec name

let find_exn name =
  match find name with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Catalog.find_exn: unknown distribution %S" name)

let names = List.sort String.compare (List.map fst fixed)

let figure3_names =
  [ "d1"; "d2"; "d3"; "d5"; "d9"; "d14"; "d16"; "d17"; "d18"; "d34"; "d37";
    "d39"; "d40"; "d41"; "d42" ]
