(** Profiles: conjunctive subscriptions over a schema (§3).

    A profile is a set of predicates on distinct attributes; attributes
    without a predicate carry the don't-care value [*]. A profile is
    *bound* to a schema at creation: each predicate is type-checked and
    compiled to its interval-set denotation, so matching and tree
    construction never re-interpret operator semantics. Multiple tests
    on the same attribute conjoin (denotations intersect). *)

type t = private {
  name : string option;
  tests : (int * Predicate.test list) list;
      (** original tests per attribute natural index, for printing *)
  denots : Genas_interval.Iset.t option array;
      (** per-attribute denotation; [None] is don't-care *)
}

val create :
  ?name:string ->
  Genas_model.Schema.t ->
  (string * Predicate.test) list ->
  (t, string) result
(** Bind named predicates to the schema. A profile with an empty
    predicate list matches every event (all don't-care). A predicate
    whose denotation is empty makes the profile unsatisfiable; this is
    reported as an error (the paper's trees never contain such
    profiles). *)

val create_exn :
  ?name:string ->
  Genas_model.Schema.t ->
  (string * Predicate.test) list ->
  t

val matches : Genas_model.Schema.t -> t -> Genas_model.Event.t -> bool
(** Direct conjunctive evaluation against denotations — the semantic
    reference every matcher in [lib/filter] is tested against. *)

val denotation : t -> int -> Genas_interval.Iset.t option
(** Denotation on the attribute with the given natural index ([None] =
    don't-care). *)

val constrained : t -> int list
(** Natural indices of attributes the profile constrains, ascending. *)

val is_dont_care : t -> int -> bool

val arity_used : t -> int
(** Number of constrained attributes. *)

val pp : Genas_model.Schema.t -> Format.formatter -> t -> unit
