(** Textual profile and event language.

    A small concrete syntax so profiles and events can be created at
    runtime (the "generic service" requirement of §4.2), scripted in
    examples, and fed through the CLI:

    {v
    temperature >= 35 && humidity >= 90
    radiation in [35, 50) && site in {berlin, potsdam}
    temperature != 0 && alarm = true
    v}

    Events bind every attribute with [=]:

    {v temperature = 30, humidity = 90, radiation = 2 v}

    Literal kinds are resolved against the schema: enum values may be
    written bare or double-quoted; numbers are parsed per the
    attribute's domain kind. *)

val parse_tests :
  Genas_model.Schema.t -> string -> ((string * Predicate.test) list, string) result
(** Parse a profile body into named tests (without binding). *)

val parse_profile :
  ?name:string -> Genas_model.Schema.t -> string -> (Profile.t, string) result
(** Parse and bind a profile. The empty (or all-whitespace) body is the
    all-don't-care profile. *)

val parse_event :
  ?seq:int -> ?time:float -> Genas_model.Schema.t -> string ->
  (Genas_model.Event.t, string) result

val profile_to_string : Genas_model.Schema.t -> Profile.t -> string
(** Pretty form with the profile's name, for display. *)

val body_to_string : Genas_model.Schema.t -> Profile.t -> string
(** Just the predicate conjunction — re-parses with [parse_profile] to
    an equivalent profile (the persistence format). The all-don't-care
    profile prints as the empty string. *)

val event_to_string : Genas_model.Schema.t -> Genas_model.Event.t -> string
