module Iset = Genas_interval.Iset

let covers a b =
  let n = Array.length a.Profile.denots in
  let rec check i =
    if i = n then true
    else
      match (a.Profile.denots.(i), b.Profile.denots.(i)) with
      | None, (Some _ | None) -> check (i + 1)
      | Some _, None ->
        (* [a] constrains an attribute [b] leaves free, so some event
           matched by [b] escapes [a] (denotations are never the full
           axis after normalization unless written so; being exact here
           would need the axis, and the conservative answer only makes
           the routing cover set slightly larger, never wrong). *)
        false
      | Some sa, Some sb -> Iset.subset sb sa && check (i + 1)
  in
  check 0

let equivalent a b = covers a b && covers b a

(* [p'] eliminates [p] if it strictly covers it, or if they are
   equivalent and [p'] has the smaller id. *)
let eliminates ~id' ~id p' p =
  covers p' p && ((not (covers p p')) || id' < id)

let minimal_cover entries =
  List.filter
    (fun (id, p) ->
      not
        (List.exists
           (fun (id', p') -> id' <> id && eliminates ~id' ~id p' p)
           entries))
    entries
