(** Covering relation between profiles.

    Profile [a] covers profile [b] when every event matched by [b] is
    also matched by [a] (for conjunctive profiles: attribute-wise
    denotation containment). Siena-style routing (§2's related work,
    implemented in [lib/ens]) propagates only covering-minimal
    subscription sets between brokers. *)

val covers : Profile.t -> Profile.t -> bool
(** [covers a b] iff [a]'s match set is a superset of [b]'s. Both
    profiles must be bound to the same schema. *)

val equivalent : Profile.t -> Profile.t -> bool
(** Mutual covering. *)

val minimal_cover : (Profile_set.id * Profile.t) list -> (Profile_set.id * Profile.t) list
(** Subset of the input whose members are not covered by any *other*
    member; among equivalent profiles the one with the smallest id is
    kept. The result covers the same event set as the input. *)
