module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Axis = Genas_model.Axis
module Iset = Genas_interval.Iset

type t = {
  name : string option;
  tests : (int * Predicate.test list) list;
  denots : Iset.t option array;
}

let create ?name schema named_tests =
  let n = Schema.arity schema in
  let denots = Array.make n None in
  let tests : (int, Predicate.test list) Hashtbl.t = Hashtbl.create 8 in
  let rec bind = function
    | [] -> Ok ()
    | (attr_name, test) :: rest -> (
      match Schema.find schema attr_name with
      | None -> Error (Printf.sprintf "unknown attribute %S" attr_name)
      | Some attr -> (
        let i = attr.Schema.index in
        match Predicate.denote attr.Schema.domain test with
        | Error e -> Error (Printf.sprintf "attribute %S: %s" attr_name e)
        | Ok iset ->
          let combined =
            match denots.(i) with
            | None -> iset
            | Some prev -> Iset.inter prev iset
          in
          denots.(i) <- Some combined;
          Hashtbl.replace tests i
            (test :: (try Hashtbl.find tests i with Not_found -> []));
          bind rest))
  in
  match bind named_tests with
  | Error e -> Error e
  | Ok () ->
    let unsat = ref None in
    Array.iteri
      (fun i d ->
        match d with
        | Some s when Iset.is_empty s && !unsat = None ->
          unsat := Some (Schema.attribute schema i).Schema.name
        | Some _ | None -> ())
      denots;
    (match !unsat with
    | Some a ->
      Error (Printf.sprintf "profile is unsatisfiable on attribute %S" a)
    | None ->
      let tests =
        Hashtbl.fold (fun i ts acc -> (i, List.rev ts) :: acc) tests []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      Ok { name; tests; denots })

let create_exn ?name schema named_tests =
  match create ?name schema named_tests with
  | Ok t -> t
  | Error msg -> invalid_arg ("Profile.create: " ^ msg)

let matches schema t event =
  let n = Array.length t.denots in
  let rec check i =
    if i = n then true
    else
      match t.denots.(i) with
      | None -> check (i + 1)
      | Some iset -> (
        let dom = (Schema.attribute schema i).Schema.domain in
        match Axis.coord dom (Event.value event i) with
        | None -> false
        | Some c -> Iset.mem iset c && check (i + 1))
  in
  check 0

let denotation t i = t.denots.(i)

let constrained t =
  let acc = ref [] in
  Array.iteri (fun i d -> if d <> None then acc := i :: !acc) t.denots;
  List.rev !acc

let is_dont_care t i = t.denots.(i) = None

let arity_used t = List.length (constrained t)

let pp schema ppf t =
  let name = match t.name with Some n -> n | None -> "?" in
  Format.fprintf ppf "@[<hv 2>profile %s(" name;
  let first = ref true in
  List.iter
    (fun (i, ts) ->
      let attr = (Schema.attribute schema i).Schema.name in
      List.iter
        (fun test ->
          if not !first then Format.fprintf ppf " &&@ ";
          first := false;
          Predicate.pp attr ppf test)
        ts)
    t.tests;
  Format.fprintf ppf ")@]"
