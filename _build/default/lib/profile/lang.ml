module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event

type token =
  | Tident of string
  | Tnumber of string
  | Tstring of string
  | Top of string  (** = == != < <= > >= *)
  | Tlbrack  (** [ *)
  | Trbrack  (** ] *)
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tcomma
  | Tand

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let lex src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if c = ',' then go (i + 1) (Tcomma :: acc)
      else if c = '[' then go (i + 1) (Tlbrack :: acc)
      else if c = ']' then go (i + 1) (Trbrack :: acc)
      else if c = '(' then go (i + 1) (Tlparen :: acc)
      else if c = ')' then go (i + 1) (Trparen :: acc)
      else if c = '{' then go (i + 1) (Tlbrace :: acc)
      else if c = '}' then go (i + 1) (Trbrace :: acc)
      else if c = '&' then
        if i + 1 < n && src.[i + 1] = '&' then go (i + 2) (Tand :: acc)
        else Error "lone '&' (use '&&')"
      else if c = '!' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (Top "!=" :: acc)
        else Error "lone '!' (use '!=')"
      else if c = '=' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (Top "=" :: acc)
        else go (i + 1) (Top "=" :: acc)
      else if c = '<' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (Top "<=" :: acc)
        else go (i + 1) (Top "<" :: acc)
      else if c = '>' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (Top ">=" :: acc)
        else go (i + 1) (Top ">" :: acc)
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then Error "unterminated string literal"
          else if src.[j] = '\\' && j + 1 < n then begin
            Buffer.add_char buf src.[j + 1];
            scan (j + 2)
          end
          else if src.[j] = '"' then begin
            let t = Tstring (Buffer.contents buf) in
            go (j + 1) (t :: acc)
          end
          else begin
            Buffer.add_char buf src.[j];
            scan (j + 1)
          end
        in
        scan (i + 1)
      end
      else if is_digit c || ((c = '-' || c = '+') && i + 1 < n && (is_digit src.[i + 1] || src.[i+1] = '.'))
              || (c = '.' && i + 1 < n && is_digit src.[i + 1]) then begin
        let j = ref (if c = '-' || c = '+' then i + 1 else i) in
        while
          !j < n
          && (is_digit src.[!j] || src.[!j] = '.' || src.[!j] = 'e'
             || src.[!j] = 'E'
             || ((src.[!j] = '-' || src.[!j] = '+')
                && (src.[!j - 1] = 'e' || src.[!j - 1] = 'E')))
        do
          incr j
        done;
        go !j (Tnumber (String.sub src i (!j - i)) :: acc)
      end
      else if is_ident_char c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        let word = String.sub src i (!j - i) in
        let t = if String.lowercase_ascii word = "and" then Tand else Tident word in
        go !j (t :: acc)
      end
      else Error (Printf.sprintf "unexpected character %C at offset %d" c i)
  in
  go 0 []

let ( let* ) = Result.bind

let literal_of_token kind tok =
  match (kind, tok) with
  | Value.Kint, Tnumber s -> Value.of_string Value.Kint s
  | Value.Kfloat, Tnumber s -> Value.of_string Value.Kfloat s
  | Value.Kstr, (Tident s | Tstring s) -> Ok (Value.Str s)
  | Value.Kstr, Tnumber s -> Ok (Value.Str s)
  | Value.Kbool, Tident s -> Value.of_string Value.Kbool s
  | _, _ -> Error "literal does not fit the attribute's kind"

(* A clause is:  attr op literal
             |   attr in [lit, lit]   (any bracket/paren mix)
             |   attr in {lit, lit, ...} *)
let parse_clause schema toks =
  match toks with
  | Tident attr :: rest -> (
    match Schema.find schema attr with
    | None -> Error (Printf.sprintf "unknown attribute %S" attr)
    | Some a -> (
      let kind = Domain.kind a.Schema.domain in
      match rest with
      | Top op :: lit :: rest' ->
        let* v = literal_of_token kind lit in
        let* test =
          match op with
          | "=" -> Ok (Predicate.Eq v)
          | "!=" -> Ok (Predicate.Neq v)
          | "<" -> Ok (Predicate.Lt v)
          | "<=" -> Ok (Predicate.Le v)
          | ">" -> Ok (Predicate.Gt v)
          | ">=" -> Ok (Predicate.Ge v)
          | other -> Error (Printf.sprintf "unknown operator %S" other)
        in
        Ok ((attr, test), rest')
      | Tident "in" :: (Tlbrack | Tlparen) :: _ -> (
        match rest with
        | Tident "in" :: open_tok :: lo_tok :: Tcomma :: hi_tok
          :: close_tok :: rest' ->
          let* lo = literal_of_token kind lo_tok in
          let* hi = literal_of_token kind hi_tok in
          let* lo_closed =
            match open_tok with
            | Tlbrack -> Ok true
            | Tlparen -> Ok false
            | _ -> Error "expected '[' or '(' after 'in'"
          in
          let* hi_closed =
            match close_tok with
            | Trbrack -> Ok true
            | Trparen -> Ok false
            | _ -> Error "expected ']' or ')' closing the range"
          in
          Ok ((attr, Predicate.Between { lo; lo_closed; hi; hi_closed }), rest')
        | _ -> Error "malformed range (expected 'in [lo, hi]')")
      | Tident "in" :: Tlbrace :: rest' ->
        let rec elems acc = function
          | Trbrace :: rest'' ->
            if acc = [] then Error "empty set in containment predicate"
            else Ok ((attr, Predicate.One_of (List.rev acc)), rest'')
          | Tcomma :: rest'' -> elems acc rest''
          | lit :: rest'' ->
            let* v = literal_of_token kind lit in
            elems (v :: acc) rest''
          | [] -> Error "unterminated '{' set"
        in
        elems [] rest'
      | _ -> Error (Printf.sprintf "malformed predicate on %S" attr)))
  | _ -> Error "expected an attribute name"

let parse_tests schema src =
  let* toks = lex src in
  if toks = [] then Ok []
  else
    let rec clauses acc toks =
      let* clause, rest = parse_clause schema toks in
      match rest with
      | [] -> Ok (List.rev (clause :: acc))
      | Tand :: rest' -> clauses (clause :: acc) rest'
      | _ -> Error "expected '&&' between predicates"
    in
    clauses [] toks

let parse_profile ?name schema src =
  let* tests = parse_tests schema src in
  Profile.create ?name schema tests

let parse_event ?seq ?time schema src =
  let* toks = lex src in
  let rec bindings acc toks =
    match toks with
    | [] -> Ok (List.rev acc)
    | Tident attr :: Top "=" :: lit :: rest -> (
      match Schema.find schema attr with
      | None -> Error (Printf.sprintf "unknown attribute %S" attr)
      | Some a ->
        let kind = Domain.kind a.Schema.domain in
        let* v = literal_of_token kind lit in
        let rest = match rest with Tcomma :: r | Tand :: r -> r | r -> r in
        bindings ((attr, v) :: acc) rest)
    | _ -> Error "expected 'attr = literal' bindings"
  in
  let* bs = bindings [] toks in
  Event.create ?seq ?time schema bs

let profile_to_string schema p = Format.asprintf "%a" (Profile.pp schema) p

let body_to_string schema p =
  let clauses =
    List.concat_map
      (fun (i, tests) ->
        let attr = (Schema.attribute schema i).Schema.name in
        List.map (fun t -> Format.asprintf "%a" (Predicate.pp attr) t) tests)
      p.Profile.tests
  in
  String.concat " && " clauses

let event_to_string schema e =
  String.concat ", "
    (List.map
       (fun (a, v) -> Printf.sprintf "%s = %s" a (Value.to_string v))
       (Event.to_alist schema e))
