lib/profile/covering.ml: Array Genas_interval List Profile
