lib/profile/covering.mli: Profile Profile_set
