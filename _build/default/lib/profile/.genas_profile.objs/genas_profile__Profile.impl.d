lib/profile/profile.ml: Array Format Genas_interval Genas_model Hashtbl Int List Predicate Printf
