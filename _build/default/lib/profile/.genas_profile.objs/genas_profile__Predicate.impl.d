lib/profile/predicate.ml: Format Genas_interval Genas_model List Printf Result String
