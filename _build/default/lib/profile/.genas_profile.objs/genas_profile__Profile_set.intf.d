lib/profile/profile_set.mli: Genas_interval Genas_model Predicate Profile
