lib/profile/lang.ml: Buffer Format Genas_model List Predicate Printf Profile Result String
