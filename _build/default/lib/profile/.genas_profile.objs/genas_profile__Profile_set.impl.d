lib/profile/profile_set.ml: Genas_model Hashtbl Int List Printf Profile
