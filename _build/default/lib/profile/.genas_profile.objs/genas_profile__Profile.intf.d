lib/profile/profile.mli: Format Genas_interval Genas_model Predicate
