lib/profile/lang.mli: Genas_model Predicate Profile
