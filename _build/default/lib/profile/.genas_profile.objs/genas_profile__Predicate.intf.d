lib/profile/predicate.mli: Format Genas_interval Genas_model
