module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Iset = Genas_interval.Iset

type test =
  | Eq of Value.t
  | Neq of Value.t
  | Lt of Value.t
  | Le of Value.t
  | Gt of Value.t
  | Ge of Value.t
  | Between of {
      lo : Value.t;
      lo_closed : bool;
      hi : Value.t;
      hi_closed : bool;
    }
  | One_of of Value.t list
  | Custom of { name : string; iset : Iset.t }

let coord dom v =
  match Axis.coord dom v with
  | Some c -> Ok c
  | None ->
    Error
      (Printf.sprintf "operand %s is not in domain %s" (Value.to_string v)
         (Format.asprintf "%a" Domain.pp dom))

let ( let* ) = Result.bind

let denote dom test =
  let axis = Axis.of_domain dom in
  let normalize s = if axis.Axis.discrete then Iset.normalize_discrete s else s in
  let* raw =
    match test with
    | Eq v ->
      let* c = coord dom v in
      Ok (Iset.of_interval (Interval.point c))
    | Neq v ->
      let* c = coord dom v in
      Ok (Iset.complement axis (Iset.of_interval (Interval.point c)))
    | Lt v ->
      let* c = coord dom v in
      Ok
        (match Interval.make ~hi_closed:false ~lo:axis.Axis.lo ~hi:c () with
        | Some i -> Iset.of_interval i
        | None -> Iset.empty)
    | Le v ->
      let* c = coord dom v in
      Ok (Iset.of_interval (Interval.make_exn ~lo:axis.Axis.lo ~hi:c ()))
    | Gt v ->
      let* c = coord dom v in
      Ok
        (match Interval.make ~lo_closed:false ~lo:c ~hi:axis.Axis.hi () with
        | Some i -> Iset.of_interval i
        | None -> Iset.empty)
    | Ge v ->
      let* c = coord dom v in
      Ok (Iset.of_interval (Interval.make_exn ~lo:c ~hi:axis.Axis.hi ()))
    | Between { lo; lo_closed; hi; hi_closed } ->
      let* cl = coord dom lo in
      let* ch = coord dom hi in
      (match Interval.make ~lo_closed ~hi_closed ~lo:cl ~hi:ch () with
      | Some i -> Ok (Iset.of_interval i)
      | None -> Error "empty range predicate")
    | One_of vs ->
      if vs = [] then Error "empty value set in containment predicate"
      else
        let rec go acc = function
          | [] -> Ok acc
          | v :: rest ->
            let* c = coord dom v in
            go (Interval.point c :: acc) rest
        in
        let* points = go [] vs in
        Ok (Iset.of_intervals points)
    | Custom { iset; _ } -> Ok (Iset.inter (Iset.full axis) iset)
  in
  Ok (normalize raw)

let holds dom test v =
  match denote dom test with
  | Error msg -> invalid_arg ("Predicate.holds: " ^ msg)
  | Ok iset -> (
    match Axis.coord dom v with
    | None -> false
    | Some c -> Iset.mem iset c)

let equal a b =
  match (a, b) with
  | Eq x, Eq y | Neq x, Neq y | Lt x, Lt y | Le x, Le y | Gt x, Gt y
  | Ge x, Ge y ->
    Value.equal x y
  | Between x, Between y ->
    Value.equal x.lo y.lo && Value.equal x.hi y.hi
    && x.lo_closed = y.lo_closed && x.hi_closed = y.hi_closed
  | One_of x, One_of y ->
    List.length x = List.length y && List.for_all2 Value.equal x y
  | Custom x, Custom y -> String.equal x.name y.name && Iset.equal x.iset y.iset
  | (Eq _ | Neq _ | Lt _ | Le _ | Gt _ | Ge _ | Between _ | One_of _ | Custom _), _
    ->
    false

let pp attr ppf = function
  | Eq v -> Format.fprintf ppf "%s = %a" attr Value.pp v
  | Neq v -> Format.fprintf ppf "%s != %a" attr Value.pp v
  | Lt v -> Format.fprintf ppf "%s < %a" attr Value.pp v
  | Le v -> Format.fprintf ppf "%s <= %a" attr Value.pp v
  | Gt v -> Format.fprintf ppf "%s > %a" attr Value.pp v
  | Ge v -> Format.fprintf ppf "%s >= %a" attr Value.pp v
  | Between { lo; lo_closed; hi; hi_closed } ->
    Format.fprintf ppf "%s in %c%a,%a%c" attr
      (if lo_closed then '[' else '(')
      Value.pp lo Value.pp hi
      (if hi_closed then ']' else ')')
  | One_of vs ->
    Format.fprintf ppf "%s in {%a}" attr
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Value.pp)
      vs
  | Custom { name; _ } -> Format.fprintf ppf "%s %s" attr name
