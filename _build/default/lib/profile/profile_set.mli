(** Profile registries.

    The set [P] of profiles defined in an ENS (§3), with stable integer
    identifiers. All matchers and trees are built from a registry
    snapshot; the adaptive engine rebuilds when the registry's revision
    changes. Removal keeps identifiers stable (ids are never reused). *)

type id = int

type t

val create : Genas_model.Schema.t -> t

val schema : t -> Genas_model.Schema.t

val add : t -> Profile.t -> id
(** Register a profile (already bound to the same schema) and return
    its id. *)

val add_spec :
  t -> ?name:string -> (string * Predicate.test) list -> (id, string) result
(** Convenience: bind and register in one step. *)

val remove : t -> id -> bool
(** [true] if the id was present. *)

val find : t -> id -> Profile.t option

val find_exn : t -> id -> Profile.t

val mem : t -> id -> bool

val size : t -> int
(** [p], the number of live profiles. *)

val revision : t -> int
(** Monotone counter bumped by every [add]/[remove]; lets caches detect
    staleness. *)

val ids : t -> id list
(** Live ids, ascending. *)

val iter : t -> (id -> Profile.t -> unit) -> unit
(** In ascending id order. *)

val fold : t -> init:'a -> f:('a -> id -> Profile.t -> 'a) -> 'a

val denotations : t -> int -> (id * Genas_interval.Iset.t) list
(** Per-attribute denotations of all live profiles that constrain the
    attribute with the given natural index — the input to
    {!Genas_interval.Overlay.build}. *)
