(** Predicates: single-attribute tests inside a profile.

    The paper's services filter on (attribute, value) pairs with value
    and range tests; inequality tests "can be translated to range
    tests" (§3). We realize exactly that translation: every test
    denotes an interval set on the attribute's axis, and all matching
    and tree construction downstream work on denotations only. The
    [Custom] constructor is the runtime-defined operator of the
    generic prototype (§4.2): any interval-set denotation under a
    user-chosen name. *)

type test =
  | Eq of Genas_model.Value.t
  | Neq of Genas_model.Value.t
  | Lt of Genas_model.Value.t
  | Le of Genas_model.Value.t
  | Gt of Genas_model.Value.t
  | Ge of Genas_model.Value.t
  | Between of {
      lo : Genas_model.Value.t;
      lo_closed : bool;
      hi : Genas_model.Value.t;
      hi_closed : bool;
    }
  | One_of of Genas_model.Value.t list  (** set containment *)
  | Custom of { name : string; iset : Genas_interval.Iset.t }

val denote :
  Genas_model.Domain.t -> test -> (Genas_interval.Iset.t, string) result
(** Interval-set denotation of a test on a domain's axis. Fails when
    operand kinds don't match the domain, when an ordered test is
    applied to a value outside the domain's order, or when a [Between]
    is empty. The denotation of tests over discrete domains is
    normalized to inhabited integers. *)

val holds : Genas_model.Domain.t -> test -> Genas_model.Value.t -> bool
(** Direct evaluation, bypassing denotations (used by the naive
    matcher and as a test oracle).

    @raise Invalid_argument if [denote] would fail. *)

val equal : test -> test -> bool

val pp : string -> Format.formatter -> test -> unit
(** [pp attr_name ppf test] prints in the profile-language syntax,
    e.g. ["temperature >= 35"]. *)
