(* Composite-event detection: operator semantics, windows, consumption,
   and stream discipline. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Composite = Genas_ens.Composite

let schema () =
  Schema.create_exn [ ("k", Domain.enum [ "a"; "b"; "c" ]) ]

let prim s k =
  Composite.Prim (Profile.create_exn s [ ("k", Predicate.Eq (Value.Str k)) ])

let ev s ~t k = Event.create_exn ~time:t s [ ("k", Value.Str k) ]

let feed_seq det s spec =
  (* spec: (time, kind) list; returns #occurrences per step. *)
  List.map (fun (t, k) -> List.length (Composite.feed det (ev s ~t k))) spec

let test_prim () =
  let s = schema () in
  let det = Composite.compile_exn s (prim s "a") in
  Alcotest.(check (list int)) "only a fires" [ 1; 0; 1 ]
    (feed_seq det s [ (0.0, "a"); (1.0, "b"); (2.0, "a") ])

let test_seq_order_and_window () =
  let s = schema () in
  let det = Composite.compile_exn s (Composite.Seq (prim s "a", prim s "b", 10.0)) in
  Alcotest.(check (list int)) "a then b" [ 0; 1 ]
    (feed_seq det s [ (0.0, "a"); (5.0, "b") ]);
  Composite.reset det;
  Alcotest.(check (list int)) "b then a does not fire" [ 0; 0 ]
    (feed_seq det s [ (0.0, "b"); (5.0, "a") ]);
  Composite.reset det;
  Alcotest.(check (list int)) "outside window" [ 0; 0 ]
    (feed_seq det s [ (0.0, "a"); (15.0, "b") ]);
  Composite.reset det;
  (* Simultaneous a and b (same event can't be both here, but two
     branches could match the same event via Either; for Seq the a must
     be strictly earlier). *)
  Alcotest.(check (list int)) "a consumed once" [ 0; 1; 0 ]
    (feed_seq det s [ (0.0, "a"); (1.0, "b"); (2.0, "b") ])

let test_seq_constituents () =
  let s = schema () in
  let det = Composite.compile_exn s (Composite.Seq (prim s "a", prim s "b", 10.0)) in
  ignore (Composite.feed det (ev s ~t:1.0 "a"));
  match Composite.feed det (ev s ~t:3.0 "b") with
  | [ occ ] ->
    Alcotest.(check (float 1e-9)) "start" 1.0 occ.Composite.start_time;
    Alcotest.(check (float 1e-9)) "end" 3.0 occ.Composite.end_time;
    Alcotest.(check int) "two constituents" 2 (List.length occ.Composite.events)
  | other -> Alcotest.failf "expected 1 occurrence, got %d" (List.length other)

let test_both_any_order () =
  let s = schema () in
  let expr = Composite.Both (prim s "a", prim s "b", 10.0) in
  let det = Composite.compile_exn s expr in
  Alcotest.(check (list int)) "a then b" [ 0; 1 ]
    (feed_seq det s [ (0.0, "a"); (5.0, "b") ]);
  Composite.reset det;
  Alcotest.(check (list int)) "b then a" [ 0; 1 ]
    (feed_seq det s [ (0.0, "b"); (5.0, "a") ]);
  Composite.reset det;
  Alcotest.(check (list int)) "window expiry" [ 0; 0 ]
    (feed_seq det s [ (0.0, "b"); (50.0, "a") ])

let test_either () =
  let s = schema () in
  let det = Composite.compile_exn s (Composite.Either (prim s "a", prim s "b")) in
  Alcotest.(check (list int)) "both sides fire" [ 1; 1; 0 ]
    (feed_seq det s [ (0.0, "a"); (1.0, "b"); (2.0, "c") ]);
  (* Overlapping alternatives on the same event yield one occurrence
     per matching branch. *)
  let det2 = Composite.compile_exn s (Composite.Either (prim s "a", prim s "a")) in
  Alcotest.(check (list int)) "overlap duplicates" [ 2 ]
    (feed_seq det2 s [ (0.0, "a") ])

let test_without () =
  let s = schema () in
  let det =
    Composite.compile_exn s (Composite.Without (prim s "a", prim s "b", 10.0))
  in
  Alcotest.(check (list int)) "clean a fires" [ 1 ] (feed_seq det s [ (0.0, "a") ]);
  Composite.reset det;
  Alcotest.(check (list int)) "recent b suppresses" [ 0; 0 ]
    (feed_seq det s [ (0.0, "b"); (5.0, "a") ]);
  Composite.reset det;
  Alcotest.(check (list int)) "old b does not" [ 0; 1 ]
    (feed_seq det s [ (0.0, "b"); (20.0, "a") ])

let test_repeat () =
  let s = schema () in
  let det = Composite.compile_exn s (Composite.Repeat (prim s "a", 3, 10.0)) in
  Alcotest.(check (list int)) "fires on the third" [ 0; 0; 1 ]
    (feed_seq det s [ (0.0, "a"); (2.0, "a"); (4.0, "a") ]);
  (* Constituents consumed: three more needed. *)
  Alcotest.(check (list int)) "consumption" [ 0; 0; 1 ]
    (feed_seq det s [ (5.0, "a"); (6.0, "a"); (7.0, "a") ]);
  Composite.reset det;
  Alcotest.(check (list int)) "window slides" [ 0; 0; 0; 1 ]
    (feed_seq det s [ (0.0, "a"); (20.0, "a"); (21.0, "a"); (22.0, "a") ])

let test_nested () =
  let s = schema () in
  (* (a then b) twice within 100. *)
  let det =
    Composite.compile_exn s
      (Composite.Repeat (Composite.Seq (prim s "a", prim s "b", 10.0), 2, 100.0))
  in
  Alcotest.(check (list int)) "nested fires" [ 0; 0; 0; 1 ]
    (feed_seq det s [ (0.0, "a"); (1.0, "b"); (10.0, "a"); (11.0, "b") ])

let test_validation () =
  let s = schema () in
  let err expr =
    match Composite.compile s expr with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected validation error"
  in
  err (Composite.Seq (prim s "a", prim s "b", 0.0));
  err (Composite.Seq (prim s "a", prim s "b", Float.infinity));
  err (Composite.Repeat (prim s "a", 0, 5.0));
  err (Composite.Both (prim s "a", Composite.Repeat (prim s "b", 1, -1.0), 5.0))

let test_time_discipline () =
  let s = schema () in
  let det = Composite.compile_exn s (prim s "a") in
  ignore (Composite.feed det (ev s ~t:10.0 "a"));
  Alcotest.check_raises "regression rejected"
    (Invalid_argument "Composite.feed: events must arrive in time order")
    (fun () -> ignore (Composite.feed det (ev s ~t:5.0 "a")));
  (* Equal timestamps are fine. *)
  ignore (Composite.feed det (ev s ~t:10.0 "a"))

let test_reset () =
  let s = schema () in
  let det = Composite.compile_exn s (Composite.Seq (prim s "a", prim s "b", 10.0)) in
  ignore (Composite.feed det (ev s ~t:0.0 "a"));
  Composite.reset det;
  Alcotest.(check (list int)) "pending cleared" [ 0 ]
    (feed_seq det s [ (1.0, "b") ])

let () =
  Alcotest.run "composite"
    [
      ( "operators",
        [
          Alcotest.test_case "prim" `Quick test_prim;
          Alcotest.test_case "seq" `Quick test_seq_order_and_window;
          Alcotest.test_case "seq constituents" `Quick test_seq_constituents;
          Alcotest.test_case "both" `Quick test_both_any_order;
          Alcotest.test_case "either" `Quick test_either;
          Alcotest.test_case "without" `Quick test_without;
          Alcotest.test_case "repeat" `Quick test_repeat;
          Alcotest.test_case "nested" `Quick test_nested;
        ] );
      ( "discipline",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "time order" `Quick test_time_discipline;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
    ]
