(* Value orders: lookup tables, would-be positions of D0 cells, and the
   two search-cost primitives (Example 5 semantics). *)

module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Iset = Genas_interval.Iset
module Overlay = Genas_interval.Overlay
module Order = Genas_filter.Order

let itv ?(lc = true) ?(hc = true) lo hi =
  Interval.make_exn ~lo_closed:lc ~hi_closed:hc ~lo ~hi ()

let axis = Axis.make ~discrete:false ~lo:(-30.0) ~hi:50.0

(* Example 2's decomposition: [-30,-20] | (-20,30) D0 | [30,35) |
   [35,50]. *)
let overlay () =
  Overlay.build axis
    [
      (0, Iset.of_interval (itv 35.0 50.0));
      (1, Iset.of_interval (itv 30.0 50.0));
      (2, Iset.of_interval (itv (-30.0) (-20.0)));
    ]

let test_natural_positions () =
  let t = Order.compile (overlay ()) Order.Natural_asc in
  Alcotest.(check int) "m" 3 t.Order.m;
  Alcotest.(check (array (float 1e-9))) "positions"
    [| 1.0; 1.5; 2.0; 3.0 |] t.Order.positions;
  Alcotest.(check (array int)) "scan order" [| 0; 2; 3 |] t.Order.scan_order

let test_natural_desc_positions () =
  let t = Order.compile (overlay ()) Order.Natural_desc in
  Alcotest.(check (array (float 1e-9))) "positions"
    [| 3.0; 2.5; 2.0; 1.0 |] t.Order.positions

let test_v1_positions_example2 () =
  (* Pe keys: cell0 0.02, cell1 (D0) 0.17, cell2 0.01, cell3 0.80. *)
  let keys = [| 0.02; 0.17; 0.01; 0.80 |] in
  let t = Order.compile (overlay ()) (Order.By_key_desc keys) in
  (* Ranks: cell3=1, cell0=2, cell2=3; D0 would-be after cell3 only. *)
  Alcotest.(check (array (float 1e-9))) "positions"
    [| 2.0; 1.5; 3.0; 1.0 |] t.Order.positions

let test_key_tie_break_natural () =
  let keys = [| 0.5; 0.0; 0.5; 0.5 |] in
  let t = Order.compile (overlay ()) (Order.By_key_desc keys) in
  (* Equal keys order by cell index: 0 < 2 < 3. *)
  Alcotest.(check (float 1e-9)) "cell0 first" 1.0 t.Order.positions.(0);
  Alcotest.(check (float 1e-9)) "cell2 second" 2.0 t.Order.positions.(2);
  Alcotest.(check (float 1e-9)) "cell3 third" 3.0 t.Order.positions.(3)

let test_key_length_guard () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Order.compile: key array length mismatch") (fun () ->
      ignore (Order.compile (overlay ()) (Order.By_key_desc [| 1.0 |])))

let test_linear_cost () =
  let edges = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (pair int bool)) "first" (1, true)
    (Order.linear_cost ~edge_positions:edges ~target:1.0);
  Alcotest.(check (pair int bool)) "last" (3, true)
    (Order.linear_cost ~edge_positions:edges ~target:3.0);
  Alcotest.(check (pair int bool)) "early stop at 1.5" (2, false)
    (Order.linear_cost ~edge_positions:edges ~target:1.5);
  Alcotest.(check (pair int bool)) "missing below" (1, false)
    (Order.linear_cost ~edge_positions:edges ~target:0.5);
  Alcotest.(check (pair int bool)) "missing above scans all" (3, false)
    (Order.linear_cost ~edge_positions:edges ~target:9.0);
  Alcotest.(check (pair int bool)) "empty node" (0, false)
    (Order.linear_cost ~edge_positions:[||] ~target:1.0)

let test_binary_cost () =
  let edges = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (pair int bool)) "mid in 1 probe" (1, true)
    (Order.binary_cost ~edge_positions:edges ~target:2.0);
  Alcotest.(check (pair int bool)) "side in 2 probes" (2, true)
    (Order.binary_cost ~edge_positions:edges ~target:1.0);
  Alcotest.(check (pair int bool)) "miss at 1.5" (2, false)
    (Order.binary_cost ~edge_positions:edges ~target:1.5);
  let big = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let probes, found = Order.binary_cost ~edge_positions:big ~target:50.5 in
  Alcotest.(check bool) "miss" false found;
  Alcotest.(check bool) "log probes" true (probes <= 7)

(* Linear scan in a subset node: the paper's Example 5 (element absent
   because a greater position is seen). *)
let test_example5 () =
  (* Defined order f,c,a,b,e,d → positions f=1,c=2,a=3,b=4,e=5,d=6.
     Node holds f,c,b,e,d (not a). Searching a (position 3) stops at b
     (position 4) after 3 comparisons. *)
  let node_positions = [| 1.0; 2.0; 4.0; 5.0; 6.0 |] in
  Alcotest.(check (pair int bool)) "stops at b" (3, false)
    (Order.linear_cost ~edge_positions:node_positions ~target:3.0)

(* Property: for any sorted edge array and any target, both primitives
   agree on success, and a successful linear scan costs the element's
   1-based index. *)
let prop_costs_consistent =
  QCheck.Test.make ~name:"linear and binary agree on membership" ~count:500
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 12) (int_bound 50)) (int_bound 60))
    (fun (raw, t) ->
      let edges =
        List.sort_uniq Int.compare raw |> List.map float_of_int |> Array.of_list
      in
      let target = float_of_int t +. 0.0 in
      let lc, lf = Order.linear_cost ~edge_positions:edges ~target in
      let bc, bf = Order.binary_cost ~edge_positions:edges ~target in
      lf = bf
      && lc <= Array.length edges
      && bc <= 8
      && (not lf
         ||
         let idx = ref 0 in
         Array.iteri (fun i p -> if p = target then idx := i + 1) edges;
         lc = !idx))

let () =
  Alcotest.run "order"
    [
      ( "tables",
        [
          Alcotest.test_case "natural ascending" `Quick test_natural_positions;
          Alcotest.test_case "natural descending" `Quick test_natural_desc_positions;
          Alcotest.test_case "V1 (Example 2)" `Quick test_v1_positions_example2;
          Alcotest.test_case "tie-breaking" `Quick test_key_tie_break_natural;
          Alcotest.test_case "guards" `Quick test_key_length_guard;
        ] );
      ( "costs",
        [
          Alcotest.test_case "linear scan" `Quick test_linear_cost;
          Alcotest.test_case "binary search" `Quick test_binary_cost;
          Alcotest.test_case "paper Example 5" `Quick test_example5;
          QCheck_alcotest.to_alcotest prop_costs_consistent;
        ] );
    ]
