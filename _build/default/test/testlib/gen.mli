(** QCheck generators for GENAS structures, shared across test suites.

    All generators produce *valid* structures (in-domain values,
    satisfiable profiles) so properties test semantics rather than
    constructor guards; guard behaviour is tested separately with
    hand-built invalid inputs. *)

val domain : Genas_model.Domain.t QCheck.Gen.t
(** Mixed int / float / enum / bool domains of modest size. *)

val schema : ?max_attrs:int -> unit -> Genas_model.Schema.t QCheck.Gen.t
(** 1 to [max_attrs] (default 4) attributes named ["a0"]…, random
    domains. *)

val value_in : Genas_model.Domain.t -> Genas_model.Value.t QCheck.Gen.t
(** A value of the domain (interior and boundary values both
    likely). *)

val coord_in : Genas_model.Domain.t -> float QCheck.Gen.t
(** Axis coordinate of a domain value. *)

val test_for : Genas_model.Domain.t -> Genas_profile.Predicate.test QCheck.Gen.t
(** A satisfiable predicate over the domain (any operator). *)

val profile :
  ?dontcare:float -> Genas_model.Schema.t -> Genas_profile.Profile.t QCheck.Gen.t
(** A bound profile; each attribute is skipped with probability
    [dontcare] (default 0.3), but at least one attribute is always
    constrained. *)

val profile_set :
  ?p:int -> Genas_model.Schema.t -> Genas_profile.Profile_set.t QCheck.Gen.t
(** [p] profiles (default: 1–20 random). *)

val event : Genas_model.Schema.t -> Genas_model.Event.t QCheck.Gen.t

val events : ?n:int -> Genas_model.Schema.t -> Genas_model.Event.t list QCheck.Gen.t

val scenario :
  ?max_attrs:int -> ?max_p:int -> ?n_events:int -> unit ->
  (Genas_model.Schema.t * Genas_profile.Profile_set.t
  * Genas_model.Event.t list)
  QCheck.Gen.t
(** A full random matching scenario. *)

val interval : lo:float -> hi:float -> Genas_interval.Interval.t QCheck.Gen.t
(** A non-empty interval within [[lo, hi]], point intervals included. *)

val iset : lo:float -> hi:float -> Genas_interval.Iset.t QCheck.Gen.t
(** Union of up to 4 such intervals. *)
