test/testlib/gen.mli: Genas_interval Genas_model Genas_profile QCheck
