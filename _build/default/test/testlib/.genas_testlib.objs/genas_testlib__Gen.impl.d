test/testlib/gen.ml: Array Float Fun Genas_interval Genas_model Genas_profile List Printf QCheck
