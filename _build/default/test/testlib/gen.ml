module G = QCheck.Gen
module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Iset = Genas_interval.Iset
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set

let enum_names = [ "red"; "green"; "blue"; "cyan"; "magenta"; "yellow" ]

let domain =
  G.frequency
    [
      ( 3,
        G.map2
          (fun lo span -> Domain.int_range ~lo ~hi:(lo + span))
          (G.int_range (-50) 50) (G.int_range 0 60) );
      ( 3,
        G.map2
          (fun lo span ->
            Domain.float_range ~lo ~hi:(lo +. Float.max 1.0 span))
          (G.float_range (-50.0) 50.0)
          (G.float_range 1.0 80.0) );
      ( 2,
        G.map
          (fun k -> Domain.enum (List.filteri (fun i _ -> i < k) enum_names))
          (G.int_range 1 6) );
      (1, G.return Domain.bool_dom);
    ]

let schema ?(max_attrs = 4) () =
  let open G in
  int_range 1 max_attrs >>= fun n ->
  list_repeat n domain >|= fun doms ->
  Schema.create_exn (List.mapi (fun i d -> (Printf.sprintf "a%d" i, d)) doms)

let value_in dom =
  let open G in
  match dom with
  | Domain.Int_range { lo; hi } ->
    frequency
      [
        (6, int_range lo hi >|= fun v -> Value.Int v);
        (1, return (Value.Int lo));
        (1, return (Value.Int hi));
      ]
  | Domain.Float_range { lo; hi } ->
    frequency
      [
        (6, float_range lo hi >|= fun v -> Value.Float v);
        (1, return (Value.Float lo));
        (1, return (Value.Float hi));
      ]
  | Domain.Enum vs ->
    int_range 0 (Array.length vs - 1) >|= fun i -> Value.Str vs.(i)
  | Domain.Bool_dom -> bool >|= fun b -> Value.Bool b

let coord_in dom = G.map (fun v -> Axis.coord_exn dom v) (value_in dom)

let ordered_pair dom =
  let open G in
  pair (value_in dom) (value_in dom) >|= fun (a, b) ->
  if Value.compare a b <= 0 then (a, b) else (b, a)

let test_for dom =
  let open G in
  let v = value_in dom in
  frequency
    [
      (3, v >|= fun x -> Predicate.Eq x);
      (1, v >|= fun x -> Predicate.Neq x);
      (1, v >|= fun x -> Predicate.Le x);
      (1, v >|= fun x -> Predicate.Ge x);
      (1, v >|= fun x -> Predicate.Lt x);
      (1, v >|= fun x -> Predicate.Gt x);
      ( 2,
        pair (ordered_pair dom) (pair bool bool)
        >|= fun ((lo, hi), (lo_closed, hi_closed)) ->
        Predicate.Between { lo; lo_closed; hi; hi_closed } );
      ( 1,
        list_size (int_range 1 4) v >|= fun vs -> Predicate.One_of vs );
    ]

(* A satisfiable profile: regenerate on unsatisfiable draws (Lt on the
   domain minimum, empty open ranges, …). Retries are cheap and rare. *)
let profile ?(dontcare = 0.3) schema_v =
  let n = Schema.arity schema_v in
  let open G in
  let attr_tests =
    List.init n (fun i ->
        let a = Schema.attribute schema_v i in
        pair (float_range 0.0 1.0) (test_for a.Schema.domain)
        >|= fun (skip, test) ->
        if skip < dontcare then None else Some (a.Schema.name, test))
  in
  let candidate =
    flatten_l attr_tests >>= fun picks ->
    let tests = List.filter_map Fun.id picks in
    (* Ensure at least one constraint: force attribute 0 if empty. *)
    if tests <> [] then return tests
    else
      let a = Schema.attribute schema_v 0 in
      test_for a.Schema.domain >|= fun t -> [ (a.Schema.name, t) ]
  in
  let rec gen_sat fuel st =
    let tests = candidate st in
    match Profile.create schema_v tests with
    | Ok p -> p
    | Error _ ->
      if fuel = 0 then
        (* Fall back to a guaranteed-satisfiable equality profile. *)
        let a = Schema.attribute schema_v 0 in
        Profile.create_exn schema_v
          [ (a.Schema.name, Predicate.Eq (G.generate1 (value_in a.Schema.domain))) ]
      else gen_sat (fuel - 1) st
  in
  gen_sat 20

let profile_set ?p schema_v =
  let open G in
  (match p with Some p -> return p | None -> int_range 1 20) >>= fun p ->
  list_repeat p (profile schema_v) >|= fun profiles ->
  let pset = Profile_set.create schema_v in
  List.iter (fun pr -> ignore (Profile_set.add pset pr)) profiles;
  pset

let event schema_v =
  let n = Schema.arity schema_v in
  let open G in
  flatten_l
    (List.init n (fun i -> value_in (Schema.attribute schema_v i).Schema.domain))
  >|= fun values -> Event.of_values_exn schema_v (Array.of_list values)

let events ?n schema_v =
  let open G in
  (match n with Some n -> return n | None -> int_range 1 50) >>= fun n ->
  list_repeat n (event schema_v)

let scenario ?(max_attrs = 4) ?(max_p = 20) ?(n_events = 30) () =
  let open G in
  schema ~max_attrs () >>= fun s ->
  int_range 1 max_p >>= fun p ->
  profile_set ~p s >>= fun pset ->
  events ~n:n_events s >|= fun evs -> (s, pset, evs)

let interval ~lo ~hi =
  let open G in
  frequency
    [
      ( 5,
        pair (float_range lo hi) (float_range lo hi) >>= fun (a, b) ->
        let a, b = if a <= b then (a, b) else (b, a) in
        pair bool bool >|= fun (lc, hc) ->
        match Interval.make ~lo_closed:lc ~hi_closed:hc ~lo:a ~hi:b () with
        | Some i -> i
        | None -> Interval.point a );
      (1, float_range lo hi >|= Interval.point);
    ]

let iset ~lo ~hi =
  let open G in
  list_size (int_range 0 4) (interval ~lo ~hi) >|= Iset.of_intervals
