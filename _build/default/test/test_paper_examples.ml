(* Validation against the worked examples of the paper (Hinze &
   Bittner, ICDCSW'02): Example 1's profile tree semantics, Example 2's
   expected operation counts under V1 / natural / binary search, and
   Example 3's attribute selectivities. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Interval = Genas_interval.Interval
module Lang = Genas_profile.Lang
module Profile_set = Genas_profile.Profile_set
module Dist = Genas_dist.Dist
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Ops = Genas_filter.Ops
module Naive = Genas_filter.Naive
module Stats = Genas_core.Stats
module Selectivity = Genas_core.Selectivity
module Cost = Genas_core.Cost
module Reorder = Genas_core.Reorder
module Prng = Genas_prng.Prng

let close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

(* ------------------------------------------------------------------ *)
(* Example 1: the environmental-monitoring toy system.                 *)

let example1_schema () =
  Schema.create_exn
    [
      ("temperature", Domain.float_range ~lo:(-30.0) ~hi:50.0);
      ("humidity", Domain.float_range ~lo:0.0 ~hi:100.0);
      ("radiation", Domain.float_range ~lo:1.0 ~hi:100.0);
    ]

let example1_profiles schema =
  let pset = Profile_set.create schema in
  let add name src =
    match Lang.parse_profile ~name schema src with
    | Ok p -> ignore (Profile_set.add pset p)
    | Error e -> Alcotest.failf "profile %s: %s" name e
  in
  add "P1" "temperature >= 35 && humidity >= 90";
  add "P2" "temperature >= 30 && humidity >= 90";
  add "P3" "temperature >= 30 && humidity >= 90 && radiation in [35,50]";
  add "P4" "temperature in [-30,-20] && humidity <= 5 && radiation in [40,100]";
  add "P5" "temperature >= 30 && humidity >= 80";
  pset

let test_example1_match () =
  let schema = example1_schema () in
  let pset = example1_profiles schema in
  let tree = Tree.build (Decomp.build pset) (Tree.default_config (Decomp.build pset)) in
  let event =
    Event.create_exn schema
      [
        ("temperature", Value.Float 30.0);
        ("humidity", Value.Float 90.0);
        ("radiation", Value.Float 2.0);
      ]
  in
  (* The paper: "the event is matched by the profiles P2 and P5". *)
  Alcotest.(check (list int)) "event (30,90,2)" [ 1; 4 ] (Tree.match_event tree event)

let test_example1_against_naive () =
  let schema = example1_schema () in
  let pset = example1_profiles schema in
  let decomp = Decomp.build pset in
  let tree = Tree.build decomp (Tree.default_config decomp) in
  let naive = Naive.build pset in
  let rng = Prng.create ~seed:42 in
  for _ = 1 to 2000 do
    let event =
      Event.create_exn schema
        [
          ("temperature", Value.Float (Prng.float_in rng ~lo:(-30.0) ~hi:50.0));
          ("humidity", Value.Float (Prng.float_in rng ~lo:0.0 ~hi:100.0));
          ("radiation", Value.Float (Prng.float_in rng ~lo:1.0 ~hi:100.0));
        ]
    in
    Alcotest.(check (list int))
      "tree agrees with naive"
      (Naive.match_event naive event)
      (Tree.match_event tree event)
  done

(* ------------------------------------------------------------------ *)
(* Example 2: expected operations on attribute a1.                     *)

let example2_setup () =
  let schema =
    Schema.create_exn [ ("temperature", Domain.float_range ~lo:(-30.0) ~hi:50.0) ]
  in
  let pset = Profile_set.create schema in
  let add src =
    match Lang.parse_profile schema src with
    | Ok p -> ignore (Profile_set.add pset p)
    | Error e -> Alcotest.fail e
  in
  add "temperature in [-30,-20]";
  add "temperature >= 30";
  add "temperature >= 35";
  let decomp = Decomp.build pset in
  let stats = Stats.create decomp in
  (* Pe: x1=[-30,-20] 2%, x0=(-20,30) 17%, x2=[30,35) 1%, x3=[35,50] 80%. *)
  let axis = decomp.Decomp.axes.(0) in
  let itv ?lc ?hc lo hi = Interval.make_exn ?lo_closed:lc ?hi_closed:hc ~lo ~hi () in
  let dist =
    Dist.of_pieces axis
      [
        (itv (-30.0) (-20.0), 0.02);
        (itv ~lc:false ~hc:false (-20.0) 30.0, 0.17);
        (itv ~hc:false 30.0 35.0, 0.01);
        (itv 35.0 50.0, 0.80);
      ]
  in
  Stats.assume_event_dist stats ~attr:0 dist;
  stats

let eval_with stats value_choice =
  let tree =
    Reorder.build stats { Reorder.attr_choice = Reorder.Attr_natural; value_choice }
  in
  (tree, Cost.evaluate_with_stats tree stats)

let test_example2_event_order () =
  let stats = example2_setup () in
  let _, report = eval_with stats (`Measure Selectivity.V1) in
  (* E(X) = 0.87, R = E + 2 * 0.17 = 1.21. *)
  close "R under V1" 1.21 report.Cost.per_event

let test_example2_binary () =
  let stats = example2_setup () in
  let _, report = eval_with stats `Binary in
  (* E(X) = 1.65, R0 = 2 * 0.17, R = 1.99. *)
  close "R under binary search" 1.99 report.Cost.per_event

let test_example2_natural () =
  let stats = example2_setup () in
  let _, report = eval_with stats (`Measure Selectivity.V_natural_asc) in
  (* E(X) = 1*0.02 + 2*0.01 + 3*0.8 = 2.44; R0 = 2 * 0.17. *)
  close "R under natural order" 2.78 report.Cost.per_event

let test_example2_simulation_agrees () =
  let stats = example2_setup () in
  let tree, report = eval_with stats (`Measure Selectivity.V1) in
  let dist = Stats.event_dist stats ~attr:0 in
  let rng = Prng.create ~seed:7 in
  let ops = Ops.create () in
  let n = 100_000 in
  for _ = 1 to n do
    ignore (Tree.match_coords ~ops tree [| Dist.sample rng dist |])
  done;
  let simulated = Ops.per_event ops in
  if Float.abs (simulated -. report.Cost.per_event) > 0.02 then
    Alcotest.failf "simulation %.4f vs analytic %.4f" simulated
      report.Cost.per_event

(* ------------------------------------------------------------------ *)
(* Example 3: attribute selectivities and reordering.                  *)

let example3_stats () =
  let schema = example1_schema () in
  let pset = example1_profiles schema in
  let decomp = Decomp.build pset in
  Stats.create decomp

let test_example3_a1_selectivities () =
  let stats = example3_stats () in
  (* d1 = 80, d0 = 50 -> 0.625; d2 = 100, d0 = 75 -> 0.75; a3 has
     don't-care profiles -> 0. *)
  close "s_att(a1)" 0.625 (Selectivity.attribute_selectivity stats ~attr:0 Selectivity.A1);
  close "s_att(a2)" 0.75 (Selectivity.attribute_selectivity stats ~attr:1 Selectivity.A1);
  close "s_att(a3)" 0.0 (Selectivity.attribute_selectivity stats ~attr:2 Selectivity.A1)

let test_example3_attr_order () =
  let stats = example3_stats () in
  (* Descending selectivity puts humidity first, then temperature, then
     radiation — the reordering of Example 3. *)
  Alcotest.(check (list int)) "A1 descending order" [ 1; 0; 2 ]
    (Array.to_list (Selectivity.attr_order stats Selectivity.A1 `Descending));
  Alcotest.(check (list int)) "A1 ascending (worst case)" [ 2; 0; 1 ]
    (Array.to_list (Selectivity.attr_order stats Selectivity.A1 `Ascending))

let test_example3_reordered_tree_cheaper () =
  (* With the Example 2/3 event distributions, the A1-reordered tree
     must beat the natural tree on expected operations (the paper
     reports 1.91 vs 3.371 for the match-only part; exact sub-terms of
     their arithmetic are not all recoverable — see EXPERIMENTS.md). *)
  let schema = example1_schema () in
  let pset = example1_profiles schema in
  let decomp = Decomp.build pset in
  let stats = Stats.create decomp in
  let itv ?lc ?hc lo hi = Interval.make_exn ?lo_closed:lc ?hi_closed:hc ~lo ~hi () in
  Stats.assume_event_dist stats ~attr:0
    (Dist.of_pieces decomp.Decomp.axes.(0)
       [
         (itv (-30.0) (-20.0), 0.02);
         (itv ~lc:false ~hc:false (-20.0) 30.0, 0.17);
         (itv ~hc:false 30.0 35.0, 0.01);
         (itv 35.0 50.0, 0.80);
       ]);
  Stats.assume_event_dist stats ~attr:1
    (Dist.of_blocks decomp.Decomp.axes.(1)
       [ (0.0, 30.0, 0.05); (30.0, 80.0, 0.60); (80.0, 90.0, 0.25); (90.0, 100.0, 0.10) ]);
  Stats.assume_event_dist stats ~attr:2
    (Dist.of_blocks decomp.Decomp.axes.(2)
       [ (1.0, 35.0, 0.90); (35.0, 40.0, 0.05); (40.0, 50.0, 0.02); (50.0, 100.0, 0.03) ]);
  let natural =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural;
        value_choice = `Measure Selectivity.V_natural_asc }
  in
  let reordered =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A1, `Descending);
        value_choice = `Measure Selectivity.V_natural_asc }
  in
  let rn = Cost.evaluate_with_stats natural stats in
  let rr = Cost.evaluate_with_stats reordered stats in
  if rr.Cost.per_event >= rn.Cost.per_event then
    Alcotest.failf "reordered %.4f should beat natural %.4f"
      rr.Cost.per_event rn.Cost.per_event;
  (* Exact level-0 expectations. Natural tree tests temperature first:
     E(X1) = 1·0.02 + 2·0.01 + 3·0.80 = 2.44 (the paper's value), and
     the zero-subdomain (-20,30) with mass 0.17 sits at would-be rank 2,
     adding R0 = 0.34. *)
  close ~eps:1e-9 "natural level 0" 2.78 rn.Cost.per_level.(0);
  (* Reordered tree tests humidity first. With the block distribution
     integrated exactly: P([0,5]) = 1/120, P([80,90)) = 0.25,
     P([90,100]) = 0.10, and D0 = (5,80) carries 77/120 at would-be
     rank 2. *)
  close ~eps:1e-9 "reordered level 0"
    ((1.0 /. 120.0) +. (2.0 *. 0.25) +. (3.0 *. 0.10)
    +. (2.0 *. (77.0 /. 120.0)))
    rr.Cost.per_level.(0)

(* Example 4 / Fig. 2: the reordered tree tests humidity at the root
   (the A1/A2-selected attribute), temperature second, radiation last —
   while the original tree of Fig. 1 starts with temperature. *)
let test_example4_tree_shape () =
  let schema = example1_schema () in
  let pset = example1_profiles schema in
  let stats = Genas_core.Stats.create (Decomp.build pset) in
  let natural =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural;
        value_choice = `Measure Selectivity.V1 }
  in
  let reordered =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A1, `Descending);
        value_choice = `Measure Selectivity.V1 }
  in
  Alcotest.(check int) "Fig. 1 root is temperature" 0
    natural.Tree.config.Tree.attr_order.(0);
  Alcotest.(check (list int)) "Fig. 2 order is humidity, temperature, radiation"
    [ 1; 0; 2 ]
    (Array.to_list reordered.Tree.config.Tree.attr_order);
  (* Both trees implement the same match semantics. *)
  let rng = Prng.create ~seed:99 in
  for _ = 1 to 500 do
    let event =
      Event.create_exn schema
        [
          ("temperature", Value.Float (Prng.float_in rng ~lo:(-30.0) ~hi:50.0));
          ("humidity", Value.Float (Prng.float_in rng ~lo:0.0 ~hi:100.0));
          ("radiation", Value.Float (Prng.float_in rng ~lo:1.0 ~hi:100.0));
        ]
    in
    Alcotest.(check (list int)) "semantics preserved"
      (Tree.match_event natural event)
      (Tree.match_event reordered event)
  done

let () =
  Alcotest.run "paper_examples"
    [
      ( "example1",
        [
          Alcotest.test_case "matched profiles" `Quick test_example1_match;
          Alcotest.test_case "agrees with naive oracle" `Quick
            test_example1_against_naive;
        ] );
      ( "example2",
        [
          Alcotest.test_case "V1 event order R=1.21" `Quick test_example2_event_order;
          Alcotest.test_case "binary search R=1.99" `Quick test_example2_binary;
          Alcotest.test_case "natural order R=2.78" `Quick test_example2_natural;
          Alcotest.test_case "simulation agrees with Eq. 2" `Quick
            test_example2_simulation_agrees;
        ] );
      ( "example3",
        [
          Alcotest.test_case "A1 selectivities" `Quick test_example3_a1_selectivities;
          Alcotest.test_case "attribute reordering" `Quick test_example3_attr_order;
          Alcotest.test_case "reordered tree is cheaper" `Quick
            test_example3_reordered_tree_cheaper;
        ] );
      ( "example4",
        [
          Alcotest.test_case "Fig. 2 tree shape" `Quick test_example4_tree_shape;
        ] );
    ]
