(* Subrange decomposition: the (≤2p−1)-cell overlay of §3. *)

module Interval = Genas_interval.Interval
module Iset = Genas_interval.Iset
module Overlay = Genas_interval.Overlay
module Axis = Genas_model.Axis
module Gen = Genas_testlib.Gen

let itv ?(lc = true) ?(hc = true) lo hi =
  Interval.make_exn ~lo_closed:lc ~hi_closed:hc ~lo ~hi ()

let axis_t = Axis.make ~discrete:false ~lo:(-30.0) ~hi:50.0

(* The a1 (temperature) decomposition of the paper's Example 1:
   profiles >=35, >=30, [-30,-20]. *)
let example1_a1 () =
  Overlay.build axis_t
    [
      (0, Iset.of_interval (itv 35.0 50.0));
      (1, Iset.of_interval (itv 30.0 50.0));
      (2, Iset.of_interval (itv (-30.0) (-20.0)));
    ]

let test_example1_cells () =
  let o = example1_a1 () in
  let cells = o.Overlay.cells in
  Alcotest.(check int) "4 cells" 4 (Array.length cells);
  let expect = [ "[-30,-20]"; "(-20,30)"; "[30,35)"; "[35,50]" ] in
  List.iteri
    (fun i s ->
      Alcotest.(check string) (Printf.sprintf "cell %d" i) s
        (Format.asprintf "%a" Interval.pp cells.(i).Overlay.itv))
    expect;
  Alcotest.(check (list int)) "ids of [35,50]" [ 0; 1 ] cells.(3).Overlay.ids;
  Alcotest.(check (list int)) "ids of [30,35)" [ 1 ] cells.(2).Overlay.ids;
  Alcotest.(check (list int)) "D0 empty" [] cells.(1).Overlay.ids

let test_example1_zero_cells () =
  let o = example1_a1 () in
  Alcotest.(check (list int)) "referenced" [ 0; 2; 3 ]
    (Array.to_list (Overlay.referenced o));
  Alcotest.(check (list int)) "zero" [ 1 ] (Array.to_list (Overlay.zero_cells o));
  Alcotest.(check (float 1e-9)) "d0 size" 50.0 (Overlay.d0_size o)

let test_locate () =
  let o = example1_a1 () in
  let cell x =
    match Overlay.locate o x with Some c -> c | None -> Alcotest.fail "locate"
  in
  Alcotest.(check int) "-25" 0 (cell (-25.0));
  Alcotest.(check int) "-20 boundary" 0 (cell (-20.0));
  Alcotest.(check int) "0" 1 (cell 0.0);
  Alcotest.(check int) "30" 2 (cell 30.0);
  Alcotest.(check int) "35" 3 (cell 35.0);
  Alcotest.(check int) "50" 3 (cell 50.0);
  Alcotest.(check (option int)) "outside" None (Overlay.locate o 51.0)

let test_discrete_overlay () =
  let axis = Axis.make ~discrete:true ~lo:0.0 ~hi:9.0 in
  let o =
    Overlay.build axis
      [
        (0, Iset.of_interval (Interval.point 3.0));
        (1, Iset.of_interval (itv 2.0 5.0));
      ]
  in
  (* Expected: [0,1]{}, {2}{1}, {3}{0,1}, [4,5]{1}, [6,9]{} *)
  Alcotest.(check int) "5 cells" 5 (Array.length o.Overlay.cells);
  Alcotest.(check (list int)) "point cell" [ 0; 1 ] o.Overlay.cells.(2).Overlay.ids;
  Alcotest.(check (float 1e-9)) "d0" 6.0 (Overlay.d0_size o);
  Alcotest.(check (option int)) "non-integer coordinate" None
    (Overlay.locate o 2.5)

let test_empty_denotations () =
  let o = Overlay.build axis_t [] in
  Alcotest.(check int) "single D0 cell" 1 (Array.length o.Overlay.cells);
  Alcotest.(check int) "nothing referenced" 0 (Array.length (Overlay.referenced o))

(* Random overlays. *)
let gen_denots =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 0 6)
        (Gen.iset ~lo:(-30.0) ~hi:50.0)
      >|= List.mapi (fun i s -> (i, s)))

let prop_cells_cover_and_disjoint =
  QCheck.Test.make ~name:"cells tile the axis" ~count:300 gen_denots
    (fun denots ->
      let o = Overlay.build axis_t denots in
      let cells = o.Overlay.cells in
      let n = Array.length cells in
      (* Consecutive cells touch; first/last hit the axis bounds. *)
      cells.(0).Overlay.itv.Interval.lo = -30.0
      && cells.(n - 1).Overlay.itv.Interval.hi = 50.0
      && Array.for_all Fun.id
           (Array.init (max 0 (n - 1)) (fun i ->
                let a = cells.(i).Overlay.itv and b = cells.(i + 1).Overlay.itv in
                a.Interval.hi = b.Interval.lo
                && a.Interval.hi_closed <> b.Interval.lo_closed)))

let prop_locate_agrees_with_mem =
  QCheck.Test.make ~name:"locate returns the unique containing cell" ~count:300
    gen_denots
    (fun denots ->
      let o = Overlay.build axis_t denots in
      List.for_all
        (fun x ->
          match Overlay.locate o x with
          | None -> false
          | Some c ->
            Interval.mem o.Overlay.cells.(c).Overlay.itv x
            && Array.for_all Fun.id
                 (Array.mapi
                    (fun i (cell : Overlay.cell) ->
                      i = c || not (Interval.mem cell.Overlay.itv x))
                    o.Overlay.cells))
        (List.init 81 (fun i -> -30.0 +. float_of_int i)))

let prop_ids_agree_with_denotations =
  QCheck.Test.make ~name:"cell ids = denotations containing the cell" ~count:300
    gen_denots
    (fun denots ->
      let o = Overlay.build axis_t denots in
      Array.for_all
        (fun (cell : Overlay.cell) ->
          (* Probe the cell's midpoint (or its point). *)
          let x =
            if Interval.is_point cell.Overlay.itv then cell.Overlay.itv.Interval.lo
            else (cell.Overlay.itv.Interval.lo +. cell.Overlay.itv.Interval.hi) /. 2.0
          in
          if not (Interval.mem cell.Overlay.itv x) then true
          else
            let expected =
              List.filter_map
                (fun (id, s) -> if Iset.mem s x then Some id else None)
                denots
            in
            expected = cell.Overlay.ids)
        o.Overlay.cells)

let prop_referenced_bound =
  QCheck.Test.make ~name:"≤ 2p−1 referenced cells for interval profiles"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 8) (Gen.interval ~lo:(-30.0) ~hi:50.0)
         >|= List.mapi (fun i iv -> (i, Iset.of_interval iv))))
    (fun denots ->
      let o = Overlay.build axis_t denots in
      let p = List.length denots in
      Array.length (Overlay.referenced o) <= (2 * p) - 1)

let () =
  Alcotest.run "overlay"
    [
      ( "example1",
        [
          Alcotest.test_case "cells" `Quick test_example1_cells;
          Alcotest.test_case "zero cells" `Quick test_example1_zero_cells;
          Alcotest.test_case "locate" `Quick test_locate;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "discrete" `Quick test_discrete_overlay;
          Alcotest.test_case "no profiles" `Quick test_empty_denotations;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cells_cover_and_disjoint; prop_locate_agrees_with_mem;
            prop_ids_agree_with_denotations; prop_referenced_bound;
          ] );
    ]
