(* Robustness fuzzing: hostile inputs must produce [Error]s, never
   exceptions; detectors must keep their temporal invariants on
   arbitrary streams. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Lang = Genas_profile.Lang
module Profile = Genas_profile.Profile
module Composite = Genas_ens.Composite
module Gen = Genas_testlib.Gen

let schema () =
  Schema.create_exn
    [
      ("temp", Domain.float_range ~lo:(-30.0) ~hi:50.0);
      ("count", Domain.int_range ~lo:0 ~hi:100);
      ("site", Domain.enum [ "a"; "b" ]);
      ("flag", Domain.bool_dom);
    ]

(* Arbitrary bytes never crash the profile parser. *)
let prop_parser_totality_random =
  QCheck.Test.make ~name:"parse_profile is total on random strings" ~count:1000
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun src ->
      let s = schema () in
      match Lang.parse_profile s src with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) src)

(* Mutated near-valid sources (token soup from the real alphabet) are
   the harder case for recursive-descent parsers. *)
let token_soup =
  QCheck.Gen.(
    list_size (int_range 0 12)
      (oneofl
         [ "temp"; "count"; "site"; "flag"; ">="; "<="; "="; "!="; "<"; ">";
           "&&"; "and"; "in"; "["; "]"; "("; ")"; "{"; "}"; ","; "5"; "-3.5";
           "true"; "a"; "\"b\""; "1e9"; "nan"; "%" ])
    >|= String.concat " ")

let prop_parser_totality_soup =
  QCheck.Test.make ~name:"parse_profile is total on token soup" ~count:2000
    (QCheck.make token_soup)
    (fun src ->
      let s = schema () in
      match Lang.parse_profile s src with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) src)

let prop_event_parser_totality =
  QCheck.Test.make ~name:"parse_event is total" ~count:2000
    (QCheck.make token_soup)
    (fun src ->
      let s = schema () in
      match Lang.parse_event s src with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) src)

let prop_domain_of_string_totality =
  QCheck.Test.make ~name:"Domain.of_string is total" ~count:1000
    QCheck.(string_of_size (QCheck.Gen.int_range 0 40))
    (fun src ->
      match Domain.of_string src with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) src)

(* Random composite expressions over random time-ordered streams:
   occurrences respect start <= end and window bounds. *)
let expr_gen s =
  let open QCheck.Gen in
  let prim =
    Gen.profile ~dontcare:0.5 s >|= fun p -> Composite.Prim p
  in
  let window = float_range 1.0 50.0 in
  fix
    (fun self depth ->
      if depth = 0 then prim
      else
        frequency
          [
            (2, prim);
            ( 1,
              pair (self (depth - 1)) (pair (self (depth - 1)) window)
              >|= fun (a, (b, w)) -> Composite.Seq (a, b, w) );
            ( 1,
              pair (self (depth - 1)) (pair (self (depth - 1)) window)
              >|= fun (a, (b, w)) -> Composite.Both (a, b, w) );
            ( 1,
              pair (self (depth - 1)) (self (depth - 1)) >|= fun (a, b) ->
              Composite.Either (a, b) );
            ( 1,
              pair (self (depth - 1)) (pair (self (depth - 1)) window)
              >|= fun (a, (b, w)) -> Composite.Without (a, b, w) );
            ( 1,
              pair (self (depth - 1)) (pair (int_range 1 3) window)
              >|= fun (a, (k, w)) -> Composite.Repeat (a, k, w) );
          ])
    2

let prop_composite_stream_invariants =
  QCheck.Test.make ~name:"composite occurrences keep temporal invariants"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         Gen.schema ~max_attrs:2 () >>= fun s ->
         expr_gen s >>= fun expr ->
         list_size (int_range 1 40) (pair (Gen.event s) (float_range 0.0 5.0))
         >|= fun timed -> (s, expr, timed)))
    (fun (s, expr, timed) ->
      match Composite.compile s expr with
      | Error _ -> true  (* windows are valid by construction, but fine *)
      | Ok det ->
        let clock = ref 0.0 in
        List.for_all
          (fun (e, dt) ->
            clock := !clock +. dt;
            let e =
              Event.create_exn ~time:!clock s (Event.to_alist s e)
            in
            List.for_all
              (fun (o : Composite.occurrence) ->
                o.Composite.start_time <= o.Composite.end_time
                && o.Composite.end_time = !clock
                && o.Composite.events <> [])
              (Composite.feed det e))
          timed)

let () =
  Alcotest.run "fuzz"
    [
      ( "parsers",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_parser_totality_random; prop_parser_totality_soup;
            prop_event_parser_totality; prop_domain_of_string_totality;
          ] );
      ( "composite",
        List.map QCheck_alcotest.to_alcotest
          [ prop_composite_stream_invariants ] );
    ]
