(* Deterministic PRNG substrate: reproducibility, bounds, and rough
   distributional sanity. *)

module Prng = Genas_prng.Prng

let test_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let distinct = ref 0 in
  for _ = 1 to 100 do
    if Prng.bits64 a <> Prng.bits64 b then incr distinct
  done;
  if !distinct < 95 then Alcotest.failf "streams too similar: %d" !distinct

let test_copy_independent () =
  let a = Prng.create ~seed:5 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb

let test_split_decorrelated () =
  let a = Prng.create ~seed:5 in
  let child = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Prng.bits64 a = Prng.bits64 child then incr same
  done;
  Alcotest.(check int) "no collisions" 0 !same

let test_int_bounds () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng ~bound:17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_int_uniform () =
  let rng = Prng.create ~seed:11 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Prng.int rng ~bound:8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 8 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d far from %d" i c expected)
    counts

let test_int_in () =
  let rng = Prng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let v = Prng.int_in rng ~lo:(-5) ~hi:5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.(check int) "degenerate range" 3 (Prng.int_in rng ~lo:3 ~hi:3)

let test_invalid_args () =
  let rng = Prng.create ~seed:1 in
  Alcotest.check_raises "int bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng ~bound:0));
  Alcotest.check_raises "int_in hi<lo" (Invalid_argument "Prng.int_in: hi < lo")
    (fun () -> ignore (Prng.int_in rng ~lo:2 ~hi:1));
  Alcotest.check_raises "exponential rate"
    (Invalid_argument "Prng.exponential: rate must be positive") (fun () ->
      ignore (Prng.exponential rng ~rate:0.0));
  Alcotest.check_raises "choice empty"
    (Invalid_argument "Prng.choice: empty array") (fun () ->
      ignore (Prng.choice rng [||]))

let test_gaussian_moments () =
  let rng = Prng.create ~seed:17 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian rng ~mu:3.0 ~sigma:2.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  if Float.abs (mean -. 3.0) > 0.05 then Alcotest.failf "mean %.3f" mean;
  if Float.abs (var -. 4.0) > 0.2 then Alcotest.failf "variance %.3f" var

let test_exponential_mean () =
  let rng = Prng.create ~seed:19 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.exponential rng ~rate:2.0 in
    if x < 0.0 then Alcotest.fail "negative exponential";
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.02 then Alcotest.failf "mean %.4f" mean

let test_weighted_index () =
  let rng = Prng.create ~seed:23 in
  let w = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Prng.weighted_index rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
  let share = float_of_int counts.(2) /. float_of_int n in
  if Float.abs (share -. 0.75) > 0.02 then Alcotest.failf "share %.3f" share

let test_shuffle_is_permutation () =
  let rng = Prng.create ~seed:29 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Prng.create ~seed:31 in
  for _ = 1 to 100 do
    let s = Prng.sample_without_replacement rng ~k:10 ~n:30 in
    Alcotest.(check int) "k elements" 10 (Array.length s);
    let sorted = Array.copy s in
    Array.sort Int.compare sorted;
    for i = 1 to 9 do
      if sorted.(i) = sorted.(i - 1) then Alcotest.fail "duplicate draw"
    done;
    Array.iter (fun v -> if v < 0 || v >= 30 then Alcotest.fail "range") s
  done

let prop_float_in_bounds =
  QCheck.Test.make ~name:"float_in stays in [lo,hi)" ~count:500
    QCheck.(pair (int_bound 10_000) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))
    (fun (seed, (a, b)) ->
      let lo = Float.min a b and hi = Float.max a b +. 1.0 in
      let rng = Prng.create ~seed in
      let v = Prng.float_in rng ~lo ~hi in
      v >= lo && v < hi)

let prop_bernoulli_extremes =
  QCheck.Test.make ~name:"bernoulli 0 and 1 are deterministic" ~count:200
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      (not (Prng.bernoulli rng ~p:0.0)) && Prng.bernoulli rng ~p:1.0)

let () =
  Alcotest.run "prng"
    [
      ( "core",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_decorrelated;
        ] );
      ( "draws",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_int_uniform;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "weighted index" `Quick test_weighted_index;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sampling w/o replacement" `Quick
            test_sample_without_replacement;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_float_in_bounds; prop_bernoulli_extremes ] );
    ]
