(* The filter engine facade: matching, staleness refresh, spec changes,
   and operation accounting. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Tree = Genas_filter.Tree
module Ops = Genas_filter.Ops
module Engine = Genas_core.Engine
module Selectivity = Genas_core.Selectivity
module Reorder = Genas_core.Reorder

let schema () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.int_range ~lo:0 ~hi:9) ]

let event s x y = Event.create_exn s [ ("x", Value.Int x); ("y", Value.Int y) ]

let test_basic_matching () =
  let s = schema () in
  let pset = Profile_set.create s in
  let id =
    Result.get_ok
      (Profile_set.add_spec pset [ ("x", Predicate.Ge (Value.Int 5)) ])
  in
  let engine = Engine.create pset in
  Alcotest.(check (list int)) "hit" [ id ] (Engine.match_event engine (event s 7 0));
  Alcotest.(check (list int)) "miss" [] (Engine.match_event engine (event s 2 0))

let test_refresh_on_subscription_change () =
  let s = schema () in
  let pset = Profile_set.create s in
  let engine = Engine.create pset in
  Alcotest.(check (list int)) "empty" [] (Engine.match_event engine (event s 5 5));
  let id = Result.get_ok (Profile_set.add_spec pset [ ("y", Predicate.Le (Value.Int 5)) ]) in
  (* The engine must notice the registry revision change. *)
  Alcotest.(check (list int)) "after add" [ id ]
    (Engine.match_event engine (event s 5 5));
  ignore (Profile_set.remove pset id);
  Alcotest.(check (list int)) "after remove" []
    (Engine.match_event engine (event s 5 5))

let test_ops_accumulate_and_observe () =
  let s = schema () in
  let pset = Profile_set.create s in
  ignore (Result.get_ok (Profile_set.add_spec pset [ ("x", Predicate.Eq (Value.Int 3)) ]));
  let engine = Engine.create pset in
  for i = 0 to 9 do
    ignore (Engine.match_event engine (event s i i))
  done;
  let ops = Engine.ops engine in
  Alcotest.(check int) "events" 10 ops.Ops.events;
  Alcotest.(check bool) "comparisons counted" true (ops.Ops.comparisons > 0);
  Alcotest.(check int) "stats observed" 10
    (Genas_core.Stats.events_seen (Engine.stats engine))

let test_set_spec_rebuilds () =
  let s = schema () in
  let pset = Profile_set.create s in
  ignore (Result.get_ok (Profile_set.add_spec pset [ ("x", Predicate.Ge (Value.Int 2)) ]));
  ignore (Result.get_ok (Profile_set.add_spec pset [ ("y", Predicate.Le (Value.Int 7)) ]));
  let engine = Engine.create pset in
  let before = Engine.tree engine in
  Engine.set_spec engine
    { Reorder.attr_choice = Reorder.Attr_explicit [| 1; 0 |];
      value_choice = `Binary };
  let after = Engine.tree engine in
  Alcotest.(check bool) "tree replaced" true (before != after);
  Alcotest.(check (list int)) "new attr order" [ 1; 0 ]
    (Array.to_list after.Tree.config.Tree.attr_order);
  (* Semantics unchanged. *)
  Alcotest.(check (list int)) "same matches" [ 0; 1 ]
    (Engine.match_event engine (event s 5 5))

let test_rebuild_keeps_observations () =
  let s = schema () in
  let pset = Profile_set.create s in
  ignore (Result.get_ok (Profile_set.add_spec pset [ ("x", Predicate.Ge (Value.Int 5)) ]));
  let engine = Engine.create pset in
  for _ = 1 to 50 do
    ignore (Engine.match_event engine (event s 9 9))
  done;
  Engine.rebuild engine;
  Alcotest.(check int) "history kept across rebuild" 50
    (Genas_core.Stats.events_seen (Engine.stats engine))

let test_auto_and_hashed_specs () =
  let s = schema () in
  let pset = Profile_set.create s in
  ignore (Result.get_ok (Profile_set.add_spec pset [ ("x", Predicate.Ge (Value.Int 3)) ]));
  ignore (Result.get_ok (Profile_set.add_spec pset [ ("y", Predicate.Le (Value.Int 6)) ]));
  List.iter
    (fun value_choice ->
      let engine =
        Engine.create
          ~spec:{ Reorder.attr_choice = Reorder.Attr_a3; value_choice }
          pset
      in
      (* Semantics must be independent of the spec. *)
      Alcotest.(check (list int)) "both match" [ 0; 1 ]
        (Engine.match_event engine (event s 5 5));
      Alcotest.(check (list int)) "one matches" [ 1 ]
        (Engine.match_event engine (event s 1 5)))
    [ `Auto; `Hashed; `Measure Genas_core.Selectivity.V3 ]

let test_report_reflects_tree () =
  let s = schema () in
  let pset = Profile_set.create s in
  ignore (Result.get_ok (Profile_set.add_spec pset [ ("x", Predicate.Eq (Value.Int 0)) ]));
  let engine = Engine.create pset in
  let r = Engine.report engine in
  Alcotest.(check bool) "positive expected cost" true (r.Genas_core.Cost.per_event > 0.0);
  Alcotest.(check bool) "match prob = 0.1 under uniform" true
    (Float.abs (r.Genas_core.Cost.match_prob -. 0.1) < 1e-9)

let () =
  Alcotest.run "engine"
    [
      ( "engine",
        [
          Alcotest.test_case "matching" `Quick test_basic_matching;
          Alcotest.test_case "refresh on registry change" `Quick
            test_refresh_on_subscription_change;
          Alcotest.test_case "ops + observation" `Quick test_ops_accumulate_and_observe;
          Alcotest.test_case "set_spec" `Quick test_set_spec_rebuilds;
          Alcotest.test_case "rebuild keeps history" `Quick
            test_rebuild_keeps_observations;
          Alcotest.test_case "analytic report" `Quick test_report_reflects_tree;
          Alcotest.test_case "auto/hashed specs" `Quick test_auto_and_hashed_specs;
        ] );
    ]
