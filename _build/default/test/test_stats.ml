(* Statistics objects: observation, assumed distributions, profile
   weights, and the zero-subdomain probability. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Dist = Genas_dist.Dist
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Stats = Genas_core.Stats

let close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let setup ?(with_dontcare = false) () =
  let schema =
    Schema.create_exn
      [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.int_range ~lo:0 ~hi:9) ]
  in
  let pset = Profile_set.create schema in
  ignore
    (Profile_set.add pset
       (Profile.create_exn schema
          ([ ("x", Predicate.Le (Value.Int 4)) ]
          @ if with_dontcare then [] else [ ("y", Predicate.Eq (Value.Int 7)) ])));
  ignore
    (Profile_set.add pset
       (Profile.create_exn schema
          [ ("x", Predicate.Eq (Value.Int 2)); ("y", Predicate.Ge (Value.Int 5)) ]));
  (schema, Stats.create (Decomp.build pset))

let test_default_uniform () =
  let _, stats = setup () in
  let d = Stats.event_dist stats ~attr:0 in
  close "uniform point" 0.1 (Dist.prob_interval d (Interval.point 3.0))

let test_observation_estimates () =
  let schema, stats = setup () in
  for _ = 1 to 100 do
    Stats.observe_event stats
      (Event.create_exn schema [ ("x", Value.Int 2); ("y", Value.Int 7) ])
  done;
  Alcotest.(check int) "seen" 100 (Stats.events_seen stats);
  let d = Stats.event_dist stats ~attr:0 in
  Alcotest.(check bool) "mass near 2" true
    (Dist.prob_interval d (Interval.point 2.0) > 0.9)

let test_assumed_takes_precedence () =
  let schema, stats = setup () in
  let axis = (Stats.decomp stats).Decomp.axes.(0) in
  for _ = 1 to 50 do
    Stats.observe_event stats
      (Event.create_exn schema [ ("x", Value.Int 9); ("y", Value.Int 0) ])
  done;
  Stats.assume_event_dist stats ~attr:0 (Dist.of_atoms axis [ (1.0, 1.0) ]);
  let d = Stats.event_dist stats ~attr:0 in
  close "assumed atom" 1.0 (Dist.prob_interval d (Interval.point 1.0));
  Stats.clear_assumed stats ~attr:0;
  let d' = Stats.event_dist stats ~attr:0 in
  Alcotest.(check bool) "observed back in force" true
    (Dist.prob_interval d' (Interval.point 9.0) > 0.5)

let test_assume_axis_guard () =
  let _, stats = setup () in
  let wrong = Axis.make ~discrete:false ~lo:0.0 ~hi:1.0 in
  Alcotest.check_raises "axis mismatch"
    (Invalid_argument "Stats.assume_event_dist: axis mismatch") (fun () ->
      Stats.assume_event_dist stats ~attr:0 (Dist.uniform wrong))

let test_profile_weights () =
  let _, stats = setup () in
  (* x cells: {2} referenced by both (P0 via <=4, P1 via =2), [0,1] and
     [3,4] by P0 only, [5,9] D0. *)
  let w = Stats.profile_cell_weights stats ~attr:0 in
  let decomp = Stats.decomp stats in
  let cells = decomp.Decomp.overlays.(0).Genas_interval.Overlay.cells in
  Array.iteri
    (fun i (c : Genas_interval.Overlay.cell) ->
      let expected = float_of_int (List.length c.Genas_interval.Overlay.ids) /. 2.0 in
      close (Printf.sprintf "cell %d" i) expected w.(i))
    cells

let test_profile_weight_override () =
  let _, stats = setup () in
  let ncells =
    Array.length (Stats.decomp stats).Decomp.overlays.(0).Genas_interval.Overlay.cells
  in
  let forced = Array.make ncells 0.25 in
  Stats.assume_profile_weights stats ~attr:0 forced;
  Alcotest.(check (array (float 1e-9))) "override" forced
    (Stats.profile_cell_weights stats ~attr:0);
  Alcotest.check_raises "length guard"
    (Invalid_argument "Stats.assume_profile_weights: length mismatch") (fun () ->
      Stats.assume_profile_weights stats ~attr:0 [| 1.0 |])

let test_d0_event_prob () =
  let _, stats = setup () in
  (* x: referenced [0,4]; D0 [5,9] => uniform mass 0.5. *)
  close "x D0" 0.5 (Stats.d0_event_prob stats ~attr:0);
  (* With a don't-care profile on y the semantic D0 is empty. *)
  let _, stats_dc = setup ~with_dontcare:true () in
  close "y D0 zero with don't-care" 0.0 (Stats.d0_event_prob stats_dc ~attr:1)

let test_priorities_weight_pp () =
  let _, stats = setup () in
  (* Profiles 0 and 1; give profile 1 weight 3. The cell {2} (referenced
     by both) gets (1+3)/4; cells referenced by 0 only get 1/4. *)
  Stats.set_priority stats ~id:1 3.0;
  Alcotest.(check (float 1e-9)) "priority read back" 3.0 (Stats.priority stats ~id:1);
  let w = Stats.profile_cell_weights stats ~attr:0 in
  let decomp = Stats.decomp stats in
  let cells = decomp.Decomp.overlays.(0).Genas_interval.Overlay.cells in
  Array.iteri
    (fun i (c : Genas_interval.Overlay.cell) ->
      let expected =
        List.fold_left
          (fun acc id -> acc +. (if id = 1 then 3.0 else 1.0))
          0.0 c.Genas_interval.Overlay.ids
        /. 4.0
      in
      close (Printf.sprintf "cell %d" i) expected w.(i))
    cells;
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Stats.set_priority: negative priority") (fun () ->
      Stats.set_priority stats ~id:0 (-1.0))

let test_reset () =
  let schema, stats = setup () in
  Stats.observe_event stats
    (Event.create_exn schema [ ("x", Value.Int 1); ("y", Value.Int 1) ]);
  Stats.reset_observations stats;
  Alcotest.(check int) "zeroed" 0 (Stats.events_seen stats)

let () =
  Alcotest.run "stats"
    [
      ( "event distributions",
        [
          Alcotest.test_case "defaults to uniform" `Quick test_default_uniform;
          Alcotest.test_case "observation" `Quick test_observation_estimates;
          Alcotest.test_case "assumed precedence" `Quick test_assumed_takes_precedence;
          Alcotest.test_case "axis guard" `Quick test_assume_axis_guard;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "profile distributions",
        [
          Alcotest.test_case "reference weights" `Quick test_profile_weights;
          Alcotest.test_case "override" `Quick test_profile_weight_override;
          Alcotest.test_case "priorities" `Quick test_priorities_weight_pp;
          Alcotest.test_case "D0 probability" `Quick test_d0_event_prob;
        ] );
    ]
