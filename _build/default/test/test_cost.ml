(* The analytic cost model: agreement with simulation, internal
   consistency, and the per-profile decomposition. *)

module Prng = Genas_prng.Prng
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Dist = Genas_dist.Dist
module Shape = Genas_dist.Shape
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Order = Genas_filter.Order
module Ops = Genas_filter.Ops
module Stats = Genas_core.Stats
module Cost = Genas_core.Cost
module Selectivity = Genas_core.Selectivity
module Reorder = Genas_core.Reorder
module Gen = Genas_testlib.Gen
module Workload = Genas_expt.Workload
module Simulate = Genas_expt.Simulate

let close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

(* A deterministic random scenario on the normalized schema, with known
   event distributions. *)
let scenario ~seed ~attrs ~p ~dontcare =
  let schema = Workload.normalized_schema ~attrs ~points:50 () in
  let axes =
    Array.init attrs (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let rng = Prng.create ~seed in
  let pset =
    Workload.gen_profiles rng schema
      {
        Workload.p;
        dontcare = Array.make attrs dontcare;
        value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
        range_width = (if seed mod 2 = 0 then Some 0.15 else None);
      }
  in
  let stats = Stats.create (Decomp.build pset) in
  Array.iteri
    (fun i ax ->
      Stats.assume_event_dist stats ~attr:i
        (if i mod 2 = 0 then Shape.gauss () ax else Dist.uniform ax))
    axes;
  stats

let strategies =
  [
    `Measure Selectivity.V_natural_asc;
    `Measure Selectivity.V1;
    `Measure Selectivity.V2;
    `Measure Selectivity.V3;
    `Binary;
  ]

let test_analytic_matches_simulation () =
  List.iteri
    (fun i value_choice ->
      let stats = scenario ~seed:(100 + i) ~attrs:2 ~p:12 ~dontcare:0.25 in
      let tree =
        Reorder.build stats { Reorder.attr_choice = Reorder.Attr_natural; value_choice }
      in
      let report = Cost.evaluate_with_stats tree stats in
      let dists =
        Array.init 2 (fun attr -> Stats.event_dist stats ~attr)
      in
      let rng = Prng.create ~seed:(900 + i) in
      let sim = Simulate.run_fixed rng tree dists ~events:60_000 in
      let rel =
        Float.abs (sim.Simulate.per_event -. report.Cost.per_event)
        /. Float.max 1.0 report.Cost.per_event
      in
      if rel > 0.03 then
        Alcotest.failf "strategy %d: simulated %.4f vs analytic %.4f" i
          sim.Simulate.per_event report.Cost.per_event;
      let matches_rel =
        Float.abs (sim.Simulate.match_rate -. report.Cost.expected_matches)
        /. Float.max 0.05 report.Cost.expected_matches
      in
      if matches_rel > 0.10 then
        Alcotest.failf "strategy %d: match rate %.4f vs %.4f" i
          sim.Simulate.match_rate report.Cost.expected_matches)
    strategies

let test_per_level_sums_to_per_event () =
  let stats = scenario ~seed:7 ~attrs:3 ~p:10 ~dontcare:0.3 in
  let tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural;
        value_choice = `Measure Selectivity.V1 }
  in
  let r = Cost.evaluate_with_stats tree stats in
  close ~eps:1e-6 "levels sum"
    r.Cost.per_event
    (Array.fold_left ( +. ) 0.0 r.Cost.per_level)

let test_per_profile_consistency () =
  let stats = scenario ~seed:8 ~attrs:2 ~p:8 ~dontcare:0.2 in
  let tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural;
        value_choice = `Measure Selectivity.V3 }
  in
  let cell_probs =
    Array.init 2 (fun attr -> Stats.event_cell_probs stats ~attr)
  in
  let r = Cost.evaluate tree ~cell_probs in
  let per = Cost.per_profile tree ~cell_probs in
  (* Sum of per-profile match probabilities = expected matched count. *)
  let total = List.fold_left (fun a p -> a +. p.Cost.match_prob_p) 0.0 per in
  close ~eps:1e-6 "sum of match probs" r.Cost.expected_matches total;
  (* Weighted per-profile joint = aggregate joint. *)
  let joint =
    List.fold_left
      (fun a p ->
        if p.Cost.match_prob_p > 0.0 then
          a +. (p.Cost.match_prob_p *. p.Cost.ops_given_match)
        else a)
      0.0 per
  in
  close ~eps:1e-6 "joint decomposition" r.Cost.ops_times_matches joint

let test_match_prob_bounds () =
  let stats = scenario ~seed:9 ~attrs:3 ~p:15 ~dontcare:0.4 in
  let tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary }
  in
  let r = Cost.evaluate_with_stats tree stats in
  Alcotest.(check bool) "0 <= p <= 1" true
    (r.Cost.match_prob >= 0.0 && r.Cost.match_prob <= 1.0 +. 1e-9);
  Alcotest.(check bool) "matches >= match_prob" true
    (r.Cost.expected_matches +. 1e-9 >= r.Cost.match_prob)

let test_joint_evaluator_matches_simulation () =
  let stats = scenario ~seed:21 ~attrs:2 ~p:10 ~dontcare:0.2 in
  let decomp = Stats.decomp stats in
  let axes = decomp.Genas_filter.Decomp.axes in
  let joint =
    Genas_dist.Joint.mixture
      [
        (0.4, [| Shape.peak ~at:0.2 ~mass:0.9 ~width:0.2 axes.(0);
                 Shape.peak ~at:0.8 ~mass:0.9 ~width:0.2 axes.(1) |]);
        (0.6, [| Shape.peak ~at:0.8 ~mass:0.9 ~width:0.2 axes.(0);
                 Shape.peak ~at:0.2 ~mass:0.9 ~width:0.2 axes.(1) |]);
      ]
  in
  let tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural;
        value_choice = `Measure Selectivity.V1 }
  in
  let analytic = Cost.evaluate_joint tree joint in
  let sim =
    Genas_expt.Simulate.run_joint (Prng.create ~seed:22) tree joint
      ~events:80_000
  in
  let rel =
    Float.abs (sim.Genas_expt.Simulate.per_event -. analytic.Cost.per_event)
    /. Float.max 1.0 analytic.Cost.per_event
  in
  if rel > 0.03 then
    Alcotest.failf "joint: simulated %.4f vs analytic %.4f"
      sim.Genas_expt.Simulate.per_event analytic.Cost.per_event;
  (* Per-level sums to per-event in the joint evaluator too. *)
  close ~eps:1e-6 "joint levels sum" analytic.Cost.per_event
    (Array.fold_left ( +. ) 0.0 analytic.Cost.per_level)

let test_joint_independent_equals_evaluate () =
  (* A single-component joint must agree exactly with the independent
     evaluator. *)
  let stats = scenario ~seed:23 ~attrs:3 ~p:8 ~dontcare:0.3 in
  let tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary }
  in
  let dists = Array.init 3 (fun attr -> Stats.event_dist stats ~attr) in
  let joint = Genas_dist.Joint.independent dists in
  let a = Cost.evaluate_with_stats tree stats in
  let b = Cost.evaluate_joint tree joint in
  close ~eps:1e-9 "per_event equal" a.Cost.per_event b.Cost.per_event;
  close ~eps:1e-9 "matches equal" a.Cost.expected_matches b.Cost.expected_matches;
  close ~eps:1e-9 "joint moment equal" a.Cost.ops_times_matches b.Cost.ops_times_matches

(* Exact cross-check: on a small discrete schema, enumerate EVERY
   possible event, run the real matcher, and compare the weighted
   averages with the analytic evaluator — no sampling error at all. *)
let test_exhaustive_enumeration_agrees () =
  let points = 7 in
  List.iter
    (fun (seed, value_choice) ->
      let schema = Workload.normalized_schema ~attrs:2 ~points () in
      let rng = Prng.create ~seed in
      let axes =
        Array.init 2 (fun i ->
            Genas_model.Axis.of_domain
              (Schema.attribute schema i).Schema.domain)
      in
      let pset =
        Workload.gen_profiles rng schema
          {
            Workload.p = 6;
            dontcare = [| 0.3; 0.3 |];
            value_dists = Array.map Dist.uniform axes;
            range_width = (if seed mod 2 = 0 then Some 0.3 else None);
          }
      in
      let stats = Stats.create (Decomp.build pset) in
      (* Non-uniform event weights to exercise the expectation. *)
      let weights =
        Array.init points (fun i -> float_of_int (1 + (i * seed mod 5)))
      in
      let wsum = Array.fold_left ( +. ) 0.0 weights in
      Array.iteri
        (fun attr ax ->
          ignore attr;
          Stats.assume_event_dist stats ~attr
            (Dist.of_atoms ax
               (List.init points (fun i -> (float_of_int i, weights.(i))))))
        axes;
      let tree =
        Reorder.build stats { Reorder.attr_choice = Reorder.Attr_natural; value_choice }
      in
      let report = Cost.evaluate_with_stats tree stats in
      (* Enumerate the full event space. *)
      let total_ops = ref 0.0 and total_matches = ref 0.0 in
      let total_joint = ref 0.0 in
      for x = 0 to points - 1 do
        for y = 0 to points - 1 do
          let p = weights.(x) /. wsum *. (weights.(y) /. wsum) in
          let ops = Ops.create () in
          let matched =
            Tree.match_coords ~ops tree [| float_of_int x; float_of_int y |]
          in
          let c = float_of_int ops.Ops.comparisons in
          let m = float_of_int (List.length matched) in
          total_ops := !total_ops +. (p *. c);
          total_matches := !total_matches +. (p *. m);
          total_joint := !total_joint +. (p *. c *. m)
        done
      done;
      close ~eps:1e-9
        (Printf.sprintf "per_event (seed %d)" seed)
        !total_ops report.Cost.per_event;
      close ~eps:1e-9
        (Printf.sprintf "expected_matches (seed %d)" seed)
        !total_matches report.Cost.expected_matches;
      close ~eps:1e-9
        (Printf.sprintf "ops×matches (seed %d)" seed)
        !total_joint report.Cost.ops_times_matches)
    [
      (1, `Measure Selectivity.V_natural_asc);
      (2, `Measure Selectivity.V1);
      (3, `Measure Selectivity.V2);
      (4, `Binary);
      (5, `Measure Selectivity.V3);
      (6, `Hashed);
    ]

let test_empty_tree_report () =
  let schema = Workload.normalized_schema ~attrs:2 ~points:10 () in
  let pset = Genas_profile.Profile_set.create schema in
  let decomp = Decomp.build pset in
  let tree = Tree.build decomp (Tree.default_config decomp) in
  let cell_probs =
    Array.init 2 (fun attr ->
        Dist.cell_probs
          (Dist.uniform decomp.Decomp.axes.(attr))
          decomp.Decomp.overlays.(attr))
  in
  let r = Cost.evaluate tree ~cell_probs in
  close "zero cost" 0.0 r.Cost.per_event;
  close "zero matches" 0.0 r.Cost.expected_matches

let test_dimension_guards () =
  let stats = scenario ~seed:10 ~attrs:2 ~p:5 ~dontcare:0.2 in
  let tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary }
  in
  Alcotest.check_raises "arity" (Invalid_argument "Cost: cell_probs arity mismatch")
    (fun () -> ignore (Cost.evaluate tree ~cell_probs:[| [| 1.0 |] |]))

(* Property: binary-search cost per level is bounded by ceil(log2) of
   the attribute's referenced cell count (+1 for safety on gaps). *)
let prop_binary_bounded =
  QCheck.Test.make ~name:"binary per-level cost ≤ log bound" ~count:30
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:1 ()))
    (fun (s, pset, _) ->
      let decomp = Decomp.build pset in
      let n = Schema.arity s in
      let tree =
        Tree.build decomp
          {
            Tree.attr_order = Array.init n Fun.id;
            strategies = Array.make n Order.Binary;
          }
      in
      let cell_probs =
        Array.init n (fun attr ->
            Dist.cell_probs
              (Dist.uniform decomp.Decomp.axes.(attr))
              decomp.Decomp.overlays.(attr))
      in
      let r = Cost.evaluate tree ~cell_probs in
      let ok = ref true in
      Array.iteri
        (fun level cost ->
          let attr = tree.Tree.config.Tree.attr_order.(level) in
          let m = Decomp.referenced_count decomp ~attr in
          let bound = ceil (log (float_of_int (max 2 m)) /. log 2.0) +. 1.0 in
          if cost > bound then ok := false)
        r.Cost.per_level;
      !ok)

let () =
  Alcotest.run "cost"
    [
      ( "agreement",
        [
          Alcotest.test_case "analytic = simulated (all strategies)" `Slow
            test_analytic_matches_simulation;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "per-level sum" `Quick test_per_level_sums_to_per_event;
          Alcotest.test_case "per-profile decomposition" `Quick
            test_per_profile_consistency;
          Alcotest.test_case "probability bounds" `Quick test_match_prob_bounds;
          Alcotest.test_case "joint = simulated" `Slow
            test_joint_evaluator_matches_simulation;
          Alcotest.test_case "joint degenerates to independent" `Quick
            test_joint_independent_equals_evaluate;
          Alcotest.test_case "exhaustive enumeration (exact)" `Quick
            test_exhaustive_enumeration_agrees;
          Alcotest.test_case "empty tree" `Quick test_empty_tree_report;
          Alcotest.test_case "dimension guards" `Quick test_dimension_guards;
          QCheck_alcotest.to_alcotest prop_binary_bounded;
        ] );
    ]
