test/test_reorder.ml: Alcotest Array Genas_core Genas_dist Genas_expt Genas_filter Genas_model Genas_prng List Printf String
