test/test_paper_examples.ml: Alcotest Array Float Genas_core Genas_dist Genas_filter Genas_interval Genas_model Genas_prng Genas_profile
