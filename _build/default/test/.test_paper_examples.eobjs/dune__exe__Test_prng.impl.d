test/test_prng.ml: Alcotest Array Float Fun Genas_prng Int List QCheck QCheck_alcotest
