test/test_lang.ml: Alcotest Genas_model Genas_prng Genas_profile Genas_testlib List QCheck QCheck_alcotest String
