test/test_matchers.ml: Alcotest Float Genas_filter Genas_model Genas_profile Genas_testlib List QCheck QCheck_alcotest
