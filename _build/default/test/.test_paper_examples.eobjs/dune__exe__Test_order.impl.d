test/test_order.ml: Alcotest Array Genas_filter Genas_interval Genas_model Int List QCheck QCheck_alcotest
