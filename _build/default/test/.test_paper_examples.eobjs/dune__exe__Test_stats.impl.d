test/test_stats.ml: Alcotest Array Float Genas_core Genas_dist Genas_filter Genas_interval Genas_model Genas_profile List Printf
