test/test_interval.ml: Alcotest Float Genas_interval Genas_model Genas_testlib List QCheck QCheck_alcotest
