test/test_router.ml: Alcotest Genas_ens Genas_model Genas_prng Genas_profile Genas_testlib Hashtbl List Option Printf QCheck QCheck_alcotest
