test/test_profile.ml: Alcotest Genas_filter Genas_interval Genas_model Genas_profile Genas_testlib List QCheck QCheck_alcotest
