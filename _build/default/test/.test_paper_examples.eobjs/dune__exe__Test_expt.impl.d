test/test_expt.ml: Alcotest Array Format Genas_dist Genas_expt Genas_filter Genas_interval Genas_model Genas_prng Genas_profile List Option Result String
