test/test_matchers.mli:
