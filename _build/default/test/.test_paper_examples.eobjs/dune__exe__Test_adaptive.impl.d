test/test_adaptive.ml: Alcotest Genas_core Genas_model Genas_prng Genas_profile List Result
