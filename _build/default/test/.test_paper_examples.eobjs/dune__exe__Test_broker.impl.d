test/test_broker.ml: Alcotest Genas_ens Genas_model Genas_profile List Result
