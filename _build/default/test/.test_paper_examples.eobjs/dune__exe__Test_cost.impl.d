test/test_cost.ml: Alcotest Array Float Fun Genas_core Genas_dist Genas_expt Genas_filter Genas_model Genas_prng Genas_profile Genas_testlib List Printf QCheck QCheck_alcotest
