test/test_composite.ml: Alcotest Float Genas_ens Genas_model Genas_profile List
