test/test_selectivity.ml: Alcotest Array Float Genas_core Genas_dist Genas_filter Genas_interval Genas_model Genas_profile
