test/test_quench.mli:
