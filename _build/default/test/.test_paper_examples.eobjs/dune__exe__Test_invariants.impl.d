test/test_invariants.ml: Alcotest Array Float Fun Genas_ens Genas_filter Genas_interval Genas_model Genas_profile Genas_testlib List Option QCheck QCheck_alcotest
