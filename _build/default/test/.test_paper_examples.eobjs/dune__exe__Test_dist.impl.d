test/test_dist.ml: Alcotest Array Float Genas_dist Genas_interval Genas_model Genas_prng List
