test/test_explain.ml: Alcotest Format Genas_core Genas_filter Genas_model Genas_profile Genas_testlib List QCheck QCheck_alcotest String
