test/test_service.ml: Alcotest Filename Genas_ens Genas_filter Genas_model Genas_profile Genas_testlib List Out_channel Printf QCheck String
