test/test_edges.ml: Alcotest Array Format Genas_dist Genas_ens Genas_expt Genas_filter Genas_interval Genas_model Genas_prng Genas_profile Genas_testlib List Option QCheck QCheck_alcotest String
