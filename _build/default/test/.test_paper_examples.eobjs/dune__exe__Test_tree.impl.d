test/test_tree.ml: Alcotest Array Format Fun Genas_dist Genas_expt Genas_filter Genas_interval Genas_model Genas_prng Genas_profile Genas_testlib List Printf QCheck QCheck_alcotest String
