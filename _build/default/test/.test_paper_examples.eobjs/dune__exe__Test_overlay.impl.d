test/test_overlay.ml: Alcotest Array Format Fun Genas_interval Genas_model Genas_testlib List Printf QCheck QCheck_alcotest
