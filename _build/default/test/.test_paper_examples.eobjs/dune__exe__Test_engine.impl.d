test/test_engine.ml: Alcotest Array Float Genas_core Genas_filter Genas_model Genas_profile List Result
