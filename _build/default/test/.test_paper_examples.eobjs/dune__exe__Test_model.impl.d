test/test_model.ml: Alcotest Float Format Genas_model Genas_testlib Option QCheck QCheck_alcotest
