test/test_fuzz.ml: Alcotest Genas_ens Genas_model Genas_profile Genas_testlib List Printexc QCheck QCheck_alcotest String
