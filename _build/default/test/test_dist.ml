(* Distribution toolkit: exact probabilities, quantization, sampling,
   estimation, and the shape catalog. *)

module Prng = Genas_prng.Prng
module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Iset = Genas_interval.Iset
module Overlay = Genas_interval.Overlay
module Dist = Genas_dist.Dist
module Shape = Genas_dist.Shape
module Catalog = Genas_dist.Catalog
module Estimator = Genas_dist.Estimator

let cont = Axis.make ~discrete:false ~lo:0.0 ~hi:100.0

let disc = Axis.make ~discrete:true ~lo:0.0 ~hi:99.0

let itv ?(lc = true) ?(hc = true) lo hi =
  Interval.make_exn ~lo_closed:lc ~hi_closed:hc ~lo ~hi ()

let close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let test_uniform () =
  let d = Dist.uniform cont in
  close "half" 0.5 (Dist.prob_interval d (itv 0.0 50.0));
  close "tenth" 0.1 (Dist.prob_interval d (itv 10.0 20.0));
  close "all" 1.0 (Dist.prob_interval d (itv 0.0 100.0));
  Alcotest.(check bool) "normalized" true (Dist.is_normalized d)

let test_uniform_discrete () =
  let d = Dist.uniform disc in
  close "one point" 0.01 (Dist.prob_interval d (Interval.point 42.0));
  close "ten points" 0.10 (Dist.prob_interval d (itv 0.0 9.0));
  (* Fractional sub-range of a discrete axis holds no mass between
     integers. *)
  close "empty gap" 0.0 (Dist.prob_interval d (itv ~lc:false ~hc:false 5.0 6.0))

let test_atoms () =
  let d = Dist.of_atoms disc [ (1.0, 3.0); (5.0, 1.0) ] in
  close "atom 1" 0.75 (Dist.prob_interval d (Interval.point 1.0));
  close "atom 5" 0.25 (Dist.prob_interval d (Interval.point 5.0));
  close "elsewhere" 0.0 (Dist.prob_interval d (itv 6.0 99.0));
  Alcotest.check_raises "outside axis"
    (Invalid_argument "Dist.of_atoms: coordinate outside axis") (fun () ->
      ignore (Dist.of_atoms disc [ (500.0, 1.0) ]))

let test_pieces_and_blocks () =
  let d =
    Dist.of_blocks cont [ (0.0, 30.0, 0.05); (30.0, 80.0, 0.60); (80.0, 100.0, 0.35) ]
  in
  close "first block" 0.05 (Dist.prob_interval d (itv ~hc:false 0.0 30.0));
  close "partial" 0.30 (Dist.prob_interval d (itv ~hc:false 30.0 55.0));
  Alcotest.(check bool) "normalized" true (Dist.is_normalized d);
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Dist.of_pieces: overlapping pieces") (fun () ->
      ignore (Dist.of_pieces cont [ (itv 0.0 10.0, 1.0); (itv 5.0 20.0, 1.0) ]))

let test_of_density () =
  (* Triangle density on [0,100]: P([0,50]) = 0.25. *)
  let d = Dist.of_density ~bins:512 cont (fun x -> x) in
  close ~eps:5e-3 "triangle left" 0.25 (Dist.prob_interval d (itv 0.0 50.0));
  (* All-zero density degenerates to uniform, not an error. *)
  let z = Dist.of_density cont (fun _ -> 0.0) in
  close "degenerate uniform" 0.5 (Dist.prob_interval z (itv 0.0 50.0))

let test_mix () =
  let d =
    Dist.mix
      [ (1.0, Dist.uniform cont); (3.0, Dist.of_pieces cont [ (itv 0.0 10.0, 1.0) ]) ]
  in
  close "peak mass" (0.25 *. 0.1 +. 0.75) (Dist.prob_interval d (itv 0.0 10.0));
  Alcotest.(check bool) "normalized" true (Dist.is_normalized d)

let test_cdf_quantile () =
  let d = Dist.uniform cont in
  close "cdf mid" 0.5 (Dist.cdf d 50.0);
  close "cdf below" 0.0 (Dist.cdf d (-1.0));
  close "cdf above" 1.0 (Dist.cdf d 200.0);
  close ~eps:1e-6 "quantile" 25.0 (Dist.quantile d 0.25);
  let atoms = Dist.of_atoms disc [ (10.0, 0.5); (20.0, 0.5) ] in
  close "atom cdf" 0.5 (Dist.cdf atoms 15.0);
  close "atom quantile" 10.0 (Dist.quantile atoms 0.3);
  close "atom quantile upper" 20.0 (Dist.quantile atoms 0.9);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Dist.quantile: q not in [0,1]") (fun () ->
      ignore (Dist.quantile d 1.5))

let test_mean () =
  close "uniform mean" 50.0 (Dist.mean (Dist.uniform cont));
  let d = Dist.of_atoms disc [ (10.0, 1.0); (20.0, 1.0) ] in
  close "atom mean" 15.0 (Dist.mean d)

let test_cell_probs () =
  let overlay =
    Overlay.build cont
      [ (0, Iset.of_interval (itv 0.0 10.0)); (1, Iset.of_interval (itv 50.0 100.0)) ]
  in
  let probs = Dist.cell_probs (Dist.uniform cont) overlay in
  let total = Array.fold_left ( +. ) 0.0 probs in
  close "sums to 1" 1.0 total;
  (* Cells: [0,10] (0.1), (10,50) (0.4), [50,100] (0.5). *)
  close "cell0" 0.1 probs.(0);
  close "cell1" 0.4 probs.(1);
  close "cell2" 0.5 probs.(2)

let test_sampling_matches_probs () =
  let d =
    Dist.mix
      [
        (0.3, Dist.of_atoms disc [ (7.0, 1.0) ]);
        (0.7, Dist.uniform disc);
      ]
  in
  let rng = Prng.create ~seed:3 in
  let hits7 = ref 0 and n = 50_000 in
  for _ = 1 to n do
    let x = Dist.sample rng d in
    if x < 0.0 || x > 99.0 || Float.rem x 1.0 <> 0.0 then
      Alcotest.fail "sample outside discrete axis";
    if x = 7.0 then incr hits7
  done;
  let expected = 0.3 +. (0.7 /. 100.0) in
  let got = float_of_int !hits7 /. float_of_int n in
  if Float.abs (got -. expected) > 0.01 then
    Alcotest.failf "atom frequency %.4f vs %.4f" got expected

(* ---------------------------- shapes ------------------------------ *)

let test_peak_mass () =
  let d = Shape.peak ~at:0.9 ~mass:0.95 ~width:0.05 cont in
  let m = Dist.prob_interval d (itv 85.0 95.0) in
  if m < 0.95 then Alcotest.failf "peak region mass %.4f < 0.95" m

let test_gauss_center () =
  let d = Shape.gauss () cont in
  close ~eps:0.02 "symmetric" 0.5 (Dist.prob_interval d (itv 0.0 50.0));
  let low = Shape.relocated_gauss `Low cont in
  Alcotest.(check bool) "low-shifted" true
    (Dist.prob_interval low (itv 0.0 50.0) > 0.9)

let test_ramps () =
  Alcotest.(check bool) "falling front-loaded" true
    (Dist.prob_interval (Shape.falling cont) (itv 0.0 50.0) > 0.7);
  Alcotest.(check bool) "rising back-loaded" true
    (Dist.prob_interval (Shape.rising cont) (itv 50.0 100.0) > 0.7)

let test_zipf_monotone () =
  let d = Shape.zipf () disc in
  let p k = Dist.prob_interval d (Interval.point k) in
  Alcotest.(check bool) "decreasing" true (p 0.0 > p 1.0 && p 1.0 > p 10.0)

let test_steps_guard () =
  Alcotest.check_raises "bad widths"
    (Invalid_argument "Shape.steps: widths must sum to 1") (fun () ->
      ignore (Shape.steps [ (0.5, 1.0) ] cont))

let test_catalog_complete () =
  List.iter
    (fun name ->
      let gen = Catalog.find_exn name in
      List.iter
        (fun axis ->
          let d = gen axis in
          if not (Dist.is_normalized d) then
            Alcotest.failf "%s not normalized" name)
        [ cont; disc ])
    Catalog.names;
  (* The Fig. 3 handles and the peak specs resolve. *)
  List.iter
    (fun n -> ignore (Dist.is_normalized ((Catalog.find_exn n) cont)))
    Catalog.figure3_names;
  Alcotest.(check bool) "95%high peak" true
    (Dist.prob_interval ((Catalog.find_exn "95%high") cont) (itv 85.0 95.0) >= 0.95);
  Alcotest.(check bool) "case-insensitive" true
    (Dist.prob_interval ((Catalog.find_exn "90%LOW") cont) (itv 5.0 15.0) >= 0.90);
  Alcotest.(check bool) "unknown" true (Catalog.find "nope" = None);
  Alcotest.(check bool) "bad pct" true (Catalog.find "0%high" = None)

let test_sampler_bit_identical () =
  (* The compiled sampler must consume the same generator stream and
     produce the same values as the reference sampler. *)
  List.iter
    (fun d ->
      let s = Dist.sampler d in
      let a = Prng.create ~seed:77 and b = Prng.create ~seed:77 in
      for _ = 1 to 5000 do
        let x = Dist.sample a d and y = s b in
        if x <> y then Alcotest.failf "diverged: %.9f vs %.9f" x y
      done)
    [
      Dist.uniform cont;
      Dist.uniform disc;
      Dist.of_atoms disc [ (1.0, 3.0); (5.0, 1.0); (90.0, 2.0) ];
      Shape.gauss () cont;
      Shape.peak ~at:0.9 ~mass:0.95 ~width:0.05 disc;
      Dist.mix [ (0.3, Dist.of_atoms disc [ (7.0, 1.0) ]); (0.7, Dist.uniform disc) ];
    ]

(* ----------------------------- joint ------------------------------ *)

module Joint = Genas_dist.Joint

let test_joint_guards () =
  Alcotest.check_raises "empty" (Invalid_argument "Joint.mixture: empty")
    (fun () -> ignore (Joint.mixture []));
  Alcotest.check_raises "arity"
    (Invalid_argument "Joint.mixture: arity mismatch") (fun () ->
      ignore
        (Joint.mixture
           [ (1.0, [| Dist.uniform cont |]); (1.0, [| Dist.uniform cont; Dist.uniform cont |]) ]));
  Alcotest.check_raises "axis"
    (Invalid_argument "Joint.mixture: axis mismatch") (fun () ->
      ignore
        (Joint.mixture
           [ (1.0, [| Dist.uniform cont |]); (1.0, [| Dist.uniform disc |]) ]))

let test_joint_marginal () =
  let j =
    Joint.mixture
      [
        (1.0, [| Dist.of_pieces cont [ (itv 0.0 10.0, 1.0) ]; Dist.uniform cont |]);
        (3.0, [| Dist.of_pieces cont [ (itv 90.0 100.0, 1.0) ]; Dist.uniform cont |]);
      ]
  in
  Alcotest.(check int) "arity" 2 (Joint.arity j);
  Alcotest.(check int) "components" 2 (Joint.components j);
  let m0 = Joint.marginal j ~attr:0 in
  close "low lobe" 0.25 (Dist.prob_interval m0 (itv 0.0 10.0));
  close "high lobe" 0.75 (Dist.prob_interval m0 (itv 90.0 100.0))

let test_joint_sampling_respects_correlation () =
  (* Component 1: both low; component 2: both high. Anti-diagonal
     quadrants must be empty. *)
  let j =
    Joint.mixture
      [
        ( 1.0,
          [| Dist.of_pieces cont [ (itv 0.0 10.0, 1.0) ];
             Dist.of_pieces cont [ (itv 0.0 10.0, 1.0) ] |] );
        ( 1.0,
          [| Dist.of_pieces cont [ (itv 90.0 100.0, 1.0) ];
             Dist.of_pieces cont [ (itv 90.0 100.0, 1.0) ] |] );
      ]
  in
  let rng = Prng.create ~seed:21 in
  for _ = 1 to 2000 do
    let c = Joint.sample rng j in
    let low x = x <= 10.0 and high x = x >= 90.0 in
    if not ((low c.(0) && low c.(1)) || (high c.(0) && high c.(1))) then
      Alcotest.failf "anti-correlated sample (%.1f, %.1f)" c.(0) c.(1)
  done

(* --------------------------- estimator ---------------------------- *)

let test_estimator_exact_discrete () =
  let small = Axis.make ~discrete:true ~lo:0.0 ~hi:9.0 in
  let e = Estimator.create small in
  List.iter (Estimator.add e) [ 1.0; 1.0; 1.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Estimator.count e);
  let d = Estimator.estimate e in
  close "atom 1" 0.75 (Dist.prob_interval d (Interval.point 1.0));
  close "atom 4" 0.25 (Dist.prob_interval d (Interval.point 4.0))

let test_estimator_dropped_and_reset () =
  let e = Estimator.create cont in
  Estimator.add e 50.0;
  Estimator.add e 500.0;
  Alcotest.(check int) "dropped" 1 (Estimator.dropped e);
  Estimator.reset e;
  Alcotest.(check int) "reset" 0 (Estimator.count e);
  Alcotest.check_raises "empty estimate"
    (Invalid_argument "Estimator.estimate: no observations") (fun () ->
      ignore (Estimator.estimate e))

let test_estimator_recovers_distribution () =
  let d = Shape.gauss () cont in
  let e = Estimator.create ~bins:32 cont in
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 30_000 do
    Estimator.add e (Dist.sample rng d)
  done;
  let l1 = Estimator.l1_on_grid ~bins:32 d (Estimator.estimate e) in
  if l1 > 0.08 then Alcotest.failf "estimated L1 distance %.4f too large" l1

let test_l1_bounds () =
  let a = Dist.of_pieces cont [ (itv 0.0 10.0, 1.0) ] in
  let b = Dist.of_pieces cont [ (itv 90.0 100.0, 1.0) ] in
  close ~eps:1e-6 "disjoint L1 = 2" 2.0 (Estimator.l1_on_grid a b);
  close "self distance" 0.0 (Estimator.l1_on_grid a a)

let () =
  Alcotest.run "dist"
    [
      ( "dist",
        [
          Alcotest.test_case "uniform continuous" `Quick test_uniform;
          Alcotest.test_case "uniform discrete" `Quick test_uniform_discrete;
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "pieces/blocks" `Quick test_pieces_and_blocks;
          Alcotest.test_case "of_density" `Quick test_of_density;
          Alcotest.test_case "mix" `Quick test_mix;
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "cdf/quantile" `Quick test_cdf_quantile;
          Alcotest.test_case "cell quantization" `Quick test_cell_probs;
          Alcotest.test_case "sampling frequencies" `Quick
            test_sampling_matches_probs;
          Alcotest.test_case "compiled sampler bit-identical" `Quick
            test_sampler_bit_identical;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "peak" `Quick test_peak_mass;
          Alcotest.test_case "gauss" `Quick test_gauss_center;
          Alcotest.test_case "ramps" `Quick test_ramps;
          Alcotest.test_case "zipf" `Quick test_zipf_monotone;
          Alcotest.test_case "steps guard" `Quick test_steps_guard;
          Alcotest.test_case "catalog" `Quick test_catalog_complete;
        ] );
      ( "joint",
        [
          Alcotest.test_case "guards" `Quick test_joint_guards;
          Alcotest.test_case "marginals" `Quick test_joint_marginal;
          Alcotest.test_case "correlation in samples" `Quick
            test_joint_sampling_respects_correlation;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "exact discrete" `Quick test_estimator_exact_discrete;
          Alcotest.test_case "dropped/reset" `Quick test_estimator_dropped_and_reset;
          Alcotest.test_case "recovers distribution" `Quick
            test_estimator_recovers_distribution;
          Alcotest.test_case "L1 bounds" `Quick test_l1_bounds;
        ] );
    ]
