(* Generic event model: values, domains, schemas, events, axes. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Axis = Genas_model.Axis
module Gen = Genas_testlib.Gen

(* ---------------------------- values ------------------------------ *)

let test_value_compare () =
  Alcotest.(check bool) "ints" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "floats" true
    (Value.compare (Value.Float 1.5) (Value.Float 1.5) = 0);
  Alcotest.(check bool) "strings" true
    (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.(check bool) "bools" true
    (Value.compare (Value.Bool false) (Value.Bool true) < 0);
  (* Cross-kind ordering is by tag and total. *)
  Alcotest.(check bool) "cross-kind antisymmetric" true
    (Value.compare (Value.Int 0) (Value.Str "x")
     = -Value.compare (Value.Str "x") (Value.Int 0))

let test_value_parse () =
  let ok = function Ok v -> v | Error e -> Alcotest.fail e in
  Alcotest.(check bool) "int" true
    (Value.equal (Value.Int (-3)) (ok (Value.of_string Value.Kint "-3")));
  Alcotest.(check bool) "float" true
    (Value.equal (Value.Float 2.5) (ok (Value.of_string Value.Kfloat "2.5")));
  Alcotest.(check bool) "bool" true
    (Value.equal (Value.Bool true) (ok (Value.of_string Value.Kbool "true")));
  Alcotest.(check bool) "bare string" true
    (Value.equal (Value.Str "abc") (ok (Value.of_string Value.Kstr "abc")));
  Alcotest.(check bool) "quoted string" true
    (Value.equal (Value.Str "a b") (ok (Value.of_string Value.Kstr "\"a b\"")));
  (match Value.of_string Value.Kint "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error")

let prop_value_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:300
    (QCheck.make Gen.domain)
    (fun dom ->
      let v = QCheck.Gen.generate1 (Gen.value_in dom) in
      match Value.of_string (Value.kind v) (Value.to_string v) with
      | Ok v' -> Value.equal v v'
      | Error _ -> false)

(* ---------------------------- domains ----------------------------- *)

let test_domain_size () =
  Alcotest.(check (float 1e-9)) "int size" 11.0
    (Domain.size (Domain.int_range ~lo:0 ~hi:10));
  Alcotest.(check (float 1e-9)) "float size" 80.0
    (Domain.size (Domain.float_range ~lo:(-30.0) ~hi:50.0));
  Alcotest.(check (float 1e-9)) "enum size" 3.0
    (Domain.size (Domain.enum [ "a"; "b"; "c" ]));
  Alcotest.(check (float 1e-9)) "bool size" 2.0 (Domain.size Domain.bool_dom)

let test_domain_mem () =
  let d = Domain.int_range ~lo:0 ~hi:10 in
  Alcotest.(check bool) "in" true (Domain.mem d (Value.Int 5));
  Alcotest.(check bool) "out" false (Domain.mem d (Value.Int 11));
  Alcotest.(check bool) "wrong kind" false (Domain.mem d (Value.Str "5"));
  let f = Domain.float_range ~lo:0.0 ~hi:1.0 in
  Alcotest.(check bool) "int into float domain" true (Domain.mem f (Value.Int 1))

let test_domain_guards () =
  Alcotest.check_raises "int hi<lo" (Invalid_argument "Domain.int_range: hi < lo")
    (fun () -> ignore (Domain.int_range ~lo:1 ~hi:0));
  Alcotest.check_raises "enum dup"
    (Invalid_argument "Domain.enum: duplicate value \"a\"") (fun () ->
      ignore (Domain.enum [ "a"; "a" ]));
  Alcotest.check_raises "enum empty" (Invalid_argument "Domain.enum: empty")
    (fun () -> ignore (Domain.enum []))

let test_domain_rank_values () =
  let e = Domain.enum [ "x"; "y"; "z" ] in
  Alcotest.(check (option int)) "rank y" (Some 1) (Domain.rank e (Value.Str "y"));
  Alcotest.(check (option int)) "rank absent" None (Domain.rank e (Value.Str "q"));
  (match Domain.values e with
  | Some [ Value.Str "x"; Value.Str "y"; Value.Str "z" ] -> ()
  | _ -> Alcotest.fail "enum values");
  (match Domain.values (Domain.int_range ~lo:0 ~hi:500_000) with
  | None -> ()
  | Some _ -> Alcotest.fail "should refuse huge materialization")

let test_domain_of_string () =
  let check src expected =
    match Domain.of_string src with
    | Ok d ->
      if not (Domain.equal d expected) then Alcotest.failf "parsed %S wrong" src
    | Error e -> Alcotest.failf "%S: %s" src e
  in
  check "int[0,10]" (Domain.int_range ~lo:0 ~hi:10);
  check "float[-30,50]" (Domain.float_range ~lo:(-30.0) ~hi:50.0);
  check "enum{a, b, c}" (Domain.enum [ "a"; "b"; "c" ]);
  check "bool" Domain.bool_dom;
  (match Domain.of_string "int[5,1]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error on inverted range")

let prop_domain_pp_roundtrip =
  QCheck.Test.make ~name:"Domain pp/of_string roundtrip" ~count:200
    (QCheck.make Gen.domain)
    (fun d ->
      match Domain.of_string (Format.asprintf "%a" Domain.pp d) with
      | Ok d' -> Domain.equal d d'
      | Error _ -> false)

(* ---------------------------- schemas ----------------------------- *)

let test_schema_create () =
  let s =
    Schema.create_exn
      [ ("t", Domain.int_range ~lo:0 ~hi:9); ("h", Domain.bool_dom) ]
  in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check int) "index" 1 (Schema.find_exn s "h").Schema.index;
  Alcotest.(check bool) "mem" false (Schema.mem s "x");
  (match Schema.create [ ("t", Domain.bool_dom); ("t", Domain.bool_dom) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate accepted");
  match Schema.create [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted"

(* ---------------------------- events ------------------------------ *)

let schema2 () =
  Schema.create_exn
    [ ("t", Domain.int_range ~lo:0 ~hi:9); ("s", Domain.enum [ "a"; "b" ]) ]

let test_event_create () =
  let s = schema2 () in
  let e = Event.create_exn s [ ("s", Value.Str "b"); ("t", Value.Int 3) ] in
  Alcotest.(check bool) "t value" true (Value.equal (Value.Int 3) (Event.value e 0));
  Alcotest.(check bool) "by name" true
    (Value.equal (Value.Str "b")
       (Option.get (Event.value_by_name s e "s")))

let test_event_errors () =
  let s = schema2 () in
  let expect_error bindings =
    match Event.create s bindings with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected validation error"
  in
  expect_error [ ("t", Value.Int 3) ];  (* missing s *)
  expect_error [ ("t", Value.Int 3); ("s", Value.Str "a"); ("t", Value.Int 4) ];
  expect_error [ ("t", Value.Int 99); ("s", Value.Str "a") ];  (* out of domain *)
  expect_error [ ("t", Value.Int 3); ("s", Value.Str "zz") ];
  expect_error [ ("t", Value.Int 3); ("nope", Value.Str "a") ]

let prop_event_roundtrip =
  QCheck.Test.make ~name:"event to_alist/create roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(Gen.schema () >>= fun s -> Gen.event s >|= fun e -> (s, e)))
    (fun (s, e) ->
      match Event.create s (Event.to_alist s e) with
      | Ok e' -> Event.equal e e'
      | Error _ -> false)

(* ----------------------------- axes ------------------------------- *)

let test_axis_of_domain () =
  let a = Axis.of_domain (Domain.int_range ~lo:(-3) ~hi:7) in
  Alcotest.(check bool) "discrete" true a.Axis.discrete;
  Alcotest.(check (float 1e-9)) "size" 11.0 (Axis.size a);
  let b = Axis.of_domain (Domain.enum [ "x"; "y"; "z" ]) in
  Alcotest.(check (float 1e-9)) "enum hi" 2.0 b.Axis.hi

let prop_axis_roundtrip =
  QCheck.Test.make ~name:"axis coord/value roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(Gen.domain >>= fun d -> Gen.value_in d >|= fun v -> (d, v)))
    (fun (d, v) ->
      match Axis.coord d v with
      | None -> false
      | Some c -> (
        match d with
        | Genas_model.Domain.Float_range _ ->
          (* Continuous: roundtrip within numeric noise. *)
          Float.abs (c -. Axis.coord_exn d (Axis.value d c)) < 1e-9
        | Genas_model.Domain.Int_range _ | Genas_model.Domain.Enum _
        | Genas_model.Domain.Bool_dom ->
          (* Int coord of Int value roundtrips to the same value, except
             Float values in float domains (handled above). *)
          Value.equal (Axis.value d c)
            (match v with Value.Int _ | Value.Str _ | Value.Bool _ -> v | Value.Float _ -> v)))

let () =
  Alcotest.run "model"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "parse" `Quick test_value_parse;
          QCheck_alcotest.to_alcotest prop_value_roundtrip;
        ] );
      ( "domain",
        [
          Alcotest.test_case "size" `Quick test_domain_size;
          Alcotest.test_case "mem" `Quick test_domain_mem;
          Alcotest.test_case "guards" `Quick test_domain_guards;
          Alcotest.test_case "rank/values" `Quick test_domain_rank_values;
          Alcotest.test_case "of_string" `Quick test_domain_of_string;
          QCheck_alcotest.to_alcotest prop_domain_pp_roundtrip;
        ] );
      ("schema", [ Alcotest.test_case "create" `Quick test_schema_create ]);
      ( "event",
        [
          Alcotest.test_case "create" `Quick test_event_create;
          Alcotest.test_case "validation errors" `Quick test_event_errors;
          QCheck_alcotest.to_alcotest prop_event_roundtrip;
        ] );
      ( "axis",
        [
          Alcotest.test_case "of_domain" `Quick test_axis_of_domain;
          QCheck_alcotest.to_alcotest prop_axis_roundtrip;
        ] );
    ]
