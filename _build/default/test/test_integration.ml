(* End-to-end integration: the full stack — runtime-defined service,
   adaptive distribution-based filtering, publisher-side quenching,
   composite alarms, persistence, and a routed network — wired
   together on one workload, checked against the naive oracle. *)

module Prng = Genas_prng.Prng
module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Lang = Genas_profile.Lang
module Naive = Genas_filter.Naive
module Selectivity = Genas_core.Selectivity
module Reorder = Genas_core.Reorder
module Adaptive = Genas_core.Adaptive
module Broker = Genas_ens.Broker
module Quench = Genas_ens.Quench
module Router = Genas_ens.Router
module Composite = Genas_ens.Composite
module Service = Genas_ens.Service
module Store = Genas_ens.Store

let schema_lines =
  [ "temperature : float[-30,50]"; "humidity : float[0,100]";
    "site : enum{north, south, east}" ]

let profile_specs =
  [
    ("heat-north", "temperature >= 35 && site = north");
    ("heat-anywhere", "temperature >= 40");
    ("humid", "humidity >= 85");
    ("cold-snap", "temperature <= -10");
    ("south-watch", "site = south && temperature >= 20");
  ]

let random_event rng schema seq time =
  Event.create_exn ~seq ~time schema
    [
      ("temperature", Value.Float (Prng.float_in rng ~lo:(-30.0) ~hi:50.0));
      ("humidity", Value.Float (Prng.float_in rng ~lo:0.0 ~hi:100.0));
      ("site", Value.Str (Prng.choice rng [| "north"; "south"; "east" |]));
    ]

(* The broker (adaptive, distribution-ordered, quenched) must deliver
   exactly the notifications the naive oracle predicts, on a long
   stream that triggers adaptive rebuilds along the way. *)
let test_broker_pipeline_agrees_with_oracle () =
  let svc = Service.create () in
  (match Service.define_schema_text svc ~name:"env" schema_lines with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let schema = Option.get (Service.find_schema svc "env") in
  (match
     Service.create_broker svc ~name:"hub" ~schema:"env"
       ~spec:
         { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A2, `Descending);
           value_choice = `Measure Selectivity.V3 }
       ~adaptive:{ Adaptive.warmup = 100; check_every = 50; drift_threshold = 0.3 }
       ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let broker = Option.get (Service.find_broker svc "hub") in
  let delivered = Hashtbl.create 64 in
  List.iter
    (fun (name, src) ->
      match
        Broker.subscribe_text broker ~subscriber:name src (fun n ->
            Hashtbl.replace delivered
              (n.Genas_ens.Notification.subscriber,
               Event.seq n.Genas_ens.Notification.event)
              ())
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    profile_specs;
  (* Oracle profile set. *)
  let oracle_pset = Profile_set.create schema in
  let oracle_names = Hashtbl.create 8 in
  List.iter
    (fun (name, src) ->
      match Lang.parse_profile ~name schema src with
      | Ok p -> Hashtbl.replace oracle_names (Profile_set.add oracle_pset p) name
      | Error e -> Alcotest.fail e)
    profile_specs;
  let oracle = Naive.build oracle_pset in
  let rng = Prng.create ~seed:77 in
  let expected = Hashtbl.create 64 in
  let quench = Broker.quench broker in
  for seq = 0 to 1999 do
    let event = random_event rng schema seq (float_of_int seq) in
    let matches = Naive.match_event oracle event in
    (* Every attribute has a don't-care subscription ("humid" ignores
       temperature and site, "heat-anywhere" ignores humidity), so the
       quench table must consider every event potentially wanted —
       suppression would be unsound here. *)
    if not (Quench.wanted_event quench event) then
      Alcotest.fail "quench suppressed although don't-cares exist";
    List.iter
      (fun id ->
        Hashtbl.replace expected (Hashtbl.find oracle_names id, seq) ())
      matches;
    ignore (Broker.publish broker event)
  done;
  Alcotest.(check int) "delivery multiset size" (Hashtbl.length expected)
    (Hashtbl.length delivered);
  Hashtbl.iter
    (fun key () ->
      if not (Hashtbl.mem delivered key) then
        Alcotest.failf "missing notification for %s/event %d" (fst key) (snd key))
    expected

(* Persist the profile set, reload it, route it through a 4-broker
   star, and compare total deliveries with the single broker. *)
let test_persisted_profiles_route_identically () =
  let svc = Service.create () in
  (match Service.define_schema_text svc ~name:"env" schema_lines with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let schema = Option.get (Service.find_schema svc "env") in
  let pset = Profile_set.create schema in
  List.iter
    (fun (name, src) ->
      match Lang.parse_profile ~name schema src with
      | Ok p -> ignore (Profile_set.add pset p)
      | Error e -> Alcotest.fail e)
    profile_specs;
  let dir = Filename.get_temp_dir_name () in
  let spath = Filename.concat dir "genas_int_schema.txt" in
  let ppath = Filename.concat dir "genas_int_profiles.txt" in
  (match Store.save_schema spath schema with Ok () -> () | Error e -> Alcotest.fail e);
  (match Store.save_profiles ppath schema pset with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let schema' = Result.get_ok (Store.load_schema spath) in
  let pset' = Result.get_ok (Store.load_profiles schema' ppath) in
  let net = Router.star schema' ~leaves:3 in
  let net_hits = ref 0 in
  Profile_set.iter pset' (fun id p ->
      ignore
        (Router.subscribe net ~at:(id mod 4)
           ~subscriber:(Printf.sprintf "s%d" id)
           ~profile:p
           (fun _ -> incr net_hits)));
  let single = Broker.create schema' in
  let single_hits = ref 0 in
  Profile_set.iter pset' (fun _ p ->
      ignore
        (Broker.subscribe single ~subscriber:"x" ~profile:p (fun _ ->
             incr single_hits)));
  let rng = Prng.create ~seed:78 in
  for seq = 0 to 499 do
    let e = random_event rng schema' seq (float_of_int seq) in
    ignore (Router.publish net ~at:(seq mod 4) e);
    ignore (Broker.publish single e)
  done;
  Alcotest.(check int) "same total deliveries" !single_hits !net_hits

(* Composite alarm over the same stream: detection counts must match a
   direct scan of the stream. *)
let test_composite_over_stream () =
  let svc = Service.create () in
  (match Service.define_schema_text svc ~name:"env" schema_lines with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let schema = Option.get (Service.find_schema svc "env") in
  let broker = Broker.create schema in
  let hot =
    Result.get_ok (Lang.parse_profile schema "temperature >= 30")
  in
  let fired = ref 0 in
  (match
     Broker.subscribe_composite broker ~subscriber:"alarm"
       (Composite.Repeat (Composite.Prim hot, 3, 50.0))
       (fun _ -> incr fired)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let detector =
    Composite.compile_exn schema (Composite.Repeat (Composite.Prim hot, 3, 50.0))
  in
  let rng = Prng.create ~seed:79 in
  let direct = ref 0 in
  for seq = 0 to 999 do
    let e = random_event rng schema seq (float_of_int seq) in
    direct := !direct + List.length (Composite.feed detector e);
    ignore (Broker.publish broker e)
  done;
  Alcotest.(check bool) "alarm fired" true (!fired > 0);
  Alcotest.(check int) "broker = direct detection" !direct !fired

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "broker pipeline vs oracle" `Quick
            test_broker_pipeline_agrees_with_oracle;
          Alcotest.test_case "persist + route" `Quick
            test_persisted_profiles_route_identically;
          Alcotest.test_case "composite over stream" `Quick
            test_composite_over_stream;
        ] );
    ]
