(* Selectivity measures V1–V3 and A1/A2. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Dist = Genas_dist.Dist
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Order = Genas_filter.Order
module Stats = Genas_core.Stats
module Selectivity = Genas_core.Selectivity

let close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

(* One int attribute 0..9; profiles referencing 2 (twice) and 7. *)
let setup () =
  let schema = Schema.create_exn [ ("x", Domain.int_range ~lo:0 ~hi:9) ] in
  let pset = Profile_set.create schema in
  let add v = ignore (Profile_set.add pset (Profile.create_exn schema [ ("x", Predicate.Eq (Value.Int v)) ])) in
  add 2;
  add 2;
  add 7;
  let decomp = Decomp.build pset in
  Stats.create decomp

let test_v2_keys () =
  let stats = setup () in
  (* Cells: [0,1] D0, {2}, [3,6] D0, {7}, [8,9] D0. *)
  match Selectivity.value_keys stats ~attr:0 Selectivity.V2 with
  | None -> Alcotest.fail "expected keys"
  | Some keys ->
    Alcotest.(check int) "cells" 5 (Array.length keys);
    close "Pp(2) = 2/3" (2.0 /. 3.0) keys.(1);
    close "Pp(7) = 1/3" (1.0 /. 3.0) keys.(3);
    close "Pp(D0) = 0" 0.0 keys.(0)

let test_v1_keys_follow_event_dist () =
  let stats = setup () in
  let axis = (Stats.decomp stats).Decomp.axes.(0) in
  Stats.assume_event_dist stats ~attr:0
    (Dist.of_atoms axis [ (7.0, 0.9); (2.0, 0.1) ]);
  match Selectivity.value_keys stats ~attr:0 Selectivity.V1 with
  | None -> Alcotest.fail "expected keys"
  | Some keys ->
    close "Pe(7)" 0.9 keys.(3);
    close "Pe(2)" 0.1 keys.(1)

let test_v3_product () =
  let stats = setup () in
  let axis = (Stats.decomp stats).Decomp.axes.(0) in
  Stats.assume_event_dist stats ~attr:0
    (Dist.of_atoms axis [ (7.0, 0.9); (2.0, 0.1) ]);
  match Selectivity.value_keys stats ~attr:0 Selectivity.V3 with
  | None -> Alcotest.fail "expected keys"
  | Some keys ->
    close "7: 0.9 * 1/3" (0.9 /. 3.0) keys.(3);
    close "2: 0.1 * 2/3" (0.1 *. 2.0 /. 3.0) keys.(1)

let test_ascending_variants () =
  let stats = setup () in
  let axis = (Stats.decomp stats).Decomp.axes.(0) in
  Stats.assume_event_dist stats ~attr:0
    (Dist.of_atoms axis [ (7.0, 0.9); (2.0, 0.1) ]);
  (match Selectivity.value_order stats ~attr:0 Selectivity.V1_asc with
  | Order.By_key_asc keys -> close "asc keys are Pe" 0.9 keys.(3)
  | _ -> Alcotest.fail "expected By_key_asc");
  (* Ascending event order can never beat the descending one. *)
  let cost m =
    let tree =
      Genas_core.Reorder.build stats
        { Genas_core.Reorder.attr_choice = Genas_core.Reorder.Attr_natural;
          value_choice = `Measure m }
    in
    (Genas_core.Cost.evaluate_with_stats tree stats).Genas_core.Cost.per_event
  in
  Alcotest.(check bool) "V1 <= V1_asc" true
    (cost Selectivity.V1 <= cost Selectivity.V1_asc +. 1e-9)

let test_natural_orders_have_no_keys () =
  let stats = setup () in
  Alcotest.(check bool) "asc" true
    (Selectivity.value_keys stats ~attr:0 Selectivity.V_natural_asc = None);
  (match Selectivity.value_order stats ~attr:0 Selectivity.V_natural_desc with
  | Order.Natural_desc -> ()
  | _ -> Alcotest.fail "expected Natural_desc");
  (match Selectivity.strategy stats ~attr:0 `Binary with
  | Order.Binary -> ()
  | Order.Linear _ | Order.Hashed -> Alcotest.fail "expected Binary");
  match Selectivity.strategy stats ~attr:0 `Hashed with
  | Order.Hashed -> ()
  | Order.Linear _ | Order.Binary -> Alcotest.fail "expected Hashed"

(* Example 1 schema for the attribute measures (already asserted in
   test_paper_examples; here we exercise direction + ties). *)
let multi_setup () =
  let schema =
    Schema.create_exn
      [
        ("a", Domain.int_range ~lo:0 ~hi:9);
        ("b", Domain.int_range ~lo:0 ~hi:9);
        ("c", Domain.int_range ~lo:0 ~hi:9);
      ]
  in
  let pset = Profile_set.create schema in
  (* All profiles constrain everything => no don't-care zeroing.
     a: point 5 (d0 = 9/10); b: range [0,7] (d0 = 2/10); c: [0,4]. *)
  ignore
    (Profile_set.add pset
       (Profile.create_exn schema
          [
            ("a", Predicate.Eq (Value.Int 5));
            ("b", Predicate.Between
                     { lo = Value.Int 0; lo_closed = true;
                       hi = Value.Int 7; hi_closed = true });
            ("c", Predicate.Le (Value.Int 4));
          ]));
  Stats.create (Decomp.build pset)

let test_a1_values_and_order () =
  let stats = multi_setup () in
  close "a" 0.9 (Selectivity.attribute_selectivity stats ~attr:0 Selectivity.A1);
  close "b" 0.2 (Selectivity.attribute_selectivity stats ~attr:1 Selectivity.A1);
  close "c" 0.5 (Selectivity.attribute_selectivity stats ~attr:2 Selectivity.A1);
  Alcotest.(check (list int)) "desc" [ 0; 2; 1 ]
    (Array.to_list (Selectivity.attr_order stats Selectivity.A1 `Descending));
  Alcotest.(check (list int)) "asc" [ 1; 2; 0 ]
    (Array.to_list (Selectivity.attr_order stats Selectivity.A1 `Ascending))

let test_a2_weights_by_event_mass () =
  let stats = multi_setup () in
  let axes = (Stats.decomp stats).Decomp.axes in
  (* Give attribute b a distribution fully inside its zero-subdomain
     [8,9]: A2 should now rank b highest despite its small d0. *)
  Stats.assume_event_dist stats ~attr:1 (Dist.of_atoms axes.(1) [ (8.0, 0.5); (9.0, 0.5) ]);
  (* Give a a distribution fully on its referenced point: A2(a) = 0. *)
  Stats.assume_event_dist stats ~attr:0 (Dist.of_atoms axes.(0) [ (5.0, 1.0) ]);
  close "A2(a) = 0" 0.0 (Selectivity.attribute_selectivity stats ~attr:0 Selectivity.A2);
  close "A2(b) = 0.2 * 1.0" 0.2
    (Selectivity.attribute_selectivity stats ~attr:1 Selectivity.A2);
  (* c keeps its uniform events: A2(c) = 0.5 * 0.5 = 0.25, so the
     descending order is c, b, a. *)
  close "A2(c)" 0.25 (Selectivity.attribute_selectivity stats ~attr:2 Selectivity.A2);
  Alcotest.(check (list int)) "descending order" [ 2; 1; 0 ]
    (Array.to_list (Selectivity.attr_order stats Selectivity.A2 `Descending))

let test_ties_break_by_index () =
  let schema =
    Schema.create_exn
      [ ("p", Domain.int_range ~lo:0 ~hi:9); ("q", Domain.int_range ~lo:0 ~hi:9) ]
  in
  let pset = Profile_set.create schema in
  ignore
    (Profile_set.add pset
       (Profile.create_exn schema
          [ ("p", Predicate.Eq (Value.Int 1)); ("q", Predicate.Eq (Value.Int 1)) ]));
  let stats = Stats.create (Decomp.build pset) in
  Alcotest.(check (list int)) "stable" [ 0; 1 ]
    (Array.to_list (Selectivity.attr_order stats Selectivity.A1 `Descending))

let () =
  Alcotest.run "selectivity"
    [
      ( "value measures",
        [
          Alcotest.test_case "V2 profile weights" `Quick test_v2_keys;
          Alcotest.test_case "V1 event probabilities" `Quick
            test_v1_keys_follow_event_dist;
          Alcotest.test_case "V3 product" `Quick test_v3_product;
          Alcotest.test_case "ascending variants" `Quick test_ascending_variants;
          Alcotest.test_case "natural orders" `Quick test_natural_orders_have_no_keys;
        ] );
      ( "attribute measures",
        [
          Alcotest.test_case "A1 + order" `Quick test_a1_values_and_order;
          Alcotest.test_case "A2 event weighting" `Quick test_a2_weights_by_event_mass;
          Alcotest.test_case "tie-breaking" `Quick test_ties_break_by_index;
        ] );
    ]
