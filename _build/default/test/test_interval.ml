(* Interval algebra: open/closed bounds, interval sets, and their
   boolean-algebra laws. *)

module Interval = Genas_interval.Interval
module Iset = Genas_interval.Iset
module Axis = Genas_model.Axis
module Gen = Genas_testlib.Gen

let itv ?(lc = true) ?(hc = true) lo hi =
  Interval.make_exn ~lo_closed:lc ~hi_closed:hc ~lo ~hi ()

let test_make_empty () =
  Alcotest.(check bool) "inverted" true (Interval.make ~lo:2.0 ~hi:1.0 () = None);
  Alcotest.(check bool) "open point" true
    (Interval.make ~lo_closed:false ~lo:1.0 ~hi:1.0 () = None);
  Alcotest.(check bool) "closed point ok" true
    (Interval.make ~lo:1.0 ~hi:1.0 () <> None);
  Alcotest.(check bool) "nan" true (Interval.make ~lo:Float.nan ~hi:1.0 () = None)

let test_mem_boundaries () =
  let i = itv ~lc:true ~hc:false 0.0 10.0 in
  Alcotest.(check bool) "lo in" true (Interval.mem i 0.0);
  Alcotest.(check bool) "hi out" false (Interval.mem i 10.0);
  Alcotest.(check bool) "mid" true (Interval.mem i 5.0)

let test_inter () =
  let a = itv 0.0 5.0 and b = itv ~lc:false 5.0 9.0 in
  Alcotest.(check bool) "touching open/closed disjoint" true
    (Interval.inter a b = None);
  let c = itv 3.0 7.0 in
  (match Interval.inter a c with
  | Some i -> Alcotest.(check bool) "overlap" true (Interval.equal i (itv 3.0 5.0))
  | None -> Alcotest.fail "expected overlap");
  match Interval.inter (itv 0.0 5.0) (itv 5.0 9.0) with
  | Some i -> Alcotest.(check bool) "point overlap" true (Interval.equal i (Interval.point 5.0))
  | None -> Alcotest.fail "closed endpoints intersect"

let test_measure () =
  Alcotest.(check (float 1e-9)) "continuous" 10.0
    (Interval.measure ~discrete:false (itv 0.0 10.0));
  Alcotest.(check (float 1e-9)) "discrete closed" 11.0
    (Interval.measure ~discrete:true (itv 0.0 10.0));
  Alcotest.(check (float 1e-9)) "discrete open ends" 9.0
    (Interval.measure ~discrete:true (itv ~lc:false ~hc:false 0.0 10.0));
  Alcotest.(check (float 1e-9)) "discrete fractional" 2.0
    (Interval.measure ~discrete:true (itv 0.5 2.5))

let test_normalize_discrete () =
  (match Interval.normalize_discrete (itv ~lc:false 1.0 3.5) with
  | Some i -> Alcotest.(check bool) "(1,3.5] -> [2,3]" true (Interval.equal i (itv 2.0 3.0))
  | None -> Alcotest.fail "nonempty");
  match Interval.normalize_discrete (itv ~lc:false ~hc:false 1.0 2.0) with
  | None -> ()
  | Some _ -> Alcotest.fail "(1,2) holds no integer"

let test_iset_basics () =
  let s = Iset.of_intervals [ itv 0.0 2.0; itv 1.0 5.0; itv ~lc:false 5.0 7.0 ] in
  (* All merge into one component: [0,2]∪[1,5] overlap, (5,7] touches
     [..,5] at a closed/open boundary. *)
  Alcotest.(check int) "merged" 1 (List.length (Iset.intervals s));
  Alcotest.(check bool) "mem" true (Iset.mem s 6.0);
  let s2 = Iset.of_intervals [ itv 0.0 1.0; itv ~lc:false ~hc:false 1.0 2.0 ] in
  Alcotest.(check int) "touching closed+open merge" 1 (List.length (Iset.intervals s2));
  let s3 = Iset.of_intervals [ itv ~hc:false 0.0 1.0; itv ~lc:false 1.0 2.0 ] in
  Alcotest.(check int) "gap at point stays split" 2 (List.length (Iset.intervals s3));
  Alcotest.(check bool) "hole" false (Iset.mem s3 1.0)

let axis10 = Axis.make ~discrete:false ~lo:0.0 ~hi:10.0

let test_iset_complement () =
  let s = Iset.of_intervals [ itv 2.0 4.0 ] in
  let c = Iset.complement axis10 s in
  Alcotest.(check bool) "out" true (Iset.mem c 1.0);
  Alcotest.(check bool) "in" false (Iset.mem c 3.0);
  Alcotest.(check bool) "boundary excluded" false (Iset.mem c 2.0);
  Alcotest.(check (float 1e-9)) "measure" 8.0 (Iset.measure ~discrete:false c)

let test_iset_discrete_measure () =
  let s = Iset.of_intervals [ itv 0.5 3.5; itv 7.0 8.0 ] in
  Alcotest.(check (float 1e-9)) "counts integers" 5.0
    (Iset.measure ~discrete:true s)

(* Property tests over random interval sets. *)
let pair_sets =
  QCheck.make
    QCheck.Gen.(
      Gen.iset ~lo:0.0 ~hi:10.0 >>= fun a ->
      Gen.iset ~lo:0.0 ~hi:10.0 >|= fun b -> (a, b))

let sample_points = List.init 101 (fun i -> float_of_int i /. 10.0)

let same_membership sa sb =
  List.for_all (fun x -> Iset.mem sa x = Iset.mem sb x) sample_points

let prop_union_mem =
  QCheck.Test.make ~name:"mem union = mem a || mem b" ~count:300 pair_sets
    (fun (a, b) ->
      let u = Iset.union a b in
      List.for_all
        (fun x -> Iset.mem u x = (Iset.mem a x || Iset.mem b x))
        sample_points)

let prop_inter_mem =
  QCheck.Test.make ~name:"mem inter = mem a && mem b" ~count:300 pair_sets
    (fun (a, b) ->
      let i = Iset.inter a b in
      List.for_all
        (fun x -> Iset.mem i x = (Iset.mem a x && Iset.mem b x))
        sample_points)

let prop_diff_mem =
  QCheck.Test.make ~name:"mem diff = mem a && not mem b" ~count:300 pair_sets
    (fun (a, b) ->
      let d = Iset.diff a b in
      List.for_all
        (fun x -> Iset.mem d x = (Iset.mem a x && not (Iset.mem b x)))
        sample_points)

let prop_complement_involution =
  QCheck.Test.make ~name:"complement is an involution (membership)" ~count:200
    (QCheck.make (Gen.iset ~lo:0.0 ~hi:10.0))
    (fun s ->
      same_membership s (Iset.complement axis10 (Iset.complement axis10 s)))

let prop_de_morgan =
  QCheck.Test.make ~name:"de morgan: ¬(a∪b) = ¬a∩¬b (membership)" ~count:200
    pair_sets
    (fun (a, b) ->
      same_membership
        (Iset.complement axis10 (Iset.union a b))
        (Iset.inter (Iset.complement axis10 a) (Iset.complement axis10 b)))

let prop_subset =
  QCheck.Test.make ~name:"inter ⊆ both operands" ~count:200 pair_sets
    (fun (a, b) ->
      let i = Iset.inter a b in
      Iset.subset i a && Iset.subset i b)

let prop_measure_additive =
  QCheck.Test.make ~name:"measure(a) + measure(¬a) = axis size" ~count:200
    (QCheck.make (Gen.iset ~lo:0.0 ~hi:10.0))
    (fun s ->
      let m = Iset.measure ~discrete:false s in
      let mc = Iset.measure ~discrete:false (Iset.complement axis10 s) in
      Float.abs (m +. mc -. 10.0) < 1e-6)

let () =
  Alcotest.run "interval"
    [
      ( "interval",
        [
          Alcotest.test_case "emptiness" `Quick test_make_empty;
          Alcotest.test_case "mem boundaries" `Quick test_mem_boundaries;
          Alcotest.test_case "intersection" `Quick test_inter;
          Alcotest.test_case "measure" `Quick test_measure;
          Alcotest.test_case "normalize_discrete" `Quick test_normalize_discrete;
        ] );
      ( "iset",
        [
          Alcotest.test_case "construction/merge" `Quick test_iset_basics;
          Alcotest.test_case "complement" `Quick test_iset_complement;
          Alcotest.test_case "discrete measure" `Quick test_iset_discrete_measure;
        ] );
      ( "laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_union_mem; prop_inter_mem; prop_diff_mem;
            prop_complement_involution; prop_de_morgan; prop_subset;
            prop_measure_additive;
          ] );
    ]
