(* The GENAS service facade and the Store persistence formats. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Predicate = Genas_profile.Predicate
module Naive = Genas_filter.Naive
module Service = Genas_ens.Service
module Store = Genas_ens.Store
module Gen = Genas_testlib.Gen

(* ---------------------------- service ------------------------------ *)

let sensor_lines = [ "temp : float[-30,50]"; "zone : enum{north, south}" ]

let test_runtime_definition () =
  let svc = Service.create () in
  (match Service.define_schema_text svc ~name:"sensors" sensor_lines with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "schemas" [ "sensors" ] (Service.schemas svc);
  (match Service.create_broker svc ~name:"hub" ~schema:"sensors" () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "brokers" [ "hub" ] (Service.brokers svc);
  let hits = ref 0 in
  (match
     Service.subscribe svc ~broker:"hub" ~subscriber:"ops"
       "temp >= 30 && zone = north" (fun _ -> incr hits)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Service.publish svc ~broker:"hub" "temp = 35, zone = north" with
  | Ok n -> Alcotest.(check int) "delivered" 1 n
  | Error e -> Alcotest.fail e);
  (match Service.publish svc ~broker:"hub" "temp = 35, zone = south" with
  | Ok n -> Alcotest.(check int) "filtered" 0 n
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "handler ran" 1 !hits;
  match Service.report svc ~broker:"hub" with
  | Ok s -> Alcotest.(check bool) "report mentions events" true
              (String.length s > 0)
  | Error e -> Alcotest.fail e

let test_service_errors () =
  let svc = Service.create () in
  let err = function Error _ -> () | Ok _ -> Alcotest.fail "expected error" in
  err (Service.define_schema_text svc ~name:"s" [ "bad line" ]);
  err (Service.create_broker svc ~name:"b" ~schema:"missing" ());
  (match Service.define_schema_text svc ~name:"s" sensor_lines with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  err (Service.define_schema svc ~name:"s" [ ("x", Domain.bool_dom) ]);
  (match Service.create_broker svc ~name:"b" ~schema:"s" () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  err (Service.create_broker svc ~name:"b" ~schema:"s" ());
  err (Service.subscribe svc ~broker:"nope" ~subscriber:"x" "" (fun _ -> ()));
  err (Service.publish svc ~broker:"b" "temp = 35");  (* zone unbound *)
  err (Service.publish svc ~broker:"nope" "temp = 35, zone = north")

(* ----------------------------- store ------------------------------- *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("genas_test_" ^ name)

let test_schema_roundtrip () =
  let schema =
    Schema.create_exn
      [
        ("t", Domain.float_range ~lo:(-1.5) ~hi:2.25);
        ("n", Domain.int_range ~lo:0 ~hi:99);
        ("k", Domain.enum [ "a"; "b" ]);
        ("f", Domain.bool_dom);
      ]
  in
  let path = tmp "schema.txt" in
  (match Store.save_schema path schema with Ok () -> () | Error e -> Alcotest.fail e);
  match Store.load_schema path with
  | Error e -> Alcotest.fail e
  | Ok loaded -> Alcotest.(check bool) "equal" true (Schema.equal schema loaded)

let test_profiles_roundtrip_semantics () =
  QCheck.Gen.generate ~n:10 (Gen.scenario ~max_attrs:3 ~max_p:8 ~n_events:25 ())
  |> List.iteri (fun i (schema, pset, events) ->
         let path = tmp (Printf.sprintf "profiles_%d.txt" i) in
         (match Store.save_profiles path schema pset with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
         match Store.load_profiles schema path with
         | Error e -> Alcotest.fail e
         | Ok loaded ->
           Alcotest.(check int) "profile count" (Profile_set.size pset)
             (Profile_set.size loaded);
           let m1 = Naive.build pset and m2 = Naive.build loaded in
           List.iter
             (fun e ->
               (* Ids are reassigned densely in file order = original
                  ascending id order, so match lists coincide when the
                  original ids were dense too; compare sizes plus the
                  per-profile outcome via sorted match counts. *)
               Alcotest.(check int) "same match count"
                 (List.length (Naive.match_event m1 e))
                 (List.length (Naive.match_event m2 e)))
             events)

let test_events_roundtrip () =
  let schema =
    Schema.create_exn
      [ ("t", Domain.float_range ~lo:0.0 ~hi:10.0); ("k", Domain.enum [ "x"; "y" ]) ]
  in
  let events =
    [
      Event.create_exn schema [ ("t", Value.Float 1.25); ("k", Value.Str "x") ];
      Event.create_exn schema [ ("t", Value.Float 9.0); ("k", Value.Str "y") ];
    ]
  in
  let path = tmp "events.txt" in
  (match Store.save_events path schema events with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Store.load_events schema path with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
    Alcotest.(check int) "count" 2 (List.length loaded);
    List.iter2
      (fun a b -> Alcotest.(check bool) "event equal" true (Event.equal a b))
      events loaded;
    (* Sequence numbers are assigned by position. *)
    Alcotest.(check (list int)) "seqs" [ 0; 1 ] (List.map Event.seq loaded)

let test_load_errors () =
  let schema = Schema.create_exn [ ("t", Domain.bool_dom) ] in
  (match Store.load_schema "/nonexistent/genas" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted");
  let path = tmp "bad_profiles.txt" in
  (match
     Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc "p1 : nope >= 3\n")
   with
  | () -> ()
  | exception Sys_error e -> Alcotest.fail e);
  match Store.load_profiles schema path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad profile accepted"

let test_comments_and_blanks_ignored () =
  let path = tmp "commented.txt" in
  (match
     Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc
           "# header\n\n t : bool \n# trailing\n")
   with
  | () -> ()
  | exception Sys_error e -> Alcotest.fail e);
  match Store.load_schema path with
  | Error e -> Alcotest.fail e
  | Ok s -> Alcotest.(check int) "one attribute" 1 (Schema.arity s)

let () =
  Alcotest.run "service"
    [
      ( "service",
        [
          Alcotest.test_case "runtime definition" `Quick test_runtime_definition;
          Alcotest.test_case "errors" `Quick test_service_errors;
        ] );
      ( "store",
        [
          Alcotest.test_case "schema roundtrip" `Quick test_schema_roundtrip;
          Alcotest.test_case "profiles roundtrip" `Quick
            test_profiles_roundtrip_semantics;
          Alcotest.test_case "events roundtrip" `Quick test_events_roundtrip;
          Alcotest.test_case "load errors" `Quick test_load_errors;
          Alcotest.test_case "comments ignored" `Quick
            test_comments_and_blanks_ignored;
        ] );
    ]
