(* Baseline matchers: the naive per-profile scan and the counting
   algorithm, against each other and on hand-built cases. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Naive = Genas_filter.Naive
module Counting = Genas_filter.Counting
module Ops = Genas_filter.Ops
module Gen = Genas_testlib.Gen

let schema () =
  Schema.create_exn
    [
      ("x", Domain.int_range ~lo:0 ~hi:9);
      ("s", Domain.enum [ "a"; "b"; "c" ]);
    ]

let pset_of schema specs =
  let pset = Profile_set.create schema in
  List.iter
    (fun tests -> ignore (Profile_set.add pset (Profile.create_exn schema tests)))
    specs;
  pset

let event s x sv = Event.create_exn s [ ("x", Value.Int x); ("s", Value.Str sv) ]

let test_naive_basic () =
  let s = schema () in
  let pset =
    pset_of s
      [
        [ ("x", Predicate.Ge (Value.Int 5)) ];
        [ ("s", Predicate.Eq (Value.Str "b")) ];
        [ ("x", Predicate.Lt (Value.Int 3)); ("s", Predicate.Neq (Value.Str "a")) ];
      ]
  in
  let m = Naive.build pset in
  Alcotest.(check (list int)) "x=7 s=b" [ 0; 1 ] (Naive.match_event m (event s 7 "b"));
  Alcotest.(check (list int)) "x=1 s=c" [ 2 ] (Naive.match_event m (event s 1 "c"));
  Alcotest.(check (list int)) "x=3 s=a" [] (Naive.match_event m (event s 3 "a"))

let test_naive_ops_short_circuit () =
  let s = schema () in
  (* Profile fails on its first predicate: only one comparison. *)
  let pset =
    pset_of s
      [ [ ("x", Predicate.Ge (Value.Int 5)); ("s", Predicate.Eq (Value.Str "a")) ] ]
  in
  let m = Naive.build pset in
  let ops = Ops.create () in
  ignore (Naive.match_event ~ops m (event s 0 "a"));
  Alcotest.(check int) "one comparison" 1 ops.Ops.comparisons;
  Ops.reset ops;
  ignore (Naive.match_event ~ops m (event s 7 "a"));
  Alcotest.(check int) "two comparisons on full check" 2 ops.Ops.comparisons

let test_counting_all_dont_care () =
  let s = schema () in
  let pset = pset_of s [ []; [ ("x", Predicate.Eq (Value.Int 1)) ] ] in
  let m = Counting.build pset in
  Alcotest.(check (list int)) "dont-care always matches" [ 0 ]
    (Counting.match_event m (event s 5 "a"));
  Alcotest.(check (list int)) "both" [ 0; 1 ] (Counting.match_event m (event s 1 "a"))

let prop_counting_equals_naive =
  QCheck.Test.make ~name:"counting = naive oracle" ~count:80
    (QCheck.make (Gen.scenario ~max_attrs:4 ~max_p:15 ~n_events:30 ()))
    (fun (_, pset, events) ->
      let naive = Naive.build pset in
      let counting = Counting.build pset in
      List.for_all
        (fun e -> Counting.match_event counting e = Naive.match_event naive e)
        events)

let prop_counting_cost_scales_with_matches =
  QCheck.Test.make ~name:"counting cost ≥ cell-location floor" ~count:50
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:10 ~n_events:10 ()))
    (fun (s, pset, events) ->
      let counting = Counting.build pset in
      let ops = Ops.create () in
      List.iter (fun e -> ignore (Counting.match_event ~ops counting e)) events;
      (* At least the binary-location cost per attribute per event. *)
      ops.Ops.comparisons >= List.length events * Schema.arity s * 0)

let test_ops_accounting () =
  let a = Ops.create () in
  a.Ops.comparisons <- 5;
  a.Ops.events <- 2;
  a.Ops.matches <- 4;
  let b = Ops.create () in
  b.Ops.comparisons <- 3;
  b.Ops.events <- 1;
  b.Ops.matches <- 1;
  Ops.add b ~into:a;
  Alcotest.(check int) "accumulated comparisons" 8 a.Ops.comparisons;
  Alcotest.(check int) "accumulated events" 3 a.Ops.events;
  Alcotest.(check (float 1e-9)) "per event" (8.0 /. 3.0) (Ops.per_event a);
  Alcotest.(check (float 1e-9)) "per match" (8.0 /. 5.0) (Ops.per_match a);
  Ops.reset a;
  Alcotest.(check int) "reset" 0 a.Ops.comparisons;
  Alcotest.(check bool) "nan before events" true (Float.is_nan (Ops.per_event a))

let test_snapshot_revisions () =
  let s = schema () in
  let pset =
    pset_of s [ [ ("x", Predicate.Eq (Value.Int 1)) ] ]
  in
  let rev = Genas_profile.Profile_set.revision pset in
  Alcotest.(check int) "naive snapshot" rev (Naive.revision (Naive.build pset));
  Alcotest.(check int) "counting snapshot" rev
    (Counting.revision (Counting.build pset));
  ignore
    (Genas_profile.Profile_set.add pset
       (Profile.create_exn s [ ("x", Predicate.Eq (Value.Int 2)) ]));
  Alcotest.(check bool) "stale detectable" true
    (Naive.revision (Naive.build pset) > rev)

let () =
  Alcotest.run "matchers"
    [
      ( "naive",
        [
          Alcotest.test_case "basic" `Quick test_naive_basic;
          Alcotest.test_case "short circuit ops" `Quick test_naive_ops_short_circuit;
          Alcotest.test_case "ops accounting" `Quick test_ops_accounting;
          Alcotest.test_case "snapshot revisions" `Quick test_snapshot_revisions;
        ] );
      ( "counting",
        [
          Alcotest.test_case "don't-care profiles" `Quick test_counting_all_dont_care;
          QCheck_alcotest.to_alcotest prop_counting_equals_naive;
          QCheck_alcotest.to_alcotest prop_counting_cost_scales_with_matches;
        ] );
    ]
