(* Match tracing: the explanation must reproduce the matcher's result
   and its operation count exactly. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Ops = Genas_filter.Ops
module Explain = Genas_core.Explain
module Gen = Genas_testlib.Gen

let test_trace_structure () =
  let s =
    Schema.create_exn
      [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.int_range ~lo:0 ~hi:9) ]
  in
  let pset = Profile_set.create s in
  ignore
    (Profile_set.add pset
       (Profile.create_exn s
          [ ("x", Predicate.Ge (Value.Int 5)); ("y", Predicate.Le (Value.Int 3)) ]));
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  (* A matching event: two levels, both edges. *)
  let t = Explain.trace tree (Event.create_exn s [ ("x", Value.Int 7); ("y", Value.Int 2) ]) in
  Alcotest.(check int) "two steps" 2 (List.length t.Explain.steps);
  Alcotest.(check (list int)) "matched" [ 0 ] t.Explain.matched;
  List.iter
    (fun (st : Explain.step) ->
      match st.Explain.outcome with
      | `Edge -> ()
      | `Rest | `Reject -> Alcotest.fail "expected edge steps")
    t.Explain.steps;
  (* Rejected at the first level. *)
  let r = Explain.trace tree (Event.create_exn s [ ("x", Value.Int 1); ("y", Value.Int 2) ]) in
  Alcotest.(check int) "one step" 1 (List.length r.Explain.steps);
  Alcotest.(check (list int)) "no match" [] r.Explain.matched;
  (match (List.hd r.Explain.steps).Explain.outcome with
  | `Reject -> ()
  | `Edge | `Rest -> Alcotest.fail "expected rejection");
  (* The rendering mentions the attribute and the verdict. *)
  let out = Format.asprintf "%a" Explain.pp t in
  Alcotest.(check bool) "pp nonempty" true (String.length out > 20)

let prop_trace_agrees_with_matcher =
  QCheck.Test.make ~name:"trace = match_event (result and cost)" ~count:60
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:20 ()))
    (fun (_, pset, events) ->
      let d = Decomp.build pset in
      let tree = Tree.build d (Tree.default_config d) in
      List.for_all
        (fun e ->
          let ops = Ops.create () in
          let matched = Tree.match_event ~ops tree e in
          let t = Explain.trace tree e in
          t.Explain.matched = matched
          && t.Explain.total_comparisons = ops.Ops.comparisons
          && t.Explain.total_comparisons
             = List.fold_left
                 (fun acc (s : Explain.step) -> acc + s.Explain.comparisons)
                 0 t.Explain.steps)
        events)

let () =
  Alcotest.run "explain"
    [
      ( "explain",
        [
          Alcotest.test_case "trace structure" `Quick test_trace_structure;
          QCheck_alcotest.to_alcotest prop_trace_agrees_with_matcher;
        ] );
    ]
