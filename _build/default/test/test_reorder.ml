(* Tree reordering: spec handling, the A3 exhaustive search, and the
   optimality guarantee A3 carries. *)

module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Dist = Genas_dist.Dist
module Shape = Genas_dist.Shape
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Order = Genas_filter.Order
module Stats = Genas_core.Stats
module Cost = Genas_core.Cost
module Selectivity = Genas_core.Selectivity
module Reorder = Genas_core.Reorder
module Workload = Genas_expt.Workload
module Prng = Genas_prng.Prng

let scenario ~seed ~attrs ~p =
  let schema = Workload.normalized_schema ~attrs ~points:40 () in
  let axes =
    Array.init attrs (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let rng = Prng.create ~seed in
  let pset =
    Workload.gen_profiles rng schema
      {
        Workload.p;
        dontcare = Array.make attrs 0.0;
        value_dists =
          Array.mapi
            (fun i ax ->
              Shape.peak ~at:0.5 ~mass:1.0
                ~width:(0.15 +. (0.2 *. float_of_int i))
                ax)
            axes;
        range_width = None;
      }
  in
  let stats = Stats.create (Decomp.build pset) in
  Array.iteri
    (fun i ax -> Stats.assume_event_dist stats ~attr:i (Shape.gauss () ax))
    axes;
  stats

let test_default_spec_is_natural () =
  let stats = scenario ~seed:1 ~attrs:3 ~p:8 in
  let cfg = Reorder.config stats Reorder.default_spec in
  Alcotest.(check (list int)) "identity order" [ 0; 1; 2 ]
    (Array.to_list cfg.Tree.attr_order);
  Array.iter
    (function
      | Order.Linear Order.Natural_asc -> ()
      | _ -> Alcotest.fail "expected natural linear")
    cfg.Tree.strategies

let test_explicit_order () =
  let stats = scenario ~seed:2 ~attrs:3 ~p:8 in
  let cfg =
    Reorder.config stats
      { Reorder.attr_choice = Reorder.Attr_explicit [| 2; 0; 1 |];
        value_choice = `Binary }
  in
  Alcotest.(check (list int)) "explicit" [ 2; 0; 1 ]
    (Array.to_list cfg.Tree.attr_order);
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Reorder.config: explicit order has wrong length")
    (fun () ->
      ignore
        (Reorder.config stats
           { Reorder.attr_choice = Reorder.Attr_explicit [| 0 |];
             value_choice = `Binary }))

let test_measured_direction () =
  let stats = scenario ~seed:3 ~attrs:3 ~p:8 in
  let desc =
    Reorder.config stats
      { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A1, `Descending);
        value_choice = `Binary }
  in
  let asc =
    Reorder.config stats
      { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A1, `Ascending);
        value_choice = `Binary }
  in
  Alcotest.(check (list int)) "asc is reverse of desc"
    (List.rev (Array.to_list desc.Tree.attr_order))
    (Array.to_list asc.Tree.attr_order)

let test_a3_is_optimal () =
  let stats = scenario ~seed:4 ~attrs:3 ~p:10 in
  let value_choice = `Measure Selectivity.V1 in
  let a3 = Reorder.a3_order stats ~value_choice in
  let cost_of order =
    let tree =
      Reorder.build stats
        { Reorder.attr_choice = Reorder.Attr_explicit order; value_choice }
    in
    (Cost.evaluate_with_stats tree stats).Cost.per_event
  in
  let best = cost_of a3 in
  (* Exhaustive check over all 6 permutations of 3 attributes. *)
  List.iter
    (fun order ->
      let c = cost_of (Array.of_list order) in
      if c +. 1e-9 < best then
        Alcotest.failf "A3 %.4f beaten by [%s] at %.4f" best
          (String.concat ";" (List.map string_of_int order))
          c)
    [ [0;1;2]; [0;2;1]; [1;0;2]; [1;2;0]; [2;0;1]; [2;1;0] ]

let test_a3_at_least_as_good_as_a2 () =
  let stats = scenario ~seed:5 ~attrs:4 ~p:12 in
  let value_choice = `Measure Selectivity.V1 in
  let cost_with attr_choice =
    let tree = Reorder.build stats { Reorder.attr_choice; value_choice } in
    (Cost.evaluate_with_stats tree stats).Cost.per_event
  in
  let a3 = cost_with Reorder.Attr_a3 in
  let a2 = cost_with (Reorder.Attr_measured (Selectivity.A2, `Descending)) in
  let natural = cost_with Reorder.Attr_natural in
  Alcotest.(check bool) "A3 <= A2" true (a3 <= a2 +. 1e-9);
  Alcotest.(check bool) "A3 <= natural" true (a3 <= natural +. 1e-9)

let test_a3_guard () =
  let stats = scenario ~seed:6 ~attrs:3 ~p:5 in
  ignore stats;
  let schema = Workload.normalized_schema ~attrs:9 ~points:10 () in
  let rng = Prng.create ~seed:6 in
  let axes =
    Array.init 9 (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let pset =
    Workload.gen_profiles rng schema
      {
        Workload.p = 3;
        dontcare = Array.make 9 0.0;
        value_dists = Array.map Dist.uniform axes;
        range_width = None;
      }
  in
  let stats9 = Stats.create (Decomp.build pset) in
  Alcotest.check_raises "n > 8 rejected"
    (Invalid_argument "Reorder.a3_order: A3 is O(n!) and guarded to n <= 8")
    (fun () -> ignore (Reorder.a3_order stats9 ~value_choice:`Binary))

let test_strategies_installed () =
  let stats = scenario ~seed:7 ~attrs:2 ~p:6 in
  let cfg =
    Reorder.config stats
      { Reorder.attr_choice = Reorder.Attr_natural;
        value_choice = `Measure Selectivity.V1 }
  in
  Array.iter
    (function
      | Order.Linear (Order.By_key_desc _) -> ()
      | _ -> Alcotest.fail "expected V1 key strategy")
    cfg.Tree.strategies

let test_hashed_costs_one_per_level () =
  let stats = scenario ~seed:8 ~attrs:3 ~p:10 in
  let tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Hashed }
  in
  let r = Genas_core.Cost.evaluate_with_stats tree stats in
  (* Every level has listed edges (no don't-cares in this scenario), so
     hash-based location costs exactly 1 comparison per level reached.
     The top level is always reached. *)
  Alcotest.(check (float 1e-9)) "level 0 costs 1" 1.0 r.Cost.per_level.(0);
  Alcotest.(check bool) "per event <= depth" true (r.Cost.per_event <= 3.0 +. 1e-9)

let test_hashed_agrees_with_binary_semantics () =
  let stats = scenario ~seed:8 ~attrs:2 ~p:10 in
  let hashed =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Hashed }
  in
  let binary =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary }
  in
  for x = 0 to 39 do
    for y = 0 to 39 do
      let coords = [| float_of_int x; float_of_int y |] in
      Alcotest.(check (list int))
        (Printf.sprintf "(%d,%d)" x y)
        (Tree.match_coords binary coords)
        (Tree.match_coords hashed coords)
    done
  done

let test_auto_beats_all_binary () =
  let stats = scenario ~seed:9 ~attrs:3 ~p:12 in
  let cost_with value_choice =
    let tree =
      Reorder.build stats { Reorder.attr_choice = Reorder.Attr_natural; value_choice }
    in
    (Genas_core.Cost.evaluate_with_stats tree stats).Cost.per_event
  in
  Alcotest.(check bool) "auto <= binary" true
    (cost_with `Auto <= cost_with `Binary +. 1e-9)

let test_auto_strategies_are_per_attribute () =
  let stats = scenario ~seed:10 ~attrs:3 ~p:12 in
  let strategies =
    Reorder.auto_strategies stats ~attr_order:[| 0; 1; 2 |]
  in
  Alcotest.(check int) "one per attribute" 3 (Array.length strategies);
  (* Auto matching stays correct. *)
  let tree =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Auto }
  in
  let binary =
    Reorder.build stats
      { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary }
  in
  for i = 0 to 200 do
    let coords =
      [| float_of_int (i mod 40); float_of_int (i * 7 mod 40);
         float_of_int (i * 13 mod 40) |]
    in
    Alcotest.(check (list int)) "semantics preserved"
      (Tree.match_coords binary coords)
      (Tree.match_coords tree coords)
  done

let () =
  Alcotest.run "reorder"
    [
      ( "specs",
        [
          Alcotest.test_case "default" `Quick test_default_spec_is_natural;
          Alcotest.test_case "explicit" `Quick test_explicit_order;
          Alcotest.test_case "direction" `Quick test_measured_direction;
          Alcotest.test_case "strategies installed" `Quick test_strategies_installed;
        ] );
      ( "a3",
        [
          Alcotest.test_case "optimal over permutations" `Quick test_a3_is_optimal;
          Alcotest.test_case "beats A2 and natural" `Quick
            test_a3_at_least_as_good_as_a2;
          Alcotest.test_case "arity guard" `Quick test_a3_guard;
        ] );
      ( "outlook strategies",
        [
          Alcotest.test_case "hashed O(1) per level" `Quick
            test_hashed_costs_one_per_level;
          Alcotest.test_case "hashed semantics" `Quick
            test_hashed_agrees_with_binary_semantics;
          Alcotest.test_case "auto beats all-binary" `Quick test_auto_beats_all_binary;
          Alcotest.test_case "auto per-attribute mix" `Quick
            test_auto_strategies_are_per_attribute;
        ] );
    ]
