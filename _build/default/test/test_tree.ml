(* The profile tree: construction, determinism, sharing, and semantic
   agreement with the naive oracle under every strategy. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Order = Genas_filter.Order
module Naive = Genas_filter.Naive
module Ops = Genas_filter.Ops
module Gen = Genas_testlib.Gen

let schema2 () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.int_range ~lo:0 ~hi:9) ]

let pset_of schema specs =
  let pset = Profile_set.create schema in
  List.iter
    (fun tests -> ignore (Profile_set.add pset (Profile.create_exn schema tests)))
    specs;
  pset

let test_empty_tree () =
  let s = schema2 () in
  let pset = Profile_set.create s in
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  Alcotest.(check bool) "no root" true (tree.Tree.root = None);
  let e = Event.create_exn s [ ("x", Value.Int 1); ("y", Value.Int 2) ] in
  Alcotest.(check (list int)) "no matches" [] (Tree.match_event tree e)

let test_dont_care_only () =
  let s = schema2 () in
  let pset = pset_of s [ [] ] in
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  let ops = Ops.create () in
  let e = Event.create_exn s [ ("x", Value.Int 1); ("y", Value.Int 2) ] in
  Alcotest.(check (list int)) "matches everything" [ 0 ]
    (Tree.match_event ~ops tree e);
  (* Star-only nodes cost no comparisons. *)
  Alcotest.(check int) "zero comparisons" 0 ops.Ops.comparisons

let test_config_validation () =
  let s = schema2 () in
  let d = Decomp.build (pset_of s [ [ ("x", Predicate.Eq (Value.Int 1)) ] ]) in
  let strategies = Array.make 2 (Order.Linear Order.Natural_asc) in
  Alcotest.check_raises "non-permutation"
    (Invalid_argument "Tree.build: attr_order is not a permutation") (fun () ->
      ignore (Tree.build d { Tree.attr_order = [| 0; 0 |]; strategies }));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Tree.build: attr_order length mismatch") (fun () ->
      ignore (Tree.build d { Tree.attr_order = [| 0 |]; strategies }))

let test_duplicated_dont_care_profiles () =
  (* A profile with a don't-care on x must be found under every x-edge
     (DFSA determinization): single path still sees it. *)
  let s = schema2 () in
  let pset =
    pset_of s
      [
        [ ("x", Predicate.Eq (Value.Int 1)); ("y", Predicate.Eq (Value.Int 1)) ];
        [ ("y", Predicate.Eq (Value.Int 1)) ];
      ]
  in
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  let e xv =
    Event.create_exn s [ ("x", Value.Int xv); ("y", Value.Int 1) ]
  in
  Alcotest.(check (list int)) "on the listed edge" [ 0; 1 ]
    (Tree.match_event tree (e 1));
  Alcotest.(check (list int)) "on the rest edge" [ 1 ]
    (Tree.match_event tree (e 5))

let test_sharing_smaller () =
  let g = QCheck.Gen.generate1 (Gen.scenario ~max_attrs:3 ~max_p:15 ()) in
  let _, pset, _ = g in
  let d = Decomp.build pset in
  let cfg = Tree.default_config d in
  let shared = Tree.build ~share:true d cfg in
  let unshared = Tree.build ~share:false d cfg in
  Alcotest.(check bool) "not larger" true
    (shared.Tree.stats.Tree.nodes <= unshared.Tree.stats.Tree.nodes);
  (* Memo hits stop the recursion, so sharing can only reduce the
     construction visits. *)
  Alcotest.(check bool) "visits not larger" true
    (shared.Tree.stats.Tree.build_visits <= unshared.Tree.stats.Tree.build_visits)

let all_strategy_choices =
  [
    ("natural", Order.Linear Order.Natural_asc);
    ("natural desc", Order.Linear Order.Natural_desc);
    ("binary", Order.Binary);
    ("hashed", Order.Hashed);
  ]

let check_against_naive ?(n_events = 40) (s, pset, events) =
  let d = Decomp.build pset in
  let naive = Naive.build pset in
  ignore n_events;
  List.iter
    (fun (label, strat) ->
      let n = Schema.arity s in
      let cfg =
        {
          Tree.attr_order = Array.init n (fun i -> n - 1 - i);
          strategies = Array.make n strat;
        }
      in
      let tree = Tree.build d cfg in
      let tree_unshared = Tree.build ~share:false d cfg in
      List.iter
        (fun e ->
          let expect = Naive.match_event naive e in
          let got = Tree.match_event tree e in
          if got <> expect then
            Alcotest.failf "%s: tree %s vs naive %s" label
              (String.concat "," (List.map string_of_int got))
              (String.concat "," (List.map string_of_int expect));
          if Tree.match_event tree_unshared e <> expect then
            Alcotest.failf "%s: unshared tree disagrees" label)
        events)
    all_strategy_choices

let prop_tree_agrees_with_naive =
  QCheck.Test.make ~name:"tree = naive oracle (all strategies, reversed attr order)"
    ~count:60
    (QCheck.make (Gen.scenario ~max_attrs:4 ~max_p:15 ~n_events:30 ()))
    (fun scenario ->
      check_against_naive scenario;
      true)

let prop_key_order_agrees_with_naive =
  QCheck.Test.make ~name:"tree with random key order = naive oracle" ~count:40
    (QCheck.make
       QCheck.Gen.(
         Gen.scenario ~max_attrs:3 ~max_p:12 ~n_events:25 () >>= fun (s, pset, es) ->
         int_bound 1000 >|= fun salt -> (s, pset, es, salt)))
    (fun (s, pset, events, salt) ->
      let d = Decomp.build pset in
      let naive = Naive.build pset in
      let n = Schema.arity s in
      (* Pseudo-random per-cell keys: exercises By_key_desc orders with
         D0 half-ranks. *)
      let strategies =
        Array.init n (fun attr ->
            let ncells =
              Array.length d.Decomp.overlays.(attr).Genas_interval.Overlay.cells
            in
            Order.Linear
              (Order.By_key_desc
                 (Array.init ncells (fun c ->
                      float_of_int (((c + salt) * 2654435761) land 0xFFFF)))))
      in
      let tree = Tree.build d { Tree.attr_order = Array.init n Fun.id; strategies } in
      List.for_all
        (fun e -> Tree.match_event tree e = Naive.match_event naive e)
        events)

let prop_ops_counted =
  QCheck.Test.make ~name:"ops counters are consistent" ~count:50
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:10 ~n_events:20 ()))
    (fun (_, pset, events) ->
      let d = Decomp.build pset in
      let tree = Tree.build d (Tree.default_config d) in
      let ops = Ops.create () in
      let total_matches =
        List.fold_left
          (fun acc e -> acc + List.length (Tree.match_event ~ops tree e))
          0 events
      in
      ops.Ops.events = List.length events
      && ops.Ops.matches = total_matches
      && ops.Ops.comparisons >= 0
      && ops.Ops.node_visits >= ops.Ops.events)

let test_match_coords_equals_match_event () =
  let s = schema2 () in
  let pset =
    pset_of s
      [
        [ ("x", Predicate.Between { lo = Value.Int 2; lo_closed = true;
                                    hi = Value.Int 7; hi_closed = false }) ];
        [ ("y", Predicate.Ge (Value.Int 5)) ];
      ]
  in
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  for x = 0 to 9 do
    for y = 0 to 9 do
      let e = Event.create_exn s [ ("x", Value.Int x); ("y", Value.Int y) ] in
      Alcotest.(check (list int))
        (Printf.sprintf "(%d,%d)" x y)
        (Tree.match_event tree e)
        (Tree.match_coords tree [| float_of_int x; float_of_int y |])
    done
  done

let test_blowup_guard () =
  (* A wide boolean schema with sparse conjunctions — the SIFT shape —
     must abort cleanly under max_visits rather than hang. *)
  let s =
    Schema.create_exn
      (List.init 16 (fun i -> (Printf.sprintf "w%d" i, Domain.bool_dom)))
  in
  let pset = Profile_set.create s in
  let rng = Genas_prng.Prng.create ~seed:5 in
  for _ = 1 to 30 do
    let a = Genas_prng.Prng.int rng ~bound:16 in
    let b = (a + 1 + Genas_prng.Prng.int rng ~bound:15) mod 16 in
    ignore
      (Profile_set.add pset
         (Profile.create_exn s
            [
              (Printf.sprintf "w%d" a, Predicate.Eq (Value.Bool true));
              (Printf.sprintf "w%d" b, Predicate.Eq (Value.Bool true));
            ]))
  done;
  let d = Decomp.build pset in
  match Tree.build ~max_visits:5_000 d (Tree.default_config d) with
  | _ -> Alcotest.fail "expected Construction_blowup"
  | exception Tree.Construction_blowup limit ->
    Alcotest.(check int) "limit reported" 5_000 limit

let test_scale_stress () =
  (* 800 mixed equality/range profiles, 3 attributes: the tree must
     stay correct (vs naive) and bounded in size. *)
  let module Workload = Genas_expt.Workload in
  let module Shape = Genas_dist.Shape in
  let module Axis = Genas_model.Axis in
  let schema = Workload.normalized_schema ~attrs:3 ~points:100 () in
  let axes =
    Array.init 3 (fun i -> Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let rng = Genas_prng.Prng.create ~seed:1234 in
  let pset =
    Workload.gen_profiles rng schema
      {
        Workload.p = 800;
        dontcare = [| 0.3; 0.3; 0.3 |];
        value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
        range_width = Some 0.05;
      }
  in
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  let naive = Naive.build pset in
  for _ = 1 to 200 do
    let coords =
      Array.map (fun _ -> float_of_int (Genas_prng.Prng.int_in rng ~lo:0 ~hi:99)) axes
    in
    let event =
      Genas_model.Event.of_values_exn schema
        (Array.mapi
           (fun i c -> Axis.value (Schema.attribute schema i).Schema.domain c)
           coords)
    in
    if Tree.match_event tree event <> Naive.match_event naive event then
      Alcotest.fail "tree disagrees with naive at scale"
  done;
  Alcotest.(check bool) "hash-consing keeps the DFSA bounded" true
    (tree.Tree.stats.Tree.nodes < 200_000)

let test_pp_renders_fig1_style () =
  let s = schema2 () in
  let pset =
    pset_of s
      [
        [ ("x", Predicate.Ge (Value.Int 5)); ("y", Predicate.Eq (Value.Int 1)) ];
        [ ("y", Predicate.Eq (Value.Int 1)) ];
      ]
  in
  let d = Decomp.build pset in
  let tree = Tree.build d (Tree.default_config d) in
  let rendered = Format.asprintf "%a" Tree.pp tree in
  let expected =
    String.concat "\n"
      [
        "x [5,9]";
        "  y {1}";
        "    -> {0,1}";
        "x (*)";
        "  y {1}";
        "    -> {1}";
        "";
      ]
  in
  Alcotest.(check string) "rendering" expected rendered;
  let empty_pset = Profile_set.create s in
  let ed = Decomp.build empty_pset in
  Alcotest.(check string) "empty" "(empty tree)"
    (Format.asprintf "%a" Tree.pp (Tree.build ed (Tree.default_config ed)))

let () =
  Alcotest.run "tree"
    [
      ( "structure",
        [
          Alcotest.test_case "empty" `Quick test_empty_tree;
          Alcotest.test_case "don't-care only" `Quick test_dont_care_only;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "determinized don't-cares" `Quick
            test_duplicated_dont_care_profiles;
          Alcotest.test_case "sharing shrinks" `Quick test_sharing_smaller;
          Alcotest.test_case "coords vs events" `Quick
            test_match_coords_equals_match_event;
          Alcotest.test_case "fig-1 style rendering" `Quick
            test_pp_renders_fig1_style;
          Alcotest.test_case "scale stress (800 profiles)" `Slow test_scale_stress;
          Alcotest.test_case "blowup guard" `Quick test_blowup_guard;
        ] );
      ( "oracle",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_tree_agrees_with_naive; prop_key_order_agrees_with_naive;
            prop_ops_counted;
          ] );
    ]
