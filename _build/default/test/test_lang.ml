(* The textual profile / event language. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Lang = Genas_profile.Lang
module Profile = Genas_profile.Profile
module Predicate = Genas_profile.Predicate

let schema () =
  Schema.create_exn
    [
      ("temp", Domain.float_range ~lo:(-30.0) ~hi:50.0);
      ("count", Domain.int_range ~lo:0 ~hi:1000);
      ("site", Domain.enum [ "berlin"; "potsdam"; "new-york" ]);
      ("alarm", Domain.bool_dom);
    ]

let parse_ok src =
  match Lang.parse_profile (schema ()) src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse %S: %s" src e

let parse_err src =
  match Lang.parse_profile (schema ()) src with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected parse error for %S" src

let test_operators () =
  let p = parse_ok "temp >= 35 && count < 10" in
  Alcotest.(check (list int)) "constrained" [ 0; 1 ] (Profile.constrained p);
  ignore (parse_ok "temp = 1.5");
  ignore (parse_ok "temp != 0");
  ignore (parse_ok "count <= 999");
  ignore (parse_ok "count > 0");
  ignore (parse_ok "alarm = true");
  ignore (parse_ok "site = berlin")

let test_ranges_and_sets () =
  let s = schema () in
  let p = parse_ok "temp in [10, 20)" in
  let ev t =
    Event.create_exn s
      [
        ("temp", Value.Float t); ("count", Value.Int 1);
        ("site", Value.Str "berlin"); ("alarm", Value.Bool false);
      ]
  in
  Alcotest.(check bool) "10 in" true (Profile.matches s p (ev 10.0));
  Alcotest.(check bool) "20 out" false (Profile.matches s p (ev 20.0));
  let q = parse_ok "site in {berlin, new-york}" in
  let evs site =
    Event.create_exn s
      [
        ("temp", Value.Float 0.0); ("count", Value.Int 1);
        ("site", Value.Str site); ("alarm", Value.Bool false);
      ]
  in
  Alcotest.(check bool) "berlin" true (Profile.matches s q (evs "berlin"));
  Alcotest.(check bool) "potsdam" false (Profile.matches s q (evs "potsdam"));
  ignore (parse_ok "temp in (0, 1]");
  ignore (parse_ok "count in [1, 5]")

let test_quoted_strings_and_and () =
  ignore (parse_ok "site = \"new-york\" and temp >= 0");
  ignore (parse_ok "")

let test_parse_errors () =
  parse_err "bogus >= 1";
  parse_err "temp >= ";
  parse_err "temp >= abc";
  parse_err "temp in [5, 1]";  (* empty range rejected at binding *)
  parse_err "temp in {   }";
  parse_err "temp >= 1 &";
  parse_err "temp ~ 1";
  parse_err "site = berlin extra";
  parse_err "count = 1.5"

let test_event_parse () =
  let s = schema () in
  match
    Lang.parse_event s "temp = -3.5, count = 7, site = potsdam, alarm = false"
  with
  | Error e -> Alcotest.fail e
  | Ok e ->
    Alcotest.(check bool) "temp" true
      (Value.equal (Value.Float (-3.5)) (Event.value e 0));
    Alcotest.(check bool) "count" true (Value.equal (Value.Int 7) (Event.value e 1))

let test_event_parse_errors () =
  let s = schema () in
  let err src =
    match Lang.parse_event s src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected event error: %S" src
  in
  err "temp = 1";  (* unbound attributes *)
  err "temp = 1, temp = 2, count = 1, site = berlin, alarm = true";
  err "temp >= 1, count = 7, site = berlin, alarm = false";
  err "temp = 999, count = 7, site = berlin, alarm = false"

let test_profile_roundtrip () =
  let s = schema () in
  let srcs =
    [
      "temp >= 35 && count < 10";
      "site in {berlin, potsdam} && alarm = true";
      "temp in [10, 20) && temp != 15";
    ]
  in
  List.iter
    (fun src ->
      let p = parse_ok src in
      let printed = Lang.profile_to_string s p in
      (* The printed form must itself parse to a profile matching the
         same events. *)
      let reparsed =
        (* profile_to_string prefixes "profile name(...)"; strip it. *)
        let inner =
          match String.index_opt printed '(' with
          | Some i ->
            String.sub printed (i + 1) (String.length printed - i - 2)
          | None -> printed
        in
        match Lang.parse_profile s inner with
        | Ok p -> p
        | Error e -> Alcotest.failf "reparse of %S (%S): %s" printed inner e
      in
      let rng = Genas_prng.Prng.create ~seed:55 in
      for _ = 1 to 200 do
        let e =
          Event.create_exn s
            [
              ("temp", Value.Float (Genas_prng.Prng.float_in rng ~lo:(-30.0) ~hi:50.0));
              ("count", Value.Int (Genas_prng.Prng.int rng ~bound:1001));
              ("site", Value.Str (Genas_prng.Prng.choice rng [| "berlin"; "potsdam"; "new-york" |]));
              ("alarm", Value.Bool (Genas_prng.Prng.bool rng));
            ]
        in
        if Profile.matches s p e <> Profile.matches s reparsed e then
          Alcotest.failf "roundtrip semantics differ for %S" src
      done)
    srcs

let test_event_roundtrip () =
  let s = schema () in
  let src = "temp = 1.5, count = 3, site = berlin, alarm = true" in
  match Lang.parse_event s src with
  | Error e -> Alcotest.fail e
  | Ok ev -> (
    match Lang.parse_event s (Lang.event_to_string s ev) with
    | Error e -> Alcotest.fail e
    | Ok ev' -> Alcotest.(check bool) "equal" true (Event.equal ev ev'))

(* Generated profiles survive printing and re-parsing with identical
   match semantics. *)
let prop_body_roundtrip =
  QCheck.Test.make ~name:"body_to_string/parse_profile roundtrip" ~count:150
    (QCheck.make
       QCheck.Gen.(
         Genas_testlib.Gen.schema ~max_attrs:3 () >>= fun s ->
         Genas_testlib.Gen.profile s >>= fun p ->
         Genas_testlib.Gen.events ~n:20 s >|= fun es -> (s, p, es)))
    (fun (s, p, events) ->
      let body = Lang.body_to_string s p in
      match Lang.parse_profile s body with
      | Error _ -> false
      | Ok p' ->
        List.for_all
          (fun e -> Profile.matches s p e = Profile.matches s p' e)
          events)

let test_negative_numbers_and_floats () =
  ignore (parse_ok "temp >= -30");
  ignore (parse_ok "temp <= 1e1");
  ignore (parse_ok "temp in [-30, -20]")

let () =
  Alcotest.run "lang"
    [
      ( "profiles",
        [
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "ranges and sets" `Quick test_ranges_and_sets;
          Alcotest.test_case "quoting and 'and'" `Quick test_quoted_strings_and_and;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_profile_roundtrip;
          Alcotest.test_case "negative/scientific literals" `Quick
            test_negative_numbers_and_floats;
          QCheck_alcotest.to_alcotest prop_body_roundtrip;
        ] );
      ( "events",
        [
          Alcotest.test_case "parse" `Quick test_event_parse;
          Alcotest.test_case "errors" `Quick test_event_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_event_roundtrip;
        ] );
    ]
