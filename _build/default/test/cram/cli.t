The GENAS command-line interface, driven end to end on the paper's
Example 1 profiles.

  $ cat > schema.txt <<'SCHEMA'
  > temperature : float[-30,50]
  > humidity : float[0,100]
  > radiation : float[1,100]
  > SCHEMA
  $ cat > profiles.txt <<'PROFILES'
  > P1 : temperature >= 35 && humidity >= 90
  > P2 : temperature >= 30 && humidity >= 90
  > P3 : temperature >= 30 && humidity >= 90 && radiation in [35,50]
  > P4 : temperature in [-30,-20] && humidity <= 5 && radiation in [40,100]
  > P5 : temperature >= 30 && humidity >= 80
  > PROFILES
  $ cat > events.txt <<'EVENTS'
  > temperature = 30, humidity = 90, radiation = 2
  > temperature = -25, humidity = 3, radiation = 50
  > temperature = 0, humidity = 50, radiation = 10
  > EVENTS

Matching reproduces the paper's worked example (event (30,90,2) matches
P2 and P5):

  $ ../../bin/genas_cli.exe match --schema schema.txt --profiles profiles.txt --events events.txt
  temperature = 30., humidity = 90., radiation = 2.  -> P2, P5
  temperature = -25., humidity = 3., radiation = 50. -> P4
  temperature = 0., humidity = 50., radiation = 10.  -> (no match)
  
  3 events, 10 comparisons (3.33 per event)

The planner shows Example 3's A1 selectivities (0.625 / 0.75 / 0):

  $ ../../bin/genas_cli.exe plan --schema schema.txt --profiles profiles.txt | head -4
  attributes (natural order):
    0: temperature    float[-30.,50.]  A1=0.625 A2=0.391 cells=3 d0-share=0.625
    1: humidity       float[0.,100.]  A1=0.750 A2=0.562 cells=3 d0-share=0.750
    2: radiation      float[1.,100.]  A1=0.000 A2=0.000 cells=3 d0-share=0.000

Unknown names fail cleanly:

  $ ../../bin/genas_cli.exe match --schema schema.txt --profiles profiles.txt --events events.txt --strategy nope
  genas: unknown strategy "nope"
  [1]

The catalog knows the paper's distributions:

  $ ../../bin/genas_cli.exe dists | head -3
  d1
  d10
  d11

The REPL defines everything at runtime:

  $ ../../bin/genas_cli.exe repl <<'SESSION'
  > schema env
  > temp : float[0,100]
  > end
  > broker hub env
  > sub hub alice : temp >= 30
  > pub hub temp = 50
  > quit
  > SESSION
  GENAS interactive service. 'help' lists commands.
  > schema env defined
  > broker hub on schema env
  > subscribed alice
  >   [alice] temp = 50.
  1 notification(s)
  > bye

Analytic vs simulated cost (deterministic seed):

  $ ../../bin/genas_cli.exe simulate --schema schema.txt --profiles profiles.txt --strategy v1 --attr-measure a2 --events 2000
  profiles: 5   attributes: 3   strategy: v1/a2
  analytic  (Eq. 2): 1.5231 ops/event, 0.1013 matches/event
  simulated (2000 events, converged): 1.5470 ops/event (95% CI ±0.0467), 0.1230 matches/event
