  $ cat > schema.txt <<'SCHEMA'
  > temperature : float[-30,50]
  > humidity : float[0,100]
  > radiation : float[1,100]
  > SCHEMA
  $ cat > profiles.txt <<'PROFILES'
  > P1 : temperature >= 35 && humidity >= 90
  > P2 : temperature >= 30 && humidity >= 90
  > P3 : temperature >= 30 && humidity >= 90 && radiation in [35,50]
  > P4 : temperature in [-30,-20] && humidity <= 5 && radiation in [40,100]
  > P5 : temperature >= 30 && humidity >= 80
  > PROFILES
  $ cat > events.txt <<'EVENTS'
  > temperature = 30, humidity = 90, radiation = 2
  > temperature = -25, humidity = 3, radiation = 50
  > temperature = 0, humidity = 50, radiation = 10
  > EVENTS
  $ ../../bin/genas_cli.exe match --schema schema.txt --profiles profiles.txt --events events.txt
  $ ../../bin/genas_cli.exe plan --schema schema.txt --profiles profiles.txt | head -4
  $ ../../bin/genas_cli.exe match --schema schema.txt --profiles profiles.txt --events events.txt --strategy nope
  $ ../../bin/genas_cli.exe dists | head -3
  $ ../../bin/genas_cli.exe repl <<'SESSION'
  > schema env
  > temp : float[0,100]
  > end
  > broker hub env
  > sub hub alice : temp >= 30
  > pub hub temp = 50
  > quit
  > SESSION
  $ ../../bin/genas_cli.exe simulate --schema schema.txt --profiles profiles.txt --strategy v1 --attr-measure a2 --events 2000
