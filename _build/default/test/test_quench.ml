(* Quenching: soundness (never suppresses a deliverable event) and the
   region / coverage views. *)

module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Iset = Genas_interval.Iset
module Interval = Genas_interval.Interval
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Naive = Genas_filter.Naive
module Quench = Genas_ens.Quench
module Gen = Genas_testlib.Gen

let schema () =
  Schema.create_exn
    [ ("x", Domain.int_range ~lo:0 ~hi:9); ("y", Domain.float_range ~lo:0.0 ~hi:10.0) ]

let pset_of s specs =
  let pset = Profile_set.create s in
  List.iter (fun t -> ignore (Profile_set.add pset (Profile.create_exn s t))) specs;
  pset

let test_wanted_event () =
  let s = schema () in
  let pset =
    pset_of s
      [
        [ ("x", Predicate.Le (Value.Int 3)); ("y", Predicate.Ge (Value.Float 5.0)) ];
        [ ("x", Predicate.Eq (Value.Int 7)) ];
      ]
  in
  let q = Quench.build pset in
  let ev x y = Event.create_exn s [ ("x", Value.Int x); ("y", Value.Float y) ] in
  Alcotest.(check bool) "plausible" true (Quench.wanted_event q (ev 2 6.0));
  (* x = 5 referenced by nobody: provably unmatchable. *)
  Alcotest.(check bool) "x gap" false (Quench.wanted_event q (ev 5 6.0));
  (* Profile 2 doesn't care about y, so every y is wanted. *)
  Alcotest.(check bool) "y free via don't-care" true (Quench.wanted_event q (ev 7 0.0));
  Alcotest.(check int) "suppressed counter" 1 (Quench.suppressed q)

let test_empty_set_suppresses_everything () =
  let s = schema () in
  let q = Quench.build (Profile_set.create s) in
  let ev = Event.create_exn s [ ("x", Value.Int 1); ("y", Value.Float 1.0) ] in
  Alcotest.(check bool) "nothing wanted" false (Quench.wanted_event q ev)

let test_wanted_region () =
  let s = schema () in
  let pset = pset_of s [ [ ("x", Predicate.Le (Value.Int 3)) ] ] in
  let q = Quench.build pset in
  let region lo hi = Iset.of_interval (Interval.make_exn ~lo ~hi ()) in
  Alcotest.(check bool) "overlapping region" true
    (Quench.wanted_region q ~attr:0 (region 2.0 5.0));
  Alcotest.(check bool) "disjoint region" false
    (Quench.wanted_region q ~attr:0 (region 6.0 9.0));
  (* y unconstrained (don't-care via absence? no profile constrains y
     but profile 0 exists and doesn't care) -> everything wanted. *)
  Alcotest.(check bool) "don't-care axis" true
    (Quench.wanted_region q ~attr:1 (region 0.0 1.0))

let test_coverage_share () =
  let s = schema () in
  let pset = pset_of s [ [ ("x", Predicate.Le (Value.Int 3)) ] ] in
  let q = Quench.build pset in
  Alcotest.(check (float 1e-9)) "x share 4/10" 0.4 (Quench.coverage_share q ~attr:0);
  Alcotest.(check (float 1e-9)) "y all" 1.0 (Quench.coverage_share q ~attr:1)

(* Soundness: any event matched by some profile is wanted. *)
let prop_quench_sound =
  QCheck.Test.make ~name:"quench never suppresses a match" ~count:100
    (QCheck.make (Gen.scenario ~max_attrs:3 ~max_p:10 ~n_events:30 ()))
    (fun (_, pset, events) ->
      let q = Quench.build pset in
      let naive = Naive.build pset in
      List.for_all
        (fun e ->
          Naive.match_event naive e = [] || Quench.wanted_event q e)
        events)

let () =
  Alcotest.run "quench"
    [
      ( "quench",
        [
          Alcotest.test_case "wanted_event" `Quick test_wanted_event;
          Alcotest.test_case "empty profile set" `Quick
            test_empty_set_suppresses_everything;
          Alcotest.test_case "wanted_region" `Quick test_wanted_region;
          Alcotest.test_case "coverage share" `Quick test_coverage_share;
          QCheck_alcotest.to_alcotest prop_quench_sound;
        ] );
    ]
