(** Synthetic workload generation.

    The paper's tests create profiles and events "according to a given
    distribution" (§4.3); its prototype uses equality predicates and
    don't-cares (§4.2). This module reproduces that protocol: profile
    predicate values are drawn per attribute from a profile
    distribution Pp, attributes are left don't-care with a configurable
    probability, and events are drawn coordinate-wise from the event
    distributions Pe. Range profiles (a fractional-width window around
    a drawn center) are also supported, exercising the general subrange
    machinery. *)

type profile_gen = {
  p : int;  (** number of profiles to generate *)
  dontcare : float array;
      (** per-attribute probability that a profile leaves the attribute
          unconstrained *)
  value_dists : Genas_dist.Dist.t array;
      (** Pp per attribute, on the attribute's axis *)
  range_width : float option;
      (** [None]: equality predicates (the paper's prototype).
          [Some w]: a range of fractional width [w] of the axis,
          centered on the drawn value, clamped to the axis. *)
}

val normalized_schema : ?attrs:int -> ?points:int -> unit -> Genas_model.Schema.t
(** The evaluation schema: [attrs] (default 1) integer attributes
    ["a0"…] with the normalized domain [[0, points-1]] (default 100) —
    Fig. 3's "normalized attribute domain". *)

val gen_profiles :
  Genas_prng.Prng.t -> Genas_model.Schema.t -> profile_gen ->
  Genas_profile.Profile_set.t
(** Draw the profile set. All-don't-care draws are redrawn (the
    paper's profile sets always constrain something).

    @raise Invalid_argument on arity mismatches or [p <= 0]. *)

val gen_covering_profiles :
  Genas_prng.Prng.t -> Genas_model.Schema.t -> p:int -> ?roots:int ->
  ?width:float -> unit -> Genas_profile.Profile_set.t
(** A covering-heavy population over an integer schema, the
    subscription-aggregation workload (docs/SCALING.md): the first
    [min roots p] profiles (default [p/8], capped at 512) are broad
    single-attribute windows of fractional [width] (default 1/16),
    round-robin over the attributes; every further profile is an
    equality specialization
    drawn {e inside} a uniformly chosen root's window (optionally
    narrowed further on other attributes), so it is covered by its
    root by construction. The covering-minimal set therefore stays at
    [roots] while [p] grows without bound.

    @raise Invalid_argument if [p <= 0] or [width] is outside (0, 1]. *)

val event_coords :
  Genas_prng.Prng.t -> Genas_dist.Dist.t array -> float array
(** One event as raw coordinates (natural attribute order). *)

val dists_of_names :
  Genas_model.Schema.t -> string list -> Genas_dist.Dist.t array
(** Catalog lookups instantiated on each attribute's axis, one name per
    attribute.

    @raise Invalid_argument on unknown names or arity mismatch. *)
