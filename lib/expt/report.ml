type table = {
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let table ~title ~columns ?(notes = []) rows = { title; columns; rows; notes }

let render ppf t =
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then
          widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure t.columns;
  List.iter measure t.rows;
  let pad i cell =
    let w = if i < ncols then widths.(i) else String.length cell in
    cell ^ String.make (max 0 (w - String.length cell)) ' '
  in
  let emit_row row =
    Format.fprintf ppf "  %s@\n"
      (String.concat "  " (List.mapi pad row) |> String.trim
      |> fun s -> s)
  in
  Format.fprintf ppf "@\n== %s ==@\n" t.title;
  emit_row t.columns;
  Format.fprintf ppf "  %s@\n"
    (String.concat "--"
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter emit_row t.rows;
  List.iter (fun n -> Format.fprintf ppf "  note: %s@\n" n) t.notes;
  Format.fprintf ppf "@."

let print t = render Format.std_formatter t

(* Formatting boundary for possibly-undefined averages: Ops.per_event /
   Ops.per_match / Cost.per_match are nan on a zero denominator, and a
   literal "nan" must never reach a table, CSV, or exporter. *)
let f2 v = if Float.is_finite v then Printf.sprintf "%.2f" v else "n/a"

let f4 v = if Float.is_finite v then Printf.sprintf "%.4f" v else "n/a"

let bars ~title ~unit_label entries =
  let vmax =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 entries
  in
  let rows =
    List.map
      (fun (label, v) ->
        let len =
          if vmax <= 0.0 then 0
          else int_of_float (Float.round (40.0 *. v /. vmax))
        in
        [ label; f2 v; String.make len '#' ])
      entries
  in
  table ~title ~columns:[ "series"; unit_label; "" ] rows

let sparkline values =
  let glyphs = [| " "; "_"; "-"; "="; "+"; "*"; "%"; "#" |] in
  let vmax = List.fold_left Float.max 0.0 values in
  if vmax <= 0.0 then String.concat "" (List.map (fun _ -> " ") values)
  else
    String.concat ""
      (List.map
         (fun v ->
           let i =
             int_of_float (Float.round (7.0 *. Float.max 0.0 v /. vmax))
           in
           glyphs.(min 7 i))
         values)

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line t.columns :: List.map line t.rows) ^ "\n"
