module Prng = Genas_prng.Prng
module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Dist = Genas_dist.Dist
module Catalog = Genas_dist.Catalog
module Predicate = Genas_profile.Predicate
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set

type profile_gen = {
  p : int;
  dontcare : float array;
  value_dists : Dist.t array;
  range_width : float option;
}

let normalized_schema ?(attrs = 1) ?(points = 100) () =
  Schema.create_exn
    (List.init attrs (fun i ->
         (Printf.sprintf "a%d" i, Domain.int_range ~lo:0 ~hi:(points - 1))))

let value_of_coord dom c = Axis.value dom c

let gen_profiles rng schema gen =
  let n = Schema.arity schema in
  if gen.p <= 0 then invalid_arg "Workload.gen_profiles: p must be positive";
  if Array.length gen.dontcare <> n || Array.length gen.value_dists <> n then
    invalid_arg "Workload.gen_profiles: arity mismatch";
  let pset = Profile_set.create schema in
  let draw_tests () =
    List.concat
      (List.init n (fun attr ->
           if Prng.bernoulli rng ~p:gen.dontcare.(attr) then []
           else begin
             let a = Schema.attribute schema attr in
             let axis = Axis.of_domain a.Schema.domain in
             let c = Dist.sample rng gen.value_dists.(attr) in
             match gen.range_width with
             | None -> [ (a.Schema.name, Predicate.Eq (value_of_coord a.Schema.domain c)) ]
             | Some w ->
               let half = w *. (axis.Axis.hi -. axis.Axis.lo) /. 2.0 in
               let lo = Float.max axis.Axis.lo (c -. half) in
               let hi = Float.min axis.Axis.hi (c +. half) in
               [
                 ( a.Schema.name,
                   Predicate.Between
                     {
                       lo = value_of_coord a.Schema.domain lo;
                       lo_closed = true;
                       hi = value_of_coord a.Schema.domain hi;
                       hi_closed = true;
                     } );
               ]
           end))
  in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < gen.p do
    incr attempts;
    if !attempts > gen.p * 100 then
      invalid_arg
        "Workload.gen_profiles: cannot draw constraining profiles (all \
         don't-care probabilities too high?)";
    let tests = draw_tests () in
    if tests <> [] then begin
      match Profile.create ~name:(Printf.sprintf "w%d" !added) schema tests with
      | Ok p ->
        ignore (Profile_set.add pset p);
        incr added
      | Error _ -> ()
    end
  done;
  pset

let gen_covering_profiles rng schema ~p ?roots ?(width = 0.0625) () =
  let n = Schema.arity schema in
  if p <= 0 then
    invalid_arg "Workload.gen_covering_profiles: p must be positive";
  if width <= 0.0 || width > 1.0 then
    invalid_arg "Workload.gen_covering_profiles: width must be in (0, 1]";
  let roots =
    match roots with
    | Some r -> max 1 (min r p)
    | None -> max 1 (min 512 (p / 8))
  in
  let pset = Profile_set.create schema in
  let bounds attr =
    let axis = Axis.of_domain (Schema.attribute schema attr).Schema.domain in
    ( int_of_float (Float.ceil axis.Axis.lo),
      int_of_float (Float.floor axis.Axis.hi) )
  in
  (* Broad roots: one window of fractional [width] on one attribute,
     round-robin over the schema. *)
  let windows =
    Array.init roots (fun r ->
        let attr = r mod n in
        let lo_i, hi_i = bounds attr in
        let w = max 1 (int_of_float (width *. float_of_int (hi_i - lo_i + 1))) in
        let lo = Prng.int_in rng ~lo:lo_i ~hi:(max lo_i (hi_i - w)) in
        (attr, lo, min hi_i (lo + w - 1)))
  in
  Array.iteri
    (fun r (attr, lo, hi) ->
      let a = Schema.attribute schema attr in
      ignore
        (Profile_set.add pset
           (Profile.create_exn ~name:(Printf.sprintf "root%d" r) schema
              [
                ( a.Schema.name,
                  Predicate.Between
                    {
                      lo = Value.Int lo;
                      lo_closed = true;
                      hi = Value.Int hi;
                      hi_closed = true;
                    } );
              ])))
    windows;
  (* Specializations: an equality inside a uniformly chosen root's
     window, optionally narrowed further on other attributes — always
     covered by the root, whatever else they constrain. *)
  for i = roots to p - 1 do
    let attr, lo, hi = windows.(Prng.int rng ~bound:roots) in
    let a = Schema.attribute schema attr in
    let extra =
      List.concat
        (List.init n (fun j ->
             if j = attr || not (Prng.bernoulli rng ~p:0.3) then []
             else begin
               let lo_j, hi_j = bounds j in
               let aj = Schema.attribute schema j in
               [
                 ( aj.Schema.name,
                   Predicate.Eq (Value.Int (Prng.int_in rng ~lo:lo_j ~hi:hi_j))
                 );
               ]
             end))
    in
    ignore
      (Profile_set.add pset
         (Profile.create_exn ~name:(Printf.sprintf "spec%d" i) schema
            ((a.Schema.name, Predicate.Eq (Value.Int (Prng.int_in rng ~lo ~hi)))
            :: extra)))
  done;
  pset

let event_coords rng dists = Array.map (fun d -> Dist.sample rng d) dists

let dists_of_names schema names =
  let n = Schema.arity schema in
  if List.length names <> n then
    invalid_arg "Workload.dists_of_names: arity mismatch";
  Array.of_list
    (List.mapi
       (fun i name ->
         let axis = Axis.of_domain (Schema.attribute schema i).Schema.domain in
         (Catalog.find_exn name) axis)
       names)
