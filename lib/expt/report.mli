(** Plain-text experiment reports: aligned tables and ASCII bar
    groups, the output format of the benchmark harness. *)

type table = {
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

val table :
  title:string -> columns:string list -> ?notes:string list ->
  string list list -> table

val render : Format.formatter -> table -> unit
(** Column-aligned rendering with a rule under the header. *)

val print : table -> unit
(** [render] to stdout. *)

val f2 : float -> string
(** Two-decimal float cell; ["n/a"] for nan/infinite values (the
    zero-denominator averages of [Ops] and [Cost]), so no "nan" token
    can reach a table or CSV. *)

val f4 : float -> string
(** Four decimals, same non-finite guard as {!f2}. *)

val bars :
  title:string -> unit_label:string -> (string * float) list -> table
(** A one-column bar chart as a table: each value is shown numerically
    and as a proportional bar, for the figure-style outputs. *)

val sparkline : float list -> string
(** Eight-level unicode sparkline of a series (used for Fig. 3's
    distribution shapes). *)

val to_csv : table -> string
(** RFC-4180-style CSV of the header and rows (notes omitted), for
    downstream plotting. *)
