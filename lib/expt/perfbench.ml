module Prng = Genas_prng.Prng
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Event = Genas_model.Event
module Dist = Genas_dist.Dist
module Shape = Genas_dist.Shape
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Flat = Genas_filter.Flat
module Pool = Genas_filter.Pool
module Shard = Genas_filter.Shard
module Naive = Genas_filter.Naive
module Counting = Genas_filter.Counting
module Ops = Genas_filter.Ops
module Stats = Genas_core.Stats
module Selectivity = Genas_core.Selectivity
module Reorder = Genas_core.Reorder
module Clock = Genas_obs.Clock
module Json = Genas_obs.Json
module Trace = Genas_obs.Trace
module Profile_set = Genas_profile.Profile_set
module Engine = Genas_core.Engine
module Broker = Genas_ens.Broker
module Broker_server = Genas_ens.Broker_server
module Broker_client = Genas_ens.Broker_client
module Transport = Genas_ens.Transport

type result = {
  name : string;
  matcher : string;
  strategy : string;
  domains : int;
  timed_events : int;
  events_per_sec : float;
  comparisons_per_event : float;
  matches_per_event : float;
}

type t = {
  profiles : int;
  attributes : int;
  event_pool : int;
  seed : int;
  recommended_domains : int;
  cpu_count : int;
  results : result list;
}

(* Host core count, so BENCH_*.json scaling claims are interpretable:
   a pool row that shows no speedup on a 1-core host is expected, not
   a regression. Linux exposes it in /proc/cpuinfo; elsewhere fall
   back to the runtime's recommendation. *)
let host_cpu_count () =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> Domain.recommended_domain_count ()
  | ic ->
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if
           String.length line >= 9
           && String.equal (String.sub line 0 9) "processor"
         then incr n
       done
     with End_of_file -> ());
    close_in ic;
    if !n > 0 then !n else Domain.recommended_domain_count ()

let pool_size = 1024 (* power of two: the wrap index is a mask *)

(* One benchmark entry: [timed n] processes ~n events as fast as the
   matcher allows (returning the exact count), [counted ()] replays the
   event pool once under an [Ops] counter for the deterministic
   comparisons/event figure. *)
type entry = {
  e_name : string;
  e_matcher : string;
  e_strategy : string;
  e_domains : int;
  timed : int -> int;
  counted : unit -> Ops.t;
}

let measure ~events entry =
  ignore (entry.timed (min pool_size events)) (* warmup *);
  let t0 = Clock.now_ns () in
  let n = entry.timed events in
  let dt = Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e9 in
  let ops = entry.counted () in
  {
    name = entry.e_name;
    matcher = entry.e_matcher;
    strategy = entry.e_strategy;
    domains = entry.e_domains;
    timed_events = n;
    events_per_sec = (if dt > 0.0 then float_of_int n /. dt else 0.0);
    comparisons_per_event =
      float_of_int ops.Ops.comparisons /. float_of_int ops.Ops.events;
    matches_per_event =
      float_of_int ops.Ops.matches /. float_of_int ops.Ops.events;
  }

let run ?(profiles = 500) ?(seed = 99) ?(events = 50_000) ?domains () =
  let attrs = 3 in
  let schema = Workload.normalized_schema ~attrs ~points:100 () in
  let axes =
    Array.init attrs (fun i ->
        Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let rng = Prng.create ~seed in
  let pset =
    Workload.gen_profiles rng schema
      {
        Workload.p = profiles;
        dontcare = Array.make attrs 0.3;
        value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
        range_width = None;
      }
  in
  let decomp = Decomp.build pset in
  let stats = Stats.create decomp in
  let dists = Array.map Dist.uniform axes in
  let pool_events =
    Array.init pool_size (fun _ ->
        let coords = Workload.event_coords rng dists in
        Event.of_values_exn schema
          (Array.mapi
             (fun i c -> Axis.value (Schema.attribute schema i).Schema.domain c)
             coords))
  in
  let mask = pool_size - 1 in
  let naive = Naive.build pset in
  let counting = Counting.build pset in
  let v1a2 =
    {
      Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A2, `Descending);
      value_choice = `Measure Selectivity.V1;
    }
  in
  let binary =
    { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary }
  in
  let trees =
    [
      ("natural", Tree.build decomp (Tree.default_config decomp));
      ("v1+a2", Reorder.build stats v1a2);
      ("binary", Reorder.build stats binary);
    ]
  in
  (* Per-event loop over an event pool with wraparound, the shape of
     every single-event entry below. *)
  let per_event_over evs f n =
    for i = 0 to n - 1 do
      f evs.(i land mask)
    done;
    n
  in
  let counted_per_event_over evs f () =
    let ops = Ops.create () in
    Array.iter (f ops) evs;
    ops
  in
  let per_event f = per_event_over pool_events f in
  let counted_per_event f = counted_per_event_over pool_events f in
  (* Whole-pool passes for the batch entries: ~n events rounded up to
     full passes so each pass matches the same 1024 events. *)
  let passes n = (n + pool_size - 1) / pool_size in
  let entry ?(domains = 1) name matcher strategy timed counted =
    {
      e_name = name;
      e_matcher = matcher;
      e_strategy = strategy;
      e_domains = domains;
      timed;
      counted;
    }
  in
  let baseline_entries =
    [
      entry "naive" "naive" "n/a"
        (per_event (fun e -> ignore (Naive.match_event naive e)))
        (counted_per_event (fun ops e -> ignore (Naive.match_event ~ops naive e)));
      entry "counting" "counting" "n/a"
        (per_event (fun e -> ignore (Counting.match_event counting e)))
        (counted_per_event (fun ops e ->
             ignore (Counting.match_event ~ops counting e)));
    ]
  in
  let tree_entries =
    List.concat_map
      (fun (sname, tree) ->
        let flat = Flat.compile tree in
        let cur = Flat.cursor flat in
        [
          entry ("tree/" ^ sname) "tree" sname
            (per_event (fun e -> ignore (Tree.match_event tree e)))
            (counted_per_event (fun ops e ->
                 ignore (Tree.match_event ~ops tree e)));
          entry ("flat/" ^ sname) "flat" sname
            (per_event (fun e -> ignore (Flat.match_into flat cur e)))
            (counted_per_event (fun ops e ->
                 ignore (Flat.match_into ~ops flat cur e)));
        ])
      trees
  in
  let batch_tree = List.assoc "v1+a2" trees in
  let batch_flat = Flat.compile batch_tree in
  let batch_cur = Flat.cursor batch_flat in
  let batch_entry =
    entry "flat-batch/v1+a2" "flat-batch" "v1+a2"
      (fun n ->
        let k = passes n in
        for _ = 1 to k do
          Flat.match_batch batch_flat batch_cur pool_events
            ~f:(fun _ ~ids:_ ~len:_ -> ())
        done;
        k * pool_size)
      (fun () ->
        let ops = Ops.create () in
        Flat.match_batch ~ops batch_flat batch_cur pool_events
          ~f:(fun _ ~ids:_ ~len:_ -> ());
        ops)
  in
  (* Packed-batch kernel: the whole pool resolved once into the int
     image, then matched from int arrays only. *)
  let packed = Flat.pack_batch batch_flat pool_events in
  let packed_entry =
    entry "flat-packed/v1+a2" "flat-packed" "v1+a2"
      (fun n ->
        let k = passes n in
        for _ = 1 to k do
          for i = 0 to pool_size - 1 do
            ignore (Flat.match_packed_into batch_flat batch_cur packed i)
          done
        done;
        k * pool_size)
      (fun () ->
        let ops = Ops.create () in
        for i = 0 to pool_size - 1 do
          ignore (Flat.match_packed_into ~ops batch_flat batch_cur packed i)
        done;
        ops)
  in
  (* Skewed "TV-style" workload: events peaked on a narrow hot region
     (Fig. 5's "90 % high" family), so a few flat nodes absorb most
     visits — the case the hotness-guided relayout exists for. The
     layout row matches the same events through the same tree after an
     odds-on relayout driven by a recorded pass over the pool;
     comparison counters are bit-identical by construction, only the
     memory order (and the wall clock) may move. The skew rows use
     their own 8x-denser profile population: a node table that
     outgrows the fast cache levels is exactly where packing the hot
     subset contiguously pays, and at the base 500 profiles the whole
     image fits in cache and the effect drowns in host jitter. *)
  let skew_dists = Array.map (Shape.peak ~at:0.85 ~mass:0.9 ~width:0.05) axes in
  let skew_flat =
    let skew_pset =
      Workload.gen_profiles rng schema
        {
          Workload.p = profiles * 8;
          dontcare = Array.make attrs 0.3;
          value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
          range_width = None;
        }
    in
    let skew_stats = Stats.create (Decomp.build skew_pset) in
    Flat.compile (Reorder.build skew_stats v1a2)
  in
  let skew_events =
    Array.init pool_size (fun _ ->
        let coords = Workload.event_coords rng skew_dists in
        Event.of_values_exn schema
          (Array.mapi
             (fun i c -> Axis.value (Schema.attribute schema i).Schema.domain c)
             coords))
  in
  let skew_layout_flat =
    let r = Flat.recorder skew_flat in
    let rc = Flat.cursor skew_flat in
    Array.iter
      (fun e -> ignore (Flat.match_into_recorded skew_flat rc r e))
      skew_events;
    Flat.relayout skew_flat (Flat.node_visits r)
  in
  let skew_entries =
    List.map
      (fun (name, flat) ->
        let cur = Flat.cursor flat in
        entry name (String.sub name 0 (String.index name '/')) "v1+a2"
          (per_event_over skew_events (fun e ->
               ignore (Flat.match_into flat cur e)))
          (counted_per_event_over skew_events (fun ops e ->
               ignore (Flat.match_into ~ops flat cur e))))
      [
        ("flat-skew/v1+a2", skew_flat);
        ("flat-skew-layout/v1+a2", skew_layout_flat);
      ]
  in
  let recommended = Domain.recommended_domain_count () in
  let live_pools = ref [] in
  let new_pool ?persistent d =
    let p = Pool.create ~domains:d ?persistent () in
    live_pools := p :: !live_pools;
    p
  in
  (* Always record 1- and 2-domain rows — on a 1-core host they show
     (honestly) no speedup, but the perf-trajectory file keeps the same
     shape across hosts. [?domains] overrides the whole list. *)
  let pool_domains =
    match domains with
    | Some ds -> List.sort_uniq Int.compare ds
    | None -> List.sort_uniq Int.compare [ 1; 2; min 4 (max 2 recommended) ]
  in
  let pool_entries =
    List.map
      (fun d ->
        let p = new_pool d in
        entry
          (Printf.sprintf "pool/v1+a2/d%d" d)
          "pool" "v1+a2" ~domains:d
          (fun n ->
            let k = passes n in
            for _ = 1 to k do
              ignore (Pool.match_batch p batch_flat pool_events)
            done;
            k * pool_size)
          (fun () ->
            let ops = Ops.create () in
            ignore (Pool.match_batch ~ops p batch_flat pool_events);
            ops))
      pool_domains
  in
  (* The retired spawn-per-batch path, kept one release behind
     [?persistent:false]: a regression row so the persistent pool's
     win over fresh-domain spawning stays measured. *)
  let spawn_entry =
    let p = new_pool ~persistent:false 2 in
    entry "pool-spawn/v1+a2/d2" "pool-spawn" "v1+a2" ~domains:2
      (fun n ->
        let k = passes n in
        for _ = 1 to k do
          ignore (Pool.match_batch p batch_flat pool_events)
        done;
        k * pool_size)
      (fun () ->
        let ops = Ops.create () in
        ignore (Pool.match_batch ~ops p batch_flat pool_events);
        ops)
  in
  (* The second parallel axis: profile-partition shards fanned out
     across one persistent pool. Shards compile their own (natural
     order) trees, so comparison counts differ from the unsharded
     matcher by design. *)
  let shard_pool = new_pool (min 4 (max 2 recommended)) in
  let shard_entries =
    List.map
      (fun s ->
        let sh = Shard.build ~shards:s pset in
        entry
          (Printf.sprintf "shard/natural/s%d" s)
          "shard" "natural" ~domains:(Pool.domains shard_pool)
          (fun n ->
            let k = passes n in
            for _ = 1 to k do
              ignore (Pool.match_shards shard_pool sh pool_events)
            done;
            k * pool_size)
          (fun () ->
            let ops = Ops.create () in
            ignore (Pool.match_shards ~ops shard_pool sh pool_events);
            ops))
      [ 2; 4 ]
  in
  (* Full publish path (matching + supervised delivery to null
     handlers) through a broker: untraced, with a never-sampling
     tracer attached ("traced-off" — the disabled-tracing cost the
     cram suite asserts is noise), and fully traced. The timed broker
     accumulates state across passes; [counted] replays the pool once
     through a fresh broker so the comparison counters stay exact. *)
  let make_broker tracer =
    let b =
      match tracer with
      | None -> Broker.create ~spec:v1a2 schema
      | Some sample ->
        Broker.create ~spec:v1a2
          ~tracer:(Trace.create ~sample ~seed:(seed + 1) ())
          schema
    in
    Profile_set.iter pset (fun id p ->
        ignore
          (Broker.subscribe b ~subscriber:(string_of_int id) ~profile:p
             (fun _ -> ())));
    b
  in
  let publish_entries =
    List.map
      (fun (variant, tracer) ->
        let b = make_broker tracer in
        entry ("publish/" ^ variant) "publish" "v1+a2"
          (per_event (fun e -> ignore (Broker.publish b e)))
          (fun () ->
            let fresh = make_broker tracer in
            Array.iter (fun e -> ignore (Broker.publish fresh e)) pool_events;
            Broker.ops fresh))
      [ ("untraced", None); ("traced-off", Some 0.0); ("traced", Some 1.0) ]
  in
  (* Networked publish path: a loopback Broker_server + Broker_client
     pair over a Unix socket — each publish is one full wire round
     trip (encode, checksum, kernel, decode, match, supervised
     delivery, ack). The traced-off row attaches a never-sampling
     tracer to both ends: the disabled-tracing overhead on the
     networked path, which the cram suite pins as noise. Matching runs
     on the server's broker (the usual topology); [counted] replays
     the pool through an identically subscribed local broker, because
     the wire never changes what the matcher compares. *)
  let live_net = ref [] in
  let net_publish_entries =
    List.map
      (fun (variant, sample) ->
        let path = Filename.temp_file "genas_bench_net" ".sock" in
        Sys.remove path;
        let addr = Transport.Unix_sock path in
        let tracer () =
          Option.map (fun s -> Trace.create ~sample:s ~seed:(seed + 2) ()) sample
        in
        let b = Broker.create ~spec:v1a2 schema in
        Profile_set.iter pset (fun id p ->
            ignore
              (Broker.subscribe b ~subscriber:(string_of_int id) ~profile:p
                 (fun _ -> ())));
        let srv =
          Broker_server.create ~name:"bench-srv" ~heartbeat:None
            ?tracer:(tracer ()) ~broker:b addr
        in
        Broker_server.start srv;
        let c =
          match
            Broker_client.connect ~name:"bench-cli" ~heartbeat:None
              ?tracer:(tracer ()) schema addr
          with
          | Ok c -> c
          | Error e -> failwith ("perfbench: net publish connect: " ^ e)
        in
        live_net :=
          (fun () ->
            Broker_client.close c;
            Broker_server.stop srv;
            Broker.close b)
          :: !live_net;
        entry ("publish/" ^ variant) "publish-net" "v1+a2"
          (per_event (fun e -> ignore (Broker_client.publish c e)))
          (fun () ->
            let fresh = make_broker sample in
            Array.iter (fun e -> ignore (Broker.publish fresh e)) pool_events;
            Broker.ops fresh))
      [ ("net-untraced", None); ("net-traced-off", Some 0.0) ]
  in
  let results =
    List.map (measure ~events)
      (baseline_entries @ tree_entries
      @ [ batch_entry; packed_entry ]
      @ skew_entries @ publish_entries @ net_publish_entries @ pool_entries
      @ [ spawn_entry ] @ shard_entries)
  in
  (* Pools own domains; release them before returning (the at_exit
     hook would catch them anyway, but a long-lived caller should not
     keep benchmark workers parked). *)
  List.iter (fun f -> f ()) !live_net;
  List.iter Pool.shutdown !live_pools;
  {
    profiles;
    attributes = attrs;
    event_pool = pool_size;
    seed;
    recommended_domains = recommended;
    cpu_count = host_cpu_count ();
    results;
  }

(* ------------------------------------------------------------------ *)
(* Profile-count scaling: subscribe/unsubscribe latency and publish
   throughput on the covering-heavy workload, aggregation on vs the
   plain rebuild-per-churn engine.                                     *)

type scale_point = {
  population : int;
  aggregated : bool;
  subscribe_ns : float;
  unsubscribe_ns : float;
  publish_eps : float;
  absorbed : int;
  covering_roots : int;
  epoch_swaps : int;
}

type scale = {
  sc_seed : int;
  sc_samples : int;
  sc_baseline_samples : int;
  sc_events : int;
  sc_baseline_max : int;
  sc_points : scale_point list;
}

let scale ?(points = [ 1_000; 10_000; 100_000; 1_000_000 ]) ?(seed = 99)
    ?(events = 2_048) ?(samples = 32) ?(baseline_samples = 2)
    ?(baseline_max = 2_000) () =
  let attrs = 3 in
  let schema = Workload.normalized_schema ~attrs ~points:100 () in
  let axes =
    Array.init attrs (fun i ->
        Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let measure_point ~population ~samples ~aggregate =
    let rng = Prng.create ~seed in
    let source = Workload.gen_covering_profiles rng schema ~p:population () in
    let profs =
      let acc = ref [] in
      Profile_set.iter source (fun _ pr -> acc := pr :: !acc);
      Array.of_list (List.rev !acc)
    in
    let dists = Array.map Dist.uniform axes in
    let pool_events =
      Array.init pool_size (fun _ ->
          let coords = Workload.event_coords rng dists in
          Event.of_values_exn schema
            (Array.mapi
               (fun i c ->
                 Axis.value (Schema.attribute schema i).Schema.domain c)
               coords))
    in
    let mask = pool_size - 1 in
    let ev_i = ref 0 in
    let next_ev () =
      let e = pool_events.(!ev_i land mask) in
      incr ev_i;
      e
    in
    (* A modest delta cap so the curve actually exercises epoch swaps:
       structural churn (new lattice roots, root removals) crosses the
       cap repeatedly as the population grows. *)
    let engine =
      Engine.create ~aggregate ~delta_cap:64 (Profile_set.create schema)
    in
    (* Subscribe latency, sampled during growth. Each sampled op is a
       subscribe followed by one matched event — on the plain engine
       the event realizes the full replan a rebuild-per-churn service
       pays, on the aggregated engine it exercises whatever the churn
       actually left pending (usually nothing). *)
    let stride = max 1 (population / samples) in
    let sub_ns = ref 0.0 and sub_n = ref 0 in
    Array.iteri
      (fun i pr ->
        if (i + 1) mod stride = 0 then begin
          let t0 = Clock.now_ns () in
          ignore (Engine.add_profile engine pr);
          ignore (Engine.match_event engine (next_ev ()));
          sub_ns :=
            !sub_ns +. Int64.to_float (Int64.sub (Clock.now_ns ()) t0);
          incr sub_n
        end
        else ignore (Engine.add_profile engine pr))
      profs;
    (* Unsubscribe latency over spread-out victims (roots included, so
       dissolution and re-placement are exercised); each victim is
       re-added afterwards to keep the population size fixed. *)
    let churn = min samples (max 1 (population / 4)) in
    let unsub_ns = ref 0.0 and unsub_n = ref 0 in
    for k = 0 to churn - 1 do
      let victim = k * (population / churn) in
      let t0 = Clock.now_ns () in
      ignore (Engine.remove_profile engine victim);
      ignore (Engine.match_event engine (next_ev ()));
      unsub_ns := !unsub_ns +. Int64.to_float (Int64.sub (Clock.now_ns ()) t0);
      incr unsub_n;
      ignore (Engine.add_profile engine profs.(victim))
    done;
    Array.iter (fun e -> ignore (Engine.match_event engine e)) pool_events;
    let t0 = Clock.now_ns () in
    for _ = 1 to events do
      ignore (Engine.match_event engine (next_ev ()))
    done;
    let dt = Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e9 in
    {
      population;
      aggregated = aggregate;
      subscribe_ns = !sub_ns /. float_of_int (max 1 !sub_n);
      unsubscribe_ns = !unsub_ns /. float_of_int (max 1 !unsub_n);
      publish_eps = (if dt > 0.0 then float_of_int events /. dt else 0.0);
      absorbed = Engine.absorbed_profiles engine;
      covering_roots = Engine.lattice_roots engine;
      epoch_swaps = Engine.epoch engine;
    }
  in
  let sc_points =
    List.concat_map
      (fun population ->
        let agg = measure_point ~population ~samples ~aggregate:true in
        if population <= baseline_max then
          (* Each sampled baseline op realizes a full replan — seconds
             of wall clock on the covering-heavy workload even at 10^3 —
             so the plain engine gets only [baseline_samples] of them. *)
          [
            agg;
            measure_point ~population ~samples:baseline_samples
              ~aggregate:false;
          ]
        else [ agg ])
      (List.sort_uniq Int.compare points)
  in
  {
    sc_seed = seed;
    sc_samples = samples;
    sc_baseline_samples = baseline_samples;
    sc_events = events;
    sc_baseline_max = baseline_max;
    sc_points;
  }

(* The scaling block deliberately avoids the "name" / "profiles" /
   "events_per_sec" / "comparisons_per_event" keys the cram suite
   counts in the classic results, so attaching it never disturbs those
   pins. *)
let scale_to_json sc =
  let point_json p =
    Json.Obj
      [
        ("population", Json.Int p.population);
        ("aggregated", Json.Bool p.aggregated);
        ("subscribe_ns", Json.number p.subscribe_ns);
        ("unsubscribe_ns", Json.number p.unsubscribe_ns);
        ("publish_eps", Json.number p.publish_eps);
        ("absorbed", Json.Int p.absorbed);
        ("covering_roots", Json.Int p.covering_roots);
        ("epoch_swaps", Json.Int p.epoch_swaps);
      ]
  in
  Json.Obj
    [
      ("seed", Json.Int sc.sc_seed);
      ("samples", Json.Int sc.sc_samples);
      ("baseline_samples", Json.Int sc.sc_baseline_samples);
      ("timing_events", Json.Int sc.sc_events);
      ("baseline_max", Json.Int sc.sc_baseline_max);
      ("points", Json.List (List.map point_json sc.sc_points));
    ]

let find_eps t name =
  List.find_map
    (fun r -> if r.name = name then Some r.events_per_sec else None)
    t.results

let speedup t ~num ~den =
  match (find_eps t num, find_eps t den) with
  | Some a, Some b when b > 0.0 -> Some (a /. b)
  | _ -> None

let pool_peak t =
  List.filter (fun r -> r.matcher = "pool") t.results
  |> List.fold_left
       (fun acc r ->
         match acc with
         | Some best when best.events_per_sec >= r.events_per_sec -> acc
         | _ -> Some r)
       None

let to_json ?scale:sc t =
  let result_json r =
    Json.Obj
      [
        ("name", Json.Str r.name);
        ("matcher", Json.Str r.matcher);
        ("strategy", Json.Str r.strategy);
        ("domains", Json.Int r.domains);
        ("timed_events", Json.Int r.timed_events);
        ("events_per_sec", Json.number r.events_per_sec);
        ("comparisons_per_event", Json.number r.comparisons_per_event);
        ("matches_per_event", Json.number r.matches_per_event);
      ]
  in
  let derived =
    let field name v =
      (name, match v with Some s -> Json.number s | None -> Json.Null)
    in
    let pool_speedup =
      match (pool_peak t, find_eps t "pool/v1+a2/d1") with
      | Some peak, Some d1 when d1 > 0.0 -> Some (peak.events_per_sec /. d1)
      | _ -> None
    in
    Json.Obj
      [
        field "flat_vs_tree" (speedup t ~num:"flat/v1+a2" ~den:"tree/v1+a2");
        field "flat_batch_vs_tree"
          (speedup t ~num:"flat-batch/v1+a2" ~den:"tree/v1+a2");
        field "packed_vs_batch"
          (speedup t ~num:"flat-packed/v1+a2" ~den:"flat-batch/v1+a2");
        field "layout_vs_default"
          (speedup t ~num:"flat-skew-layout/v1+a2" ~den:"flat-skew/v1+a2");
        field "publish_traced_off_vs_untraced"
          (speedup t ~num:"publish/traced-off" ~den:"publish/untraced");
        field "publish_traced_vs_untraced"
          (speedup t ~num:"publish/traced" ~den:"publish/untraced");
        field "publish_net_traced_off_vs_untraced"
          (speedup t ~num:"publish/net-traced-off" ~den:"publish/net-untraced");
        field "pool_peak_vs_1_domain" pool_speedup;
        field "pool_persistent_vs_spawn_d2"
          (speedup t ~num:"pool/v1+a2/d2" ~den:"pool-spawn/v1+a2/d2");
        ( "pool_peak_domains",
          match pool_peak t with
          | Some r -> Json.Int r.domains
          | None -> Json.Null );
      ]
  in
  Json.Obj
    ([
       ("bench", Json.Str "genas-perf");
       ("schema_version", Json.Int 1);
       ( "workload",
         Json.Obj
           [
             ("profiles", Json.Int t.profiles);
             ("attributes", Json.Int t.attributes);
             ("event_pool", Json.Int t.event_pool);
             ("seed", Json.Int t.seed);
           ] );
       ( "host",
         Json.Obj
           [
             ("recommended_domains", Json.Int t.recommended_domains);
             ("cpu_count", Json.Int t.cpu_count);
             ( "scaling_note",
               if t.cpu_count <= 1 then
                 Json.Str
                   "single-core host: multi-domain rows cannot show \
                    wall-clock scaling; per-domain entries recorded for \
                    cross-host comparison"
               else Json.Null );
           ] );
       ("results", Json.List (List.map result_json t.results));
       ("derived", derived);
     ]
    @ match sc with None -> [] | Some s -> [ ("scaling", scale_to_json s) ])

let table t =
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          string_of_int r.domains;
          Printf.sprintf "%.0f" r.events_per_sec;
          Report.f2 r.comparisons_per_event;
          Report.f2 r.matches_per_event;
        ])
      t.results
  in
  Report.table ~title:"Matcher throughput (wall clock)"
    ~columns:[ "matcher"; "domains"; "events/s"; "cmp/event"; "match/event" ]
    ~notes:
      [
        Printf.sprintf
          "%d profiles, %d attributes, uniform events, seed %d; host has \
           %d core(s), recommends %d domain(s)"
          t.profiles t.attributes t.seed t.cpu_count t.recommended_domains;
      ]
    rows
