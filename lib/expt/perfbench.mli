(** Machine-readable matcher benchmark.

    One timing workload (the paper's 500-profile/3-attribute table),
    every matcher in the repository run over the same pre-built event
    pool: the naive and counting baselines, the pointer profile tree
    and its compiled {!Genas_filter.Flat} form per value strategy, the
    flat batch path, and the {!Genas_filter.Pool} domain fan-out at 1,
    2, and 4 domains. Wall clock is read from the monotonic
    {!Genas_obs.Clock}; comparisons/event comes from a separate
    deterministic [Ops]-counted replay of the event pool, so the
    figures are stable across runs even though events/sec is not.

    [genas bench] and [bench/main.exe json] both render these results;
    the JSON form is the `BENCH_*.json` perf-trajectory record (see
    docs/PERFORMANCE.md). *)

type result = {
  name : string;  (** e.g. ["flat/v1+a2"], ["pool/v1+a2/d2"] *)
  matcher : string;  (** naive|counting|tree|flat|flat-batch|pool *)
  strategy : string;  (** value strategy, or ["n/a"] *)
  domains : int;  (** 1 except for pool entries *)
  timed_events : int;
  events_per_sec : float;
  comparisons_per_event : float;
  matches_per_event : float;
}

type t = {
  profiles : int;
  attributes : int;
  event_pool : int;
  seed : int;
  recommended_domains : int;
  results : result list;
}

val run : ?profiles:int -> ?seed:int -> ?events:int -> unit -> t
(** [events] (default 50_000) is the per-entry timing budget; batch
    and pool entries round it up to whole event-pool passes. *)

val to_json : t -> Genas_obs.Json.t
(** The `BENCH_*.json` document: bench/schema_version header, workload
    and host blocks, one result object per entry, and derived speedups
    (flat vs tree, flat batch vs tree, pool peak vs one domain). *)

val table : t -> Report.table
(** Human-readable rendering of the same results. *)
