(** Machine-readable matcher benchmark.

    One timing workload (the paper's 500-profile/3-attribute table),
    every matcher in the repository run over the same pre-built event
    pool: the naive and counting baselines, the pointer profile tree
    and its compiled {!Genas_filter.Flat} form per value strategy, the
    flat batch and packed-batch paths, the skewed-workload pair with
    and without the hotness-guided relayout, the persistent
    {!Genas_filter.Pool} fan-out per domain count (plus the retired
    spawn-per-batch path as a regression row), and the
    {!Genas_filter.Shard} profile-partition axis at 2 and 4 shards.
    Wall clock is read from the monotonic {!Genas_obs.Clock};
    comparisons/event comes from a separate deterministic
    [Ops]-counted replay of the event pool, so the figures are stable
    across runs even though events/sec is not.

    [genas bench] and [bench/main.exe json] both render these results;
    the JSON form is the `BENCH_*.json` perf-trajectory record (see
    docs/PERFORMANCE.md). *)

type result = {
  name : string;  (** e.g. ["flat/v1+a2"], ["pool/v1+a2/d2"] *)
  matcher : string;
      (** naive|counting|tree|flat|flat-batch|flat-packed|flat-skew|
          flat-skew-layout|publish|publish-net|pool|pool-spawn|shard;
          the [publish-net] rows ([publish/net-untraced] and
          [publish/net-traced-off]) time a loopback
          {!Genas_ens.Broker_client} publish round trip over a Unix
          socket, without and with a never-sampling tracer on both
          ends — their ratio is the derived
          [publish_net_traced_off_vs_untraced] field, the
          disabled-tracing overhead on the networked path *)
  strategy : string;  (** value strategy, or ["n/a"] *)
  domains : int;  (** 1 except for pool and shard entries *)
  timed_events : int;
  events_per_sec : float;
  comparisons_per_event : float;
  matches_per_event : float;
}

type t = {
  profiles : int;
  attributes : int;
  event_pool : int;
  seed : int;
  recommended_domains : int;
  cpu_count : int;  (** host cores (Linux /proc/cpuinfo; else
                        [recommended_domains]) *)
  results : result list;
}

val host_cpu_count : unit -> int

val run : ?profiles:int -> ?seed:int -> ?events:int -> ?domains:int list ->
  unit -> t
(** [events] (default 50_000) is the per-entry timing budget; batch
    and pool entries round it up to whole event-pool passes.
    [domains] overrides the pool-row domain counts (default [1; 2] and
    the host recommendation capped at 4). *)

(** {1 Profile-count scaling}

    The subscription-aggregation curve (docs/SCALING.md): the
    covering-heavy {!Workload.gen_covering_profiles} population grown
    point by point through {!Genas_core.Engine.add_profile}, churned,
    and published through, once with aggregation and once against the
    plain rebuild-per-churn engine. *)

type scale_point = {
  population : int;  (** live profiles at this point *)
  aggregated : bool;
  subscribe_ns : float;
      (** mean sampled latency of one subscribe followed by one
          matched event — the event realizes whatever the churn left
          pending (a full replan on the plain engine) *)
  unsubscribe_ns : float;  (** same protocol for removals *)
  publish_eps : float;  (** steady-state single-event match throughput *)
  absorbed : int;  (** {!Genas_core.Engine.absorbed_profiles} *)
  covering_roots : int;  (** {!Genas_core.Engine.lattice_roots} *)
  epoch_swaps : int;  (** {!Genas_core.Engine.epoch} *)
}

type scale = {
  sc_seed : int;
  sc_samples : int;  (** latency samples per phase (aggregated engine) *)
  sc_baseline_samples : int;
      (** latency samples per phase on the plain engine — kept tiny
          because every sampled op realizes a full replan *)
  sc_events : int;  (** timed events per publish measurement *)
  sc_baseline_max : int;
      (** largest population the plain baseline is run at — beyond it
          the rebuild-per-churn protocol is infeasible and only the
          aggregated point is recorded *)
  sc_points : scale_point list;
}

val scale :
  ?points:int list -> ?seed:int -> ?events:int -> ?samples:int ->
  ?baseline_samples:int -> ?baseline_max:int -> unit -> scale
(** [points] defaults to 10³, 10⁴, 10⁵, 10⁶; [baseline_max] to 2×10³
    (the plain replan's tree grows combinatorially on this workload —
    gigabytes of nodes and minutes of build by 10⁴);
    [baseline_samples] to 2 (a sampled baseline op costs a full
    replan, seconds each even at 10³). *)

val scale_to_json : scale -> Genas_obs.Json.t

val to_json : ?scale:scale -> t -> Genas_obs.Json.t
(** The `BENCH_*.json` document: bench/schema_version header, workload
    and host blocks (core count and a scaling note when the host is
    single-core), one result object per entry, and derived speedups
    (flat vs tree, flat batch vs tree, packed vs batch, layout vs
    default on the skewed workload, persistent vs spawn pool at two
    domains, pool peak vs one domain). With
    [scale], the scaling curve is attached as a ["scaling"] block
    (whose keys deliberately avoid the classic result keys the cram
    suite counts). *)

val table : t -> Report.table
(** Human-readable rendering of the same results. *)
