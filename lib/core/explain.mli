(** Match tracing: why did this event (not) match, and what did it
    cost?

    Produces the exact root-to-leaf path the tree matcher takes for one
    event — per level: the attribute tested, the value's cell, the scan
    strategy and its comparison count, and the edge taken — ending in
    the matched profiles or the rejection point. The comparisons add up
    to precisely what {!Genas_filter.Ops} would record. *)

type step = {
  level : int;
  attr : int;  (** natural attribute index tested *)
  attr_name : string;
  cell_label : string;  (** the event value's subrange, e.g. "[30,35)" *)
  strategy : Genas_filter.Order.strategy;
  comparisons : int;
  edges_at_node : int;
  outcome : [ `Edge | `Rest | `Reject ];
      (** listed edge followed / rest-edge followed / rejected here *)
}

type t = {
  steps : step list;  (** root first *)
  matched : Genas_profile.Profile_set.id list;  (** ascending; [] = rejected *)
  total_comparisons : int;
}

val trace : Genas_filter.Tree.t -> Genas_model.Event.t -> t

val trace_coords : Genas_filter.Tree.t -> float array -> t
(** From raw axis coordinates in natural attribute order. *)

val pp : Format.formatter -> t -> unit
(** One line per step plus the verdict. *)

(** {2 Hotness advisory}

    Runtime validation of the paper's V/A ordering measures: compare
    the traversal work a profiled engine actually observed (see
    {!Genas_filter.Flat.recorder}) against the attribute order the
    planner chose. The planner puts the predicted-most-selective
    attribute first, so the observed survival rate — the fraction of
    events arriving at a level that proceed past it — should be
    non-decreasing with depth; a later level with lower survival than
    an earlier one is an inversion worth re-planning for. *)

type advisory_line = {
  adv_level : int;
  adv_attr : int;  (** natural attribute index tested at this level *)
  adv_attr_name : string;
  adv_visits : int;  (** events that reached this level *)
  adv_survival : float;
      (** visits(level+1) / visits(level); [nan] when no event reached
          this level *)
}

type advisory = {
  adv_events : int;  (** events profiled *)
  adv_lines : advisory_line list;  (** root level first *)
  adv_inversions : (int * int) list;
      (** (earlier level, later level): the later level filters
          harder despite being tested later *)
  adv_ok : bool;  (** no inversions *)
}

val advisory :
  ?tolerance:float ->
  Genas_filter.Tree.t ->
  level_visits:int array ->
  events:int ->
  advisory
(** [level_visits] is {!Genas_filter.Flat.level_visits} (one slot per
    level plus the leaf slot); [events] the recorded event count.
    Survival drops smaller than [tolerance] (default 0.05) are not
    flagged.

    @raise Invalid_argument on a negative or non-finite tolerance, or
    if [level_visits] is too short for the tree. *)

val pp_advisory : Format.formatter -> advisory -> unit
(** Per-level visit/survival table plus flagged inversions. *)
