module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Overlay = Genas_interval.Overlay
module Tree = Genas_filter.Tree
module Order = Genas_filter.Order
module Decomp = Genas_filter.Decomp

type step = {
  level : int;
  attr : int;
  attr_name : string;
  cell_label : string;
  strategy : Order.strategy;
  comparisons : int;
  edges_at_node : int;
  outcome : [ `Edge | `Rest | `Reject ];
}

type t = {
  steps : step list;
  matched : Genas_profile.Profile_set.id list;
  total_comparisons : int;
}

let trace_coords tree coords =
  let decomp = tree.Tree.decomp in
  if Array.length coords <> Decomp.arity decomp then
    invalid_arg "Explain.trace_coords: wrong arity";
  let schema = decomp.Decomp.schema in
  let steps = ref [] and total = ref 0 in
  let matched = ref [] in
  let rec go level = function
    | Tree.Leaf ids -> matched := Array.to_list ids
    | Tree.Node { attr; edge_positions; children; rest; _ } ->
      let cell = Decomp.cell_of_coord decomp ~attr coords.(attr) in
      let target =
        match cell with
        | Some c -> tree.Tree.tables.(attr).Order.positions.(c)
        | None -> Float.infinity
      in
      let strategy = tree.Tree.config.Tree.strategies.(attr) in
      let cost, hit = Tree.scan strategy ~edge_positions ~target in
      total := !total + cost;
      let outcome, next =
        match hit with
        | Some i -> (`Edge, Some children.(i))
        | None -> (
          match rest with
          | Some r -> (`Rest, Some r)
          | None -> (`Reject, None))
      in
      let cell_label =
        match cell with
        | Some c ->
          Format.asprintf "%a" Interval.pp
            decomp.Decomp.overlays.(attr).Overlay.cells.(c).Overlay.itv
        | None -> "(outside axis)"
      in
      steps :=
        {
          level;
          attr;
          attr_name = (Schema.attribute schema attr).Schema.name;
          cell_label;
          strategy;
          comparisons = cost;
          edges_at_node = Array.length edge_positions;
          outcome;
        }
        :: !steps;
      (match next with Some nd -> go (level + 1) nd | None -> ())
  in
  (match tree.Tree.root with Some root -> go 0 root | None -> ());
  {
    steps = List.rev !steps;
    matched = List.sort_uniq Int.compare !matched;
    total_comparisons = !total;
  }

let trace tree event =
  let decomp = tree.Tree.decomp in
  let schema = decomp.Decomp.schema in
  let coords =
    Array.init (Decomp.arity decomp) (fun attr ->
        match
          Axis.coord (Schema.attribute schema attr).Schema.domain
            (Event.value event attr)
        with
        | Some c -> c
        | None -> Float.nan)
  in
  trace_coords tree coords

(* ------------------------------------------------------------------ *)
(* Hotness advisory: observed per-level survival vs the chosen order.

   The planner puts the (predicted) most selective attribute first, so
   along the tree the observed survival rate — the fraction of events
   arriving at level l that proceed past it — should be non-decreasing
   with depth. A later level with a lower survival rate than an
   earlier one filters harder despite being tested later: the V/A
   prediction that ordered them is inverted for the observed traffic,
   and moving that attribute up would shed work earlier. *)

type advisory_line = {
  adv_level : int;
  adv_attr : int;
  adv_attr_name : string;
  adv_visits : int;  (** events that reached this level *)
  adv_survival : float;
      (** visits(level+1) / visits(level); [nan] when no event reached
          this level *)
}

type advisory = {
  adv_events : int;
  adv_lines : advisory_line list;  (** root level first *)
  adv_inversions : (int * int) list;
      (** (earlier level, later level): the later one filters harder *)
  adv_ok : bool;
}

let advisory ?(tolerance = 0.05) (tree : Tree.t) ~level_visits ~events =
  if not (Float.is_finite tolerance) || tolerance < 0.0 then
    invalid_arg "Explain.advisory: tolerance must be non-negative";
  let order = tree.Tree.config.Tree.attr_order in
  let arity = Array.length order in
  if Array.length level_visits < arity + 1 then
    invalid_arg "Explain.advisory: level_visits too short for the tree";
  let schema = tree.Tree.decomp.Decomp.schema in
  let survival l =
    let v = level_visits.(l) in
    if v = 0 then Float.nan
    else float_of_int level_visits.(l + 1) /. float_of_int v
  in
  let lines =
    List.init arity (fun l ->
        {
          adv_level = l;
          adv_attr = order.(l);
          adv_attr_name = (Schema.attribute schema order.(l)).Schema.name;
          adv_visits = level_visits.(l);
          adv_survival = survival l;
        })
  in
  let inversions = ref [] in
  List.iter
    (fun (li : advisory_line) ->
      List.iter
        (fun (lj : advisory_line) ->
          if
            lj.adv_level > li.adv_level
            && Float.is_finite li.adv_survival
            && Float.is_finite lj.adv_survival
            && lj.adv_survival < li.adv_survival -. tolerance
          then inversions := (li.adv_level, lj.adv_level) :: !inversions)
        lines)
    lines;
  let inversions = List.rev !inversions in
  { adv_events = events; adv_lines = lines; adv_inversions = inversions;
    adv_ok = inversions = [] }

let pp_advisory ppf a =
  Format.fprintf ppf "@[<v>hotness advisory over %d event(s):@," a.adv_events;
  List.iter
    (fun l ->
      Format.fprintf ppf
        "level %d: %-12s %7d visit(s), survival %s@," l.adv_level
        l.adv_attr_name l.adv_visits
        (if Float.is_finite l.adv_survival then
           Printf.sprintf "%.3f" l.adv_survival
         else "n/a"))
    a.adv_lines;
  if a.adv_ok then
    Format.fprintf ppf "ordering consistent with observed selectivity@]"
  else begin
    List.iter
      (fun (i, j) ->
        let line l = List.nth a.adv_lines l in
        Format.fprintf ppf
          "inversion: level %d (%s, survival %.3f) filters harder than level \
           %d (%s, survival %.3f) — consider moving it earlier@,"
          j (line j).adv_attr_name (line j).adv_survival i
          (line i).adv_attr_name (line i).adv_survival)
      a.adv_inversions;
    Format.fprintf ppf "%d inversion(s) flagged@]"
      (List.length a.adv_inversions)
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "level %d: %-12s value in %-12s %a over %d edge(s): \
                          %d comparison(s) -> %s@,"
        s.level s.attr_name s.cell_label Order.pp_strategy s.strategy
        s.edges_at_node s.comparisons
        (match s.outcome with
        | `Edge -> "edge"
        | `Rest -> "rest (*)"
        | `Reject -> "reject"))
    t.steps;
  (match t.matched with
  | [] -> Format.fprintf ppf "no match"
  | ids ->
    Format.fprintf ppf "matched profiles: %s"
      (String.concat ", " (List.map string_of_int ids)));
  Format.fprintf ppf " (%d comparisons total)@]" t.total_comparisons
