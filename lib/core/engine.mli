(** The distribution-based filter engine — the paper's contribution as
    a facade.

    Owns a profile registry, a decomposition snapshot, statistics
    objects, and the (possibly reordered) profile tree; re-snapshots
    automatically when profiles were added or removed since the last
    build. Every filtered event is recorded in the statistics, so a
    later [rebuild] re-optimizes for the observed distribution (use
    {!Adaptive} for automatic re-optimization). *)

type t

val create :
  ?spec:Reorder.spec ->
  ?bins:int ->
  ?metrics:Genas_obs.Metrics.t ->
  ?aggregate:bool ->
  ?delta_cap:int ->
  Genas_profile.Profile_set.t ->
  t
(** [spec] defaults to {!Reorder.default_spec}.

    [metrics] attaches the engine to an observability registry: match
    latency and comparisons-per-event histograms, event/match/
    comparison/rebuild counters, and tree-size gauges (all names in
    docs/OBSERVABILITY.md). Without it ([?metrics:None], the default)
    the match path performs no observability work at all — handles are
    resolved once at construction and the hot loop stays
    allocation-free.

    [aggregate] (default [false]) turns on subscription aggregation:
    the registry is indexed by a {!Genas_profile.Lattice} and the flat
    matcher is compiled over the covering-minimal roots only, with
    churn folded in incrementally and installed by epoch swaps (see
    docs/SCALING.md). An aggregated engine requires all registry churn
    to go through {!add_profile}/{!remove_profile}; mutating the
    profile set directly leaves the index behind. [delta_cap] bounds
    the structural changes accumulated between swaps (default 512):
    when exceeded, the next churn operation performs the swap — the
    match path itself never recompiles. With [metrics], aggregation
    adds the absorbed/lattice/pending gauges and the epoch-swap
    counter of docs/OBSERVABILITY.md. *)

val spec : t -> Reorder.spec

val set_spec : t -> Reorder.spec -> unit
(** Install a new reordering spec and rebuild the tree. *)

val profiles : t -> Genas_profile.Profile_set.t

(** {1 Registry churn}

    The engine-mediated subscribe/unsubscribe path. On a plain engine
    these are the registry operations followed by the usual lazy
    stale-refresh on the next match; on an aggregated engine they also
    maintain the covering lattice and the epoch-swap delta sets. *)

val add_profile : t -> Genas_profile.Profile.t -> Genas_profile.Profile_set.id
(** Register a profile. Aggregated engines: an insertion into a
    covered region touches only the lattice (no recompilation, ever);
    a structural insertion (new covering root) joins the pending delta
    and is matched by linear scan until the next epoch swap installs a
    recompiled matcher. *)

val add_profile_with_id :
  t -> id:Genas_profile.Profile_set.id -> Genas_profile.Profile.t -> unit
(** Recovery-path variant under an explicit id
    ({!Genas_profile.Profile_set.add_with_id} semantics). *)

val remove_profile : t -> Genas_profile.Profile_set.id -> bool
(** Remove a registration; [true] if the id was live. Aggregated
    engines retire compiled entries by marking them dead (filtered at
    match time) until the next epoch swap. *)

(** {1 Aggregation} *)

val aggregated : t -> bool

val epoch : t -> int
(** Epoch-swap count: how many recompiled root matchers have been
    installed ([0] on plain engines and before the first swap). *)

val pending_rebuild : t -> int
(** Structural changes accumulated since the last swap (uncompiled
    delta roots + dead compiled entries); [0] on plain engines. *)

val swap_due : t -> bool
(** Whether the pending churn exceeds the engine's [delta_cap] — the
    next churn operation (or {!swap_now}) will swap. *)

val swap_now : t -> unit
(** Force an epoch swap: recompile the flat matcher over the current
    covering-minimal roots and install it, absorbing the learned
    event-distribution history. On a plain engine this is {!rebuild}.
    Any background compile in flight is discarded first, so the result
    is deterministic regardless of {!set_async_swaps}. *)

val set_async_swaps : t -> bool -> unit
(** Run epoch-swap recompiles on a background domain instead of the
    calling (publishing) thread. When churn exceeds [delta_cap], the
    compile-heavy phase (decompose, re-statistics, reorder, flat
    compile) is handed to a fresh domain over a snapshot of the
    lattice roots; the result is installed atomically at the next
    churn or match entry once ready, reconciled against any churn that
    landed while it compiled. Matching stays exact throughout — the
    delta/dead tables keep covering the gap, they just drain at
    install time rather than inline. Switching {e off} installs any
    in-flight compile first (joining its domain). No-op on plain
    engines. Default off: synchronous swaps remain bit-deterministic
    for differential tests. *)

val async_swaps : t -> bool

val await_swap : t -> unit
(** Block until any in-flight background compile finishes and install
    it. Call before tearing down an engine with {!set_async_swaps} on
    — an unjoined domain at process exit aborts the runtime. No-op
    when nothing is pending. *)

val absorbed_profiles : t -> int
(** Live profiles the lattice absorbs (not in the covering-minimal
    set); [0] on plain engines. *)

val lattice_roots : t -> int
(** Covering-minimal set size (= live profiles on plain engines). *)

val lattice : t -> Genas_profile.Lattice.t option
(** The aggregation index, for inspection. *)

val tree : t -> Genas_filter.Tree.t
(** The pointer tree: kept for [pp]/[explain] and the analytic cost
    model. The match paths execute its compiled flat form. *)

val flat : t -> Genas_filter.Flat.t
(** The compiled flat-array matcher the match paths execute; recompiled
    at every (re)build. *)

val stats : t -> Stats.t

val ops : t -> Genas_filter.Ops.t
(** Cumulative counters over all events filtered by this engine. *)

val match_event :
  t -> Genas_model.Event.t -> Genas_profile.Profile_set.id list
(** Filter one event: refreshes the tree if the profile set changed,
    records the event in the statistics, counts operations, and
    returns the matched profile ids (ascending).

    Matching runs through the engine's reusable flat cursor, so the
    steady-state path allocates no per-event match lists beyond the
    returned list itself; use {!match_with} to avoid even that. *)

val match_with :
  t -> Genas_model.Event.t -> f:(ids:int array -> len:int -> unit) -> unit
(** Zero-allocation variant of {!match_event}: [f ~ids ~len] receives
    the engine's borrowed cursor buffer whose first [len] slots hold
    the matched ids (ascending). The buffer is overwritten by the next
    match — copy inside [f] if the ids must outlive the call. *)

val match_batch :
  ?pool:Genas_filter.Pool.t ->
  t ->
  Genas_model.Event.t array ->
  Genas_profile.Profile_set.id array array
(** Filter a batch: one ascending id array per event, index-aligned.
    Statistics, operation counters, and metrics advance exactly as if
    each event had gone through {!match_event}, except that per-event
    latency histograms are not observed on the batch path. With [pool]
    (and more than one domain and event) matching fans out across
    domains; results and counters are identical to the sequential
    path. Without an explicit [pool] the engine's attached pool (see
    {!set_pool}) is used, if any. Aggregated engines ignore [pool]:
    workers execute only the compiled flat form, which no longer holds
    the full population. *)

val set_pool : t -> Genas_filter.Pool.t option -> unit
(** Attach (or detach, with [None]) a persistent domain pool;
    {!match_batch} calls without an explicit [?pool] fan out through
    it. The engine borrows the pool — the caller keeps ownership and
    is responsible for {!Genas_filter.Pool.shutdown}. *)

val pool : t -> Genas_filter.Pool.t option
(** The currently attached pool. *)

val rebuild : t -> unit
(** Re-plan the tree configuration from the current statistics (and
    current profiles) under the engine's spec. *)

val refresh_keeping_history : t -> unit
(** Refresh a stale engine (profiles changed since the last build) like
    the implicit refresh on the next match, except that the observed
    event history of the previous statistics is absorbed into the fresh
    ones ({!Stats.absorb}) before the tree is re-planned — learned
    event distributions survive the profile change instead of being
    restarted. No-op when the engine is not stale. The router uses this
    so one subscription retraction does not reset distribution-based
    reordering network-wide. *)

val report : t -> Cost.report
(** Analytic expectation for the current tree under the current
    statistics. *)

(** {1 Hotness profiling}

    When enabled, single-event and sequential-batch matching run
    through {!Genas_filter.Flat.match_into_recorded}, accumulating
    per-node and per-level visit counters and keeping the last
    traversal path. Disabled (the default), matching dispatches the
    plain loop, which takes no recorder argument at all — zero
    profiling cost by construction. Pool-parallel batches are never
    recorded (workers use private cursors). *)

val set_profiling : t -> bool -> unit
(** Enable/disable hotness recording. Enabling allocates a fresh
    recorder; counters restart from zero whenever the tree is rebuilt
    (flat node ids change shape). Idempotent. *)

val profiling : t -> bool

val recorder : t -> Genas_filter.Flat.recorder option
(** The live recorder, for direct access to
    {!Genas_filter.Flat.node_visits} / [level_visits]. *)

val last_path : t -> Genas_filter.Flat.path_step list
(** The most recently recorded event's traversal path ([] when
    profiling is off or nothing matched yet). *)

val advisory : ?tolerance:float -> t -> Explain.advisory option
(** {!Explain.advisory} over the recorder's per-level visits against
    the current tree's attribute order; [None] when profiling is
    off. *)

val relayout_now : t -> bool
(** Hotness-guided cache-conscious relayout: reorder the compiled flat
    form's memory layout by the recorder's observed per-node visit
    counts ({!Genas_filter.Flat.relayout} — hot nodes and their edge
    and posting payloads land contiguously) and install it with the
    same single-field-store discipline as the epoch swap. Matching
    behaviour and all operation counters are bit-identical; only
    memory order changes. Returns [false] (and does nothing) when
    profiling is off or no event has been recorded yet; on success the
    recorder restarts fresh against the new layout. The pointer tree,
    statistics, and aggregation state are untouched; a later rebuild
    replaces the layout with the default compile order. *)

(** {1 Journal replay} *)

val replay_observe : t -> Genas_model.Event.t -> unit
(** Record one event in the statistics exactly as the match path would
    — including the implicit stale-refresh (and its history reset) when
    the profile set changed — without matching or counting operations.
    Journal replay uses this to regrow the learned distributions from
    the logged event stream. *)

val restore_ops : t -> Genas_filter.Ops.t -> unit
(** Overwrite the cumulative operation counters with a journaled
    absolute snapshot, advancing the corresponding metrics counters by
    the (non-negative) delta. *)
