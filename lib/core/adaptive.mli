(** Adaptive filter component (§4 intro and §5).

    "We propose an adaptive filter component that optimizes the profile
    tree for certain applications based on the data distributions" —
    the engine below watches the event stream through the statistics
    objects and re-optimizes the tree when the observed distribution
    has drifted from the one the current tree was planned for. Drift is
    the maximum per-attribute L1 distance between the two
    distributions; the paper's observation that event-order selectivity
    "is a fragile measure, not robust to changes in the distributions"
    is exactly why the threshold is configurable. *)

type policy = {
  warmup : int;
      (** events observed before the first re-optimization (the tree
          starts under the engine's initial spec) *)
  check_every : int;  (** drift check period, in events *)
  drift_threshold : float;
      (** max per-attribute L1 distance ([0..2]) tolerated before a
          rebuild *)
}

val default_policy : policy
(** warmup 500, check every 200, threshold 0.25. *)

type t

val create : ?policy:policy -> ?metrics:Genas_obs.Metrics.t -> Engine.t -> t
(** Wrap an engine. The engine must not be rebuilt behind the adaptive
    component's back (drift is measured against the distributions at
    the last rebuild it performed).

    [metrics] registers check/rebuild counters, a rebuild-duration
    histogram, and a last-drift gauge (names in docs/OBSERVABILITY.md);
    it is independent of the engine's own [?metrics] argument. *)

val engine : t -> Engine.t

val match_event :
  t -> Genas_model.Event.t -> Genas_profile.Profile_set.id list
(** Filter, observe, and re-optimize when due. The check cadence:
    [since_check] accumulates during warmup, so the first drift check
    fires at exactly [seen = warmup] — not [warmup + check_every] —
    even when [warmup < check_every]; later checks run every
    [check_every] events. *)

val match_batch :
  ?pool:Genas_filter.Pool.t ->
  t ->
  Genas_model.Event.t array ->
  Genas_profile.Profile_set.id array array
(** {!Engine.match_batch}, then the adaptive bookkeeping advances by
    the batch size with at most one drift check (after the whole batch
    has been observed — never mid-batch). *)

val rebuilds : t -> int
(** Number of re-optimizations performed so far. *)

val checks : t -> int
(** Number of drift checks performed so far (forced or scheduled). *)

val last_drift : t -> float
(** Drift measured at the most recent check ([0.0] before the first).
    Clamped to [2.0] — the L1 metric's upper bound — when the raw
    drift is infinite (tree never planned from data); the rebuild
    decision itself compares the raw drift against the threshold. *)

val force_check : t -> bool
(** Run a drift check now; [true] if it triggered a rebuild. *)

val note_events : t -> int -> unit
(** Advance the warmup/check bookkeeping by [n] already-observed events
    without matching anything. [match_event]/[match_batch] call this
    internally; it is exposed so journal replay can drive the same
    cadence — the replayed component checks (and rebuilds) at exactly
    the event counts the original did. *)

(** {1 Serialization}

    The durable counters plus the observed-histogram snapshot taken at
    the last rebuild. On import the planned-for distributions are
    reconstructed from that snapshot exactly as {!Stats.event_dist}
    would have produced them (smoothed estimate, or uniform when the
    histogram was empty); assumed distributions — runtime configuration
    — are not persisted. *)

module Export : sig
  type t = {
    seen : int;
    since_check : int;
    checks : int;
    rebuilds : int;
    last_drift : float;
    planned : Genas_dist.Estimator.Export.t array option;
  }
end

val export : t -> Export.t

val import : t -> Export.t -> (unit, string) result
(** Restore exported state into a freshly created component wrapping an
    engine over the same schema. Fails on arity or histogram-layout
    mismatch. *)
