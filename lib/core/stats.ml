module Axis = Genas_model.Axis
module Event = Genas_model.Event
module Schema = Genas_model.Schema
module Overlay = Genas_interval.Overlay
module Dist = Genas_dist.Dist
module Estimator = Genas_dist.Estimator
module Decomp = Genas_filter.Decomp

type t = {
  decomp : Decomp.t;
  hists : Estimator.t array;
  assumed : Dist.t option array;
  profile_weights : float array option array;
  priorities : (int, float) Hashtbl.t;
  mutable events_seen : int;
}

let create ?(bins = 64) decomp =
  let n = Decomp.arity decomp in
  {
    decomp;
    hists = Array.init n (fun i -> Estimator.create ~bins decomp.Decomp.axes.(i));
    assumed = Array.make n None;
    profile_weights = Array.make n None;
    priorities = Hashtbl.create 16;
    events_seen = 0;
  }

let decomp t = t.decomp

let observe_coords t coords =
  Array.iteri (fun attr c -> Estimator.add t.hists.(attr) c) coords;
  t.events_seen <- t.events_seen + 1

let observe_event t event =
  let schema = t.decomp.Decomp.schema in
  let coords =
    Array.init (Decomp.arity t.decomp) (fun attr ->
        match
          Axis.coord (Schema.attribute schema attr).Schema.domain
            (Event.value event attr)
        with
        | Some c -> c
        | None -> Float.nan)
  in
  observe_coords t coords

let events_seen t = t.events_seen

let assume_event_dist t ~attr dist =
  if not (Axis.equal (Dist.axis dist) t.decomp.Decomp.axes.(attr)) then
    invalid_arg "Stats.assume_event_dist: axis mismatch";
  t.assumed.(attr) <- Some dist

let clear_assumed t ~attr = t.assumed.(attr) <- None

let history_smoothing = 0.5

let event_dist t ~attr =
  match t.assumed.(attr) with
  | Some d -> d
  | None ->
    if Estimator.count t.hists.(attr) > 0 then
      Estimator.estimate ~smoothing:history_smoothing t.hists.(attr)
    else Dist.uniform t.decomp.Decomp.axes.(attr)

let event_cell_probs t ~attr =
  Dist.cell_probs (event_dist t ~attr) t.decomp.Decomp.overlays.(attr)

let priority t ~id = Option.value ~default:1.0 (Hashtbl.find_opt t.priorities id)

let set_priority t ~id w =
  if w < 0.0 then invalid_arg "Stats.set_priority: negative priority";
  Hashtbl.replace t.priorities id w

let profile_cell_weights t ~attr =
  match t.profile_weights.(attr) with
  | Some w -> Array.copy w
  | None ->
    let cells = t.decomp.Decomp.overlays.(attr).Overlay.cells in
    let total =
      Array.fold_left
        (fun acc id -> acc +. priority t ~id)
        0.0 t.decomp.Decomp.ids
    in
    Array.map
      (fun (c : Overlay.cell) ->
        if total <= 0.0 then 0.0
        else
          List.fold_left (fun acc id -> acc +. priority t ~id) 0.0 c.Overlay.ids
          /. total)
      cells

let assume_profile_weights t ~attr weights =
  let ncells = Array.length t.decomp.Decomp.overlays.(attr).Overlay.cells in
  if Array.length weights <> ncells then
    invalid_arg "Stats.assume_profile_weights: length mismatch";
  t.profile_weights.(attr) <- Some (Array.copy weights)

let d0_event_prob t ~attr =
  (* The semantic zero-subdomain is empty when a live profile leaves
     the attribute unconstrained (see Decomp.d0_share). *)
  if Decomp.dont_care_count t.decomp ~attr > 0 then 0.0
  else
    let probs = event_cell_probs t ~attr in
    Array.fold_left
      (fun acc zc -> acc +. probs.(zc))
      0.0
      (Overlay.zero_cells t.decomp.Decomp.overlays.(attr))

let reset_observations t =
  Array.iter Estimator.reset t.hists;
  t.events_seen <- 0

module Export = struct
  type t = {
    hists : Estimator.Export.t array;
    events_seen : int;
    priorities : (int * float) list;
  }
end

let export t =
  {
    Export.hists = Array.map Estimator.export t.hists;
    events_seen = t.events_seen;
    priorities =
      Hashtbl.fold (fun id w acc -> (id, w) :: acc) t.priorities []
      |> List.sort compare;
  }

let import t (e : Export.t) =
  if Array.length e.Export.hists <> Array.length t.hists then
    Error "Stats.import: attribute arity mismatch"
  else begin
    let rec hists i =
      if i >= Array.length t.hists then Ok ()
      else
        match Estimator.import t.hists.(i) e.Export.hists.(i) with
        | Error _ as err -> err
        | Ok () -> hists (i + 1)
    in
    match hists 0 with
    | Error _ as err -> err
    | Ok () ->
      t.events_seen <- e.Export.events_seen;
      Hashtbl.reset t.priorities;
      List.iter
        (fun (id, w) -> Hashtbl.replace t.priorities id w)
        e.Export.priorities;
      Ok ()
  end

let absorb t ~from =
  if t != from then begin
    Array.iteri
      (fun attr h ->
        if attr < Array.length from.hists then
          Estimator.merge_into ~from:from.hists.(attr) h)
      t.hists;
    Array.iteri
      (fun attr assumed ->
        if
          attr < Array.length t.assumed
          && t.assumed.(attr) = None
          && Option.is_some assumed
        then t.assumed.(attr) <- assumed)
      from.assumed;
    t.events_seen <- t.events_seen + from.events_seen
  end
