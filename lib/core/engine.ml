module Profile_set = Genas_profile.Profile_set
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Flat = Genas_filter.Flat
module Pool = Genas_filter.Pool
module Ops = Genas_filter.Ops
module Metrics = Genas_obs.Metrics

(* Instrument handles are resolved once at engine construction so the
   per-event updates are plain stores; with [?metrics:None] the match
   path never touches the observability layer at all. *)
type instruments = {
  match_ns : Metrics.histogram;
  match_comparisons : Metrics.histogram;
  events_total : Metrics.counter;
  matches_total : Metrics.counter;
  comparisons_total : Metrics.counter;
  rebuilds_total : Metrics.counter;
  tree_nodes : Metrics.gauge;
  tree_leaves : Metrics.gauge;
  tree_edges : Metrics.gauge;
}

let make_instruments registry =
  {
    match_ns =
      Metrics.histogram registry "genas_engine_match_duration_ns"
        ~help:"Wall-clock latency of Engine.match_event (ns, monotonic)";
    match_comparisons =
      Metrics.histogram registry "genas_engine_match_comparisons"
        ~help:"Comparison steps (the paper's #operations) per event"
        ~buckets:[| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 1e4 |];
    events_total =
      Metrics.counter registry "genas_engine_events_total"
        ~help:"Events filtered";
    matches_total =
      Metrics.counter registry "genas_engine_matches_total"
        ~help:"(event, profile) match pairs produced";
    comparisons_total =
      Metrics.counter registry "genas_engine_comparisons_total"
        ~help:"Total comparison steps";
    rebuilds_total =
      Metrics.counter registry "genas_engine_rebuilds_total"
        ~help:"Tree re-plans (explicit rebuilds and profile-set refreshes)";
    tree_nodes =
      Metrics.gauge registry "genas_engine_tree_nodes"
        ~help:"Unique inner nodes of the current profile tree";
    tree_leaves =
      Metrics.gauge registry "genas_engine_tree_leaves"
        ~help:"Unique leaves of the current profile tree";
    tree_edges =
      Metrics.gauge registry "genas_engine_tree_edges"
        ~help:"Edges over unique nodes of the current profile tree";
  }

type t = {
  pset : Profile_set.t;
  bins : int;
  mutable spec : Reorder.spec;
  mutable stats : Stats.t;
  mutable tree : Tree.t;
  (* The pointer tree stays authoritative for pp/explain and the
     analytic cost model; every (re)build also compiles it into the
     flat form the match paths execute, with a reusable cursor so the
     steady-state path allocates no per-event match lists. *)
  mutable flat : Flat.t;
  mutable cursor : Flat.cursor;
  (* Hotness profiling: [None] dispatches the plain traversal loop
     (provably zero profiling cost); [Some r] dispatches the recording
     twin. Rebuilds allocate a fresh recorder — counters are per
     compiled tree, since node ids change shape. *)
  mutable recorder : Flat.recorder option;
  ops : Ops.t;
  instruments : instruments option;
}

let observe_tree t =
  match t.instruments with
  | None -> ()
  | Some ins ->
    let s = t.tree.Tree.stats in
    Metrics.Gauge.set ins.tree_nodes (float_of_int s.Tree.nodes);
    Metrics.Gauge.set ins.tree_leaves (float_of_int s.Tree.leaves);
    Metrics.Gauge.set ins.tree_edges (float_of_int s.Tree.edges)

let plan ~bins ~old_stats pset spec =
  let decomp = Decomp.build pset in
  let stats =
    match old_stats with
    | Some s when (Stats.decomp s).Decomp.revision = decomp.Decomp.revision ->
      s
    | Some _ | None -> Stats.create ~bins decomp
  in
  let tree = Reorder.build stats spec in
  (stats, tree)

let install_tree t tree =
  t.tree <- tree;
  t.flat <- Flat.compile tree;
  t.cursor <- Flat.cursor t.flat;
  match t.recorder with
  | None -> ()
  | Some _ -> t.recorder <- Some (Flat.recorder t.flat)

let create ?(spec = Reorder.default_spec) ?(bins = 64) ?metrics pset =
  let stats, tree = plan ~bins ~old_stats:None pset spec in
  let flat = Flat.compile tree in
  let t =
    {
      pset;
      bins;
      spec;
      stats;
      tree;
      flat;
      cursor = Flat.cursor flat;
      recorder = None;
      ops = Ops.create ();
      instruments = Option.map make_instruments metrics;
    }
  in
  observe_tree t;
  t

let spec t = t.spec

let profiles t = t.pset

let tree t = t.tree

let flat t = t.flat

let stats t = t.stats

let ops t = t.ops

let rebuild t =
  (* Keep the statistics when the profile set is unchanged (the normal
     re-optimization path); refresh the decomposition otherwise. *)
  let stats, tree = plan ~bins:t.bins ~old_stats:(Some t.stats) t.pset t.spec in
  t.stats <- stats;
  install_tree t tree;
  match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.incr ins.rebuilds_total;
    observe_tree t

let set_spec t spec =
  t.spec <- spec;
  rebuild t

let refresh_if_stale t =
  if Tree.revision t.tree <> Profile_set.revision t.pset then begin
    (* Profiles changed: rebuild decomposition and statistics. The
       observed history refers to stale cells, so it is restarted. *)
    let decomp = Decomp.build t.pset in
    t.stats <- Stats.create ~bins:t.bins decomp;
    install_tree t (Reorder.build t.stats t.spec);
    match t.instruments with
    | None -> ()
    | Some ins ->
      Metrics.Counter.incr ins.rebuilds_total;
      observe_tree t
  end

let refresh_keeping_history t =
  if Tree.revision t.tree <> Profile_set.revision t.pset then begin
    let old = t.stats in
    let decomp = Decomp.build t.pset in
    let stats = Stats.create ~bins:t.bins decomp in
    Stats.absorb stats ~from:old;
    t.stats <- stats;
    install_tree t (Reorder.build t.stats t.spec);
    match t.instruments with
    | None -> ()
    | Some ins ->
      Metrics.Counter.incr ins.rebuilds_total;
      observe_tree t
  end

(* Match one event through the flat cursor; returns the match count,
   ids borrowed from the cursor. Counter semantics are bit-identical to
   the former Tree.match_event path. *)
let match_flat t event =
  match t.recorder with
  | None -> Flat.match_into ~ops:t.ops t.flat t.cursor event
  | Some r -> Flat.match_into_recorded ~ops:t.ops t.flat t.cursor r event

let match_core t event =
  refresh_if_stale t;
  Stats.observe_event t.stats event;
  match t.instruments with
  | None -> match_flat t event
  | Some ins ->
    let c0 = t.ops.Ops.comparisons in
    let t0 = Genas_obs.Clock.now_ns () in
    let n = match_flat t event in
    let dt = Int64.to_float (Int64.sub (Genas_obs.Clock.now_ns ()) t0) in
    let dc = t.ops.Ops.comparisons - c0 in
    Metrics.Histogram.observe ins.match_ns (Float.max 0.0 dt);
    Metrics.Histogram.observe ins.match_comparisons (float_of_int dc);
    Metrics.Counter.incr ins.events_total;
    Metrics.Counter.add ins.comparisons_total dc;
    Metrics.Counter.add ins.matches_total n;
    n

let match_event t event =
  let n = match_core t event in
  let out = Flat.matches t.cursor in
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (out.(i) :: acc)
  in
  build (n - 1) []

let match_with t event ~f =
  let n = match_core t event in
  f ~ids:(Flat.matches t.cursor) ~len:n

let match_batch ?pool t events =
  refresh_if_stale t;
  Array.iter (fun e -> Stats.observe_event t.stats e) events;
  let c0 = t.ops.Ops.comparisons and m0 = t.ops.Ops.matches in
  let results =
    match pool with
    | Some p when Pool.domains p > 1 && Array.length events > 1 ->
      Pool.match_batch ~ops:t.ops p t.flat events
    | Some _ | None ->
      let out = Array.make (Array.length events) [||] in
      (match t.recorder with
      | None ->
        Flat.match_batch ~ops:t.ops t.flat t.cursor events
          ~f:(fun i ~ids ~len -> out.(i) <- Array.sub ids 0 len)
      | Some r ->
        Array.iteri
          (fun i e ->
            let len =
              Flat.match_into_recorded ~ops:t.ops t.flat t.cursor r e
            in
            out.(i) <- Array.sub (Flat.matches t.cursor) 0 len)
          events);
      out
  in
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.add ins.events_total (Array.length events);
    Metrics.Counter.add ins.comparisons_total (t.ops.Ops.comparisons - c0);
    Metrics.Counter.add ins.matches_total (t.ops.Ops.matches - m0));
  results

let replay_observe t event =
  (* Journal replay: feed the statistics exactly as [match_core] would —
     including the history reset a stale profile set triggers — without
     matching or delivering anything. *)
  refresh_if_stale t;
  Stats.observe_event t.stats event

let restore_ops t (o : Ops.t) =
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.add ins.events_total
      (Stdlib.max 0 (o.Ops.events - t.ops.Ops.events));
    Metrics.Counter.add ins.comparisons_total
      (Stdlib.max 0 (o.Ops.comparisons - t.ops.Ops.comparisons));
    Metrics.Counter.add ins.matches_total
      (Stdlib.max 0 (o.Ops.matches - t.ops.Ops.matches)));
  t.ops.Ops.events <- o.Ops.events;
  t.ops.Ops.comparisons <- o.Ops.comparisons;
  t.ops.Ops.node_visits <- o.Ops.node_visits;
  t.ops.Ops.matches <- o.Ops.matches

let report t = Cost.evaluate_with_stats t.tree t.stats

(* ------------------------------------------------------------------ *)
(* Hotness profiling *)

let set_profiling t on =
  match (on, t.recorder) with
  | true, None -> t.recorder <- Some (Flat.recorder t.flat)
  | false, Some _ -> t.recorder <- None
  | true, Some _ | false, None -> ()

let profiling t = Option.is_some t.recorder

let recorder t = t.recorder

let last_path t =
  match t.recorder with None -> [] | Some r -> Flat.last_path r

let advisory ?tolerance t =
  match t.recorder with
  | None -> None
  | Some r ->
    Some
      (Explain.advisory ?tolerance t.tree
         ~level_visits:(Flat.level_visits r)
         ~events:(Flat.recorded_events r))
