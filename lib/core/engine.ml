module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Lattice = Genas_profile.Lattice
module Decomp = Genas_filter.Decomp
module Tree = Genas_filter.Tree
module Flat = Genas_filter.Flat
module Pool = Genas_filter.Pool
module Ops = Genas_filter.Ops
module Metrics = Genas_obs.Metrics

(* Instrument handles are resolved once at engine construction so the
   per-event updates are plain stores; with [?metrics:None] the match
   path never touches the observability layer at all. *)
type instruments = {
  match_ns : Metrics.histogram;
  match_comparisons : Metrics.histogram;
  events_total : Metrics.counter;
  matches_total : Metrics.counter;
  comparisons_total : Metrics.counter;
  rebuilds_total : Metrics.counter;
  tree_nodes : Metrics.gauge;
  tree_leaves : Metrics.gauge;
  tree_edges : Metrics.gauge;
}

let make_instruments registry =
  {
    match_ns =
      Metrics.histogram registry "genas_engine_match_duration_ns"
        ~help:"Wall-clock latency of Engine.match_event (ns, monotonic)";
    match_comparisons =
      Metrics.histogram registry "genas_engine_match_comparisons"
        ~help:"Comparison steps (the paper's #operations) per event"
        ~buckets:[| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 1e4 |];
    events_total =
      Metrics.counter registry "genas_engine_events_total"
        ~help:"Events filtered";
    matches_total =
      Metrics.counter registry "genas_engine_matches_total"
        ~help:"(event, profile) match pairs produced";
    comparisons_total =
      Metrics.counter registry "genas_engine_comparisons_total"
        ~help:"Total comparison steps";
    rebuilds_total =
      Metrics.counter registry "genas_engine_rebuilds_total"
        ~help:"Tree re-plans (explicit rebuilds and profile-set refreshes)";
    tree_nodes =
      Metrics.gauge registry "genas_engine_tree_nodes"
        ~help:"Unique inner nodes of the current profile tree";
    tree_leaves =
      Metrics.gauge registry "genas_engine_tree_leaves"
        ~help:"Unique leaves of the current profile tree";
    tree_edges =
      Metrics.gauge registry "genas_engine_tree_edges"
        ~help:"Edges over unique nodes of the current profile tree";
  }

(* Aggregation gauges exist only on aggregated engines, so plain
   engines export exactly the metric set they always did. *)
type agg_instruments = {
  absorbed_profiles : Metrics.gauge;
  lattice_entries : Metrics.gauge;
  lattice_roots : Metrics.gauge;
  pending_rebuild : Metrics.gauge;
  epoch_swaps_total : Metrics.counter;
}

let make_agg_instruments registry =
  {
    absorbed_profiles =
      Metrics.gauge registry "genas_engine_absorbed_profiles"
        ~help:"Live profiles absorbed by the covering lattice (not part \
               of the covering-minimal set the matcher compiles)";
    lattice_entries =
      Metrics.gauge registry "genas_engine_lattice_entries"
        ~help:"Live profiles indexed by the covering lattice";
    lattice_roots =
      Metrics.gauge registry "genas_engine_lattice_roots"
        ~help:"Covering-lattice roots (the covering-minimal set)";
    pending_rebuild =
      Metrics.gauge registry "genas_engine_pending_rebuild"
        ~help:"Structural changes accumulated since the last epoch swap \
               (uncompiled new roots + retired compiled entries)";
    epoch_swaps_total =
      Metrics.counter registry "genas_engine_epoch_swaps_total"
        ~help:"Epoch swaps: atomic installs of a recompiled root matcher";
  }

(* Aggregated mode: the flat matcher is compiled over the covering
   lattice's roots only, and churn between epoch swaps is tracked as
   deltas against that compiled snapshot. Invariant: every root
   equivalence class has at least one live member id in
   [compiled \ dead ∪ delta], so every live profile stays reachable
   from the match path (roots directly, absorbed profiles through
   covering-link expansion). *)
(* A background recompile in flight: the compile-heavy phase (decompose,
   restat, reorder, flat-compile) runs on its own domain over an
   immutable snapshot of the lattice roots; [ps_ready] flips once the
   result is complete, and the owning thread installs it at its next
   churn or match entry point. *)
type pending_swap = {
  ps_cset : Profile_set.t;  (* root snapshot the domain compiled *)
  ps_job : (Stats.t * Tree.t * Flat.t) Domain.t;
  ps_ready : bool Atomic.t;
}

type agg = {
  lat : Lattice.t;
  mutable cset : Profile_set.t;
      (** root representatives compiled into the current flat matcher *)
  compiled : (int, unit) Hashtbl.t;  (** ids present in the flat form *)
  dead : (int, unit) Hashtbl.t;  (** compiled ids removed since the swap *)
  delta : (int, unit) Hashtbl.t;  (** uncompiled root member ids *)
  mutable epoch : int;
  delta_cap : int;
  mutable scratch : int array;  (** reusable sorted-match buffer *)
  mutable async : bool;  (** recompile on a background domain *)
  mutable pending : pending_swap option;
  agg_ins : agg_instruments option;
}

type t = {
  pset : Profile_set.t;
  bins : int;
  mutable spec : Reorder.spec;
  mutable stats : Stats.t;
  mutable tree : Tree.t;
  (* The pointer tree stays authoritative for pp/explain and the
     analytic cost model; every (re)build also compiles it into the
     flat form the match paths execute, with a reusable cursor so the
     steady-state path allocates no per-event match lists. *)
  mutable flat : Flat.t;
  mutable cursor : Flat.cursor;
  (* Hotness profiling: [None] dispatches the plain traversal loop
     (provably zero profiling cost); [Some r] dispatches the recording
     twin. Rebuilds allocate a fresh recorder — counters are per
     compiled tree, since node ids change shape. *)
  mutable recorder : Flat.recorder option;
  (* An attached persistent pool: [match_batch] without an explicit
     [?pool] argument fans out through it. The engine borrows the pool
     — the caller owns its lifetime and [Pool.shutdown]. *)
  mutable pool : Pool.t option;
  ops : Ops.t;
  instruments : instruments option;
  agg : agg option;
}

let observe_tree t =
  match t.instruments with
  | None -> ()
  | Some ins ->
    let s = t.tree.Tree.stats in
    Metrics.Gauge.set ins.tree_nodes (float_of_int s.Tree.nodes);
    Metrics.Gauge.set ins.tree_leaves (float_of_int s.Tree.leaves);
    Metrics.Gauge.set ins.tree_edges (float_of_int s.Tree.edges)

let pending_of agg = Hashtbl.length agg.delta + Hashtbl.length agg.dead

let observe_agg agg =
  match agg.agg_ins with
  | None -> ()
  | Some ins ->
    Metrics.Gauge.set ins.absorbed_profiles
      (float_of_int (Lattice.absorbed agg.lat));
    Metrics.Gauge.set ins.lattice_entries
      (float_of_int (Lattice.size agg.lat));
    Metrics.Gauge.set ins.lattice_roots
      (float_of_int (Lattice.root_count agg.lat));
    Metrics.Gauge.set ins.pending_rebuild (float_of_int (pending_of agg))

let plan ~bins ~old_stats pset spec =
  let decomp = Decomp.build pset in
  let stats =
    match old_stats with
    | Some s when (Stats.decomp s).Decomp.revision = decomp.Decomp.revision ->
      s
    | Some _ | None -> Stats.create ~bins decomp
  in
  let tree = Reorder.build stats spec in
  (stats, tree)

let install_tree t tree =
  t.tree <- tree;
  t.flat <- Flat.compile tree;
  t.cursor <- Flat.cursor t.flat;
  match t.recorder with
  | None -> ()
  | Some _ -> t.recorder <- Some (Flat.recorder t.flat)

(* Snapshot the lattice roots into a registry under their own ids; the
   flat matcher compiled from it reports root representatives. *)
let root_snapshot agg schema =
  let cset = Profile_set.create schema in
  List.iter
    (fun (id, p) -> Profile_set.add_with_id cset ~id p)
    (Lattice.minimal_cover agg.lat);
  cset

let create ?(spec = Reorder.default_spec) ?(bins = 64) ?metrics
    ?(aggregate = false) ?(delta_cap = 512) pset =
  let agg =
    if not aggregate then None
    else begin
      let lat = Lattice.create (Profile_set.schema pset) in
      Profile_set.iter pset (fun id p -> ignore (Lattice.add lat ~id p));
      let agg =
        {
          lat;
          cset = Profile_set.create (Profile_set.schema pset);
          compiled = Hashtbl.create 256;
          dead = Hashtbl.create 64;
          delta = Hashtbl.create 64;
          epoch = 0;
          delta_cap = Stdlib.max 1 delta_cap;
          scratch = Array.make 64 0;
          async = false;
          pending = None;
          agg_ins = Option.map make_agg_instruments metrics;
        }
      in
      agg.cset <- root_snapshot agg (Profile_set.schema pset);
      Profile_set.iter agg.cset (fun id _ ->
          Hashtbl.replace agg.compiled id ());
      Some agg
    end
  in
  let planning_set =
    match agg with Some a -> a.cset | None -> pset
  in
  let stats, tree = plan ~bins ~old_stats:None planning_set spec in
  let flat = Flat.compile tree in
  let t =
    {
      pset;
      bins;
      spec;
      stats;
      tree;
      flat;
      cursor = Flat.cursor flat;
      recorder = None;
      pool = None;
      ops = Ops.create ();
      instruments = Option.map make_instruments metrics;
      agg;
    }
  in
  observe_tree t;
  Option.iter observe_agg agg;
  t

let spec t = t.spec

let profiles t = t.pset

let tree t = t.tree

let flat t = t.flat

let stats t = t.stats

let ops t = t.ops

let aggregated t = Option.is_some t.agg

let epoch t = match t.agg with Some a -> a.epoch | None -> 0

let pending_rebuild t =
  match t.agg with Some a -> pending_of a | None -> 0

let swap_due t =
  match t.agg with Some a -> pending_of a > a.delta_cap | None -> false

let absorbed_profiles t =
  match t.agg with Some a -> Lattice.absorbed a.lat | None -> 0

let lattice_roots t =
  match t.agg with
  | Some a -> Lattice.root_count a.lat
  | None -> Profile_set.size t.pset

let lattice t = Option.map (fun a -> a.lat) t.agg

let swap_metrics t agg =
  agg.epoch <- agg.epoch + 1;
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.incr ins.rebuilds_total;
    observe_tree t);
  (match agg.agg_ins with
  | None -> ()
  | Some ins -> Metrics.Counter.incr ins.epoch_swaps_total);
  observe_agg agg

(* Drop an in-flight background compile (joining its domain): the
   caller is about to recompile synchronously over fresher state, so
   the stale result would only be discarded on install anyway. *)
let discard_pending agg =
  match agg.pending with
  | None -> ()
  | Some ps ->
    ignore (Domain.join ps.ps_job);
    agg.pending <- None

(* Epoch swap: recompile the flat matcher over the current lattice
   roots and install it atomically (single field stores — the publish
   path between two swaps always sees one coherent compiled snapshot
   plus the delta tables). The retired statistics' learned history is
   absorbed so distribution-based reordering survives the swap. *)
let swap_agg t agg =
  discard_pending agg;
  let cset = root_snapshot agg (Profile_set.schema t.pset) in
  let old = t.stats in
  let decomp = Decomp.build cset in
  let stats = Stats.create ~bins:t.bins decomp in
  Stats.absorb stats ~from:old;
  t.stats <- stats;
  agg.cset <- cset;
  install_tree t (Reorder.build t.stats t.spec);
  Hashtbl.reset agg.compiled;
  Hashtbl.reset agg.dead;
  Hashtbl.reset agg.delta;
  Profile_set.iter cset (fun id _ -> Hashtbl.replace agg.compiled id ());
  swap_metrics t agg

(* Keep the reachability invariant for one root equivalence class:
   some member must sit in the compiled-live or delta set. *)
let ensure_reachable agg members =
  let live m =
    (Hashtbl.mem agg.compiled m && not (Hashtbl.mem agg.dead m))
    || Hashtbl.mem agg.delta m
  in
  if not (List.exists live members) then
    match members with
    | [] -> ()
    | m :: _ -> Hashtbl.replace agg.delta m ()

(* Launch the compile-heavy phase on a background domain. Everything
   the domain touches is private to it: the root snapshot is built
   here on the owning thread, and the statistics history crosses over
   as an immutable {!Stats.Export.t} value — the live [t.stats] keeps
   absorbing events concurrently without being shared. *)
let start_async_swap t agg =
  let cset = root_snapshot agg (Profile_set.schema t.pset) in
  let history = Stats.export t.stats in
  let bins = t.bins and spec = t.spec in
  let ready = Atomic.make false in
  let job =
    Domain.spawn (fun () ->
        let decomp = Decomp.build cset in
        let stats = Stats.create ~bins decomp in
        (* Same-schema arity always matches; a failure would only mean
           the reorder runs from cold statistics, never a wrong match. *)
        (match Stats.import stats history with Ok () | Error _ -> ());
        let tree = Reorder.build stats spec in
        let flat = Flat.compile tree in
        Atomic.set ready true;
        (stats, tree, flat))
  in
  agg.pending <- Some { ps_cset = cset; ps_job = job; ps_ready = ready }

(* Install a finished background compile. The snapshot may be slightly
   stale — churn kept landing while the domain compiled — so reconcile:
   compiled ids whose profile has since been removed become [dead], and
   every current root class gets a delta slot unless it is already
   reachable. The reachability invariant therefore holds for the {e
   current} lattice, and matching over the freshly installed form is
   exact for the current population. *)
let install_pending t agg ps =
  let stats, tree, flat = Domain.join ps.ps_job in
  agg.pending <- None;
  t.stats <- stats;
  agg.cset <- ps.ps_cset;
  t.tree <- tree;
  t.flat <- flat;
  t.cursor <- Flat.cursor flat;
  (match t.recorder with
  | None -> ()
  | Some _ -> t.recorder <- Some (Flat.recorder flat));
  Hashtbl.reset agg.compiled;
  Hashtbl.reset agg.dead;
  Hashtbl.reset agg.delta;
  Profile_set.iter ps.ps_cset (fun id _ -> Hashtbl.replace agg.compiled id ());
  Hashtbl.iter
    (fun id () ->
      if not (Lattice.mem agg.lat id) then Hashtbl.replace agg.dead id ())
    agg.compiled;
  List.iter
    (fun (id, _) ->
      match Lattice.node_of agg.lat id with
      | Some node -> ensure_reachable agg (Lattice.node_members node)
      | None -> ())
    (Lattice.minimal_cover agg.lat);
  swap_metrics t agg

(* Opportunistic install point, polled from churn and match entries:
   one atomic load when a compile is in flight, nothing otherwise. *)
let poll_pending t agg =
  match agg.pending with
  | Some ps when Atomic.get ps.ps_ready -> install_pending t agg ps
  | Some _ | None -> ()

let rebuild t =
  match t.agg with
  | Some agg -> swap_agg t agg
  | None ->
    (* Keep the statistics when the profile set is unchanged (the
       normal re-optimization path); refresh the decomposition
       otherwise. *)
    let stats, tree =
      plan ~bins:t.bins ~old_stats:(Some t.stats) t.pset t.spec
    in
    t.stats <- stats;
    install_tree t tree;
    (match t.instruments with
    | None -> ()
    | Some ins ->
      Metrics.Counter.incr ins.rebuilds_total;
      observe_tree t)

let swap_now t =
  match t.agg with Some agg -> swap_agg t agg | None -> rebuild t

(* -- Background (asynchronous) epoch swaps ------------------------- *)

let set_async_swaps t on =
  match t.agg with
  | None -> ()
  | Some agg ->
    if not on then (
      match agg.pending with
      | Some ps -> install_pending t agg ps
      | None -> ());
    agg.async <- on

let async_swaps t = match t.agg with Some a -> a.async | None -> false

let await_swap t =
  match t.agg with
  | None -> ()
  | Some agg -> (
    match agg.pending with
    | Some ps -> install_pending t agg ps
    | None -> ())

let set_spec t spec =
  t.spec <- spec;
  rebuild t

let refresh_if_stale t =
  match t.agg with
  | Some _ -> ()  (* churn goes through add/remove_profile; never stale *)
  | None ->
    if Tree.revision t.tree <> Profile_set.revision t.pset then begin
      (* Profiles changed: rebuild decomposition and statistics. The
         observed history refers to stale cells, so it is restarted. *)
      let decomp = Decomp.build t.pset in
      t.stats <- Stats.create ~bins:t.bins decomp;
      install_tree t (Reorder.build t.stats t.spec);
      match t.instruments with
      | None -> ()
      | Some ins ->
        Metrics.Counter.incr ins.rebuilds_total;
        observe_tree t
    end

let refresh_keeping_history t =
  match t.agg with
  | Some agg -> if pending_of agg > 0 then swap_agg t agg
  | None ->
    if Tree.revision t.tree <> Profile_set.revision t.pset then begin
      let old = t.stats in
      let decomp = Decomp.build t.pset in
      let stats = Stats.create ~bins:t.bins decomp in
      Stats.absorb stats ~from:old;
      t.stats <- stats;
      install_tree t (Reorder.build t.stats t.spec);
      match t.instruments with
      | None -> ()
      | Some ins ->
        Metrics.Counter.incr ins.rebuilds_total;
        observe_tree t
    end

(* -- Aggregated registry churn ------------------------------------- *)

let maybe_swap t agg =
  poll_pending t agg;
  if agg.pending = None && pending_of agg > agg.delta_cap then
    if agg.async then start_async_swap t agg else swap_agg t agg

let agg_added t agg id profile =
  (match Lattice.add agg.lat ~id profile with
  | Lattice.Absorbed _ ->
    (* Covered (or equivalent) region: the lattice alone absorbs it;
       the compiled matcher is untouched. *)
    ()
  | Lattice.Rooted { demoted } ->
    (* Former roots now live under the new one: their members no
       longer need a delta slot of their own. *)
    List.iter
      (List.iter (fun m -> Hashtbl.remove agg.delta m))
      demoted;
    Hashtbl.replace agg.delta id ());
  maybe_swap t agg;
  observe_agg agg

let agg_removed t agg id =
  (match Lattice.remove agg.lat id with
  | None -> ()
  | Some r ->
    if Hashtbl.mem agg.compiled id then Hashtbl.replace agg.dead id ();
    Hashtbl.remove agg.delta id;
    (match r with
    | Lattice.Shrunk { root = true; members } -> ensure_reachable agg members
    | Lattice.Shrunk { root = false; _ } -> ()
    | Lattice.Dissolved { promoted; _ } ->
      List.iter (ensure_reachable agg) promoted));
  maybe_swap t agg;
  observe_agg agg

let add_profile t profile =
  let id = Profile_set.add t.pset profile in
  (match t.agg with None -> () | Some agg -> agg_added t agg id profile);
  id

let add_profile_with_id t ~id profile =
  Profile_set.add_with_id t.pset ~id profile;
  match t.agg with None -> () | Some agg -> agg_added t agg id profile

let remove_profile t id =
  let present = Profile_set.remove t.pset id in
  (if present then
     match t.agg with None -> () | Some agg -> agg_removed t agg id);
  present

(* -- Matching ------------------------------------------------------ *)

(* Match one event through the flat cursor; returns the match count,
   ids borrowed from the cursor. Counter semantics are bit-identical to
   the former Tree.match_event path. *)
let match_flat t event =
  match t.recorder with
  | None -> Flat.match_into ~ops:t.ops t.flat t.cursor event
  | Some r -> Flat.match_into_recorded ~ops:t.ops t.flat t.cursor r event

let grow_scratch agg n =
  if Array.length agg.scratch < n then
    agg.scratch <-
      Array.make (Stdlib.max n (2 * Array.length agg.scratch)) 0

(* Aggregated match: the compiled flat form decides the root
   representatives exactly; covered profiles are then collected by
   descending covering links from each matched root (plus the delta
   roots, verified directly), pruning any subtree whose node profile
   rejects the event — a coverer's rejection implies rejection of
   everything it covers. Each candidate-node verification counts one
   comparison. *)
let match_agg t agg event =
  poll_pending t agg;
  let schema = Profile_set.schema t.pset in
  let nflat = match_flat t event in
  let out = Flat.matches t.cursor in
  Lattice.begin_visit agg.lat;
  let acc = ref [] and count = ref 0 in
  let rec expand ~verified node =
    if not (Lattice.seen agg.lat node) then begin
      let matched =
        verified
        ||
        (t.ops.Ops.comparisons <- t.ops.Ops.comparisons + 1;
         Profile.matches schema (Lattice.node_profile node) event)
      in
      if matched then begin
        List.iter
          (fun m ->
            acc := m :: !acc;
            incr count)
          (Lattice.node_members node);
        List.iter (expand ~verified:false) (Lattice.node_children node)
      end
    end
  in
  for i = 0 to nflat - 1 do
    let id = out.(i) in
    if not (Hashtbl.mem agg.dead id) then
      match Lattice.node_of agg.lat id with
      | Some node -> expand ~verified:true node
      | None -> ()
  done;
  Hashtbl.iter
    (fun id () ->
      match Lattice.node_of agg.lat id with
      | Some node -> expand ~verified:false node
      | None -> ())
    agg.delta;
  let n = !count in
  grow_scratch agg n;
  let i = ref 0 in
  List.iter
    (fun id ->
      agg.scratch.(!i) <- id;
      incr i)
    !acc;
  let sub = Array.sub agg.scratch 0 n in
  Array.sort Int.compare sub;
  Array.blit sub 0 agg.scratch 0 n;
  (* The flat form counted its own matches (the root hits); align the
     cumulative pair counter with what the caller actually receives. *)
  t.ops.Ops.matches <- t.ops.Ops.matches + (n - nflat);
  n

let match_dispatch t event =
  match t.agg with
  | None -> match_flat t event
  | Some agg -> match_agg t agg event

(* The buffer holding the current match ids (first [len] slots). *)
let result_buffer t =
  match t.agg with
  | None -> Flat.matches t.cursor
  | Some agg -> agg.scratch

let match_core t event =
  refresh_if_stale t;
  Stats.observe_event t.stats event;
  match t.instruments with
  | None -> match_dispatch t event
  | Some ins ->
    let c0 = t.ops.Ops.comparisons in
    let t0 = Genas_obs.Clock.now_ns () in
    let n = match_dispatch t event in
    let dt = Int64.to_float (Int64.sub (Genas_obs.Clock.now_ns ()) t0) in
    let dc = t.ops.Ops.comparisons - c0 in
    Metrics.Histogram.observe ins.match_ns (Float.max 0.0 dt);
    Metrics.Histogram.observe ins.match_comparisons (float_of_int dc);
    Metrics.Counter.incr ins.events_total;
    Metrics.Counter.add ins.comparisons_total dc;
    Metrics.Counter.add ins.matches_total n;
    n

let match_event t event =
  let n = match_core t event in
  let out = result_buffer t in
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (out.(i) :: acc)
  in
  build (n - 1) []

let match_with t event ~f =
  let n = match_core t event in
  f ~ids:(result_buffer t) ~len:n

let match_batch ?pool t events =
  match t.agg with
  | Some agg ->
    (* Aggregated engines match batches sequentially: the pool workers
       only execute the compiled flat form, which no longer holds the
       full profile population. *)
    ignore pool;
    Array.iter (fun e -> Stats.observe_event t.stats e) events;
    let c0 = t.ops.Ops.comparisons and m0 = t.ops.Ops.matches in
    let results =
      Array.map
        (fun e ->
          let n = match_agg t agg e in
          Array.sub agg.scratch 0 n)
        events
    in
    (match t.instruments with
    | None -> ()
    | Some ins ->
      Metrics.Counter.add ins.events_total (Array.length events);
      Metrics.Counter.add ins.comparisons_total (t.ops.Ops.comparisons - c0);
      Metrics.Counter.add ins.matches_total (t.ops.Ops.matches - m0));
    results
  | None ->
    refresh_if_stale t;
    Array.iter (fun e -> Stats.observe_event t.stats e) events;
    let c0 = t.ops.Ops.comparisons and m0 = t.ops.Ops.matches in
    let pool = match pool with Some _ -> pool | None -> t.pool in
    let results =
      match pool with
      | Some p when Pool.domains p > 1 && Array.length events > 1 ->
        Pool.match_batch ~ops:t.ops p t.flat events
      | Some _ | None ->
        let out = Array.make (Array.length events) [||] in
        (match t.recorder with
        | None ->
          Flat.match_batch ~ops:t.ops t.flat t.cursor events
            ~f:(fun i ~ids ~len -> out.(i) <- Array.sub ids 0 len)
        | Some r ->
          Array.iteri
            (fun i e ->
              let len =
                Flat.match_into_recorded ~ops:t.ops t.flat t.cursor r e
              in
              out.(i) <- Array.sub (Flat.matches t.cursor) 0 len)
            events);
        out
    in
    (match t.instruments with
    | None -> ()
    | Some ins ->
      Metrics.Counter.add ins.events_total (Array.length events);
      Metrics.Counter.add ins.comparisons_total (t.ops.Ops.comparisons - c0);
      Metrics.Counter.add ins.matches_total (t.ops.Ops.matches - m0));
    results

let replay_observe t event =
  (* Journal replay: feed the statistics exactly as [match_core] would —
     including the history reset a stale profile set triggers — without
     matching or delivering anything. *)
  refresh_if_stale t;
  Stats.observe_event t.stats event

let restore_ops t (o : Ops.t) =
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.add ins.events_total
      (Stdlib.max 0 (o.Ops.events - t.ops.Ops.events));
    Metrics.Counter.add ins.comparisons_total
      (Stdlib.max 0 (o.Ops.comparisons - t.ops.Ops.comparisons));
    Metrics.Counter.add ins.matches_total
      (Stdlib.max 0 (o.Ops.matches - t.ops.Ops.matches)));
  t.ops.Ops.events <- o.Ops.events;
  t.ops.Ops.comparisons <- o.Ops.comparisons;
  t.ops.Ops.node_visits <- o.Ops.node_visits;
  t.ops.Ops.matches <- o.Ops.matches

let report t = Cost.evaluate_with_stats t.tree t.stats

(* -- Pool attachment ----------------------------------------------- *)

let set_pool t p = t.pool <- p

let pool t = t.pool

(* -- Hotness-guided relayout --------------------------------------- *)

(* Reorder the compiled flat form by the recorder's observed per-node
   visit counts (the "odds-on" layout) and install it with the same
   single-field-store discipline the epoch swap uses: flat, then
   cursor, then a fresh recorder keyed to the new node ids. Matching
   behaviour and counters are bit-identical — only memory order moves —
   so neither the pointer tree, the statistics, nor the aggregation
   delta tables are touched. *)
let relayout_now t =
  match t.recorder with
  | Some r when Flat.recorded_events r > 0 ->
    let flat = Flat.relayout t.flat (Flat.node_visits r) in
    t.flat <- flat;
    t.cursor <- Flat.cursor flat;
    t.recorder <- Some (Flat.recorder flat);
    true
  | Some _ | None -> false

(* ------------------------------------------------------------------ *)
(* Hotness profiling *)

let set_profiling t on =
  match (on, t.recorder) with
  | true, None -> t.recorder <- Some (Flat.recorder t.flat)
  | false, Some _ -> t.recorder <- None
  | true, Some _ | false, None -> ()

let profiling t = Option.is_some t.recorder

let recorder t = t.recorder

let last_path t =
  match t.recorder with None -> [] | Some r -> Flat.last_path r

let advisory ?tolerance t =
  match t.recorder with
  | None -> None
  | Some r ->
    Some
      (Explain.advisory ?tolerance t.tree
         ~level_visits:(Flat.level_visits r)
         ~events:(Flat.recorded_events r))
