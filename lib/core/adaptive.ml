module Decomp = Genas_filter.Decomp
module Estimator = Genas_dist.Estimator
module Dist = Genas_dist.Dist
module Metrics = Genas_obs.Metrics

type policy = { warmup : int; check_every : int; drift_threshold : float }

let default_policy = { warmup = 500; check_every = 200; drift_threshold = 0.25 }

type instruments = {
  checks_total : Metrics.counter;
  rebuilds_total : Metrics.counter;
  rebuild_ns : Metrics.histogram;
  last_drift_gauge : Metrics.gauge;
}

let make_instruments registry =
  {
    checks_total =
      Metrics.counter registry "genas_adaptive_checks_total"
        ~help:"Drift checks performed";
    rebuilds_total =
      Metrics.counter registry "genas_adaptive_rebuilds_total"
        ~help:"Drift-triggered tree re-optimizations";
    rebuild_ns =
      Metrics.histogram registry "genas_adaptive_rebuild_duration_ns"
        ~help:"Wall-clock duration of one adaptive rebuild (ns, monotonic)";
    last_drift_gauge =
      Metrics.gauge registry "genas_adaptive_last_drift"
        ~help:"Drift at the most recent check (L1 distance, clamped to [0,2])";
  }

type t = {
  engine : Engine.t;
  policy : policy;
  mutable planned_for : Dist.t array option;
      (** per-attribute event distributions the current tree was
          planned for; [None] until the first adaptive rebuild *)
  mutable planned_hist : Estimator.Export.t array option;
      (** observed-histogram snapshot taken at the same rebuild —
          the durable form of [planned_for] *)
  mutable since_check : int;
  mutable seen : int;
  mutable checks : int;
  mutable rebuilds : int;
  mutable last_drift : float;
  instruments : instruments option;
}

let create ?(policy = default_policy) ?metrics engine =
  if policy.warmup < 0 || policy.check_every <= 0 then
    invalid_arg "Adaptive.create: malformed policy";
  {
    engine;
    policy;
    planned_for = None;
    planned_hist = None;
    since_check = 0;
    seen = 0;
    checks = 0;
    rebuilds = 0;
    last_drift = 0.0;
    instruments = Option.map make_instruments metrics;
  }

let engine t = t.engine

let current_dists t =
  let stats = Engine.stats t.engine in
  let n = Decomp.arity (Stats.decomp stats) in
  Array.init n (fun attr -> Stats.event_dist stats ~attr)

let rebuild t =
  (match t.instruments with
  | None -> Engine.rebuild t.engine
  | Some ins ->
    Genas_obs.Span.time ins.rebuild_ns (fun () -> Engine.rebuild t.engine);
    Metrics.Counter.incr ins.rebuilds_total);
  t.planned_for <- Some (current_dists t);
  t.planned_hist <- Some (Stats.export (Engine.stats t.engine)).Stats.Export.hists;
  t.rebuilds <- t.rebuilds + 1

let drift t =
  match t.planned_for with
  | None -> Float.infinity  (* never planned from data: always stale *)
  | Some planned ->
    let now = current_dists t in
    let worst = ref 0.0 in
    Array.iteri
      (fun i d ->
        let dd = Estimator.l1_on_grid d now.(i) in
        if dd > !worst then worst := dd)
      planned;
    !worst

let force_check t =
  let d = drift t in
  t.checks <- t.checks + 1;
  (* The gauge/readout value is clamped to the L1 metric's range [0,2];
     the rebuild decision below uses the raw (possibly infinite)
     drift, so a never-planned tree always rebuilds regardless of the
     threshold. *)
  t.last_drift <- (if Float.is_finite d then d else 2.0);
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.incr ins.checks_total;
    Metrics.Gauge.set ins.last_drift_gauge t.last_drift);
  if d > t.policy.drift_threshold then begin
    rebuild t;
    true
  end
  else false

(* [since_check] accumulates during warmup, so the first check is due
   at exactly [seen = warmup] (or at the first post-warmup event when
   [warmup < check_every]); subsequent checks every [check_every]. *)
let note_events t n =
  if n > 0 then begin
    t.seen <- t.seen + n;
    t.since_check <- t.since_check + n;
    if
      t.seen >= t.policy.warmup
      && (t.checks = 0 || t.since_check >= t.policy.check_every)
    then begin
      t.since_check <- 0;
      ignore (force_check t)
    end
  end

let match_event t event =
  let result = Engine.match_event t.engine event in
  note_events t 1;
  result

let match_batch ?pool t events =
  let results = Engine.match_batch ?pool t.engine events in
  (* The whole batch is observed before at most one drift check runs:
     a check mid-batch would re-plan the tree under the feet of the
     batch's own statistics, for no measurable gain. *)
  note_events t (Array.length events);
  results

let rebuilds t = t.rebuilds

let checks t = t.checks

let last_drift t = t.last_drift

module Export = struct
  type nonrec t = {
    seen : int;
    since_check : int;
    checks : int;
    rebuilds : int;
    last_drift : float;
    planned : Estimator.Export.t array option;
  }
end

let copy_hist (e : Estimator.Export.t) =
  { e with Estimator.Export.counts = Array.copy e.Estimator.Export.counts }

let export t =
  {
    Export.seen = t.seen;
    since_check = t.since_check;
    checks = t.checks;
    rebuilds = t.rebuilds;
    last_drift = t.last_drift;
    planned = Option.map (Array.map copy_hist) t.planned_hist;
  }

(* Reconstruct the planned-for distributions exactly as [Stats.event_dist]
   would have produced them at rebuild time: smoothed estimate when the
   histogram held observations, uniform otherwise. Assumed (caller-
   installed) distributions are runtime configuration and are not part
   of the durable state; a recovered component measures drift against
   the observed histograms. *)
let restore_planned decomp hx =
  let n = Decomp.arity decomp in
  if Array.length hx <> n then
    Error "Adaptive.import: planned-distribution arity mismatch"
  else
    let rec go i acc =
      if i = n then Ok (Array.of_list (List.rev acc))
      else
        match Estimator.of_export decomp.Decomp.axes.(i) hx.(i) with
        | Error msg -> Error msg
        | Ok est ->
          let d =
            if Estimator.count est > 0 then
              Estimator.estimate ~smoothing:Stats.history_smoothing est
            else Dist.uniform decomp.Decomp.axes.(i)
          in
          go (i + 1) (d :: acc)
    in
    go 0 []

let import t (e : Export.t) =
  let decomp = Stats.decomp (Engine.stats t.engine) in
  let planned =
    match e.Export.planned with
    | None -> Ok None
    | Some hx -> Result.map Option.some (restore_planned decomp hx)
  in
  match planned with
  | Error msg -> Error msg
  | Ok planned ->
    (match t.instruments with
    | None -> ()
    | Some ins ->
      Metrics.Counter.add ins.checks_total
        (Stdlib.max 0 (e.Export.checks - t.checks));
      Metrics.Counter.add ins.rebuilds_total
        (Stdlib.max 0 (e.Export.rebuilds - t.rebuilds));
      Metrics.Gauge.set ins.last_drift_gauge e.Export.last_drift);
    t.planned_for <- planned;
    t.planned_hist <- Option.map (Array.map copy_hist) e.Export.planned;
    t.seen <- e.Export.seen;
    t.since_check <- e.Export.since_check;
    t.checks <- e.Export.checks;
    t.rebuilds <- e.Export.rebuilds;
    t.last_drift <- e.Export.last_drift;
    Ok ()
