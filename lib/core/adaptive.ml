module Decomp = Genas_filter.Decomp
module Estimator = Genas_dist.Estimator
module Dist = Genas_dist.Dist
module Metrics = Genas_obs.Metrics

type policy = { warmup : int; check_every : int; drift_threshold : float }

let default_policy = { warmup = 500; check_every = 200; drift_threshold = 0.25 }

type instruments = {
  checks_total : Metrics.counter;
  rebuilds_total : Metrics.counter;
  rebuild_ns : Metrics.histogram;
  last_drift_gauge : Metrics.gauge;
}

let make_instruments registry =
  {
    checks_total =
      Metrics.counter registry "genas_adaptive_checks_total"
        ~help:"Drift checks performed";
    rebuilds_total =
      Metrics.counter registry "genas_adaptive_rebuilds_total"
        ~help:"Drift-triggered tree re-optimizations";
    rebuild_ns =
      Metrics.histogram registry "genas_adaptive_rebuild_duration_ns"
        ~help:"Wall-clock duration of one adaptive rebuild (ns, monotonic)";
    last_drift_gauge =
      Metrics.gauge registry "genas_adaptive_last_drift"
        ~help:"Drift at the most recent check (L1 distance, clamped to [0,2])";
  }

type t = {
  engine : Engine.t;
  policy : policy;
  mutable planned_for : Dist.t array option;
      (** per-attribute event distributions the current tree was
          planned for; [None] until the first adaptive rebuild *)
  mutable since_check : int;
  mutable seen : int;
  mutable checks : int;
  mutable rebuilds : int;
  mutable last_drift : float;
  instruments : instruments option;
}

let create ?(policy = default_policy) ?metrics engine =
  if policy.warmup < 0 || policy.check_every <= 0 then
    invalid_arg "Adaptive.create: malformed policy";
  {
    engine;
    policy;
    planned_for = None;
    since_check = 0;
    seen = 0;
    checks = 0;
    rebuilds = 0;
    last_drift = 0.0;
    instruments = Option.map make_instruments metrics;
  }

let engine t = t.engine

let current_dists t =
  let stats = Engine.stats t.engine in
  let n = Decomp.arity (Stats.decomp stats) in
  Array.init n (fun attr -> Stats.event_dist stats ~attr)

let rebuild t =
  (match t.instruments with
  | None -> Engine.rebuild t.engine
  | Some ins ->
    Genas_obs.Span.time ins.rebuild_ns (fun () -> Engine.rebuild t.engine);
    Metrics.Counter.incr ins.rebuilds_total);
  t.planned_for <- Some (current_dists t);
  t.rebuilds <- t.rebuilds + 1

let drift t =
  match t.planned_for with
  | None -> Float.infinity  (* never planned from data: always stale *)
  | Some planned ->
    let now = current_dists t in
    let worst = ref 0.0 in
    Array.iteri
      (fun i d ->
        let dd = Estimator.l1_on_grid d now.(i) in
        if dd > !worst then worst := dd)
      planned;
    !worst

let force_check t =
  let d = drift t in
  t.checks <- t.checks + 1;
  (* The gauge/readout value is clamped to the L1 metric's range [0,2];
     the rebuild decision below uses the raw (possibly infinite)
     drift, so a never-planned tree always rebuilds regardless of the
     threshold. *)
  t.last_drift <- (if Float.is_finite d then d else 2.0);
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.incr ins.checks_total;
    Metrics.Gauge.set ins.last_drift_gauge t.last_drift);
  if d > t.policy.drift_threshold then begin
    rebuild t;
    true
  end
  else false

(* [since_check] accumulates during warmup, so the first check is due
   at exactly [seen = warmup] (or at the first post-warmup event when
   [warmup < check_every]); subsequent checks every [check_every]. *)
let note_events t n =
  if n > 0 then begin
    t.seen <- t.seen + n;
    t.since_check <- t.since_check + n;
    if
      t.seen >= t.policy.warmup
      && (t.checks = 0 || t.since_check >= t.policy.check_every)
    then begin
      t.since_check <- 0;
      ignore (force_check t)
    end
  end

let match_event t event =
  let result = Engine.match_event t.engine event in
  note_events t 1;
  result

let match_batch ?pool t events =
  let results = Engine.match_batch ?pool t.engine events in
  (* The whole batch is observed before at most one drift check runs:
     a check mid-batch would re-plan the tree under the feet of the
     batch's own statistics, for no measurable gain. *)
  note_events t (Array.length events);
  results

let rebuilds t = t.rebuilds

let checks t = t.checks

let last_drift t = t.last_drift
