(** Statistics objects (§4.2).

    The prototype keeps "statistic objects with counters for events,
    attributes, operators, and values"; the distribution-based measures
    read event and profile distributions from them. Two sources feed
    each attribute's event distribution:

    - {e observed}: a streaming histogram over the events actually
      filtered (the history of §5), and
    - {e assumed}: an explicit distribution installed by the caller —
      the paper's tests "manipulate the counters in order to simulate a
      distribution" and this is the equivalent hook.

    An assumed distribution, when present, takes precedence over the
    observed histogram. The profile distribution Pp defaults to the
    reference counts in the decomposition (the fraction of profiles
    referencing each cell) and can likewise be overridden. *)

type t

val create : ?bins:int -> Genas_filter.Decomp.t -> t
(** Estimator bin count defaults to 64 per attribute. *)

val decomp : t -> Genas_filter.Decomp.t

val observe_event : t -> Genas_model.Event.t -> unit

val observe_coords : t -> float array -> unit
(** Coordinates by natural attribute index. *)

val events_seen : t -> int

val assume_event_dist : t -> attr:int -> Genas_dist.Dist.t -> unit
(** Install/replace the assumed event distribution of one attribute.

    @raise Invalid_argument if the distribution's axis differs from the
    attribute's. *)

val clear_assumed : t -> attr:int -> unit

val event_dist : t -> attr:int -> Genas_dist.Dist.t
(** Assumed distribution if installed; otherwise the smoothed observed
    histogram; otherwise (no observations at all) uniform. *)

val event_cell_probs : t -> attr:int -> float array
(** [event_dist] quantized onto the attribute's global cells: the
    Pe(x_i) of §3. *)

val profile_cell_weights : t -> attr:int -> float array
(** Pp(x_i): per global cell, the fraction of profiles whose predicate
    references it (0 for D0 cells); overridden weights if installed.
    All-zero when no profile constrains the attribute. *)

val assume_profile_weights : t -> attr:int -> float array -> unit
(** Override Pp for one attribute (length must equal the cell count).
    The paper's tests simulate profile distributions the same way. *)

val set_priority : t -> id:int -> float -> unit
(** Give one profile a weight in the profile distribution (default
    1.0). V2/V3 then order values by priority-weighted reference mass,
    sharpening the paper's observation that profile-dependent measures
    yield "faster notifications for profiles with high priority" into
    an explicit knob. Ignored for ids not in the decomposition.

    @raise Invalid_argument on negative priorities. *)

val priority : t -> id:int -> float

val d0_event_prob : t -> attr:int -> float
(** Pe(D0): probability that an event's value falls in the
    zero-subdomain — the second factor of measure A2. *)

val history_smoothing : float
(** Pseudo-count applied to the observed histogram when it backs
    {!event_dist} (0.5). Exposed so recovery code can reconstruct the
    exact distribution a live statistics object would have produced. *)

val reset_observations : t -> unit

(** {1 Serialization}

    The durable subset of a statistics object: per-attribute observed
    histograms, the events-seen count, and profile priorities. Assumed
    (caller-installed) event distributions and profile-weight overrides
    are runtime configuration and are deliberately {e not} part of an
    export — a recovered broker's caller re-installs them if wanted. *)

module Export : sig
  type t = {
    hists : Genas_dist.Estimator.Export.t array;
    events_seen : int;
    priorities : (int * float) list;  (** sorted by profile id *)
  }
end

val export : t -> Export.t

val import : t -> Export.t -> (unit, string) result
(** Replace the observed history and priorities with the exported
    ones. Fails on attribute-arity or histogram-layout mismatch; on
    failure the target may have been partially updated and should be
    discarded. *)

val absorb : t -> from:t -> unit
(** [absorb t ~from] merges [from]'s observed event history (the
    per-attribute streaming histograms and the events-seen count, plus
    any assumed event distributions [t] lacks) into [t]. The two
    statistics objects must describe the same schema — attribute axes
    are schema-derived, so any two decomposition snapshots of the same
    schema qualify even when their profile sets differ. Physical
    identity is a no-op, so absorbing a statistics object into itself
    never double-counts.

    This is how learned distributions survive a profile-set change: a
    fresh statistics object built for the new decomposition absorbs the
    retired one ({!Engine.refresh_keeping_history}).

    @raise Invalid_argument if the attribute axes disagree. *)
