(** Covering relation between profiles.

    Profile [a] covers profile [b] when every event matched by [b] is
    also matched by [a] (for conjunctive profiles: attribute-wise
    denotation containment). Siena-style routing (§2's related work,
    implemented in [lib/ens]) propagates only covering-minimal
    subscription sets between brokers; {!Lattice} maintains the same
    relation incrementally.

    The relation is axis-aware: a predicate whose denotation spans its
    whole axis (e.g. [x >= lo] on a bounded domain) constrains nothing
    and compares equal to an absent test, so such profiles are
    recognized as covering — and equivalent to — don't-cares. *)

val covers : Genas_model.Schema.t -> Profile.t -> Profile.t -> bool
(** [covers schema a b] iff [a]'s match set is a superset of [b]'s.
    Both profiles must be bound to [schema]. *)

val equivalent : Genas_model.Schema.t -> Profile.t -> Profile.t -> bool
(** Mutual covering. *)

val minimal_cover :
  Genas_model.Schema.t ->
  (Profile_set.id * Profile.t) list ->
  (Profile_set.id * Profile.t) list
(** Subset of the input whose members are not covered by any *other*
    member; among equivalent profiles the one with the smallest id is
    kept. The result covers the same event set as the input. The
    incremental equivalent is {!Lattice.minimal_cover}. *)
