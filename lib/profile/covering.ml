module Iset = Genas_interval.Iset
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis

(* A denotation that spans its whole axis constrains nothing: an event
   value is always inside it, so the attribute behaves exactly like a
   don't-care. Recognizing this needs the axis bounds, which is why the
   covering relation takes the schema. Denotations are normalized
   (discrete sets are integer-merged), so structural [Iset.equal]
   against the full axis is an exact emptiness-of-constraint test. *)

let axes_of schema =
  Array.map
    (fun a -> Axis.of_domain a.Schema.domain)
    (Schema.attributes schema)

let normalize ~full d =
  match d with
  | None -> None
  | Some s -> if Iset.equal s full then None else d

let covers_axes axes a b =
  let n = Array.length a.Profile.denots in
  let rec check i =
    if i = n then true
    else
      let full = Iset.full axes.(i) in
      match
        ( normalize ~full a.Profile.denots.(i),
          normalize ~full b.Profile.denots.(i) )
      with
      | None, (Some _ | None) -> check (i + 1)
      | Some _, None -> false
      | Some sa, Some sb -> Iset.subset sb sa && check (i + 1)
  in
  check 0

let covers schema a b = covers_axes (axes_of schema) a b

let equivalent schema a b =
  let axes = axes_of schema in
  covers_axes axes a b && covers_axes axes b a

(* [p'] eliminates [p] if it strictly covers it, or if they are
   equivalent and [p'] has the smaller id. *)
let eliminates_axes axes ~id' ~id p' p =
  covers_axes axes p' p && ((not (covers_axes axes p p')) || id' < id)

let minimal_cover schema entries =
  let axes = axes_of schema in
  List.filter
    (fun (id, p) ->
      not
        (List.exists
           (fun (id', p') -> id' <> id && eliminates_axes axes ~id' ~id p' p)
           entries))
    entries
