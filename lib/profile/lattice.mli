(** Subscription-aggregation index: an incrementally maintained
    covering lattice.

    The lattice holds every live profile of a registry, grouped into
    equivalence classes (profiles with identical match sets share one
    node, represented by their smallest id) and linked by the covering
    partial order of {!Covering}: a node's parents cover it, its
    children are covered by it. The roots — nodes no other live node
    covers — are exactly the covering-minimal profile set, so
    {!minimal_cover} is a read-off instead of the O(n²) rescan of
    {!Covering.minimal_cover}, and insertion/removal only walk the
    covering chains that actually involve the profile (pruned further
    by per-attribute summary signatures: a constrained-attribute
    bitmask and per-attribute bounding hulls reject most candidate
    pairs without touching interval sets).

    Structural invariants maintained across arbitrary add/remove
    interleavings:

    - roots = the covering-minimal nodes, each represented by the
      smallest live id of its equivalence class (the same id
      {!Covering.minimal_cover} keeps), independent of insertion
      order — this is what makes recovery replay deterministic;
    - every non-root node has at least one parent, and every parent
      covers each of its children, so every live profile is reachable
      from some root through covering links (the matcher's expansion
      path);
    - all ids of an equivalence class resolve to the same node. *)

type t

val create : Genas_model.Schema.t -> t

type add_result =
  | Absorbed of { coverer : Profile_set.id }
      (** The profile fell into an existing covered region (or an
          existing equivalence class); [coverer] is the representative
          of one node covering it. The root set did not change. *)
  | Rooted of { demoted : Profile_set.id list list }
      (** The profile became a new root; [demoted] lists the member
          ids of each former root it now covers. *)

val add : t -> id:Profile_set.id -> Profile.t -> add_result
(** Insert a live profile under its registry id.

    @raise Invalid_argument if [id] is already present. *)

type remove_result =
  | Shrunk of { root : bool; members : Profile_set.id list }
      (** The id left an equivalence class that still has live
          members (listed ascending; head = new representative). *)
  | Dissolved of { root : bool; promoted : Profile_set.id list list }
      (** The id's node dissolved. Children left without any covering
          parent were re-placed: re-linked under other coverers when
          one exists, promoted to roots otherwise — [promoted] lists
          the member ids of each node that became a root. *)

val remove : t -> Profile_set.id -> remove_result option
(** [None] if the id is not present. *)

val mem : t -> Profile_set.id -> bool

val size : t -> int
(** Live profiles indexed. *)

val node_count : t -> int
(** Distinct equivalence classes. *)

val root_count : t -> int

val absorbed : t -> int
(** [size - root_count]: profiles that contribute nothing to the
    covering-minimal set (equivalence duplicates and covered
    profiles). *)

val minimal_cover : t -> (Profile_set.id * Profile.t) list
(** Root representatives with their canonical profiles, ascending by
    id. Equal to [Covering.minimal_cover schema (entries t)]. *)

val covered_by : t -> Profile.t -> Profile_set.id option
(** Representative of some root whose profile covers (or equals) the
    probe; [None] when no live profile covers it. Scans only the
    roots — an entry is covered iff some root covers it. *)

val entries : t -> (Profile_set.id * Profile.t) list
(** Every live id with its node's canonical profile, ascending. *)

val find : t -> Profile_set.id -> Profile.t option
(** Canonical profile of the id's equivalence class. *)

val descendant_count : t -> Profile_set.id -> int
(** Per-entry absorbed count: live profiles in the strict descendant
    region of the id's node (0 for ids absorbing nothing, and for
    unknown ids). *)

val cover_tests : t -> int
(** Cumulative covering tests executed (signature-rejected candidates
    included) — the probe for sublinearity assertions. *)

(** {1 Traversal}

    Match-time expansion for the aggregated engine: starting from
    matched roots, descend covering links, pruning subtrees whose node
    profile does not match the event (if a coverer rejects an event,
    everything it covers rejects too — the dual: only descend into
    children when the parent matched). Nodes carry a visit stamp so
    overlapping subtrees are expanded once per round. *)

type node

val node_of : t -> Profile_set.id -> node option

val node_members : node -> Profile_set.id list
(** Ascending; head = representative. *)

val node_profile : node -> Profile.t

val node_children : node -> node list

val node_is_root : node -> bool

val begin_visit : t -> unit
(** Start a visit round (invalidates previous marks in O(1)). *)

val seen : t -> node -> bool
(** Mark-and-test: [false] the first time a node is reached in the
    current round, [true] afterwards. *)
