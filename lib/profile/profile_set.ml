module Schema = Genas_model.Schema

type id = int

type t = {
  schema : Schema.t;
  profiles : (id, Profile.t) Hashtbl.t;
  mutable next_id : id;
  mutable revision : int;
}

let create schema =
  { schema; profiles = Hashtbl.create 64; next_id = 0; revision = 0 }

let schema t = t.schema

let add t profile =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.revision <- t.revision + 1;
  Hashtbl.replace t.profiles id profile;
  id

let add_with_id t ~id profile =
  if id < 0 then invalid_arg "Profile_set.add_with_id: negative id";
  if Hashtbl.mem t.profiles id then
    invalid_arg (Printf.sprintf "Profile_set.add_with_id: id %d in use" id);
  Hashtbl.replace t.profiles id profile;
  if id >= t.next_id then t.next_id <- id + 1;
  t.revision <- t.revision + 1

let reserve_ids t next =
  if next > t.next_id then t.next_id <- next

let next_id t = t.next_id

let add_spec t ?name specs =
  match Profile.create ?name t.schema specs with
  | Error e -> Error e
  | Ok p -> Ok (add t p)

let remove t id =
  if Hashtbl.mem t.profiles id then begin
    Hashtbl.remove t.profiles id;
    t.revision <- t.revision + 1;
    true
  end
  else false

let find t id = Hashtbl.find_opt t.profiles id

let find_exn t id =
  match find t id with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Profile_set.find_exn: no profile %d" id)

let mem t id = Hashtbl.mem t.profiles id

let size t = Hashtbl.length t.profiles

let revision t = t.revision

let ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.profiles []
  |> List.sort Int.compare

let iter t f = List.iter (fun id -> f id (Hashtbl.find t.profiles id)) (ids t)

let fold t ~init ~f =
  List.fold_left
    (fun acc id -> f acc id (Hashtbl.find t.profiles id))
    init (ids t)

let denotations t attr_index =
  fold t ~init:[] ~f:(fun acc id p ->
      match Profile.denotation p attr_index with
      | None -> acc
      | Some iset -> (id, iset) :: acc)
  |> List.rev
