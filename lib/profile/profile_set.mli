(** Profile registries.

    The set [P] of profiles defined in an ENS (§3), with stable integer
    identifiers. All matchers and trees are built from a registry
    snapshot; the adaptive engine rebuilds when the registry's revision
    changes. Removal keeps identifiers stable (ids are never reused). *)

type id = int

type t

val create : Genas_model.Schema.t -> t

val schema : t -> Genas_model.Schema.t

val add : t -> Profile.t -> id
(** Register a profile (already bound to the same schema) and return
    its id. *)

val add_spec :
  t -> ?name:string -> (string * Predicate.test) list -> (id, string) result
(** Convenience: bind and register in one step. *)

val add_with_id : t -> id:id -> Profile.t -> unit
(** Re-register a profile under an explicit identifier — the recovery
    path, where journaled ids must be reproduced exactly so the rebuilt
    tree and flat matcher are bit-identical to the original's. Advances
    the internal id counter past [id].

    @raise Invalid_argument if [id] is negative or already live. *)

val reserve_ids : t -> id -> unit
(** Ensure the next assigned id is at least [id]. Recovery uses this to
    restore the counter past ids that were assigned and later removed —
    ids are never reused, even across a crash. *)

val next_id : t -> id
(** The id the next [add] will assign (for durable snapshots). *)

val remove : t -> id -> bool
(** [true] if the id was present. *)

val find : t -> id -> Profile.t option

val find_exn : t -> id -> Profile.t

val mem : t -> id -> bool

val size : t -> int
(** [p], the number of live profiles. *)

val revision : t -> int
(** Monotone counter bumped by every [add]/[remove]; lets caches detect
    staleness. *)

val ids : t -> id list
(** Live ids, ascending. *)

val iter : t -> (id -> Profile.t -> unit) -> unit
(** In ascending id order. *)

val fold : t -> init:'a -> f:('a -> id -> Profile.t -> 'a) -> 'a

val denotations : t -> int -> (id * Genas_interval.Iset.t) list
(** Per-attribute denotations of all live profiles that constrain the
    attribute with the given natural index — the input to
    {!Genas_interval.Overlay.build}. *)
