module Iset = Genas_interval.Iset
module Interval = Genas_interval.Interval
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis

(* Per-node summary signature: [mask] has bit [i] set iff attribute [i]
   is constrained (axis-normalized: a full-axis denotation counts as
   unconstrained), [lo]/[hi] hold the bounding hull of each constrained
   denotation. [a] can only cover [b] if [a] constrains a subset of
   [b]'s attributes and each of [a]'s hulls contains [b]'s — both are
   necessary conditions checked with integer/float compares before any
   interval-set walk. Attributes beyond the mask width (unheard-of
   arities) simply fall through to the exact check. *)
let mask_width = 62

type node = {
  nid : int;  (** dense node id, unique per lattice *)
  mutable members : int list;  (** ascending; head = representative *)
  profile : Profile.t;  (** canonical (first-inserted) member *)
  denots : Iset.t option array;  (** axis-normalized denotations *)
  mask : int;
  lo : float array;
  hi : float array;
  mutable parents : node list;
  mutable children : node list;
  mutable stamp : int;
  mutable covers_probe : bool;  (** memo of the probe test at [stamp] *)
}

type t = {
  schema : Schema.t;
  arity : int;
  fulls : Iset.t array;  (** full axis per attribute, for normalization *)
  by_id : (int, node) Hashtbl.t;
  mutable roots : node list;
  mutable size : int;
  mutable nnodes : int;
  mutable nroots : int;
  mutable next_nid : int;
  mutable stamp : int;
  mutable cover_tests : int;
}

let create schema =
  let fulls =
    Array.map
      (fun a -> Iset.full (Axis.of_domain a.Schema.domain))
      (Schema.attributes schema)
  in
  {
    schema;
    arity = Schema.arity schema;
    fulls;
    by_id = Hashtbl.create 256;
    roots = [];
    size = 0;
    nnodes = 0;
    nroots = 0;
    next_nid = 0;
    stamp = 0;
    cover_tests = 0;
  }

(* A probe: the signature of a profile not (yet) in the lattice. *)
type key = {
  k_denots : Iset.t option array;
  k_mask : int;
  k_lo : float array;
  k_hi : float array;
}

let hull iset =
  match Iset.intervals iset with
  | [] -> (0.0, 0.0)
  | first :: _ as l ->
    let rec last = function [ x ] -> x | _ :: r -> last r | [] -> first in
    (first.Interval.lo, (last l).Interval.hi)

let make_key t profile =
  let n = t.arity in
  let denots = Array.make n None in
  let lo = Array.make n 0.0 and hi = Array.make n 0.0 in
  let mask = ref 0 in
  for i = 0 to n - 1 do
    match profile.Profile.denots.(i) with
    | None -> ()
    | Some s ->
      if not (Iset.equal s t.fulls.(i)) then begin
        denots.(i) <- Some s;
        if i < mask_width then mask := !mask lor (1 lsl i);
        let l, h = hull s in
        lo.(i) <- l;
        hi.(i) <- h
      end
  done;
  { k_denots = denots; k_mask = !mask; k_lo = lo; k_hi = hi }

(* Exact covering over normalized denotations, signature-pruned. *)
let node_covers_key t (n : node) (k : key) =
  t.cover_tests <- t.cover_tests + 1;
  n.mask land lnot k.k_mask = 0
  &&
  let rec go i =
    i = t.arity
    ||
    match (n.denots.(i), k.k_denots.(i)) with
    | None, _ -> go (i + 1)
    | Some _, None -> false
    | Some sa, Some sb ->
      n.lo.(i) <= k.k_lo.(i)
      && k.k_hi.(i) <= n.hi.(i)
      && Iset.subset sb sa
      && go (i + 1)
  in
  go 0

let key_covers_node t (k : key) (n : node) =
  t.cover_tests <- t.cover_tests + 1;
  k.k_mask land lnot n.mask = 0
  &&
  let rec go i =
    i = t.arity
    ||
    match (k.k_denots.(i), n.denots.(i)) with
    | None, _ -> go (i + 1)
    | Some _, None -> false
    | Some sa, Some sb ->
      k.k_lo.(i) <= n.lo.(i)
      && n.hi.(i) <= k.k_hi.(i)
      && Iset.subset sb sa
      && go (i + 1)
  in
  go 0

(* Find the deepest nodes covering [k] (its direct coverers), and the
   equivalence host if one exists. Every coverer's ancestors also
   cover [k], so all coverers are reachable from the roots through
   chains of covering nodes; the walk memoizes the per-node test in
   the node's stamp so shared ancestry is tested once. *)
let find_coverers t k =
  t.stamp <- t.stamp + 1;
  let round = t.stamp in
  let covers_memo (n : node) =
    if n.stamp = round then n.covers_probe
    else begin
      n.stamp <- round;
      n.covers_probe <- node_covers_key t n k;
      n.covers_probe
    end
  in
  let explored = Hashtbl.create 16 in
  let preds = ref [] and equiv = ref None in
  let rec explore (n : node) =
    (* [n] is known to cover [k]. *)
    if Option.is_none !equiv && not (Hashtbl.mem explored n.nid) then begin
      Hashtbl.add explored n.nid ();
      if key_covers_node t k n then equiv := Some n
      else begin
        let deeper = List.filter covers_memo n.children in
        match deeper with
        | [] -> preds := n :: !preds
        | _ -> List.iter explore deeper
      end
    end
  in
  List.iter
    (fun r -> if Option.is_none !equiv && covers_memo r then explore r)
    t.roots;
  (!equiv, !preds)

let rec insert_sorted id = function
  | [] -> [ id ]
  | x :: _ as l when id < x -> id :: l
  | x :: rest -> x :: insert_sorted id rest

let fresh_node t ~id ~profile k =
  let nid = t.next_nid in
  t.next_nid <- nid + 1;
  t.nnodes <- t.nnodes + 1;
  {
    nid;
    members = [ id ];
    profile;
    denots = k.k_denots;
    mask = k.k_mask;
    lo = k.k_lo;
    hi = k.k_hi;
    parents = [];
    children = [];
    stamp = 0;
    covers_probe = false;
  }

type add_result =
  | Absorbed of { coverer : int }
  | Rooted of { demoted : int list list }

let add t ~id profile =
  if Hashtbl.mem t.by_id id then
    invalid_arg "Lattice.add: id already present";
  let k = make_key t profile in
  match find_coverers t k with
  | Some host, _ ->
    (* Equivalent class exists: join it. *)
    host.members <- insert_sorted id host.members;
    Hashtbl.replace t.by_id id host;
    t.size <- t.size + 1;
    Absorbed { coverer = List.hd host.members }
  | None, (_ :: _ as preds) ->
    let node = fresh_node t ~id ~profile k in
    node.parents <- preds;
    List.iter (fun p -> p.children <- node :: p.children) preds;
    Hashtbl.replace t.by_id id node;
    t.size <- t.size + 1;
    Absorbed { coverer = List.hd (List.hd preds).members }
  | None, [] ->
    (* New root; former roots it covers move underneath it. *)
    let node = fresh_node t ~id ~profile k in
    let covered, kept =
      List.partition (fun r -> key_covers_node t k r) t.roots
    in
    node.children <- covered;
    List.iter (fun r -> r.parents <- [ node ]) covered;
    t.roots <- node :: kept;
    t.nroots <- t.nroots - List.length covered + 1;
    Hashtbl.replace t.by_id id node;
    t.size <- t.size + 1;
    Rooted { demoted = List.map (fun r -> r.members) covered }

type remove_result =
  | Shrunk of { root : bool; members : int list }
  | Dissolved of { root : bool; promoted : int list list }

(* Re-place a node that lost its last parent: link it under its
   remaining coverers if any survive, otherwise promote it to a root
   (demoting any root it covers — only other just-promoted orphans can
   qualify, since a profile covered by the dissolved node cannot cover
   a pre-existing root). *)
let replace_orphan t (orphan : node) =
  let k =
    {
      k_denots = orphan.denots;
      k_mask = orphan.mask;
      k_lo = orphan.lo;
      k_hi = orphan.hi;
    }
  in
  match find_coverers t k with
  | Some _, _ ->
    (* An equivalent node elsewhere would have been this node. *)
    assert false
  | None, (_ :: _ as preds) ->
    orphan.parents <- preds;
    List.iter (fun p -> p.children <- orphan :: p.children) preds
  | None, [] ->
    let covered, kept =
      List.partition (fun r -> key_covers_node t k r) t.roots
    in
    orphan.children <- List.rev_append covered orphan.children;
    List.iter (fun r -> r.parents <- [ orphan ]) covered;
    t.roots <- orphan :: kept;
    t.nroots <- t.nroots - List.length covered + 1

let remove t id =
  match Hashtbl.find_opt t.by_id id with
  | None -> None
  | Some n ->
    Hashtbl.remove t.by_id id;
    t.size <- t.size - 1;
    n.members <- List.filter (fun m -> m <> id) n.members;
    if n.members <> [] then
      Some (Shrunk { root = (n.parents = []); members = n.members })
    else begin
      let was_root = n.parents = [] in
      t.nnodes <- t.nnodes - 1;
      if was_root then begin
        t.roots <- List.filter (fun r -> r.nid <> n.nid) t.roots;
        t.nroots <- t.nroots - 1
      end
      else
        List.iter
          (fun p ->
            p.children <- List.filter (fun c -> c.nid <> n.nid) p.children)
          n.parents;
      let orphans =
        List.filter
          (fun c ->
            c.parents <- List.filter (fun p -> p.nid <> n.nid) c.parents;
            c.parents = [])
          n.children
      in
      List.iter (replace_orphan t) orphans;
      let promoted =
        List.filter_map
          (fun c -> if c.parents = [] then Some c.members else None)
          orphans
      in
      Some (Dissolved { root = was_root; promoted })
    end

let mem t id = Hashtbl.mem t.by_id id

let size t = t.size

let node_count t = t.nnodes

let root_count t = t.nroots

let absorbed t = t.size - t.nroots

let minimal_cover t =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (List.map (fun r -> (List.hd r.members, r.profile)) t.roots)

let covered_by t profile =
  let k = make_key t profile in
  let rec scan = function
    | [] -> None
    | r :: rest ->
      if node_covers_key t r k then Some (List.hd r.members) else scan rest
  in
  scan t.roots

let entries t =
  Hashtbl.fold (fun id n acc -> (id, n.profile) :: acc) t.by_id []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let find t id = Option.map (fun n -> n.profile) (Hashtbl.find_opt t.by_id id)

let cover_tests t = t.cover_tests

(* ------------------------------------------------------------------ *)
(* Traversal *)

let node_of t id = Hashtbl.find_opt t.by_id id

let node_members (n : node) = n.members

let node_profile (n : node) = n.profile

let node_children (n : node) = n.children

let node_is_root (n : node) = n.parents = []

let begin_visit t = t.stamp <- t.stamp + 1

let seen t (n : node) =
  if n.stamp = t.stamp then true
  else begin
    n.stamp <- t.stamp;
    false
  end

let descendant_count t id =
  match Hashtbl.find_opt t.by_id id with
  | None -> 0
  | Some n ->
    begin_visit t;
    ignore (seen t n);
    let rec walk acc c =
      if seen t c then acc
      else List.fold_left walk (acc + List.length c.members) c.children
    in
    List.fold_left walk 0 n.children
