(** Value orders and search strategies within one attribute (§4.1/§4.2).

    A *value order* arranges the referenced cells of an attribute; the
    tree stores each node's edges in that order, and a per-attribute
    lookup table maps every global cell to its *position* so the linear
    scan can stop early (Example 5 of the paper): a node cannot contain
    the searched value once an edge with a greater position is seen.

    Zero-subdomain cells are assigned the position they *would* occupy
    in the order (the paper's prototype discovers a non-match "after
    the number of steps that would have been needed to identify the
    requested value"); they are encoded as half-ranks (q − 0.5) so
    binary search can three-way-compare against them without ever
    reporting equality. *)

type value_order =
  | Natural_asc  (** natural order of the domain, ascending *)
  | Natural_desc
  | By_key_desc of float array
      (** descending by a per-cell key (indexed by global cell); ties
          break by natural order — used for measures V1–V3 *)
  | By_key_asc of float array

type strategy =
  | Linear of value_order
      (** table-based scan in the defined order with early stop *)
  | Binary
      (** binary search over the natural order *)
  | Hashed
      (** hash-based location (the paper's outlook, §5): one comparison
          resolves the cell, found or not. The in-memory implementation
          locates the edge by bisection over the (small) edge array —
          equivalent work in practice — but the *comparison-count*
          model charges O(1), which is what hash-based search buys. *)

type table = private {
  m : int;  (** number of referenced cells *)
  positions : float array;
      (** per global cell: rank 1.0 … m.0 for referenced cells, or the
          would-be half-rank (q − 0.5) for D0 cells *)
  scan_order : int array;
      (** referenced global cells, best-position first *)
}

val compile : Genas_interval.Overlay.t -> value_order -> table
(** Build the lookup table for one attribute.

    @raise Invalid_argument if a [By_key_*] array's length differs from
    the overlay's cell count. *)

val strategy_order : strategy -> value_order
(** The order a strategy stores edges in ([Binary] → [Natural_asc]). *)

val pp_strategy : Format.formatter -> strategy -> unit
(** Short human-readable form: ["linear:natural"], ["linear:key-desc"],
    ["binary"], ["hashed"]. *)

val bisect : edge_positions:float array -> target:float -> int * int option
(** The shared three-way bisection probe over ascending positions:
    [(probes, matched index)]. Every binary/hashed search in the
    matcher and cost-model stack runs this one loop, so probe counts
    cannot drift between the analytic and runtime paths. An empty
    array costs 0 probes. *)

val linear_cost : edge_positions:float array -> target:float -> int * bool
(** Cost and success of the early-stopping linear scan over a node
    whose edges have the given sorted-ascending positions, searching
    for a cell with position [target]: [(edges examined, found)]. *)

val binary_cost : edge_positions:float array -> target:float -> int * bool
(** Probe count and success of binary search over the same encoding. *)
