(** Compiled flat-array matcher.

    [compile] lowers a built {!Tree.t} into a cache-friendly
    struct-of-arrays form: a CSR-style node table ([int] attribute ids,
    per-node edge ranges into shared edge arrays, [int] cell targets
    instead of [float] positions, child and rest-node indices) with all
    leaf postings in one shared [int array]. Subtree sharing is
    preserved — two pointer nodes that are physically shared compile to
    the same flat node — so the flat form is never larger than the
    hash-consed DFSA.

    Positions are encoded as doubled integer ranks: a referenced cell
    at rank [q] becomes [2q], a zero-subdomain half-rank [q − 0.5]
    becomes [2q − 1], and an out-of-domain value becomes [max_int].
    The mapping is strictly monotonic and equality-preserving, so every
    three-way comparison the float tree performs has the same outcome
    here and the comparison/node-visit counters are bit-identical to
    {!Tree.match_event} — the paper's figures are unchanged; only the
    wall clock moves.

    Matching runs through a reusable {!cursor} holding the target
    scratch buffer, the output buffer, and an epoch-stamped seen-array
    that dedups matched ids without clearing between events: the
    steady-state path performs no per-event allocation of match lists
    or arrays. A cursor belongs to one compiled matcher and one thread
    of control; for cross-domain batch matching give each worker its
    own cursor (see {!Pool}). *)

type t

type cursor

val compile : ?layout:int array -> Tree.t -> t
(** Lower a pointer tree. The tree keeps ownership of [pp]/[explain];
    the flat form only matches.

    [layout] is a per-node visit-count array — as produced by a
    {!recorder} run against the default-order compile of the same tree
    — and applies {!relayout} to the freshly compiled form: a
    hotness-guided, cache-conscious node order.

    @raise Invalid_argument if [layout] has the wrong length. *)

val relayout : t -> int array -> t
(** [relayout t visits] renumbers the flat nodes of [t] in descending
    visit-count order (ties by old node id, so the permutation is
    deterministic) and re-packs the node table, the edge arrays, and
    the postings in the new order — hot nodes and their payloads land
    contiguously at the front of their arrays (an "odds-on" layout for
    the observed event distribution). [visits] is indexed by [t]'s own
    node ids, i.e. {!node_visits} of a recorder driven against [t].
    Matching behaviour, comparison counts, and node-visit counts are
    bit-identical to [t]; only memory order changes. Cursors are
    layout-independent ([t]'s cursors still fit); recorders are not —
    build a fresh recorder for the new form.

    @raise Invalid_argument if [visits] has the wrong length. *)

val revision : t -> int
(** Profile-set revision of the underlying decomposition snapshot. *)

val node_count : t -> int
(** Flat nodes (inner + leaves). Equals [stats.nodes + stats.leaves] of
    the source tree — sharing is preserved. *)

val edge_count : t -> int

val posting_count : t -> int
(** Total leaf-posting slots in the shared postings array. *)

val cursor : t -> cursor
(** A fresh cursor sized for [t] (scratch targets, seen-array over the
    live profile-id range, output buffer for the worst-case match
    count). Reusable across any number of events. *)

val match_into : ?ops:Ops.t -> t -> cursor -> Genas_model.Event.t -> int
(** Match one event into the cursor, returning the number of matched
    profile ids (readable via {!matches}/{!iter_matches}, ascending).
    Allocation-free on the steady-state path apart from the boxed
    coordinate options the model layer returns.

    @raise Invalid_argument if the cursor was built for a different
    matcher. *)

(** {2 Hotness recorder}

    Per-node and per-level visit profiling for the traversal. The
    plain {!match_into} loop takes no recorder argument at all, so the
    disabled path is compile-time-guaranteed to cost nothing;
    {!match_into_recorded} runs a duplicated loop whose comparison and
    node-visit accounting is bit-identical to the plain one. *)

type recorder
(** Accumulated visit counters plus the path scratch of the most
    recently recorded event. Belongs to one compiled matcher. *)

type path_step = {
  step_node : int;  (** flat node id visited *)
  step_level : int;  (** path depth; root is 0 *)
  step_edge : int;
      (** edge slot taken ([>= 0]), [-1] rest child, [-2] rejected
          here, [-3] arrived at a leaf *)
  step_comparisons : int;  (** comparisons spent at this node *)
}

val recorder : t -> recorder
(** A fresh zeroed recorder sized for [t]. *)

val reset_recorder : recorder -> unit

val node_visits : recorder -> int array
(** Visit count per flat node id (leaves included), borrowed live. *)

val level_visits : recorder -> int array
(** Visit count per path depth, [arity + 1] slots; a full-depth path
    counts its leaf arrival in the last slot. Borrowed live. *)

val recorded_events : recorder -> int
(** Events recorded since creation / the last reset. *)

val last_path : recorder -> path_step list
(** The most recently recorded event's root-to-end path. *)

val match_into_recorded :
  ?ops:Ops.t -> t -> cursor -> recorder -> Genas_model.Event.t -> int
(** {!match_into} through the recording loop: same matches, same
    [?ops] accounting, plus visit counters and the path scratch.

    @raise Invalid_argument if the cursor or recorder was built for a
    different matcher. *)

(** {2 Packed batches}

    A batch of events resolved once into a dense row-major [int array]
    of per-attribute lookup targets. Matching from the packed form
    touches only int arrays — no boxed values, no model-layer lookups —
    and the packed image is immutable, so pool workers on other domains
    share it with zero coordination. Match results and operation
    counters are bit-identical to {!match_into} on the source
    events. *)

type packed

val pack_batch : t -> Genas_model.Event.t array -> packed
(** Resolve every event of the batch (in order) to its int targets.
    One pass, no per-event allocation beyond the packed image
    itself. *)

val packed_events : packed -> int

val match_packed_into : ?ops:Ops.t -> t -> cursor -> packed -> int -> int
(** [match_packed_into t cur pk i] matches packed event [i] exactly as
    {!match_into} would match the source event.

    @raise Invalid_argument if the cursor or the packed batch belongs
    to a different matcher, or [i] is out of range. *)

val match_coords_into : ?ops:Ops.t -> t -> cursor -> float array -> int
(** Same, from raw axis coordinates indexed by natural attribute index
    (the simulation path).

    @raise Invalid_argument on an arity mismatch or a foreign
    cursor. *)

val matches : cursor -> int array
(** The cursor's output buffer, borrowed: only the first [n] slots of
    the most recent [match_into] result are meaningful, and the next
    match overwrites them. Copy before storing. *)

val match_count : cursor -> int
(** Matches of the most recent [match_into]. *)

val iter_matches : cursor -> (int -> unit) -> unit
(** Apply to each matched id of the most recent match, ascending. *)

val match_list :
  ?ops:Ops.t -> t -> cursor -> Genas_model.Event.t ->
  Genas_profile.Profile_set.id list
(** Convenience (allocating) wrapper: matched ids, ascending — the
    exact list {!Tree.match_event} returns. *)

val match_batch :
  ?ops:Ops.t -> t -> cursor -> Genas_model.Event.t array ->
  f:(int -> ids:int array -> len:int -> unit) -> unit
(** Match a batch through one cursor: [f i ~ids ~len] is called once
    per event in order, with [ids] the borrowed output buffer whose
    first [len] slots hold event [i]'s matched profile ids (ascending).
    The buffer is overwritten by the next event — copy inside [f] if
    the ids must outlive the call. *)
