module Event = Genas_model.Event
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis

type node =
  | Leaf of int array
  | Node of {
      attr : int;
      cells : int array;
      edge_positions : float array;
      children : node array;
      rest : node option;
    }

type config = { attr_order : int array; strategies : Order.strategy array }

type stats = { nodes : int; leaves : int; edges : int; build_visits : int }

type t = {
  decomp : Decomp.t;
  config : config;
  tables : Order.table array;
  root : node option;
  stats : stats;
}

let default_config decomp =
  let n = Decomp.arity decomp in
  {
    attr_order = Array.init n Fun.id;
    strategies = Array.make n (Order.Linear Order.Natural_asc);
  }

let validate_config decomp config =
  let n = Decomp.arity decomp in
  if Array.length config.attr_order <> n then
    invalid_arg "Tree.build: attr_order length mismatch";
  if Array.length config.strategies <> n then
    invalid_arg "Tree.build: strategies length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun a ->
      if a < 0 || a >= n || seen.(a) then
        invalid_arg "Tree.build: attr_order is not a permutation";
      seen.(a) <- true)
    config.attr_order

(* Memo keys are (level, sorted alive-id array); two nodes with the
   same key root identical subtrees, so the construction hash-conses
   them. *)
module Key = struct
  type t = int * int array

  let equal ((l1, a1) : t) (l2, a2) = l1 = l2 && a1 = a2

  let hash ((l, a) : t) =
    Array.fold_left (fun h x -> (h * 31) + x + 1) (l + 1) a land max_int
end

module Memo = Hashtbl.Make (Key)

(* Merge two sorted int arrays (both duplicate-free, disjoint by
   construction: constrainers vs don't-cares). *)
let merge_sorted a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < la && !j < lb do
      if a.(!i) <= b.(!j) then begin
        out.(!k) <- a.(!i);
        incr i
      end
      else begin
        out.(!k) <- b.(!j);
        incr j
      end;
      incr k
    done;
    while !i < la do
      out.(!k) <- a.(!i);
      incr i;
      incr k
    done;
    while !j < lb do
      out.(!k) <- b.(!j);
      incr j;
      incr k
    done;
    out
  end

exception Construction_blowup of int

let build ?(share = true) ?max_visits decomp config =
  validate_config decomp config;
  let n = Decomp.arity decomp in
  let tables =
    Array.init n (fun attr ->
        Order.compile decomp.Decomp.overlays.(attr)
          (Order.strategy_order config.strategies.(attr)))
  in
  let memo : node Memo.t = Memo.create 1024 in
  let nodes = ref 0 and leaves = ref 0 and edges = ref 0 and visits = ref 0 in
  let rec construct level (alive : int array) =
    incr visits;
    (match max_visits with
    | Some limit when !visits > limit -> raise (Construction_blowup limit)
    | Some _ | None -> ());
    let key = (level, alive) in
    match if share then Memo.find_opt memo key else None with
    | Some node -> node
    | None ->
      let node =
        if level = n then begin
          incr leaves;
          Leaf alive
        end
        else begin
          let attr = config.attr_order.(level) in
          let constrains id = Decomp.cells_of_profile decomp ~attr ~id <> None in
          let dontcares =
            Array.of_seq
              (Seq.filter (fun id -> not (constrains id)) (Array.to_seq alive))
          in
          (* Group constraining profiles by the global cells their
             denotations cover; iterating [alive] in ascending order
             keeps each cell's id list sorted after the final reversal. *)
          let by_cell : (int, int list) Hashtbl.t = Hashtbl.create 16 in
          Array.iter
            (fun id ->
              match Decomp.cells_of_profile decomp ~attr ~id with
              | None -> ()
              | Some cells ->
                Array.iter
                  (fun c ->
                    Hashtbl.replace by_cell c
                      (id :: Option.value ~default:[] (Hashtbl.find_opt by_cell c)))
                  cells)
            alive;
          let cell_list =
            Hashtbl.fold
              (fun c ids acc -> (c, Array.of_list (List.rev ids)) :: acc)
              by_cell []
          in
          (* Store edges in the defined value order (ascending lookup
             position) so both scan strategies read them in place. *)
          let positions = tables.(attr).Order.positions in
          let cell_list =
            List.sort
              (fun (a, _) (b, _) -> Float.compare positions.(a) positions.(b))
              cell_list
          in
          let rest =
            if Array.length dontcares = 0 then None
            else Some (construct (level + 1) dontcares)
          in
          let cells = Array.of_list (List.map fst cell_list) in
          let children =
            Array.of_list
              (List.map
                 (fun (_, ids) ->
                   construct (level + 1) (merge_sorted ids dontcares))
                 cell_list)
          in
          incr nodes;
          edges := !edges + Array.length cells;
          Node
            {
              attr;
              cells;
              edge_positions = Array.map (fun c -> positions.(c)) cells;
              children;
              rest;
            }
        end
      in
      if share then Memo.replace memo key node;
      node
  in
  let root =
    if Array.length decomp.Decomp.ids = 0 then None
    else Some (construct 0 (Array.copy decomp.Decomp.ids))
  in
  {
    decomp;
    config;
    tables;
    root;
    stats =
      { nodes = !nodes; leaves = !leaves; edges = !edges; build_visits = !visits };
  }

(* Runtime search at one node: returns (comparisons, matched edge
   index). Mirrors Order.linear_cost/binary_cost but also yields the
   index so the traversal can descend. *)
let scan strategy ~edge_positions ~target =
  let n = Array.length edge_positions in
  if n = 0 then (0, None)
  else
    match strategy with
    | Order.Linear _ ->
      let rec scan i =
        if i = n then (n, None)
        else
          let p = edge_positions.(i) in
          if p = target then (i + 1, Some i)
          else if p > target then (i + 1, None)
          else scan (i + 1)
      in
      scan 0
    | Order.Binary -> Order.bisect ~edge_positions ~target
    | Order.Hashed ->
      (* One charged comparison; the edge is located by bisection. *)
      let _, found = Order.bisect ~edge_positions ~target in
      (1, found)

let match_targets ?ops t targets =
  (* [targets.(attr)] = lookup position of the event's cell on that
     attribute, or +inf when the value falls outside every cell. *)
  let comparisons = ref 0 and node_visits = ref 0 in
  let matched = ref [] in
  let rec go = function
    | Leaf ids -> matched := Array.to_list ids :: !matched
    | Node { attr; edge_positions; children; rest; _ } ->
      incr node_visits;
      let cost, hit =
        scan t.config.strategies.(attr) ~edge_positions
          ~target:targets.(attr)
      in
      comparisons := !comparisons + cost;
      (match hit with
      | Some i -> go children.(i)
      | None -> ( match rest with Some r -> go r | None -> ()))
  in
  (match t.root with Some r -> go r | None -> ());
  let result = List.sort_uniq Int.compare (List.concat !matched) in
  (match ops with
  | Some o ->
    o.Ops.comparisons <- o.Ops.comparisons + !comparisons;
    o.Ops.node_visits <- o.Ops.node_visits + !node_visits;
    o.Ops.events <- o.Ops.events + 1;
    o.Ops.matches <- o.Ops.matches + List.length result
  | None -> ());
  result

let targets_of_coords t coords =
  Array.mapi
    (fun attr c ->
      match Decomp.cell_of_coord t.decomp ~attr c with
      | Some cell -> t.tables.(attr).Order.positions.(cell)
      | None -> Float.infinity)
    coords

let match_coords ?ops t coords =
  if Array.length coords <> Decomp.arity t.decomp then
    invalid_arg "Tree.match_coords: wrong arity";
  match_targets ?ops t (targets_of_coords t coords)

let match_event ?ops t event =
  let n = Decomp.arity t.decomp in
  let coords =
    Array.init n (fun attr ->
        let dom = (Schema.attribute t.decomp.Decomp.schema attr).Schema.domain in
        match Axis.coord dom (Event.value event attr) with
        | Some c -> c
        | None -> Float.nan)
  in
  let targets =
    Array.mapi
      (fun attr c ->
        if Float.is_nan c then Float.infinity
        else
          match Decomp.cell_of_coord t.decomp ~attr c with
          | Some cell -> t.tables.(attr).Order.positions.(cell)
          | None -> Float.infinity)
      coords
  in
  match_targets ?ops t targets

let revision t = t.decomp.Decomp.revision

let pp ppf t =
  let schema = t.decomp.Decomp.schema in
  let attr_name a = (Schema.attribute schema a).Schema.name in
  let cell_label attr cell =
    let itv =
      t.decomp.Decomp.overlays.(attr).Genas_interval.Overlay.cells.(cell)
        .Genas_interval.Overlay.itv
    in
    Format.asprintf "%a" Genas_interval.Interval.pp itv
  in
  let pp_leaf ppf ids =
    Format.fprintf ppf "{%s}"
      (String.concat "," (Array.to_list (Array.map string_of_int ids)))
  in
  let rec go ppf indent node =
    match node with
    | Leaf ids -> Format.fprintf ppf "%s-> %a@," indent pp_leaf ids
    | Node { attr; cells; children; rest; _ } ->
      Array.iteri
        (fun i cell ->
          Format.fprintf ppf "%s%s %s@," indent (attr_name attr)
            (cell_label attr cell);
          go ppf (indent ^ "  ") children.(i))
        cells;
      (match rest with
      | None -> ()
      | Some child ->
        Format.fprintf ppf "%s%s %s@," indent (attr_name attr)
          (if Array.length cells = 0 then "*" else "(*)");
        go ppf (indent ^ "  ") child)
  in
  match t.root with
  | None -> Format.fprintf ppf "(empty tree)"
  | Some root ->
    Format.fprintf ppf "@[<v>";
    go ppf "" root;
    Format.fprintf ppf "@]"
