(** Multicore publish fan-out: a persistent pool of OCaml 5 domains.

    A persistent pool keeps [domains - 1] long-lived workers parked on
    a condition turnstile (spawned lazily on the first parallel batch —
    parked domains still take part in every stop-the-world section, so
    an idle pool must cost the process nothing); each {!match_batch}
    posts one job and the workers wake, drain their contiguous share of
    the batch through
    per-worker atomic chunk cursors, then {e steal} leftover chunks
    from slower participants' cursors. Spawn cost is paid once per pool
    instead of once per batch, and stealing keeps every domain busy
    when per-event cost is skewed.

    Determinism: every event index is claimed by exactly one
    [fetch_and_add] winner and its matches land in that index's own
    result slot, so pool output is positionally bit-identical to a
    sequential run regardless of how chunks are stolen. The compiled
    {!Flat.t} and the packed event image are immutable, so workers
    share them with zero coordination; per-worker {!Ops.t} counters
    are commutative sums merged after the completion barrier, so the
    totals also match a single-domain run bit for bit.

    Pools own domains: call {!shutdown} when done (tests especially —
    the runtime caps live domains). An [at_exit] hook shuts persistent
    pools down automatically at process exit. *)

type t

val create : ?domains:int -> ?persistent:bool -> unit -> t
(** [domains] defaults to [Domain.recommended_domain_count ()] and
    bounds the parallelism of a batch. Values above the host's
    recommended count are allowed — useful for determinism tests — but
    buy no speedup.

    [persistent] (default [true]) selects the long-lived worker set,
    spawned on the first multi-domain batch. [~persistent:false] keeps
    the pre-pool behaviour —
    fresh domains spawned inside every {!match_batch} call, contiguous
    chunks, no stealing — and is retained for one release as a
    regression escape hatch; both modes return identical results.

    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int

val persistent : t -> bool

val live_workers : t -> int
(** Long-lived worker domains currently alive: [0] before the first
    parallel batch, [domains - 1] once a persistent multi-domain pool
    has fanned out, [0] again after {!shutdown} (and always [0] for
    non-persistent or single-domain pools). *)

val last_steals : t -> int
(** Chunks stolen (claimed from another participant's cursor) during
    the most recent {!match_batch}/{!match_shards} on this pool. [0]
    for sequential and legacy runs. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Subsequent
    [match_batch]/[match_shards] calls raise [Invalid_argument].
    Also removes the pool from the process-exit cleanup registry, so
    cycled pools are not retained for the life of the process. *)

val registered_cleanups : unit -> int
(** Pools currently registered for automatic shutdown at process exit
    (persistent multi-domain pools not yet {!shutdown}). A single
    [at_exit] hook walks this registry; creating and shutting down
    pools in a loop must leave it — and the at_exit list — flat. *)

val match_batch :
  ?ops:Ops.t -> t -> Flat.t -> Genas_model.Event.t array ->
  Genas_profile.Profile_set.id array array
(** Match every event of the batch, returning one ascending id array
    per event (index-aligned with the input). On the persistent
    multi-domain path the batch is first resolved once into a packed
    int image ({!Flat.pack_batch}), then distributed as chunked ranges
    with work-stealing. With one domain (or a batch of [<= 1] events)
    everything runs on the calling domain and no hand-off happens.

    @raise Invalid_argument after {!shutdown}. *)

val match_shards :
  ?ops:Ops.t -> t -> Shard.t -> Genas_model.Event.t array ->
  Genas_profile.Profile_set.id array array
(** The second parallel axis: match the whole batch against every
    shard of a {!Shard.t}, shards distributed across the pool (each
    shard's pass uses a private cursor and packed image). Per-event
    results are the concatenation of per-shard matches in shard order
    — ascending, since shards hold disjoint ascending id ranges.
    [?ops] counters sum comparisons/visits/matches across shards and
    charge [events] once per event. Best when the profile population
    is huge and batches are small; for big batches prefer
    {!match_batch}.

    @raise Invalid_argument after {!shutdown}. *)
