(** Multicore publish fan-out: a pool of OCaml 5 domains that
    partitions an event batch across workers, each matching through its
    own {!Flat.cursor} and private {!Ops.t} accumulator.

    The compiled {!Flat.t} is immutable and the decomposition snapshot
    it references is read-only after construction, so workers share
    them with zero coordination; per-worker operation counters are
    merged into the caller's [?ops] after the join barrier, and
    [comparisons]/[node_visits]/[matches] totals are deterministic —
    identical to a single-domain run over the same batch, regardless of
    the partition. *)

type t

val create : ?domains:int -> unit -> t
(** [domains] defaults to [Domain.recommended_domain_count ()] and is
    what a batch is split into at most (a batch of [k < domains] events
    uses [k] workers). Values above the host's recommended count are
    allowed — useful for determinism tests — but buy no speedup.

    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int

val match_batch :
  ?ops:Ops.t -> t -> Flat.t -> Genas_model.Event.t array ->
  Genas_profile.Profile_set.id array array
(** Match every event of the batch, returning one ascending id array
    per event (index-aligned with the input). The batch is split into
    [domains] contiguous chunks; one chunk runs on the calling domain,
    the rest on spawned domains joined before returning. With one
    domain (or a one-event batch) no domain is spawned. *)
