module Event = Genas_model.Event
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Domain = Genas_model.Domain
module Value = Genas_model.Value

(* Strategy codes, dispatched with plain int compares in the hot loop. *)
let code_linear = 0
let code_binary = 1
let code_hashed = 2

let code_of_strategy = function
  | Order.Linear _ -> code_linear
  | Order.Binary -> code_binary
  | Order.Hashed -> code_hashed

(* Doubled-rank encoding: referenced rank q -> 2q, half-rank q - 0.5 ->
   2q - 1, out-of-domain -> max_int. Strictly monotonic and
   equality-preserving w.r.t. the float encoding, so every three-way
   comparison has the same outcome as in the pointer tree. *)
let out_of_domain = max_int

let pos2_of_float p = int_of_float (2.0 *. p)

(* Compiled coordinate lookup: discrete domains get a direct
   value->target table (no option allocation, no Overlay.locate
   bisection per event); float domains keep the generic path. *)
type lookup =
  | Int_table of { lo : int; tbl : int array }  (* index = value - lo *)
  | Rank_table of int array  (* index = Domain.rank (enum / bool) *)
  | Generic

type t = {
  decomp : Decomp.t;
  arity : int;
  strategy : int array;  (* per natural attribute: strategy code *)
  pos2 : int array array;  (* per attribute, per global cell *)
  domains : Domain.t array;  (* per attribute, for target lookup *)
  lookup : lookup array;
  (* Node table: one slot per flat node, leaves marked by attr = -1. *)
  node_attr : int array;
  edge_first : int array;  (* per node: first slot in the edge arrays *)
  edge_count : int array;
  rest : int array;  (* per node: rest-node index, or -1 *)
  leaf_first : int array;  (* per leaf: first slot in [postings] *)
  leaf_count : int array;
  (* Shared edge arrays (CSR payload). *)
  edge_pos : int array;  (* doubled rank per edge, ascending per node *)
  edge_child : int array;  (* flat node index per edge *)
  postings : int array;  (* all leaf id lists, ascending per leaf *)
  root : int;  (* -1 when no profiles are registered *)
  seen_size : int;  (* max live profile id + 1 *)
  out_size : int;  (* live profile count: worst-case match set *)
}

type cursor = {
  targets : int array;
  seen : int array;  (* epoch stamps, by profile id *)
  out : int array;
  mutable len : int;
  mutable epoch : int;
}

module Vec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.a then begin
      let b = Array.make (2 * v.len) 0 in
      Array.blit v.a 0 b 0 v.len;
      v.a <- b
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.a 0 v.len
end

(* Shared subtrees are physically shared by the tree's hash-consing,
   so physical identity is the right memo key; the structural default
   hash is depth-bounded and cheap. *)
module Phys = Hashtbl.Make (struct
  type t = Tree.node

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* Tables above this many slots fall back to the generic bisection
   path: a sparse gigantic int domain must not inflate the compiled
   form. *)
let max_table = 1 lsl 16

let build_lookup decomp pos2 attr dom =
  let target_of_coord c =
    match Decomp.cell_of_coord decomp ~attr c with
    | Some cell -> pos2.(attr).(cell)
    | None -> out_of_domain
  in
  match dom with
  | Domain.Int_range { lo; hi } when hi - lo < max_table ->
    Int_table
      {
        lo;
        tbl =
          Array.init (hi - lo + 1) (fun i ->
              target_of_coord (float_of_int (lo + i)));
      }
  | Domain.Enum vs ->
    Rank_table
      (Array.init (Array.length vs) (fun r -> target_of_coord (float_of_int r)))
  | Domain.Bool_dom ->
    Rank_table (Array.init 2 (fun r -> target_of_coord (float_of_int r)))
  | Domain.Int_range _ | Domain.Float_range _ -> Generic

let compile_plain (tree : Tree.t) =
  let decomp = tree.Tree.decomp in
  let arity = Decomp.arity decomp in
  let strategy =
    Array.map code_of_strategy tree.Tree.config.Tree.strategies
  in
  let pos2 =
    Array.map
      (fun (tb : Order.table) -> Array.map pos2_of_float tb.Order.positions)
      tree.Tree.tables
  in
  let schema = decomp.Decomp.schema in
  let domains =
    Array.init arity (fun i -> (Schema.attribute schema i).Schema.domain)
  in
  let lookup = Array.mapi (build_lookup decomp pos2) domains in
  let node_attr = Vec.create () and edge_first = Vec.create () in
  let edge_count = Vec.create () and rest = Vec.create () in
  let leaf_first = Vec.create () and leaf_count = Vec.create () in
  let edge_pos = Vec.create () and edge_child = Vec.create () in
  let postings = Vec.create () in
  let memo = Phys.create 256 in
  let alloc ~attr ~efirst ~ecount ~rest:r ~lfirst ~lcount =
    let id = node_attr.Vec.len in
    Vec.push node_attr attr;
    Vec.push edge_first efirst;
    Vec.push edge_count ecount;
    Vec.push rest r;
    Vec.push leaf_first lfirst;
    Vec.push leaf_count lcount;
    id
  in
  let rec go node =
    match Phys.find_opt memo node with
    | Some id -> id
    | None ->
      let id =
        match node with
        | Tree.Leaf ids ->
          let lfirst = postings.Vec.len in
          Array.iter (Vec.push postings) ids;
          alloc ~attr:(-1) ~efirst:0 ~ecount:0 ~rest:(-1) ~lfirst
            ~lcount:(Array.length ids)
        | Tree.Node { attr; edge_positions; children; rest = r; _ } ->
          (* Children first so this node's edge slots stay contiguous. *)
          let child_ids = Array.map go children in
          let rest_id = match r with Some c -> go c | None -> -1 in
          let efirst = edge_pos.Vec.len in
          Array.iteri
            (fun j p ->
              Vec.push edge_pos (pos2_of_float p);
              Vec.push edge_child child_ids.(j))
            edge_positions;
          alloc ~attr ~efirst ~ecount:(Array.length edge_positions)
            ~rest:rest_id ~lfirst:0 ~lcount:0
      in
      Phys.replace memo node id;
      id
  in
  let root = match tree.Tree.root with Some r -> go r | None -> -1 in
  let ids = decomp.Decomp.ids in
  let nlive = Array.length ids in
  {
    decomp;
    arity;
    strategy;
    pos2;
    domains;
    lookup;
    node_attr = Vec.to_array node_attr;
    edge_first = Vec.to_array edge_first;
    edge_count = Vec.to_array edge_count;
    rest = Vec.to_array rest;
    leaf_first = Vec.to_array leaf_first;
    leaf_count = Vec.to_array leaf_count;
    edge_pos = Vec.to_array edge_pos;
    edge_child = Vec.to_array edge_child;
    postings = Vec.to_array postings;
    root;
    seen_size = (if nlive = 0 then 0 else ids.(nlive - 1) + 1);
    out_size = nlive;
  }

(* ------------------------------------------------------------------ *)
(* Hotness-guided relayout: renumber the flat nodes in descending
   visit-frequency order (ties broken by old id, so the permutation is
   deterministic) and rebuild the CSR payload in the new node order —
   hot nodes, their edge slots, and their postings all land
   contiguously at the front of their arrays, the "odds-on" layout.
   The traversal itself is untouched: only indices move, so matches,
   comparison counts, and node-visit counts are bit-identical to the
   source layout. *)

let relayout t visits =
  let n = Array.length t.node_attr in
  if Array.length visits <> n then
    invalid_arg "Flat.relayout: visit counts built for a different matcher";
  if n = 0 then t
  else begin
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = compare visits.(b) visits.(a) in
        if c <> 0 then c else compare a b)
      order;
    let renum = Array.make n 0 in
    Array.iteri (fun nw old -> renum.(old) <- nw) order;
    let node_attr = Array.make n 0 in
    let edge_first = Array.make n 0 and edge_count = Array.make n 0 in
    let rest = Array.make n 0 in
    let leaf_first = Array.make n 0 and leaf_count = Array.make n 0 in
    let ne = Array.length t.edge_pos and np = Array.length t.postings in
    let edge_pos = Array.make ne 0 and edge_child = Array.make ne 0 in
    let postings = Array.make np 0 in
    (* Every flat node owns a disjoint slice of the edge and posting
       arrays (the compiler allocates per unique node), so appending
       per node in the new order re-packs both exactly once. *)
    let epos = ref 0 and ppos = ref 0 in
    for nw = 0 to n - 1 do
      let o = order.(nw) in
      node_attr.(nw) <- t.node_attr.(o);
      let ef = t.edge_first.(o) and ec = t.edge_count.(o) in
      edge_first.(nw) <- !epos;
      edge_count.(nw) <- ec;
      for k = 0 to ec - 1 do
        edge_pos.(!epos) <- t.edge_pos.(ef + k);
        edge_child.(!epos) <- renum.(t.edge_child.(ef + k));
        incr epos
      done;
      rest.(nw) <- (let r = t.rest.(o) in if r < 0 then -1 else renum.(r));
      let lf = t.leaf_first.(o) and lc = t.leaf_count.(o) in
      leaf_first.(nw) <- !ppos;
      leaf_count.(nw) <- lc;
      for k = 0 to lc - 1 do
        postings.(!ppos) <- t.postings.(lf + k);
        incr ppos
      done
    done;
    {
      t with
      node_attr;
      edge_first;
      edge_count;
      rest;
      leaf_first;
      leaf_count;
      edge_pos;
      edge_child;
      postings;
      root = renum.(t.root);
    }
  end

let compile ?layout tree =
  let t = compile_plain tree in
  match layout with None -> t | Some visits -> relayout t visits

let revision t = t.decomp.Decomp.revision

let node_count t = Array.length t.node_attr

let edge_count t = Array.length t.edge_pos

let posting_count t = Array.length t.postings

(* The output buffer carries one slack slot past the worst-case match
   count: the branchless leaf-dedup below writes the candidate id
   unconditionally at [len] and advances [len] only when the id was
   fresh, so a duplicate arriving with the buffer already full touches
   the slack slot instead of falling off the end. *)
let cursor t =
  {
    targets = Array.make t.arity 0;
    seen = Array.make t.seen_size 0;
    out = Array.make (t.out_size + 1) 0;
    len = 0;
    epoch = 0;
  }

let check_cursor t cur ~who =
  if
    Array.length cur.targets <> t.arity
    || Array.length cur.seen < t.seen_size
    || Array.length cur.out < t.out_size + 1
  then invalid_arg (who ^ ": cursor built for a different matcher")

(* The traversal core: follows the single deterministic path from the
   root, mirroring Tree.match_targets edge for edge. Comparison and
   node-visit counts are bit-identical to the pointer tree (the scan
   branches replicate Tree.scan over the doubled-rank encoding).

   The interval tests are branchless where the charged comparison
   count allows: the leaf dedup stores unconditionally and advances
   [len] by a comparison-derived 0/1, and the linear scan's deciding
   edge resolves its hit slot with int arithmetic instead of a taken/
   not-taken branch. The charged counts are computed arithmetically
   from the stopping index, so they cannot drift from the pointer
   tree's accounting. *)
let run ?ops t cur =
  cur.epoch <- cur.epoch + 1;
  cur.len <- 0;
  let comparisons = ref 0 and node_visits = ref 0 in
  if t.root >= 0 then begin
    let node = ref t.root and live = ref true in
    while !live do
      let i = !node in
      let a = Array.unsafe_get t.node_attr i in
      if a < 0 then begin
        (* Leaf: publish the postings slice, deduped by epoch stamp
           (ids are ascending per leaf, so the output stays sorted).
           Branchless: always store at [len], advance by freshness. *)
        let first = t.leaf_first.(i) in
        let epoch = cur.epoch in
        for k = first to first + t.leaf_count.(i) - 1 do
          let id = Array.unsafe_get t.postings k in
          let fresh = Bool.to_int (Array.unsafe_get cur.seen id <> epoch) in
          Array.unsafe_set cur.seen id epoch;
          Array.unsafe_set cur.out cur.len id;
          cur.len <- cur.len + fresh
        done;
        live := false
      end
      else begin
        incr node_visits;
        let target = Array.unsafe_get cur.targets a in
        let first = t.edge_first.(i) and n = t.edge_count.(i) in
        let hit = ref (-1) in
        if n > 0 then begin
          let code = Array.unsafe_get t.strategy a in
          if code = code_linear then begin
            (* Early-stopping scan: cost j+1 on the deciding edge, n on
               exhaustion — exactly Tree.scan's Linear branch. The scan
               itself is a single-test loop; the deciding edge resolves
               hit/miss without a branch (eq = 1 selects j, eq = 0
               selects -1). *)
            let j = ref 0 in
            while
              !j < n && Array.unsafe_get t.edge_pos (first + !j) < target
            do
              incr j
            done;
            if !j < n then begin
              comparisons := !comparisons + !j + 1;
              let eq =
                Bool.to_int
                  (Array.unsafe_get t.edge_pos (first + !j) = target)
              in
              hit := (!j * eq) lor (eq - 1)
            end
            else comparisons := !comparisons + n
          end
          else begin
            (* Binary and hashed both locate by bisection (the int
               mirror of Order.bisect); binary charges the probes,
               hashed charges one comparison. *)
            let lo = ref 0 and hi = ref (n - 1) in
            let probes = ref 0 in
            while !hit < 0 && !lo <= !hi do
              let mid = (!lo + !hi) / 2 in
              incr probes;
              let p = Array.unsafe_get t.edge_pos (first + mid) in
              if p = target then hit := mid
              else if p < target then lo := mid + 1
              else hi := mid - 1
            done;
            comparisons :=
              !comparisons + (if code = code_binary then !probes else 1)
          end
        end;
        if !hit >= 0 then node := t.edge_child.(first + !hit)
        else begin
          let r = t.rest.(i) in
          if r >= 0 then node := r else live := false
        end
      end
    done
  end;
  (match ops with
  | Some o ->
    o.Ops.comparisons <- o.Ops.comparisons + !comparisons;
    o.Ops.node_visits <- o.Ops.node_visits + !node_visits;
    o.Ops.events <- o.Ops.events + 1;
    o.Ops.matches <- o.Ops.matches + cur.len
  | None -> ());
  cur.len

(* ------------------------------------------------------------------ *)
(* Hotness recorder.

   The plain [run] above takes no recorder argument at all — the
   disabled path is the original loop, so "profiling off" is
   compile-time-checked zero cost rather than a dynamic no-op object
   threaded through the hot loop. [run_recorded] duplicates the
   traversal with per-node / per-level visit counters and a
   single-path scratch; its comparison and node-visit accounting is
   bit-identical to [run]. *)

type recorder = {
  rec_node_visits : int array;  (* by flat node id, leaves included *)
  rec_level_visits : int array;  (* by path depth; slot [arity] = leaves *)
  mutable rec_events : int;
  (* Path scratch for the most recent recorded event. *)
  path_nodes : int array;
  path_levels : int array;
  path_edges : int array;
  path_comparisons : int array;
  mutable path_len : int;
}

type path_step = {
  step_node : int;
  step_level : int;
  step_edge : int;
      (* edge slot taken (>= 0), -1 rest, -2 reject, -3 leaf arrival *)
  step_comparisons : int;
}

let recorder t =
  let cap = t.arity + 2 in
  {
    rec_node_visits = Array.make (Array.length t.node_attr) 0;
    rec_level_visits = Array.make (t.arity + 1) 0;
    rec_events = 0;
    path_nodes = Array.make cap 0;
    path_levels = Array.make cap 0;
    path_edges = Array.make cap 0;
    path_comparisons = Array.make cap 0;
    path_len = 0;
  }

let check_recorder t r ~who =
  if
    Array.length r.rec_node_visits <> Array.length t.node_attr
    || Array.length r.rec_level_visits <> t.arity + 1
  then invalid_arg (who ^ ": recorder built for a different matcher")

let reset_recorder r =
  Array.fill r.rec_node_visits 0 (Array.length r.rec_node_visits) 0;
  Array.fill r.rec_level_visits 0 (Array.length r.rec_level_visits) 0;
  r.rec_events <- 0;
  r.path_len <- 0

let node_visits r = r.rec_node_visits

let level_visits r = r.rec_level_visits

let recorded_events r = r.rec_events

let last_path r =
  List.init r.path_len (fun k ->
      {
        step_node = r.path_nodes.(k);
        step_level = r.path_levels.(k);
        step_edge = r.path_edges.(k);
        step_comparisons = r.path_comparisons.(k);
      })

let push_step r ~node ~level ~edge ~cmp =
  if r.path_len < Array.length r.path_nodes then begin
    r.path_nodes.(r.path_len) <- node;
    r.path_levels.(r.path_len) <- level;
    r.path_edges.(r.path_len) <- edge;
    r.path_comparisons.(r.path_len) <- cmp;
    r.path_len <- r.path_len + 1
  end

(* Mirror of [run] with recording; keep the two loops in lockstep when
   touching either. *)
let run_recorded ?ops t cur r =
  cur.epoch <- cur.epoch + 1;
  cur.len <- 0;
  r.rec_events <- r.rec_events + 1;
  r.path_len <- 0;
  let comparisons = ref 0 and node_visits = ref 0 in
  if t.root >= 0 then begin
    let node = ref t.root and live = ref true and level = ref 0 in
    while !live do
      let i = !node in
      let a = Array.unsafe_get t.node_attr i in
      r.rec_node_visits.(i) <- r.rec_node_visits.(i) + 1;
      if !level < Array.length r.rec_level_visits then
        r.rec_level_visits.(!level) <- r.rec_level_visits.(!level) + 1;
      if a < 0 then begin
        let first = t.leaf_first.(i) in
        let epoch = cur.epoch in
        for k = first to first + t.leaf_count.(i) - 1 do
          let id = Array.unsafe_get t.postings k in
          let fresh = Bool.to_int (Array.unsafe_get cur.seen id <> epoch) in
          Array.unsafe_set cur.seen id epoch;
          Array.unsafe_set cur.out cur.len id;
          cur.len <- cur.len + fresh
        done;
        push_step r ~node:i ~level:!level ~edge:(-3) ~cmp:0;
        live := false
      end
      else begin
        incr node_visits;
        let c0 = !comparisons in
        let target = Array.unsafe_get cur.targets a in
        let first = t.edge_first.(i) and n = t.edge_count.(i) in
        let hit = ref (-1) in
        if n > 0 then begin
          let code = Array.unsafe_get t.strategy a in
          if code = code_linear then begin
            let j = ref 0 in
            while
              !j < n && Array.unsafe_get t.edge_pos (first + !j) < target
            do
              incr j
            done;
            if !j < n then begin
              comparisons := !comparisons + !j + 1;
              let eq =
                Bool.to_int
                  (Array.unsafe_get t.edge_pos (first + !j) = target)
              in
              hit := (!j * eq) lor (eq - 1)
            end
            else comparisons := !comparisons + n
          end
          else begin
            let lo = ref 0 and hi = ref (n - 1) in
            let probes = ref 0 in
            while !hit < 0 && !lo <= !hi do
              let mid = (!lo + !hi) / 2 in
              incr probes;
              let p = Array.unsafe_get t.edge_pos (first + mid) in
              if p = target then hit := mid
              else if p < target then lo := mid + 1
              else hi := mid - 1
            done;
            comparisons :=
              !comparisons + (if code = code_binary then !probes else 1)
          end
        end;
        let cmp = !comparisons - c0 in
        if !hit >= 0 then begin
          push_step r ~node:i ~level:!level ~edge:!hit ~cmp;
          node := t.edge_child.(first + !hit);
          incr level
        end
        else begin
          let rr = t.rest.(i) in
          if rr >= 0 then begin
            push_step r ~node:i ~level:!level ~edge:(-1) ~cmp;
            node := rr;
            incr level
          end
          else begin
            push_step r ~node:i ~level:!level ~edge:(-2) ~cmp;
            live := false
          end
        end
      end
    done
  end;
  (match ops with
  | Some o ->
    o.Ops.comparisons <- o.Ops.comparisons + !comparisons;
    o.Ops.node_visits <- o.Ops.node_visits + !node_visits;
    o.Ops.events <- o.Ops.events + 1;
    o.Ops.matches <- o.Ops.matches + cur.len
  | None -> ());
  cur.len

let generic_target t attr v =
  match Axis.coord t.domains.(attr) v with
  | None -> out_of_domain
  | Some c -> (
    match Decomp.cell_of_coord t.decomp ~attr c with
    | Some cell -> t.pos2.(attr).(cell)
    | None -> out_of_domain)

let target_of_value t attr v =
  match Array.unsafe_get t.lookup attr with
  | Int_table { lo; tbl } -> (
    match v with
    | Value.Int x ->
      let i = x - lo in
      if i >= 0 && i < Array.length tbl then Array.unsafe_get tbl i
      else out_of_domain
    | _ -> out_of_domain)
  | Rank_table tbl -> (
    match Domain.rank t.domains.(attr) v with
    | Some r -> tbl.(r)
    | None -> out_of_domain)
  | Generic -> generic_target t attr v

let set_event_targets t cur event =
  for attr = 0 to t.arity - 1 do
    cur.targets.(attr) <- target_of_value t attr (Event.value event attr)
  done

(* ------------------------------------------------------------------ *)
(* Packed batches: every event of a batch resolved once into a dense
   row-major [int array] of lookup targets. The traversal then touches
   only int arrays — no boxed values, no model-layer lookups — which is
   what the pool workers share across domains: the packed image is
   immutable, so a stolen chunk costs two array reads per attribute. *)

type packed = { pk_owner : t; pk_targets : int array; pk_events : int }

let pack_batch t events =
  let n = Array.length events in
  let targets = Array.make (n * t.arity) 0 in
  for i = 0 to n - 1 do
    let e = events.(i) in
    let base = i * t.arity in
    for attr = 0 to t.arity - 1 do
      targets.(base + attr) <- target_of_value t attr (Event.value e attr)
    done
  done;
  { pk_owner = t; pk_targets = targets; pk_events = n }

let packed_events pk = pk.pk_events

let match_packed_into ?ops t cur pk i =
  check_cursor t cur ~who:"Flat.match_packed_into";
  if pk.pk_owner != t then
    invalid_arg
      "Flat.match_packed_into: packed batch built for a different matcher";
  if i < 0 || i >= pk.pk_events then
    invalid_arg "Flat.match_packed_into: event index out of range";
  Array.blit pk.pk_targets (i * t.arity) cur.targets 0 t.arity;
  run ?ops t cur

let match_into ?ops t cur event =
  check_cursor t cur ~who:"Flat.match_into";
  set_event_targets t cur event;
  run ?ops t cur

let match_into_recorded ?ops t cur r event =
  check_cursor t cur ~who:"Flat.match_into_recorded";
  check_recorder t r ~who:"Flat.match_into_recorded";
  set_event_targets t cur event;
  run_recorded ?ops t cur r

let match_coords_into ?ops t cur coords =
  check_cursor t cur ~who:"Flat.match_coords_into";
  if Array.length coords <> t.arity then
    invalid_arg "Flat.match_coords_into: wrong arity";
  for attr = 0 to t.arity - 1 do
    let c = coords.(attr) in
    cur.targets.(attr) <-
      (match Decomp.cell_of_coord t.decomp ~attr c with
      | Some cell -> t.pos2.(attr).(cell)
      | None -> out_of_domain)
  done;
  run ?ops t cur

let matches cur = cur.out

let match_count cur = cur.len

let iter_matches cur f =
  for i = 0 to cur.len - 1 do
    f cur.out.(i)
  done

let match_list ?ops t cur event =
  let n = match_into ?ops t cur event in
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (cur.out.(i) :: acc)
  in
  build (n - 1) []

let match_batch ?ops t cur events ~f =
  check_cursor t cur ~who:"Flat.match_batch";
  for i = 0 to Array.length events - 1 do
    set_event_targets t cur (Array.unsafe_get events i);
    let len = run ?ops t cur in
    f i ~ids:cur.out ~len
  done
