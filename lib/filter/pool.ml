type t = { domains : int }

let create ?domains () =
  let d =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  if d < 1 then invalid_arg "Pool.create: need at least one domain";
  { domains = d }

let domains t = t.domains

(* One worker's share: events [lo, hi) matched through a private cursor
   into the shared results array (disjoint slots, so no two domains
   ever write the same cell), private Ops returned for the post-barrier
   merge. *)
let run_range flat events (results : int array array) lo hi =
  let cur = Flat.cursor flat in
  let ops = Ops.create () in
  for i = lo to hi - 1 do
    let len = Flat.match_into ~ops flat cur events.(i) in
    results.(i) <- Array.sub (Flat.matches cur) 0 len
  done;
  ops

let match_batch ?ops pool flat events =
  let n = Array.length events in
  let results = Array.make n [||] in
  let workers = min pool.domains (max 1 n) in
  let merge worker_ops =
    match ops with Some o -> Ops.add worker_ops ~into:o | None -> ()
  in
  if workers <= 1 then merge (run_range flat events results 0 n)
  else begin
    let chunk = (n + workers - 1) / workers in
    let handles =
      List.init (workers - 1) (fun k ->
          let lo = (k + 1) * chunk in
          let hi = min n (lo + chunk) in
          Domain.spawn (fun () -> run_range flat events results lo hi))
    in
    let local = run_range flat events results 0 (min n chunk) in
    (* Barrier: join every worker, then merge the private counters.
       Ops fields are commutative sums, so the totals match a
       single-domain run bit for bit. *)
    let worker_ops = List.map Domain.join handles in
    merge local;
    List.iter merge worker_ops
  end;
  results
