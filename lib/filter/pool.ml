(* Persistent work-stealing domain pool.

   Workers are spawned once at [create] and parked on a condition
   turnstile; each [match_batch]/[match_shards] posts one job (a bumped
   generation under the mutex publishes it), every participant drains
   its own contiguous range through an atomic chunk cursor and then
   sweeps the other cursors stealing leftover chunks. Every item index
   is claimed by exactly one [Atomic.fetch_and_add] winner and written
   to its own result slot, so output is positionally deterministic —
   bit-identical to a sequential run no matter how the steals land —
   and Ops counters are commutative sums, so the merged totals are too.

   Completion: [j_remaining] counts unprocessed items; the participant
   whose decrement reaches zero broadcasts [done_]. The poster also
   works (as participant 0), then waits under the mutex until the
   count drains. Exceptions in a worker are trapped per chunk (first
   one kept), the chunk is still counted as done so the countdown
   cannot wedge, and the poster re-raises after the barrier. *)

type job = {
  j_run : int -> int -> unit;  (* j_run participant item *)
  j_next : int Atomic.t array;  (* per-participant chunk cursor *)
  j_hi : int array;  (* per-participant range end *)
  j_chunk : int;
  j_remaining : int Atomic.t;
  j_steals : int Atomic.t;
  j_failed : exn option Atomic.t;
}

type turnstile = {
  mutex : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable job : job option;
  mutable gen : int;  (* bumped per posted job; publishes [job] *)
  mutable stop : bool;
}

type t = {
  domains : int;
  persistent : bool;
  turnstile : turnstile option;  (* [Some] iff persistent && domains > 1 *)
  mutable handles : unit Domain.t list;
  mutable spawned : bool;
  mutable shut : bool;
  mutable steals_last : int;
  mutable cleanup_key : int option;  (* slot in the at_exit registry *)
}

let claim j w =
  let lo = Atomic.fetch_and_add j.j_next.(w) j.j_chunk in
  if lo < j.j_hi.(w) then Some (lo, min j.j_hi.(w) (lo + j.j_chunk))
  else None

let process j w lo hi =
  (try
     for i = lo to hi - 1 do
       j.j_run w i
     done
   with e -> ignore (Atomic.compare_and_set j.j_failed None (Some e)));
  hi - lo

(* Drain own range, then sweep the other participants' cursors until a
   full pass steals nothing. Returns the number of items processed. *)
let run_share j w =
  let did = ref 0 in
  let mine = ref true in
  while !mine do
    match claim j w with
    | Some (lo, hi) -> did := !did + process j w lo hi
    | None -> mine := false
  done;
  let participants = Array.length j.j_next in
  let progress = ref true in
  while !progress do
    progress := false;
    for v = 0 to participants - 1 do
      if v <> w then
        match claim j v with
        | Some (lo, hi) ->
            Atomic.incr j.j_steals;
            did := !did + process j w lo hi;
            progress := true
        | None -> ()
    done
  done;
  !did

let finish_share ts j did =
  if did > 0 && Atomic.fetch_and_add j.j_remaining (-did) = did then begin
    Mutex.lock ts.mutex;
    Condition.broadcast ts.done_;
    Mutex.unlock ts.mutex
  end

let worker ts w =
  let rec loop last_gen =
    Mutex.lock ts.mutex;
    while (not ts.stop) && ts.gen = last_gen do
      Condition.wait ts.work ts.mutex
    done;
    if ts.stop then Mutex.unlock ts.mutex
    else begin
      let gen = ts.gen and job = ts.job in
      Mutex.unlock ts.mutex;
      (* [job] may already be [None] if this worker woke after the job
         completed (every item claimed and counted by others). *)
      (match job with
      | None -> ()
      | Some j -> finish_share ts j (run_share j w));
      loop gen
    end
  in
  loop 0

(* Process-exit cleanup: ONE [at_exit] hook over a removable registry,
   installed lazily on the first persistent pool. Registering a fresh
   closure per pool would retain every pool ever created for the life
   of the process (the at_exit list cannot be pruned), which leaks
   under create/shutdown cycling. *)
let cleanup_mutex = Mutex.create ()
let cleanup_pools : (int, t) Hashtbl.t = Hashtbl.create 8
let cleanup_next = ref 0
let cleanup_hooked = ref false

let registered_cleanups () =
  Mutex.lock cleanup_mutex;
  let n = Hashtbl.length cleanup_pools in
  Mutex.unlock cleanup_mutex;
  n

let register_cleanup run t =
  Mutex.lock cleanup_mutex;
  let key = !cleanup_next in
  incr cleanup_next;
  Hashtbl.replace cleanup_pools key t;
  if not !cleanup_hooked then begin
    cleanup_hooked := true;
    at_exit (fun () ->
        Mutex.lock cleanup_mutex;
        let pending = Hashtbl.fold (fun _ p acc -> p :: acc) cleanup_pools [] in
        Hashtbl.reset cleanup_pools;
        Mutex.unlock cleanup_mutex;
        List.iter run pending)
  end;
  Mutex.unlock cleanup_mutex;
  key

let unregister_cleanup key =
  Mutex.lock cleanup_mutex;
  Hashtbl.remove cleanup_pools key;
  Mutex.unlock cleanup_mutex

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    (match t.cleanup_key with
    | Some key -> unregister_cleanup key
    | None -> ());
    match t.turnstile with
    | None -> ()
    | Some ts ->
        Mutex.lock ts.mutex;
        ts.stop <- true;
        Condition.broadcast ts.work;
        Mutex.unlock ts.mutex;
        List.iter Domain.join t.handles;
        t.handles <- []
  end

let create ?domains ?(persistent = true) () =
  let d =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  if d < 1 then invalid_arg "Pool.create: need at least one domain";
  let turnstile =
    if persistent && d > 1 then
      Some
        {
          mutex = Mutex.create ();
          work = Condition.create ();
          done_ = Condition.create ();
          job = None;
          gen = 0;
          stop = false;
        }
    else None
  in
  let t =
    { domains = d; persistent; turnstile; handles = []; spawned = false;
      shut = false; steals_last = 0; cleanup_key = None }
  in
  (* A process exit with workers still parked would abort on the
     runtime's live-domain check; make teardown automatic. [shutdown]
     removes the registration, so cycled pools are not retained. *)
  if turnstile <> None then
    t.cleanup_key <- Some (register_cleanup shutdown t);
  t

(* Workers are spawned on the first parallel batch, not at [create]:
   even parked domains participate in every stop-the-world section, so
   a pool that has not fanned out yet must cost the process nothing. *)
let ensure_workers t ts =
  if not t.spawned then begin
    t.spawned <- true;
    t.handles <-
      List.init (t.domains - 1) (fun k ->
          Domain.spawn (fun () -> worker ts (k + 1)))
  end

let domains t = t.domains
let persistent t = t.persistent
let live_workers t = List.length t.handles
let last_steals t = t.steals_last

(* Post [n] items to the turnstile and participate as worker 0. *)
let post_and_run t ts ~n run_item =
  ensure_workers t ts;
  let participants = t.domains in
  let chunk = max 1 (min 32 (n / (participants * 8))) in
  let job =
    {
      j_run = run_item;
      j_next = Array.init participants (fun w -> Atomic.make (w * n / participants));
      j_hi = Array.init participants (fun w -> (w + 1) * n / participants);
      j_chunk = chunk;
      j_remaining = Atomic.make n;
      j_steals = Atomic.make 0;
      j_failed = Atomic.make None;
    }
  in
  Mutex.lock ts.mutex;
  ts.job <- Some job;
  ts.gen <- ts.gen + 1;
  Condition.broadcast ts.work;
  Mutex.unlock ts.mutex;
  finish_share ts job (run_share job 0);
  Mutex.lock ts.mutex;
  while Atomic.get job.j_remaining > 0 do
    Condition.wait ts.done_ ts.mutex
  done;
  ts.job <- None;
  Mutex.unlock ts.mutex;
  t.steals_last <- Atomic.get job.j_steals;
  match Atomic.get job.j_failed with Some e -> raise e | None -> ()

(* Legacy spawn-per-batch fan-out, kept behind [?persistent:false] for
   one release: the pre-pool contiguous-chunk split, one fresh domain
   per chunk, joined before returning. *)
let legacy_run ~workers ~n run_item =
  let chunk = (n + workers - 1) / workers in
  let handles =
    List.init (workers - 1) (fun k ->
        let lo = (k + 1) * chunk in
        let hi = min n (lo + chunk) in
        Domain.spawn (fun () ->
            for i = lo to hi - 1 do
              run_item (k + 1) i
            done))
  in
  for i = 0 to min n chunk - 1 do
    run_item 0 i
  done;
  List.iter Domain.join handles

(* Run [n] items, [run_item w i] with participant index [w] <
   [participant_count]. Sequential when the pool is effectively
   single-domain or the job is too small to split. *)
let participant_count t ~n = if t.turnstile <> None then t.domains else min t.domains (max 1 n)

let run_items t ~who ~n run_item =
  if t.shut then invalid_arg (who ^ ": pool has been shut down");
  t.steals_last <- 0;
  if n > 0 then begin
    if t.domains <= 1 || n <= 1 then
      for i = 0 to n - 1 do
        run_item 0 i
      done
    else
      match t.turnstile with
      | Some ts -> post_and_run t ts ~n run_item
      | None -> legacy_run ~workers:(min t.domains n) ~n run_item
  end

let match_batch ?ops t flat events =
  let n = Array.length events in
  let results = Array.make n [||] in
  let parts = participant_count t ~n in
  let cursors = Array.init parts (fun _ -> Flat.cursor flat) in
  let part_ops = Array.init parts (fun _ -> Ops.create ()) in
  let run_item =
    if t.turnstile <> None && t.domains > 1 && n > 1 then begin
      (* Persistent path: resolve the whole batch once into the packed
         int image; workers then touch only int arrays. *)
      let packed = Flat.pack_batch flat events in
      fun w i ->
        let len =
          Flat.match_packed_into ~ops:part_ops.(w) flat cursors.(w) packed i
        in
        results.(i) <- Array.sub (Flat.matches cursors.(w)) 0 len
    end
    else fun w i ->
      let len = Flat.match_into ~ops:part_ops.(w) flat cursors.(w) events.(i) in
      results.(i) <- Array.sub (Flat.matches cursors.(w)) 0 len
  in
  run_items t ~who:"Pool.match_batch" ~n run_item;
  (match ops with
  | Some o -> Array.iter (fun po -> Ops.add po ~into:o) part_ops
  | None -> ());
  results

let match_shards ?ops t shard events =
  let flats = Shard.flats shard in
  let k = Array.length flats in
  let n = Array.length events in
  let per_shard = Array.map (fun _ -> Array.make n [||]) flats in
  let shard_ops = Array.map (fun _ -> Ops.create ()) flats in
  (* Parallelise over the shard axis: each item is one whole shard's
     pass over the batch (private cursor + packed image per shard). *)
  let run_item _w s =
    let flat = flats.(s) in
    let cur = Flat.cursor flat in
    let packed = Flat.pack_batch flat events in
    let o = shard_ops.(s) in
    let res = per_shard.(s) in
    for i = 0 to n - 1 do
      let len = Flat.match_packed_into ~ops:o flat cur packed i in
      res.(i) <- Array.sub (Flat.matches cur) 0 len
    done
  in
  run_items t ~who:"Pool.match_shards" ~n:k run_item;
  (match ops with
  | Some o ->
      (* Comparisons/visits/matches sum across shards; the batch is
         still [n] events, not [k * n]. *)
      Array.iter
        (fun so ->
          o.Ops.comparisons <- o.Ops.comparisons + so.Ops.comparisons;
          o.Ops.node_visits <- o.Ops.node_visits + so.Ops.node_visits;
          o.Ops.matches <- o.Ops.matches + so.Ops.matches)
        shard_ops;
      o.Ops.events <- o.Ops.events + n
  | None -> ());
  (* Shards hold disjoint ascending id ranges in shard order, so plain
     concatenation per event is already ascending. *)
  Array.init n (fun i ->
      let total =
        Array.fold_left (fun acc res -> acc + Array.length res.(i)) 0 per_shard
      in
      let out = Array.make total 0 in
      let pos = ref 0 in
      Array.iter
        (fun res ->
          let a = res.(i) in
          Array.blit a 0 out !pos (Array.length a);
          pos := !pos + Array.length a)
        per_shard;
      out)
