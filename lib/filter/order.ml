module Overlay = Genas_interval.Overlay

type value_order =
  | Natural_asc
  | Natural_desc
  | By_key_desc of float array
  | By_key_asc of float array

type strategy = Linear of value_order | Binary | Hashed

type table = { m : int; positions : float array; scan_order : int array }

(* Sort key per global cell: smaller = earlier in the defined order.
   Ties break by natural (ascending cell index) order, as the paper
   allows ("the order of values with equal selectivity is arbitrary,
   such as the natural order"). *)
let sort_key order cell =
  match order with
  | Natural_asc -> float_of_int cell
  | Natural_desc -> -.float_of_int cell
  | By_key_desc keys -> -.keys.(cell)
  | By_key_asc keys -> keys.(cell)

let compile overlay order =
  let ncells = Array.length overlay.Overlay.cells in
  (match order with
  | By_key_desc keys | By_key_asc keys ->
    if Array.length keys <> ncells then
      invalid_arg "Order.compile: key array length mismatch"
  | Natural_asc | Natural_desc -> ());
  let referenced = Overlay.referenced overlay in
  let m = Array.length referenced in
  (* Rank referenced cells by (key, natural index). *)
  let ranked = Array.copy referenced in
  Array.sort
    (fun a b ->
      match Float.compare (sort_key order a) (sort_key order b) with
      | 0 -> Int.compare a b
      | c -> c)
    ranked;
  let positions = Array.make ncells 0.0 in
  Array.iteri (fun rank cell -> positions.(cell) <- float_of_int (rank + 1)) ranked;
  (* D0 cells: would-be half-rank = (#referenced with strictly smaller
     key) + 0.5. Ties against referenced cells count as smaller so the
     natural-order tie-break stays consistent. *)
  Array.iter
    (fun (zc : int) ->
      let kz = sort_key order zc in
      let better = ref 0 in
      Array.iter
        (fun rc ->
          let kr = sort_key order rc in
          if kr < kz || (kr = kz && rc < zc) then incr better)
        referenced;
      positions.(zc) <- float_of_int !better +. 0.5)
    (Overlay.zero_cells overlay);
  { m; positions; scan_order = ranked }

let strategy_order = function
  | Linear o -> o
  | Binary | Hashed -> Natural_asc

let pp_strategy ppf = function
  | Linear Natural_asc -> Format.pp_print_string ppf "linear:natural"
  | Linear Natural_desc -> Format.pp_print_string ppf "linear:natural-desc"
  | Linear (By_key_desc _) -> Format.pp_print_string ppf "linear:key-desc"
  | Linear (By_key_asc _) -> Format.pp_print_string ppf "linear:key-asc"
  | Binary -> Format.pp_print_string ppf "binary"
  | Hashed -> Format.pp_print_string ppf "hashed"

let linear_cost ~edge_positions ~target =
  let n = Array.length edge_positions in
  let rec scan i =
    if i = n then (n, false)
    else
      let p = edge_positions.(i) in
      if p = target then (i + 1, true)
      else if p > target then (i + 1, false)
      else scan (i + 1)
  in
  if n = 0 then (0, false) else scan 0

(* The one bisection loop in the codebase: [binary_cost], the tree's
   Binary and Hashed scans, and the flat matcher's analytic mirror all
   delegate here, so the probe sequence (and therefore the charged
   comparison count) cannot drift between the analytic and runtime
   paths. *)
let bisect ~edge_positions ~target =
  let n = Array.length edge_positions in
  let lo = ref 0 and hi = ref (n - 1) in
  let probes = ref 0 and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    incr probes;
    let p = edge_positions.(mid) in
    if p = target then found := mid
    else if p < target then lo := mid + 1
    else hi := mid - 1
  done;
  (!probes, if !found < 0 then None else Some !found)

let binary_cost ~edge_positions ~target =
  let probes, hit = bisect ~edge_positions ~target in
  (probes, hit <> None)
